# Empty dependencies file for mimonet_tests.
# This may be replaced when dependencies are built.
