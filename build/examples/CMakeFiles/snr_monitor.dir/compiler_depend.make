# Empty compiler generated dependencies file for snr_monitor.
# This may be replaced when dependencies are built.
