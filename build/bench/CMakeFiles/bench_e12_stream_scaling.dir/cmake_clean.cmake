file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_stream_scaling.dir/bench_e12_stream_scaling.cpp.o"
  "CMakeFiles/bench_e12_stream_scaling.dir/bench_e12_stream_scaling.cpp.o.d"
  "bench_e12_stream_scaling"
  "bench_e12_stream_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_stream_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
