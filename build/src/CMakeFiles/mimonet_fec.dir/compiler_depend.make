# Empty compiler generated dependencies file for mimonet_fec.
# This may be replaced when dependencies are built.
