// E5 — Channel estimation MSE vs SNR: LS from the HT-LTFs, with/without
// frequency smoothing, flat and frequency-selective channels.
//
// Reproduces the paper's pilot/preamble channel-estimation evaluation.
// Expected shape: MSE falls ~1 dB per dB of SNR (LS is noise-limited);
// smoothing buys ~4-6 dB on flat channels but floors out on long-delay
// channels (bias); estimates are per the *effective* channel (CSD folded in).
#include <cstdio>

#include "bench_util.hpp"
#include "channel/mimo_channel.hpp"
#include "chanest/ls_estimator.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "ofdm/subcarriers.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;

namespace {

// Effective reference channel at the estimator's scale: true taps' frequency
// response x tone gain x 1/sqrt(nss) x per-stream CSD ramp.
std::vector<std::vector<std::vector<dsp::cf32>>> effective_reference(
    const channel::ChannelRealization& re, std::size_t nss) {
  auto h = re.frequency_response(ofdm::kFftSize);
  const double scale =
      static_cast<double>(wifi::tone_gain(56)) / std::sqrt(static_cast<double>(nss));
  for (std::size_t r = 0; r < re.nrx; ++r) {
    for (std::size_t s = 0; s < re.ntx; ++s) {
      const int csd = wifi::ht_csd_samples(s, nss);
      for (std::size_t b = 0; b < ofdm::kFftSize; ++b) {
        const double theta = -dsp::two_pi_d * static_cast<double>(b) * csd / 64.0;
        const dsp::cf64 v = dsp::cf64(h[r][s][b]) * scale * dsp::phasor_d(theta);
        h[r][s][b] = dsp::cf32(static_cast<float>(v.real()),
                               static_cast<float>(v.imag()));
      }
    }
  }
  return h;
}

struct MsePair {
  double raw = 0.0;
  double smooth = 0.0;
};

MsePair run_point(double snr, channel::DelayProfile profile, std::size_t trials,
                  std::uint64_t seed) {
  core::PhyConfig phy;
  phy.mcs = 8;  // 2 streams
  const core::Transmitter tx(phy);
  const auto psdu = wifi::build_psdu(wifi::MacHeader{},
                                     std::vector<std::uint8_t>(50, 0));
  const auto streams = tx.transmit(psdu);
  const core::FrameLayout fl = tx.layout(psdu.size());

  std::vector<std::size_t> bins;
  for (int k = -28; k <= 28; ++k) {
    if (k != 0) bins.push_back(ofdm::SubcarrierMap::logical_to_bin(k));
  }
  std::vector<int> csd{wifi::ht_csd_samples(0, 2), wifi::ht_csd_samples(1, 2)};

  const dsp::FftPlan fft(64);
  const chanest::LsChannelEstimator ls(2, 2);
  MsePair acc;
  // Reference normalization: mean |H_eff|^2 so MSE reads as relative error.
  double ref_power = 0.0;
  std::size_t ref_count = 0;

  for (std::size_t t = 0; t < trials; ++t) {
    channel::ChannelConfig ccfg;
    ccfg.ntx = 2;
    ccfg.nrx = 2;
    ccfg.fading = true;
    ccfg.profile = profile;
    ccfg.snr_db = snr;
    ccfg.seed = seed + t;
    channel::MimoChannel chan(ccfg);
    const auto rx = chan.transmit(streams);
    const auto ref = effective_reference(chan.truth().realization, 2);

    // Known timing: the LTFs start at the true packet offset.
    std::vector<std::vector<std::vector<dsp::cf32>>> grids(
        2, std::vector<std::vector<dsp::cf32>>(2, std::vector<dsp::cf32>(64)));
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t n = 0; n < 2; ++n) {
        fft.forward(std::span<const dsp::cf32>(rx[r]).subspan(
                        fl.htltf_offset() + n * 80 + 16, 64),
                    grids[r][n]);
      }
    }
    auto est = ls.estimate(grids);
    acc.raw += est.mse_against(ref, bins);
    chanest::smooth_frequency(est, bins, csd);
    acc.smooth += est.mse_against(ref, bins);

    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t s = 0; s < 2; ++s) {
        for (const auto b : bins) {
          ref_power += dsp::mag_sqr(ref[r][s][b]);
          ++ref_count;
        }
      }
    }
  }
  const double norm = ref_power / static_cast<double>(ref_count);
  acc.raw /= static_cast<double>(trials) * norm;
  acc.smooth /= static_cast<double>(trials) * norm;
  return acc;
}

}  // namespace

int main() {
  bench::heading("E5", "Channel-estimation NMSE vs SNR (Fig. reconstruction)");
  constexpr std::size_t kTrials = 30;
  bench::note("2x2 LS from HT-LTFs, %zu fading realizations per point", kTrials);
  bench::note("NMSE in dB relative to mean |H_eff|^2; timing is genie-aided");

  const bench::Table table(
      {"SNR dB", "flat raw", "flat smth", "long raw", "long smth"}, 12);
  std::string pts = "[";
  bool first = true;
  for (double snr = 0.0; snr <= 30.0; snr += 5.0) {
    const auto flat = run_point(snr, channel::DelayProfile::kFlat, kTrials,
                                900 + static_cast<std::uint64_t>(snr));
    const auto sel = run_point(snr, channel::DelayProfile::kLong, kTrials,
                               1900 + static_cast<std::uint64_t>(snr));
    table.row({bench::fix(snr, 0), bench::fix(dsp::to_db(flat.raw), 1),
               bench::fix(dsp::to_db(flat.smooth), 1),
               bench::fix(dsp::to_db(sel.raw), 1),
               bench::fix(dsp::to_db(sel.smooth), 1)});
    char obj[256];
    std::snprintf(obj, sizeof obj,
                  "%s{\"snr_db\": %g, \"flat_raw_db\": %.4g, \"flat_smooth_db\": %.4g, "
                  "\"long_raw_db\": %.4g, \"long_smooth_db\": %.4g}",
                  first ? "" : ", ", snr, dsp::to_db(flat.raw),
                  dsp::to_db(flat.smooth), dsp::to_db(sel.raw),
                  dsp::to_db(sel.smooth));
    pts += obj;
    first = false;
  }
  bench::note("expected: raw NMSE ~ -(SNR+const); smoothing helps flat, floors long");

  bench::JsonReport report("e5_chanest");
  report.field("trials_per_point", kTrials).raw("points", pts + "]").emit();
  return 0;
}
