// Resilient streaming receive path: scan an arbitrarily long multi-packet
// capture, decode every packet in it, and resynchronize after any failure —
// a bad sync candidate, a SIG parse failure, an FCS failure, a truncated
// tail — by advancing past the failed region. A watchdog budget bounds the
// work a pathological capture (e.g. a long 16-periodic interferer that
// triggers the detector everywhere) can extract, and every iteration
// advances the scan position by at least StreamReceiverConfig::min_advance
// samples, so the scan loop can never wedge.
//
// StreamReceiver is the single-worker scan engine. ReceiverFarm
// (core/receiver_farm.hpp) parallelizes it across shards and streams, and
// ReceiveSession (core/receive_session.hpp) is the session API most callers
// should use instead of talking to this class directly.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/phy_config.hpp"
#include "core/receiver.hpp"
#include "metrics/rx_error.hpp"
#include "metrics/stream_stats.hpp"

namespace mimonet::core {

struct RxWorkspace;  // core/workspace.hpp

/// Scan statistics live in metrics so every layer (stream scan, farm shard,
/// base-station per-user stream) shares one mergeable type.
using StreamStats = metrics::StreamStats;

/// Scan-loop policy knobs. Follows the session-config conventions
/// (aggregate with defaults + fluent builder, see DESIGN.md "API
/// conventions"): StreamReceiverConfig::make().resync_advance(64).build().
struct StreamReceiverConfig {
  /// Floor on the per-iteration scan advance. Termination guarantee: a scan
  /// over N samples runs at most N / min_advance candidate attempts.
  std::size_t min_advance = 16;
  /// How far to advance past a failed candidate's start before rescanning
  /// (one OFDM symbol by default — far enough to fall off a short false
  /// plateau, close enough not to skip a packet queued right behind it).
  std::size_t resync_advance = 80;
  /// Watchdog: failed candidates tolerated since the last delivered frame
  /// before the scanner reports kBudgetExceeded and abandons the capture.
  /// 0 = no budget (the min_advance bound still guarantees termination).
  std::size_t candidate_budget = 4096;
  /// Stop after this many decoded frames (0 = no cap).
  std::size_t max_packets = 0;

  // Two-pass front-end scan (see sync::ScanMode). The default, decimation
  // 1, is the exhaustive full-rate scan — bit-identical to Receiver's
  // default path. Decimation D > 1 (must divide the detector lag, 16) runs
  // the decimated coarse pass at 1/D of the correlation work and full-rate
  // detection only inside flagged candidate regions.
  std::size_t scan_decimation = 1;
  /// Coarse trigger = detector threshold * this scale (in (0, 1]).
  float coarse_threshold_scale = 0.6F;
  /// Decimated positions the coarse metric must stay high to open a region.
  std::size_t coarse_min_run = 3;

  class Builder;
  [[nodiscard]] static Builder make();

  /// Projection onto the detector's scan policy.
  [[nodiscard]] sync::ScanMode scan_mode() const noexcept {
    sync::ScanMode m;
    m.decimation = scan_decimation;
    m.coarse_threshold_scale = coarse_threshold_scale;
    m.coarse_min_run = coarse_min_run;
    return m;
  }
};

class StreamReceiverConfig::Builder {
 public:
  Builder& min_advance(std::size_t n) { cfg_.min_advance = n; return *this; }
  Builder& resync_advance(std::size_t n) { cfg_.resync_advance = n; return *this; }
  Builder& candidate_budget(std::size_t n) { cfg_.candidate_budget = n; return *this; }
  Builder& max_packets(std::size_t n) { cfg_.max_packets = n; return *this; }
  Builder& scan_decimation(std::size_t d) { cfg_.scan_decimation = d; return *this; }
  Builder& coarse_threshold_scale(float s) { cfg_.coarse_threshold_scale = s; return *this; }
  Builder& coarse_min_run(std::size_t n) { cfg_.coarse_min_run = n; return *this; }

  [[nodiscard]] StreamReceiverConfig build() const { return cfg_; }
  operator StreamReceiverConfig() const { return cfg_; }  // NOLINT(google-explicit-constructor)

 private:
  StreamReceiverConfig cfg_;
};

/// One scan event, delivered to the scan() callback in stream order.
struct StreamEvent {
  /// Absolute sample index (into the scanned capture) of the candidate's
  /// frame start; for kBudgetExceeded, of the abandoned scan position.
  std::size_t offset = 0;
  metrics::RxError error = metrics::RxError::kOk;
  /// Null for kBudgetExceeded; otherwise points at the scan workspace's
  /// packet and is valid only during the callback (copy it to keep it).
  const RxPacket* packet = nullptr;
};

/// Owned form of a StreamEvent, what receive_all() returns.
struct StreamRecord {
  std::size_t offset = 0;
  metrics::RxError error = metrics::RxError::kOk;
  bool has_packet = false;
  RxPacket packet;
};

/// Restriction of a scan to a window of the capture — the overlap-save
/// primitive the sharded farm is built on. The scan iterates from `begin`
/// while its position stays below `stop`, sees no samples at or beyond
/// `visible_end`, and delivers events (and counts stats) only for
/// candidates whose frame start lies in [own_begin, own_end). Everything
/// outside the ownership range is still *decoded* when encountered — that
/// is what re-aligns a scan that entered mid-packet — but is someone else's
/// to report.
struct ScanWindow {
  std::size_t begin = 0;
  std::size_t stop = static_cast<std::size_t>(-1);
  std::size_t visible_end = static_cast<std::size_t>(-1);
  std::size_t own_begin = 0;
  std::size_t own_end = static_cast<std::size_t>(-1);
  /// Add the window's sample count to stats.samples_scanned (the farm
  /// counts the capture once at merge instead of once per overlapping
  /// window).
  bool count_samples = true;
};

/// Multi-packet scanning receiver. Construct once per configuration; scans
/// are const and share nothing, so one instance may serve many threads each
/// holding its own RxWorkspace.
class StreamReceiver {
 public:
  using EventFn = std::function<void(const StreamEvent&)>;

  StreamReceiver(PhyConfig cfg, std::size_t nrx, StreamReceiverConfig scfg = {});

  [[nodiscard]] const PhyConfig& config() const noexcept { return rx_.config(); }
  [[nodiscard]] const StreamReceiverConfig& stream_config() const noexcept {
    return scfg_;
  }
  [[nodiscard]] const Receiver& receiver() const noexcept { return rx_; }

  /// Scan the whole capture; returns every event in stream order. On a
  /// capture holding a single clean packet the one returned record's packet
  /// is bit-identical to what Receiver::receive would have produced.
  [[nodiscard]] std::vector<StreamRecord> receive_all(
      const std::vector<std::vector<cf32>>& capture) const;

  /// Workspace/callback form: the hot loop. Stats accumulate into `stats`
  /// (not reset here, so multi-capture sessions aggregate). A warm
  /// workspace scans without steady-state heap allocation.
  void scan(std::span<const std::span<const cf32>> capture, RxWorkspace& ws,
            StreamStats& stats, const EventFn& on_event) const;

  /// Windowed scan over a region of the capture (see ScanWindow). scan() is
  /// exactly scan_window() with the default all-of-it window.
  void scan_window(std::span<const std::span<const cf32>> capture,
                   RxWorkspace& ws, StreamStats& stats, const EventFn& on_event,
                   const ScanWindow& window) const;

  /// HARQ soft-combining scans: every candidate decode runs through
  /// Receiver's combining overload with `harq` (see core::HarqDecode). Meant
  /// for single-frame retransmission captures — an ARQ link scanning one
  /// retry slot — where the prior soft state belongs to the one expected
  /// frame; on a multi-packet capture the same prior would be offered to
  /// every candidate (harmless when lengths differ, but not chase
  /// combining). A default HarqDecode{} makes these bit-identical to the
  /// plain overloads.
  void scan(std::span<const std::span<const cf32>> capture, RxWorkspace& ws,
            StreamStats& stats, const EventFn& on_event,
            const HarqDecode& harq) const;
  void scan_window(std::span<const std::span<const cf32>> capture,
                   RxWorkspace& ws, StreamStats& stats, const EventFn& on_event,
                   const ScanWindow& window, const HarqDecode& harq) const;

 private:
  StreamReceiverConfig scfg_;
  Receiver rx_;
  std::size_t nrx_;
};

}  // namespace mimonet::core
