// E16 — LDPC vs BCC (Fig. reconstruction): the optional 802.11n FEC mode
// against the mandatory convolutional code at the same net rate.
//
// Expected shape: BCC degrades gently from low SNR; the LDPC waterfall
// starts later but is far steeper — the curves cross around 4-4.5 dB for
// QPSK 1/2 and the LDPC column hits zero observed errors ~1 dB earlier.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

struct Outcome {
  double ber;
  double per;
};

Outcome run_point(unsigned mcs, double snr, core::FecType fec, std::size_t packets,
                  std::uint64_t seed) {
  auto cfg = core::make_link_config(mcs, snr);
  cfg.psdu_payload_bytes = 1000;
  cfg.phy.fec_type = fec;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(packets);
  return {res.ber.ber(), res.per.per()};
}

}  // namespace

int main() {
  bench::heading("E16", "LDPC (n=648, R=1/2) vs BCC, QPSK, 1x1 AWGN (Fig.)");
  constexpr std::size_t kPackets = 30;
  bench::note("%zu 1000-byte packets per point; MCS 1 = QPSK 1/2 both ways",
              kPackets);

  const bench::Table table({"SNR dB", "BER BCC", "BER LDPC", "PER BCC",
                            "PER LDPC"},
                           12);
  std::string pts = "[";
  bool first = true;
  for (double snr = 2.0; snr <= 8.0; snr += 0.5) {
    const auto seed = 160;  // paired across the sweep
    const auto bcc = run_point(1, snr, core::FecType::kBcc, kPackets, seed);
    const auto ldpc = run_point(1, snr, core::FecType::kLdpc, kPackets, seed);
    table.row({bench::fix(snr, 1),
               bcc.ber > 0 ? bench::sci(bcc.ber) : std::string("-"),
               ldpc.ber > 0 ? bench::sci(ldpc.ber) : std::string("-"),
               bench::fix(bcc.per, 2), bench::fix(ldpc.per, 2)});
    char obj[224];
    std::snprintf(obj, sizeof obj,
                  "%s{\"snr_db\": %g, \"mcs\": 1, \"ber_bcc\": %.6g, "
                  "\"ber_ldpc\": %.6g, \"per_bcc\": %.6g, \"per_ldpc\": %.6g}",
                  first ? "" : ", ", snr, bcc.ber, ldpc.ber, bcc.per, ldpc.per);
    pts += obj;
    first = false;
  }
  bench::note("expected: crossover ~4-4.5 dB; LDPC column reaches '-' first");

  std::printf("\n  16-QAM 1/2 (MCS 3) at the same comparison\n");
  const bench::Table t2({"SNR dB", "PER BCC", "PER LDPC"}, 12);
  for (double snr = 8.0; snr <= 14.0; snr += 1.0) {
    const auto seed = 260;
    const auto bcc = run_point(3, snr, core::FecType::kBcc, kPackets, seed);
    const auto ldpc = run_point(3, snr, core::FecType::kLdpc, kPackets, seed);
    t2.row({bench::fix(snr, 0), bench::fix(bcc.per, 2),
            bench::fix(ldpc.per, 2)});
    char obj[224];
    std::snprintf(obj, sizeof obj,
                  ", {\"snr_db\": %g, \"mcs\": 3, \"ber_bcc\": %.6g, "
                  "\"ber_ldpc\": %.6g, \"per_bcc\": %.6g, \"per_ldpc\": %.6g}",
                  snr, bcc.ber, ldpc.ber, bcc.per, ldpc.per);
    pts += obj;
  }

  bench::JsonReport report("e16_ldpc");
  report.field("packets_per_point", kPackets)
      .field("payload_bytes", std::size_t{1000})
      .raw("points", pts + "]")
      .emit();
  return 0;
}
