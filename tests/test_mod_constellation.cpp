// Constellation mapping/demapping: energy normalization, Gray property,
// round trips and LLR behaviour.
#include <gtest/gtest.h>

#include <bit>
#include <random>

#include "mod/constellation.hpp"

namespace {

using namespace mimonet::mod;
using mimonet::dsp::cf32;
using mimonet::dsp::mag_sqr;

class AllModulations : public ::testing::TestWithParam<Modulation> {};

TEST_P(AllModulations, UnitAverageEnergy) {
  const Constellation c(GetParam());
  double total = 0.0;
  for (const auto p : c.points()) total += mag_sqr(p);
  EXPECT_NEAR(total / static_cast<double>(c.size()), 1.0, 1e-5);
}

TEST_P(AllModulations, PointCountMatchesBits) {
  const Constellation c(GetParam());
  EXPECT_EQ(c.size(), std::size_t{1} << c.bits_per_symbol());
}

TEST_P(AllModulations, AllPointsDistinct) {
  const Constellation c(GetParam());
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      EXPECT_GT(mag_sqr(c.points()[i] - c.points()[j]), 1e-6F);
    }
  }
}

TEST_P(AllModulations, GrayNeighborsDifferInOneBit) {
  // For every point, its nearest neighbours must differ in exactly one bit —
  // the defining property of Gray mapping (minimizes bit errors per symbol
  // error).
  const Constellation c(GetParam());
  if (c.size() < 4) GTEST_SKIP() << "BPSK has a single axis";
  // Find the minimum inter-point distance.
  float dmin = 1e9F;
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      dmin = std::min(dmin, mag_sqr(c.points()[i] - c.points()[j]));
    }
  }
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = 0; j < c.size(); ++j) {
      if (i == j) continue;
      if (mag_sqr(c.points()[i] - c.points()[j]) < dmin * 1.01F) {
        EXPECT_EQ(std::popcount(i ^ j), 1) << "labels " << i << " vs " << j;
      }
    }
  }
}

TEST_P(AllModulations, MapDemapRoundTrip) {
  const Constellation c(GetParam());
  std::mt19937 rng(static_cast<unsigned>(c.size()));
  std::vector<std::uint8_t> bits(c.bits_per_symbol() * 64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng() & 1U);
  const auto symbols = c.map_all(bits);
  const auto back = c.demap_hard(symbols);
  EXPECT_EQ(back, bits);
}

TEST_P(AllModulations, SoftDemapSignsMatchHardDecision) {
  const Constellation c(GetParam());
  const unsigned bps = c.bits_per_symbol();
  std::vector<float> llrs(bps);
  for (std::size_t label = 0; label < c.size(); ++label) {
    c.demap_soft(c.points()[label], 0.1F, llrs);
    for (unsigned b = 0; b < bps; ++b) {
      const bool bit = ((label >> (bps - 1 - b)) & 1U) != 0;
      // Positive LLR = bit 0: a transmitted 1 must give a negative LLR.
      if (bit) {
        EXPECT_LT(llrs[b], 0.0F) << "label " << label << " bit " << b;
      } else {
        EXPECT_GT(llrs[b], 0.0F) << "label " << label << " bit " << b;
      }
    }
  }
}

TEST_P(AllModulations, LlrScalesInverselyWithNoise) {
  const Constellation c(GetParam());
  const unsigned bps = c.bits_per_symbol();
  std::vector<float> llr_low(bps);
  std::vector<float> llr_high(bps);
  const cf32 y = c.points()[0] * 0.9F;
  c.demap_soft(y, 0.1F, llr_low);
  c.demap_soft(y, 1.0F, llr_high);
  for (unsigned b = 0; b < bps; ++b) {
    EXPECT_NEAR(llr_low[b], 10.0F * llr_high[b], 1e-3F * std::abs(llr_low[b]) + 1e-5F);
  }
}

INSTANTIATE_TEST_SUITE_P(Mods, AllModulations,
                         ::testing::Values(Modulation::kBpsk, Modulation::kQpsk,
                                           Modulation::kQam16, Modulation::kQam64));

TEST(Constellation, BpskPointsOnRealAxis) {
  const Constellation c(Modulation::kBpsk);
  EXPECT_FLOAT_EQ(c.points()[0].real(), -1.0F);
  EXPECT_FLOAT_EQ(c.points()[1].real(), 1.0F);
  EXPECT_FLOAT_EQ(c.points()[0].imag(), 0.0F);
}

TEST(Constellation, QpskMatches80211Table) {
  const Constellation c(Modulation::kQpsk);
  const float s = 1.0F / std::sqrt(2.0F);
  // b0 -> I, b1 -> Q; 0 -> -1, 1 -> +1.
  EXPECT_NEAR(c.points()[0b00].real(), -s, 1e-6F);
  EXPECT_NEAR(c.points()[0b00].imag(), -s, 1e-6F);
  EXPECT_NEAR(c.points()[0b10].real(), s, 1e-6F);
  EXPECT_NEAR(c.points()[0b01].imag(), s, 1e-6F);
}

TEST(Constellation, Qam16CornerValues) {
  const Constellation c(Modulation::kQam16);
  const float s = 1.0F / std::sqrt(10.0F);
  // I bits 00 -> -3, Q bits 00 -> -3.
  EXPECT_NEAR(c.points()[0b0000].real(), -3.0F * s, 1e-6F);
  EXPECT_NEAR(c.points()[0b0000].imag(), -3.0F * s, 1e-6F);
  // I bits 10 -> +3.
  EXPECT_NEAR(c.points()[0b1000].real(), 3.0F * s, 1e-6F);
}

TEST(Constellation, MapRejectsWrongBitCount) {
  const Constellation c(Modulation::kQam16);
  std::vector<std::uint8_t> bits(3);
  EXPECT_THROW(c.map(bits), std::invalid_argument);
  EXPECT_THROW(c.map_all(std::vector<std::uint8_t>(7)), std::invalid_argument);
}

TEST(Constellation, DemapSoftAllRejectsCsiMismatch) {
  const Constellation c(Modulation::kQpsk);
  std::vector<cf32> symbols(4);
  std::vector<float> nv(3);
  EXPECT_THROW(c.demap_soft_all(symbols, nv), std::invalid_argument);
}

TEST(Constellation, HardDecisionPicksNearestUnderNoise) {
  const Constellation c(Modulation::kQam64);
  // Offset each point by less than half the minimum distance: decision must
  // still be exact.
  const float delta = 0.05F;
  for (std::size_t label = 0; label < c.size(); ++label) {
    const cf32 y = c.points()[label] + cf32(delta, -delta);
    EXPECT_EQ(c.hard_decision(y), label);
  }
}

TEST(ModulationNames, AreHumanReadable) {
  EXPECT_EQ(modulation_name(Modulation::kBpsk), "BPSK");
  EXPECT_EQ(modulation_name(Modulation::kQam64), "64-QAM");
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4U);
}

}  // namespace
