// E17 — hot-path throughput: end-to-end samples/sec and packets/sec.
//
// The repo's perf baseline. Times the full chain (Transmitter -> MimoChannel
// -> Receiver, single worker thread so numbers are comparable across
// machines' core counts) at high SNR where every packet decodes, for the
// 1x1 and 2x2 top-rate BCC configurations. Emits BENCH_hotpath.json with the
// live numbers next to the recorded pre-refactor baseline so every later PR
// has a trajectory to beat.
//
// MIMONET_BENCH_PACKETS overrides the timed packet count (check.sh's
// bench-smoke step uses a small value).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;

namespace {

// Pre-refactor reference (commit 22a1573, the chain before the span/workspace
// sample plane), measured on this machine with this same harness:
// 64 timed packets, 1000-byte payload, 30 dB AWGN, one worker thread.
struct Baseline {
  double samples_per_sec;
  double packets_per_sec;
};
constexpr Baseline kBaseline1x1Mcs7{5.43e5, 143.6};
constexpr Baseline kBaseline2x2Mcs15{3.47e5, 134.6};
constexpr const char* kBaselineCommit = "22a1573";

struct Case {
  const char* name;
  unsigned mcs;
  Baseline baseline;
};

struct Measurement {
  double samples_per_sec = 0.0;
  double packets_per_sec = 0.0;
  std::size_t samples_per_packet = 0;
  std::size_t packets = 0;
  std::size_t failures = 0;
};

Measurement run_case(unsigned mcs, std::size_t n_packets) {
  constexpr std::size_t kPayloadBytes = 1000;
  const auto cfg = core::LinkConfig::make()
                       .mcs(mcs)
                       .snr_db(30.0)
                       .payload_bytes(kPayloadBytes)
                       .seed(17)
                       .build();
  core::LinkSimulator sim(cfg);

  // Per-packet capture length: frame plus the channel's noise-only pads
  // (flat AWGN channel: a single tap adds no convolution tail).
  const std::size_t psdu_bytes = kPayloadBytes + wifi::kMacHeaderLen + 4;
  const std::size_t samples_per_packet =
      sim.transmitter().layout(psdu_bytes).total_samples() +
      cfg.channel.timing_pad + cfg.channel.tail_pad;

  // Warm up allocator pools, plan caches, and branch predictors.
  (void)sim.run(core::RunOptions{.n_packets = 4, .n_threads = 1});

  const auto t0 = std::chrono::steady_clock::now();
  const auto res =
      sim.run(core::RunOptions{.n_packets = n_packets, .n_threads = 1});
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  Measurement m;
  m.samples_per_packet = samples_per_packet;
  m.packets = n_packets;
  m.failures = res.per.failures() + res.undetected;
  m.packets_per_sec = static_cast<double>(n_packets) / secs;
  m.samples_per_sec =
      static_cast<double>(n_packets * samples_per_packet) / secs;
  return m;
}

}  // namespace

int main() {
  bench::heading("E17", "Hot-path throughput: samples/sec, packets/sec");

  std::size_t n_packets = 64;
  if (const char* env = std::getenv("MIMONET_BENCH_PACKETS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) n_packets = static_cast<std::size_t>(v);
  }
  bench::note("%zu timed packets per case, 1000-byte payload, 30 dB AWGN, "
              "1 worker thread", n_packets);
  bench::note("baseline: pre-refactor chain at commit %s", kBaselineCommit);

  const std::vector<Case> cases{
      {"1x1_mcs7", 7, kBaseline1x1Mcs7},
      {"2x2_mcs15", 15, kBaseline2x2Mcs15},
  };

  const bench::Table table(
      {"case", "Msamp/s", "pkt/s", "base Msamp/s", "speedup", "fail"}, 14);

  bench::JsonReport report("hotpath");
  report.field("baseline_commit", kBaselineCommit);
  report.field("timed_packets", n_packets);
  report.field("payload_bytes", std::size_t{1000});
  report.field("snr_db", 30.0);
  report.field("n_threads", std::size_t{1});

  std::string cases_json = "[";
  bool all_decoded = true;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto m = run_case(c.mcs, n_packets);
    all_decoded = all_decoded && (m.failures == 0);
    const double speedup = c.baseline.samples_per_sec > 0.0
                               ? m.samples_per_sec / c.baseline.samples_per_sec
                               : 0.0;
    table.row({c.name, bench::fix(m.samples_per_sec / 1e6, 3),
               bench::fix(m.packets_per_sec, 1),
               bench::fix(c.baseline.samples_per_sec / 1e6, 3),
               bench::fix(speedup, 2) + "x", std::to_string(m.failures)});

    bench::JsonReport cj(c.name);
    cj.field("mcs", c.mcs);
    cj.field("samples_per_packet", m.samples_per_packet);
    cj.field("samples_per_sec", m.samples_per_sec);
    cj.field("packets_per_sec", m.packets_per_sec);
    cj.field("baseline_samples_per_sec", c.baseline.samples_per_sec);
    cj.field("baseline_packets_per_sec", c.baseline.packets_per_sec);
    cj.field("speedup_vs_baseline", speedup);
    cj.field("decode_failures", m.failures);
    if (i != 0) cases_json += ", ";
    cases_json += cj.to_json();
  }
  cases_json += "]";
  report.raw("cases", cases_json);
  report.field("all_packets_decoded", all_decoded);
  // Merge so E21's "decode" table in the same BENCH_hotpath.json survives
  // re-runs of this bench, whichever order the two run in.
  report.emit_merged();
  return all_decoded ? 0 : 1;
}
