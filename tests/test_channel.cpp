// Channel simulator: fading statistics, impairments, end-to-end SNR.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/fading.hpp"
#include "channel/fault_plan.hpp"
#include "channel/impairments.hpp"
#include "channel/mimo_channel.hpp"
#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet::channel;
using mimonet::dsp::cf32;
using mimonet::dsp::cf64;

TEST(Profiles, TapCountsAndUnitPower) {
  for (const auto p : {DelayProfile::kFlat, DelayProfile::kShort,
                       DelayProfile::kTypical, DelayProfile::kLong}) {
    const auto powers = profile_powers(p);
    EXPECT_EQ(powers.size(), profile_taps(p));
    double total = 0.0;
    double prev = 2.0;
    for (const auto pw : powers) {
      EXPECT_GT(pw, 0.0);
      EXPECT_LT(pw, prev);  // monotone decay
      prev = pw;
      total += pw;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(FadingGenerator, UnitAveragePowerPerPair) {
  FadingGenerator gen(2, 2, DelayProfile::kTypical, 42);
  double acc = 0.0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const auto re = gen.next();
    double pair_power = 0.0;
    for (const auto& tap : re.taps[0][1]) pair_power += mimonet::dsp::mag_sqr(tap);
    acc += pair_power;
  }
  EXPECT_NEAR(acc / kTrials, 1.0, 0.05);
}

TEST(FadingGenerator, RealizationsVary) {
  FadingGenerator gen(1, 1, DelayProfile::kFlat, 1);
  const auto a = gen.next();
  const auto b = gen.next();
  EXPECT_GT(mimonet::dsp::mag_sqr(a.taps[0][0][0] - b.taps[0][0][0]), 1e-9F);
}

TEST(FadingGenerator, CorrelationIncreasesSimilarity) {
  // With rho_rx ~ 1 the two RX antennas see nearly the same channel.
  FadingGenerator corr(1, 2, DelayProfile::kFlat, 3, 0.0, 0.98);
  FadingGenerator indep(1, 2, DelayProfile::kFlat, 3, 0.0, 0.0);
  double corr_diff = 0.0;
  double indep_diff = 0.0;
  for (int t = 0; t < 500; ++t) {
    const auto c = corr.next();
    const auto i = indep.next();
    corr_diff += mimonet::dsp::mag_sqr(c.taps[0][0][0] - c.taps[1][0][0]);
    indep_diff += mimonet::dsp::mag_sqr(i.taps[0][0][0] - i.taps[1][0][0]);
  }
  EXPECT_LT(corr_diff, indep_diff * 0.2);
}

TEST(FadingGenerator, Validation) {
  EXPECT_THROW(FadingGenerator(0, 1, DelayProfile::kFlat, 1), std::invalid_argument);
  EXPECT_THROW(FadingGenerator(1, 5, DelayProfile::kFlat, 1), std::invalid_argument);
  EXPECT_THROW(FadingGenerator(1, 1, DelayProfile::kFlat, 1, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ChannelRealization, FrequencyResponseMatchesDft) {
  ChannelRealization re;
  re.ntx = 1;
  re.nrx = 1;
  re.taps = {{{cf32{0.6F, 0.0F}, cf32{0.0F, 0.0F}, cf32{0.8F, 0.0F}}}};
  const auto h = re.frequency_response(8);
  // H(k) = 0.6 + 0.8 e^{-j 2 pi 2 k / 8}
  for (std::size_t k = 0; k < 8; ++k) {
    const double theta = -2.0 * mimonet::dsp::pi_d * 2.0 * k / 8.0;
    const cf64 expected = 0.6 + 0.8 * mimonet::dsp::phasor_d(theta);
    EXPECT_NEAR(std::abs(cf64(h[0][0][k]) - expected), 0.0, 1e-5) << "bin " << k;
  }
}

TEST(IdentityChannel, IsDiracDiagonal) {
  const auto re = identity_channel(2);
  EXPECT_EQ(re.taps[0][0][0], (cf32{1.0F, 0.0F}));
  EXPECT_EQ(re.taps[0][1][0], (cf32{0.0F, 0.0F}));
  EXPECT_EQ(re.taps[1][1][0], (cf32{1.0F, 0.0F}));
}

TEST(Impairments, CfoShiftsToneFrequency) {
  std::vector<cf32> x(1000, cf32{1.0F, 0.0F});
  apply_cfo(x, 0.01);
  // After 100 samples the phase advanced by 2*pi (one full cycle).
  EXPECT_NEAR(std::abs(x[100] - x[0]), 0.0F, 1e-4F);
  EXPECT_NEAR(std::abs(x[50] + x[0]), 0.0F, 1e-4F);  // half cycle: opposite
}

TEST(Impairments, SfoChangesLength) {
  std::vector<cf32> x(10000, cf32{1.0F, 0.0F});
  const auto fast = apply_sfo(x, 200.0);   // reads faster -> fewer samples
  const auto slow = apply_sfo(x, -200.0);  // reads slower -> more samples
  EXPECT_LT(fast.size(), x.size());
  EXPECT_GE(slow.size(), x.size() - 1);
}

TEST(Impairments, SfoZeroIsNearIdentity) {
  std::vector<cf32> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = cf32(static_cast<float>(i), 0.0F);
  }
  const auto y = apply_sfo(x, 0.0);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-4F);
  }
}

TEST(Impairments, QuantizeSnapsToGrid) {
  std::vector<cf32> x{{0.1003F, -0.2497F}, {3.9F, -4.5F}};
  quantize(x, 8, 1.0F);
  const float lsb = 1.0F / 128.0F;
  for (const auto& v : x) {
    EXPECT_NEAR(std::fmod(std::abs(v.real()), lsb), 0.0F, 1e-5F);
    EXPECT_LE(v.real(), 1.0F);
    EXPECT_GE(v.real(), -1.0F);
  }
}

TEST(Impairments, PadWithNoiseGeometry) {
  std::vector<cf32> x(10, cf32{5.0F, 0.0F});
  const auto padded = pad_with_noise(x, 100, 50, 0.01, 1);
  EXPECT_EQ(padded.size(), 160U);
  EXPECT_NEAR(padded[100].real(), 5.0F, 1e-6F);
  const double head_power =
      mimonet::dsp::mean_power(std::span<const cf32>(padded).first(100));
  EXPECT_NEAR(head_power, 0.01, 0.01);
}

TEST(MimoChannel, AwgnSnrIsAccurate) {
  ChannelConfig cfg;
  cfg.ntx = 1;
  cfg.nrx = 1;
  cfg.snr_db = 10.0;
  MimoChannel chan(cfg);
  // Unit-power TX stream.
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(50000, cf32{1.0F, 0.0F}));
  const auto rx = chan.transmit(tx);
  // Signal+noise power should be 1 + 0.1.
  EXPECT_NEAR(mimonet::dsp::mean_power(rx[0]), 1.1, 0.02);
  EXPECT_NEAR(chan.noise_variance(), 0.1, 1e-12);
}

TEST(MimoChannel, OutputGeometryWithPads) {
  ChannelConfig cfg;
  cfg.ntx = 2;
  cfg.nrx = 2;
  cfg.timing_pad = 300;
  cfg.tail_pad = 70;
  MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(2, std::vector<cf32>(1000));
  const auto rx = chan.transmit(tx);
  EXPECT_EQ(rx.size(), 2U);
  EXPECT_EQ(rx[0].size(), 300 + 1000 + 70U);  // 1-tap identity channel
  EXPECT_EQ(chan.truth().packet_start, 300U);
}

TEST(MimoChannel, FixedRealizationIsReused) {
  ChannelConfig cfg;
  cfg.ntx = 1;
  cfg.nrx = 1;
  cfg.fading = true;
  cfg.snr_db = 100.0;
  MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(10, cf32{1.0F, 0.0F}));

  auto re = identity_channel(1);
  re.taps[0][0][0] = cf32{0.5F, 0.5F};
  chan.fix_realization(re);
  const auto rx1 = chan.transmit(tx);
  const auto rx2 = chan.transmit(tx);
  EXPECT_NEAR(std::abs(rx1[0][5] - rx2[0][5]), 0.0F, 1e-4F);
  EXPECT_NEAR(rx1[0][5].real(), 0.5F, 1e-3F);

  chan.unfix_realization();
  const auto rx3 = chan.transmit(tx);
  EXPECT_GT(std::abs(rx3[0][5] - rx1[0][5]), 1e-4F);
}

TEST(MimoChannel, RejectsBadConfigs) {
  ChannelConfig cfg;
  cfg.ntx = 2;
  cfg.nrx = 1;  // identity channel but ntx != nrx
  EXPECT_THROW(MimoChannel{cfg}, std::invalid_argument);

  ChannelConfig ok;
  MimoChannel chan(ok);
  EXPECT_THROW(chan.transmit({}), std::invalid_argument);
}

TEST(MimoChannel, CfoGroundTruthRecorded) {
  ChannelConfig cfg;
  cfg.cfo_norm = 2.5e-4;
  MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(100));
  (void)chan.transmit(tx);
  EXPECT_DOUBLE_EQ(chan.truth().cfo_norm, 2.5e-4);
}

// ---- Degenerate impairment modes (ISSUE 2) ----

TEST(Impairments, ClippingBoundsAmplitude) {
  std::vector<cf32> x{{3.0F, 4.0F}, {0.1F, 0.0F}, {-2.0F, 0.0F}, {0.0F, 0.0F}};
  apply_clipping(x, 1.0F);
  for (const auto& v : x) {
    EXPECT_LE(std::abs(v), 1.0F + 1e-6F);
  }
  // Phase preserved on the clipped sample, small samples untouched.
  EXPECT_NEAR(x[0].real() / x[0].imag(), 3.0F / 4.0F, 1e-5F);
  EXPECT_NEAR(x[1].real(), 0.1F, 1e-7F);
  // Non-finite samples must not survive clipping as NaN/Inf escape hatches.
  std::vector<cf32> bad{{std::numeric_limits<float>::infinity(), 0.0F}};
  apply_clipping(bad, 1.0F);
  EXPECT_TRUE(std::isfinite(bad[0].real()));
}

TEST(Impairments, BurstErasureZeroesClampedRegion) {
  std::vector<cf32> x(10, cf32{1.0F, -1.0F});
  apply_burst_erasure(x, 3, 4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool erased = i >= 3 && i < 7;
    EXPECT_EQ(x[i] == cf32{}, erased) << "index " << i;
  }
  // Start or length past the end must clamp, not wrap or write OOB.
  std::vector<cf32> y(5, cf32{1.0F, 0.0F});
  apply_burst_erasure(y, 3, 100);
  EXPECT_EQ(y[2], (cf32{1.0F, 0.0F}));
  EXPECT_EQ(y[4], cf32{});
  apply_burst_erasure(y, 50, 4);  // fully out of range: no-op
  EXPECT_EQ(y[0], (cf32{1.0F, 0.0F}));
}

TEST(Impairments, SfoBelowMinusOneMillionPpmThrows) {
  std::vector<cf32> x(32, cf32{1.0F, 0.0F});
  EXPECT_THROW(apply_sfo(x, -1e6), std::invalid_argument);
  EXPECT_THROW(apply_sfo(x, -2e6), std::invalid_argument);
  EXPECT_NO_THROW(apply_sfo(x, -100.0));
}

TEST(MimoChannel, ZeroPowerPacketIsPureNoise) {
  ChannelConfig cfg;
  cfg.snr_db = 20.0;
  cfg.power_scale = 0.0;
  MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(2000, cf32{1.0F, 0.0F}));
  const auto rx = chan.transmit(tx);
  double p = 0.0;
  for (const auto& v : rx[0]) p += mimonet::dsp::mag_sqr(v);
  p /= static_cast<double>(rx[0].size());
  // Signal gone: residual power is the configured noise floor, not ~1.
  EXPECT_NEAR(p, chan.noise_variance(), 0.3 * chan.noise_variance());
}

TEST(MimoChannel, ClipLevelBoundsCapture) {
  ChannelConfig cfg;
  cfg.snr_db = 30.0;
  cfg.clip_level = 0.5F;
  MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(500, cf32{2.0F, 2.0F}));
  const auto rx = chan.transmit(tx);
  for (const auto& v : rx[0]) {
    EXPECT_LE(std::abs(v), 0.5F + 1e-5F);
  }
}

TEST(MimoChannel, BurstErasureReachesCapture) {
  ChannelConfig cfg;
  cfg.timing_pad = 10;
  cfg.erasure_start = 10;
  cfg.erasure_len = 20;
  MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(100, cf32{1.0F, 0.0F}));
  const auto rx = chan.transmit(tx);
  for (std::size_t i = 10; i < 30; ++i) {
    EXPECT_EQ(rx[0][i], cf32{}) << "index " << i;
  }
  EXPECT_GT(std::abs(rx[0][40]), 0.1F);
}

TEST(MimoChannel, RejectsNonFiniteDegenerateKnobs) {
  ChannelConfig bad_scale;
  bad_scale.power_scale = -1.0;
  EXPECT_THROW(MimoChannel{bad_scale}, std::invalid_argument);
  ChannelConfig bad_clip;
  bad_clip.clip_level = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(MimoChannel{bad_clip}, std::invalid_argument);
}

// ---- FaultPlan unit behavior ----

std::vector<cf32> ones(std::size_t n) {
  return std::vector<cf32>(n, cf32{1.0F, 0.0F});
}

TEST(FaultPlan, BuildersRecordEventsInOrder) {
  FaultPlan plan;
  plan.tone_burst(10, 20, 2.0, 0.1)
      .noise_burst(30, 5, 0.5)
      .gain_step(40, 0, 0.25)
      .sample_drop(50, 4)
      .sample_insert(60, 4)
      .phase_jump(70, 1.5)
      .erasure(80, 8);
  ASSERT_EQ(plan.events.size(), 7U);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.events[0].kind, FaultKind::kToneBurst);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kSampleDrop);
  EXPECT_EQ(plan.events[6].kind, FaultKind::kErasure);
  EXPECT_DOUBLE_EQ(plan.events[0].freq_norm, 0.1);
  EXPECT_DOUBLE_EQ(plan.events[2].magnitude, 0.25);
}

TEST(FaultPlan, ClockSlipsResizeTheCapture) {
  auto x = ones(100);
  FaultPlan drop;
  drop.sample_drop(10, 30);
  apply_fault_plan(x, drop, 1);
  EXPECT_EQ(x.size(), 70U);

  auto y = ones(100);
  y[20] = cf32{0.5F, -0.5F};
  FaultPlan ins;
  ins.sample_insert(20, 7);
  apply_fault_plan(y, ins, 1);
  ASSERT_EQ(y.size(), 107U);
  // Sample-and-hold: the inserted run repeats the sample at the slip point.
  for (std::size_t i = 20; i < 28; ++i) {
    EXPECT_EQ(y[i], (cf32{0.5F, -0.5F})) << i;
  }
}

TEST(FaultPlan, GainStepZeroLengthRunsToTheEnd) {
  auto x = ones(50);
  FaultPlan plan;
  plan.gain_step(30, 0, 0.5);
  apply_fault_plan(x, plan, 1);
  EXPECT_FLOAT_EQ(x[29].real(), 1.0F);
  for (std::size_t i = 30; i < 50; ++i) EXPECT_FLOAT_EQ(x[i].real(), 0.5F);
}

TEST(FaultPlan, EventsPastTheEndAreClampedNotUb) {
  auto x = ones(20);
  FaultPlan plan;
  plan.tone_burst(15, 100, 1.0, 0.05)
      .noise_burst(200, 10, 1.0)
      .erasure(18, 100)
      .sample_drop(19, 50)
      .phase_jump(500, 1.0)
      .sample_insert(500, 3);
  apply_fault_plan(x, plan, 7);
  EXPECT_EQ(x.size(), 19U);  // only the in-range tail of the drop happened
  EXPECT_EQ(x[18], (cf32{0.0F, 0.0F}));  // erased before the drop
}

TEST(FaultPlan, NoiseBurstIsSeedDeterministic) {
  auto a = ones(64), b = ones(64), c = ones(64);
  FaultPlan plan;
  plan.noise_burst(8, 32, 2.0);
  apply_fault_plan(a, plan, 11);
  apply_fault_plan(b, plan, 11);
  apply_fault_plan(c, plan, 12);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Samples outside the burst are untouched either way.
  EXPECT_EQ(a[0], (cf32{1.0F, 0.0F}));
  EXPECT_EQ(a[63], (cf32{1.0F, 0.0F}));
}

TEST(FaultPlan, NonFiniteParametersThrow) {
  auto x = ones(16);
  FaultPlan plan;
  plan.phase_jump(0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(apply_fault_plan(x, plan, 1), std::invalid_argument);
}

TEST(MimoChannel, FaultPlanAppliedAndEchoedAsTruth) {
  ChannelConfig cfg;
  cfg.ntx = 1;
  cfg.nrx = 1;
  cfg.snr_db = 100.0;  // effectively noiseless: the erasure dominates
  cfg.timing_pad = 10;
  cfg.seed = 5;
  cfg.faults.erasure(20, 30);
  MimoChannel chan(cfg);
  const auto rx = chan.transmit({std::vector<cf32>(100, cf32{1.0F, 0.0F})});
  ASSERT_EQ(rx.size(), 1U);
  ASSERT_EQ(chan.truth().faults.events.size(), 1U);
  EXPECT_EQ(chan.truth().faults.events[0].kind, FaultKind::kErasure);
  EXPECT_EQ(chan.truth().faults.events[0].start, 20U);
  for (std::size_t i = 20; i < 50; ++i) {
    EXPECT_EQ(rx[0][i], (cf32{0.0F, 0.0F})) << i;
  }
  EXPECT_GT(std::abs(rx[0][55].real()), 0.5F);
}

}  // namespace
