#include "wifi/stream_parser.hpp"

#include <algorithm>
#include <stdexcept>

namespace mimonet::wifi {

StreamParser::StreamParser(unsigned n_bpscs, std::size_t nss)
    : nss_(nss), s_(std::max<std::size_t>(n_bpscs / 2, 1)) {
  if (nss == 0 || nss > 4) throw std::invalid_argument("StreamParser: nss must be 1..4");
}

void StreamParser::parse_into(std::span<const std::uint8_t> coded,
                              std::vector<std::vector<std::uint8_t>>& out) const {
  if (coded.size() % (nss_ * s_) != 0) {
    throw std::invalid_argument("StreamParser::parse: length not a multiple of nss*s");
  }
  out.resize(nss_);
  const std::size_t per_stream = coded.size() / nss_;
  for (auto& v : out) v.resize(per_stream);

  std::size_t idx = 0;
  for (std::size_t g = 0; g < per_stream / s_; ++g) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out[ss][g * s_ + b] = coded[idx++];
      }
    }
  }
}

std::vector<std::vector<std::uint8_t>> StreamParser::parse(
    std::span<const std::uint8_t> coded) const {
  std::vector<std::vector<std::uint8_t>> out;
  parse_into(coded, out);
  return out;
}

void StreamParser::merge_into(std::span<const std::vector<float>> streams,
                              std::vector<float>& out) const {
  if (streams.size() != nss_) {
    throw std::invalid_argument("StreamParser::merge: wrong stream count");
  }
  const std::size_t per_stream = streams[0].size();
  for (const auto& st : streams) {
    if (st.size() != per_stream || per_stream % s_ != 0) {
      throw std::invalid_argument("StreamParser::merge: ragged or misaligned streams");
    }
  }
  out.resize(per_stream * nss_);
  std::size_t o = 0;
  for (std::size_t g = 0; g < per_stream / s_; ++g) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out[o++] = streams[ss][g * s_ + b];
      }
    }
  }
}

void StreamParser::merge_into(std::span<const std::span<const float>> streams,
                              std::span<float> out) const {
  if (streams.size() != nss_) {
    throw std::invalid_argument("StreamParser::merge: wrong stream count");
  }
  const std::size_t per_stream = streams[0].size();
  for (const auto& st : streams) {
    if (st.size() != per_stream || per_stream % s_ != 0) {
      throw std::invalid_argument("StreamParser::merge: ragged or misaligned streams");
    }
  }
  if (out.size() != per_stream * nss_) {
    throw std::invalid_argument("StreamParser::merge: output span size mismatch");
  }
  std::size_t o = 0;
  for (std::size_t g = 0; g < per_stream / s_; ++g) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out[o++] = streams[ss][g * s_ + b];
      }
    }
  }
}

std::vector<float> StreamParser::merge(
    std::span<const std::vector<float>> streams) const {
  std::vector<float> out;
  merge_into(streams, out);
  return out;
}

std::vector<std::uint8_t> StreamParser::merge_bits(
    std::span<const std::vector<std::uint8_t>> streams) const {
  if (streams.size() != nss_) {
    throw std::invalid_argument("StreamParser::merge_bits: wrong stream count");
  }
  const std::size_t per_stream = streams[0].size();
  for (const auto& st : streams) {
    if (st.size() != per_stream || per_stream % s_ != 0) {
      throw std::invalid_argument("StreamParser::merge_bits: ragged or misaligned streams");
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(per_stream * nss_);
  for (std::size_t g = 0; g < per_stream / s_; ++g) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out.push_back(streams[ss][g * s_ + b]);
      }
    }
  }
  return out;
}

}  // namespace mimonet::wifi
