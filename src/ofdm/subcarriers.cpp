#include "ofdm/subcarriers.hpp"

#include <algorithm>

namespace mimonet::ofdm {

SubcarrierMap::SubcarrierMap(CarrierPlan plan) : plan_(plan) {
  const int edge = (plan == CarrierPlan::kLegacy) ? 26 : 28;
  for (int k = -edge; k <= edge; ++k) {
    if (k == 0) continue;  // DC null
    const bool is_pilot =
        std::find(kPilotCarriers.begin(), kPilotCarriers.end(), k) != kPilotCarriers.end();
    if (is_pilot) continue;
    data_bins_.push_back(logical_to_bin(k));
    data_logical_.push_back(k);
  }
  for (const int k : kPilotCarriers) {
    pilot_bins_.push_back(logical_to_bin(k));
  }
}

}  // namespace mimonet::ofdm
