// FIR filters, filter design, and sliding correlators.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/correlator.hpp"
#include "dsp/fir.hpp"
#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet::dsp;

std::vector<cf32> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(-1.0F, 1.0F);
  std::vector<cf32> v(n);
  for (auto& x : v) x = cf32(d(rng), d(rng));
  return v;
}

std::vector<cf32> naive_convolve(std::span<const cf32> x, std::span<const cf32> taps) {
  std::vector<cf32> y(x.size(), cf32{0.0F, 0.0F});
  for (std::size_t n = 0; n < x.size(); ++n) {
    cf64 acc{0.0, 0.0};
    for (std::size_t t = 0; t < taps.size() && t <= n; ++t) {
      acc += cf64(taps[t]) * cf64(x[n - t]);
    }
    y[n] = cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return y;
}

TEST(FirFilter, EmptyTapsThrow) {
  EXPECT_THROW(FirFilter({}), std::invalid_argument);
}

TEST(FirFilter, IdentityTapPassesSignal) {
  FirFilter f({cf32{1.0F, 0.0F}});
  const auto x = random_signal(50, 1);
  const auto y = f.process(x);
  EXPECT_LT(rms_error(x, y), 1e-6);
}

TEST(FirFilter, DelayTapShiftsSignal) {
  FirFilter f({cf32{0.0F, 0.0F}, cf32{0.0F, 0.0F}, cf32{1.0F, 0.0F}});
  const auto x = random_signal(20, 2);
  const auto y = f.process(x);
  for (std::size_t i = 2; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i - 2]), 0.0F, 1e-6F);
  }
  EXPECT_NEAR(std::abs(y[0]), 0.0F, 1e-6F);
  EXPECT_NEAR(std::abs(y[1]), 0.0F, 1e-6F);
}

TEST(FirFilter, MatchesNaiveConvolution) {
  const auto taps = random_signal(7, 3);
  const auto x = random_signal(64, 4);
  FirFilter f(taps);
  const auto y = f.process(x);
  const auto ref = naive_convolve(x, taps);
  EXPECT_LT(rms_error(y, ref), 1e-5);
}

TEST(FirFilter, ChunkedProcessingMatchesWhole) {
  const auto taps = random_signal(5, 5);
  const auto x = random_signal(100, 6);
  FirFilter whole(taps);
  const auto y_whole = whole.process(x);

  FirFilter chunked(taps);
  std::vector<cf32> y_chunks;
  for (std::size_t pos = 0; pos < x.size();) {
    const std::size_t n = std::min<std::size_t>(13, x.size() - pos);
    const auto part = chunked.process(std::span<const cf32>(x).subspan(pos, n));
    y_chunks.insert(y_chunks.end(), part.begin(), part.end());
    pos += n;
  }
  EXPECT_LT(rms_error(y_whole, y_chunks), 1e-6);
}

TEST(FirFilter, ResetClearsState) {
  const auto taps = random_signal(4, 7);
  FirFilter f(taps);
  const auto x = random_signal(10, 8);
  const auto y1 = f.process(x);
  f.reset();
  const auto y2 = f.process(x);
  EXPECT_LT(rms_error(y1, y2), 1e-6);
}

TEST(DesignLowpass, UnitDcGain) {
  const auto taps = design_lowpass(0.2, 31);
  double sum = 0.0;
  for (const auto t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(DesignLowpass, AttenuatesHighFrequency) {
  const auto taps = design_lowpass(0.1, 63);
  std::vector<cf32> ctaps(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) ctaps[i] = cf32(taps[i], 0.0F);
  FirFilter f(ctaps);
  // High-frequency tone at 0.4 cycles/sample.
  std::vector<cf32> x(512);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(2.0F * pi_f * 0.4F * static_cast<float>(i));
  }
  const auto y = f.process(x);
  const double out_power =
      mean_power(std::span<const cf32>(y).subspan(taps.size(), y.size() - taps.size()));
  EXPECT_LT(out_power, 1e-3);
}

TEST(DesignLowpass, Validation) {
  EXPECT_THROW(design_lowpass(0.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.6, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.2, 30), std::invalid_argument);
}

TEST(Windows, HannEndpointsAndPeak) {
  const auto w = hann_window(9);
  EXPECT_NEAR(w[0], 0.0F, 1e-6F);
  EXPECT_NEAR(w[8], 0.0F, 1e-6F);
  EXPECT_NEAR(w[4], 1.0F, 1e-6F);
}

TEST(Windows, HammingEndpoints) {
  const auto w = hamming_window(11);
  EXPECT_NEAR(w[0], 0.08F, 1e-5F);
  EXPECT_NEAR(w[10], 0.08F, 1e-5F);
}

TEST(MovingSum, SlidingWindowTracksSum) {
  MovingSum ms(3);
  EXPECT_EQ(ms.push({1.0, 0.0}).real(), 1.0);
  EXPECT_EQ(ms.push({2.0, 0.0}).real(), 3.0);
  EXPECT_EQ(ms.push({3.0, 0.0}).real(), 6.0);
  EXPECT_EQ(ms.push({4.0, 0.0}).real(), 9.0);  // 2+3+4
  ms.reset();
  EXPECT_EQ(ms.value().real(), 0.0);
}

TEST(MovingSum, ZeroWindowThrows) {
  EXPECT_THROW(MovingSum(0), std::invalid_argument);
  EXPECT_THROW(MovingSumReal(0), std::invalid_argument);
}

TEST(LagAutocorrelate, PeriodicSignalGivesUnitMetric) {
  // 16-periodic signal: metric |c|^2/p^2 should be ~1 everywhere.
  std::vector<cf32> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(2.0F * pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  const auto res = lag_autocorrelate(x, 16, 32);
  ASSERT_FALSE(res.metric.empty());
  for (const auto m : res.metric) EXPECT_NEAR(m, 1.0F, 1e-3F);
}

TEST(LagAutocorrelate, RandomSignalGivesLowMetric) {
  const auto x = random_signal(4000, 11);
  const auto res = lag_autocorrelate(x, 16, 64);
  double mean = 0.0;
  for (const auto m : res.metric) mean += m;
  mean /= static_cast<double>(res.metric.size());
  EXPECT_LT(mean, 0.2);
}

TEST(LagAutocorrelate, TooShortInputGivesEmpty) {
  std::vector<cf32> x(10);
  const auto res = lag_autocorrelate(x, 16, 32);
  EXPECT_TRUE(res.metric.empty());
}

TEST(LagAutocorrelate, OutputSizeIsCorrect) {
  std::vector<cf32> x(100);
  const auto res = lag_autocorrelate(x, 16, 32);
  EXPECT_EQ(res.metric.size(), 100 - 16 - 32 + 1);
  EXPECT_EQ(res.corr.size(), res.metric.size());
  EXPECT_EQ(res.pow_lead.size(), res.metric.size());
  EXPECT_EQ(res.pow_lag.size(), res.metric.size());
}

TEST(LagAutocorrelate, PowerSumsMatchDirectComputation) {
  const auto x = random_signal(300, 21);
  const std::size_t lag = 16;
  const std::size_t window = 48;
  const auto res = lag_autocorrelate(x, lag, window);
  ASSERT_FALSE(res.metric.empty());
  for (std::size_t n = 0; n < res.metric.size(); n += 17) {
    double lead = 0.0;
    double lagp = 0.0;
    cf64 corr{0.0, 0.0};
    for (std::size_t k = 0; k < window; ++k) {
      lead += static_cast<double>(mag_sqr(x[n + k]));
      lagp += static_cast<double>(mag_sqr(x[n + k + lag]));
      corr += cf64(x[n + k]) * std::conj(cf64(x[n + k + lag]));
    }
    EXPECT_NEAR(res.pow_lead[n], static_cast<float>(lead), 1e-4F * static_cast<float>(lead));
    EXPECT_NEAR(res.pow_lag[n], static_cast<float>(lagp), 1e-4F * static_cast<float>(lagp));
    // Metric recomputed from the exposed sums must agree with the stored one.
    const double pp = static_cast<double>(res.pow_lead[n]) *
                      static_cast<double>(res.pow_lag[n]);
    EXPECT_NEAR(res.metric[n],
                static_cast<float>(mag_sqr(cf64(res.corr[n])) / pp), 2e-4F);
  }
}

TEST(LagAutocorrelate, SimdAndScalarPathsAreBitIdentical) {
  if (!detail::autocorr_simd_active()) {
    GTEST_SKIP() << "no AVX2 at runtime; scalar path is the only path";
  }
  // Odd length exercises the vector tails; the signal mixes a plateau-like
  // periodic head with noise so both high- and low-metric regions appear.
  auto x = random_signal(1237, 31);
  for (std::size_t i = 100; i < 400; ++i) {
    x[i] = phasor(2.0F * pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  AutocorrResult simd;
  lag_autocorrelate_into(x, 16, 48, simd);

  detail::force_scalar_autocorr(true);
  AutocorrResult scalar;
  lag_autocorrelate_into(x, 16, 48, scalar);
  detail::force_scalar_autocorr(false);

  ASSERT_EQ(simd.metric.size(), scalar.metric.size());
  for (std::size_t i = 0; i < simd.metric.size(); ++i) {
    ASSERT_EQ(simd.corr[i], scalar.corr[i]) << "corr diverges at " << i;
    ASSERT_EQ(simd.pow_lead[i], scalar.pow_lead[i]) << "pow_lead at " << i;
    ASSERT_EQ(simd.pow_lag[i], scalar.pow_lag[i]) << "pow_lag at " << i;
    ASSERT_EQ(simd.metric[i], scalar.metric[i]) << "metric at " << i;
  }
}

TEST(LagAutocorrelateStrided, StrideOneMatchesFullRate) {
  const auto x = random_signal(500, 41);
  AutocorrResult full;
  lag_autocorrelate_into(x, 16, 48, full);
  AutocorrResult strided;
  lag_autocorrelate_strided_into(x, 16, 48, 1, strided);
  ASSERT_EQ(full.metric.size(), strided.metric.size());
  for (std::size_t i = 0; i < full.metric.size(); ++i) {
    EXPECT_EQ(full.metric[i], strided.metric[i]);
  }
}

TEST(LagAutocorrelateStrided, MatchesDecimatedReference) {
  // Stride-D output position i must equal a full-rate sweep of the manually
  // decimated sequence at position i.
  const auto x = random_signal(1000, 43);
  const std::size_t lag = 16;
  const std::size_t window = 96;
  for (const std::size_t d : {2U, 4U, 8U}) {
    AutocorrResult strided;
    lag_autocorrelate_strided_into(x, lag, window, d, strided);

    std::vector<cf32> dec;
    for (std::size_t i = 0; i < x.size(); i += d) dec.push_back(x[i]);
    AutocorrResult ref;
    lag_autocorrelate_into(dec, lag / d, window / d, ref);

    ASSERT_EQ(strided.metric.size(), ref.metric.size()) << "stride " << d;
    for (std::size_t i = 0; i < ref.metric.size(); ++i) {
      ASSERT_EQ(strided.metric[i], ref.metric[i]) << "stride " << d << " pos " << i;
      ASSERT_EQ(strided.corr[i], ref.corr[i]);
    }
  }
}

TEST(LagAutocorrelateStrided, DetectsDecimatedPlateau) {
  // A 16-periodic burst must still produce a near-unit metric when scanned
  // at stride 8 (the decimated sequence is 2-periodic).
  std::vector<cf32> x(1600, cf32{0.0F, 0.0F});
  std::mt19937 rng(47);
  std::uniform_real_distribution<float> dist(-0.1F, 0.1F);
  for (auto& v : x) v = cf32(dist(rng), dist(rng));
  for (std::size_t i = 400; i < 720; ++i) {
    x[i] += phasor(2.0F * pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  AutocorrResult res;
  lag_autocorrelate_strided_into(x, 16, 96, 8, res);
  ASSERT_FALSE(res.metric.empty());
  // Position 416 samples in = decimated index 52: fully inside the burst.
  EXPECT_GT(res.metric[52], 0.9F);
  // Far outside the burst: noise-level metric.
  EXPECT_LT(res.metric[10], 0.4F);
}

TEST(LagAutocorrelateStrided, ValidatesStrideDivisibility) {
  std::vector<cf32> x(200);
  AutocorrResult res;
  EXPECT_THROW(lag_autocorrelate_strided_into(x, 16, 48, 0, res),
               std::invalid_argument);
  EXPECT_THROW(lag_autocorrelate_strided_into(x, 16, 48, 5, res),
               std::invalid_argument);  // 16 % 5 != 0
  EXPECT_THROW(lag_autocorrelate_strided_into(x, 16, 50, 4, res),
               std::invalid_argument);  // window 50 % stride 4 != 0
}

TEST(LagAutocorrelate, IntoReusesCapacityWithoutAllocation) {
  const auto x = random_signal(2000, 53);
  AutocorrResult res;
  lag_autocorrelate_into(x, 16, 48, res);  // warm: capacity established
  const auto* corr_data = res.corr.data();
  const auto* lead_data = res.pow_lead.data();
  lag_autocorrelate_into(x, 16, 48, res);  // same size: no reallocation
  EXPECT_EQ(res.corr.data(), corr_data);
  EXPECT_EQ(res.pow_lead.data(), lead_data);
}

TEST(LagAutocorrelate, CfoShowsUpInAngle) {
  // Periodic signal with CFO: angle(corr) = -2*pi*cfo*lag.
  const double cfo = 0.003;
  std::vector<cf32> x(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(2.0F * pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  mix(x, 0.0, two_pi_d * cfo);
  const auto res = lag_autocorrelate(x, 16, 64);
  const double est = -std::arg(res.corr[10]) / (two_pi_d * 16.0);
  EXPECT_NEAR(est, cfo, 1e-5);
}

}  // namespace
