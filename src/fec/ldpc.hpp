// Quasi-cyclic LDPC code in the IEEE 802.11n style: H = [A | h | T] with a
// dual-diagonal parity part that admits linear-time encoding, and a
// normalized min-sum belief-propagation decoder.
//
// 802.11n's optional LDPC mode (HT-SIG "FEC coding" bit) uses published
// shift tables; we keep the exact structure (12 x 24 base matrix, rate 1/2,
// Z = 27 -> n = 648) but generate the information-part shifts from a fixed
// seed with 4-cycle avoidance, since the goal is the code *family*'s
// behaviour, not bit-exact interop (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mimonet::fec {

/// Rate-1/2 QC-LDPC code with n = 24 * Z, k = 12 * Z.
class LdpcCode {
 public:
  /// @param z circulant size (default 27 gives the 802.11n n = 648 code).
  explicit LdpcCode(std::size_t z = 27);

  [[nodiscard]] std::size_t n() const noexcept { return 24 * z_; }
  [[nodiscard]] std::size_t k() const noexcept { return 12 * z_; }
  [[nodiscard]] std::size_t z() const noexcept { return z_; }

  /// Encode k information bits into an n-bit codeword (systematic: the
  /// first k output bits are the input).
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> info) const;

  /// Decode n LLRs (positive = bit 0, matching the rest of the stack).
  /// @param converged optional out-flag: true when all parity checks
  ///        passed (decoder stopped early).
  [[nodiscard]] std::vector<std::uint8_t> decode(std::span<const float> llrs,
                                                 unsigned max_iterations = 30,
                                                 bool* converged = nullptr) const;

  /// Syndrome check on hard bits: true when H x == 0.
  [[nodiscard]] bool check(std::span<const std::uint8_t> codeword) const;

 private:
  struct Edge {
    std::uint32_t variable;  // variable-node (codeword bit) index
    std::uint32_t check;     // check-node index
  };

  void build_graph();

  std::size_t z_;
  // base_[row][col] = circulant shift, or -1 for a zero block.
  std::vector<std::vector<int>> base_;
  std::vector<Edge> edges_;                    // all Tanner-graph edges
  std::vector<std::uint32_t> check_edge_off_;  // CSR offsets per check node
  std::vector<std::uint32_t> check_edges_;     // edge ids grouped by check
  std::vector<std::uint32_t> var_edge_off_;    // CSR offsets per variable
  std::vector<std::uint32_t> var_edges_;       // edge ids grouped by variable
};

}  // namespace mimonet::fec
