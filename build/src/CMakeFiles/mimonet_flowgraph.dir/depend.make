# Empty dependencies file for mimonet_flowgraph.
# This may be replaced when dependencies are built.
