// The parallel Monte-Carlo engine's core contract: LinkResult aggregates
// are bit-identical for any thread count, observers run on the calling
// thread in packet order, and early stopping is deterministic. Run this
// target under a -DMIMONET_TSAN=ON build to exercise the worker pool under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/link_simulator.hpp"

namespace {

using namespace mimonet;

core::LinkConfig test_config(std::uint64_t seed = 42) {
  auto cfg = core::LinkConfig::make()
                 .mcs(9)
                 .snr_db(14.0)
                 .fading(true)
                 .payload_bytes(200)
                 .seed(seed)
                 .build();
  return cfg;
}

void expect_stats_identical(const dsp::RunningStats& a, const dsp::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.rms(), b.rms());
}

void expect_results_identical(const core::LinkResult& a, const core::LinkResult& b) {
  EXPECT_EQ(a.ber.bits(), b.ber.bits());
  EXPECT_EQ(a.ber.errors(), b.ber.errors());
  EXPECT_EQ(a.per.packets(), b.per.packets());
  EXPECT_EQ(a.per.failures(), b.per.failures());
  EXPECT_EQ(a.undetected, b.undetected);
  EXPECT_EQ(a.throughput.goodput_mbps(), b.throughput.goodput_mbps());
  EXPECT_EQ(a.throughput.airtime_us(), b.throughput.airtime_us());
  expect_stats_identical(a.snr_est_db, b.snr_est_db);
  expect_stats_identical(a.pilot_snr_db, b.pilot_snr_db);
  expect_stats_identical(a.timing_err, b.timing_err);
  expect_stats_identical(a.cfo_err, b.cfo_err);
}

TEST(LinkParallel, ThreadCountDoesNotChangeResults) {
  constexpr std::size_t kPackets = 16;
  const auto base =
      core::LinkSimulator(test_config())
          .run(core::RunOptions{.n_packets = kPackets, .n_threads = 1});
  ASSERT_EQ(base.per.packets(), kPackets);
  for (const std::size_t n_threads : {2UL, 8UL}) {
    auto res = core::LinkSimulator(test_config())
                   .run(core::RunOptions{.n_packets = kPackets, .n_threads = n_threads});
    expect_results_identical(base, res);
  }
}

TEST(LinkParallel, ThreadCountInvarianceUnderImpairments) {
  // CFO + Doppler exercise every channel RNG stream (fading, noise, pad,
  // Doppler innovation); the per-packet reseed must cover all of them.
  auto make = [] {
    auto cfg = core::LinkConfig::make()
                   .mcs(8)
                   .snr_db(18.0)
                   .fading(true, channel::DelayProfile::kShort)
                   .cfo_norm(3e-4)
                   .doppler_norm(2e-5)
                   .payload_bytes(150)
                   .seed(7)
                   .build();
    return cfg;
  };
  const auto a = core::LinkSimulator(make()).run(
      core::RunOptions{.n_packets = 10, .n_threads = 1});
  const auto b = core::LinkSimulator(make()).run(
      core::RunOptions{.n_packets = 10, .n_threads = 3});
  expect_results_identical(a, b);
}

TEST(LinkParallel, ObserverSeesEveryPacketInOrderOnCallingThread) {
  constexpr std::size_t kPackets = 12;
  class Recorder final : public core::PacketObserver {
   public:
    void on_packet(const core::PacketOutcome& o) override {
      indices.push_back(o.index);
      threads.push_back(std::this_thread::get_id());
    }
    std::vector<std::size_t> indices;
    std::vector<std::thread::id> threads;
  };
  Recorder rec;
  core::LinkSimulator sim(test_config());
  (void)sim.run(core::RunOptions{.n_packets = kPackets, .n_threads = 4}, &rec);
  ASSERT_EQ(rec.indices.size(), kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) {
    EXPECT_EQ(rec.indices[i], i);
    EXPECT_EQ(rec.threads[i], std::this_thread::get_id());
  }
}

TEST(LinkParallel, EarlyStopIsDeterministicAcrossThreadCounts) {
  // Low SNR so failures arrive quickly; both runs must stop on the exact
  // same packet.
  auto make = [] {
    auto cfg = core::LinkConfig::make().mcs(3).snr_db(4.0).payload_bytes(300).seed(5);
    return cfg.build();
  };
  const core::RunOptions opt1{.n_packets = 64,
                              .n_threads = 1,
                              .max_packets = 64,
                              .target_per_events = 5};
  core::RunOptions opt4 = opt1;
  opt4.n_threads = 4;
  const auto a = core::LinkSimulator(make()).run(opt1);
  const auto b = core::LinkSimulator(make()).run(opt4);
  EXPECT_GE(a.per.failures(), 5U);
  EXPECT_LT(a.per.packets(), 64U);  // actually stopped early
  expect_results_identical(a, b);
}

TEST(LinkParallel, EarlyStopCapsAtMaxPackets) {
  // Clean link: the target is never reached, so the run caps at max_packets.
  auto cfg = core::LinkConfig::make().mcs(0).snr_db(30.0).payload_bytes(100).seed(3).build();
  const auto res = core::LinkSimulator(cfg).run(core::RunOptions{
      .n_packets = 4, .n_threads = 2, .max_packets = 6, .target_per_events = 100});
  EXPECT_EQ(res.per.packets(), 6U);
  EXPECT_EQ(res.per.failures(), 0U);
}

TEST(LinkParallel, LegacyObserverAdapterStillWorks) {
  core::LinkSimulator sim(test_config());
  std::size_t seen = 0;
  const auto res = sim.run(
      4, [&](const core::RxPacket& pkt, const std::vector<std::uint8_t>& sent) {
        ++seen;
        EXPECT_FALSE(sent.empty());
        (void)pkt;
      });
  EXPECT_EQ(seen + res.undetected, 4U);
}

TEST(LinkParallel, LinkResultMergeEqualsOneBigRun) {
  // Two disjoint halves simulated separately merge into exactly the
  // aggregate counters of... not the same packets (different indices), so
  // instead check merge()'s arithmetic: counters sum, stats combine.
  auto cfg = test_config(11);
  auto a = core::LinkSimulator(cfg).run(6);
  const auto b = core::LinkSimulator(cfg).run(9);
  const std::size_t packets = a.per.packets() + b.per.packets();
  const std::size_t bits = a.ber.bits() + b.ber.bits();
  const std::size_t snr_n = a.snr_est_db.count() + b.snr_est_db.count();
  const double air = a.throughput.airtime_us() + b.throughput.airtime_us();
  a.merge(b);
  EXPECT_EQ(a.per.packets(), packets);
  EXPECT_EQ(a.ber.bits(), bits);
  EXPECT_EQ(a.snr_est_db.count(), snr_n);
  EXPECT_DOUBLE_EQ(a.throughput.airtime_us(), air);
}

TEST(LinkParallel, SummaryRowMatchesHeaders) {
  const auto res = core::LinkSimulator(test_config()).run(3);
  EXPECT_EQ(res.summary_row().size(), core::LinkResult::summary_headers().size());
}

TEST(LinkParallel, BuilderAssemblesEquivalentConfig) {
  const core::LinkConfig built = core::LinkConfig::make()
                                     .mcs(11)
                                     .snr_db(12.0)
                                     .nrx(3)
                                     .fading(true)
                                     .payload_bytes(400)
                                     .seed(99)
                                     .equalizer(eq::EqualizerType::kZeroForcing);
  auto manual = core::make_link_config(11, 12.0, 3);
  manual.channel.fading = true;
  manual.psdu_payload_bytes = 400;
  manual.seed = 99;
  manual.phy.equalizer = eq::EqualizerType::kZeroForcing;
  EXPECT_EQ(built.phy.mcs, manual.phy.mcs);
  EXPECT_EQ(built.channel.ntx, manual.channel.ntx);
  EXPECT_EQ(built.channel.nrx, manual.channel.nrx);
  EXPECT_EQ(built.channel.snr_db, manual.channel.snr_db);
  EXPECT_EQ(built.channel.fading, manual.channel.fading);
  EXPECT_EQ(built.psdu_payload_bytes, manual.psdu_payload_bytes);
  EXPECT_EQ(built.seed, manual.seed);
  EXPECT_EQ(built.phy.equalizer, manual.phy.equalizer);
  // And the two produce bit-identical simulations.
  expect_results_identical(core::LinkSimulator(built).run(5),
                           core::LinkSimulator(manual).run(5));
}

TEST(LinkParallel, ZeroPacketsIsEmptyResult) {
  const auto res = core::LinkSimulator(test_config())
                       .run(core::RunOptions{.n_packets = 0, .n_threads = 4});
  EXPECT_EQ(res.per.packets(), 0U);
  EXPECT_EQ(res.ber.bits(), 0U);
}

// Regression (ISSUE 2): an empty LinkResult's bench-table row must render
// defined values everywhere — no "nan"/"inf" cells from zero denominators.
TEST(LinkParallel, EmptyResultSummaryRowHasNoNanCells) {
  const core::LinkResult empty;
  for (const auto& cell : empty.summary_row()) {
    EXPECT_EQ(cell.find("nan"), std::string::npos) << cell;
    EXPECT_EQ(cell.find("inf"), std::string::npos) << cell;
  }
}

}  // namespace
