#include "dsp/fft.hpp"
#include "dsp/fft_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace mimonet::dsp {

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (size < 2 || !std::has_single_bit(size)) {
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  }
  log2_size_ = static_cast<std::size_t>(std::countr_zero(size));

  bitrev_.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < log2_size_; ++b) {
      rev = (rev << 1U) | ((i >> b) & 1U);
    }
    bitrev_[i] = rev;
  }

  twiddle_fwd_.resize(size / 2);
  twiddle_inv_.resize(size / 2);
  for (std::size_t k = 0; k < size / 2; ++k) {
    const double theta = -two_pi_d * static_cast<double>(k) / static_cast<double>(size);
    const cf64 w = phasor_d(theta);
    twiddle_fwd_[k] = cf32(static_cast<float>(w.real()), static_cast<float>(w.imag()));
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }
}

void FftPlan::transform(std::span<const cf32> in, std::span<cf32> out, bool invert) const {
  if (in.size() != size_ || out.size() != size_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  transform_one(in.data(), out.data(), invert);
}

void FftPlan::transform_one(const cf32* in, cf32* out, bool invert) const noexcept {
  // Bit-reversal copy. Aliasing in==out is handled by swapping pairs.
  if (in == out) {
    for (std::size_t i = 0; i < size_; ++i) {
      const std::size_t j = bitrev_[i];
      if (i < j) std::swap(out[i], out[j]);
    }
  } else {
    for (std::size_t i = 0; i < size_; ++i) out[bitrev_[i]] = in[i];
  }

  const auto& tw = invert ? twiddle_inv_ : twiddle_fwd_;
  for (std::size_t len = 2; len <= size_; len <<= 1U) {
    const std::size_t half = len / 2;
    const std::size_t stride = size_ / len;  // twiddle index step
    for (std::size_t start = 0; start < size_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cf32 w = tw[k * stride];
        const cf32 a = out[start + k];
        const cf32 b = out[start + k + half] * w;
        out[start + k] = a + b;
        out[start + k + half] = a - b;
      }
    }
  }

  if (invert) {
    const float inv_n = 1.0F / static_cast<float>(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] *= inv_n;
  }
}

void FftPlan::forward(std::span<const cf32> in, std::span<cf32> out) const {
  transform(in, out, /*invert=*/false);
}

void FftPlan::forward_batch(std::span<const cf32> in, std::span<cf32> out) const {
  if (in.size() != out.size() || in.size() % size_ != 0) {
    throw std::invalid_argument("FftPlan::forward_batch: slab size mismatch");
  }
  const std::size_t n = in.size() / size_;
  for (std::size_t i = 0; i < n; ++i) {
    transform_one(in.data() + i * size_, out.data() + i * size_, /*invert=*/false);
  }
}

void FftPlan::forward_batch_strided(std::span<const cf32> in, std::size_t n,
                                    std::size_t in_stride, std::size_t window_offset,
                                    std::span<cf32> out) const {
  if (n == 0) return;
  if (in.size() < (n - 1) * in_stride + window_offset + size_ ||
      out.size() != n * size_) {
    throw std::invalid_argument("FftPlan::forward_batch_strided: size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    transform_one(in.data() + i * in_stride + window_offset,
                  out.data() + i * size_, /*invert=*/false);
  }
}

void FftPlan::inverse(std::span<const cf32> in, std::span<cf32> out) const {
  transform(in, out, /*invert=*/true);
}

std::vector<cf32> fft(std::span<const cf32> in) {
  std::vector<cf32> out(in.size());
  shared_fft_plan(in.size()).forward(in, out);
  return out;
}

std::vector<cf32> ifft(std::span<const cf32> in) {
  std::vector<cf32> out(in.size());
  shared_fft_plan(in.size()).inverse(in, out);
  return out;
}

void fftshift(std::span<cf32> buf) {
  const std::size_t half = buf.size() / 2;
  for (std::size_t i = 0; i < half; ++i) std::swap(buf[i], buf[i + half]);
}

}  // namespace mimonet::dsp
