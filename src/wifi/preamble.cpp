#include "wifi/preamble.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "ofdm/symbol.hpp"

namespace mimonet::wifi {

namespace {

using ofdm::kFftSize;
using ofdm::SubcarrierMap;

// L-LTF sequence, logical subcarriers -26..26 (802.11-2016 eq. 17-11).
constexpr std::array<float, 53> kLltfSeq{
    1,  1,  -1, -1, 1,  1,  -1, 1,  -1, 1,  1,  1,  1,  1, 1, -1, -1, 1,
    1,  -1, 1,  -1, 1,  1,  1,  1,  0,  1,  -1, -1, 1,  1, -1, 1,  -1, 1,
    -1, -1, -1, -1, -1, 1,  1,  -1, -1, 1,  -1, 1,  -1, 1, 1,  1,  1};

// HT-LTF sequence, logical subcarriers -28..28 (802.11n eq. 20-24):
// {1, 1} ++ L-LTF ++ {-1, -1}.
constexpr std::array<float, 57> kHtltfSeq = [] {
  std::array<float, 57> seq{};
  seq[0] = 1.0F;
  seq[1] = 1.0F;
  for (std::size_t i = 0; i < kLltfSeq.size(); ++i) seq[2 + i] = kLltfSeq[i];
  seq[55] = -1.0F;
  seq[56] = -1.0F;
  return seq;
}();

// L-STF occupied tones: logical index and sign of the sqrt(13/6)*(1+j) value
// (802.11-2016 eq. 17-8). Entry {k, s} means S_k = s * sqrt(13/6) * (1+j).
struct StfTone {
  int k;
  float sign;
};
constexpr std::array<StfTone, 12> kLstfTones{{{-24, 1.0F},
                                              {-20, -1.0F},
                                              {-16, 1.0F},
                                              {-12, -1.0F},
                                              {-8, -1.0F},
                                              {-4, 1.0F},
                                              {4, -1.0F},
                                              {8, -1.0F},
                                              {12, 1.0F},
                                              {16, 1.0F},
                                              {20, 1.0F},
                                              {24, 1.0F}}};

// P_HTLTF (802.11n eq. 20-27).
constexpr std::array<std::array<float, 4>, 4> kPMatrix{{
    {1, -1, 1, 1},
    {1, 1, -1, 1},
    {1, 1, 1, -1},
    {-1, 1, 1, 1},
}};

// One 64-sample IFFT period of a grid, scaled by gain.
std::vector<cf32> ifft_period(std::span<const cf32> grid, float gain) {
  const dsp::FftPlan plan(kFftSize);
  std::vector<cf32> time(kFftSize);
  plan.inverse(grid, time);
  for (auto& v : time) v *= gain;
  return time;
}

// Periodic extension: out[i] = period[i % 64] for `length` samples, starting
// at phase `start` into the period (used for the LTF's 32-sample GI).
std::vector<cf32> periodic(std::span<const cf32> period, std::size_t start,
                           std::size_t length) {
  std::vector<cf32> out(length);
  for (std::size_t i = 0; i < length; ++i) {
    out[i] = period[(start + i) % period.size()];
  }
  return out;
}

}  // namespace

float tone_gain(std::size_t n_tones) noexcept {
  return static_cast<float>(kFftSize) / std::sqrt(static_cast<float>(n_tones));
}

std::span<const float> lltf_sequence() noexcept { return kLltfSeq; }
std::span<const float> htltf_sequence() noexcept { return kHtltfSeq; }

std::array<cf32, kFftSize> lstf_grid() {
  std::array<cf32, kFftSize> grid{};
  const float a = std::sqrt(13.0F / 6.0F);
  for (const auto& tone : kLstfTones) {
    grid[SubcarrierMap::logical_to_bin(tone.k)] = cf32(a * tone.sign, a * tone.sign);
  }
  return grid;
}

std::array<cf32, kFftSize> lltf_grid() {
  std::array<cf32, kFftSize> grid{};
  for (int k = -26; k <= 26; ++k) {
    grid[SubcarrierMap::logical_to_bin(k)] =
        cf32(kLltfSeq[static_cast<std::size_t>(k + 26)], 0.0F);
  }
  return grid;
}

std::array<cf32, kFftSize> htltf_grid() {
  std::array<cf32, kFftSize> grid{};
  for (int k = -28; k <= 28; ++k) {
    grid[SubcarrierMap::logical_to_bin(k)] =
        cf32(kHtltfSeq[static_cast<std::size_t>(k + 28)], 0.0F);
  }
  return grid;
}

void apply_cyclic_shift(std::span<cf32> grid, int shift_samples) noexcept {
  ofdm::cyclic_shift_grid(grid, shift_samples);
}

int legacy_csd_samples(std::size_t itx, std::size_t ntx) {
  if (itx >= ntx || ntx > 4) throw std::invalid_argument("legacy_csd: bad chain index");
  // Table 20-8, converted from ns to samples at 20 Msps (50 ns/sample).
  static constexpr std::array<std::array<int, 4>, 4> csd{{
      {0, 0, 0, 0},
      {0, -4, 0, 0},
      {0, -2, -4, 0},
      {0, -1, -2, -3},
  }};
  return csd[ntx - 1][itx];
}

int ht_csd_samples(std::size_t iss, std::size_t nss) {
  if (iss >= nss || nss > 4) throw std::invalid_argument("ht_csd: bad stream index");
  // Table 20-9: 0 / -400 / -200 / -600 ns.
  static constexpr std::array<std::array<int, 4>, 4> csd{{
      {0, 0, 0, 0},
      {0, -8, 0, 0},
      {0, -8, -4, 0},
      {0, -8, -4, -12},
  }};
  return csd[nss - 1][iss];
}

std::size_t num_ht_ltfs(std::size_t nss) {
  switch (nss) {
    case 1: return 1;
    case 2: return 2;
    case 3:
    case 4: return 4;
    default: throw std::invalid_argument("num_ht_ltfs: nss must be 1..4");
  }
}

float p_matrix(std::size_t row, std::size_t col) noexcept {
  return kPMatrix[row % 4][col % 4];
}

std::vector<cf32> make_lstf(std::size_t itx, std::size_t ntx) {
  auto grid = lstf_grid();
  apply_cyclic_shift(grid, legacy_csd_samples(itx, ntx));
  const auto period = ifft_period(grid, tone_gain(52));
  // The STF is 16-sample periodic; 160 samples = 10 short repetitions.
  return periodic(period, 0, kLstfLen);
}

std::vector<cf32> make_lltf(std::size_t itx, std::size_t ntx) {
  auto grid = lltf_grid();
  apply_cyclic_shift(grid, legacy_csd_samples(itx, ntx));
  const auto period = ifft_period(grid, tone_gain(52));
  // 32-sample guard (the tail of the symbol) followed by two full periods.
  return periodic(period, kFftSize - 32, kLltfLen);
}

std::vector<cf32> make_htstf(std::size_t iss, std::size_t nss) {
  auto grid = lstf_grid();
  apply_cyclic_shift(grid, ht_csd_samples(iss, nss));
  const auto period = ifft_period(grid, tone_gain(52));
  return periodic(period, 0, kHtStfLen);
}

std::vector<cf32> make_htltfs(std::size_t iss, std::size_t nss) {
  const std::size_t n_ltf = num_ht_ltfs(nss);
  auto base = htltf_grid();
  apply_cyclic_shift(base, ht_csd_samples(iss, nss));
  const auto period = ifft_period(base, tone_gain(56));

  std::vector<cf32> out;
  out.reserve(n_ltf * kHtLtfLen);
  for (std::size_t n = 0; n < n_ltf; ++n) {
    const float sign = p_matrix(iss, n);
    // 16-sample CP + 64-sample period, sign-flipped per the P matrix.
    auto sym = periodic(period, kFftSize - ofdm::kCpLen, kHtLtfLen);
    for (auto& v : sym) v *= sign;
    out.insert(out.end(), sym.begin(), sym.end());
  }
  return out;
}

}  // namespace mimonet::wifi
