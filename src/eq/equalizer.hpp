// MIMO spatial demultiplexers: zero-forcing, MMSE, and exhaustive
// maximum-likelihood detection, applied per subcarrier.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "dsp/types.hpp"
#include "eq/matrix.hpp"
#include "mod/constellation.hpp"

namespace mimonet::eq {

using dsp::cf32;

enum class EqualizerType : std::uint8_t { kZeroForcing, kMmse, kMaxLikelihood };

[[nodiscard]] std::string_view equalizer_name(EqualizerType t) noexcept;

/// Noise variance reported for a stream that could not be equalized (the
/// channel matrix was singular, e.g. after a burst erasure zeroed the LTFs):
/// large enough to null the LLRs, finite so downstream math stays defined.
inline constexpr float kErasedNoiseVar = 1e12F;

/// Output of linear equalization on one subcarrier.
struct EqualizedCarrier {
  /// Per-stream symbol estimates, bias-corrected (unit signal gain).
  std::vector<cf32> symbols;
  /// Per-stream effective noise variance after equalization (noise
  /// enhancement for ZF, residual interference + noise for MMSE) — the CSI
  /// the soft demapper needs.
  std::vector<float> noise_vars;
};

/// Precomputed equalizer coefficients for one subcarrier. The channel is
/// constant across a packet's data symbols, so the Gram matrix, inverse,
/// bias terms, and CSI are computed once per packet (prepare) and each
/// symbol is one matrix-vector product (apply). Heap-free.
struct EqCoeffs {
  CMatrix w;                              ///< nss x nrx combining weights
  std::array<cf64, CMatrix::kMaxDim> g_diag{};     ///< MMSE bias g_ii
  std::array<double, CMatrix::kMaxDim> gain_sqr{}; ///< |g_ii|^2
  std::array<float, CMatrix::kMaxDim> noise_vars{};///< post-eq CSI per stream
  std::size_t nss = 0;
  std::size_t nrx = 0;
  bool mmse = false;
  bool erased = false;  ///< singular / non-finite channel: emit erasures
};

/// Linear MIMO equalizer (ZF or MMSE). Stateless; safe to share.
class LinearEqualizer {
 public:
  explicit LinearEqualizer(EqualizerType type);

  [[nodiscard]] EqualizerType type() const noexcept { return type_; }

  /// Equalize one subcarrier. `h` is nrx x nss, `y` has nrx entries,
  /// `noise_var` is the per-antenna complex noise variance. Allocates the
  /// result; the hot path uses prepare() + apply() instead.
  [[nodiscard]] EqualizedCarrier equalize(const CMatrix& h, std::span<const cf32> y,
                                          float noise_var) const;

  /// Precompute the per-subcarrier coefficients for `h`. Bit-identical to
  /// what equalize() would derive internally.
  void prepare(const CMatrix& h, float noise_var, EqCoeffs& out) const;

  /// Apply prepared coefficients to one received symbol vector. `symbols`
  /// and `noise_vars` must each hold coeffs.nss entries. A non-finite
  /// result (or coeffs.erased) yields the erasure convention: zero symbols
  /// with kErasedNoiseVar.
  static void apply(const EqCoeffs& coeffs, std::span<const cf32> y,
                    std::span<cf32> symbols, std::span<float> noise_vars);

  /// Apply prepared coefficients across a batch of OFDM symbols on one
  /// subcarrier: `y_batch` holds n contiguous nrx-entry received vectors
  /// (symbol-major), `symbols` / `noise_vars` hold n contiguous nss-entry
  /// outputs. One argument check, then the same per-vector arithmetic —
  /// bit-identical to n apply() calls.
  static void apply_run(const EqCoeffs& coeffs, std::span<const cf32> y_batch,
                        std::size_t n, std::span<cf32> symbols,
                        std::span<float> noise_vars);

 private:
  EqualizerType type_;
};

/// Exhaustive max-log ML detector: searches all |C|^nss transmit hypotheses
/// and emits per-bit LLRs directly (no symbol-level output).
class MlDetector {
 public:
  /// @param constellation shared per-stream constellation
  /// @param nss           spatial streams; hypothesis count is |C|^nss, so
  ///        this is practical for nss <= 2 (<= 4096 hypotheses at 64-QAM).
  MlDetector(const mod::Constellation& constellation, std::size_t nss);

  [[nodiscard]] std::size_t nss() const noexcept { return nss_; }
  [[nodiscard]] unsigned bits_per_stream() const noexcept {
    return constellation_.bits_per_symbol();
  }

  /// Compute LLRs for one subcarrier: llr_out must hold nss *
  /// bits_per_stream() values, ordered stream 0 bits first.
  void demap(const CMatrix& h, std::span<const cf32> y, float noise_var,
             std::span<float> llr_out) const;

 private:
  const mod::Constellation& constellation_;
  std::size_t nss_;
};

/// Post-equalization SINR (dB) per stream for a channel matrix — used by
/// the equalizer-comparison experiment (E10).
[[nodiscard]] std::vector<double> post_eq_sinr_db(const CMatrix& h, float noise_var,
                                                  EqualizerType type);

}  // namespace mimonet::eq
