// E11 — Diversity vs multiplexing (Fig. reconstruction): Alamouti STBC
// against spatial multiplexing at matched data rates over 2x2 Rayleigh.
//
// The paper implements spatial multiplexing as "one of the most powerful
// MIMO techniques"; STBC is the canonical alternative use of the same two
// antennas. Expected shape: at the same net rate, STBC (diversity order
// 2*nrx) has the steeper PER slope and wins at low/moderate SNR; SM closes
// the gap as SNR grows and wins outright when rate is pushed beyond what a
// single-stream constellation can carry.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

double run_per(unsigned mcs, bool stbc, double snr, std::size_t packets,
               std::uint64_t seed) {
  auto cfg = core::make_link_config(mcs, snr, 2);
  cfg.psdu_payload_bytes = 700;
  cfg.phy.stbc = stbc;
  cfg.channel.ntx = 2;
  cfg.channel.fading = true;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  return sim.run(packets).per.per();
}

}  // namespace

int main() {
  bench::heading("E11", "STBC vs spatial multiplexing at matched rate (Fig.)");
  constexpr std::size_t kPackets = 40;
  bench::note("2x2 flat Rayleigh, %zu 700-byte packets per point", kPackets);

  struct Pair {
    const char* rate;
    unsigned stbc_mcs;  // single-stream MCS sent with Alamouti
    unsigned sm_mcs;    // two-stream MCS at the same net rate
  };
  const Pair pairs[] = {
      {"13 Mb/s", 1, 8},    // QPSK 1/2 + STBC  vs BPSK 1/2 x2
      {"26 Mb/s", 3, 9},    // 16-QAM 1/2 + STBC vs QPSK 1/2 x2
      {"52 Mb/s", 5, 11},   // 64-QAM 2/3 + STBC vs 16-QAM 1/2 x2
  };

  std::string pts = "[";
  bool first = true;
  for (const auto& p : pairs) {
    std::printf("\n  %s: STBC MCS %u vs SM MCS %u\n", p.rate, p.stbc_mcs, p.sm_mcs);
    const bench::Table table({"SNR dB", "PER STBC", "PER SM"}, 12);
    for (double snr = 4.0; snr <= 26.0; snr += 2.0) {
      const auto seed = 800 + p.sm_mcs;  // paired across the sweep
      const double per_stbc = run_per(p.stbc_mcs, true, snr, kPackets, seed);
      const double per_sm = run_per(p.sm_mcs, false, snr, kPackets, seed);
      table.row({bench::fix(snr, 0), bench::fix(per_stbc, 2),
                 bench::fix(per_sm, 2)});
      char obj[224];
      std::snprintf(obj, sizeof obj,
                    "%s{\"rate\": \"%s\", \"snr_db\": %g, \"stbc_mcs\": %u, "
                    "\"sm_mcs\": %u, \"per_stbc\": %.6g, \"per_sm\": %.6g}",
                    first ? "" : ", ", p.rate, snr, p.stbc_mcs, p.sm_mcs,
                    per_stbc, per_sm);
      pts += obj;
      first = false;
    }
  }
  bench::note("expected: STBC's PER falls faster (diversity order 4 vs 2) and");
  bench::note("wins at low SNR; the gap narrows as the STBC constellation grows");

  bench::JsonReport report("e11_stbc_vs_sm");
  report.field("packets_per_point", kPackets)
      .field("payload_bytes", std::size_t{700})
      .raw("points", pts + "]")
      .emit();
  return 0;
}
