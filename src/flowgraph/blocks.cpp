#include "flowgraph/blocks.hpp"

#include <memory>

namespace mimonet::flowgraph {

namespace {

/// Stateful AWGN block (keeps its RNG across chunks).
class AwgnBlock final : public Block {
 public:
  AwgnBlock(double noise_var, std::uint64_t seed)
      : Block("awgn"), noise_(seed, noise_var) {
    add_input<dsp::cf32>();
    add_output<dsp::cf32>();
  }

  WorkStatus work() override {
    auto& i = in<dsp::cf32>(0);
    auto& o = out<dsp::cf32>(0);
    bool progress = false;
    while (true) {
      std::vector<dsp::cf32> chunk(
          std::min<std::size_t>({4096, i.readable(), o.writable()}));
      if (chunk.empty()) break;
      const std::size_t n = i.peek(chunk);
      if (n == 0) break;
      noise_.add_to(std::span<dsp::cf32>(chunk.data(), n));
      const std::size_t w = o.write(std::span<const dsp::cf32>(chunk.data(), n));
      i.consume(w);
      progress = progress || w > 0;
      if (w < n) break;
    }
    if (all_inputs_done()) return WorkStatus::kDone;
    return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
  }

 private:
  dsp::ComplexGaussian noise_;
};

}  // namespace

std::shared_ptr<Apply<dsp::cf32>> make_gain_block(float gain) {
  return std::make_shared<Apply<dsp::cf32>>(
      "gain", [gain](std::span<dsp::cf32> chunk) {
        for (auto& v : chunk) v *= gain;
      });
}

std::shared_ptr<Block> make_awgn_block(double noise_var, std::uint64_t seed) {
  return std::make_shared<AwgnBlock>(noise_var, seed);
}

}  // namespace mimonet::flowgraph
