file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_stbc_vs_sm.dir/bench_e11_stbc_vs_sm.cpp.o"
  "CMakeFiles/bench_e11_stbc_vs_sm.dir/bench_e11_stbc_vs_sm.cpp.o.d"
  "bench_e11_stbc_vs_sm"
  "bench_e11_stbc_vs_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_stbc_vs_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
