// The session-oriented receive API: one configuration style, one entry
// shape — config -> session -> submit/scan -> merged stats — shared by the
// one-shot Receiver, the streaming StreamReceiver and the parallel
// ReceiverFarm, so flowgraph blocks, benches and the MAC layer all talk to
// the same surface instead of picking among overloads.
//
//   auto cfg = ReceiveSessionConfig::make().workers(4).build();
//   ReceiveSession session(phy, nrx, cfg);
//   session.scan(capture_spans, [&](const StreamEvent& ev) { ... });
//   session.stats().delivered;
//
// See DESIGN.md "API conventions" for the rules new subsystems follow.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/phy_config.hpp"
#include "core/stream_receiver.hpp"

namespace mimonet::core {

class ReceiverFarm;
class MuUplinkReceiver;  // core/mu_receiver.hpp
struct MuRxPacket;
struct MuRxWorkspace;

/// Everything a receive session can be told: the scan-loop policy knobs the
/// StreamReceiver engine keys on, plus the parallelism shape (workers,
/// shards, seam) the farm adds. Aggregate with usable defaults; fluent
/// builder for the common spellings.
struct ReceiveSessionConfig {
  // Scan-loop policy (see StreamReceiverConfig for semantics).
  std::size_t min_advance = 16;
  std::size_t resync_advance = 80;
  std::size_t candidate_budget = 4096;
  std::size_t max_packets = 0;

  // Two-pass front-end scan (see StreamReceiverConfig / sync::ScanMode);
  // the farm's sharded and base-station modes inherit these through
  // scan_config().
  std::size_t scan_decimation = 1;
  float coarse_threshold_scale = 0.6F;
  std::size_t coarse_min_run = 3;

  /// Worker threads for the farm modes. 1 = everything runs on the calling
  /// thread (no pool); 0 = hardware concurrency.
  std::size_t workers = 1;
  /// Shard count for sharded-capture scans (0 = one shard per worker).
  /// More shards than workers is fine — they queue.
  std::size_t shards = 0;
  /// Overlap-save seam width in samples; 0 derives the width from
  /// max_frame_bytes (see resolved_seam). Exactness requires the seam to
  /// cover the largest frame extent in the capture plus the resync hop
  /// budget — a frame longer than the seam may be misclassified as
  /// truncated at a shard boundary.
  std::size_t seam_samples = 0;
  /// Largest PSDU the seam must cover when seam_samples is derived.
  std::size_t max_frame_bytes = 4096;

  class Builder;
  [[nodiscard]] static Builder make();

  /// Projection onto the single-worker scan engine's config.
  [[nodiscard]] StreamReceiverConfig scan_config() const noexcept {
    StreamReceiverConfig scfg;
    scfg.min_advance = min_advance;
    scfg.resync_advance = resync_advance;
    scfg.candidate_budget = candidate_budget;
    scfg.max_packets = max_packets;
    scfg.scan_decimation = scan_decimation;
    scfg.coarse_threshold_scale = coarse_threshold_scale;
    scfg.coarse_min_run = coarse_min_run;
    return scfg;
  }
  /// workers with 0 resolved to hardware concurrency (at least 1).
  [[nodiscard]] std::size_t resolved_workers() const;
  [[nodiscard]] std::size_t resolved_shards() const {
    return shards != 0 ? shards : resolved_workers();
  }
  /// The seam width sharded scans actually use: seam_samples, or the
  /// sample extent of the largest frame any supported MCS needs for
  /// max_frame_bytes plus a re-alignment margin.
  [[nodiscard]] std::size_t resolved_seam(const PhyConfig& phy) const;
};

class ReceiveSessionConfig::Builder {
 public:
  Builder& min_advance(std::size_t n) { cfg_.min_advance = n; return *this; }
  Builder& resync_advance(std::size_t n) { cfg_.resync_advance = n; return *this; }
  Builder& candidate_budget(std::size_t n) { cfg_.candidate_budget = n; return *this; }
  Builder& max_packets(std::size_t n) { cfg_.max_packets = n; return *this; }
  Builder& scan_decimation(std::size_t d) { cfg_.scan_decimation = d; return *this; }
  Builder& coarse_threshold_scale(float s) { cfg_.coarse_threshold_scale = s; return *this; }
  Builder& coarse_min_run(std::size_t n) { cfg_.coarse_min_run = n; return *this; }
  Builder& workers(std::size_t n) { cfg_.workers = n; return *this; }
  Builder& shards(std::size_t n) { cfg_.shards = n; return *this; }
  Builder& seam(std::size_t samples) { cfg_.seam_samples = samples; return *this; }
  Builder& max_frame_bytes(std::size_t n) { cfg_.max_frame_bytes = n; return *this; }

  [[nodiscard]] ReceiveSessionConfig build() const { return cfg_; }
  operator ReceiveSessionConfig() const { return cfg_; }  // NOLINT(google-explicit-constructor)

 private:
  ReceiveSessionConfig cfg_;
};

/// One independent per-user stream for the farm's base-station mode: which
/// per-stream stats slot it feeds and the capture (one span per antenna) to
/// scan. The spans must stay valid for the duration of the run.
struct StreamJob {
  std::size_t stream = 0;
  std::span<const std::span<const cf32>> capture;
};

/// A receive session: owns the engine, a workspace, the (lazily created)
/// worker farm and the accumulated statistics. Not thread-safe — one
/// session per controlling thread; the farm's workers are internal.
class ReceiveSession {
 public:
  using EventFn = StreamReceiver::EventFn;

  ReceiveSession(PhyConfig phy, std::size_t nrx,
                 ReceiveSessionConfig cfg = {});
  ~ReceiveSession();
  ReceiveSession(const ReceiveSession&) = delete;
  ReceiveSession& operator=(const ReceiveSession&) = delete;

  // --- one-shot receive (the Receiver entry point) ----------------------

  /// Decode the first packet of a capture. Returns false when nothing was
  /// delivered; packet() holds the full outcome (including the RxError
  /// classification) either way. The attempt is folded into stats().
  [[nodiscard]] bool receive_one(std::span<const std::span<const cf32>> capture);
  /// Staging convenience for vector-of-vector captures.
  [[nodiscard]] bool receive_one(const std::vector<std::vector<cf32>>& capture);
  /// Outcome of the last receive_one / the engine workspace's packet.
  [[nodiscard]] const RxPacket& packet() const noexcept;

  // --- streaming scan ---------------------------------------------------

  /// Scan a whole capture, delivering every event in stream order. Runs on
  /// the calling thread when workers == 1, otherwise as a sharded farm scan
  /// whose merged result is bit-identical to the single-threaded scan.
  void scan(std::span<const std::span<const cf32>> capture,
            const EventFn& on_event);
  /// Owned-record convenience form of scan().
  [[nodiscard]] std::vector<StreamRecord> receive_all(
      const std::vector<std::vector<cf32>>& capture);

  // --- multi-user uplink mode -------------------------------------------

  /// Jointly decode one triggered MU uplink capture: `n_users` virtual
  /// streams superposed across this session's `nrx` antennas, every user at
  /// the trigger-announced `psdu_bytes` (see MuUplinkReceiver). Returns true
  /// when sync + joint channel estimation ran; per-user FCS outcomes land in
  /// mu_packet().users. Each user's outcome folds into mu_stats()[u]
  /// (delivered / errors / post-eq SINR at stream 0) and the aggregate
  /// stats() grows by the sum, mirroring run_streams' accounting. The joint
  /// detector is created lazily on first use and rebuilt when n_users
  /// changes.
  [[nodiscard]] bool receive_mu_one(
      std::span<const std::span<const cf32>> capture, std::size_t n_users,
      std::size_t psdu_bytes);
  /// Outcome of the last receive_mu_one (valid after first call).
  [[nodiscard]] const MuRxPacket& mu_packet() const;
  /// Per-user statistics accumulated by receive_mu_one, one slot per user
  /// index (sized to the largest n_users seen).
  [[nodiscard]] std::span<const StreamStats> mu_stats() const noexcept {
    return mu_stats_;
  }

  // --- base-station mode ------------------------------------------------

  /// Multiplex many independent per-user streams over the worker pool.
  /// per_stream[job.stream] accumulates each job's statistics; aggregate
  /// session stats() grows by the sum. Jobs sharing a stream index are
  /// merged losslessly.
  void run_streams(std::span<const StreamJob> jobs,
                   std::span<StreamStats> per_stream);

  // --- state ------------------------------------------------------------

  [[nodiscard]] const StreamStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_.reset(); }
  [[nodiscard]] const PhyConfig& config() const noexcept {
    return engine_.config();
  }
  [[nodiscard]] const ReceiveSessionConfig& session_config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const Receiver& receiver() const noexcept {
    return engine_.receiver();
  }
  [[nodiscard]] const StreamReceiver& engine() const noexcept { return engine_; }

 private:
  /// The farm, created on first use when resolved_workers() > 1 (or for
  /// run_streams, always — a one-worker pool is still a pool).
  ReceiverFarm& farm();

  ReceiveSessionConfig cfg_;
  StreamReceiver engine_;
  std::size_t nrx_;
  std::unique_ptr<RxWorkspace> ws_;
  std::unique_ptr<ReceiverFarm> farm_;
  StreamStats stats_;
  // MU uplink mode, created lazily by receive_mu_one.
  std::unique_ptr<MuUplinkReceiver> mu_rx_;
  std::unique_ptr<MuRxWorkspace> mu_ws_;
  std::vector<StreamStats> mu_stats_;
};

}  // namespace mimonet::core
