# Empty compiler generated dependencies file for mimonet_core.
# This may be replaced when dependencies are built.
