file(REMOVE_RECURSE
  "libmimonet_channel.a"
)
