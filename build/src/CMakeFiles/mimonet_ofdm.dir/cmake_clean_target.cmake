file(REMOVE_RECURSE
  "libmimonet_ofdm.a"
)
