// Radix-2 decimation-in-time FFT with a cached twiddle-factor plan.
//
// Self-contained (no FFTW dependency): OFDM symbol sizes here are small
// powers of two (64 for 20 MHz 802.11), where an iterative radix-2
// butterfly with precomputed twiddles is fast enough for link simulation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// FFT execution plan for a fixed power-of-two size.
///
/// Construction precomputes bit-reversal permutation and twiddle factors;
/// execute() is then allocation-free and reentrant for distinct output
/// buffers.
class FftPlan {
 public:
  /// @param size transform length; must be a power of two >= 2.
  /// @throws std::invalid_argument otherwise.
  explicit FftPlan(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Out-of-place forward DFT (engineering sign convention, e^{-j2πkn/N}).
  /// `in` and `out` must both have size() elements; they may alias.
  void forward(std::span<const cf32> in, std::span<cf32> out) const;

  /// Out-of-place inverse DFT, scaled by 1/N so inverse(forward(x)) == x.
  void inverse(std::span<const cf32> in, std::span<cf32> out) const;

  /// In-place variants.
  void forward(std::span<cf32> buf) const { forward(buf, buf); }
  void inverse(std::span<cf32> buf) const { inverse(buf, buf); }

 private:
  void transform(std::span<const cf32> in, std::span<cf32> out, bool invert) const;

  std::size_t size_;
  std::size_t log2_size_;
  std::vector<std::size_t> bitrev_;
  std::vector<cf32> twiddle_fwd_;  // e^{-j 2π k / N}, k in [0, N/2)
  std::vector<cf32> twiddle_inv_;  // conj of the above
};

/// Convenience one-shot forward FFT (allocates a plan; prefer FftPlan in loops).
[[nodiscard]] std::vector<cf32> fft(std::span<const cf32> in);

/// Convenience one-shot inverse FFT.
[[nodiscard]] std::vector<cf32> ifft(std::span<const cf32> in);

/// Swap the two halves of a spectrum (DC-centered <-> natural order).
void fftshift(std::span<cf32> buf);

}  // namespace mimonet::dsp
