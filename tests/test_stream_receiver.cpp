// Streaming receive path: multi-packet scanning, resynchronization after
// faults, error classification, watchdog termination, and the bit-exact
// single-packet pin against the one-shot Receiver.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "channel/fault_plan.hpp"
#include "channel/mimo_channel.hpp"
#include "core/stream_receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "dsp/rng.hpp"
#include "receive_util.hpp"
#include "wifi/psdu.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

struct StreamScenario {
  core::PhyConfig phy;
  std::vector<std::vector<std::uint8_t>> psdus;
  std::vector<std::vector<cf32>> capture;
  std::vector<std::size_t> starts;      ///< packet starts within the capture
  std::vector<std::size_t> frame_lens;  ///< per-packet PPDU sample counts
};

/// `n_packets` PPDUs concatenated with `gap` idle samples between them, sent
/// through one flat clean channel so packet positions are exact.
StreamScenario make_multi_capture(std::size_t n_packets, std::size_t gap,
                                  unsigned mcs = 0, double snr_db = 30.0) {
  StreamScenario s;
  s.phy.mcs = mcs;
  const core::Transmitter tx(s.phy);
  const std::size_t nss = tx.num_streams();

  std::vector<std::vector<cf32>> concat(nss);
  for (std::size_t p = 0; p < n_packets; ++p) {
    s.psdus.push_back(wifi::build_psdu(
        wifi::MacHeader{},
        std::vector<std::uint8_t>(120 + 9 * p,
                                  static_cast<std::uint8_t>(0x20 + p))));
    const auto streams = tx.transmit(s.psdus.back());
    s.starts.push_back(concat[0].size());
    s.frame_lens.push_back(streams[0].size());
    for (std::size_t c = 0; c < nss; ++c) {
      concat[c].insert(concat[c].end(), streams[c].begin(), streams[c].end());
      if (p + 1 < n_packets) concat[c].resize(concat[c].size() + gap, cf32{});
    }
  }

  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = snr_db;
  ccfg.timing_pad = 300;
  ccfg.tail_pad = 150;
  channel::MimoChannel chan(ccfg);
  s.capture = chan.transmit(concat);
  for (auto& st : s.starts) st += chan.truth().packet_start;
  return s;
}

std::vector<std::span<const cf32>> as_spans(
    const std::vector<std::vector<cf32>>& capture) {
  return {capture.begin(), capture.end()};
}

TEST(StreamReceiver, SingleCleanPacketMatchesReceiverBitExact) {
  const auto s = make_multi_capture(1, 0);
  const core::Receiver ref_rx(s.phy, s.capture.size());
  const auto ref = testutil::receive_once(ref_rx, s.capture);
  ASSERT_TRUE(ref.has_value());
  ASSERT_TRUE(ref->fcs_ok);

  const core::StreamReceiver srx(s.phy, s.capture.size());
  const auto recs = srx.receive_all(s.capture);
  ASSERT_EQ(recs.size(), 1U);
  const auto& rec = recs[0];
  EXPECT_EQ(rec.error, metrics::RxError::kOk);
  ASSERT_TRUE(rec.has_packet);
  EXPECT_EQ(rec.offset, rec.packet.sync.packet_start);
  EXPECT_TRUE(rec.packet.fcs_ok);
  EXPECT_EQ(rec.packet.psdu, ref->psdu);
  EXPECT_EQ(rec.packet.sync.packet_start, ref->sync.packet_start);
  EXPECT_EQ(rec.packet.sync.cfo_norm, ref->sync.cfo_norm);
  EXPECT_EQ(rec.packet.snr.snr_db, ref->snr.snr_db);
  EXPECT_EQ(rec.packet.pilot_snr.snr_db, ref->pilot_snr.snr_db);
  EXPECT_EQ(rec.packet.residual_cfo_norm, ref->residual_cfo_norm);
}

TEST(StreamReceiver, BackToBackPacketsAllDecode) {
  for (const std::size_t gap : {std::size_t{0}, std::size_t{400}}) {
    const auto s = make_multi_capture(2, gap);
    const core::StreamReceiver srx(s.phy, s.capture.size());
    const auto recs = srx.receive_all(s.capture);
    ASSERT_EQ(recs.size(), 2U) << "gap=" << gap;
    for (std::size_t p = 0; p < 2; ++p) {
      EXPECT_EQ(recs[p].error, metrics::RxError::kOk) << "gap=" << gap;
      ASSERT_TRUE(recs[p].has_packet);
      EXPECT_TRUE(recs[p].packet.fcs_ok);
      EXPECT_EQ(recs[p].packet.psdu, s.psdus[p]);
      EXPECT_NEAR(static_cast<double>(recs[p].offset),
                  static_cast<double>(s.starts[p]), 3.0);
    }
  }
}

TEST(StreamReceiver, InterPacketFaultLeavesBothPacketsDecodable) {
  auto s = make_multi_capture(2, 800);
  // A loud wideband interferer burst in the idle gap between the packets.
  const std::size_t gap_begin = s.starts[0] + s.frame_lens[0];
  channel::FaultPlan plan;
  plan.noise_burst(gap_begin + 200, 400, 4.0);
  for (std::size_t a = 0; a < s.capture.size(); ++a) {
    channel::apply_fault_plan(s.capture[a], plan, 77 + a);
  }

  const core::StreamReceiver srx(s.phy, s.capture.size());
  const auto recs = srx.receive_all(s.capture);
  std::vector<const core::StreamRecord*> delivered;
  for (const auto& r : recs) {
    if (r.error == metrics::RxError::kOk) delivered.push_back(&r);
  }
  ASSERT_EQ(delivered.size(), 2U);
  EXPECT_EQ(delivered[0]->packet.psdu, s.psdus[0]);
  EXPECT_EQ(delivered[1]->packet.psdu, s.psdus[1]);
  // Resync landed the scanner back on the true second packet start.
  EXPECT_NEAR(static_cast<double>(delivered[1]->offset),
              static_cast<double>(s.starts[1]), 3.0);
}

TEST(StreamReceiver, ClockSlipBetweenPacketsIsResynced) {
  auto s = make_multi_capture(2, 600);
  // The sampling clock drops 40 samples in the gap: the second packet
  // arrives earlier than its nominal position.
  const std::size_t gap_begin = s.starts[0] + s.frame_lens[0];
  channel::FaultPlan plan;
  plan.sample_drop(gap_begin + 100, 40);
  for (auto& antenna : s.capture) {
    channel::apply_fault_plan(antenna, plan, 5);
  }

  const core::StreamReceiver srx(s.phy, s.capture.size());
  const auto recs = srx.receive_all(s.capture);
  ASSERT_EQ(recs.size(), 2U);
  EXPECT_EQ(recs[0].error, metrics::RxError::kOk);
  EXPECT_EQ(recs[1].error, metrics::RxError::kOk);
  EXPECT_EQ(recs[1].packet.psdu, s.psdus[1]);
  EXPECT_NEAR(static_cast<double>(recs[1].offset),
              static_cast<double>(s.starts[1] - 40), 3.0);
}

TEST(StreamReceiver, TruncatedTailIsClassified) {
  auto s = make_multi_capture(2, 400);
  // Cut the capture inside the second packet's data field.
  const std::size_t cut = s.starts[1] + 1000;
  ASSERT_LT(cut, s.capture[0].size());
  for (auto& antenna : s.capture) antenna.resize(cut);

  const core::StreamReceiver srx(s.phy, s.capture.size());
  const auto recs = srx.receive_all(s.capture);
  ASSERT_EQ(recs.size(), 2U);
  EXPECT_EQ(recs[0].error, metrics::RxError::kOk);
  EXPECT_EQ(recs[1].error, metrics::RxError::kTruncated);
  ASSERT_TRUE(recs[1].has_packet);
  EXPECT_NEAR(static_cast<double>(recs[1].offset),
              static_cast<double>(s.starts[1]), 3.0);
}

TEST(StreamReceiver, MaxPacketsStopsTheScan) {
  const auto s = make_multi_capture(3, 300);
  core::StreamReceiverConfig scfg;
  scfg.max_packets = 2;
  const core::StreamReceiver srx(s.phy, s.capture.size(), scfg);
  const auto recs = srx.receive_all(s.capture);
  ASSERT_EQ(recs.size(), 2U);
  EXPECT_EQ(recs[0].error, metrics::RxError::kOk);
  EXPECT_EQ(recs[1].error, metrics::RxError::kOk);
}

TEST(StreamReceiver, WatchdogAbandonsPathologicalCapture) {
  // Repeated finite 16-periodic bursts: each one looks like an STF plateau,
  // none ever decodes, and the watchdog must give up instead of grinding
  // through tens of thousands of samples one resync hop at a time.
  std::vector<cf32> pattern(16);
  dsp::ComplexGaussian g(7, 1.0);
  for (auto& x : pattern) x = g.sample();
  std::vector<std::vector<cf32>> capture(1);
  capture[0].reserve(40000);
  for (int burst = 0; burst < 56; ++burst) {
    for (int rep = 0; rep < 30; ++rep) {
      capture[0].insert(capture[0].end(), pattern.begin(), pattern.end());
    }
    capture[0].resize(capture[0].size() + 220, cf32{});
  }
  dsp::ComplexGaussian noise(9, 1e-4);
  for (auto& x : capture[0]) x += noise.sample();

  const core::StreamReceiverConfig scfg =
      core::StreamReceiverConfig::make().candidate_budget(8).build();
  const core::StreamReceiver srx(core::PhyConfig{}, 1, scfg);
  core::RxWorkspace ws;
  core::StreamStats stats;
  std::size_t events = 0;
  metrics::RxError last = metrics::RxError::kOk;
  srx.scan(as_spans(capture), ws, stats, [&](const core::StreamEvent& ev) {
    ++events;
    last = ev.error;
  });
  EXPECT_EQ(stats.budget_exhaustions, 1U);
  EXPECT_EQ(last, metrics::RxError::kBudgetExceeded);
  EXPECT_EQ(stats.frames, 0U);
  EXPECT_GT(stats.resync_events, 0U);
  // 8 tolerated failures + the one that trips the watchdog + its report.
  EXPECT_LE(events, 10U);
  EXPECT_EQ(stats.errors.count(metrics::RxError::kBudgetExceeded), 1U);
}

TEST(StreamReceiver, StatsAccumulateAndMerge) {
  const auto s = make_multi_capture(2, 300);
  const core::StreamReceiver srx(s.phy, s.capture.size());
  core::RxWorkspace ws;

  core::StreamStats a;
  srx.scan(as_spans(s.capture), ws, a, [](const core::StreamEvent&) {});
  EXPECT_EQ(a.frames, 2U);
  EXPECT_EQ(a.delivered, 2U);
  EXPECT_EQ(a.samples_scanned, s.capture[0].size());
  EXPECT_EQ(a.errors.count(metrics::RxError::kOk), 2U);
  EXPECT_EQ(a.errors.errors(), 0U);

  core::StreamStats b = a;
  b.merge(a);
  EXPECT_EQ(b.frames, 4U);
  EXPECT_EQ(b.delivered, 4U);
  EXPECT_EQ(b.samples_scanned, 2 * s.capture[0].size());
  EXPECT_EQ(b.errors.count(metrics::RxError::kOk), 4U);

  // scan() accumulates into the same stats across captures.
  srx.scan(as_spans(s.capture), ws, a, [](const core::StreamEvent&) {});
  EXPECT_EQ(a.frames, 4U);
}

TEST(StreamReceiver, DegenerateCapturesAreHarmless) {
  const core::StreamReceiver srx(core::PhyConfig{}, 1);

  std::vector<std::vector<cf32>> empty(1);
  EXPECT_TRUE(srx.receive_all(empty).empty());

  std::vector<std::vector<cf32>> noise_only(1, std::vector<cf32>(500));
  dsp::ComplexGaussian g(3, 0.01);
  for (auto& x : noise_only[0]) x = g.sample();
  EXPECT_TRUE(srx.receive_all(noise_only).empty());
}

TEST(StreamReceiver, InvalidConfigThrows) {
  core::StreamReceiverConfig scfg;
  scfg.min_advance = 0;
  EXPECT_THROW((core::StreamReceiver{core::PhyConfig{}, 1, scfg}),
               std::invalid_argument);
  scfg = {};
  scfg.resync_advance = 0;
  EXPECT_THROW((core::StreamReceiver{core::PhyConfig{}, 1, scfg}),
               std::invalid_argument);
}

}  // namespace
