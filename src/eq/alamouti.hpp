// Alamouti space-time block decoding (802.11n STBC, N_SS = 1, N_STS = 2).
//
// Per subcarrier, the transmitter sends over a pair of OFDM symbols:
//   STS 1:  d1        then  d2
//   STS 2:  -conj(d2) then  conj(d1)
// With per-antenna channels (h1, h2) constant over the pair, linear
// combining recovers d1 and d2 with full 2 x nrx diversity and no
// inter-stream interference — the structural opposite of spatial
// multiplexing, and the natural baseline for the rate-vs-diversity
// comparison in experiment E11.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"
#include "eq/matrix.hpp"

namespace mimonet::eq {

/// Result of combining one subcarrier over one symbol pair.
struct AlamoutiDecoded {
  cf32 d1{};
  cf32 d2{};
  /// Effective post-combining noise variance (same for both symbols).
  float noise_var = 1e-12F;
};

/// Combine received values for one subcarrier across a symbol pair.
/// @param h  nrx x 2 channel matrix (column s = space-time stream s).
/// @param y_first  per-antenna observations in the first symbol of the pair
/// @param y_second per-antenna observations in the second symbol
/// @param noise_var per-antenna noise variance
[[nodiscard]] AlamoutiDecoded alamouti_combine(const CMatrix& h,
                                               std::span<const cf32> y_first,
                                               std::span<const cf32> y_second,
                                               float noise_var);

/// Map a pair of data symbols to the two space-time streams:
/// returns {sts1_first, sts2_first, sts1_second, sts2_second}.
struct AlamoutiMapped {
  cf32 sts1_first;
  cf32 sts2_first;
  cf32 sts1_second;
  cf32 sts2_second;
};
[[nodiscard]] AlamoutiMapped alamouti_map(cf32 d1, cf32 d2) noexcept;

}  // namespace mimonet::eq
