// Gray-coded constellations of IEEE 802.11 (clause 17.3.5.8): BPSK, QPSK,
// 16-QAM, 64-QAM, with unit average energy.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::mod {

using dsp::cf32;

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

[[nodiscard]] unsigned bits_per_symbol(Modulation m) noexcept;
[[nodiscard]] std::string_view modulation_name(Modulation m) noexcept;

/// A Gray-mapped constellation with precomputed point table.
///
/// Bit order convention: the first bit consumed is the MSB of the point
/// index, matching the 802.11 tables (I bits first, then Q bits).
class Constellation {
 public:
  explicit Constellation(Modulation m);

  [[nodiscard]] Modulation modulation() const noexcept { return mod_; }
  [[nodiscard]] unsigned bits_per_symbol() const noexcept { return bps_; }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<cf32>& points() const noexcept { return points_; }

  /// Map `bps` bits (one per byte, MSB first) to one symbol.
  [[nodiscard]] cf32 map(std::span<const std::uint8_t> bits) const;

  /// Map a full bit stream; size must be a multiple of bits_per_symbol().
  [[nodiscard]] std::vector<cf32> map_all(std::span<const std::uint8_t> bits) const;

  /// map_all into caller storage (resized, capacity kept).
  void map_all_into(std::span<const std::uint8_t> bits, std::vector<cf32>& out) const;

  /// Nearest-point hard decision; returns the point index.
  [[nodiscard]] std::size_t hard_decision(cf32 y) const noexcept;

  /// Hard-demap a symbol stream back to bits.
  [[nodiscard]] std::vector<std::uint8_t> demap_hard(std::span<const cf32> symbols) const;

  /// Max-log LLRs for one received symbol. `noise_var` is the post-
  /// equalization complex noise variance for this symbol. Convention:
  /// positive LLR = bit 0 more likely (matches fec::ViterbiDecoder).
  void demap_soft(cf32 y, float noise_var, std::span<float> llr_out) const;

  /// Soft-demap a stream with per-symbol noise variances (CSI). Output has
  /// symbols.size() * bits_per_symbol() entries.
  [[nodiscard]] std::vector<float> demap_soft_all(std::span<const cf32> symbols,
                                                  std::span<const float> noise_vars) const;

  /// Batched max-log demap into caller storage: `llr_out` must hold
  /// symbols.size() * bits_per_symbol() floats and is written symbol-major
  /// (all LLRs of symbol i before symbol i+1). Runtime-dispatches to an
  /// AVX2 kernel handling 8 symbols per iteration when available; the
  /// scalar fallback (and remainder tail) is per-symbol demap_soft, and
  /// the two are bit-identical — see detail::force_scalar_demap.
  void demap_soft_run(std::span<const cf32> symbols, std::span<const float> noise_vars,
                      std::span<float> llr_out) const;

 private:
  Modulation mod_;
  unsigned bps_;
  unsigned i_bits_;
  unsigned q_bits_;
  std::vector<cf32> points_;  // indexed by the bps-bit Gray label
  // Per-axis PAM levels (normalized), indexed by the axis bit group: the
  // square-QAM grid factorizes, so soft demapping scans 2*sqrt(M) axis
  // points instead of M grid points.
  std::array<float, 8> i_levels_{};
  std::array<float, 8> q_levels_{};
};

/// Process-wide immutable Constellation per modulation, built on first use —
/// the receive path must not construct (allocate) one per packet.
[[nodiscard]] const Constellation& constellation_for(Modulation m);

namespace detail {
/// Test hook: pin Constellation::demap_soft_run to the scalar fallback so
/// SIMD-vs-scalar bit identity can be asserted on AVX2 hosts.
void force_scalar_demap(bool force) noexcept;
/// True when the AVX2 demap kernel would actually run on this host.
[[nodiscard]] bool demap_simd_active() noexcept;
}  // namespace detail

}  // namespace mimonet::mod
