#include "fec/viterbi.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define MIMONET_VITERBI_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mimonet::fec {

namespace {
[[nodiscard]] std::uint8_t parity(std::uint32_t x) noexcept {
  return static_cast<std::uint8_t>(std::popcount(x) & 1);
}

#ifdef MIMONET_VITERBI_X86_DISPATCH
// Vectorized add-compare-select, 8 butterflies per lane group. Bit-identical
// to the scalar loop: same additions in the same order, the same ordered
// `cand_hi > cand_lo` comparison (NaN selects the low branch in both), and
// IEEE subtraction a - b is exactly a + (-b). Runtime-dispatched so the
// portable build still runs on pre-AVX2 hardware.
__attribute__((target("avx2,bmi2"))) void acs_step_avx2(
    const float* metric, float* next_metric, const float* bm,
    const std::uint32_t* sel_lo, const std::uint32_t* sel_hi,
    std::uint64_t& dec_word_out) {
  const __m256 bm_vec = _mm256_set_ps(bm[3], bm[2], bm[1], bm[0], bm[3], bm[2],
                                      bm[1], bm[0]);
  std::uint64_t dec_word = 0;
  for (std::uint32_t c = 0; c < 4; ++c) {
    const __m256 m_lo = _mm256_loadu_ps(metric + 8 * c);
    const __m256 m_hi = _mm256_loadu_ps(metric + 8 * c + 32);
    // b = 0 and b = 1 branch metrics for this chunk of predecessors.
    const __m256 bmv0 = _mm256_permutevar8x32_ps(
        bm_vec, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(sel_lo + 8 * c)));
    const __m256 bmv1 = _mm256_permutevar8x32_ps(
        bm_vec, _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(sel_hi + 8 * c)));

    const __m256 lo0 = _mm256_add_ps(m_lo, bmv0);
    const __m256 hi0 = _mm256_sub_ps(m_hi, bmv0);
    const __m256 lo1 = _mm256_add_ps(m_lo, bmv1);
    const __m256 hi1 = _mm256_sub_ps(m_hi, bmv1);
    const __m256 take0 = _mm256_cmp_ps(hi0, lo0, _CMP_GT_OQ);
    const __m256 take1 = _mm256_cmp_ps(hi1, lo1, _CMP_GT_OQ);
    const __m256 w0 = _mm256_blendv_ps(lo0, hi0, take0);
    const __m256 w1 = _mm256_blendv_ps(lo1, hi1, take1);

    // Interleave winners: next states are 2p (b=0) and 2p+1 (b=1).
    const __m256 il = _mm256_unpacklo_ps(w0, w1);
    const __m256 ih = _mm256_unpackhi_ps(w0, w1);
    _mm256_storeu_ps(next_metric + 16 * c,
                     _mm256_permute2f128_ps(il, ih, 0x20));
    _mm256_storeu_ps(next_metric + 16 * c + 8,
                     _mm256_permute2f128_ps(il, ih, 0x31));

    const auto m0 = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(_mm256_movemask_ps(take0)));
    const auto m1 = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(_mm256_movemask_ps(take1)));
    const std::uint64_t bits =
        _pdep_u64(m0, 0x5555ULL) | _pdep_u64(m1, 0xAAAAULL);
    dec_word |= bits << (16 * c);
  }
  dec_word_out = dec_word;
}

[[nodiscard]] bool have_avx2_bmi2() noexcept {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("bmi2");
}
#endif  // MIMONET_VITERBI_X86_DISPATCH
}  // namespace

ViterbiDecoder::ViterbiDecoder() {
  for (std::uint32_t s = 0; s < kNumStates; ++s) {
    for (std::uint32_t b = 0; b < 2; ++b) {
      const std::uint32_t full = ((s << 1U) | b) & 0x7FU;
      const std::uint8_t o0 = parity(full & kPolyG0);
      const std::uint8_t o1 = parity(full & kPolyG1);
      out_[s][b] = static_cast<std::uint8_t>((o0 << 1U) | o1);
    }
  }
  for (std::uint32_t p = 0; p < kNumStates / 2; ++p) {
    for (std::uint32_t b = 0; b < 2; ++b) {
      bm_sel_[p][b] = out_[p][b];
    }
    sel0_[p] = bm_sel_[p][0];
    sel1_[p] = bm_sel_[p][1];
  }
}

void ViterbiDecoder::acs_run(const float* llrs, std::size_t n_steps, float*& metric,
                             float*& next_metric, std::uint64_t* decisions) const {
  constexpr std::uint32_t kHalf = kNumStates / 2;

#ifdef MIMONET_VITERBI_X86_DISPATCH
  static const bool use_avx2 = have_avx2_bmi2();
  if (use_avx2) {
    for (std::size_t t = 0; t < n_steps; ++t) {
      const float l0 = llrs[2 * t];
      const float l1 = llrs[2 * t + 1];
      const std::array<float, 4> bm{l0 + l1, l0 + -l1, -l0 + l1, -l0 + -l1};
      acs_step_avx2(metric, next_metric, bm.data(), sel0_.data(), sel1_.data(),
                    decisions[t]);
      std::swap(metric, next_metric);
    }
    return;
  }
#endif
  for (std::size_t t = 0; t < n_steps; ++t) {
    const float l0 = llrs[2 * t];      // LLR of first coded bit (g0)
    const float l1 = llrs[2 * t + 1];  // LLR of second coded bit (g1)
    // Branch metric per output pair o: +LLR when the transmitted coded bit
    // is 0, -LLR when 1 — four possible values per step.
    const std::array<float, 4> bm{l0 + l1, l0 + -l1, -l0 + l1, -l0 + -l1};
    std::uint64_t dec_word = 0;

    // Butterfly update: predecessors p and p | 32 both feed next states 2p
    // and 2p+1, and the high predecessor's branch metric is the exact
    // negation of the low one's (both generators tap x^6). Identical
    // arithmetic to the per-next-state form, half the metric loads.
    for (std::uint32_t p = 0; p < kHalf; ++p) {
      const float m_lo = metric[p];
      const float m_hi = metric[p + kHalf];
      for (std::uint32_t b = 0; b < 2; ++b) {
        const float bmv = bm[bm_sel_[p][b]];
        const float cand_lo = m_lo + bmv;
        const float cand_hi = m_hi + -bmv;
        const std::uint32_t next = (p << 1U) | b;
        if (cand_hi > cand_lo) {
          next_metric[next] = cand_hi;
          dec_word |= (std::uint64_t{1} << next);
        } else {
          next_metric[next] = cand_lo;
        }
      }
    }
    decisions[t] = dec_word;
    std::swap(metric, next_metric);
  }
}

void ViterbiDecoder::decode_soft_into(std::span<const float> llrs, bool terminated,
                                      std::vector<std::uint8_t>& decoded,
                                      Scratch& scratch) const {
  if (llrs.size() % 2 != 0) {
    throw std::invalid_argument("ViterbiDecoder: LLR count must be even");
  }
  const std::size_t n_steps = llrs.size() / 2;
  decoded.resize(n_steps);
  if (n_steps == 0) return;

  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::array<float, kNumStates> buf_a{};
  std::array<float, kNumStates> buf_b{};
  buf_a.fill(kNegInf);
  buf_a[0] = 0.0F;  // encoder starts in the all-zero state
  float* metric = buf_a.data();
  float* next_metric = buf_b.data();

  // decisions[t] bit s: which predecessor (0 = low, 1 = high) won for state s.
  auto& decisions = scratch.decisions;
  decisions.resize(n_steps);

  acs_run(llrs.data(), n_steps, metric, next_metric, decisions.data());

  // Traceback.
  std::uint32_t state = 0;
  if (!terminated) {
    state = static_cast<std::uint32_t>(
        std::distance(metric, std::max_element(metric, metric + kNumStates)));
  }
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state & 1U);
    const bool took_hi = ((decisions[t] >> state) & 1U) != 0;
    state = (state >> 1U) | (took_hi ? (kNumStates >> 1U) : 0U);
  }
}

void ViterbiDecoder::stream_begin(StreamState& st, Scratch& scratch,
                                  std::size_t max_steps) const {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  st.metric_a.fill(kNegInf);
  st.metric_a[0] = 0.0F;  // encoder starts in the all-zero state
  st.metric_b.fill(0.0F);
  st.current_is_a = true;
  st.steps = 0;
  st.carry = 0.0F;
  st.have_carry = false;
  scratch.decisions.resize(max_steps);
}

void ViterbiDecoder::stream_consume(StreamState& st, Scratch& scratch,
                                    std::span<const float> llrs) const {
  auto& decisions = scratch.decisions;
  float* metric = st.current_is_a ? st.metric_a.data() : st.metric_b.data();
  float* next_metric = st.current_is_a ? st.metric_b.data() : st.metric_a.data();

  std::size_t i = 0;
  if (st.have_carry && !llrs.empty()) {
    if (st.steps + 1 > decisions.size()) {
      throw std::length_error("ViterbiDecoder::stream_consume: past max_steps");
    }
    const std::array<float, 2> pair{st.carry, llrs[0]};
    acs_run(pair.data(), 1, metric, next_metric, decisions.data() + st.steps);
    ++st.steps;
    st.have_carry = false;
    i = 1;
  }
  const std::size_t n_pairs = (llrs.size() - i) / 2;
  if (st.steps + n_pairs > decisions.size()) {
    throw std::length_error("ViterbiDecoder::stream_consume: past max_steps");
  }
  acs_run(llrs.data() + i, n_pairs, metric, next_metric,
          decisions.data() + st.steps);
  st.steps += n_pairs;
  i += 2 * n_pairs;
  if (i < llrs.size()) {
    st.carry = llrs[i];
    st.have_carry = true;
  }
  st.current_is_a = (metric == st.metric_a.data());
}

void ViterbiDecoder::stream_finish(StreamState& st, Scratch& scratch, bool terminated,
                                   std::vector<std::uint8_t>& decoded) const {
  if (st.have_carry) {
    throw std::invalid_argument("ViterbiDecoder::stream_finish: odd LLR count");
  }
  const std::size_t n_steps = st.steps;
  decoded.resize(n_steps);
  if (n_steps == 0) return;

  const float* metric = st.current_is_a ? st.metric_a.data() : st.metric_b.data();
  const auto& decisions = scratch.decisions;
  std::uint32_t state = 0;
  if (!terminated) {
    state = static_cast<std::uint32_t>(
        std::distance(metric, std::max_element(metric, metric + kNumStates)));
  }
  for (std::size_t t = n_steps; t-- > 0;) {
    decoded[t] = static_cast<std::uint8_t>(state & 1U);
    const bool took_hi = ((decisions[t] >> state) & 1U) != 0;
    state = (state >> 1U) | (took_hi ? (kNumStates >> 1U) : 0U);
  }
}

std::vector<std::uint8_t> ViterbiDecoder::decode_soft(std::span<const float> llrs,
                                                      bool terminated) const {
  std::vector<std::uint8_t> decoded;
  Scratch scratch;
  decode_soft_into(llrs, terminated, decoded, scratch);
  return decoded;
}

std::vector<std::uint8_t> ViterbiDecoder::decode_hard(std::span<const std::uint8_t> coded,
                                                      bool terminated) const {
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = (coded[i] != 0) ? -1.0F : 1.0F;
  }
  return decode_soft(llrs, terminated);
}

std::vector<std::uint8_t> encode_with_tail(std::span<const std::uint8_t> bits,
                                           CodeRate rate) {
  std::vector<std::uint8_t> with_tail(bits.begin(), bits.end());
  with_tail.insert(with_tail.end(), kConstraintLength - 1, 0);
  const auto coded = conv_encode(with_tail);
  return puncture(coded, rate);
}

std::vector<std::uint8_t> decode_with_tail(std::span<const float> llrs, CodeRate rate,
                                           const ViterbiDecoder& dec) {
  auto full = depuncture(llrs, rate);
  // A trailing punctured position after the last transmitted bit is not
  // regenerated by depuncture(); every pattern keeps at least one bit per
  // step, so at most one erasure is missing.
  if (full.size() % 2 != 0) full.push_back(0.0F);
  auto decoded = dec.decode_soft(full, /*terminated=*/true);
  if (decoded.size() < kConstraintLength - 1) {
    throw std::invalid_argument("decode_with_tail: stream shorter than the tail");
  }
  decoded.resize(decoded.size() - (kConstraintLength - 1));
  return decoded;
}

}  // namespace mimonet::fec
