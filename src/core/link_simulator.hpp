// Monte-Carlo link-level harness: Transmitter -> MimoChannel -> Receiver,
// with BER/PER/throughput accounting. Every experiment bench builds on this.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "channel/mimo_channel.hpp"
#include "core/phy_config.hpp"
#include "dsp/stats.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "metrics/counters.hpp"

namespace mimonet::core {

/// One simulated link.
struct LinkConfig {
  PhyConfig phy{};
  channel::ChannelConfig channel{};
  std::size_t psdu_payload_bytes = 1000;  ///< payload inside the MAC frame
  std::uint64_t seed = 1;
};

/// Aggregated results of a batch of packets.
struct LinkResult {
  metrics::BerCounter ber;        ///< over PSDU bits of packets that decoded
  metrics::PerCounter per;        ///< FCS failures + undetected packets
  metrics::ThroughputMeter throughput;
  std::size_t undetected = 0;     ///< sync never found the packet
  dsp::RunningStats snr_est_db;   ///< receiver's L-LTF SNR estimates
  dsp::RunningStats pilot_snr_db; ///< receiver's pilot-EVM SNR estimates
  dsp::RunningStats timing_err;   ///< packet_start error in samples
  dsp::RunningStats cfo_err;      ///< CFO estimate error, cycles/sample
};

/// Ties the full chain together and runs seeded Monte-Carlo batches.
class LinkSimulator {
 public:
  explicit LinkSimulator(LinkConfig cfg);

  /// Run `n_packets` packets; per-packet RNG derives from the config seed.
  /// The optional observer sees every decoded packet (for custom metrics).
  [[nodiscard]] LinkResult run(
      std::size_t n_packets,
      const std::function<void(const RxPacket&, const std::vector<std::uint8_t>& sent_psdu)>&
          observer = nullptr);

  [[nodiscard]] const LinkConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Transmitter& transmitter() const noexcept { return tx_; }
  [[nodiscard]] const Receiver& receiver() const noexcept { return rx_; }
  [[nodiscard]] channel::MimoChannel& channel() noexcept { return chan_; }

 private:
  LinkConfig cfg_;
  Transmitter tx_;
  channel::MimoChannel chan_;
  Receiver rx_;
  dsp::BitSource payload_src_;
};

/// Convenience: a LinkConfig with sane defaults for the given MCS/SNR and
/// antenna setup matching the MCS's stream count.
[[nodiscard]] LinkConfig make_link_config(unsigned mcs, double snr_db,
                                          std::size_t nrx = 0 /* = nss */);

}  // namespace mimonet::core
