// Channel-condition monitoring example: the paper's "fine grained SNR
// estimation ... allows us to evaluate the channel conditions". A link runs
// while the true SNR drifts; each received packet reports its wideband and
// per-subcarrier SNR estimates, revealing both the drift and the frequency
// selectivity of the channel.
#include <cstdio>
#include <string>

#include "core/link_simulator.hpp"
#include "ofdm/subcarriers.hpp"

int main() {
  using namespace mimonet;

  std::printf("wideband SNR tracking (true SNR drifts 30 -> 5 dB):\n");
  std::printf("%8s %10s %10s %10s\n", "true dB", "LTF est", "pilot est", "FCS");
  for (int step = 0; step <= 10; ++step) {
    const double snr = 30.0 - 2.5 * step;
    auto cfg = core::make_link_config(3, snr);
    cfg.psdu_payload_bytes = 300;
    cfg.seed = 400 + static_cast<std::uint64_t>(step);
    core::LinkSimulator sim(cfg);
    bool printed = false;
    (void)sim.run(1, [&](const core::RxPacket& pkt, const auto&) {
      std::printf("%8.1f %10.1f %10.1f %10s\n", snr, pkt.snr.snr_db,
                  pkt.pilot_snr.snr_db, pkt.fcs_ok ? "ok" : "FAIL");
      printed = true;
    });
    if (!printed) std::printf("%8.1f %10s %10s %10s\n", snr, "-", "-", "lost");
  }

  std::printf("\nper-subcarrier SNR under a frequency-selective channel "
              "(notches = fades):\n");
  auto cfg = core::make_link_config(0, 25.0);
  cfg.channel.fading = true;
  cfg.channel.profile = channel::DelayProfile::kLong;
  cfg.seed = 99;
  core::LinkSimulator sim(cfg);
  (void)sim.run(1, [&](const core::RxPacket& pkt, const auto&) {
    for (int k = -26; k <= 26; k += 2) {
      if (k == 0) continue;
      const auto bin = ofdm::SubcarrierMap::logical_to_bin(k);
      if (!pkt.snr.bin_valid(bin)) continue;
      const double db = pkt.snr.per_bin_db[bin];
      const int bars = std::max(0, static_cast<int>(db / 2.0));
      std::printf("  k=%+3d %6.1f dB |%s\n", k, db, std::string(bars, '#').c_str());
    }
  });
  return 0;
}
