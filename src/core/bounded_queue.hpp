// Bounded single-producer queue feeding a merging (consumer) thread — the
// backpressure primitive behind every deterministic worker pool in core/
// (LinkSimulator, MuLinkSimulator, the receiver farm's merge path). Each
// worker owns one queue; the consumer pops queues in global packet order,
// which is what makes the pools' aggregates thread-count invariant.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mimonet::core {

/// close() signals the producer is done; stop() aborts a blocked producer.
template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t cap) : cap_(cap) {}

  bool push(T&& work) {
    std::unique_lock lk(m_);
    cv_space_.wait(lk, [&] { return q_.size() < cap_ || stopped_; });
    if (stopped_) return false;
    q_.push_back(std::move(work));
    cv_item_.notify_one();
    return true;
  }

  void close() {
    const std::lock_guard lk(m_);
    closed_ = true;
    cv_item_.notify_all();
  }

  void stop() {
    const std::lock_guard lk(m_);
    stopped_ = true;
    cv_space_.notify_all();
  }

  /// Next item in production order; nullopt once the producer closed and
  /// the queue drained (i.e. the worker exited early).
  std::optional<T> pop() {
    std::unique_lock lk(m_);
    cv_item_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T work = std::move(q_.front());
    q_.pop_front();
    cv_space_.notify_one();
    return work;
  }

 private:
  std::mutex m_;
  std::condition_variable cv_item_;
  std::condition_variable cv_space_;
  std::deque<T> q_;
  std::size_t cap_;
  bool closed_ = false;
  bool stopped_ = false;
};

}  // namespace mimonet::core
