file(REMOVE_RECURSE
  "CMakeFiles/mimonet_trace.dir/trace/file_blocks.cpp.o"
  "CMakeFiles/mimonet_trace.dir/trace/file_blocks.cpp.o.d"
  "CMakeFiles/mimonet_trace.dir/trace/iq_file.cpp.o"
  "CMakeFiles/mimonet_trace.dir/trace/iq_file.cpp.o.d"
  "libmimonet_trace.a"
  "libmimonet_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
