// Alamouti STBC: combiner math, TX/RX loopback, and the diversity gain
// over spatial multiplexing at matched data rate.
#include <gtest/gtest.h>

#include "core/link_simulator.hpp"
#include "dsp/rng.hpp"
#include "eq/alamouti.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;
using eq::alamouti_combine;
using eq::alamouti_map;

TEST(AlamoutiMap, MatchesDefinition) {
  const cf32 d1{0.3F, 0.4F};
  const cf32 d2{-0.7F, 0.1F};
  const auto m = alamouti_map(d1, d2);
  EXPECT_EQ(m.sts1_first, d1);
  EXPECT_EQ(m.sts1_second, d2);
  EXPECT_EQ(m.sts2_first, -std::conj(d2));
  EXPECT_EQ(m.sts2_second, std::conj(d1));
}

TEST(AlamoutiCombine, PerfectRecoveryNoiseless) {
  eq::CMatrix h(2, 2);
  h(0, 0) = {0.8, 0.3};
  h(0, 1) = {-0.2, 0.6};
  h(1, 0) = {0.1, -0.9};
  h(1, 1) = {0.5, 0.2};
  const cf32 d1{0.6F, -0.2F};
  const cf32 d2{-0.4F, 0.8F};
  const auto m = alamouti_map(d1, d2);

  std::vector<cf32> y1(2);
  std::vector<cf32> y2(2);
  for (std::size_t r = 0; r < 2; ++r) {
    const dsp::cf64 a = h(r, 0) * dsp::cf64(m.sts1_first) + h(r, 1) * dsp::cf64(m.sts2_first);
    const dsp::cf64 b =
        h(r, 0) * dsp::cf64(m.sts1_second) + h(r, 1) * dsp::cf64(m.sts2_second);
    y1[r] = cf32(static_cast<float>(a.real()), static_cast<float>(a.imag()));
    y2[r] = cf32(static_cast<float>(b.real()), static_cast<float>(b.imag()));
  }
  const auto dec = alamouti_combine(h, y1, y2, 0.01F);
  EXPECT_NEAR(std::abs(dec.d1 - d1), 0.0F, 1e-5F);
  EXPECT_NEAR(std::abs(dec.d2 - d2), 0.0F, 1e-5F);
}

TEST(AlamoutiCombine, NoiseVarScalesWithChannelGain) {
  eq::CMatrix strong = eq::CMatrix::identity(2);
  eq::CMatrix weak(2, 2);
  weak(0, 0) = {0.1, 0.0};
  weak(0, 1) = {0.1, 0.0};
  weak(1, 0) = {0.1, 0.0};
  weak(1, 1) = {0.1, 0.0};
  std::vector<cf32> y(2, cf32{0.1F, 0.0F});
  const auto a = alamouti_combine(strong, y, y, 0.1F);
  const auto b = alamouti_combine(weak, y, y, 0.1F);
  EXPECT_LT(a.noise_var, b.noise_var);
}

TEST(AlamoutiCombine, DimensionChecks) {
  const auto h = eq::CMatrix::identity(2);
  std::vector<cf32> y(2);
  std::vector<cf32> bad(3);
  EXPECT_THROW((void)alamouti_combine(h, bad, y, 0.1F), std::invalid_argument);
  const eq::CMatrix h3(2, 3);
  EXPECT_THROW((void)alamouti_combine(h3, y, y, 0.1F), std::invalid_argument);
}

TEST(StbcLoopback, RejectsMultiStreamMcs) {
  core::PhyConfig phy;
  phy.mcs = 9;
  phy.stbc = true;
  EXPECT_THROW(core::Transmitter{phy}, std::invalid_argument);
}

TEST(StbcLoopback, TransmitterUsesTwoChains) {
  core::PhyConfig phy;
  phy.mcs = 0;
  phy.stbc = true;
  const core::Transmitter tx(phy);
  EXPECT_EQ(tx.num_streams(), 2U);
  const auto streams = tx.transmit(std::vector<std::uint8_t>(100, 0x42));
  ASSERT_EQ(streams.size(), 2U);
  EXPECT_EQ(streams[0].size(), streams[1].size());
}

TEST(StbcLoopback, EvenSymbolCountEnforced) {
  const auto mcs = wifi::mcs_info(0);  // 26 data bits/symbol
  // 16 + 8 + 6 = 30 bits -> 2 symbols, already even.
  EXPECT_EQ(core::data_symbol_count(mcs, 1, true, true), 2U);
  // 16 + 8*4 + 6 = 54 bits -> 3 symbols -> rounded to 4 for STBC.
  EXPECT_EQ(core::data_symbol_count(mcs, 4, true, false), 3U);
  EXPECT_EQ(core::data_symbol_count(mcs, 4, true, true), 4U);
}

class StbcMcs : public ::testing::TestWithParam<unsigned> {};

TEST_P(StbcMcs, LoopbackDecodesOverFading) {
  auto cfg = core::make_link_config(GetParam(), 35.0, 2);
  cfg.phy.stbc = true;
  cfg.channel.ntx = 2;
  cfg.channel.fading = true;
  cfg.psdu_payload_bytes = 257;  // odd size exercises the pad path
  cfg.seed = 100 + GetParam();
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(4);
  EXPECT_LE(res.per.failures(), 1U) << "MCS " << GetParam();
  bool any_ok = res.per.failures() < res.per.packets();
  EXPECT_TRUE(any_ok);
}

INSTANTIATE_TEST_SUITE_P(Mcs, StbcMcs, ::testing::Values(0U, 2U, 4U, 7U));

TEST(StbcLoopback, TwoByOneDiversityWorks) {
  // STBC's reason to exist: 2 TX antennas, ONE RX antenna still decodes.
  auto cfg = core::make_link_config(1, 30.0, 1);
  cfg.phy.stbc = true;
  cfg.channel.ntx = 2;
  cfg.channel.nrx = 1;
  cfg.channel.fading = true;
  cfg.seed = 4;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(5);
  EXPECT_LE(res.per.failures(), 1U);
}

TEST(StbcLoopback, HtSigCarriesStbcFlag) {
  auto cfg = core::make_link_config(3, 30.0, 2);
  cfg.phy.stbc = true;
  cfg.channel.ntx = 2;
  cfg.channel.fading = true;
  core::LinkSimulator sim(cfg);
  bool seen = false;
  (void)sim.run(1, [&](const core::RxPacket& pkt, const auto&) {
    seen = true;
    EXPECT_EQ(pkt.htsig.stbc, 1);
    EXPECT_TRUE(pkt.fcs_ok);
  });
  EXPECT_TRUE(seen);
}

TEST(StbcVsSm, DiversityWinsAtMatchedRate) {
  // 26 Mb/s two ways: STBC 16-QAM 1/2 (MCS 3 + Alamouti) vs SM QPSK 1/2 x2
  // (MCS 9), 2x2 Rayleigh at moderate SNR. Diversity order 4 vs 2: STBC
  // must lose no more packets.
  auto stbc = core::make_link_config(3, 12.0, 2);
  stbc.phy.stbc = true;
  stbc.channel.ntx = 2;
  stbc.channel.fading = true;
  stbc.seed = 77;
  auto sm = core::make_link_config(9, 12.0, 2);
  sm.channel.fading = true;
  sm.seed = 77;
  const auto r_stbc = core::LinkSimulator(stbc).run(40);
  const auto r_sm = core::LinkSimulator(sm).run(40);
  EXPECT_LE(r_stbc.per.failures(), r_sm.per.failures() + 1);
}

class MultiStreamMcs : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiStreamMcs, ThreeAndFourStreamLoopback) {
  auto cfg = core::make_link_config(GetParam(), 40.0);
  cfg.psdu_payload_bytes = 300;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(2);
  EXPECT_EQ(res.per.failures(), 0U) << "MCS " << GetParam();
  EXPECT_EQ(res.ber.errors(), 0U);
}

INSTANTIATE_TEST_SUITE_P(Mcs, MultiStreamMcs,
                         ::testing::Values(16U, 18U, 21U, 23U, 24U, 27U, 31U));

TEST(MultiStream, FourStreamFadingWithExtraRx) {
  auto cfg = core::make_link_config(25, 35.0, 4);
  cfg.channel.fading = true;
  cfg.seed = 15;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(3);
  EXPECT_LE(res.per.failures(), 1U);
}

}  // namespace
