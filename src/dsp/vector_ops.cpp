#include "dsp/vector_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace mimonet::dsp {

double energy(std::span<const cf32> x) noexcept {
  double acc = 0.0;
  for (const cf32 v : x) acc += static_cast<double>(mag_sqr(v));
  return acc;
}

double mean_power(std::span<const cf32> x) noexcept {
  if (x.empty()) return 0.0;
  return energy(x) / static_cast<double>(x.size());
}

void scale(std::span<cf32> x, float gain) noexcept {
  for (auto& v : x) v *= gain;
}

void multiply_conj(std::span<const cf32> a, std::span<const cf32> b, std::span<cf32> out) {
  if (a.size() != b.size() || a.size() != out.size()) {
    throw std::invalid_argument("multiply_conj: size mismatch");
  }
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * std::conj(b[i]);
}

cf64 dot_conj(std::span<const cf32> a, std::span<const cf32> b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  cf64 acc{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    acc += cf64(a[i]) * std::conj(cf64(b[i]));
  }
  return acc;
}

double mix(std::span<cf32> x, double phase0, double phase_inc) noexcept {
  double phase = phase0;
  for (auto& v : x) {
    const cf64 rot = phasor_d(phase);
    const cf64 y = cf64(v) * rot;
    v = cf32(static_cast<float>(y.real()), static_cast<float>(y.imag()));
    phase += phase_inc;
    // Keep the accumulator bounded for long streams.
    if (phase > pi_d) phase -= two_pi_d;
    if (phase < -pi_d) phase += two_pi_d;
  }
  return phase;
}

void cross_correlate_into(std::span<const cf32> x, std::span<const cf32> ref,
                          std::vector<cf32>& out) {
  if (x.size() < ref.size() || ref.empty()) {
    throw std::invalid_argument("cross_correlate: x shorter than ref or ref empty");
  }
  out.resize(x.size() - ref.size() + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    cf64 acc{0.0, 0.0};
    for (std::size_t n = 0; n < ref.size(); ++n) {
      acc += cf64(x[k + n]) * std::conj(cf64(ref[n]));
    }
    out[k] = cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
}

std::vector<cf32> cross_correlate(std::span<const cf32> x, std::span<const cf32> ref) {
  std::vector<cf32> out;
  cross_correlate_into(x, ref, out);
  return out;
}

double rms_error(std::span<const cf32> a, std::span<const cf32> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rms_error: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(mag_sqr(a[i] - b[i]));
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

}  // namespace mimonet::dsp
