file(REMOVE_RECURSE
  "libmimonet_mod.a"
)
