#include "core/phy_blocks.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/vector_ops.hpp"

namespace mimonet::core {

using flowgraph::WorkStatus;

// ---------------------------------------------------------------- TX block

TransmitterBlock::TransmitterBlock(PhyConfig cfg,
                                   std::vector<std::vector<std::uint8_t>> psdus,
                                   std::size_t idle_gap_samples)
    : Block("mimonet_tx"), tx_(cfg), psdus_(std::move(psdus)), idle_gap_(idle_gap_samples) {
  for (std::size_t s = 0; s < tx_.num_streams(); ++s) add_output<cf32>();
  // pending_ stays empty until the first work() call: prepare_next() tags
  // the output buffers, which are only bound when the graph connects us.
  pending_.resize(tx_.num_streams());
}

void TransmitterBlock::prepare_next() {
  if (next_psdu_ >= psdus_.size()) {
    exhausted_ = true;
    return;
  }
  pending_ = tx_.transmit(psdus_[next_psdu_]);
  for (auto& stream : pending_) {
    // Idle air between packets so the detector sees distinct bursts. Half
    // the gap leads, half trails, so the first packet is also padded.
    stream.insert(stream.begin(), idle_gap_ / 2, cf32{0.0F, 0.0F});
    stream.insert(stream.end(), idle_gap_ - idle_gap_ / 2, cf32{0.0F, 0.0F});
  }
  pending_pos_ = 0;
  ++next_psdu_;

  for (std::size_t s = 0; s < tx_.num_streams(); ++s) {
    flowgraph::Tag tag;
    tag.offset = out<cf32>(s).write_offset() + idle_gap_ / 2;
    tag.key = "packet_start";
    tag.value = static_cast<std::int64_t>(next_psdu_ - 1);
    out<cf32>(s).add_tag(tag);
  }
}

WorkStatus TransmitterBlock::work() {
  if (exhausted_) return WorkStatus::kDone;
  if (pending_[0].empty()) {
    prepare_next();
    if (exhausted_) return WorkStatus::kDone;
  }
  bool progress = false;
  while (!exhausted_) {
    // Keep all streams in lock step: write the same amount everywhere.
    std::size_t n = pending_[0].size() - pending_pos_;
    for (std::size_t s = 0; s < pending_.size(); ++s) {
      n = std::min(n, out<cf32>(s).writable());
    }
    if (n == 0) return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
    for (std::size_t s = 0; s < pending_.size(); ++s) {
      const std::size_t w = out<cf32>(s).write(
          std::span<const cf32>(pending_[s]).subspan(pending_pos_, n));
      if (w != n) throw std::logic_error("TransmitterBlock: short write");
    }
    pending_pos_ += n;
    progress = true;
    if (pending_pos_ == pending_[0].size()) prepare_next();
  }
  return WorkStatus::kDone;
}

// ----------------------------------------------------------- channel block

MimoChannelBlock::MimoChannelBlock(channel::ChannelConfig cfg)
    : Block("mimo_channel"),
      cfg_(cfg),
      noise_(cfg.seed * 0xC2B2AE3D27D4EB4FULL + 11,
             dsp::from_db(-cfg.snr_db)) {
  for (std::size_t t = 0; t < cfg.ntx; ++t) add_input<cf32>();
  for (std::size_t r = 0; r < cfg.nrx; ++r) add_output<cf32>();

  if (cfg.fading) {
    channel::FadingGenerator gen(cfg.ntx, cfg.nrx, cfg.profile,
                                 cfg.seed * 0x9E3779B97F4A7C15ULL + 13, cfg.rho_tx,
                                 cfg.rho_rx);
    realization_ = gen.next();
  } else {
    if (cfg.ntx != cfg.nrx) {
      throw std::invalid_argument("MimoChannelBlock: identity channel needs ntx == nrx");
    }
    realization_ = channel::identity_channel(cfg.ntx);
  }
  firs_.resize(cfg.nrx);
  for (std::size_t r = 0; r < cfg.nrx; ++r) {
    for (std::size_t t = 0; t < cfg.ntx; ++t) {
      firs_[r].emplace_back(realization_.taps[r][t]);
    }
  }
}

WorkStatus MimoChannelBlock::work() {
  bool progress = false;
  while (true) {
    std::size_t n = 4096;
    for (std::size_t t = 0; t < cfg_.ntx; ++t) n = std::min(n, in<cf32>(t).readable());
    for (std::size_t r = 0; r < cfg_.nrx; ++r) n = std::min(n, out<cf32>(r).writable());
    if (n == 0) break;

    std::vector<std::vector<cf32>> tx_chunks(cfg_.ntx, std::vector<cf32>(n));
    for (std::size_t t = 0; t < cfg_.ntx; ++t) {
      in<cf32>(t).peek(tx_chunks[t]);
    }

    double next_phase = cfo_phase_;
    for (std::size_t r = 0; r < cfg_.nrx; ++r) {
      std::vector<cf32> acc(n, cf32{0.0F, 0.0F});
      for (std::size_t t = 0; t < cfg_.ntx; ++t) {
        const auto y = firs_[r][t].process(tx_chunks[t]);
        for (std::size_t i = 0; i < n; ++i) acc[i] += y[i];
      }
      // Every RX antenna shares the LO: same phase trajectory.
      next_phase = dsp::mix(acc, cfo_phase_, dsp::two_pi_d * cfg_.cfo_norm);
      noise_.add_to(acc);
      if (out<cf32>(r).write(acc) != n) {
        throw std::logic_error("MimoChannelBlock: short write");
      }
    }
    cfo_phase_ = next_phase;
    for (std::size_t t = 0; t < cfg_.ntx; ++t) in<cf32>(t).consume(n);
    progress = true;
  }
  if (all_inputs_done()) return WorkStatus::kDone;
  return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
}

// ---------------------------------------------------------------- RX block

ReceiverBlock::ReceiverBlock(PhyConfig cfg, std::size_t nrx, std::size_t attempt_window)
    : Block("mimonet_rx"), srx_(cfg, nrx), nrx_(nrx), attempt_window_(attempt_window) {
  for (std::size_t r = 0; r < nrx; ++r) add_input<cf32>();
  window_.resize(nrx);
}

std::size_t ReceiverBlock::process_window(bool flush) {
  const std::size_t len = window_[0].size();
  // Retained past every consume so an undetected partial preamble at the
  // window tail survives into the next scan (> full HT preamble).
  constexpr std::size_t kOverlap = 700;

  scan_events_.clear();
  spans_.assign(window_.begin(), window_.end());
  StreamStats scratch;  // rebuilt from committed events instead (below)
  srx_.scan(spans_, ws_, scratch, [this](const StreamEvent& ev) {
    StreamRecord rec;
    rec.offset = ev.offset;
    rec.error = ev.error;
    if (ev.packet != nullptr) {
      rec.has_packet = true;
      rec.packet = *ev.packet;
    }
    scan_events_.push_back(std::move(rec));
  });

  // Pick the consume point. A scan ending in a truncated candidate means
  // that frame is still streaming in: hold the window at its start and
  // wait. Otherwise drop everything but the overlap tail, extended past
  // the last decoded frame's extent.
  const bool ends_truncated =
      !scan_events_.empty() &&
      scan_events_.back().error == metrics::RxError::kTruncated;
  std::size_t consume;
  if (flush) {
    consume = len;
  } else if (ends_truncated) {
    consume = scan_events_.back().offset;
  } else {
    consume = len > kOverlap ? len - kOverlap : 0;
    for (const auto& rec : scan_events_) {
      if (rec.has_packet && rec.packet.htsig_ok) {
        if (const auto ext = decoded_frame_samples(rec.packet, srx_.config())) {
          consume = std::max(consume, std::min(len, rec.offset + *ext));
        }
      }
    }
  }

  // Commit events the consume point covers; deferred ones keep their
  // samples in the window and are re-scanned (and committed exactly once)
  // later. On flush everything commits.
  for (auto& rec : scan_events_) {
    if (!flush && rec.offset >= consume) continue;
    stats_.errors.add(rec.error);
    if (rec.error == metrics::RxError::kBudgetExceeded) {
      ++stats_.budget_exhaustions;
      continue;
    }
    if (rec.has_packet && rec.packet.htsig_ok) {
      ++stats_.frames;
      if (rec.packet.fcs_ok) ++stats_.delivered;
    } else {
      ++stats_.resync_events;
    }
    if (rec.has_packet) packets_.push_back(std::move(rec.packet));
  }
  stats_.samples_scanned += consume;
  return consume;
}

WorkStatus ReceiverBlock::work() {
  // Pull aligned chunks into the window.
  bool progress = false;
  while (true) {
    std::size_t n = 4096;
    for (std::size_t r = 0; r < nrx_; ++r) n = std::min(n, in<cf32>(r).readable());
    if (n == 0) break;
    for (std::size_t r = 0; r < nrx_; ++r) {
      std::vector<cf32> chunk(n);
      in<cf32>(r).peek(chunk);
      in<cf32>(r).consume(n);
      window_[r].insert(window_[r].end(), chunk.begin(), chunk.end());
    }
    progress = true;
  }

  const bool inputs_done = all_inputs_done();
  while (window_[0].size() >= attempt_window_ ||
         (inputs_done && !window_[0].empty())) {
    const std::size_t drop = process_window(inputs_done);
    if (drop == 0) break;
    for (auto& w : window_) {
      w.erase(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(
                             std::min(drop, w.size())));
    }
    progress = true;
    if (window_[0].empty()) break;
  }

  if (inputs_done && window_[0].empty()) return WorkStatus::kDone;
  return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
}

}  // namespace mimonet::core
