#include "wifi/signal_field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fec/convolutional.hpp"
#include "fec/crc.hpp"
#include "wifi/interleaver.hpp"

namespace mimonet::wifi {

namespace {

// Field bit helpers: LSB-first packing as transmitted on air.
void put_bits(std::vector<std::uint8_t>& out, std::uint32_t value, unsigned count) {
  for (unsigned i = 0; i < count; ++i) {
    out.push_back(static_cast<std::uint8_t>((value >> i) & 1U));
  }
}

[[nodiscard]] std::uint32_t get_bits(std::span<const std::uint8_t> bits,
                                     std::size_t offset, unsigned count) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < count; ++i) {
    v |= static_cast<std::uint32_t>(bits[offset + i] & 1U) << i;
  }
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_lsig(const LSig& sig) {
  if (sig.length > 0xFFF) throw std::invalid_argument("encode_lsig: length > 12 bits");
  std::vector<std::uint8_t> bits;
  bits.reserve(24);
  put_bits(bits, sig.rate_bits, 4);
  bits.push_back(0);  // reserved
  put_bits(bits, sig.length, 12);
  // Even parity over bits 0..16.
  std::uint8_t parity = 0;
  for (const auto b : bits) parity ^= b;
  bits.push_back(parity);
  put_bits(bits, 0, 6);  // tail
  return bits;
}

std::optional<LSig> decode_lsig(std::span<const std::uint8_t> bits) {
  if (bits.size() != 24) return std::nullopt;
  std::uint8_t parity = 0;
  for (std::size_t i = 0; i < 18; ++i) parity ^= bits[i] & 1U;
  if (parity != 0) return std::nullopt;  // bits[17] included: even parity
  for (std::size_t i = 18; i < 24; ++i) {
    if (bits[i] != 0) return std::nullopt;  // tail must be zero
  }
  LSig sig;
  sig.rate_bits = static_cast<std::uint8_t>(get_bits(bits, 0, 4));
  sig.length = static_cast<std::uint16_t>(get_bits(bits, 5, 12));
  return sig;
}

std::vector<std::uint8_t> encode_htsig(const HtSig& sig) {
  if (sig.mcs > 0x7F) throw std::invalid_argument("encode_htsig: mcs > 7 bits");
  std::vector<std::uint8_t> bits;
  bits.reserve(48);
  // HT-SIG1.
  put_bits(bits, sig.mcs, 7);
  bits.push_back(sig.cbw40 ? 1 : 0);
  put_bits(bits, sig.length, 16);
  // HT-SIG2.
  bits.push_back(sig.smoothing ? 1 : 0);
  bits.push_back(sig.not_sounding ? 1 : 0);
  bits.push_back(1);  // reserved, always 1
  bits.push_back(sig.aggregation ? 1 : 0);
  put_bits(bits, sig.stbc, 2);
  bits.push_back(sig.fec_coding ? 1 : 0);
  bits.push_back(sig.short_gi ? 1 : 0);
  put_bits(bits, sig.n_ess, 2);
  // CRC-8 over the first 34 bits, transmitted MSB (c7) first.
  const std::uint8_t crc = fec::crc8_bits(std::span(bits).first(34));
  for (int i = 7; i >= 0; --i) {
    bits.push_back(static_cast<std::uint8_t>((crc >> i) & 1U));
  }
  put_bits(bits, 0, 6);  // tail
  return bits;
}

std::optional<HtSig> decode_htsig(std::span<const std::uint8_t> bits) {
  if (bits.size() != 48) return std::nullopt;
  const std::uint8_t expected = fec::crc8_bits(bits.first(34));
  std::uint8_t got = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    got = static_cast<std::uint8_t>((got << 1U) | (bits[34 + i] & 1U));
  }
  if (got != expected) return std::nullopt;
  HtSig sig;
  sig.mcs = static_cast<std::uint8_t>(get_bits(bits, 0, 7));
  sig.cbw40 = bits[7] != 0;
  sig.length = static_cast<std::uint16_t>(get_bits(bits, 8, 16));
  sig.smoothing = bits[24] != 0;
  sig.not_sounding = bits[25] != 0;
  sig.aggregation = bits[27] != 0;
  sig.stbc = static_cast<std::uint8_t>(get_bits(bits, 28, 2));
  sig.fec_coding = bits[30] != 0;
  sig.short_gi = bits[31] != 0;
  sig.n_ess = static_cast<std::uint8_t>(get_bits(bits, 32, 2));
  return sig;
}

std::vector<cf32> map_sig_field(std::span<const std::uint8_t> bits, bool qbpsk) {
  if (bits.empty() || bits.size() % 24 != 0) {
    throw std::invalid_argument("map_sig_field: bit count must be a multiple of 24");
  }
  const auto coded = fec::conv_encode(bits);  // rate 1/2 -> 48 bits per symbol
  const LegacyInterleaver& il = cached_legacy_interleaver(1);
  const auto interleaved = il.interleave(coded);
  std::vector<cf32> out(interleaved.size());
  for (std::size_t i = 0; i < interleaved.size(); ++i) {
    const float v = (interleaved[i] != 0) ? 1.0F : -1.0F;
    out[i] = qbpsk ? cf32(0.0F, v) : cf32(v, 0.0F);
  }
  return out;
}

void demap_sig_field_into(std::span<const cf32> carriers, float noise_var, bool qbpsk,
                          std::vector<float>& scratch_llrs, std::vector<float>& out) {
  if (carriers.empty() || carriers.size() % 48 != 0) {
    throw std::invalid_argument("demap_sig_field: carrier count must be a multiple of 48");
  }
  const float inv_nv = 4.0F / std::max(noise_var, 1e-12F);
  scratch_llrs.resize(carriers.size());
  for (std::size_t i = 0; i < carriers.size(); ++i) {
    const float axis = qbpsk ? carriers[i].imag() : carriers[i].real();
    // Positive LLR = bit 0 more likely; bit 0 maps to -1 on the axis.
    // Non-finite observations become erasures so the Viterbi branch
    // metrics stay defined.
    const float llr = -axis * inv_nv;
    scratch_llrs[i] = std::isfinite(llr) ? llr : 0.0F;
  }
  cached_legacy_interleaver(1).deinterleave_into(scratch_llrs, out);
}

std::vector<float> demap_sig_field(std::span<const cf32> carriers, float noise_var,
                                   bool qbpsk) {
  std::vector<float> scratch;
  std::vector<float> out;
  demap_sig_field_into(carriers, noise_var, qbpsk, scratch, out);
  return out;
}

}  // namespace mimonet::wifi
