// E14 — TX spectrum and PAPR (Fig. reconstruction): the occupied-band
// shape of the OFDM waveform and the peak-to-average power statistics that
// set the USRP amplifier back-off.
//
// Expected shape: flat in-band PSD across the 56 occupied subcarriers
// (+/- 8.75 MHz at 20 Msps), a DC null, and a steep drop outside the
// occupied band; PAPR CCDF around 9-11 dB at 1e-3 — classic OFDM.
#include <cstdio>

#include "bench_util.hpp"
#include "core/transmitter.hpp"
#include "dsp/spectrum.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;

int main() {
  bench::heading("E14", "TX power spectral density and PAPR (Fig.)");

  core::PhyConfig phy;
  phy.mcs = 7;  // 64-QAM fills the constellation
  const core::Transmitter tx(phy);

  // Concatenate several PPDUs for a stable Welch estimate.
  std::vector<dsp::cf32> waveform;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::uint8_t> payload(1200, static_cast<std::uint8_t>(i * 17));
    const auto psdu = wifi::build_psdu(wifi::MacHeader{}, payload);
    const auto streams = tx.transmit(psdu);
    waveform.insert(waveform.end(), streams[0].begin(), streams[0].end());
  }

  constexpr std::size_t kNfft = 256;
  const auto psd = dsp::welch_psd_db(waveform, kNfft);

  // Normalize to the in-band plateau for readability.
  double plateau = -1e9;
  for (const auto v : psd) plateau = std::max(plateau, v);

  std::printf("\n  PSD relative to in-band peak (20 Msps, %zu-point Welch)\n",
              kNfft);
  const bench::Table table({"freq MHz", "dBr"}, 12);
  std::string pts = "[";
  bool first = true;
  for (int mhz = -10; mhz <= 10; ++mhz) {
    const auto idx = static_cast<std::size_t>(
        (mhz + 10) * static_cast<int>(kNfft) / 20);
    const std::size_t i = std::min(idx, kNfft - 1);
    table.row({bench::fix(mhz, 0), bench::fix(psd[i] - plateau, 1)});
    char obj[96];
    std::snprintf(obj, sizeof obj, "%s{\"freq_mhz\": %d, \"psd_dbr\": %.4g}",
                  first ? "" : ", ", mhz, psd[i] - plateau);
    pts += obj;
    first = false;
  }

  std::printf("\n  PAPR\n");
  const double probs[] = {1e-1, 1e-2, 1e-3};
  const auto ccdf = dsp::papr_ccdf_db(waveform, probs);
  const bench::Table t2({"P(papr>x)", "x dB"}, 12);
  for (std::size_t i = 0; i < 3; ++i) {
    t2.row({bench::sci(probs[i]), bench::fix(ccdf[i], 1)});
  }
  bench::note("peak PAPR over the burst: %.1f dB", dsp::papr_db(waveform));
  bench::note("expected: ~9 MHz flat occupied band, sharp out-of-band drop,");
  bench::note("PAPR ~9-11 dB at the 1e-3 point");

  bench::JsonReport report("e14_spectrum");
  report.field("nfft", kNfft)
      .field("papr_peak_db", dsp::papr_db(waveform))
      .field("papr_1e3_db", ccdf[2])
      .raw("points", pts + "]")
      .emit();
  return 0;
}
