// Stress: every synchronization entry point against adversarial inputs —
// degenerate spans at/below the documented minima, all-zero and DC-only
// signals, saturating ADC output, NaN/Inf injection, +/- maximum CFO. The
// contract under test: no crash, no UB, and every returned field finite and
// inside the searched span.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "channel/impairments.hpp"
#include "sync/fine_sync.hpp"
#include "sync/frame_sync.hpp"
#include "sync/packet_detector.hpp"
#include "sync/van_de_beek.hpp"
#include "stress_util.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;
using stress::SeedStream;

// One adversarial capture per (shape, case) pair, derived from a fixed
// suite seed so failures name their reproduction seed.
constexpr std::uint64_t kSuiteSeed = 0x5717C45EED0001ULL;

std::vector<std::vector<cf32>> adversarial_set(std::size_t n,
                                               std::uint64_t case_seed) {
  std::vector<std::vector<cf32>> set;
  set.push_back(stress::all_zero(n));
  set.push_back(stress::dc_only(n));
  set.push_back(stress::dc_only(n, 1e-20F));  // denormal-adjacent DC
  set.push_back(stress::random_signal(n, case_seed));
  set.push_back(stress::saturating(n, case_seed + 1));
  auto poisoned = stress::random_signal(n, case_seed + 2);
  stress::inject_non_finite(poisoned, case_seed + 3);
  set.push_back(std::move(poisoned));
  auto max_cfo = stress::random_signal(n, case_seed + 4);
  channel::apply_cfo(max_cfo, 0.5);  // Nyquist-rate rotation
  set.push_back(std::move(max_cfo));
  auto neg_cfo = stress::random_signal(n, case_seed + 5);
  channel::apply_cfo(neg_cfo, -0.5);
  set.push_back(std::move(neg_cfo));
  return set;
}

TEST(StressSync, PacketDetectorSurvivesAdversarialSpans) {
  const sync::PacketDetector det{sync::DetectorConfig{}};
  const auto cfg = sync::DetectorConfig{};
  const std::size_t min_len = cfg.lag + cfg.window;
  std::uint64_t c = 0;
  for (const std::size_t n : {std::size_t{0}, min_len - 1, min_len,
                              min_len + 1, std::size_t{1000}}) {
    for (const auto& x : adversarial_set(n, kSuiteSeed + 16 * c++)) {
      const auto d = det.detect(x);
      if (d) {
        EXPECT_TRUE(std::isfinite(d->peak_metric));
        EXPECT_TRUE(std::isfinite(d->cfo_norm));
        EXPECT_LT(d->start, x.size());
      }
      const std::span<const cf32> spans[] = {std::span<const cf32>(x),
                                             std::span<const cf32>(x)};
      const auto dm = det.detect_mimo(spans);
      if (dm) {
        EXPECT_TRUE(std::isfinite(dm->peak_metric));
        EXPECT_TRUE(std::isfinite(dm->cfo_norm));
        EXPECT_LT(dm->start, x.size());
      }
    }
  }
}

TEST(StressSync, VanDeBeekSurvivesAdversarialSpans) {
  for (const unsigned n_sym : {1U, 3U}) {
    sync::VdbConfig cfg;
    cfg.n_symbols = n_sym;
    const sync::VanDeBeekEstimator vdb(cfg);
    const std::size_t mn = vdb.min_span();
    std::uint64_t c = 0;
    for (const std::size_t n : {mn, mn + 1, mn + 157}) {
      for (const auto& x :
           adversarial_set(n, kSuiteSeed + 1000 + 16 * c++ + n_sym)) {
        const auto est = vdb.estimate(x);
        EXPECT_TRUE(std::isfinite(est.metric));
        EXPECT_TRUE(std::isfinite(est.cfo_norm));
        EXPECT_LE(est.timing, n - mn);
        EXPECT_EQ(est.trace.size(), n - mn + 1);
        for (const double t : est.trace) EXPECT_FALSE(std::isnan(t));

        const std::span<const cf32> spans[] = {std::span<const cf32>(x),
                                               std::span<const cf32>(x)};
        const auto em = vdb.estimate_mimo(spans);
        EXPECT_TRUE(std::isfinite(em.metric));
        EXPECT_TRUE(std::isfinite(em.cfo_norm));
      }
      // One-below-minimum must throw, never wrap.
      const auto short_x = stress::random_signal(mn - 1, kSuiteSeed + c);
      EXPECT_THROW((void)vdb.estimate(short_x), std::invalid_argument);
    }
  }
}

TEST(StressSync, FineSyncSurvivesAdversarialSpans) {
  const sync::FineSynchronizer fine;
  std::uint64_t c = 0;
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{159}, std::size_t{160}, std::size_t{500}}) {
    for (const auto& x : adversarial_set(n, kSuiteSeed + 2000 + 16 * c++)) {
      const std::span<const cf32> spans[] = {std::span<const cf32>(x)};
      const auto res = fine.locate(spans);
      if (res) {
        EXPECT_TRUE(std::isfinite(res->peak));
        EXPECT_TRUE(std::isfinite(res->cfo_norm));
        EXPECT_LT(res->lltf_start, x.size());
      }
      if (n >= 128) {
        const double cfo = fine.estimate_cfo(spans, 0);
        EXPECT_TRUE(std::isfinite(cfo));
      }
    }
  }
}

TEST(StressSync, FrameSynchronizerSurvivesAdversarialCaptures) {
  for (const auto mode :
       {sync::TimingMode::kLtfCrossCorr, sync::TimingMode::kVanDeBeekMimo}) {
    sync::FrameSyncConfig cfg;
    cfg.mode = mode;
    const sync::FrameSynchronizer fs(cfg);
    std::uint64_t c = 0;
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{100}, std::size_t{700}, std::size_t{4000}}) {
      for (auto& x : adversarial_set(n, kSuiteSeed + 3000 + 16 * c++)) {
        const std::vector<std::vector<cf32>> capture{x, x};
        const auto res = fs.synchronize(capture);
        if (res) {
          EXPECT_TRUE(std::isfinite(res->cfo_norm));
          EXPECT_TRUE(std::isfinite(res->detect_metric));
          EXPECT_LT(res->packet_start, n);
        }
      }
    }
  }
}

}  // namespace
