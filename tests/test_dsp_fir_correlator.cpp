// FIR filters, filter design, and sliding correlators.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/correlator.hpp"
#include "dsp/fir.hpp"
#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet::dsp;

std::vector<cf32> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(-1.0F, 1.0F);
  std::vector<cf32> v(n);
  for (auto& x : v) x = cf32(d(rng), d(rng));
  return v;
}

std::vector<cf32> naive_convolve(std::span<const cf32> x, std::span<const cf32> taps) {
  std::vector<cf32> y(x.size(), cf32{0.0F, 0.0F});
  for (std::size_t n = 0; n < x.size(); ++n) {
    cf64 acc{0.0, 0.0};
    for (std::size_t t = 0; t < taps.size() && t <= n; ++t) {
      acc += cf64(taps[t]) * cf64(x[n - t]);
    }
    y[n] = cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return y;
}

TEST(FirFilter, EmptyTapsThrow) {
  EXPECT_THROW(FirFilter({}), std::invalid_argument);
}

TEST(FirFilter, IdentityTapPassesSignal) {
  FirFilter f({cf32{1.0F, 0.0F}});
  const auto x = random_signal(50, 1);
  const auto y = f.process(x);
  EXPECT_LT(rms_error(x, y), 1e-6);
}

TEST(FirFilter, DelayTapShiftsSignal) {
  FirFilter f({cf32{0.0F, 0.0F}, cf32{0.0F, 0.0F}, cf32{1.0F, 0.0F}});
  const auto x = random_signal(20, 2);
  const auto y = f.process(x);
  for (std::size_t i = 2; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i - 2]), 0.0F, 1e-6F);
  }
  EXPECT_NEAR(std::abs(y[0]), 0.0F, 1e-6F);
  EXPECT_NEAR(std::abs(y[1]), 0.0F, 1e-6F);
}

TEST(FirFilter, MatchesNaiveConvolution) {
  const auto taps = random_signal(7, 3);
  const auto x = random_signal(64, 4);
  FirFilter f(taps);
  const auto y = f.process(x);
  const auto ref = naive_convolve(x, taps);
  EXPECT_LT(rms_error(y, ref), 1e-5);
}

TEST(FirFilter, ChunkedProcessingMatchesWhole) {
  const auto taps = random_signal(5, 5);
  const auto x = random_signal(100, 6);
  FirFilter whole(taps);
  const auto y_whole = whole.process(x);

  FirFilter chunked(taps);
  std::vector<cf32> y_chunks;
  for (std::size_t pos = 0; pos < x.size();) {
    const std::size_t n = std::min<std::size_t>(13, x.size() - pos);
    const auto part = chunked.process(std::span<const cf32>(x).subspan(pos, n));
    y_chunks.insert(y_chunks.end(), part.begin(), part.end());
    pos += n;
  }
  EXPECT_LT(rms_error(y_whole, y_chunks), 1e-6);
}

TEST(FirFilter, ResetClearsState) {
  const auto taps = random_signal(4, 7);
  FirFilter f(taps);
  const auto x = random_signal(10, 8);
  const auto y1 = f.process(x);
  f.reset();
  const auto y2 = f.process(x);
  EXPECT_LT(rms_error(y1, y2), 1e-6);
}

TEST(DesignLowpass, UnitDcGain) {
  const auto taps = design_lowpass(0.2, 31);
  double sum = 0.0;
  for (const auto t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(DesignLowpass, AttenuatesHighFrequency) {
  const auto taps = design_lowpass(0.1, 63);
  std::vector<cf32> ctaps(taps.size());
  for (std::size_t i = 0; i < taps.size(); ++i) ctaps[i] = cf32(taps[i], 0.0F);
  FirFilter f(ctaps);
  // High-frequency tone at 0.4 cycles/sample.
  std::vector<cf32> x(512);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(2.0F * pi_f * 0.4F * static_cast<float>(i));
  }
  const auto y = f.process(x);
  const double out_power =
      mean_power(std::span<const cf32>(y).subspan(taps.size(), y.size() - taps.size()));
  EXPECT_LT(out_power, 1e-3);
}

TEST(DesignLowpass, Validation) {
  EXPECT_THROW(design_lowpass(0.0, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.6, 31), std::invalid_argument);
  EXPECT_THROW(design_lowpass(0.2, 30), std::invalid_argument);
}

TEST(Windows, HannEndpointsAndPeak) {
  const auto w = hann_window(9);
  EXPECT_NEAR(w[0], 0.0F, 1e-6F);
  EXPECT_NEAR(w[8], 0.0F, 1e-6F);
  EXPECT_NEAR(w[4], 1.0F, 1e-6F);
}

TEST(Windows, HammingEndpoints) {
  const auto w = hamming_window(11);
  EXPECT_NEAR(w[0], 0.08F, 1e-5F);
  EXPECT_NEAR(w[10], 0.08F, 1e-5F);
}

TEST(MovingSum, SlidingWindowTracksSum) {
  MovingSum ms(3);
  EXPECT_EQ(ms.push({1.0, 0.0}).real(), 1.0);
  EXPECT_EQ(ms.push({2.0, 0.0}).real(), 3.0);
  EXPECT_EQ(ms.push({3.0, 0.0}).real(), 6.0);
  EXPECT_EQ(ms.push({4.0, 0.0}).real(), 9.0);  // 2+3+4
  ms.reset();
  EXPECT_EQ(ms.value().real(), 0.0);
}

TEST(MovingSum, ZeroWindowThrows) {
  EXPECT_THROW(MovingSum(0), std::invalid_argument);
  EXPECT_THROW(MovingSumReal(0), std::invalid_argument);
}

TEST(LagAutocorrelate, PeriodicSignalGivesUnitMetric) {
  // 16-periodic signal: metric |c|^2/p^2 should be ~1 everywhere.
  std::vector<cf32> x(200);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(2.0F * pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  const auto res = lag_autocorrelate(x, 16, 32);
  ASSERT_FALSE(res.metric.empty());
  for (const auto m : res.metric) EXPECT_NEAR(m, 1.0F, 1e-3F);
}

TEST(LagAutocorrelate, RandomSignalGivesLowMetric) {
  const auto x = random_signal(4000, 11);
  const auto res = lag_autocorrelate(x, 16, 64);
  double mean = 0.0;
  for (const auto m : res.metric) mean += m;
  mean /= static_cast<double>(res.metric.size());
  EXPECT_LT(mean, 0.2);
}

TEST(LagAutocorrelate, TooShortInputGivesEmpty) {
  std::vector<cf32> x(10);
  const auto res = lag_autocorrelate(x, 16, 32);
  EXPECT_TRUE(res.metric.empty());
}

TEST(LagAutocorrelate, OutputSizeIsCorrect) {
  std::vector<cf32> x(100);
  const auto res = lag_autocorrelate(x, 16, 32);
  EXPECT_EQ(res.metric.size(), 100 - 16 - 32 + 1);
  EXPECT_EQ(res.corr.size(), res.metric.size());
  EXPECT_EQ(res.power.size(), res.metric.size());
}

TEST(LagAutocorrelate, CfoShowsUpInAngle) {
  // Periodic signal with CFO: angle(corr) = -2*pi*cfo*lag.
  const double cfo = 0.003;
  std::vector<cf32> x(300);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(2.0F * pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  mix(x, 0.0, two_pi_d * cfo);
  const auto res = lag_autocorrelate(x, 16, 64);
  const double est = -std::arg(res.corr[10]) / (two_pi_d * 16.0);
  EXPECT_NEAR(est, cfo, 1e-5);
}

}  // namespace
