#include "wifi/mcs.hpp"

namespace mimonet::wifi {

McsInfo mcs_info(unsigned mcs_index) {
  if (mcs_index > kMaxMcs) {
    throw std::invalid_argument("mcs_info: MCS index must be 0..31");
  }
  using M = mod::Modulation;
  using R = fec::CodeRate;
  // Base pattern repeats per stream count (MCS 8-15 = MCS 0-7 with nss=2).
  static constexpr struct {
    M m;
    R r;
  } base[8] = {
      {M::kBpsk, R::kR1_2},  {M::kQpsk, R::kR1_2},  {M::kQpsk, R::kR3_4},
      {M::kQam16, R::kR1_2}, {M::kQam16, R::kR3_4}, {M::kQam64, R::kR2_3},
      {M::kQam64, R::kR3_4}, {M::kQam64, R::kR5_6},
  };
  const auto& b = base[mcs_index % 8];
  return McsInfo{
      .index = static_cast<std::uint8_t>(mcs_index),
      .modulation = b.m,
      .rate = b.r,
      .nss = std::size_t{mcs_index / 8 + 1},
  };
}

}  // namespace mimonet::wifi
