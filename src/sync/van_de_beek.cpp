#include "sync/van_de_beek.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mimonet::sync {

VanDeBeekEstimator::VanDeBeekEstimator(VdbConfig cfg) : cfg_(cfg) {
  if (cfg.fft_len == 0 || cfg.cp_len == 0 || cfg.n_symbols == 0) {
    throw std::invalid_argument("VanDeBeekEstimator: zero dimension");
  }
  if (cfg.rho < 0.0 || cfg.rho > 1.0) {
    throw std::invalid_argument("VanDeBeekEstimator: rho must be in [0, 1]");
  }
}

std::size_t VanDeBeekEstimator::min_span() const noexcept {
  // Last accumulated symbol needs cp_len correlation lags of fft_len reach.
  return (cfg_.n_symbols - 1) * (cfg_.fft_len + cfg_.cp_len) + cfg_.cp_len +
         cfg_.fft_len;
}

VdbEstimate VanDeBeekEstimator::estimate(std::span<const cf32> rx) const {
  const std::span<const cf32> one[] = {rx};
  return estimate_mimo(one);
}

VdbEstimate VanDeBeekEstimator::estimate_mimo(
    std::span<const std::span<const cf32>> rx_antennas) const {
  if (rx_antennas.empty()) {
    throw std::invalid_argument("estimate_mimo: no antennas");
  }
  const std::size_t len = rx_antennas[0].size();
  for (const auto& a : rx_antennas) {
    if (a.size() != len) throw std::invalid_argument("estimate_mimo: ragged spans");
  }
  if (len < min_span()) {
    throw std::invalid_argument("estimate_mimo: span shorter than min_span()");
  }

  const std::size_t n = cfg_.fft_len;
  const std::size_t l = cfg_.cp_len;
  const std::size_t sym = n + l;
  const std::size_t n_pos = len - min_span() + 1;

  VdbEstimate best;
  best.trace.resize(n_pos);
  dsp::cf64 best_gamma{0.0, 0.0};
  double best_metric = -std::numeric_limits<double>::infinity();

  // Direct evaluation. A sliding-sum implementation would be O(1) per
  // position; this O(L * n_symbols * nrx) form stays simple and is fast
  // enough for the preamble-scale spans the receiver hands us.
  for (std::size_t m = 0; m < n_pos; ++m) {
    dsp::cf64 gamma{0.0, 0.0};
    double phi = 0.0;
    for (const auto& rx : rx_antennas) {
      for (std::size_t s = 0; s < cfg_.n_symbols; ++s) {
        const std::size_t base = m + s * sym;
        for (std::size_t k = 0; k < l; ++k) {
          const dsp::cf64 a = dsp::cf64(rx[base + k]);
          const dsp::cf64 b = dsp::cf64(rx[base + k + n]);
          gamma += a * std::conj(b);
          phi += 0.5 * (dsp::mag_sqr(a) + dsp::mag_sqr(b));
        }
      }
    }
    double metric = std::abs(gamma) - cfg_.rho * phi;
    if (!std::isfinite(metric)) {
      // Non-finite samples (railed/poisoned captures) poison gamma and Phi
      // for every window covering them. Record a defined "no evidence"
      // value instead, so the exported trace is NaN-free and the argmax
      // never has to compare against NaN.
      metric = std::numeric_limits<double>::lowest();
      gamma = dsp::cf64{0.0, 0.0};
    }
    best.trace[m] = metric;
    if (metric > best_metric) {
      best_metric = metric;
      best.timing = m;
      best_gamma = gamma;
    }
  }

  best.metric = best_metric;
  // epsilon (in subcarrier spacings) = -angle(gamma)/(2*pi); convert to
  // cycles/sample by dividing by N.
  best.cfo_norm = -std::arg(best_gamma) / (dsp::two_pi_d * static_cast<double>(n));
  return best;
}

}  // namespace mimonet::sync
