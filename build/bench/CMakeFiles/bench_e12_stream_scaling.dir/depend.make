# Empty dependencies file for bench_e12_stream_scaling.
# This may be replaced when dependencies are built.
