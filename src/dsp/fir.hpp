// Streaming FIR filter and windowed-sinc design helpers. Used by the channel
// simulator (tapped-delay-line convolution) and available to block authors.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// Direct-form FIR with complex taps and persistent state across calls, so a
/// long stream can be filtered in arbitrary chunks.
class FirFilter {
 public:
  explicit FirFilter(std::vector<cf32> taps);

  [[nodiscard]] std::size_t num_taps() const noexcept { return taps_.size(); }
  [[nodiscard]] const std::vector<cf32>& taps() const noexcept { return taps_; }

  /// Filter a chunk; output has the same length as the input (streaming
  /// convolution, initial state is zeros). Resets never happen implicitly.
  [[nodiscard]] std::vector<cf32> process(std::span<const cf32> in);

  /// Clear the delay line.
  void reset() noexcept;

 private:
  std::vector<cf32> taps_;
  std::vector<cf32> delay_;   // circular delay line, size == taps
  std::size_t head_ = 0;
};

/// Windowed-sinc low-pass design. `cutoff` is the normalized cutoff in
/// (0, 0.5) cycles/sample; `num_taps` must be odd for a symmetric filter.
[[nodiscard]] std::vector<float> design_lowpass(double cutoff, std::size_t num_taps);

/// Hann window of length n.
[[nodiscard]] std::vector<float> hann_window(std::size_t n);

/// Hamming window of length n.
[[nodiscard]] std::vector<float> hamming_window(std::size_t n);

}  // namespace mimonet::dsp
