// E7 — Goodput per MCS (Table reconstruction): the spatial-multiplexing
// headline — two streams double throughput without extra bandwidth.
//
// Expected shape: at high SNR, goodput approaches the PHY rate minus
// preamble overhead, and MCS 8-15 deliver ~2x their MCS 0-7 counterparts;
// at moderate SNR the fastest MCS collapses first (PER dominates).
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

struct Cell {
  double goodput = 0.0;
  double per = 0.0;
};

Cell run_cell(unsigned mcs, double snr, std::size_t packets, std::uint64_t seed) {
  auto cfg = core::make_link_config(mcs, snr);
  cfg.psdu_payload_bytes = 1500;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(packets);
  return {res.throughput.goodput_mbps(), res.per.per()};
}

}  // namespace

int main() {
  bench::heading("E7", "Goodput per MCS, 1500-byte payloads (Table reconstruction)");
  constexpr std::size_t kPackets = 20;
  bench::note("%zu packets per cell, AWGN; goodput = delivered bits / air time",
              kPackets);

  const bench::Table table({"MCS", "PHY Mb/s", "nss", "30dB Mb/s", "18dB Mb/s",
                            "10dB Mb/s"},
                           11);
  for (unsigned mcs = 0; mcs <= 15; ++mcs) {
    const auto info = wifi::mcs_info(mcs);
    const auto high = run_cell(mcs, 30.0, kPackets, 70 + mcs);
    const auto mid = run_cell(mcs, 18.0, kPackets, 170 + mcs);
    const auto low = run_cell(mcs, 10.0, kPackets, 270 + mcs);
    table.row({std::to_string(mcs), bench::fix(info.data_rate_mbps(), 1),
               std::to_string(info.nss), bench::fix(high.goodput, 1),
               bench::fix(mid.goodput, 1), bench::fix(low.goodput, 1)});
  }
  bench::note("expected: MCS k+8 goodput ~= 2x MCS k at 30 dB (spatial multiplexing");
  bench::note("doubles rate in the same 20 MHz); high MCS collapse first as SNR drops");
  return 0;
}
