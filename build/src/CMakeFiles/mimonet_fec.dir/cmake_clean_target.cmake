file(REMOVE_RECURSE
  "libmimonet_fec.a"
)
