// Internal sharing surface between LinkSimulator and MuLinkSimulator: the
// per-packet seeding discipline and the single-user packet simulation.
// MuLinkSimulator's N_users = 1 path calls simulate_packet verbatim — the
// same function the single-user engine runs — which is what makes the
// "MU collapses to SU" pin a structural identity rather than a tolerance.
// Not part of the public API; include from core/ .cpp files only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/link_simulator.hpp"

namespace mimonet::core::detail {

inline constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Every random draw for packet p flows from this value: unique per
/// (link seed, packet index) and independent of simulation history, which
/// is what makes the engines thread-count invariant.
[[nodiscard]] std::uint64_t packet_seed(std::uint64_t link_seed, std::size_t p);

/// Fold the link-level seed into the channel's, so varying LinkConfig::seed
/// varies fading/noise draws too (channel.seed can still be pinned
/// explicitly relative to it for common-random-number comparisons).
[[nodiscard]] channel::ChannelConfig seeded_channel(const LinkConfig& cfg);

/// One packet's contribution: the mergeable partial result plus the
/// observer payload.
struct PacketWork {
  LinkResult partial;
  PacketOutcome outcome;
};

/// @param want_rx copy the decoded RxPacket into the outcome (needed only
///        when an observer consumes it — skipping the copy keeps the
///        no-observer hot path free of per-packet RxPacket duplication).
[[nodiscard]] PacketWork simulate_packet(const LinkConfig& cfg,
                                         const Transmitter& tx,
                                         channel::MimoChannel& chan,
                                         const Receiver& rx, std::size_t p,
                                         TxWorkspace& tws, RxWorkspace& rws,
                                         bool want_rx);

/// Fold one receive attempt into a LinkResult: the PER/BER/throughput/
/// estimator accounting both engines share. `rws.packet` must hold the
/// attempt's outcome (it always does after Receiver::receive). The MU
/// downlink runs this per user against that user's truth.
void account_packet(LinkResult& res, const RxWorkspace& rws, bool detected,
                    std::span<const std::uint8_t> sent_psdu,
                    std::size_t payload_bytes, double airtime,
                    const channel::ChannelTruth& truth);

}  // namespace mimonet::core::detail
