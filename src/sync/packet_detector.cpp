#include "sync/packet_detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/correlator.hpp"

namespace mimonet::sync {

namespace {

// Full-rate positions processed per chunk in the candidate-region sweep,
// and decimated positions per chunk in the streaming coarse pass. Chunking
// bounds the per-call scratch to O(chunk) regardless of span length.
constexpr std::size_t kFullChunk = 1024;
constexpr std::size_t kCoarseChunk = 512;

/// Antenna-combined sliding statistic at one position: coherent correlation
/// sum and the correctly normalized metric
/// |sum_a c_a|^2 / ((sum_a P_lead,a) * (sum_a P_lag,a)).
/// The denominator must sum the lead and lag window powers separately —
/// summing the per-antenna geometric means sqrt(P_lead*P_lag) and squaring
/// (the old combine) gives a smaller denominator whenever antennas see
/// different lead/lag ratios (AM-GM), inflating the metric past what
/// Cauchy-Schwarz allows and firing on noise under asymmetric gains.
struct Combined {
  dsp::cf64 corr{0.0, 0.0};
  float metric = 0.0F;
};

Combined combine(const std::vector<dsp::AutocorrResult>& per_ant,
                 std::size_t i) {
  Combined c;
  double pow_lead = 0.0;
  double pow_lag = 0.0;
  for (const auto& ant : per_ant) {
    c.corr += dsp::cf64(ant.corr[i]);
    pow_lead += static_cast<double>(ant.pow_lead[i]);
    pow_lag += static_cast<double>(ant.pow_lag[i]);
  }
  const double pp = pow_lead * pow_lag;
  c.metric = (pp > 0.0) ? static_cast<float>(dsp::mag_sqr(c.corr) / pp) : 0.0F;
  return c;
}

/// Threshold-run tracker shared by every scan strategy, so the combine
/// arithmetic and the run bookkeeping exist exactly once. Deferred-report
/// form: a qualifying plateau is reported when it ends — at the first
/// below-threshold position, or at end of data via flush(), which is what
/// makes a plateau reaching min_plateau on the very last position still
/// report. Positions must be pushed consecutively.
class PlateauScanner {
 public:
  PlateauScanner(float threshold, std::size_t min_plateau, std::size_t lag)
      : threshold_(threshold), min_plateau_(min_plateau),
        lag_(static_cast<double>(lag)) {}

  [[nodiscard]] bool in_run() const noexcept { return run_ > 0; }

  std::optional<Detection> push(std::size_t pos, const Combined& c) {
    if (c.metric >= threshold_) {
      if (run_ == 0) run_start_ = pos;
      ++run_;
      if (c.metric > peak_) {
        peak_ = c.metric;
        peak_corr_ = c.corr;
      }
      return std::nullopt;
    }
    return end_run();
  }

  /// End of data: report the plateau still in progress, if it qualifies.
  std::optional<Detection> flush() { return end_run(); }

 private:
  std::optional<Detection> end_run() {
    std::optional<Detection> det;
    if (run_ >= min_plateau_) {
      Detection d;
      d.start = run_start_;
      d.peak_metric = peak_;
      // angle(corr) = -2*pi*cfo*lag  =>  cfo = -angle/(2*pi*lag).
      d.cfo_norm = -std::arg(peak_corr_) / (dsp::two_pi_d * lag_);
      det = d;
    }
    run_ = 0;
    peak_ = 0.0F;
    peak_corr_ = dsp::cf64{0.0, 0.0};
    return det;
  }

  float threshold_;
  std::size_t min_plateau_;
  double lag_;
  std::size_t run_ = 0;
  std::size_t run_start_ = 0;
  float peak_ = 0.0F;
  dsp::cf64 peak_corr_{0.0, 0.0};
};

void check_spans(std::span<const std::span<const cf32>> rx) {
  if (rx.empty()) throw std::invalid_argument("detect_mimo: no antennas");
  const std::size_t len = rx[0].size();
  for (const auto& a : rx) {
    if (a.size() != len) throw std::invalid_argument("detect_mimo: ragged spans");
  }
}

}  // namespace

PacketDetector::PacketDetector(DetectorConfig cfg, ScanMode scan)
    : cfg_(cfg), scan_(scan) {
  if (cfg.lag == 0 || cfg.window == 0 || cfg.min_plateau == 0) {
    throw std::invalid_argument("PacketDetector: zero dimension");
  }
  if (cfg.threshold <= 0.0F || cfg.threshold >= 1.0F) {
    throw std::invalid_argument("PacketDetector: threshold must be in (0, 1)");
  }
  if (scan.decimation == 0 || scan.coarse_min_run == 0) {
    throw std::invalid_argument("PacketDetector: zero scan dimension");
  }
  if (cfg.lag % scan.decimation != 0) {
    throw std::invalid_argument(
        "PacketDetector: decimation must divide the correlation lag");
  }
  if (scan.coarse_threshold_scale <= 0.0F || scan.coarse_threshold_scale > 1.0F) {
    throw std::invalid_argument(
        "PacketDetector: coarse_threshold_scale must be in (0, 1]");
  }
}

std::size_t PacketDetector::coarse_window() const noexcept {
  const std::size_t d = scan_.decimation;
  const std::size_t rounded = ((cfg_.window + d - 1) / d) * d;
  return std::max(rounded, 12 * d);
}

std::optional<Detection> PacketDetector::detect(std::span<const cf32> rx) const {
  const std::span<const cf32> one[] = {rx};
  return detect_mimo(one);
}

std::optional<Detection> PacketDetector::detect_mimo(
    std::span<const std::span<const cf32>> rx_antennas) const {
  DetectScratch scratch;
  return detect_mimo(rx_antennas, scratch);
}

std::optional<Detection> PacketDetector::detect_mimo(
    std::span<const std::span<const cf32>> rx_antennas,
    DetectScratch& scratch) const {
  check_spans(rx_antennas);
  const std::size_t len = rx_antennas[0].size();
  if (len < cfg_.lag + cfg_.window) return std::nullopt;
  if (scan_.decimation > 1 && len >= cfg_.lag + coarse_window()) {
    return detect_two_pass(rx_antennas, scratch);
  }
  // Exhaustive mode, or a span too short for even one coarse position —
  // fall through to the reference scan so short-tail behavior matches.
  return detect_mimo(rx_antennas, scratch.full);
}

std::optional<Detection> PacketDetector::detect_mimo(
    std::span<const std::span<const cf32>> rx_antennas,
    std::vector<dsp::AutocorrResult>& scratch) const {
  check_spans(rx_antennas);
  const std::size_t len = rx_antennas[0].size();
  if (len < cfg_.lag + cfg_.window) return std::nullopt;

  // Per-antenna sliding sums, combined coherently (correlations add in
  // phase because all antennas see the same CFO-induced rotation).
  scratch.resize(rx_antennas.size());
  auto& per_ant = scratch;
  for (std::size_t a = 0; a < rx_antennas.size(); ++a) {
    dsp::lag_autocorrelate_into(rx_antennas[a], cfg_.lag, cfg_.window, per_ant[a]);
  }
  const std::size_t n_pos = per_ant[0].metric.size();

  PlateauScanner scanner(cfg_.threshold, cfg_.min_plateau, cfg_.lag);
  for (std::size_t i = 0; i < n_pos; ++i) {
    if (auto det = scanner.push(i, combine(per_ant, i))) return det;
  }
  return scanner.flush();
}

std::size_t PacketDetector::scan_coarse(
    std::span<const std::span<const cf32>> rx_antennas, DetectScratch& scratch,
    std::vector<CoarseRegion>& regions) const {
  check_spans(rx_antennas);
  const std::size_t len = rx_antennas[0].size();
  const std::size_t d = scan_.decimation;
  const std::size_t cw = coarse_window();
  if (len < cfg_.lag + cw) return 0;

  scratch.coarse.resize(rx_antennas.size());
  for (std::size_t a = 0; a < rx_antennas.size(); ++a) {
    dsp::lag_autocorrelate_strided_into(rx_antennas[a], cfg_.lag, cw, d,
                                        scratch.coarse[a]);
  }
  const std::size_t n_pos = scratch.coarse[0].metric.size();
  const float trigger = cfg_.threshold * scan_.coarse_threshold_scale;

  std::size_t run = 0;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < n_pos; ++i) {
    const Combined c = combine(scratch.coarse, i);
    if (c.metric >= trigger) {
      if (run == 0) run_start = i;
      ++run;
    } else {
      if (run >= scan_.coarse_min_run) {
        regions.push_back({run_start * d, i * d});
      }
      run = 0;
    }
  }
  if (run >= scan_.coarse_min_run) regions.push_back({run_start * d, n_pos * d});
  return n_pos;
}

std::optional<Detection> PacketDetector::detect_two_pass(
    std::span<const std::span<const cf32>> rx_antennas,
    DetectScratch& scratch) const {
  const std::size_t len = rx_antennas[0].size();
  const std::size_t n_ant = rx_antennas.size();
  const std::size_t d = scan_.decimation;
  const std::size_t cw = coarse_window();
  const float trigger = cfg_.threshold * scan_.coarse_threshold_scale;

  scratch.full.resize(n_ant);
  scratch.coarse.resize(n_ant);

  // Full-rate margins around a coarse hit at sample positions [cs, ce):
  // the plateau may start up to one coarse window + lag before the first
  // coarse trigger, and the full-rate run needs room to accumulate
  // min_plateau positions past the last one. Runs may only START below
  // hard_end but are followed to their natural end beyond it.
  const std::size_t back_margin = cw + cfg_.lag;
  const std::size_t fwd_margin = cfg_.window + cfg_.lag + cfg_.min_plateau;
  const std::size_t n_full_pos = len - cfg_.lag - cfg_.window + 1;

  // Full-rate sweep of the candidate region starting at `rb`; new runs are
  // accepted while they start before `hard_end`.
  const auto scan_region = [&](std::size_t rb,
                               std::size_t hard_end) -> std::optional<Detection> {
    PlateauScanner scanner(cfg_.threshold, cfg_.min_plateau, cfg_.lag);
    std::size_t pos = rb;
    while (pos < n_full_pos) {
      const std::size_t n_chunk = std::min(kFullChunk, n_full_pos - pos);
      const std::size_t sub_len = n_chunk - 1 + cfg_.lag + cfg_.window;
      for (std::size_t a = 0; a < n_ant; ++a) {
        dsp::lag_autocorrelate_into(rx_antennas[a].subspan(pos, sub_len),
                                    cfg_.lag, cfg_.window, scratch.full[a]);
      }
      for (std::size_t i = 0; i < n_chunk; ++i) {
        if (auto det = scanner.push(pos + i, combine(scratch.full, i))) {
          if (det->start < hard_end) return det;
          scanner = PlateauScanner(cfg_.threshold, cfg_.min_plateau, cfg_.lag);
        }
      }
      pos += n_chunk;
      // Past the hard end, keep going only to finish a plateau in progress.
      if (pos >= hard_end && !scanner.in_run()) return std::nullopt;
    }
    if (auto det = scanner.flush()) {
      if (det->start < hard_end) return det;
    }
    return std::nullopt;
  };

  // Streaming coarse pass: chunked so scratch stays O(chunk), stopping at
  // the first qualifying coarse run (the region either detects — done — or
  // the pass resumes past it, so total coarse work over a long scan stays
  // one decimated sweep of the span).
  std::size_t cpos = 0;  // next coarse position (sample units, multiple of d)
  std::size_t crun = 0;
  std::size_t cstart = 0;
  const std::size_t last_start = len - cfg_.lag - cw;  // last valid coarse pos
  while (cpos <= last_start) {
    const std::size_t want = std::min(kCoarseChunk, (last_start - cpos) / d + 1);
    const std::size_t sub_len =
        std::min(len - cpos, (want - 1) * d + cfg_.lag + cw);
    for (std::size_t a = 0; a < n_ant; ++a) {
      dsp::lag_autocorrelate_strided_into(rx_antennas[a].subspan(cpos, sub_len),
                                          cfg_.lag, cw, d, scratch.coarse[a]);
    }
    const std::size_t n_c = scratch.coarse[0].metric.size();
    std::size_t next_cpos = cpos + n_c * d;
    bool resumed = false;
    for (std::size_t i = 0; i < n_c; ++i) {
      const std::size_t p = cpos + i * d;
      const Combined c = combine(scratch.coarse, i);
      if (c.metric < trigger) {
        crun = 0;
        continue;
      }
      if (crun == 0) cstart = p;
      ++crun;
      if (crun < scan_.coarse_min_run) continue;

      const std::size_t rb = (cstart > back_margin) ? cstart - back_margin : 0;
      const std::size_t hard_end = p + d + fwd_margin;
      if (auto det = scan_region(rb, hard_end)) return det;

      // Region rejected: resume the coarse pass past it, aligned to the
      // decimation grid. hard_end > p guarantees progress.
      crun = 0;
      next_cpos = ((hard_end + d - 1) / d) * d;
      resumed = true;
      break;
    }
    cpos = next_cpos;
    if (!resumed && n_c == 0) break;  // defensive: no positions fit
  }
  return std::nullopt;
}

}  // namespace mimonet::sync
