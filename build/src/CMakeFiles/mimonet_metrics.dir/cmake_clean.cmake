file(REMOVE_RECURSE
  "CMakeFiles/mimonet_metrics.dir/metrics/counters.cpp.o"
  "CMakeFiles/mimonet_metrics.dir/metrics/counters.cpp.o.d"
  "libmimonet_metrics.a"
  "libmimonet_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
