# Empty dependencies file for bench_e3_per.
# This may be replaced when dependencies are built.
