
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/correlator.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/correlator.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/correlator.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/fir.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/fir.cpp.o.d"
  "/root/repo/src/dsp/rng.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/rng.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/rng.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/spectrum.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/spectrum.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/stats.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/stats.cpp.o.d"
  "/root/repo/src/dsp/vector_ops.cpp" "src/CMakeFiles/mimonet_dsp.dir/dsp/vector_ops.cpp.o" "gcc" "src/CMakeFiles/mimonet_dsp.dir/dsp/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
