#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mimonet::dsp {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_sq_ += x * x;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::rms() const noexcept {
  if (n_ == 0) return 0.0;
  return std::sqrt(sum_sq_ / static_cast<double>(n_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  // NaN would make the float->long cast below undefined; +/-inf is defined
  // to land in the edge bins like any other out-of-range sample.
  if (std::isnan(x)) return;
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  long idx = 0;
  if (t >= static_cast<double>(counts_.size())) {
    idx = static_cast<long>(counts_.size()) - 1;
  } else if (t > 0.0) {
    idx = static_cast<long>(std::floor(t));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  }
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge: bin layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

double Histogram::fraction(std::size_t i) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

}  // namespace mimonet::dsp
