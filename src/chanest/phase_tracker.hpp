// Pilot-driven common-phase-error (CPE) tracking: residual CFO and phase
// noise rotate all subcarriers of a symbol by a common angle; the 4 pilot
// tones measure it each symbol so the equalized data can be de-rotated.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "chanest/ls_estimator.hpp"
#include "dsp/types.hpp"

namespace mimonet::chanest {

/// Per-symbol CPE estimator and a first-order loop that additionally tracks
/// the CPE slope (residual CFO) across symbols.
class PilotPhaseTracker {
 public:
  /// @param est channel estimate whose pilot-bin entries predict the
  ///        expected pilot observations.
  explicit PilotPhaseTracker(const MimoChannelEstimate& est);

  /// Estimate the common phase error of one HT data symbol.
  /// @param rx_pilots  [rx][pilot 0..3] observed pilot tones (FFT output)
  /// @param data_symbol_index 0-based HT data symbol number (drives the
  ///        pilot polarity/rotation exactly as the transmitter's
  ///        ofdm::ht_data_pilots does).
  [[nodiscard]] double estimate_cpe(
      const std::vector<std::array<cf32, 4>>& rx_pilots,
      std::size_t data_symbol_index) const;

  /// Feed one symbol's CPE into the tracking loop and return the smoothed
  /// phase to remove. Tracks slope so long packets do not unwrap badly.
  [[nodiscard]] double track(double raw_cpe);

  /// Residual-CFO estimate (cycles/sample) implied by the tracked slope.
  [[nodiscard]] double residual_cfo_norm() const noexcept;

  void reset() noexcept;

 private:
  const MimoChannelEstimate& est_;
  std::array<std::size_t, 4> pilot_bins_{};
  // Loop state.
  bool primed_ = false;
  double prev_phase_ = 0.0;
  double slope_ = 0.0;       // radians/symbol
  std::size_t count_ = 0;
};

}  // namespace mimonet::chanest
