#!/usr/bin/env bash
# Full local verification matrix: plain, ASan+UBSan, and TSan builds, each
# running the complete ctest suite (unit tests, stress harness, integration).
# This is the correctness gate every performance PR runs against:
#
#   scripts/check.sh            # all three configurations
#   scripts/check.sh plain      # just the plain build
#   scripts/check.sh asan tsan  # any subset, in order
#
# Build trees are kept per-configuration (build/, build-asan/, build-tsan/)
# so incremental re-runs are cheap.
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(plain asan tsan)
fi

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@" > "$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"; return 1; }
  echo "==== [$name] build ===="
  cmake --build "$dir" -j > "$dir.build.log" 2>&1 || {
    tail -50 "$dir.build.log"; return 1; }
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

for cfg in "${configs[@]}"; do
  case "$cfg" in
    plain)
      run_config plain build ;;
    asan)
      # halt_on_error keeps UBSan findings fatal even where
      # -fno-sanitize-recover is not honored by the toolchain.
      UBSAN_OPTIONS="print_stacktrace=1" \
      run_config asan+ubsan build-asan -DMIMONET_ASAN=ON -DMIMONET_UBSAN=ON ;;
    tsan)
      run_config tsan build-tsan -DMIMONET_TSAN=ON ;;
    *)
      echo "unknown config: $cfg (want plain|asan|tsan)" >&2; exit 2 ;;
  esac
done

echo "==== all requested configurations clean ===="
