// Bit-identity pins for the batched symbol-plane kernels.
//
// Every SIMD kernel the batched decode dispatches to (AVX2 soft demap, AVX2
// gather deinterleave) must be bit-identical to its scalar fallback — the
// force_scalar test hooks pin both sides of the dispatch on the same inputs,
// including the non-finite erasure cases. The stage-restructured primitives
// (batched FFT, streaming depuncturer, streaming Viterbi) must likewise be
// bit-identical to their one-shot forms across arbitrary chunkings.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "fec/convolutional.hpp"
#include "fec/viterbi.hpp"
#include "mod/constellation.hpp"
#include "ofdm/symbol.hpp"
#include "wifi/interleaver.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

constexpr float kQnan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/// Restore the dispatch no matter how the test exits.
struct ForceScalarDemap {
  ForceScalarDemap() { mod::detail::force_scalar_demap(true); }
  ~ForceScalarDemap() { mod::detail::force_scalar_demap(false); }
};
struct ForceScalarDeinterleave {
  ForceScalarDeinterleave() { wifi::detail::force_scalar_deinterleave(true); }
  ~ForceScalarDeinterleave() { wifi::detail::force_scalar_deinterleave(false); }
};

std::vector<cf32> random_symbols(std::size_t n, std::uint64_t seed) {
  dsp::ComplexGaussian g(seed, 1.0);
  std::vector<cf32> v(n);
  for (auto& x : v) x = g.sample();
  return v;
}

// ---------------------------------------------------------------------------
// Soft demap: AVX2 vs scalar.

void expect_demap_identical(mod::Modulation m, std::span<const cf32> symbols,
                            std::span<const float> noise_vars) {
  const auto& c = mod::constellation_for(m);
  const unsigned bps = c.bits_per_symbol();
  std::vector<float> simd_out(symbols.size() * bps, -1.0F);
  std::vector<float> scalar_out(symbols.size() * bps, -2.0F);

  c.demap_soft_run(symbols, noise_vars, simd_out);
  {
    const ForceScalarDemap guard;
    ASSERT_FALSE(mod::detail::demap_simd_active());
    c.demap_soft_run(symbols, noise_vars, scalar_out);
  }
  for (std::size_t i = 0; i < simd_out.size(); ++i) {
    // Bit-exact, including signed zeros from the erasure convention.
    EXPECT_EQ(simd_out[i], scalar_out[i]) << "llr " << i;
    EXPECT_EQ(std::signbit(simd_out[i]), std::signbit(scalar_out[i])) << i;
  }

  // Both must equal the original per-symbol demap_soft.
  std::vector<float> one(bps);
  for (std::size_t s = 0; s < symbols.size(); ++s) {
    c.demap_soft(symbols[s], noise_vars[s], one);
    for (unsigned b = 0; b < bps; ++b) {
      EXPECT_EQ(simd_out[s * bps + b], one[b]) << "symbol " << s << " bit " << b;
    }
  }
}

TEST(BatchedKernels, DemapSimdMatchesScalarAllModulations) {
  for (const auto m : {mod::Modulation::kBpsk, mod::Modulation::kQpsk,
                       mod::Modulation::kQam16, mod::Modulation::kQam64}) {
    SCOPED_TRACE(static_cast<int>(m));
    // 83 symbols: several full 8-lane AVX2 iterations plus a scalar tail.
    const auto symbols = random_symbols(83, 42 + static_cast<unsigned>(m));
    std::vector<float> nv(symbols.size());
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<float> uni(0.0F, 1.0F);
    for (auto& v : nv) v = 1e-3F + uni(rng) * 0.5F;
    expect_demap_identical(m, symbols, nv);
  }
}

TEST(BatchedKernels, DemapSimdMatchesScalarNonFiniteInputs) {
  // Erasures: NaN/Inf symbols must yield 0.0F LLRs identically on both
  // paths, and NaN/zero/huge noise variances must follow the same scalar
  // max/propagation semantics lane for lane.
  for (const auto m : {mod::Modulation::kQpsk, mod::Modulation::kQam64}) {
    SCOPED_TRACE(static_cast<int>(m));
    auto symbols = random_symbols(32, 99);
    std::vector<float> nv(symbols.size(), 0.05F);
    symbols[0] = cf32{kQnan, 0.3F};
    symbols[3] = cf32{kInf, -0.7F};
    symbols[8] = cf32{-0.2F, kQnan};
    symbols[9] = cf32{-kInf, kInf};
    symbols[17] = cf32{kQnan, kQnan};
    nv[1] = 0.0F;      // clamps to the 1e-12 floor -> huge finite LLRs
    nv[4] = kQnan;     // NaN noise: erasure
    nv[11] = kInf;     // infinite noise: LLRs collapse to zero
    nv[17] = 1e-30F;   // denormal-range noise under the floor
    expect_demap_identical(m, symbols, nv);
  }
}

// ---------------------------------------------------------------------------
// Deinterleaver: AVX2 gather vs scalar permutation.

TEST(BatchedKernels, DeinterleaveSimdMatchesScalar) {
  std::mt19937_64 rng(123);
  std::uniform_real_distribution<float> uni(-1.0F, 1.0F);
  for (const unsigned n_bpscs : {1U, 2U, 4U, 6U}) {
    for (const std::size_t nss : {std::size_t{1}, std::size_t{2}}) {
      for (std::size_t iss = 0; iss < nss; ++iss) {
        SCOPED_TRACE(::testing::Message()
                     << "bpscs " << n_bpscs << " iss " << iss << " nss " << nss);
        const auto& il = wifi::cached_interleaver(n_bpscs, iss, nss);
        // 5 interleaver blocks back to back, as a batched chunk presents them.
        const std::size_t block = 52 * n_bpscs;
        std::vector<float> llrs(5 * block);
        for (auto& v : llrs) v = uni(rng);
        llrs[0] = kQnan;
        llrs[block - 1] = kInf;

        std::vector<float> simd_out(llrs.size(), -1.0F);
        std::vector<float> scalar_out(llrs.size(), -2.0F);
        il.deinterleave_into(llrs, std::span<float>(simd_out));
        {
          const ForceScalarDeinterleave guard;
          ASSERT_FALSE(wifi::detail::deinterleave_simd_active());
          il.deinterleave_into(llrs, std::span<float>(scalar_out));
        }
        // A pure permutation: NaNs compare by bit pattern via memcmp-style
        // float equality on the moved values.
        for (std::size_t i = 0; i < llrs.size(); ++i) {
          if (std::isnan(scalar_out[i])) {
            EXPECT_TRUE(std::isnan(simd_out[i])) << i;
          } else {
            EXPECT_EQ(simd_out[i], scalar_out[i]) << i;
          }
        }
        // And match the legacy vector-returning overload.
        const auto legacy = il.deinterleave(llrs);
        for (std::size_t i = 0; i < llrs.size(); ++i) {
          if (!std::isnan(legacy[i])) EXPECT_EQ(legacy[i], simd_out[i]) << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batched FFT vs per-symbol demodulation.

TEST(BatchedKernels, BatchedGridDemodMatchesPerSymbol) {
  const ofdm::SymbolDemodulator demod(ofdm::CarrierPlan::kHt);
  const std::size_t n = 37;
  const auto samples = random_symbols(n * ofdm::kSymLen, 2024);

  std::vector<cf32> batched(n * ofdm::kFftSize);
  demod.demodulate_grids_into(samples, n, batched);

  std::vector<cf32> one;
  for (std::size_t j = 0; j < n; ++j) {
    demod.demodulate_grid_into(
        std::span(samples).subspan(j * ofdm::kSymLen, ofdm::kSymLen), one);
    ASSERT_EQ(one.size(), ofdm::kFftSize);
    for (std::size_t k = 0; k < ofdm::kFftSize; ++k) {
      EXPECT_EQ(batched[j * ofdm::kFftSize + k], one[k]) << "sym " << j
                                                         << " bin " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming depuncturer vs one-shot depuncture across chunkings.

TEST(BatchedKernels, StreamingDepunctureMatchesOneShotAllRates) {
  std::mt19937_64 rng(55);
  std::uniform_real_distribution<float> uni(-2.0F, 2.0F);
  for (const auto rate : {fec::CodeRate::kR1_2, fec::CodeRate::kR2_3,
                          fec::CodeRate::kR3_4, fec::CodeRate::kR5_6}) {
    SCOPED_TRACE(fec::rate_name(rate));
    std::vector<float> llrs(997);  // deliberately not a period multiple
    for (auto& v : llrs) v = uni(rng);

    std::vector<float> oneshot;
    fec::depuncture_into(llrs, rate, oneshot);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{52}, std::size_t{256},
                                    llrs.size()}) {
      SCOPED_TRACE(chunk);
      fec::StreamingDepuncturer dep(rate);
      std::vector<float> streamed;
      std::vector<float> piece;
      for (std::size_t off = 0; off < llrs.size(); off += chunk) {
        const std::size_t take = std::min(chunk, llrs.size() - off);
        dep.consume(std::span(llrs).subspan(off, take), piece);
        streamed.insert(streamed.end(), piece.begin(), piece.end());
      }
      ASSERT_EQ(streamed.size(), oneshot.size());
      for (std::size_t i = 0; i < oneshot.size(); ++i) {
        EXPECT_EQ(streamed[i], oneshot[i]) << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming Viterbi vs one-shot decode across chunkings.

TEST(BatchedKernels, StreamingViterbiMatchesOneShot) {
  const fec::ViterbiDecoder dec;
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<float> uni(0.0F, 1.0F);

  // Encode real data so the traceback is meaningful, then soften with noise.
  std::vector<std::uint8_t> info(402);
  for (auto& b : info) b = static_cast<std::uint8_t>(uni(rng) < 0.5F);
  for (std::size_t i = info.size() - 6; i < info.size(); ++i) info[i] = 0;
  const auto coded = fec::conv_encode(info);
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const float clean = coded[i] != 0 ? -4.0F : 4.0F;  // bit 1 -> negative LLR
    llrs[i] = clean + uni(rng) * 3.0F - 1.5F;
  }

  for (const bool terminated : {true, false}) {
    SCOPED_TRACE(terminated);
    fec::ViterbiDecoder::Scratch scratch;
    std::vector<std::uint8_t> oneshot;
    dec.decode_soft_into(llrs, terminated, oneshot, scratch);
    ASSERT_EQ(oneshot.size(), info.size());
    if (terminated) EXPECT_EQ(oneshot, info);

    // Odd chunk sizes split trellis steps: the carry slot must stitch them.
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{104}, std::size_t{257},
                                    llrs.size()}) {
      SCOPED_TRACE(chunk);
      fec::ViterbiDecoder::StreamState st;
      fec::ViterbiDecoder::Scratch s2;
      std::vector<std::uint8_t> streamed;
      dec.stream_begin(st, s2, llrs.size() / 2);
      for (std::size_t off = 0; off < llrs.size(); off += chunk) {
        const std::size_t take = std::min(chunk, llrs.size() - off);
        dec.stream_consume(st, s2, std::span(llrs).subspan(off, take));
      }
      dec.stream_finish(st, s2, terminated, streamed);
      EXPECT_EQ(streamed, oneshot);
    }
  }
}

TEST(BatchedKernels, StreamingViterbiRejectsOverrunAndOddTotals) {
  const fec::ViterbiDecoder dec;
  fec::ViterbiDecoder::StreamState st;
  fec::ViterbiDecoder::Scratch scratch;
  std::vector<float> llrs(10, 1.0F);
  dec.stream_begin(st, scratch, 4);  // room for 4 steps = 8 LLRs
  EXPECT_THROW(dec.stream_consume(st, scratch, llrs), std::length_error);

  dec.stream_begin(st, scratch, 8);
  dec.stream_consume(st, scratch, std::span(llrs).first(5));  // dangling carry
  std::vector<std::uint8_t> out;
  EXPECT_THROW(dec.stream_finish(st, scratch, false, out), std::invalid_argument);
}

}  // namespace
