#include "sync/fine_sync.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/vector_ops.hpp"
#include "wifi/preamble.hpp"

namespace mimonet::sync {

namespace {
constexpr std::size_t kPeriod = 64;
constexpr std::size_t kGuard = 32;
}  // namespace

FineSynchronizer::FineSynchronizer() {
  // One clean LTF period: take samples [32, 96) of the chain-0 L-LTF.
  const auto lltf = wifi::make_lltf(0, 1);
  reference_.assign(lltf.begin() + kGuard, lltf.begin() + kGuard + kPeriod);
}

std::optional<FineSyncResult> FineSynchronizer::locate(
    std::span<const std::span<const cf32>> rx_antennas) const {
  std::vector<std::vector<cf32>> xcorr_scratch;
  return locate(rx_antennas, xcorr_scratch);
}

std::optional<FineSyncResult> FineSynchronizer::locate(
    std::span<const std::span<const cf32>> rx_antennas,
    std::vector<std::vector<cf32>>& xcorr_scratch) const {
  if (rx_antennas.empty()) throw std::invalid_argument("locate: no antennas");
  const std::size_t len = rx_antennas[0].size();
  for (const auto& a : rx_antennas) {
    if (a.size() != len) throw std::invalid_argument("locate: ragged spans");
  }
  if (len < kGuard + 2 * kPeriod) return std::nullopt;

  // Cross-correlate each antenna against the LTF period; combine the two
  // repetition peaks non-coherently: m(k) = sum_ant |c(k)| + |c(k + 64)|.
  xcorr_scratch.resize(rx_antennas.size());
  auto& xc = xcorr_scratch;
  for (std::size_t a = 0; a < rx_antennas.size(); ++a) {
    dsp::cross_correlate_into(rx_antennas[a], reference_, xc[a]);
  }
  const std::size_t n_xc = xc[0].size();
  if (n_xc < kPeriod + 1) return std::nullopt;

  const double ref_energy = dsp::energy(reference_);

  double best = -1.0;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k + kPeriod < n_xc; ++k) {
    double m = 0.0;
    for (const auto& c : xc) {
      m += std::abs(dsp::cf64(c[k])) + std::abs(dsp::cf64(c[k + kPeriod]));
    }
    if (m > best) {
      best = m;
      best_k = k;
    }
  }

  // Normalize the peak by the reference and local signal energy so a
  // threshold is meaningful regardless of gain.
  double sig_energy = 0.0;
  for (const auto& a : rx_antennas) {
    sig_energy += dsp::energy(a.subspan(best_k, 2 * kPeriod));
  }
  const double denom =
      2.0 * static_cast<double>(rx_antennas.size()) * std::sqrt(ref_energy) *
      std::sqrt(std::max(sig_energy / 2.0, 1e-30));

  FineSyncResult res;
  if (best_k < kGuard) return std::nullopt;  // LTF cannot start before the span
  res.lltf_start = best_k - kGuard;
  res.peak = best / std::max(denom, 1e-30);
  // Poisoned samples inside the normalization window (but outside every
  // correlation peak) can turn the energy sum non-finite: that is not a
  // usable lock, not a crash.
  if (!std::isfinite(res.peak)) return std::nullopt;
  res.cfo_norm = estimate_cfo(rx_antennas, best_k);
  return res;
}

double FineSynchronizer::estimate_cfo(
    std::span<const std::span<const cf32>> rx_antennas,
    std::size_t ltf_payload_start) const {
  dsp::cf64 acc{0.0, 0.0};
  for (const auto& a : rx_antennas) {
    if (a.size() < ltf_payload_start + 2 * kPeriod) {
      throw std::invalid_argument("estimate_cfo: span too short");
    }
    const auto first = a.subspan(ltf_payload_start, kPeriod);
    const auto second = a.subspan(ltf_payload_start + kPeriod, kPeriod);
    acc += dsp::dot_conj(first, second);
  }
  // first * conj(second) rotates by +2*pi*cfo*64, so cfo = +angle/(2*pi*64)
  // with the conjugation order used by dot_conj(a, b) = sum a*conj(b):
  // x(k) conj(x(k+64)) = |s|^2 e^{-j 2 pi cfo 64}.
  // A non-finite accumulator (NaN/Inf samples in the LTF window) carries no
  // phase information; report zero offset rather than NaN.
  if (!std::isfinite(acc.real()) || !std::isfinite(acc.imag())) return 0.0;
  return -std::arg(acc) / (dsp::two_pi_d * static_cast<double>(kPeriod));
}

}  // namespace mimonet::sync
