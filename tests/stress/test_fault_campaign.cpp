// Fault-injection campaign: sweep every FaultPlan fault kind x injection
// position (inter-packet gap, packet preamble, packet data field) x MCS over
// a three-packet capture, scan it with the streaming receiver, and assert
// the resilience contract end to end:
//   - the scan never crashes (the suite also runs under ASan/UBSan/TSan),
//   - every packet the fault did not corrupt decodes cleanly,
//   - resynchronization lands within a bounded sample distance of each
//     surviving packet's true start (clock slips shift the truth),
//   - the reported RxError class matches the injected fault: a destroyed
//     preamble yields sync/SIG-stage errors and no delivery, a corrupted
//     data field yields exactly one kFcsFail frame, and faults the chain
//     absorbs (phase jumps, preamble clock slips) still deliver.
// The fault plan rides through ChannelConfig::faults, so MimoChannel both
// applies it and echoes it into ChannelTruth as ground truth.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "channel/fault_plan.hpp"
#include "channel/mimo_channel.hpp"
#include "core/stream_receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "mac/arq.hpp"
#include "wifi/psdu.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

enum class Where { kGap, kPreamble, kData };

/// What the campaign expects to become of the packet the fault targets
/// (for gap faults, the packet right after the fault).
enum class P1Outcome {
  kDelivered,  ///< the chain absorbed the fault: clean decode
  kFcsFail,    ///< frame consumed, payload corrupt: exactly one kFcsFail
  kLost,       ///< preamble destroyed: sync/SIG-stage errors, no delivery
};

const char* where_name(Where w) {
  switch (w) {
    case Where::kGap: return "gap";
    case Where::kPreamble: return "preamble";
    case Where::kData: return "data";
  }
  return "?";
}

struct Cell {
  unsigned mcs;
  channel::FaultKind kind;
  Where where;
};

struct CellRun {
  std::vector<core::StreamRecord> records;
  std::vector<std::vector<std::uint8_t>> psdus;
  std::vector<std::size_t> starts;  ///< true packet starts, pre-fault
  long shift = 0;                   ///< sample shift a clock slip causes
  std::size_t fault_start = 0;
  channel::FaultPlan truth_faults;
  std::vector<std::vector<cf32>> capture;  ///< kept for the stats subtest
  core::PhyConfig phy;
};

/// Three packets with 600-sample gaps through a clean flat channel, one
/// fault injected via the channel's own FaultPlan hook.
CellRun run_cell(const Cell& cell) {
  CellRun r;
  r.phy.mcs = cell.mcs;
  const core::Transmitter tx(r.phy);
  const std::size_t nss = tx.num_streams();
  constexpr std::size_t kGapLen = 600;
  constexpr std::size_t kPad = 300;

  std::vector<std::size_t> frame_lens;
  std::vector<std::vector<cf32>> concat(nss);
  for (std::size_t p = 0; p < 3; ++p) {
    r.psdus.push_back(wifi::build_psdu(
        wifi::MacHeader{},
        std::vector<std::uint8_t>(90 + 7 * p,
                                  static_cast<std::uint8_t>(0x40 + p))));
    const auto streams = tx.transmit(r.psdus.back());
    r.starts.push_back(concat[0].size() + kPad);
    frame_lens.push_back(streams[0].size());
    for (std::size_t c = 0; c < nss; ++c) {
      concat[c].insert(concat[c].end(), streams[c].begin(), streams[c].end());
      if (p + 1 < 3) concat[c].resize(concat[c].size() + kGapLen, cf32{});
    }
  }

  switch (cell.where) {
    case Where::kGap:
      r.fault_start = r.starts[0] + frame_lens[0] + 150;
      break;
    case Where::kPreamble:
      r.fault_start = r.starts[1] + 30;
      break;
    case Where::kData:
      r.fault_start =
          r.starts[1] + tx.layout(r.psdus[1].size()).data_offset() + 100;
      break;
  }

  channel::FaultPlan plan;
  switch (cell.kind) {
    case channel::FaultKind::kToneBurst:
      plan.tone_burst(r.fault_start, 240, 3.0, 0.07);
      break;
    case channel::FaultKind::kNoiseBurst:
      plan.noise_burst(r.fault_start, 240, 9.0);
      break;
    case channel::FaultKind::kGainStep:
      plan.gain_step(r.fault_start, 240, 0.02);
      break;
    case channel::FaultKind::kSampleDrop:
      plan.sample_drop(r.fault_start, 40);
      r.shift = -40;
      break;
    case channel::FaultKind::kSampleInsert:
      plan.sample_insert(r.fault_start, 40);
      r.shift = 40;
      break;
    case channel::FaultKind::kPhaseJump:
      plan.phase_jump(r.fault_start, 2.5);
      break;
    case channel::FaultKind::kErasure:
      plan.erasure(r.fault_start, 240);
      break;
    case channel::FaultKind::kCsiStale:
      // Not a sample-domain fault — the MU downlink interprets it at
      // sounding time; nothing for this single-link campaign to inject.
      break;
  }

  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = 30.0;
  ccfg.timing_pad = kPad;
  ccfg.tail_pad = 200;
  ccfg.seed = 0xFA017CA3ULL + cell.mcs;
  ccfg.faults = plan;
  channel::MimoChannel chan(ccfg);
  r.capture = chan.transmit(concat);
  r.truth_faults = chan.truth().faults;
  EXPECT_EQ(chan.truth().packet_start, kPad);

  const core::StreamReceiver srx(r.phy, r.capture.size());
  r.records = srx.receive_all(r.capture);
  return r;
}

/// The campaign's ground-truth expectation table, established against the
/// deterministic seeds above. Phase jumps are common-mode across antennas,
/// so pilot phase tracking absorbs them — except mid-data at 16-QAM 3/4
/// (MCS 3), where the half-rotated OFDM symbol overwhelms the code.
P1Outcome expected_outcome(const Cell& cell) {
  if (cell.kind == channel::FaultKind::kPhaseJump) {
    return (cell.where == Where::kData && cell.mcs == 3) ? P1Outcome::kFcsFail
                                                         : P1Outcome::kDelivered;
  }
  if (cell.where == Where::kGap) return P1Outcome::kDelivered;
  if (cell.where == Where::kData) return P1Outcome::kFcsFail;
  // Preamble faults: clock slips only move the packet; everything else
  // destroys the training fields the decode needs.
  if (cell.kind == channel::FaultKind::kSampleDrop ||
      cell.kind == channel::FaultKind::kSampleInsert) {
    return P1Outcome::kDelivered;
  }
  return P1Outcome::kLost;
}

/// Sync/timing tolerance: the detector's plateau edge sits within a few
/// samples of the true L-STF start across all swept configurations.
constexpr long kResyncTolerance = 8;

void check_cell(const Cell& cell) {
  const CellRun r = run_cell(cell);
  SCOPED_TRACE(::testing::Message()
               << "mcs=" << cell.mcs << " kind="
               << channel::fault_kind_name(cell.kind)
               << " where=" << where_name(cell.where));

  // The channel echoed the injected plan as ground truth.
  ASSERT_EQ(r.truth_faults.events.size(), 1U);
  EXPECT_EQ(r.truth_faults.events[0].kind, cell.kind);
  EXPECT_EQ(r.truth_faults.events[0].start, r.fault_start);

  // Expected post-fault position of each packet: a clock slip at
  // fault_start shifts every packet whose training fields lie after it
  // (for the preamble cell that includes the targeted packet itself).
  const auto expected_start = [&](std::size_t p) {
    long e = static_cast<long>(r.starts[p]);
    if (r.shift != 0 && r.fault_start < r.starts[p] + 200) e += r.shift;
    return e;
  };

  // Partition the scan's records: clean deliveries matched to sent PSDUs
  // vs everything else (failed candidates, corrupt frames).
  std::array<const core::StreamRecord*, 3> delivered{};
  std::vector<const core::StreamRecord*> anomalies;
  for (const auto& rec : r.records) {
    int match = -1;
    if (rec.error == metrics::RxError::kOk && rec.has_packet) {
      for (int p = 0; p < 3; ++p) {
        if (rec.packet.psdu == r.psdus[static_cast<std::size_t>(p)]) match = p;
      }
    }
    if (match >= 0) {
      delivered[static_cast<std::size_t>(match)] = &rec;
    } else {
      anomalies.push_back(&rec);
    }
  }

  // The packets the fault never touched must decode, resynced onto their
  // true (shift-adjusted) starts.
  for (const std::size_t p : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_NE(delivered[p], nullptr) << "unfaulted packet " << p << " lost";
    EXPECT_TRUE(delivered[p]->packet.fcs_ok);
    EXPECT_LE(std::abs(static_cast<long>(delivered[p]->offset) -
                       expected_start(p)),
              kResyncTolerance);
  }

  switch (expected_outcome(cell)) {
    case P1Outcome::kDelivered:
      ASSERT_NE(delivered[1], nullptr) << "absorbable fault lost the packet";
      EXPECT_LE(std::abs(static_cast<long>(delivered[1]->offset) -
                         expected_start(1)),
                kResyncTolerance);
      break;
    case P1Outcome::kFcsFail: {
      EXPECT_EQ(delivered[1], nullptr);
      // Exactly one consumed-but-corrupt frame at the faulted packet's
      // position; the scanner skipped its announced extent (otherwise the
      // following packet could not have decoded at its exact start).
      ASSERT_EQ(anomalies.size(), 1U);
      const auto& bad = *anomalies[0];
      EXPECT_EQ(bad.error, metrics::RxError::kFcsFail);
      ASSERT_TRUE(bad.has_packet);
      EXPECT_TRUE(bad.packet.htsig_ok);
      EXPECT_FALSE(bad.packet.fcs_ok);
      EXPECT_LE(std::abs(static_cast<long>(bad.offset) -
                         static_cast<long>(r.starts[1])),
                kResyncTolerance);
      break;
    }
    case P1Outcome::kLost:
      EXPECT_EQ(delivered[1], nullptr);
      EXPECT_FALSE(anomalies.empty()) << "a destroyed preamble must surface "
                                         "sync/SIG-stage errors, not silence";
      break;
  }

  // Whatever else the fault provoked is classified as a pre-FCS failure —
  // never a bogus clean delivery, never an unclassified record.
  for (const auto* a : anomalies) {
    EXPECT_TRUE(a->error == metrics::RxError::kFalseSync ||
                a->error == metrics::RxError::kHtsigFail ||
                a->error == metrics::RxError::kFcsFail)
        << metrics::rx_error_name(a->error);
    // Failed candidates cluster around the faulted region, bounded well
    // before the next packet's start: resync distance stays bounded.
    EXPECT_GT(a->offset, r.starts[0]);
    EXPECT_LT(static_cast<long>(a->offset),
              expected_start(2) - kResyncTolerance);
  }
}

void sweep_kind(channel::FaultKind kind) {
  for (const unsigned mcs : {0U, 3U, 8U}) {
    for (const Where where : {Where::kGap, Where::kPreamble, Where::kData}) {
      check_cell(Cell{mcs, kind, where});
    }
  }
}

TEST(FaultCampaign, ToneBurst) { sweep_kind(channel::FaultKind::kToneBurst); }
TEST(FaultCampaign, NoiseBurst) { sweep_kind(channel::FaultKind::kNoiseBurst); }
TEST(FaultCampaign, GainStep) { sweep_kind(channel::FaultKind::kGainStep); }
TEST(FaultCampaign, SampleDrop) { sweep_kind(channel::FaultKind::kSampleDrop); }
TEST(FaultCampaign, SampleInsert) {
  sweep_kind(channel::FaultKind::kSampleInsert);
}
TEST(FaultCampaign, PhaseJump) { sweep_kind(channel::FaultKind::kPhaseJump); }
TEST(FaultCampaign, Erasure) { sweep_kind(channel::FaultKind::kErasure); }

TEST(FaultCampaign, StreamStatsAccountForEveryAttempt) {
  // One destroyed-preamble cell, re-scanned through the stats interface:
  // the counters must reconcile exactly with the record stream.
  const CellRun r =
      run_cell(Cell{0, channel::FaultKind::kNoiseBurst, Where::kPreamble});
  const core::StreamReceiver srx(r.phy, r.capture.size());
  core::RxWorkspace ws;
  core::StreamStats stats;
  std::vector<std::span<const cf32>> spans(r.capture.begin(), r.capture.end());
  std::size_t events = 0;
  srx.scan(spans, ws, stats, [&](const core::StreamEvent&) { ++events; });

  EXPECT_EQ(stats.frames, 2U);
  EXPECT_EQ(stats.delivered, 2U);
  EXPECT_GT(stats.resync_events, 0U);
  EXPECT_EQ(stats.budget_exhaustions, 0U);
  EXPECT_EQ(stats.samples_scanned, r.capture[0].size());
  EXPECT_EQ(stats.errors.count(metrics::RxError::kOk), 2U);
  EXPECT_EQ(stats.errors.count(metrics::RxError::kBudgetExceeded), 0U);
  EXPECT_EQ(stats.errors.total(), events);
  EXPECT_EQ(stats.errors.errors(), stats.resync_events);
}

// ------------------------------------------------- adaptation under fire

/// Run one selective-repeat link under the shared fade + pulsed-interference
/// schedule with the given adaptation policy and return its stats.
mac::SrStats run_adapt_campaign(mac::AdaptPolicy policy) {
  mac::SrConfig cfg;
  cfg.arq.data_phy.mcs = 7;
  cfg.arq.ack_phy.mcs = 0;
  cfg.arq.forward.snr_db = 30.0;
  cfg.arq.forward.timing_pad = 300;
  cfg.arq.forward.tail_pad = 80;
  cfg.arq.forward.seed = 5150;
  cfg.arq.reverse = cfg.arq.forward;
  cfg.arq.reverse.seed = 5151;
  cfg.arq.seed = 5150;
  cfg.arq.max_retries = 6;
  // A pulsed wideband interferer: strong 25 us bursts every 120 us for the
  // whole run. The geometry matters: a 300-byte MCS 7 frame is ~80 us of
  // air, so with the burst period just above the frame period nearly every
  // frame gets its data field clipped while the ~36 us preamble usually
  // escapes — the L-LTF estimate still reads the healthy 30 dB channel, so
  // the failure classifies as interference, not channel. Nothing decodes
  // inside a burst at any rate (variance 2.0 is ~ -3 dB in-burst), so
  // stepping the MCS down buys no deliveries — it only donates goodput.
  for (double t = 60.0; t < 40000.0; t += 120.0) {
    cfg.arq.interference.push_back({t, t + 25.0, 2.0});
  }
  cfg.adapt.policy = policy;
  mac::SelectiveRepeatLink link(cfg);
  for (int i = 0; i < 40; ++i) {
    link.queue(std::vector<std::uint8_t>(300, static_cast<std::uint8_t>(i)));
  }
  return link.run();
}

TEST(FaultCampaign, EvidencePolicyBeatsFailureCountUnderInterference) {
  const auto baseline = run_adapt_campaign(mac::AdaptPolicy::kFailureCount);
  const auto evidence = run_adapt_campaign(mac::AdaptPolicy::kEvidence);

  // The schedule must actually bite: the baseline sees enough consecutive
  // burst losses to trigger its blind fallback.
  EXPECT_GT(baseline.retransmissions, 0U);
  EXPECT_GT(baseline.mcs_fallbacks, 0U);

  // The evidence controller recognizes the healthy-channel failures,
  // rides the bursts out (holding the rate, stretching the backoff), and
  // converts that into at least the baseline's goodput.
  EXPECT_GT(evidence.interference_holds, 0U);
  EXPECT_LT(evidence.mcs_fallbacks, baseline.mcs_fallbacks);
  EXPECT_GE(evidence.delivered, baseline.delivered);
  EXPECT_GE(evidence.goodput_mbps(), baseline.goodput_mbps());
}

TEST(FaultCampaign, EvidencePolicyStillFallsBackInAGenuineFade) {
  // A long deep fade (not interference): the evidence controller must not
  // mistake it for a burst — pilot/preamble SNR is genuinely short, so it
  // steps the rate down like the baseline would.
  mac::SrConfig cfg;
  cfg.arq.data_phy.mcs = 7;
  cfg.arq.ack_phy.mcs = 0;
  cfg.arq.forward.snr_db = 30.0;
  cfg.arq.forward.timing_pad = 300;
  cfg.arq.forward.tail_pad = 80;
  cfg.arq.forward.seed = 6160;
  cfg.arq.reverse = cfg.arq.forward;
  cfg.arq.reverse.seed = 6161;
  cfg.arq.seed = 6160;
  cfg.arq.max_retries = 8;
  // -14 dB for 4 ms: effective 16 dB, below every 64-QAM rate's need.
  cfg.arq.fades.push_back({0.0, 4000.0, 0.2});
  cfg.adapt.policy = mac::AdaptPolicy::kEvidence;
  mac::SelectiveRepeatLink link(cfg);
  for (int i = 0; i < 25; ++i) {
    link.queue(std::vector<std::uint8_t>(300, static_cast<std::uint8_t>(i)));
  }
  const auto& stats = link.run();
  EXPECT_GT(stats.mcs_fallbacks, 0U);  // classified as channel, stepped down
  EXPECT_GT(stats.delivered, 20U);     // and the lower rate carried the mail
}

}  // namespace
