file(REMOVE_RECURSE
  "CMakeFiles/streaming_flowgraph.dir/streaming_flowgraph.cpp.o"
  "CMakeFiles/streaming_flowgraph.dir/streaming_flowgraph.cpp.o.d"
  "streaming_flowgraph"
  "streaming_flowgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
