// Record-and-replay: capture a corrupted over-the-air burst to an IQ file,
// then decode it offline from disk — the debugging workflow SDR developers
// use when a receiver bug only shows up with real captures.
#include <array>
#include <cstdio>
#include <filesystem>
#include <span>

#include "channel/mimo_channel.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "trace/iq_file.hpp"
#include "wifi/psdu.hpp"

int main() {
  using namespace mimonet;
  const auto dir = std::filesystem::temp_directory_path();

  core::PhyConfig phy;
  phy.mcs = 5;
  const core::Transmitter tx(phy);
  const std::string secret = "captured at 14 dB, decoded offline";
  const auto psdu = wifi::build_psdu(
      wifi::MacHeader{},
      std::span(reinterpret_cast<const std::uint8_t*>(secret.data()),
                secret.size()));

  channel::ChannelConfig air;
  air.snr_db = 17.0;
  air.cfo_norm = 6e-4;
  air.fading = true;
  air.profile = channel::DelayProfile::kShort;
  air.timing_pad = 700;
  air.tail_pad = 300;
  air.seed = 21;
  channel::MimoChannel chan(air);
  const auto capture = chan.transmit(tx.transmit(psdu));

  const auto path = dir / "mimonet_capture_rx0.miq";
  trace::write_iq(path, capture[0]);
  std::printf("recorded %zu samples to %s (%.1f kB)\n", capture[0].size(),
              path.string().c_str(),
              static_cast<double>(std::filesystem::file_size(path)) / 1024.0);

  // ... later, in another process ...
  const auto replay = trace::read_iq(path);
  std::printf("replaying at %.0f Msps\n", replay.sample_rate_hz / 1e6);

  core::Receiver rx(phy, 1);
  core::RxWorkspace ws;
  const std::array<std::span<const dsp::cf32>, 1> spans{replay.samples};
  if (!rx.receive(spans, ws) || !ws.packet.fcs_ok) {
    std::printf("offline decode FAILED\n");
    std::filesystem::remove(path);
    return 1;
  }
  const auto parsed = wifi::parse_psdu(ws.packet.psdu);
  std::printf("offline decode ok: snr %.1f dB, payload \"%.*s\"\n", ws.packet.snr.snr_db,
              static_cast<int>(parsed->payload.size()),
              reinterpret_cast<const char*>(parsed->payload.data()));
  std::filesystem::remove(path);
  return 0;
}
