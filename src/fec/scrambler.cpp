#include "fec/scrambler.hpp"

#include <stdexcept>

#include "dsp/lfsr.hpp"

namespace mimonet::fec {

void scramble_in_place(std::span<std::uint8_t> bits, std::uint32_t seed) {
  if ((seed & 0x7FU) == 0) {
    throw std::invalid_argument("scramble: seed must be a non-zero 7-bit value");
  }
  auto lfsr = dsp::make_dot11_scrambler_lfsr(seed);
  for (auto& b : bits) b = static_cast<std::uint8_t>(b ^ lfsr.next());
}

std::vector<std::uint8_t> scramble(std::span<const std::uint8_t> bits,
                                   std::uint32_t seed) {
  std::vector<std::uint8_t> out(bits.begin(), bits.end());
  scramble_in_place(out, seed);
  return out;
}

void scrambler_sequence_into(std::uint32_t seed, std::span<std::uint8_t> out) {
  if ((seed & 0x7FU) == 0) {
    throw std::invalid_argument("scrambler_sequence: seed must be non-zero");
  }
  auto lfsr = dsp::make_dot11_scrambler_lfsr(seed);
  for (auto& b : out) b = lfsr.next();
}

std::vector<std::uint8_t> scrambler_sequence(std::uint32_t seed, std::size_t length) {
  std::vector<std::uint8_t> out(length);
  scrambler_sequence_into(seed, out);
  return out;
}

}  // namespace mimonet::fec
