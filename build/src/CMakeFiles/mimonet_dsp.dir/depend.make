# Empty dependencies file for mimonet_dsp.
# This may be replaced when dependencies are built.
