#include "eq/alamouti.hpp"

#include <algorithm>
#include <stdexcept>

namespace mimonet::eq {

AlamoutiMapped alamouti_map(cf32 d1, cf32 d2) noexcept {
  return AlamoutiMapped{
      .sts1_first = d1,
      .sts2_first = -std::conj(d2),
      .sts1_second = d2,
      .sts2_second = std::conj(d1),
  };
}

AlamoutiDecoded alamouti_combine(const CMatrix& h, std::span<const cf32> y_first,
                                 std::span<const cf32> y_second, float noise_var) {
  const std::size_t nrx = h.rows();
  if (h.cols() != 2 || y_first.size() != nrx || y_second.size() != nrx) {
    throw std::invalid_argument("alamouti_combine: dimension mismatch");
  }

  // y_first_r  = h_r1 d1 - h_r2 conj(d2) + n
  // y_second_r = h_r1 d2 + h_r2 conj(d1) + n
  // d1_hat = sum_r conj(h_r1) y_first_r  + h_r2 conj(y_second_r)
  // d2_hat = sum_r conj(h_r1) y_second_r - h_r2 conj(y_first_r)
  // both scaled by 1 / sum_r (|h_r1|^2 + |h_r2|^2).
  dsp::cf64 acc1{0.0, 0.0};
  dsp::cf64 acc2{0.0, 0.0};
  double gain = 0.0;
  for (std::size_t r = 0; r < nrx; ++r) {
    const dsp::cf64 h1 = h(r, 0);
    const dsp::cf64 h2 = h(r, 1);
    const dsp::cf64 y1 = dsp::cf64(y_first[r]);
    const dsp::cf64 y2 = dsp::cf64(y_second[r]);
    acc1 += std::conj(h1) * y1 + h2 * std::conj(y2);
    acc2 += std::conj(h1) * y2 - h2 * std::conj(y1);
    gain += dsp::mag_sqr(h1) + dsp::mag_sqr(h2);
  }
  gain = std::max(gain, 1e-30);

  AlamoutiDecoded out;
  const dsp::cf64 d1 = acc1 / gain;
  const dsp::cf64 d2 = acc2 / gain;
  out.d1 = cf32(static_cast<float>(d1.real()), static_cast<float>(d1.imag()));
  out.d2 = cf32(static_cast<float>(d2.real()), static_cast<float>(d2.imag()));
  out.noise_var = std::max(static_cast<float>(noise_var / gain), 1e-12F);
  return out;
}

}  // namespace mimonet::eq
