#include "dsp/correlator.hpp"

#include <cmath>
#include <stdexcept>

namespace mimonet::dsp {

MovingSum::MovingSum(std::size_t window) : buf_(window, cf64{0.0, 0.0}) {
  if (window == 0) throw std::invalid_argument("MovingSum: zero window");
}

cf64 MovingSum::push(cf64 x) noexcept {
  sum_ += x - buf_[head_];
  buf_[head_] = x;
  head_ = (head_ + 1) % buf_.size();
  return sum_;
}

void MovingSum::reset() noexcept {
  for (auto& v : buf_) v = cf64{0.0, 0.0};
  sum_ = cf64{0.0, 0.0};
  head_ = 0;
}

MovingSumReal::MovingSumReal(std::size_t window) : buf_(window, 0.0) {
  if (window == 0) throw std::invalid_argument("MovingSumReal: zero window");
}

double MovingSumReal::push(double x) noexcept {
  sum_ += x - buf_[head_];
  buf_[head_] = x;
  head_ = (head_ + 1) % buf_.size();
  return sum_;
}

void MovingSumReal::reset() noexcept {
  for (auto& v : buf_) v = 0.0;
  sum_ = 0.0;
  head_ = 0;
}

AutocorrResult lag_autocorrelate(std::span<const cf32> x, std::size_t lag,
                                 std::size_t window) {
  if (lag == 0 || window == 0) {
    throw std::invalid_argument("lag_autocorrelate: lag and window must be > 0");
  }
  AutocorrResult res;
  if (x.size() < lag + window) return res;

  const std::size_t n_out = x.size() - lag - window + 1;
  res.corr.resize(n_out);
  res.power.resize(n_out);
  res.metric.resize(n_out);

  MovingSum corr_sum(window);
  MovingSumReal pow_lead(window);
  MovingSumReal pow_lag(window);

  // Warm-up: fill the window for position 0.
  for (std::size_t k = 0; k < window; ++k) {
    corr_sum.push(cf64(x[k]) * std::conj(cf64(x[k + lag])));
    pow_lead.push(static_cast<double>(mag_sqr(x[k])));
    pow_lag.push(static_cast<double>(mag_sqr(x[k + lag])));
  }
  for (std::size_t n = 0;; ++n) {
    const cf64 c = corr_sum.value();
    const double pp = pow_lead.value() * pow_lag.value();
    res.corr[n] = cf32(static_cast<float>(c.real()), static_cast<float>(c.imag()));
    res.power[n] = static_cast<float>(std::sqrt(std::max(pp, 0.0)));
    res.metric[n] = (pp > 0.0) ? static_cast<float>(mag_sqr(c) / pp) : 0.0F;
    if (n + 1 >= n_out) break;
    const std::size_t k = n + window;  // next sample entering the window
    corr_sum.push(cf64(x[k]) * std::conj(cf64(x[k + lag])));
    pow_lead.push(static_cast<double>(mag_sqr(x[k])));
    pow_lag.push(static_cast<double>(mag_sqr(x[k + lag])));
  }
  return res;
}

}  // namespace mimonet::dsp
