// Radix-2 decimation-in-time FFT with a cached twiddle-factor plan.
//
// Self-contained (no FFTW dependency): OFDM symbol sizes here are small
// powers of two (64 for 20 MHz 802.11), where an iterative radix-2
// butterfly with precomputed twiddles is fast enough for link simulation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// FFT execution plan for a fixed power-of-two size.
///
/// Construction precomputes bit-reversal permutation and twiddle factors;
/// execute() is then allocation-free and reentrant for distinct output
/// buffers.
class FftPlan {
 public:
  /// @param size transform length; must be a power of two >= 2.
  /// @throws std::invalid_argument otherwise.
  explicit FftPlan(std::size_t size);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Out-of-place forward DFT (engineering sign convention, e^{-j2πkn/N}).
  /// `in` and `out` must both have size() elements; they may alias.
  void forward(std::span<const cf32> in, std::span<cf32> out) const;

  /// Out-of-place inverse DFT, scaled by 1/N so inverse(forward(x)) == x.
  void inverse(std::span<const cf32> in, std::span<cf32> out) const;

  /// In-place variants.
  void forward(std::span<cf32> buf) const { forward(buf, buf); }
  void inverse(std::span<cf32> buf) const { inverse(buf, buf); }

  /// Batched forward DFT over a contiguous slab: `in` and `out` hold
  /// n * size() samples; transform i reads/writes [i*size(), (i+1)*size()).
  /// One argument check for the whole batch, then a tight loop over the
  /// same butterfly kernel — bit-identical to n forward() calls.
  void forward_batch(std::span<const cf32> in, std::span<cf32> out) const;

  /// Batched forward DFT over strided windows: transform i reads the
  /// size() samples at in[i * in_stride + window_offset] (e.g. OFDM
  /// symbols of in_stride = CP + N samples, window_offset = CP) and writes
  /// out[i * size()]. `in` must cover (n-1) * in_stride + window_offset +
  /// size() samples; `out` holds n * size(). Bit-identical to per-symbol
  /// forward() on each window.
  void forward_batch_strided(std::span<const cf32> in, std::size_t n,
                             std::size_t in_stride, std::size_t window_offset,
                             std::span<cf32> out) const;

 private:
  void transform(std::span<const cf32> in, std::span<cf32> out, bool invert) const;
  /// Unchecked single transform (in != out), the batch-loop body.
  void transform_one(const cf32* in, cf32* out, bool invert) const noexcept;

  std::size_t size_;
  std::size_t log2_size_;
  std::vector<std::size_t> bitrev_;
  // Per-stage contiguous twiddle tables: the stage with `half` butterflies
  // per block owns entries [half-1, 2*half-1), i.e. w_k = e^{-j 2π k / len}
  // for k in [0, half). Contiguous per stage so the vector butterfly kernel
  // loads twiddles with a straight unit-stride load; N-1 entries total.
  std::vector<cf32> stage_tw_fwd_;
  std::vector<cf32> stage_tw_inv_;  // conj of the above
};

/// Test hook: force the scalar butterfly kernel even where AVX2 is
/// available. Both kernels are bit-identical by construction; the hook lets
/// tests prove it and benches measure the dispatch win.
void force_scalar_fft(bool on) noexcept;

/// True when transform calls will run the AVX2 butterfly kernel (x86 with
/// AVX2 at runtime and not forced scalar).
[[nodiscard]] bool fft_kernel_is_avx2() noexcept;

/// Convenience one-shot forward FFT (allocates a plan; prefer FftPlan in loops).
[[nodiscard]] std::vector<cf32> fft(std::span<const cf32> in);

/// Convenience one-shot inverse FFT.
[[nodiscard]] std::vector<cf32> ifft(std::span<const cf32> in);

/// Swap the two halves of a spectrum (DC-centered <-> natural order).
void fftshift(std::span<cf32> buf);

}  // namespace mimonet::dsp
