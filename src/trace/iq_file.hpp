// IQ capture files: the file-source/file-sink workflow GNU Radio users rely
// on for record-and-replay debugging. A small self-describing header keeps
// sample rate with the data.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::trace {

using dsp::cf32;

inline constexpr std::uint32_t kIqMagic = 0x3151494DU;  // "MIQ1" little-endian
inline constexpr std::uint32_t kDefaultSampleRate = 20'000'000;

struct IqCapture {
  std::uint32_t sample_rate_hz = kDefaultSampleRate;
  std::vector<cf32> samples;
};

/// Write samples (complex float32, little-endian) with the MIQ1 header.
/// @throws std::runtime_error on I/O failure.
void write_iq(const std::filesystem::path& path, std::span<const cf32> samples,
              std::uint32_t sample_rate_hz = kDefaultSampleRate);

/// Read a MIQ1 file. @throws std::runtime_error on I/O or format errors.
[[nodiscard]] IqCapture read_iq(const std::filesystem::path& path);

}  // namespace mimonet::trace
