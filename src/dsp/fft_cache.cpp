#include "dsp/fft_cache.hpp"

#include <mutex>

namespace mimonet::dsp {

const FftPlan& shared_fft_plan(std::size_t size) {
  static std::mutex mu;
  static std::vector<std::unique_ptr<FftPlan>> plans;
  const std::scoped_lock lock(mu);
  for (const auto& p : plans) {
    if (p->size() == size) return *p;
  }
  plans.push_back(std::make_unique<FftPlan>(size));
  return *plans.back();
}

}  // namespace mimonet::dsp
