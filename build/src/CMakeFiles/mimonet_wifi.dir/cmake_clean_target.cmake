file(REMOVE_RECURSE
  "libmimonet_wifi.a"
)
