// E23 — HARQ chase combining + evidence-driven link adaptation: what soft
// retransmission combining and outcome-taxonomy rate control buy at the
// link level.
//
// Two scenarios, three policies:
//
//   SNR sweep (identity AWGN at the 64-QAM 5/6 cliff) — standalone retries
//   vs chase combining vs chase + the evidence controller. Expected shape:
//   just below the standalone delivery cliff there is a window where no
//   single attempt survives the FCS but summing per-attempt LLRs across
//   retransmissions decodes cleanly — chase holds delivery (and goodput)
//   through SNRs where standalone loses everything. The evidence
//   controller reads the same window as genuine channel evidence (the
//   preamble SNR really is short of what the rate needs) and steps the
//   MCS down instead.
//
//   Interference campaign (30 dB channel + pulsed wideband bursts) — the
//   failure-count baseline cannot tell burst losses from a channel that
//   stopped supporting the rate and steps the MCS down blindly; the
//   evidence controller sees healthy-preamble FCS failures, holds the
//   rate, stretches the retry backoff past the bursts, and keeps the
//   high-MCS goodput.
//
// MIMONET_BENCH_PACKETS overrides the per-point MSDU count (check.sh's
// harq-smoke runs a reduced sweep). Everything is deterministic in the
// configured seeds: reruns emit bit-identical JSON.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mac/arq.hpp"

using namespace mimonet;

namespace {

constexpr unsigned kMcs = 7;            // 64-QAM 5/6, 1 stream
constexpr double kCliffSnrDb = 16.0;    // chase decodes, standalone cannot
constexpr std::size_t kPayload = 300;

enum class Policy { kStandalone, kChase, kChaseEvidence };

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kStandalone: return "standalone";
    case Policy::kChase: return "chase";
    case Policy::kChaseEvidence: return "chase_evidence";
  }
  return "?";
}

struct Row {
  std::size_t delivered = 0;
  std::size_t lost = 0;
  double goodput = 0.0;
  double avg_attempts = 0.0;
  std::size_t harq_ok = 0;
  std::size_t fallbacks = 0;
  std::size_t holds = 0;
  unsigned final_mcs = 0;
};

Row collect(mac::SelectiveRepeatLink& link) {
  const auto& st = link.run();
  Row r;
  r.delivered = st.delivered;
  r.lost = st.lost;
  r.goodput = st.goodput_mbps();
  std::size_t finished = 0, attempts = 0;
  for (std::size_t k = 0; k < st.attempts_hist.size(); ++k) {
    finished += st.attempts_hist[k];
    attempts += k * st.attempts_hist[k];
  }
  r.avg_attempts = finished > 0 ? static_cast<double>(attempts) /
                                      static_cast<double>(finished)
                                : 0.0;
  r.harq_ok = st.harq_combined_ok;
  r.fallbacks = st.mcs_fallbacks;
  r.holds = st.interference_holds;
  r.final_mcs = link.current_mcs();
  return r;
}

void apply_policy(mac::SrConfig& cfg, Policy p) {
  switch (p) {
    case Policy::kStandalone:
      // The pre-adaptor link: hard-decision retries, blind streak counting.
      cfg.harq = false;
      break;
    case Policy::kChase:
      cfg.harq = true;
      break;
    case Policy::kChaseEvidence:
      cfg.harq = true;
      cfg.adapt.policy = mac::AdaptPolicy::kEvidence;
      break;
  }
}

/// One AWGN sweep point. MCS fallback is frozen for the failure-count
/// policies so the sweep isolates what combining itself buys at a fixed
/// rate; the evidence controller keeps its own down_after/up_after knobs —
/// a genuinely short channel is exactly what it should step down on.
Row run_snr_point(double snr_db, Policy p, std::size_t msdus) {
  mac::SrConfig cfg;
  cfg.arq.data_phy.mcs = kMcs;
  cfg.arq.ack_phy.mcs = 0;
  cfg.arq.forward.snr_db = snr_db;
  cfg.arq.forward.timing_pad = 300;
  cfg.arq.forward.tail_pad = 80;
  cfg.arq.forward.seed = 2300;
  cfg.arq.reverse = cfg.arq.forward;
  cfg.arq.reverse.snr_db = 30.0;  // keep the ACK path clean: forward is the DUT
  cfg.arq.reverse.seed = 2301;
  cfg.arq.seed = 2300;
  cfg.arq.max_retries = 6;
  cfg.fallback_after = 0;
  cfg.recover_after = 0;
  apply_policy(cfg, p);
  mac::SelectiveRepeatLink link(cfg);
  for (std::size_t i = 0; i < msdus; ++i) {
    link.queue(std::vector<std::uint8_t>(kPayload, static_cast<std::uint8_t>(i)));
  }
  return collect(link);
}

/// The interference campaign: healthy 30 dB channel, strong 25 us bursts
/// every 120 us clipping nearly every frame's data field while the
/// preamble escapes (same schedule the stress campaign pins down).
Row run_interference(Policy p, std::size_t msdus) {
  mac::SrConfig cfg;
  cfg.arq.data_phy.mcs = kMcs;
  cfg.arq.ack_phy.mcs = 0;
  cfg.arq.forward.snr_db = 30.0;
  cfg.arq.forward.timing_pad = 300;
  cfg.arq.forward.tail_pad = 80;
  cfg.arq.forward.seed = 5150;
  cfg.arq.reverse = cfg.arq.forward;
  cfg.arq.reverse.seed = 5151;
  cfg.arq.seed = 5150;
  cfg.arq.max_retries = 6;
  for (double t = 60.0; t < 40000.0; t += 120.0) {
    cfg.arq.interference.push_back({t, t + 25.0, 2.0});
  }
  apply_policy(cfg, p);
  mac::SelectiveRepeatLink link(cfg);
  for (std::size_t i = 0; i < msdus; ++i) {
    link.queue(std::vector<std::uint8_t>(kPayload, static_cast<std::uint8_t>(i)));
  }
  return collect(link);
}

std::string json_row(const char* extra, double snr_db, Policy p, const Row& r,
                     bool first) {
  char obj[320];
  std::snprintf(
      obj, sizeof obj,
      "%s{%s\"policy\": \"%s\", \"delivered\": %zu, \"lost\": %zu, "
      "\"goodput_mbps\": %.6g, \"avg_attempts\": %.6g, "
      "\"harq_combined_ok\": %zu, \"mcs_fallbacks\": %zu, "
      "\"interference_holds\": %zu, \"final_mcs\": %u}",
      first ? "" : ", ", extra, policy_name(p), r.delivered, r.lost, r.goodput,
      r.avg_attempts, r.harq_ok, r.fallbacks, r.holds, r.final_mcs);
  std::string out = obj;
  if (snr_db >= 0.0) {
    char snr[48];
    std::snprintf(snr, sizeof snr, "\"snr_db\": %g, ", snr_db);
    const auto pos = out.find('{') + 1;
    out.insert(pos, snr);
  }
  return out;
}

}  // namespace

int main() {
  bench::heading("E23", "HARQ chase combining + evidence-driven adaptation");

  std::size_t n_msdus = 20;
  if (const char* env = std::getenv("MIMONET_BENCH_PACKETS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) n_msdus = static_cast<std::size_t>(v);
  }
  const std::size_t n_campaign = n_msdus * 2;
  bench::note("MCS %u, %zu-byte MSDUs, %zu per sweep point, 6 retries,",
              kMcs, kPayload, n_msdus);
  bench::note("cliff pinned at %.0f dB (identity 1x1 AWGN)", kCliffSnrDb);

  const Policy policies[] = {Policy::kStandalone, Policy::kChase,
                             Policy::kChaseEvidence};
  const double snrs[] = {14.0, 15.0, kCliffSnrDb, 17.0, 18.0, 20.0};

  std::printf("\n  SNR sweep (delivered/goodput per policy)\n");
  const bench::Table table({"SNR dB", "policy", "deliv", "lost", "goodput",
                            "avg att", "harq ok", "mcs"},
                           10);
  std::string pts = "[";
  bool first = true;
  Row cliff[3];
  for (const double snr : snrs) {
    for (std::size_t pi = 0; pi < 3; ++pi) {
      const Row r = run_snr_point(snr, policies[pi], n_msdus);
      if (snr == kCliffSnrDb) cliff[pi] = r;
      table.row({bench::fix(snr, 0), policy_name(policies[pi]),
                 std::to_string(r.delivered), std::to_string(r.lost),
                 bench::fix(r.goodput, 2), bench::fix(r.avg_attempts, 2),
                 std::to_string(r.harq_ok), std::to_string(r.final_mcs)});
      pts += json_row("", snr, policies[pi], r, first);
      first = false;
    }
  }

  std::printf("\n  Interference campaign (30 dB + pulsed bursts)\n");
  const bench::Table itable({"policy", "deliv", "lost", "goodput", "fallbk",
                             "holds", "harq ok", "mcs"},
                            10);
  std::string ipts = "[";
  Row campaign[3];
  for (std::size_t pi = 0; pi < 3; ++pi) {
    campaign[pi] = run_interference(policies[pi], n_campaign);
    const Row& r = campaign[pi];
    itable.row({policy_name(policies[pi]), std::to_string(r.delivered),
                std::to_string(r.lost), bench::fix(r.goodput, 2),
                std::to_string(r.fallbacks), std::to_string(r.holds),
                std::to_string(r.harq_ok), std::to_string(r.final_mcs)});
    ipts += json_row("", -1.0, policies[pi], r, pi == 0);
  }

  bench::note("expected: at the cliff chase delivers where standalone cannot;");
  bench::note("under bursts the evidence policy holds MCS %u and out-earns the",
              kMcs);
  bench::note("blind fallback baseline");

  // The two load-bearing shapes, asserted here so a smoke run fails loudly
  // rather than committing a baseline that no longer shows the effect.
  bool shape_ok = true;
  if (cliff[1].delivered <= cliff[0].delivered) {
    std::fprintf(stderr,
                 "E23: chase combining delivered %zu <= standalone %zu at the "
                 "%.0f dB cliff\n",
                 cliff[1].delivered, cliff[0].delivered, kCliffSnrDb);
    shape_ok = false;
  }
  if (campaign[2].goodput < campaign[0].goodput) {
    std::fprintf(stderr,
                 "E23: evidence goodput %.3g < failure-count baseline %.3g "
                 "under interference\n",
                 campaign[2].goodput, campaign[0].goodput);
    shape_ok = false;
  }

  bench::JsonReport report("harq");
  report.field("msdus_per_point", n_msdus)
      .field("campaign_msdus", n_campaign)
      .field("payload_bytes", kPayload)
      .field("mcs", kMcs)
      .field("cliff_snr_db", kCliffSnrDb)
      .field("max_retries", 6)
      .field("shape_ok", shape_ok)
      .raw("points", pts + "]")
      .raw("interference", ipts + "]")
      .emit();
  return shape_ok ? 0 : 1;
}
