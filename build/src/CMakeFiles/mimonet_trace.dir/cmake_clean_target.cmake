file(REMOVE_RECURSE
  "libmimonet_trace.a"
)
