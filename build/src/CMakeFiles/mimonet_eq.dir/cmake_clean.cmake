file(REMOVE_RECURSE
  "CMakeFiles/mimonet_eq.dir/eq/alamouti.cpp.o"
  "CMakeFiles/mimonet_eq.dir/eq/alamouti.cpp.o.d"
  "CMakeFiles/mimonet_eq.dir/eq/equalizer.cpp.o"
  "CMakeFiles/mimonet_eq.dir/eq/equalizer.cpp.o.d"
  "CMakeFiles/mimonet_eq.dir/eq/matrix.cpp.o"
  "CMakeFiles/mimonet_eq.dir/eq/matrix.cpp.o.d"
  "libmimonet_eq.a"
  "libmimonet_eq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_eq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
