// Spatial-multiplexing stream parser (802.11n clause 20.3.11.8.2): the block
// that splits one coded bit stream into N_SS independent streams, each
// carried by its own antenna — the core of spatial multiplexing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mimonet::wifi {

/// Round-robin parser: s = max(1, n_bpscs/2) consecutive bits go to each
/// stream in turn.
class StreamParser {
 public:
  /// @param n_bpscs coded bits per subcarrier per stream
  /// @param nss     number of spatial streams
  StreamParser(unsigned n_bpscs, std::size_t nss);

  [[nodiscard]] std::size_t nss() const noexcept { return nss_; }
  [[nodiscard]] std::size_t group_size() const noexcept { return s_; }

  /// Split the coded stream into nss per-stream vectors. The input length
  /// must be a multiple of nss * s.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> parse(
      std::span<const std::uint8_t> coded) const;

  /// Merge per-stream soft values back into one stream (RX direction).
  /// All streams must have equal length, a multiple of s.
  [[nodiscard]] std::vector<float> merge(
      std::span<const std::vector<float>> streams) const;

  /// Merge per-stream hard bits (used by loopback tests).
  [[nodiscard]] std::vector<std::uint8_t> merge_bits(
      std::span<const std::vector<std::uint8_t>> streams) const;

  /// parse into caller storage: `out` must hold nss vectors (resized, capacity
  /// kept).
  void parse_into(std::span<const std::uint8_t> coded,
                  std::vector<std::vector<std::uint8_t>>& out) const;

  /// merge into caller storage (resized, capacity kept).
  void merge_into(std::span<const std::vector<float>> streams,
                  std::vector<float>& out) const;

  /// merge from per-stream spans into a caller span of exactly
  /// nss * streams[0].size() floats — the chunked batched decode path merges
  /// slab views without materializing per-stream vectors.
  void merge_into(std::span<const std::span<const float>> streams,
                  std::span<float> out) const;

 private:
  std::size_t nss_;
  std::size_t s_;
};

}  // namespace mimonet::wifi
