// Scan-equivalence suite for the two-pass decimated front-end scan
// (ISSUE 7 tentpole): for decimation factors {1, 2, 4, 8}, a StreamReceiver
// running the decimated coarse pass + candidate-region full-rate detection
// must produce packet records identical to the exhaustive full-rate scan —
// same offsets, same error classifications, same MCS, same payload bytes —
// across clean captures, fault-campaign captures (CW interferer bursts in
// the gaps, the E18 shape), truncated tails, sharded farm scans whose
// packets straddle shard seams, and the watchdog path.
//
// The coarse pass is a recall gate: its threshold is scaled down and its
// window keeps >= 12 decimated terms, so a real STF plateau cannot slip
// through, while coarse false alarms only cost bounded full-rate work.
// These fixtures are the empirical proof of that equivalence claim.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "channel/fault_plan.hpp"
#include "channel/mimo_channel.hpp"
#include "core/receive_session.hpp"
#include "core/stream_receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "dsp/rng.hpp"
#include "wifi/psdu.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

constexpr std::size_t kDecimations[] = {1, 2, 4, 8};

struct Scenario {
  core::PhyConfig phy;
  std::vector<std::vector<std::uint8_t>> psdus;
  std::vector<std::vector<cf32>> capture;
};

/// `n_packets` PPDUs with idle gaps through a clean flat channel; when
/// `faulted`, a CW tone burst (which autocorrelates like an STF plateau, the
/// E18 fault-campaign shape) lands in every other gap.
Scenario make_stream(unsigned mcs, std::size_t n_packets, bool faulted,
                     std::size_t gap = 600, double snr_db = 30.0) {
  Scenario s;
  s.phy.mcs = mcs;
  const core::Transmitter tx(s.phy);
  const std::size_t nss = tx.num_streams();
  constexpr std::size_t kPad = 200;

  channel::FaultPlan plan;
  std::vector<std::vector<cf32>> concat(nss);
  for (std::size_t p = 0; p < n_packets; ++p) {
    s.psdus.push_back(wifi::build_psdu(
        wifi::MacHeader{},
        std::vector<std::uint8_t>(160 + 13 * p,
                                  static_cast<std::uint8_t>(0x40 + p))));
    const auto streams = tx.transmit(s.psdus.back());
    if (faulted && p + 1 < n_packets && p % 2 == 0) {
      plan.tone_burst(kPad + concat[0].size() + streams[0].size() + 150, 240,
                      3.0, 0.07);
    }
    for (std::size_t c = 0; c < nss; ++c) {
      concat[c].insert(concat[c].end(), streams[c].begin(), streams[c].end());
      if (p + 1 < n_packets) concat[c].resize(concat[c].size() + gap, cf32{});
    }
  }

  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = snr_db;
  ccfg.timing_pad = kPad;
  ccfg.tail_pad = 150;
  ccfg.seed = 0xE20;
  ccfg.faults = plan;
  channel::MimoChannel chan(ccfg);
  s.capture = chan.transmit(concat);
  return s;
}

core::StreamReceiverConfig scan_cfg(std::size_t decimation) {
  return core::StreamReceiverConfig::make().scan_decimation(decimation).build();
}

/// The equivalence contract: the packet RECORD streams must be identical —
/// candidate position, classification, negotiated MCS, recovered payload.
/// (Float diagnostics like cfo/snr may differ by ulps: a candidate-region
/// sweep warms its sliding sums at the region edge, not the span start.)
void expect_identical_records(const std::vector<core::StreamRecord>& ref,
                              const std::vector<core::StreamRecord>& got,
                              std::size_t decimation) {
  SCOPED_TRACE("decimation " + std::to_string(decimation));
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(got[i].offset, ref[i].offset);
    EXPECT_EQ(got[i].error, ref[i].error);
    ASSERT_EQ(got[i].has_packet, ref[i].has_packet);
    if (!ref[i].has_packet) continue;
    EXPECT_EQ(got[i].packet.fcs_ok, ref[i].packet.fcs_ok);
    EXPECT_EQ(got[i].packet.htsig_ok, ref[i].packet.htsig_ok);
    if (ref[i].packet.htsig_ok) {
      EXPECT_EQ(got[i].packet.htsig.mcs, ref[i].packet.htsig.mcs);
    }
    EXPECT_EQ(got[i].packet.psdu, ref[i].packet.psdu);
    EXPECT_EQ(got[i].packet.sync.packet_start, ref[i].packet.sync.packet_start);
  }
}

class TwoPassCaptures
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(TwoPassCaptures, RecordsMatchExhaustiveScan) {
  const auto [mcs, faulted] = GetParam();
  const auto s = make_stream(mcs, 6, faulted);
  const core::StreamReceiver ref_rx(s.phy, s.capture.size(), scan_cfg(1));
  const auto ref = ref_rx.receive_all(s.capture);
  // Sanity: all packets deliver even through the faulted gaps.
  std::size_t delivered = 0;
  for (const auto& r : ref) delivered += (r.error == metrics::RxError::kOk);
  ASSERT_EQ(delivered, s.psdus.size());

  for (const std::size_t d : kDecimations) {
    const core::StreamReceiver srx(s.phy, s.capture.size(), scan_cfg(d));
    expect_identical_records(ref, srx.receive_all(s.capture), d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TwoPassCaptures,
    ::testing::Values(std::make_tuple(0U, false),   // 1x1 clean
                      std::make_tuple(0U, true),    // 1x1 faulted gaps
                      std::make_tuple(15U, false),  // 2x2 clean
                      std::make_tuple(15U, true))); // 2x2 faulted gaps

TEST(TwoPassScan, TruncatedTailClassifiedIdentically) {
  auto s = make_stream(0, 3, false);
  // Cut the capture inside the last packet's data region.
  for (auto& a : s.capture) a.resize(a.size() - 900);
  const core::StreamReceiver ref_rx(s.phy, s.capture.size(), scan_cfg(1));
  const auto ref = ref_rx.receive_all(s.capture);
  bool saw_truncated = false;
  for (const auto& r : ref) {
    saw_truncated = saw_truncated || r.error == metrics::RxError::kTruncated;
  }
  ASSERT_TRUE(saw_truncated);

  for (const std::size_t d : kDecimations) {
    const core::StreamReceiver srx(s.phy, s.capture.size(), scan_cfg(d));
    expect_identical_records(ref, srx.receive_all(s.capture), d);
  }
}

TEST(TwoPassScan, WatchdogBudgetFiresIdentically) {
  // A long 16-periodic CW tone is one giant STF-like plateau: every
  // candidate fails fine sync, and the budget must trip in both modes.
  core::PhyConfig phy;
  std::vector<std::vector<cf32>> capture(1, std::vector<cf32>(60000));
  dsp::ComplexGaussian noise(51, 0.01);
  noise.fill(capture[0]);
  channel::FaultPlan plan;
  plan.tone_burst(1000, 58000, 2.0, 1.0 / 16.0);
  channel::apply_fault_plan(capture[0], plan, 52);

  for (const std::size_t d : kDecimations) {
    const auto scfg = core::StreamReceiverConfig::make()
                          .scan_decimation(d)
                          .candidate_budget(8)
                          .build();
    const core::StreamReceiver srx(phy, 1, scfg);
    core::RxWorkspace ws;
    core::StreamStats stats;
    std::vector<std::span<const cf32>> spans(capture.begin(), capture.end());
    bool budget_event = false;
    srx.scan(spans, ws, stats, [&](const core::StreamEvent& ev) {
      budget_event =
          budget_event || ev.error == metrics::RxError::kBudgetExceeded;
    });
    EXPECT_TRUE(budget_event) << "decimation " << d;
    EXPECT_EQ(stats.budget_exhaustions, 1U) << "decimation " << d;
    EXPECT_EQ(stats.delivered, 0U) << "decimation " << d;
  }
}

TEST(TwoPassScan, ShardedFarmScanMatchesSingleThreadExhaustive) {
  // Boundary-straddle fixture: more shards than packets guarantees shard
  // seams land inside packets; the seam re-alignment plus the two-pass
  // region logic must still reproduce the exhaustive single-thread records.
  const auto s = make_stream(0, 5, true, 400);
  const core::StreamReceiver ref_rx(s.phy, s.capture.size(), scan_cfg(1));
  const auto ref = ref_rx.receive_all(s.capture);

  for (const std::size_t d : {std::size_t{4}, std::size_t{8}}) {
    const auto cfg = core::ReceiveSessionConfig::make()
                         .scan_decimation(d)
                         .workers(3)
                         .shards(7)
                         .build();
    core::ReceiveSession session(s.phy, s.capture.size(), cfg);
    const auto got = session.receive_all(s.capture);
    expect_identical_records(ref, got, d);
  }
}

TEST(TwoPassScan, BaseStationStreamsMatchExhaustive) {
  const auto siso = make_stream(0, 3, false);
  const auto mimo = make_stream(15, 3, true);
  const core::StreamReceiver ref1(siso.phy, 1, scan_cfg(1));
  const core::StreamReceiver ref2(mimo.phy, 2, scan_cfg(1));
  core::RxWorkspace ws;
  core::StreamStats ref_stats1;
  core::StreamStats ref_stats2;
  std::vector<std::span<const cf32>> sp1(siso.capture.begin(),
                                         siso.capture.end());
  std::vector<std::span<const cf32>> sp2(mimo.capture.begin(),
                                         mimo.capture.end());
  ref1.scan(sp1, ws, ref_stats1, [](const core::StreamEvent&) {});
  {
    core::RxWorkspace ws2;
    ref2.scan(sp2, ws2, ref_stats2, [](const core::StreamEvent&) {});
  }

  // Two-pass per-user streams over the farm's worker pool: the per-stream
  // stats must match what the exhaustive single scans produced.
  for (const auto& [phy, nrx, spans, ref_stats] :
       {std::tuple<const core::PhyConfig&, std::size_t,
                   const std::vector<std::span<const cf32>>&,
                   const core::StreamStats&>{siso.phy, 1, sp1, ref_stats1},
        std::tuple<const core::PhyConfig&, std::size_t,
                   const std::vector<std::span<const cf32>>&,
                   const core::StreamStats&>{mimo.phy, 2, sp2, ref_stats2}}) {
    const auto cfg = core::ReceiveSessionConfig::make()
                         .scan_decimation(8)
                         .workers(2)
                         .build();
    core::ReceiveSession session(phy, nrx, cfg);
    std::vector<core::StreamStats> per_stream(2);
    const core::StreamJob jobs[] = {
        {0, std::span<const std::span<const cf32>>(spans)},
        {1, std::span<const std::span<const cf32>>(spans)},
    };
    session.run_streams(jobs, per_stream);
    for (const auto& st : per_stream) {
      EXPECT_EQ(st.delivered, ref_stats.delivered);
      EXPECT_EQ(st.frames, ref_stats.frames);
      EXPECT_EQ(st.resync_events, ref_stats.resync_events);
    }
  }
}

}  // namespace
