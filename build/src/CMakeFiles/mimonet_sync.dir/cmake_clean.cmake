file(REMOVE_RECURSE
  "CMakeFiles/mimonet_sync.dir/sync/fine_sync.cpp.o"
  "CMakeFiles/mimonet_sync.dir/sync/fine_sync.cpp.o.d"
  "CMakeFiles/mimonet_sync.dir/sync/frame_sync.cpp.o"
  "CMakeFiles/mimonet_sync.dir/sync/frame_sync.cpp.o.d"
  "CMakeFiles/mimonet_sync.dir/sync/packet_detector.cpp.o"
  "CMakeFiles/mimonet_sync.dir/sync/packet_detector.cpp.o.d"
  "CMakeFiles/mimonet_sync.dir/sync/van_de_beek.cpp.o"
  "CMakeFiles/mimonet_sync.dir/sync/van_de_beek.cpp.o.d"
  "libmimonet_sync.a"
  "libmimonet_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
