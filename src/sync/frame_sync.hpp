// Full front-end synchronization: STF detection, coarse CFO, then fine
// timing/CFO by either L-LTF cross-correlation or the paper's MIMO-extended
// Van de Beek estimator running over the L-SIG/HT-SIG symbols.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "sync/fine_sync.hpp"
#include "sync/packet_detector.hpp"
#include "sync/van_de_beek.hpp"

namespace mimonet::sync {

enum class TimingMode {
  kLtfCrossCorr,   ///< matched-filter timing on the L-LTF
  kVanDeBeekMimo,  ///< CP-ML timing over 3 consecutive SIG symbols
};

struct FrameSyncConfig {
  DetectorConfig detector{};
  /// Front-end scan policy for the detector: exhaustive by default,
  /// two-pass decimated when scan.decimation > 1.
  ScanMode scan{};
  TimingMode mode = TimingMode::kLtfCrossCorr;
  /// Van de Beek metric SNR weight (rho = snr/(snr+1)).
  double vdb_rho = 0.5;
  /// Half-width of the Van de Beek timing search window around the expected
  /// L-SIG position (must stay < 40 to avoid the mod-80 ambiguity).
  std::size_t vdb_slack = 32;
};

struct FrameSyncResult {
  /// Index of the first L-STF sample in the original capture.
  std::size_t packet_start = 0;
  /// Total CFO estimate (coarse + fine), cycles/sample.
  double cfo_norm = 0.0;
  double coarse_cfo_norm = 0.0;
  float detect_metric = 0.0F;
};

/// Reusable synchronization scratch, owned by the caller's workspace so a
/// warm synchronize() call performs no heap allocation.
struct SyncScratch {
  DetectScratch detect;                        ///< detector per-antenna sums
  std::vector<std::vector<cf32>> corrected;    ///< CFO-corrected sync region
  std::vector<std::span<const cf32>> spans;    ///< span staging
  std::vector<std::span<const cf32>> capture_spans;  ///< vector-overload staging
  std::vector<std::vector<cf32>> xcorr;        ///< fine-sync cross-correlations

  // Diagnostics for the last synchronize() call that found a detector
  // candidate but rejected it (fine sync failed, implausible timing, or the
  // capture ended inside the candidate's sync region). A streaming scanner
  // uses the position to hop past the bad candidate instead of abandoning
  // the rest of the capture.
  std::optional<std::size_t> rejected_candidate;  ///< detector start estimate
  bool rejected_truncated = false;  ///< rejection was a capture-end truncation
  /// When > 0 the rejection was an L-LTF located so early that the implied
  /// L-STF begins this many samples *before* the window — the scanner
  /// overshot a real packet's start (e.g. a resync hop landed inside its
  /// STF). Rewinding the window by the deficit re-centres it on the packet.
  std::size_t rejected_start_deficit = 0;
};

/// One-shot packet synchronizer over a multi-antenna capture.
class FrameSynchronizer {
 public:
  explicit FrameSynchronizer(FrameSyncConfig cfg);

  /// @param rx per-RX-antenna captures, equal length.
  [[nodiscard]] std::optional<FrameSyncResult> synchronize(
      const std::vector<std::vector<cf32>>& rx) const;

  /// synchronize with caller-provided scratch (resized, capacity kept).
  [[nodiscard]] std::optional<FrameSyncResult> synchronize(
      const std::vector<std::vector<cf32>>& rx, SyncScratch& scratch) const;

  /// Span form, the primitive the streaming receive path scans with: the
  /// spans may window any region of a larger capture; packet_start in the
  /// result is relative to the window.
  [[nodiscard]] std::optional<FrameSyncResult> synchronize(
      std::span<const std::span<const cf32>> rx, SyncScratch& scratch) const;

 private:
  FrameSyncConfig cfg_;
  PacketDetector detector_;
  FineSynchronizer fine_;
};

}  // namespace mimonet::sync
