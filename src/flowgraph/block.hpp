// The dataflow Block abstraction: typed ports, a work() callback, and
// explicit backpressure — a compact equivalent of the GNU Radio block model
// that the paper's transceiver blocks plug into.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

#include "flowgraph/buffer.hpp"

namespace mimonet::flowgraph {

/// What a work() call accomplished.
enum class WorkStatus {
  kProgress,  ///< consumed or produced something; call again
  kIdle,      ///< blocked on input data or output space
  kDone,      ///< this block will never produce again
};

/// Base class for all stream blocks.
///
/// Lifecycle: construct -> declare ports (in the constructor) -> Graph
/// binds buffers -> Scheduler calls work() until kDone.
class Block {
 public:
  explicit Block(std::string name) : name_(std::move(name)) {}
  virtual ~Block() = default;

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return in_types_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return out_types_.size(); }
  [[nodiscard]] std::type_index input_type(std::size_t i) const { return in_types_.at(i); }
  [[nodiscard]] std::type_index output_type(std::size_t i) const {
    return out_types_.at(i);
  }

  /// Process available data. Must not block.
  virtual WorkStatus work() = 0;

  // -- Graph-side binding (not for block authors). --
  void bind_input(std::size_t i, std::shared_ptr<BufferBase> buf);
  void bind_output(std::size_t i, std::shared_ptr<BufferBase> buf);
  [[nodiscard]] bool fully_connected() const noexcept;
  /// Mark all output buffers as done (called when work() returns kDone).
  void finish_outputs() noexcept;

 protected:
  template <typename T>
  void add_input() {
    in_types_.emplace_back(typeid(T));
    inputs_.push_back(nullptr);
  }
  template <typename T>
  void add_output() {
    out_types_.emplace_back(typeid(T));
    outputs_.push_back(nullptr);
  }

  template <typename T>
  [[nodiscard]] RingBuffer<T>& in(std::size_t i) const {
    auto* buf = dynamic_cast<RingBuffer<T>*>(inputs_.at(i).get());
    if (buf == nullptr) throw std::logic_error(name_ + ": input type/binding error");
    return *buf;
  }
  template <typename T>
  [[nodiscard]] RingBuffer<T>& out(std::size_t i) const {
    auto* buf = dynamic_cast<RingBuffer<T>*>(outputs_.at(i).get());
    if (buf == nullptr) throw std::logic_error(name_ + ": output type/binding error");
    return *buf;
  }

  /// True when every input's upstream finished and no items remain.
  [[nodiscard]] bool all_inputs_done() const noexcept {
    for (const auto& b : inputs_) {
      if (b == nullptr || !b->done()) return false;
    }
    return true;
  }

 private:
  std::string name_;
  std::vector<std::type_index> in_types_;
  std::vector<std::type_index> out_types_;
  std::vector<std::shared_ptr<BufferBase>> inputs_;
  std::vector<std::shared_ptr<BufferBase>> outputs_;
};

}  // namespace mimonet::flowgraph
