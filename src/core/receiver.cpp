#include "core/receiver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>

#include "channel/impairments.hpp"
#include "chanest/phase_tracker.hpp"
#include "core/workspace.hpp"
#include "dsp/fft.hpp"
#include "eq/alamouti.hpp"
#include "eq/equalizer.hpp"
#include "fec/ldpc.hpp"
#include "fec/scrambler.hpp"
#include "mod/constellation.hpp"
#include "ofdm/pilots.hpp"
#include "wifi/bits.hpp"
#include "wifi/interleaver.hpp"
#include "wifi/mcs.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"
#include "wifi/stream_parser.hpp"

namespace mimonet::core {

namespace {

/// All occupied HT bins (data + pilots) sorted by logical index, for
/// frequency smoothing.
std::vector<std::size_t> occupied_ht_bins() {
  std::vector<std::size_t> bins;
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    bins.push_back(ofdm::SubcarrierMap::logical_to_bin(k));
  }
  return bins;
}

/// Recover the TX scrambler seed from the 7 descrambler-sync bits at the
/// head of the SERVICE field (which the transmitter sends as zeros, so the
/// received bits equal the scrambler sequence itself).
std::uint32_t recover_scrambler_seed(std::span<const std::uint8_t> first7) {
  std::array<std::uint8_t, 7> seq{};
  for (std::uint32_t seed = 1; seed < 128; ++seed) {
    fec::scrambler_sequence_into(seed, seq);
    bool match = true;
    for (std::size_t i = 0; i < 7; ++i) {
      if (seq[i] != (first7[i] & 1U)) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
  return fec::kDefaultScramblerSeed;  // undecodable; any seed will fail FCS
}

/// Reset a reused SnrEstimate without releasing its per-bin storage.
void reset_snr(chanest::SnrEstimate& s) {
  s.snr_db = 0.0;
  s.signal_power = 0.0;
  s.noise_variance = 0.0;
  s.per_bin_db.clear();
  s.per_bin_valid.clear();
}

/// Reset the reused packet result. Nested buffers keep their capacity; the
/// channel estimate is marked absent via nrx == nss == 0.
void reset_packet(RxPacket& pkt) {
  pkt.lsig_ok = false;
  pkt.htsig_ok = false;
  pkt.fcs_ok = false;
  pkt.error = metrics::RxError::kNoSync;
  pkt.lsig = {};
  pkt.htsig = {};
  pkt.psdu.clear();
  pkt.sync = {};
  reset_snr(pkt.snr);
  reset_snr(pkt.pilot_snr);
  pkt.channel.nrx = 0;
  pkt.channel.nss = 0;
  pkt.residual_cfo_norm = 0.0;
  pkt.stream_sinr_db.fill(0.0);
  pkt.n_stream_sinr = 0;
}

}  // namespace

Receiver::Receiver(PhyConfig cfg, std::size_t nrx)
    : Receiver(std::move(cfg), nrx, sync::ScanMode{}) {}

Receiver::Receiver(PhyConfig cfg, std::size_t nrx, const sync::ScanMode& scan)
    : cfg_(cfg),
      nrx_(nrx),
      synchronizer_(sync::FrameSyncConfig{.scan = scan, .mode = cfg.timing_mode}),
      legacy_demod_(ofdm::CarrierPlan::kLegacy),
      ht_demod_(ofdm::CarrierPlan::kHt) {
  if (nrx == 0 || nrx > 4) throw std::invalid_argument("Receiver: nrx must be 1..4");
}

void Receiver::decode_sig_llrs(const dsp::SampleGrid& grids,
                               const std::vector<std::vector<cf32>>& h_legacy,
                               float noise_var, bool qbpsk, RxWorkspace& ws,
                               std::vector<float>& out) const {
  const auto& data_bins = legacy_demod_.map().data_bins();
  ws.mrc.resize(data_bins.size());
  for (std::size_t i = 0; i < data_bins.size(); ++i) {
    const std::size_t bin = data_bins[i];
    dsp::cf64 num{0.0, 0.0};
    for (std::size_t r = 0; r < nrx_; ++r) {
      num += dsp::cf64(grids(r, bin)) * std::conj(dsp::cf64(h_legacy[r][bin]));
    }
    // Unnormalized MRC: llr = -4 * axis(num) / nv is exact because the MRC
    // gain cancels between numerator and effective noise variance.
    ws.mrc[i] = cf32(static_cast<float>(num.real()), static_cast<float>(num.imag()));
  }
  wifi::demap_sig_field_into(ws.mrc, noise_var, qbpsk, ws.sig_axis_llrs, out);
}

bool Receiver::receive(std::span<const std::span<const cf32>> capture,
                       RxWorkspace& ws) const {
  return receive(capture, ws, HarqDecode{});
}

bool Receiver::receive(std::span<const std::span<const cf32>> capture,
                       RxWorkspace& ws, const HarqDecode& harq) const {
  if (capture.size() != nrx_) {
    throw std::invalid_argument("Receiver: capture antenna count mismatch");
  }
  // No soft state is worth retaining unless decode reaches the FEC stage.
  if (harq.combined != nullptr) harq.combined->clear();
  RxPacket& pkt = ws.packet;
  reset_packet(pkt);

  const auto sync_res = synchronizer_.synchronize(capture, ws.sync);
  if (!sync_res) {
    if (ws.sync.rejected_candidate) {
      // A detector candidate fired but synchronization rejected it. Report
      // its position so a streaming scanner can hop past it instead of
      // declaring the whole remainder idle.
      pkt.sync.packet_start = *ws.sync.rejected_candidate;
      pkt.error = ws.sync.rejected_truncated ? metrics::RxError::kTruncated
                                             : metrics::RxError::kFalseSync;
    }
    return false;  // else pkt.error == kNoSync from the reset
  }
  pkt.sync = *sync_res;

  // CFO-corrected, packet-aligned copy.
  const std::size_t start = sync_res->packet_start;
  const std::size_t avail = capture[0].size() - start;
  FrameLayout probe;  // nss=1 layout: offsets through HT-STF are nss-free
  if (avail < probe.htltf_offset() + wifi::kHtLtfLen) {
    pkt.error = metrics::RxError::kTruncated;
    return false;
  }

  ws.rx.resize(nrx_);
  for (std::size_t a = 0; a < nrx_; ++a) {
    const auto tail = capture[a].subspan(start);
    ws.rx[a].assign(tail.begin(), tail.end());
    channel::apply_cfo(ws.rx[a], -sync_res->cfo_norm);
  }

  const dsp::FftPlan& fft64 = ws.fft_cache.plan(ofdm::kFftSize);

  // ---- L-LTF: legacy channel estimate + SNR estimate. ----
  const std::size_t lltf_payload = probe.lltf_offset() + 32;
  ws.lltf_grids.resize(nrx_, 2, ofdm::kFftSize);
  for (std::size_t a = 0; a < nrx_; ++a) {
    for (std::size_t rep = 0; rep < 2; ++rep) {
      fft64.forward(
          std::span<const cf32>(ws.rx[a]).subspan(lltf_payload + rep * 64, 64),
          ws.lltf_grids.row(a, rep));
    }
  }
  chanest::LsChannelEstimator::estimate_legacy_into(ws.lltf_grids, ws.h_legacy);

  ws.spans.clear();
  for (const auto& a : ws.rx) {
    ws.spans.emplace_back(std::span<const cf32>(a).subspan(lltf_payload, 128));
  }
  chanest::snr_from_lltf_into(ws.spans, pkt.snr);
  const auto nv_bin = static_cast<float>(
      64.0 * std::max(pkt.snr.noise_variance, 1e-12));

  // ---- L-SIG. ----
  ws.sig_grid.resize(nrx_, ofdm::kFftSize);
  const auto demod_symbol_grids = [&](std::size_t offset) {
    for (std::size_t a = 0; a < nrx_; ++a) {
      fft64.forward(std::span<const cf32>(ws.rx[a])
                        .subspan(offset + ofdm::kCpLen, ofdm::kFftSize),
                    ws.sig_grid.row(a));
    }
  };

  demod_symbol_grids(probe.lsig_offset());
  decode_sig_llrs(ws.sig_grid, ws.h_legacy, nv_bin, /*qbpsk=*/false, ws, ws.sig_llrs);
  viterbi_.decode_soft_into(ws.sig_llrs, /*terminated=*/true, ws.sig_bits, ws.viterbi);
  if (const auto lsig = wifi::decode_lsig(ws.sig_bits)) {
    pkt.lsig = *lsig;
    pkt.lsig_ok = true;
  }

  // ---- HT-SIG (two symbols, one coded block). ----
  ws.htsig_llrs.clear();
  for (std::size_t s = 0; s < 2; ++s) {
    demod_symbol_grids(probe.htsig_offset() + s * ofdm::kSymLen);
    decode_sig_llrs(ws.sig_grid, ws.h_legacy, nv_bin, /*qbpsk=*/true, ws, ws.sig_llrs);
    ws.htsig_llrs.insert(ws.htsig_llrs.end(), ws.sig_llrs.begin(), ws.sig_llrs.end());
  }
  viterbi_.decode_soft_into(ws.htsig_llrs, /*terminated=*/true, ws.sig_bits,
                            ws.viterbi);
  const auto htsig = wifi::decode_htsig(ws.sig_bits);
  if (!htsig) {
    // With both SIG decodes down there is no evidence a packet ever started
    // here — classify the candidate itself as false, not the HT-SIG stage.
    pkt.error = pkt.lsig_ok ? metrics::RxError::kHtsigFail
                            : metrics::RxError::kFalseSync;
    return true;
  }
  pkt.htsig = *htsig;
  pkt.htsig_ok = true;

  // ---- Frame geometry from HT-SIG. ----
  wifi::McsInfo mcs;
  try {
    mcs = wifi::mcs_info(pkt.htsig.mcs);
  } catch (const std::invalid_argument&) {
    pkt.htsig_ok = false;  // CRC passed but the MCS is outside our support
    pkt.error = metrics::RxError::kUnsupportedMcs;
    return true;
  }
  const bool stbc = pkt.htsig.stbc != 0;
  if (stbc && (pkt.htsig.stbc != 1 || mcs.nss != 1)) {
    pkt.htsig_ok = false;  // only the 1-stream / 2-STS Alamouti mode exists
    pkt.error = metrics::RxError::kUnsupportedMcs;
    return true;
  }
  const std::size_t nsts = stbc ? 2 : mcs.nss;
  // The FEC family is announced in HT-SIG, so the receiver self-configures.
  const FecType fec_type = pkt.htsig.fec_coding ? FecType::kLdpc : FecType::kBcc;
  FrameLayout fl;
  fl.nss = nsts;
  fl.n_data_symbols = data_symbol_count(mcs, pkt.htsig.length, cfg_.fec_enabled,
                                        stbc, fec_type);
  if (avail < fl.total_samples()) {  // truncated capture
    pkt.error = metrics::RxError::kTruncated;
    return true;
  }

  // ---- HT-LTF channel estimation. ----
  const std::size_t n_ltf = fl.n_ht_ltfs();
  ws.ltf_grids.resize(nrx_, n_ltf, ofdm::kFftSize);
  for (std::size_t a = 0; a < nrx_; ++a) {
    for (std::size_t n = 0; n < n_ltf; ++n) {
      fft64.forward(std::span<const cf32>(ws.rx[a]).subspan(
                        fl.htltf_offset() + n * wifi::kHtLtfLen + ofdm::kCpLen, 64),
                    ws.ltf_grids.row(a, n));
    }
  }
  const chanest::LsChannelEstimator ls(nrx_, nsts);
  chanest::MimoChannelEstimate& est = pkt.channel;
  ls.estimate_into(ws.ltf_grids, est);
  if (cfg_.smoothing) {
    static const auto bins = occupied_ht_bins();
    ws.csd.resize(nsts);
    for (std::size_t s = 0; s < nsts; ++s) {
      ws.csd[s] = wifi::ht_csd_samples(s, nsts);
    }
    chanest::smooth_frequency(est, bins, ws.csd);
  }

  // ---- Data symbols. ----
  const mod::Constellation& constellation = mod::constellation_for(mcs.modulation);
  const unsigned bps = constellation.bits_per_symbol();
  const auto& data_bins = ht_demod_.map().data_bins();
  const auto& pilot_bins = ht_demod_.map().pilot_bins();

  chanest::PilotPhaseTracker tracker(est);
  ws.pilot_evm.reset();

  std::optional<eq::LinearEqualizer> lin_eq;
  std::optional<eq::MlDetector> ml_det;
  if (!stbc) {
    if (cfg_.equalizer == eq::EqualizerType::kMaxLikelihood && mcs.nss <= 2) {
      ml_det.emplace(constellation, mcs.nss);
    } else {
      lin_eq.emplace(cfg_.equalizer == eq::EqualizerType::kMaxLikelihood
                         ? eq::EqualizerType::kMmse
                         : cfg_.equalizer);
    }
  }

  // Pre-fetch channel matrices for the data bins, and — for the linear
  // equalizer — prepare the per-bin coefficients once. The channel is
  // constant across symbols unless decision tracking rewrites it, in which
  // case the bin is re-prepared right after the update (bit-identical to
  // equalizing with the updated matrix each symbol).
  ws.h_at.resize(ofdm::kFftSize);
  for (const std::size_t b : data_bins) est.at_bin_into(b, ws.h_at[b]);
  if (lin_eq) {
    ws.coeffs.resize(ofdm::kFftSize);
    for (const std::size_t b : data_bins) {
      lin_eq->prepare(ws.h_at[b], nv_bin, ws.coeffs[b]);
    }
    // Per-stream post-eq SINR from the prepared CSI, before any
    // decision-tracking updates: the link-adaptation observable.
    for (std::size_t s = 0; s < mcs.nss; ++s) {
      double acc = 0.0;
      std::size_t cnt = 0;
      for (const std::size_t b : data_bins) {
        const float nv = ws.coeffs[b].noise_vars[s];
        if (nv > 0.0F && nv < eq::kErasedNoiseVar) {
          acc += 1.0 / static_cast<double>(nv);
          ++cnt;
        }
      }
      pkt.stream_sinr_db[s] =
          cnt > 0 ? 10.0 * std::log10(acc / static_cast<double>(cnt)) : 0.0;
    }
    pkt.n_stream_sinr = mcs.nss;
  }

  // The batched symbol-plane pipeline replaces the per-symbol layer walk for
  // the spatial-multiplexing payload; STBC keeps the pairwise path.
  const bool batched = cfg_.batched_decode && !stbc;

  if (!batched) {
    ws.stream_llrs.resize(mcs.nss);
    for (auto& v : ws.stream_llrs) {
      v.clear();
      v.reserve(fl.n_data_symbols * wifi::kHtDataCarriers * bps);
    }
    ws.data_grid.resize(nrx_, ofdm::kFftSize);
    ws.y.resize(nrx_);
  }
  ws.llr_buf.resize(mcs.nss * bps);
  ws.rx_pilots.resize(nrx_);

  // Demodulate data symbol `n` into `out_grids`, run pilot CPE tracking and
  // pilot-EVM accounting, and return the derotation phasor to apply.
  const auto demod_data_symbol = [&](std::size_t n, dsp::SampleGrid& out_grids) {
    const std::size_t off = fl.data_offset() + n * ofdm::kSymLen;
    for (std::size_t a = 0; a < nrx_; ++a) {
      fft64.forward(std::span<const cf32>(ws.rx[a]).subspan(off + ofdm::kCpLen, 64),
                    out_grids.row(a));
    }
    cf32 derotate{1.0F, 0.0F};
    for (std::size_t a = 0; a < nrx_; ++a) {
      for (std::size_t p = 0; p < 4; ++p) {
        ws.rx_pilots[a][p] = out_grids(a, pilot_bins[p]);
      }
    }
    if (cfg_.phase_tracking) {
      const double raw = tracker.estimate_cpe(ws.rx_pilots, n);
      const double theta = tracker.track(raw);
      derotate = dsp::phasor(static_cast<float>(-theta));
    }
    // Pilot EVM (after derotation) feeds the fine-grained SNR estimate.
    for (std::size_t a = 0; a < nrx_; ++a) {
      for (std::size_t p = 0; p < 4; ++p) {
        dsp::cf64 expected{0.0, 0.0};
        for (std::size_t s = 0; s < nsts; ++s) {
          const auto pv = ofdm::ht_data_pilots(nsts, s, n);
          expected += dsp::cf64(est.h[a][s][pilot_bins[p]]) * dsp::cf64(pv[p]);
        }
        ws.pilot_evm.add(pilot_bins[p], ws.rx_pilots[a][p] * derotate,
                         cf32(static_cast<float>(expected.real()),
                              static_cast<float>(expected.imag())));
      }
    }
    return derotate;
  };

  // Decision-directed LMS channel update for one subcarrier: slice the
  // equalized symbols, form the reconstruction error per antenna, and nudge
  // H toward explaining the observation. Counters intra-packet fading.
  const bool dd_tracking = cfg_.decision_tracking && !stbc && lin_eq.has_value();
  ws.sliced.resize(mcs.nss);
  const auto dd_update = [&](std::size_t bin, std::span<const cf32> y_obs,
                             std::span<const cf32> eq_symbols) {
    auto& h = ws.h_at[bin];
    for (std::size_t s = 0; s < mcs.nss; ++s) {
      ws.sliced[s] = dsp::cf64(
          constellation.points()[constellation.hard_decision(eq_symbols[s])]);
    }
    const double mu = static_cast<double>(cfg_.decision_tracking_mu) /
                      static_cast<double>(mcs.nss);
    for (std::size_t a = 0; a < nrx_; ++a) {
      dsp::cf64 pred{0.0, 0.0};
      for (std::size_t s = 0; s < mcs.nss; ++s) pred += h(a, s) * ws.sliced[s];
      const dsp::cf64 err = dsp::cf64(y_obs[a]) - pred;
      for (std::size_t s = 0; s < mcs.nss; ++s) {
        // Unit-energy constellations: |x|^2 ~ 1, so no normalizer needed.
        h(a, s) += mu * err * std::conj(ws.sliced[s]);
      }
    }
  };

  const wifi::StreamParser parser(mcs.bits_per_subcarrier(), mcs.nss);
  const std::size_t n_info_bits = fl.n_data_symbols * mcs.data_bits_per_symbol();
  // Batched BCC streams depunctured LLRs straight into the Viterbi ACS as
  // each chunk lands; everything else accumulates ws.merged for the tail.
  // HARQ combining needs the whole merged stream materialized (to sum the
  // prior in and to retain the result), so it forces the accumulate path —
  // bit-identical to the streaming one (chunked depuncture/ACS is pinned to
  // the one-shot decode; see fec/convolutional.hpp and fec/viterbi.hpp).
  const bool bcc_stream = batched && cfg_.fec_enabled &&
                          fec_type == FecType::kBcc && !harq.active();
  std::size_t llrs_fed = 0;

  if (batched) {
    // ---- Batched symbol-plane decode: stage-wise passes over chunks of
    // kDecodeBatchSymbols OFDM symbols. Per-(symbol, bin) operations are
    // independent, so the symbol-major -> bin-major reorder inside a chunk
    // is bit-exact; decision tracking's only cross-symbol dependency is
    // per-bin, which the bin-major walk preserves in sequence. ----
    const std::size_t n_bins = data_bins.size();
    const std::size_t block = n_bins * bps;  // coded bits/symbol/stream
    if (bcc_stream) {
      ws.depunct_stream.reset(mcs.rate);
      viterbi_.stream_begin(ws.viterbi_stream, ws.viterbi, n_info_bits);
    } else {
      ws.merged.clear();
      ws.merged.reserve(fl.n_data_symbols * block * mcs.nss);
    }
    ws.eq_out.resize(mcs.nss);
    ws.nv_out.resize(mcs.nss);
    ws.chunk_llrs.resize(mcs.nss);
    ws.chunk_deint.resize(mcs.nss);
    ws.merge_views.resize(mcs.nss);
    std::array<cf32, eq::CMatrix::kMaxDim> eq_syms{};
    std::array<float, eq::CMatrix::kMaxDim> eq_nvars{};

    for (std::size_t n0 = 0; n0 < fl.n_data_symbols; n0 += kDecodeBatchSymbols) {
      const std::size_t chunk =
          std::min<std::size_t>(kDecodeBatchSymbols, fl.n_data_symbols - n0);

      // Stage 1: one batched FFT pass per antenna over the chunk.
      ws.batch_grids.resize(nrx_, chunk, ofdm::kFftSize);
      const std::size_t off = fl.data_offset() + n0 * ofdm::kSymLen;
      for (std::size_t a = 0; a < nrx_; ++a) {
        ht_demod_.demodulate_grids_into(
            std::span<const cf32>(ws.rx[a]).subspan(off, chunk * ofdm::kSymLen),
            chunk,
            std::span<cf32>(ws.batch_grids.data() + a * chunk * ofdm::kFftSize,
                            chunk * ofdm::kFftSize));
      }

      // Stage 2: pilot CPE tracking + EVM, sequential in symbol order (the
      // tracker state and EVM accumulation see the per-symbol sequence).
      ws.derotate.resize(chunk);
      for (std::size_t j = 0; j < chunk; ++j) {
        const std::size_t n = n0 + j;
        for (std::size_t a = 0; a < nrx_; ++a) {
          for (std::size_t p = 0; p < 4; ++p) {
            ws.rx_pilots[a][p] = ws.batch_grids(a, j, pilot_bins[p]);
          }
        }
        cf32 derotate{1.0F, 0.0F};
        if (cfg_.phase_tracking) {
          const double raw = tracker.estimate_cpe(ws.rx_pilots, n);
          const double theta = tracker.track(raw);
          derotate = dsp::phasor(static_cast<float>(-theta));
        }
        for (std::size_t a = 0; a < nrx_; ++a) {
          for (std::size_t p = 0; p < 4; ++p) {
            dsp::cf64 expected{0.0, 0.0};
            for (std::size_t s = 0; s < nsts; ++s) {
              const auto pv = ofdm::ht_data_pilots(nsts, s, n);
              expected += dsp::cf64(est.h[a][s][pilot_bins[p]]) * dsp::cf64(pv[p]);
            }
            ws.pilot_evm.add(pilot_bins[p], ws.rx_pilots[a][p] * derotate,
                             cf32(static_cast<float>(expected.real()),
                                  static_cast<float>(expected.imag())));
          }
        }
        ws.derotate[j] = derotate;
      }

      // Stage 3: equalize bin-major across the chunk, scattering the
      // per-stream outputs symbol-major so the demap input is already in
      // stream-LLR order.
      for (std::size_t s = 0; s < mcs.nss; ++s) {
        ws.eq_out[s].resize(chunk * n_bins);
        ws.nv_out[s].resize(chunk * n_bins);
        ws.chunk_llrs[s].resize(chunk * block);
      }
      ws.y_batch.resize(chunk * nrx_);
      ws.eq_slab.resize(chunk * mcs.nss);
      ws.nv_slab.resize(chunk * mcs.nss);
      for (std::size_t i = 0; i < n_bins; ++i) {
        const std::size_t bin = data_bins[i];
        for (std::size_t j = 0; j < chunk; ++j) {
          for (std::size_t a = 0; a < nrx_; ++a) {
            ws.y_batch[j * nrx_ + a] = ws.batch_grids(a, j, bin) * ws.derotate[j];
          }
        }
        if (ml_det) {
          for (std::size_t j = 0; j < chunk; ++j) {
            ml_det->demap(
                ws.h_at[bin],
                std::span<const cf32>(ws.y_batch).subspan(j * nrx_, nrx_), nv_bin,
                ws.llr_buf);
            for (std::size_t s = 0; s < mcs.nss; ++s) {
              for (unsigned b = 0; b < bps; ++b) {
                ws.chunk_llrs[s][(j * n_bins + i) * bps + b] =
                    ws.llr_buf[s * bps + b];
              }
            }
          }
        } else if (dd_tracking) {
          // Per-bin LMS updates force a sequential walk over the chunk's
          // symbols for this bin — the exact update sequence the per-symbol
          // path produces.
          for (std::size_t j = 0; j < chunk; ++j) {
            const auto y =
                std::span<const cf32>(ws.y_batch).subspan(j * nrx_, nrx_);
            eq::LinearEqualizer::apply(
                ws.coeffs[bin], y, std::span<cf32>(eq_syms).first(mcs.nss),
                std::span<float>(eq_nvars).first(mcs.nss));
            for (std::size_t s = 0; s < mcs.nss; ++s) {
              ws.eq_out[s][j * n_bins + i] = eq_syms[s];
              ws.nv_out[s][j * n_bins + i] = eq_nvars[s];
            }
            dd_update(bin, y, std::span<const cf32>(eq_syms).first(mcs.nss));
            lin_eq->prepare(ws.h_at[bin], nv_bin, ws.coeffs[bin]);
          }
        } else {
          eq::LinearEqualizer::apply_run(ws.coeffs[bin], ws.y_batch, chunk,
                                         ws.eq_slab, ws.nv_slab);
          for (std::size_t j = 0; j < chunk; ++j) {
            for (std::size_t s = 0; s < mcs.nss; ++s) {
              ws.eq_out[s][j * n_bins + i] = ws.eq_slab[j * mcs.nss + s];
              ws.nv_out[s][j * n_bins + i] = ws.nv_slab[j * mcs.nss + s];
            }
          }
        }
      }

      // Stage 4: SIMD demap + deinterleave per stream, then merge. The
      // interleaver block is one symbol per stream and the parser group
      // divides the block, so chunk-wise passes concatenate to the
      // whole-payload result exactly.
      for (std::size_t s = 0; s < mcs.nss; ++s) {
        if (!ml_det) {
          constellation.demap_soft_run(ws.eq_out[s], ws.nv_out[s],
                                       ws.chunk_llrs[s]);
        }
        const wifi::Interleaver& il =
            wifi::cached_interleaver(mcs.bits_per_subcarrier(), s, mcs.nss);
        ws.chunk_deint[s].resize(chunk * block);
        il.deinterleave_into(ws.chunk_llrs[s], std::span<float>(ws.chunk_deint[s]));
        ws.merge_views[s] = ws.chunk_deint[s];
      }
      ws.chunk_merged.resize(chunk * block * mcs.nss);
      parser.merge_into(std::span<const std::span<const float>>(ws.merge_views),
                        std::span<float>(ws.chunk_merged));

      // Stage 5: stream the chunk into the FEC consumer — Viterbi ACS runs
      // while later chunks are still in flight.
      if (bcc_stream) {
        ws.depunct_stream.consume(ws.chunk_merged, ws.chunk_depunct);
        const std::size_t take =
            std::min(ws.chunk_depunct.size(), 2 * n_info_bits - llrs_fed);
        viterbi_.stream_consume(
            ws.viterbi_stream, ws.viterbi,
            std::span<const float>(ws.chunk_depunct).first(take));
        llrs_fed += take;
      } else {
        ws.merged.insert(ws.merged.end(), ws.chunk_merged.begin(),
                         ws.chunk_merged.end());
      }
    }
  } else if (!stbc) {
    std::array<cf32, eq::CMatrix::kMaxDim> eq_syms{};
    std::array<float, eq::CMatrix::kMaxDim> eq_nvars{};
    for (std::size_t n = 0; n < fl.n_data_symbols; ++n) {
      const cf32 derotate = demod_data_symbol(n, ws.data_grid);
      for (const std::size_t bin : data_bins) {
        for (std::size_t a = 0; a < nrx_; ++a) {
          ws.y[a] = ws.data_grid(a, bin) * derotate;
        }

        if (ml_det) {
          ml_det->demap(ws.h_at[bin], ws.y, nv_bin, ws.llr_buf);
          for (std::size_t s = 0; s < mcs.nss; ++s) {
            for (unsigned b = 0; b < bps; ++b) {
              ws.stream_llrs[s].push_back(ws.llr_buf[s * bps + b]);
            }
          }
        } else {
          eq::LinearEqualizer::apply(
              ws.coeffs[bin], ws.y, std::span<cf32>(eq_syms).first(mcs.nss),
              std::span<float>(eq_nvars).first(mcs.nss));
          for (std::size_t s = 0; s < mcs.nss; ++s) {
            constellation.demap_soft(eq_syms[s], eq_nvars[s],
                                     std::span<float>(ws.llr_buf).first(bps));
            for (unsigned b = 0; b < bps; ++b) {
              ws.stream_llrs[s].push_back(ws.llr_buf[b]);
            }
          }
          if (dd_tracking) {
            dd_update(bin, ws.y,
                      std::span<const cf32>(eq_syms).first(mcs.nss));
            lin_eq->prepare(ws.h_at[bin], nv_bin, ws.coeffs[bin]);
          }
        }
      }
    }
  } else {
    // Alamouti: decode pairwise. LLRs of the pair's first symbol must land
    // before the second's to match the transmitter's bit order.
    ws.data_grid2.resize(nrx_, ofdm::kFftSize);
    ws.y2.resize(nrx_);
    ws.llrs_first.resize(data_bins.size() * bps);
    ws.llrs_second.resize(data_bins.size() * bps);
    for (std::size_t n = 0; n + 1 < fl.n_data_symbols + 1; n += 2) {
      const cf32 derot1 = demod_data_symbol(n, ws.data_grid);
      const cf32 derot2 = demod_data_symbol(n + 1, ws.data_grid2);
      for (std::size_t i = 0; i < data_bins.size(); ++i) {
        const std::size_t bin = data_bins[i];
        for (std::size_t a = 0; a < nrx_; ++a) {
          ws.y[a] = ws.data_grid(a, bin) * derot1;
          ws.y2[a] = ws.data_grid2(a, bin) * derot2;
        }
        const auto dec = eq::alamouti_combine(ws.h_at[bin], ws.y, ws.y2, nv_bin);
        constellation.demap_soft(
            dec.d1, dec.noise_var,
            std::span<float>(ws.llrs_first).subspan(i * bps, bps));
        constellation.demap_soft(
            dec.d2, dec.noise_var,
            std::span<float>(ws.llrs_second).subspan(i * bps, bps));
      }
      ws.stream_llrs[0].insert(ws.stream_llrs[0].end(), ws.llrs_first.begin(),
                               ws.llrs_first.end());
      ws.stream_llrs[0].insert(ws.stream_llrs[0].end(), ws.llrs_second.begin(),
                               ws.llrs_second.end());
    }
  }

  ws.pilot_evm.estimate_into(pkt.pilot_snr);
  pkt.residual_cfo_norm = tracker.residual_cfo_norm();

  // ---- Deinterleave per stream, merge, FEC-decode, descramble. The
  // batched pipeline already deinterleaved, merged, and (for BCC) fed the
  // streaming Viterbi chunk by chunk. ----
  if (!batched) {
    ws.deinterleaved.resize(mcs.nss);
    for (std::size_t s = 0; s < mcs.nss; ++s) {
      const wifi::Interleaver& il =
          wifi::cached_interleaver(mcs.bits_per_subcarrier(), s, mcs.nss);
      il.deinterleave_into(ws.stream_llrs[s], ws.deinterleaved[s]);
    }
    parser.merge_into(ws.deinterleaved, ws.merged);
  }

  // ---- HARQ chase combining: sum the retained prior attempts' LLRs into
  // this attempt's merged stream before any FEC decoding, and export the
  // combined stream for retention. A prior whose length disagrees with this
  // attempt's stream (the retransmission changed MCS/length) is skipped —
  // the attempt decodes standalone rather than combining incompatible soft
  // state. ----
  if (harq.active()) {
    if (!harq.prior.empty() && harq.prior.size() == ws.merged.size()) {
      for (std::size_t i = 0; i < ws.merged.size(); ++i) {
        ws.merged[i] += harq.prior[i];
      }
    }
    if (harq.combined != nullptr) {
      harq.combined->assign(ws.merged.begin(), ws.merged.end());
    }
  }

  if (cfg_.fec_enabled && fec_type == FecType::kLdpc) {
    static const fec::LdpcCode code;
    const std::size_t n_cw = ldpc_codeword_count(pkt.htsig.length);
    if (ws.merged.size() < n_cw * kLdpcN) {
      pkt.error = metrics::RxError::kTruncated;
      return true;
    }
    ws.scrambled.clear();
    ws.scrambled.reserve(n_cw * kLdpcK);
    for (std::size_t cw = 0; cw < n_cw; ++cw) {
      const auto word = code.decode(
          std::span<const float>(ws.merged).subspan(cw * kLdpcN, kLdpcN));
      ws.scrambled.insert(ws.scrambled.end(), word.begin(),
                          word.begin() + static_cast<long>(kLdpcK));
    }
  } else if (cfg_.fec_enabled) {
    if (bcc_stream) {
      // Pad the trellis with zero-LLR erasures up to the 2 * n_info budget
      // (the one-shot path's resize does the same), then trace back.
      std::array<float, 128> zeros{};
      while (llrs_fed < 2 * n_info_bits) {
        const std::size_t take =
            std::min(zeros.size(), 2 * n_info_bits - llrs_fed);
        viterbi_.stream_consume(ws.viterbi_stream, ws.viterbi,
                                std::span<const float>(zeros).first(take));
        llrs_fed += take;
      }
      viterbi_.stream_finish(ws.viterbi_stream, ws.viterbi,
                             /*terminated=*/false, ws.scrambled);
    } else {
      fec::depuncture_into(ws.merged, mcs.rate, ws.depunctured);
      ws.depunctured.resize(2 * n_info_bits, 0.0F);
      viterbi_.decode_soft_into(ws.depunctured, /*terminated=*/false,
                                ws.scrambled, ws.viterbi);
    }
  } else {
    ws.scrambled.resize(ws.merged.size());
    for (std::size_t i = 0; i < ws.merged.size(); ++i) {
      ws.scrambled[i] = (ws.merged[i] < 0.0F) ? 1 : 0;
    }
  }

  const std::size_t psdu_bits = 8 * static_cast<std::size_t>(pkt.htsig.length);
  if (ws.scrambled.size() < kServiceBits + psdu_bits) {
    pkt.error = metrics::RxError::kTruncated;
    return true;
  }

  const std::uint32_t seed =
      recover_scrambler_seed(std::span(ws.scrambled).first(7));
  fec::scramble_in_place(ws.scrambled, seed);

  wifi::bits_to_bytes_into(
      std::span<const std::uint8_t>(ws.scrambled).subspan(kServiceBits, psdu_bits),
      pkt.psdu);
  pkt.fcs_ok = wifi::psdu_fcs_ok(pkt.psdu);
  // A frame delivered past a failed L-SIG still reports the anomaly; a
  // failed FCS is the terminal data-stage classification either way.
  pkt.error = !pkt.fcs_ok ? metrics::RxError::kFcsFail
              : pkt.lsig_ok ? metrics::RxError::kOk
                            : metrics::RxError::kLsigFail;
  return true;
}

std::optional<std::size_t> decoded_frame_samples(const RxPacket& pkt,
                                                 const PhyConfig& cfg) {
  if (!pkt.htsig_ok) return std::nullopt;
  const wifi::McsInfo mcs = wifi::mcs_info(pkt.htsig.mcs);
  const bool stbc = pkt.htsig.stbc != 0;
  const FecType fec_type = pkt.htsig.fec_coding ? FecType::kLdpc : FecType::kBcc;
  FrameLayout fl;
  fl.nss = stbc ? 2 : mcs.nss;
  fl.n_data_symbols = data_symbol_count(mcs, pkt.htsig.length, cfg.fec_enabled,
                                        stbc, fec_type);
  return fl.total_samples();
}

}  // namespace mimonet::core
