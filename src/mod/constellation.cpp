#include "mod/constellation.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define MIMONET_DEMAP_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mimonet::mod {

namespace {

bool g_force_scalar_demap = false;

#ifdef MIMONET_DEMAP_X86_DISPATCH

// AVX2 max-log demap, 8 symbols per iteration with the symbols in lanes.
// Bit-identical to demap_soft: the per-axis conditional minima use
// _mm256_min_ps(d, slot), whose "keep slot unless d < slot" semantics
// (including NaN d keeping slot) match the scalar `if (d < slot)` update;
// the noise floor uses _mm256_max_ps(1e-12, nv), matching
// std::max(noise_var, 1e-12F) including NaN propagation; the division is
// IEEE-exact; and non-finite LLRs are zeroed through an |llr| < inf mask
// exactly where the scalar path emits 0.0F erasures. Returns the number of
// symbols handled (n rounded down to a multiple of 8); the caller finishes
// the tail with demap_soft.
__attribute__((target("avx2"))) std::size_t demap_run_avx2(
    const float* i_levels, const float* q_levels, unsigned i_bits, unsigned q_bits,
    unsigned bps, const cf32* y, const float* nv, std::size_t n, float* out) {
  const __m256i deinterleave = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  const __m256 inf = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  const __m256 one = _mm256_set1_ps(1.0F);
  const __m256 nv_floor = _mm256_set1_ps(1e-12F);
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const float* yf = reinterpret_cast<const float*>(y);
  const std::size_t ni = std::size_t{1} << i_bits;
  const std::size_t nq = std::size_t{1} << q_bits;

  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // [r0 i0 r1 i1 ...] -> yr = [r0..r7], yi = [i0..i7]
    const __m256 lo =
        _mm256_permutevar8x32_ps(_mm256_loadu_ps(yf + 2 * i), deinterleave);
    const __m256 hi =
        _mm256_permutevar8x32_ps(_mm256_loadu_ps(yf + 2 * i + 8), deinterleave);
    const __m256 yr = _mm256_permute2f128_ps(lo, hi, 0x20);
    const __m256 yi = _mm256_permute2f128_ps(lo, hi, 0x31);

    __m256 i_min = inf;
    __m256 q_min = inf;
    __m256 i_min0[4];
    __m256 i_min1[4];
    __m256 q_min0[4];
    __m256 q_min1[4];
    for (unsigned b = 0; b < 4; ++b) {
      i_min0[b] = inf;
      i_min1[b] = inf;
      q_min0[b] = inf;
      q_min1[b] = inf;
    }
    for (std::size_t v = 0; v < ni; ++v) {
      const __m256 d1 = _mm256_sub_ps(yr, _mm256_set1_ps(i_levels[v]));
      const __m256 d = _mm256_mul_ps(d1, d1);
      i_min = _mm256_min_ps(d, i_min);
      for (unsigned b = 0; b < i_bits; ++b) {
        const bool bit = ((v >> (i_bits - 1 - b)) & 1U) != 0;
        __m256& slot = bit ? i_min1[b] : i_min0[b];
        slot = _mm256_min_ps(d, slot);
      }
    }
    for (std::size_t v = 0; v < nq; ++v) {
      const __m256 d1 = _mm256_sub_ps(yi, _mm256_set1_ps(q_levels[v]));
      const __m256 d = _mm256_mul_ps(d1, d1);
      q_min = _mm256_min_ps(d, q_min);
      for (unsigned b = 0; b < q_bits; ++b) {
        const bool bit = ((v >> (q_bits - 1 - b)) & 1U) != 0;
        __m256& slot = bit ? q_min1[b] : q_min0[b];
        slot = _mm256_min_ps(d, slot);
      }
    }

    const __m256 inv_nv =
        _mm256_div_ps(one, _mm256_max_ps(nv_floor, _mm256_loadu_ps(nv + i)));
    float tile[6][8];
    for (unsigned b = 0; b < bps; ++b) {
      __m256 min0;
      __m256 min1;
      if (b < i_bits) {
        min0 = _mm256_add_ps(i_min0[b], q_min);
        min1 = _mm256_add_ps(i_min1[b], q_min);
      } else {
        min0 = _mm256_add_ps(i_min, q_min0[b - i_bits]);
        min1 = _mm256_add_ps(i_min, q_min1[b - i_bits]);
      }
      const __m256 llr = _mm256_mul_ps(_mm256_sub_ps(min1, min0), inv_nv);
      const __m256 finite =
          _mm256_cmp_ps(_mm256_and_ps(llr, abs_mask), inf, _CMP_LT_OQ);
      _mm256_storeu_ps(tile[b], _mm256_and_ps(llr, finite));
    }
    for (std::size_t lane = 0; lane < 8; ++lane) {
      for (unsigned b = 0; b < bps; ++b) {
        out[(i + lane) * bps + b] = tile[b][lane];
      }
    }
  }
  return i;
}

[[nodiscard]] bool have_avx2_demap() noexcept {
  return __builtin_cpu_supports("avx2");
}
#endif  // MIMONET_DEMAP_X86_DISPATCH

// 802.11 Gray mapping of bit groups to PAM levels, per axis.
// 1 bit:  0 -> -1, 1 -> +1
// 2 bits: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3
// 3 bits: 000 -> -7, 001 -> -5, 011 -> -3, 010 -> -1,
//         110 -> +1, 111 -> +3, 101 -> +5, 100 -> +7
constexpr std::array<float, 2> kPam2{-1.0F, 1.0F};
constexpr std::array<float, 4> kPam4{-3.0F, -1.0F, 3.0F, 1.0F};  // index = bits b0b1
constexpr std::array<float, 8> kPam8{-7.0F, -5.0F, -1.0F, -3.0F,
                                     7.0F,  5.0F,  1.0F,  3.0F};  // index = b0b1b2

}  // namespace

unsigned bits_per_symbol(Modulation m) noexcept {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

std::string_view modulation_name(Modulation m) noexcept {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

Constellation::Constellation(Modulation m) : mod_(m), bps_(mod::bits_per_symbol(m)) {
  const std::size_t n = std::size_t{1} << bps_;
  points_.resize(n);

  const auto pam_level = [](unsigned bits, unsigned value) -> float {
    switch (bits) {
      case 1: return kPam2[value];
      case 2: return kPam4[value];
      case 3: return kPam8[value];
      default: return 0.0F;
    }
  };

  // Normalization factors giving unit average symbol energy (802.11 K_MOD).
  float norm = 1.0F;
  switch (m) {
    case Modulation::kBpsk: norm = 1.0F; break;
    case Modulation::kQpsk: norm = 1.0F / std::sqrt(2.0F); break;
    case Modulation::kQam16: norm = 1.0F / std::sqrt(10.0F); break;
    case Modulation::kQam64: norm = 1.0F / std::sqrt(42.0F); break;
  }

  const unsigned i_bits = (bps_ + 1) / 2;  // BPSK: 1/0 split (Q absent)
  const unsigned q_bits = bps_ / 2;
  i_bits_ = i_bits;
  q_bits_ = q_bits;
  for (std::size_t label = 0; label < n; ++label) {
    const auto i_val = static_cast<unsigned>(label >> q_bits);
    const auto q_val = static_cast<unsigned>(label & ((1U << q_bits) - 1U));
    const float i_lvl = pam_level(i_bits, i_val);
    const float q_lvl = (q_bits == 0) ? 0.0F : pam_level(q_bits, q_val);
    points_[label] = cf32(i_lvl * norm, q_lvl * norm);
  }
  for (unsigned v = 0; v < (1U << i_bits); ++v) {
    i_levels_[v] = pam_level(i_bits, v) * norm;
  }
  for (unsigned v = 0; v < (1U << q_bits); ++v) {
    q_levels_[v] = ((q_bits == 0) ? 0.0F : pam_level(q_bits, v)) * norm;
  }
}

cf32 Constellation::map(std::span<const std::uint8_t> bits) const {
  if (bits.size() != bps_) throw std::invalid_argument("Constellation::map: wrong bit count");
  std::size_t label = 0;
  for (const std::uint8_t b : bits) label = (label << 1U) | (b & 1U);
  return points_[label];
}

void Constellation::map_all_into(std::span<const std::uint8_t> bits,
                                 std::vector<cf32>& out) const {
  if (bits.size() % bps_ != 0) {
    throw std::invalid_argument("Constellation::map_all: bit count not a symbol multiple");
  }
  out.resize(bits.size() / bps_);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = map(bits.subspan(i * bps_, bps_));
  }
}

std::vector<cf32> Constellation::map_all(std::span<const std::uint8_t> bits) const {
  std::vector<cf32> out;
  map_all_into(bits, out);
  return out;
}

std::size_t Constellation::hard_decision(cf32 y) const noexcept {
  std::size_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const float d = dsp::mag_sqr(y - points_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::vector<std::uint8_t> Constellation::demap_hard(std::span<const cf32> symbols) const {
  std::vector<std::uint8_t> bits(symbols.size() * bps_);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const std::size_t label = hard_decision(symbols[i]);
    for (unsigned b = 0; b < bps_; ++b) {
      bits[i * bps_ + b] =
          static_cast<std::uint8_t>((label >> (bps_ - 1 - b)) & 1U);
    }
  }
  return bits;
}

void Constellation::demap_soft(cf32 y, float noise_var, std::span<float> llr_out) const {
  if (llr_out.size() != bps_) {
    throw std::invalid_argument("Constellation::demap_soft: wrong LLR span size");
  }
  constexpr float kInf = std::numeric_limits<float>::infinity();
  // The grid factorizes into independent I/Q PAM axes (labels are I bits
  // then Q bits), so min over the M points of dI^2 + dQ^2 equals the
  // per-axis minimum of each term. Rounding is monotone, so this is
  // bit-identical to scanning all M points — at 2*sqrt(M) distance
  // evaluations instead of M.
  const std::size_t ni = std::size_t{1} << i_bits_;
  const std::size_t nq = std::size_t{1} << q_bits_;
  std::array<float, 8> di2;
  std::array<float, 8> dq2;
  for (std::size_t v = 0; v < ni; ++v) {
    const float d = y.real() - i_levels_[v];
    di2[v] = d * d;
  }
  for (std::size_t v = 0; v < nq; ++v) {
    const float d = y.imag() - q_levels_[v];
    dq2[v] = d * d;
  }

  // Per-axis minima, overall and conditioned on each axis bit.
  std::array<float, 4> i_min0;
  std::array<float, 4> i_min1;
  std::array<float, 4> q_min0;
  std::array<float, 4> q_min1;
  i_min0.fill(kInf);
  i_min1.fill(kInf);
  q_min0.fill(kInf);
  q_min1.fill(kInf);
  float i_min = kInf;
  float q_min = kInf;
  for (std::size_t v = 0; v < ni; ++v) {
    const float d = di2[v];
    if (d < i_min) i_min = d;
    for (unsigned b = 0; b < i_bits_; ++b) {
      const bool bit = ((v >> (i_bits_ - 1 - b)) & 1U) != 0;
      auto& slot = bit ? i_min1[b] : i_min0[b];
      if (d < slot) slot = d;
    }
  }
  for (std::size_t v = 0; v < nq; ++v) {
    const float d = dq2[v];
    if (d < q_min) q_min = d;
    for (unsigned b = 0; b < q_bits_; ++b) {
      const bool bit = ((v >> (q_bits_ - 1 - b)) & 1U) != 0;
      auto& slot = bit ? q_min1[b] : q_min0[b];
      if (d < slot) slot = d;
    }
  }

  const float inv_nv = 1.0F / std::max(noise_var, 1e-12F);
  for (unsigned b = 0; b < bps_; ++b) {
    float min0;
    float min1;
    if (b < i_bits_) {
      min0 = i_min0[b] + q_min;
      min1 = i_min1[b] + q_min;
    } else {
      min0 = i_min + q_min0[b - i_bits_];
      min1 = i_min + q_min1[b - i_bits_];
    }
    const float llr = (min1 - min0) * inv_nv;
    // A non-finite observation (NaN/Inf leaking through the channel) leaves
    // both minima at +inf; emit an erasure rather than NaN so the FEC
    // decoders always see defined branch metrics.
    llr_out[b] = std::isfinite(llr) ? llr : 0.0F;
  }
}

const Constellation& constellation_for(Modulation m) {
  static const Constellation bpsk(Modulation::kBpsk);
  static const Constellation qpsk(Modulation::kQpsk);
  static const Constellation qam16(Modulation::kQam16);
  static const Constellation qam64(Modulation::kQam64);
  switch (m) {
    case Modulation::kBpsk: return bpsk;
    case Modulation::kQpsk: return qpsk;
    case Modulation::kQam16: return qam16;
    case Modulation::kQam64: return qam64;
  }
  return bpsk;
}

std::vector<float> Constellation::demap_soft_all(std::span<const cf32> symbols,
                                                 std::span<const float> noise_vars) const {
  if (symbols.size() != noise_vars.size()) {
    throw std::invalid_argument("demap_soft_all: symbol/CSI size mismatch");
  }
  std::vector<float> llrs(symbols.size() * bps_);
  demap_soft_run(symbols, noise_vars, llrs);
  return llrs;
}

void Constellation::demap_soft_run(std::span<const cf32> symbols,
                                   std::span<const float> noise_vars,
                                   std::span<float> llr_out) const {
  if (symbols.size() != noise_vars.size() ||
      llr_out.size() != symbols.size() * bps_) {
    throw std::invalid_argument("Constellation::demap_soft_run: size mismatch");
  }
  std::size_t done = 0;
#ifdef MIMONET_DEMAP_X86_DISPATCH
  static const bool use_avx2 = have_avx2_demap();
  if (use_avx2 && !g_force_scalar_demap) {
    done = demap_run_avx2(i_levels_.data(), q_levels_.data(), i_bits_, q_bits_,
                          bps_, symbols.data(), noise_vars.data(), symbols.size(),
                          llr_out.data());
  }
#endif
  for (std::size_t i = done; i < symbols.size(); ++i) {
    demap_soft(symbols[i], noise_vars[i], llr_out.subspan(i * bps_, bps_));
  }
}

namespace detail {
void force_scalar_demap(bool force) noexcept { g_force_scalar_demap = force; }
bool demap_simd_active() noexcept {
#ifdef MIMONET_DEMAP_X86_DISPATCH
  return have_avx2_demap() && !g_force_scalar_demap;
#else
  return false;
#endif
}
}  // namespace detail

}  // namespace mimonet::mod
