#include "flowgraph/block.hpp"

namespace mimonet::flowgraph {

void Block::bind_input(std::size_t i, std::shared_ptr<BufferBase> buf) {
  if (i >= inputs_.size()) throw std::out_of_range(name_ + ": no such input port");
  if (buf->item_type() != in_types_[i]) {
    throw std::invalid_argument(name_ + ": input item type mismatch");
  }
  if (inputs_[i] != nullptr) {
    throw std::logic_error(name_ + ": input port already connected");
  }
  inputs_[i] = std::move(buf);
}

void Block::bind_output(std::size_t i, std::shared_ptr<BufferBase> buf) {
  if (i >= outputs_.size()) throw std::out_of_range(name_ + ": no such output port");
  if (buf->item_type() != out_types_[i]) {
    throw std::invalid_argument(name_ + ": output item type mismatch");
  }
  if (outputs_[i] != nullptr) {
    throw std::logic_error(name_ + ": output port already connected");
  }
  outputs_[i] = std::move(buf);
}

bool Block::fully_connected() const noexcept {
  for (const auto& b : inputs_) {
    if (b == nullptr) return false;
  }
  for (const auto& b : outputs_) {
    if (b == nullptr) return false;
  }
  return true;
}

void Block::finish_outputs() noexcept {
  for (const auto& b : outputs_) {
    if (b != nullptr) b->mark_done();
  }
}

}  // namespace mimonet::flowgraph
