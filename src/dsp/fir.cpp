#include "dsp/fir.hpp"

#include <cmath>
#include <stdexcept>

namespace mimonet::dsp {

FirFilter::FirFilter(std::vector<cf32> taps) : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
  delay_.assign(taps_.size(), cf32{0.0F, 0.0F});
}

std::vector<cf32> FirFilter::process(std::span<const cf32> in) {
  std::vector<cf32> out(in.size());
  const std::size_t n_taps = taps_.size();
  for (std::size_t i = 0; i < in.size(); ++i) {
    delay_[head_] = in[i];
    cf64 acc{0.0, 0.0};
    std::size_t idx = head_;
    for (std::size_t t = 0; t < n_taps; ++t) {
      acc += cf64(taps_[t]) * cf64(delay_[idx]);
      idx = (idx == 0) ? n_taps - 1 : idx - 1;
    }
    out[i] = cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
    head_ = (head_ + 1) % n_taps;
  }
  return out;
}

void FirFilter::reset() noexcept {
  for (auto& v : delay_) v = cf32{0.0F, 0.0F};
  head_ = 0;
}

std::vector<float> design_lowpass(double cutoff, std::size_t num_taps) {
  if (cutoff <= 0.0 || cutoff >= 0.5) {
    throw std::invalid_argument("design_lowpass: cutoff must be in (0, 0.5)");
  }
  if (num_taps % 2 == 0 || num_taps == 0) {
    throw std::invalid_argument("design_lowpass: num_taps must be odd");
  }
  std::vector<float> taps(num_taps);
  const auto window = hamming_window(num_taps);
  const auto mid = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double sinc =
        (t == 0.0) ? 2.0 * cutoff : std::sin(two_pi_d * cutoff * t) / (pi_d * t);
    taps[i] = static_cast<float>(sinc) * window[i];
    sum += taps[i];
  }
  // Normalize to unity DC gain.
  for (auto& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

std::vector<float> hann_window(std::size_t n) {
  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(
        0.5 * (1.0 - std::cos(two_pi_d * static_cast<double>(i) /
                              static_cast<double>(n == 1 ? 1 : n - 1))));
  }
  return w;
}

std::vector<float> hamming_window(std::size_t n) {
  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(
        0.54 - 0.46 * std::cos(two_pi_d * static_cast<double>(i) /
                               static_cast<double>(n == 1 ? 1 : n - 1)));
  }
  return w;
}

}  // namespace mimonet::dsp
