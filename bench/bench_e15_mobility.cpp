// E15 — Mobility / channel-aging ablation (Fig. reconstruction): PER vs
// normalized Doppler for long packets, with the pilot phase tracker on and
// off.
//
// The HT-LTF estimate is measured once per packet; under Doppler it goes
// stale. Pilot tracking corrects the *common* phase drift, which dominates
// first, so it buys roughly an order of magnitude in tolerable Doppler; the
// residual per-path amplitude rotation eventually kills the packet anyway.
// Expected shape: PER ~0 at low Doppler, a knee, then saturation at 1;
// the tracking-on knee sits at distinctly higher Doppler.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

double run_per(double doppler, bool tracking, bool dd, std::size_t payload,
               std::size_t packets, std::uint64_t seed) {
  auto cfg = core::make_link_config(4, 30.0);  // 16-QAM 3/4 SISO
  cfg.psdu_payload_bytes = payload;
  cfg.phy.phase_tracking = tracking;
  cfg.phy.decision_tracking = dd;
  cfg.channel.fading = true;
  cfg.channel.doppler_norm = doppler;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  return sim.run(packets).per.per();
}

}  // namespace

int main() {
  bench::heading("E15", "Channel aging: PER vs Doppler, phase tracking on/off");
  constexpr std::size_t kPackets = 25;
  bench::note("MCS 4, 30 dB, Rayleigh + Gauss-Markov tap evolution,");
  bench::note("%zu packets per point; fD/fs of 1e-5 ~ 200 Hz at 20 Msps", kPackets);

  std::string pts = "[";
  bool first = true;
  for (const std::size_t payload : {500U, 3000U}) {
    std::printf("\n  %zu-byte payloads (%zu data symbols)\n", payload,
                core::data_symbol_count(wifi::mcs_info(4), payload, true));
    const bench::Table table({"fD/fs", "no-trk", "CPE trk", "CPE+DD"}, 12);
    for (const double doppler : {0.0, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4}) {
      const auto seed = 150 + static_cast<std::uint64_t>(doppler * 1e7);
      const double no_trk = run_per(doppler, false, false, payload, kPackets, seed);
      const double cpe = run_per(doppler, true, false, payload, kPackets, seed);
      const double cpe_dd = run_per(doppler, true, true, payload, kPackets, seed);
      table.row({bench::sci(doppler), bench::fix(no_trk, 2), bench::fix(cpe, 2),
                 bench::fix(cpe_dd, 2)});
      char obj[224];
      std::snprintf(obj, sizeof obj,
                    "%s{\"payload_bytes\": %zu, \"doppler_norm\": %g, "
                    "\"per_no_tracking\": %.6g, \"per_cpe\": %.6g, "
                    "\"per_cpe_dd\": %.6g}",
                    first ? "" : ", ", payload, doppler, no_trk, cpe, cpe_dd);
      pts += obj;
      first = false;
    }
  }
  bench::note("expected: CPE tracking shifts the PER knee ~10x right; adding");
  bench::note("decision-directed channel tracking extends it further; long");
  bench::note("packets hit the knee at lower Doppler (more aging time)");

  bench::JsonReport report("e15_mobility");
  report.field("packets_per_point", kPackets).raw("points", pts + "]").emit();
  return 0;
}
