# Empty compiler generated dependencies file for bench_e13_arq.
# This may be replaced when dependencies are built.
