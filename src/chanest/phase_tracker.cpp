#include "chanest/phase_tracker.hpp"

#include <cmath>
#include <stdexcept>

#include "ofdm/pilots.hpp"
#include "ofdm/subcarriers.hpp"

namespace mimonet::chanest {

namespace {
constexpr double kSlopeGain = 0.25;  // first-order loop gain on the slope
}

PilotPhaseTracker::PilotPhaseTracker(const MimoChannelEstimate& est) : est_(est) {
  for (std::size_t p = 0; p < 4; ++p) {
    pilot_bins_[p] = ofdm::SubcarrierMap::logical_to_bin(ofdm::kPilotCarriers[p]);
  }
}

double PilotPhaseTracker::estimate_cpe(
    const std::vector<std::array<cf32, 4>>& rx_pilots,
    std::size_t data_symbol_index) const {
  if (rx_pilots.size() != est_.nrx) {
    throw std::invalid_argument("estimate_cpe: wrong antenna count");
  }
  dsp::cf64 acc{0.0, 0.0};
  for (std::size_t r = 0; r < est_.nrx; ++r) {
    for (std::size_t p = 0; p < 4; ++p) {
      dsp::cf64 expected{0.0, 0.0};
      for (std::size_t s = 0; s < est_.nss; ++s) {
        const auto pv = ofdm::ht_data_pilots(est_.nss, s, data_symbol_index);
        expected += dsp::cf64(est_.h[r][s][pilot_bins_[p]]) * dsp::cf64(pv[p]);
      }
      acc += dsp::cf64(rx_pilots[r][p]) * std::conj(expected);
    }
  }
  return std::arg(acc);
}

double PilotPhaseTracker::track(double raw_cpe) {
  if (!primed_) {
    primed_ = true;
    prev_phase_ = raw_cpe;
    slope_ = 0.0;
    count_ = 1;
    return raw_cpe;
  }
  // Unwrap the raw measurement to the branch nearest the prediction.
  const double predicted = prev_phase_ + slope_;
  double unwrapped = raw_cpe;
  while (unwrapped - predicted > dsp::pi_d) unwrapped -= dsp::two_pi_d;
  while (unwrapped - predicted < -dsp::pi_d) unwrapped += dsp::two_pi_d;

  const double new_slope = unwrapped - prev_phase_;
  slope_ += kSlopeGain * (new_slope - slope_);
  prev_phase_ = unwrapped;
  ++count_;
  return unwrapped;
}

double PilotPhaseTracker::residual_cfo_norm() const noexcept {
  // One symbol spans 80 samples; slope is radians/symbol.
  return slope_ / (dsp::two_pi_d * 80.0);
}

void PilotPhaseTracker::reset() noexcept {
  primed_ = false;
  prev_phase_ = 0.0;
  slope_ = 0.0;
  count_ = 0;
}

}  // namespace mimonet::chanest
