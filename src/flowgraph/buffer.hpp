// Ring buffers and stream tags for the dataflow runtime — the equivalent of
// GNU Radio's circular buffers with tag streams.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <typeindex>
#include <variant>
#include <vector>

namespace mimonet::flowgraph {

/// A tag attached to a stream item (GNU Radio's stream-tag equivalent).
struct Tag {
  std::uint64_t offset = 0;  ///< absolute item index in the stream
  std::string key;
  std::variant<std::monostate, double, std::int64_t, std::string> value;
};

/// Type-erased ring buffer base so the graph can own heterogeneous edges.
class BufferBase {
 public:
  virtual ~BufferBase() = default;
  [[nodiscard]] virtual std::type_index item_type() const noexcept = 0;
  [[nodiscard]] virtual std::size_t readable() const noexcept = 0;
  [[nodiscard]] virtual std::size_t writable() const noexcept = 0;
  [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;
  /// Upstream has finished and no more items will arrive.
  virtual void mark_done() noexcept = 0;
  [[nodiscard]] virtual bool done() const noexcept = 0;
};

/// Single-producer single-consumer ring buffer with stream tags. Thread-safe
/// for one reader + one writer (a coarse mutex keeps it simple and correct;
/// throughput is measured in E9 and is far above real-time for 20 Msps).
template <typename T>
class RingBuffer final : public BufferBase {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {}

  [[nodiscard]] std::type_index item_type() const noexcept override {
    return std::type_index(typeid(T));
  }

  [[nodiscard]] std::size_t readable() const noexcept override {
    const std::scoped_lock lk(mu_);
    return count_;
  }
  [[nodiscard]] std::size_t writable() const noexcept override {
    const std::scoped_lock lk(mu_);
    return data_.size() - count_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept override { return data_.size(); }

  /// Append up to items.size() items; returns how many were accepted.
  std::size_t write(std::span<const T> items) {
    const std::scoped_lock lk(mu_);
    const std::size_t n = std::min(items.size(), data_.size() - count_);
    for (std::size_t i = 0; i < n; ++i) {
      data_[(head_ + count_ + i) % data_.size()] = items[i];
    }
    count_ += n;
    write_offset_ += n;
    return n;
  }

  /// Copy up to `out.size()` items without consuming; returns items copied.
  std::size_t peek(std::span<T> out) const {
    const std::scoped_lock lk(mu_);
    const std::size_t n = std::min(out.size(), count_);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = data_[(head_ + i) % data_.size()];
    }
    return n;
  }

  /// Drop `n` items from the front (n <= readable()).
  void consume(std::size_t n) {
    const std::scoped_lock lk(mu_);
    const std::size_t k = std::min(n, count_);
    head_ = (head_ + k) % data_.size();
    count_ -= k;
    read_offset_ += k;
    // Garbage-collect tags that fell behind the read offset.
    while (!tags_.empty() && tags_.front().offset < read_offset_) {
      tags_.pop_front();
    }
  }

  /// Absolute index of the next item a reader will see.
  [[nodiscard]] std::uint64_t read_offset() const noexcept {
    const std::scoped_lock lk(mu_);
    return read_offset_;
  }
  /// Absolute index the next written item will get.
  [[nodiscard]] std::uint64_t write_offset() const noexcept {
    const std::scoped_lock lk(mu_);
    return write_offset_;
  }

  void add_tag(Tag tag) {
    const std::scoped_lock lk(mu_);
    tags_.push_back(std::move(tag));
  }

  /// Tags whose offsets fall in [read_offset(), read_offset() + n).
  [[nodiscard]] std::vector<Tag> tags_in_next(std::size_t n) const {
    const std::scoped_lock lk(mu_);
    std::vector<Tag> out;
    for (const auto& t : tags_) {
      if (t.offset >= read_offset_ && t.offset < read_offset_ + n) out.push_back(t);
    }
    return out;
  }

  void mark_done() noexcept override {
    const std::scoped_lock lk(mu_);
    done_ = true;
  }
  [[nodiscard]] bool done() const noexcept override {
    const std::scoped_lock lk(mu_);
    return done_ && count_ == 0;
  }
  /// Done flag regardless of remaining items (writer finished).
  [[nodiscard]] bool writer_done() const noexcept {
    const std::scoped_lock lk(mu_);
    return done_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t read_offset_ = 0;
  std::uint64_t write_offset_ = 0;
  std::deque<Tag> tags_;
  bool done_ = false;
};

}  // namespace mimonet::flowgraph
