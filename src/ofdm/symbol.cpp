#include "ofdm/symbol.hpp"

#include <stdexcept>

namespace mimonet::ofdm {

SymbolModulator::SymbolModulator(CarrierPlan plan) : map_(plan), fft_(kFftSize) {}

void SymbolModulator::modulate(std::span<const cf32> data, std::span<const cf32, 4> pilots,
                               std::vector<cf32>& out, int csd_samples) const {
  std::vector<cf32> time_scratch;
  modulate(data, pilots, out, csd_samples, time_scratch);
}

void SymbolModulator::modulate(std::span<const cf32> data, std::span<const cf32, 4> pilots,
                               std::vector<cf32>& out, int csd_samples,
                               std::vector<cf32>& time_scratch) const {
  if (data.size() != map_.num_data()) {
    throw std::invalid_argument("SymbolModulator: wrong data subcarrier count");
  }
  std::array<cf32, kFftSize> grid{};
  for (std::size_t i = 0; i < data.size(); ++i) grid[map_.data_bins()[i]] = data[i];
  for (std::size_t p = 0; p < pilots.size(); ++p) grid[map_.pilot_bins()[p]] = pilots[p];
  if (csd_samples != 0) cyclic_shift_grid(grid, csd_samples);
  modulate_grid(fft_, grid, kCpLen, out, time_scratch);
}

void cyclic_shift_grid(std::span<cf32> grid, int shift_samples) noexcept {
  if (shift_samples == 0) return;
  const auto n = static_cast<int>(grid.size());
  for (int b = 0; b < n; ++b) {
    const double theta = -dsp::two_pi_d * static_cast<double>(b) *
                         static_cast<double>(shift_samples) / static_cast<double>(n);
    const dsp::cf64 y = dsp::cf64(grid[static_cast<std::size_t>(b)]) * dsp::phasor_d(theta);
    grid[static_cast<std::size_t>(b)] =
        cf32(static_cast<float>(y.real()), static_cast<float>(y.imag()));
  }
}

void SymbolModulator::modulate_grid(const dsp::FftPlan& plan, std::span<const cf32> grid,
                                    std::size_t cp_len, std::vector<cf32>& out) {
  std::vector<cf32> time_scratch;
  modulate_grid(plan, grid, cp_len, out, time_scratch);
}

void SymbolModulator::modulate_grid(const dsp::FftPlan& plan, std::span<const cf32> grid,
                                    std::size_t cp_len, std::vector<cf32>& out,
                                    std::vector<cf32>& time_scratch) {
  auto& time = time_scratch;
  time.resize(plan.size());
  plan.inverse(grid, time);
  // Scale so mean occupied-subcarrier power maps to unit-ish sample power is
  // left to the caller; here we keep the plain 1/N IFFT convention.
  const std::size_t base = out.size();
  out.resize(base + cp_len + plan.size());
  for (std::size_t i = 0; i < cp_len; ++i) {
    out[base + i] = time[plan.size() - cp_len + i];
  }
  for (std::size_t i = 0; i < plan.size(); ++i) {
    out[base + cp_len + i] = time[i];
  }
}

SymbolDemodulator::SymbolDemodulator(CarrierPlan plan) : map_(plan), fft_(kFftSize) {}

void SymbolDemodulator::demodulate_into(std::span<const cf32> symbol, DemodSymbol& out,
                                        std::vector<cf32>& grid_scratch) const {
  demodulate_grid_into(symbol, grid_scratch);
  out.data.resize(map_.num_data());
  for (std::size_t i = 0; i < out.data.size(); ++i) {
    out.data[i] = grid_scratch[map_.data_bins()[i]];
  }
  for (std::size_t p = 0; p < 4; ++p) {
    out.pilots[p] = grid_scratch[map_.pilot_bins()[p]];
  }
}

DemodSymbol SymbolDemodulator::demodulate(std::span<const cf32> symbol) const {
  DemodSymbol out;
  std::vector<cf32> grid_scratch;
  demodulate_into(symbol, out, grid_scratch);
  return out;
}

void SymbolDemodulator::demodulate_grid_into(std::span<const cf32> symbol,
                                             std::vector<cf32>& grid) const {
  if (symbol.size() != kSymLen) {
    throw std::invalid_argument("SymbolDemodulator: expected 80-sample symbol");
  }
  grid.resize(kFftSize);
  fft_.forward(symbol.subspan(kCpLen, kFftSize), grid);
}

void SymbolDemodulator::demodulate_grids_into(std::span<const cf32> samples,
                                              std::size_t n,
                                              std::span<cf32> grids) const {
  fft_.forward_batch_strided(samples, n, kSymLen, kCpLen, grids);
}

std::vector<cf32> SymbolDemodulator::demodulate_grid(std::span<const cf32> symbol) const {
  std::vector<cf32> grid;
  demodulate_grid_into(symbol, grid);
  return grid;
}

}  // namespace mimonet::ofdm
