// 802.11n BCC interleaver for 20 MHz (clause 20.3.11.8.3): two intra-stream
// permutations plus the third "frequency rotation" permutation across
// spatial streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mimonet::wifi {

/// Bit interleaver for one spatial stream of one OFDM symbol.
///
/// Block size is N_CBPSS = 52 * n_bpscs coded bits. The permutation table is
/// precomputed at construction; interleave/deinterleave are then O(n) copies.
class Interleaver {
 public:
  /// @param n_bpscs coded bits per subcarrier per stream (1, 2, 4 or 6)
  /// @param iss     0-based spatial stream index
  /// @param nss     total spatial streams (enables the rotation for nss > 1)
  Interleaver(unsigned n_bpscs, std::size_t iss, std::size_t nss);

  [[nodiscard]] std::size_t block_size() const noexcept { return perm_.size(); }

  /// TX direction: input bit k lands at output position perm[k].
  /// Input size must be a multiple of block_size().
  [[nodiscard]] std::vector<std::uint8_t> interleave(
      std::span<const std::uint8_t> bits) const;

  /// RX direction for hard bits.
  [[nodiscard]] std::vector<std::uint8_t> deinterleave(
      std::span<const std::uint8_t> bits) const;

  /// RX direction for soft values (LLRs).
  [[nodiscard]] std::vector<float> deinterleave(std::span<const float> llrs) const;

  /// interleave into caller storage (resized, capacity kept).
  void interleave_into(std::span<const std::uint8_t> bits,
                       std::vector<std::uint8_t>& out) const;

  /// deinterleave (soft) into caller storage (resized, capacity kept).
  void deinterleave_into(std::span<const float> llrs, std::vector<float>& out) const;

  /// deinterleave (soft) into a caller span of exactly llrs.size() floats.
  /// Runtime-dispatches to an AVX2 i32-gather kernel when available; the
  /// scalar fallback is the same permutation copy and bit-identical — see
  /// detail::force_scalar_deinterleave.
  void deinterleave_into(std::span<const float> llrs, std::span<float> out) const;

  /// The permutation itself: output_position = permutation()[input_position].
  [[nodiscard]] const std::vector<std::size_t>& permutation() const noexcept {
    return perm_;
  }

 private:
  std::vector<std::size_t> perm_;
  std::vector<std::int32_t> perm32_;  // perm_ as i32 gather indices
};

/// The legacy 802.11a interleaver (clause 17.3.5.7), used by the L-SIG and
/// HT-SIG symbols which ride on the 48-data-carrier legacy plan.
class LegacyInterleaver {
 public:
  explicit LegacyInterleaver(unsigned n_bpsc);

  [[nodiscard]] std::size_t block_size() const noexcept { return perm_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> interleave(
      std::span<const std::uint8_t> bits) const;
  [[nodiscard]] std::vector<float> deinterleave(std::span<const float> llrs) const;

  /// interleave into caller storage (resized, capacity kept).
  void interleave_into(std::span<const std::uint8_t> bits,
                       std::vector<std::uint8_t>& out) const;

  /// deinterleave (soft) into caller storage (resized, capacity kept).
  void deinterleave_into(std::span<const float> llrs, std::vector<float>& out) const;

 private:
  std::vector<std::size_t> perm_;
};

/// Process-wide cache of HT interleavers keyed by (n_bpscs, iss, nss).
/// Construction is synchronized; the returned reference is immutable and
/// safe to use concurrently.
[[nodiscard]] const Interleaver& cached_interleaver(unsigned n_bpscs, std::size_t iss,
                                                    std::size_t nss);

/// Process-wide cache of legacy interleavers keyed by n_bpsc.
[[nodiscard]] const LegacyInterleaver& cached_legacy_interleaver(unsigned n_bpsc);

namespace detail {
/// Test hook: pin Interleaver soft deinterleaving to the scalar copy so
/// SIMD-vs-scalar bit identity can be asserted on AVX2 hosts.
void force_scalar_deinterleave(bool force) noexcept;
/// True when the AVX2 gather kernel would actually run on this host.
[[nodiscard]] bool deinterleave_simd_active() noexcept;
}  // namespace detail

}  // namespace mimonet::wifi
