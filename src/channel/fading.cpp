#include "channel/fading.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace mimonet::channel {

namespace {

// Cholesky factor (lower triangular) of the exponential correlation matrix
// R[i][j] = rho^|i-j|, n <= 4. Used to color i.i.d. Gaussians per the
// Kronecker model.
std::vector<std::vector<double>> corr_cholesky(std::size_t n, double rho) {
  std::vector<std::vector<double>> r(n, std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      r[i][j] = std::pow(rho, std::abs(static_cast<double>(i) - static_cast<double>(j)));
    }
  }
  std::vector<std::vector<double>> l(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = r[i][j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i][k] * l[j][k];
      if (i == j) {
        if (sum <= 0.0) throw std::runtime_error("corr_cholesky: not positive definite");
        l[i][j] = std::sqrt(sum);
      } else {
        l[i][j] = sum / l[j][j];
      }
    }
  }
  return l;
}

}  // namespace

std::size_t profile_taps(DelayProfile p) noexcept {
  switch (p) {
    case DelayProfile::kFlat: return 1;
    case DelayProfile::kShort: return 3;
    case DelayProfile::kTypical: return 6;
    case DelayProfile::kLong: return 12;
  }
  return 1;
}

std::vector<double> profile_powers(DelayProfile p) {
  const std::size_t n = profile_taps(p);
  std::vector<double> powers(n);
  if (n == 1) {
    powers[0] = 1.0;
    return powers;
  }
  // Exponential decay with per-tap ratio chosen so the tail is ~-15 dB.
  const double decay = std::pow(10.0, -15.0 / 10.0 / static_cast<double>(n - 1));
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    powers[i] = std::pow(decay, static_cast<double>(i));
    total += powers[i];
  }
  for (auto& pw : powers) pw /= total;
  return powers;
}

std::vector<std::vector<std::vector<cf32>>> ChannelRealization::frequency_response(
    std::size_t nfft) const {
  const dsp::FftPlan plan(nfft);
  std::vector<std::vector<std::vector<cf32>>> h(
      nrx, std::vector<std::vector<cf32>>(ntx));
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t t = 0; t < ntx; ++t) {
      std::vector<cf32> padded(nfft, cf32{0.0F, 0.0F});
      const auto& tap = taps[r][t];
      if (tap.size() > nfft) throw std::invalid_argument("frequency_response: nfft too small");
      std::copy(tap.begin(), tap.end(), padded.begin());
      plan.forward(padded);
      h[r][t] = std::move(padded);
    }
  }
  return h;
}

FadingGenerator::FadingGenerator(std::size_t ntx, std::size_t nrx, DelayProfile profile,
                                 std::uint64_t seed, double rho_tx, double rho_rx)
    : ntx_(ntx),
      nrx_(nrx),
      powers_(profile_powers(profile)),
      rho_tx_(rho_tx),
      rho_rx_(rho_rx),
      gauss_(seed, 1.0) {
  if (ntx == 0 || nrx == 0 || ntx > 4 || nrx > 4) {
    throw std::invalid_argument("FadingGenerator: antenna counts must be 1..4");
  }
  if (rho_tx < 0.0 || rho_tx >= 1.0 || rho_rx < 0.0 || rho_rx >= 1.0) {
    throw std::invalid_argument("FadingGenerator: correlation must be in [0, 1)");
  }
}

ChannelRealization FadingGenerator::next() {
  const auto l_rx = corr_cholesky(nrx_, rho_rx_);
  const auto l_tx = corr_cholesky(ntx_, rho_tx_);

  ChannelRealization out;
  out.ntx = ntx_;
  out.nrx = nrx_;
  out.taps.assign(nrx_, std::vector<std::vector<cf32>>(
                            ntx_, std::vector<cf32>(powers_.size())));

  for (std::size_t tap = 0; tap < powers_.size(); ++tap) {
    // i.i.d. CN(0, p_tap) matrix G, then H = L_rx * G * L_tx^T.
    std::vector<std::vector<dsp::cf64>> g(nrx_, std::vector<dsp::cf64>(ntx_));
    const double sigma = std::sqrt(powers_[tap]);
    for (auto& row : g) {
      for (auto& v : row) {
        const cf32 s = gauss_.sample();
        v = dsp::cf64(s.real() * sigma, s.imag() * sigma);
      }
    }
    for (std::size_t r = 0; r < nrx_; ++r) {
      for (std::size_t t = 0; t < ntx_; ++t) {
        dsp::cf64 acc{0.0, 0.0};
        for (std::size_t a = 0; a < nrx_; ++a) {
          for (std::size_t b = 0; b < ntx_; ++b) {
            acc += l_rx[r][a] * g[a][b] * l_tx[t][b];
          }
        }
        out.taps[r][t][tap] =
            cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
      }
    }
  }
  return out;
}

ChannelRealization identity_channel(std::size_t n) {
  ChannelRealization out;
  out.ntx = n;
  out.nrx = n;
  out.taps.assign(n, std::vector<std::vector<cf32>>(n, std::vector<cf32>(1)));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t t = 0; t < n; ++t) {
      out.taps[r][t][0] = (r == t) ? cf32{1.0F, 0.0F} : cf32{0.0F, 0.0F};
    }
  }
  return out;
}

}  // namespace mimonet::channel
