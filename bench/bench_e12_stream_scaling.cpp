// E12 — Spatial-multiplexing scaling (Table reconstruction): goodput and
// PER as the stream count grows 1 -> 4 on square antenna arrays.
//
// The headline claim of the paper ("significant increasing of the
// throughput without the extension of the bandwidth") extrapolated to 4
// streams. Expected shape: goodput scales ~linearly with nss at high SNR;
// the SNR needed for a target PER grows with nss (stream separation gets
// harder); extra RX antennas (nrx > nss) buy some of it back.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

struct Cell {
  double goodput;
  double per;
};

Cell run_cell(unsigned mcs, double snr, std::size_t nrx, std::size_t packets,
              std::uint64_t seed) {
  auto cfg = core::make_link_config(mcs, snr, nrx);
  cfg.psdu_payload_bytes = 1500;
  cfg.channel.fading = true;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(packets);
  return {res.throughput.goodput_mbps(), res.per.per()};
}

}  // namespace

int main() {
  bench::heading("E12", "Stream-count scaling, QPSK 1/2 family (Table)");
  constexpr std::size_t kPackets = 25;
  bench::note("MCS 1/9/17/25 (QPSK 1/2 x nss), square nss x nss Rayleigh,");
  bench::note("%zu 1500-byte packets per cell", kPackets);

  const unsigned family[] = {1, 9, 17, 25};

  std::printf("\n  Goodput (Mb/s) vs SNR\n");
  const bench::Table t1({"SNR dB", "1 str", "2 str", "3 str", "4 str"}, 10);
  for (double snr = 10.0; snr <= 35.0; snr += 5.0) {
    std::vector<std::string> cells{bench::fix(snr, 0)};
    for (const unsigned mcs : family) {
      const auto c = run_cell(mcs, snr, 0, kPackets,
                              120 + mcs);
      cells.push_back(bench::fix(c.goodput, 1));
    }
    t1.row(cells);
  }

  std::printf("\n  PER vs SNR\n");
  const bench::Table t2({"SNR dB", "1 str", "2 str", "3 str", "4 str"}, 10);
  for (double snr = 10.0; snr <= 35.0; snr += 5.0) {
    std::vector<std::string> cells{bench::fix(snr, 0)};
    for (const unsigned mcs : family) {
      const auto c = run_cell(mcs, snr, 0, kPackets,
                              120 + mcs);
      cells.push_back(bench::fix(c.per, 2));
    }
    t2.row(cells);
  }

  std::printf("\n  Receive diversity: 2-stream PER with nrx = 2 vs 3 vs 4\n");
  const bench::Table t3({"SNR dB", "2x2", "2x3", "2x4"}, 10);
  for (double snr = 8.0; snr <= 20.0; snr += 3.0) {
    std::vector<std::string> cells{bench::fix(snr, 0)};
    for (const std::size_t nrx : {2U, 3U, 4U}) {
      const auto c = run_cell(9, snr, nrx, kPackets,
                              320 + nrx);
      cells.push_back(bench::fix(c.per, 2));
    }
    t3.row(cells);
  }
  bench::note("expected: ~nss x goodput at 35 dB; PER curves shift right with");
  bench::note("nss; each extra RX antenna shifts the 2-stream curve left");
  return 0;
}
