#!/usr/bin/env bash
# Full local verification matrix: plain, ASan+UBSan, and TSan builds, each
# running the complete ctest suite (unit tests, stress harness, integration).
# This is the correctness gate every performance PR runs against:
#
#   scripts/check.sh            # all three configurations + bench smokes
#   scripts/check.sh plain      # just the plain build
#   scripts/check.sh asan tsan  # any subset, in order
#   scripts/check.sh bench-smoke  # hot-path bench on 4 packets + JSON schema + diff
#   scripts/check.sh farm-smoke   # E19 receiver-farm bench + "farm" schema
#   scripts/check.sh scan-smoke   # E20 scan bench + "scan" schema + regression diff
#   scripts/check.sh decode-smoke # E21 batched-decode bench + "decode" schema + diff
#   scripts/check.sh mu-smoke     # E22 multi-user bench + "mu" schema + diff
#   scripts/check.sh harq-smoke   # E23 HARQ/adaptation bench + "harq" schema + diff
#
# Build trees are kept per-configuration (build/, build-asan/, build-tsan/)
# so incremental re-runs are cheap.
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(plain asan tsan bench-smoke farm-smoke scan-smoke decode-smoke mu-smoke harq-smoke)
fi

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure ===="
  cmake -B "$dir" -S . "$@" > "$dir.configure.log" 2>&1 || {
    cat "$dir.configure.log"; return 1; }
  echo "==== [$name] build ===="
  cmake --build "$dir" -j > "$dir.build.log" 2>&1 || {
    tail -50 "$dir.build.log"; return 1; }
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
}

# Hot-path bench smoke: a handful of packets through bench_e17_hotpath, then
# a schema check on the emitted BENCH_hotpath.json. Catches both a broken
# hot path (the bench fails if any packet fails to decode) and a broken
# JSON emitter before a real perf run wastes an hour on it.
run_bench_smoke() {
  echo "==== [bench-smoke] build ===="
  cmake -B build -S . > build.configure.log 2>&1 || {
    cat build.configure.log; return 1; }
  cmake --build build -j --target bench_e17_hotpath > build.build.log 2>&1 || {
    tail -50 build.build.log; return 1; }
  echo "==== [bench-smoke] run (4 packets) ===="
  local tmp
  tmp="$(mktemp -d)"
  MIMONET_BENCH_PACKETS=4 MIMONET_BENCH_JSON_DIR="$tmp" \
    ./build/bench/bench_e17_hotpath || { rm -rf "$tmp"; return 1; }
  echo "==== [bench-smoke] validate BENCH_hotpath.json ===="
  python3 - "$tmp/BENCH_hotpath.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    d = json.load(f)
for key in ("bench", "baseline_commit", "timed_packets", "payload_bytes",
            "n_threads", "cases", "all_packets_decoded"):
    assert key in d, f"missing key: {key}"
assert d["bench"] == "hotpath"
assert isinstance(d["cases"], list) and len(d["cases"]) == 2, "want 2 cases"
for c in d["cases"]:
    for key in ("bench", "mcs", "samples_per_sec", "packets_per_sec",
                "baseline_samples_per_sec", "speedup_vs_baseline",
                "decode_failures"):
        assert key in c, f"missing case key: {key}"
    assert c["samples_per_sec"] > 0, "non-positive sample rate"
    assert c["decode_failures"] == 0, "decode failures in smoke run"
print("BENCH_hotpath.json schema OK")
EOF
  local rc=$?
  if [ "$rc" -ne 0 ]; then rm -rf "$tmp"; return "$rc"; fi
  echo "==== [bench-smoke] diff vs committed baseline ===="
  # 4-packet e2e timings are noisy; the loose threshold only catches a
  # catastrophic hot-path regression, the committed baseline tracks real runs.
  python3 scripts/bench_diff.py "$tmp/BENCH_hotpath.json" \
    --threshold "${MIMONET_HOTPATH_SMOKE_THRESHOLD:-0.5}"
  rc=$?
  rm -rf "$tmp"
  return "$rc"
}

# Receiver-farm smoke: a few packets through bench_e19_farm (which asserts
# sharded scans stay bit-identical to the sequential baseline), then a
# schema check on the "farm" saturation table merged into BENCH_stream.json.
run_farm_smoke() {
  echo "==== [farm-smoke] build ===="
  cmake -B build -S . > build.configure.log 2>&1 || {
    cat build.configure.log; return 1; }
  cmake --build build -j --target bench_e19_farm > build.build.log 2>&1 || {
    tail -50 build.build.log; return 1; }
  echo "==== [farm-smoke] run (6 packets, 4 streams) ===="
  local tmp
  tmp="$(mktemp -d)"
  MIMONET_BENCH_PACKETS=6 MIMONET_BENCH_STREAMS=4 MIMONET_BENCH_JSON_DIR="$tmp" \
    ./build/bench/bench_e19_farm || { rm -rf "$tmp"; return 1; }
  echo "==== [farm-smoke] validate BENCH_stream.json farm table ===="
  python3 - "$tmp/BENCH_stream.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["bench"] == "stream"
farm = d["farm"]
for key in ("hardware_concurrency", "packets_per_capture", "streams",
            "sharded", "base_station", "all_exact"):
    assert key in farm, f"missing farm key: {key}"
assert farm["all_exact"] is True, "farm results diverged from baseline"
for mode in ("sharded", "base_station"):
    rows = farm[mode]
    assert isinstance(rows, list) and len(rows) >= 2, f"want {mode} rows"
    for r in rows:
        assert r["workers"] >= 1
        assert r["packets_per_sec"] > 0, "non-positive rate"
    assert rows[0]["workers"] == 1, "first row must be the 1-worker baseline"
for r in farm["sharded"]:
    assert r["bit_identical"] is True, "sharded scan not bit-identical"
print("BENCH_stream.json farm schema OK")
EOF
  local rc=$?
  rm -rf "$tmp"
  return "$rc"
}

# Front-end scan smoke: a few packets through bench_e20_scan (which asserts
# the two-pass scan's records match the exhaustive scan and that the coarse
# pass clears the 20 Msamp/s real-time bar), a schema check on the "scan"
# table merged into BENCH_stream.json, then scripts/bench_diff.py against
# the committed baseline — >20% scan-throughput regression fails the job.
run_scan_smoke() {
  echo "==== [scan-smoke] build ===="
  cmake -B build -S . > build.configure.log 2>&1 || {
    cat build.configure.log; return 1; }
  cmake --build build -j --target bench_e20_scan > build.build.log 2>&1 || {
    tail -50 build.build.log; return 1; }
  echo "==== [scan-smoke] run (4 packets) ===="
  local tmp
  tmp="$(mktemp -d)"
  MIMONET_BENCH_PACKETS=4 MIMONET_BENCH_JSON_DIR="$tmp" \
    ./build/bench/bench_e20_scan || { rm -rf "$tmp"; return 1; }
  echo "==== [scan-smoke] validate BENCH_stream.json scan table ===="
  python3 - "$tmp/BENCH_stream.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["bench"] == "stream"
scan = d["scan"]
for key in ("packets_per_capture", "decimation", "simd_active", "cases",
            "coarse_2x2_clean_msamp_s", "meets_20msps_bar"):
    assert key in scan, f"missing scan key: {key}"
assert scan["meets_20msps_bar"] is True, "coarse pass below 20 Msamp/s"
cases = scan["cases"]
assert isinstance(cases, list) and len(cases) == 3, "want 3 scan cases"
for c in cases:
    for key in ("bench", "mcs", "coarse_msamp_s", "full_kernel_msamp_s",
                "full_kernel_scalar_msamp_s", "e2e_exhaustive_msamp_s",
                "e2e_twopass_msamp_s", "delivered", "records_identical"):
        assert key in c, f"missing scan case key: {key}"
    assert c["coarse_msamp_s"] > 0, "non-positive coarse rate"
    assert c["records_identical"] is True, "two-pass records diverged"
print("BENCH_stream.json scan schema OK")
EOF
  local rc=$?
  if [ "$rc" -ne 0 ]; then rm -rf "$tmp"; return "$rc"; fi
  echo "==== [scan-smoke] diff vs committed baseline ===="
  python3 scripts/bench_diff.py "$tmp/BENCH_stream.json"
  rc=$?
  rm -rf "$tmp"
  return "$rc"
}

# Batched-decode smoke: a few receives through bench_e21_decode, which
# itself asserts (a) the batched symbol-plane decode stays record-identical
# to the per-symbol reference path and (b) the batched eq/demap/deinterleave
# kernels clear the 20 Msamp/s-equivalent bar (MIMONET_DECODE_KERNEL_MSPS
# overrides the bar for slow CI hardware). Then a schema check on the
# "decode" table merged into BENCH_hotpath.json and a loose regression diff.
run_decode_smoke() {
  echo "==== [decode-smoke] build ===="
  cmake -B build -S . > build.configure.log 2>&1 || {
    cat build.configure.log; return 1; }
  cmake --build build -j --target bench_e21_decode > build.build.log 2>&1 || {
    tail -50 build.build.log; return 1; }
  echo "==== [decode-smoke] run (4 receives) ===="
  local tmp
  tmp="$(mktemp -d)"
  MIMONET_BENCH_PACKETS=4 MIMONET_BENCH_JSON_DIR="$tmp" \
    ./build/bench/bench_e21_decode || { rm -rf "$tmp"; return 1; }
  echo "==== [decode-smoke] validate BENCH_hotpath.json decode table ===="
  python3 - "$tmp/BENCH_hotpath.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["bench"] == "hotpath"
dec = d["decode"]
for key in ("timed_receives", "payload_bytes", "chunk_symbols", "demap_simd",
            "deint_simd", "cases", "stages", "kernel_bar_msamp_s",
            "kernels_meet_bar", "all_records_identical"):
    assert key in dec, f"missing decode key: {key}"
assert dec["kernels_meet_bar"] is True, "batched kernels below the bar"
assert dec["all_records_identical"] is True, \
    "batched decode diverged from the per-symbol path"
cases = dec["cases"]
assert isinstance(cases, list) and len(cases) == 2, "want 2 decode cases"
for c in cases:
    for key in ("bench", "mcs", "batched_samples_per_sec",
                "per_symbol_samples_per_sec", "batched_over_per_symbol",
                "speedup_vs_baseline", "records_identical",
                "decode_failures"):
        assert key in c, f"missing decode case key: {key}"
    assert c["batched_samples_per_sec"] > 0, "non-positive decode rate"
    assert c["records_identical"] is True, "decode record diverged"
    assert c["decode_failures"] == 0, "decode failures in smoke run"
stages = dec["stages"]
for key in ("fft_msamp_s", "eq_msamp_s", "demap_msamp_s", "deint_msamp_s",
            "viterbi_msamp_s"):
    assert key in stages and stages[key] > 0, f"bad stage figure: {key}"
print("BENCH_hotpath.json decode schema OK")
EOF
  local rc=$?
  if [ "$rc" -ne 0 ]; then rm -rf "$tmp"; return "$rc"; fi
  echo "==== [decode-smoke] diff vs committed baseline ===="
  python3 scripts/bench_diff.py "$tmp/BENCH_hotpath.json" \
    --threshold "${MIMONET_HOTPATH_SMOKE_THRESHOLD:-0.5}"
  rc=$?
  rm -rf "$tmp"
  return "$rc"
}

# Multi-user smoke: a reduced-packet run of bench_e22_mu, which itself
# asserts the MU acceptance shape (fresh-CSI 2-user per-user throughput
# >= 80% of single-link, monotonic sum-throughput degradation with CSI
# staleness). Then a schema check on BENCH_mu.json and a regression diff
# against the committed baseline — >20% fresh-CSI sum-throughput loss fails
# full runs; the reduced smoke run gets a looser, env-overridable bar since
# its per-point PER is quantized to a handful of packets.
run_mu_smoke() {
  echo "==== [mu-smoke] build ===="
  cmake -B build -S . > build.configure.log 2>&1 || {
    cat build.configure.log; return 1; }
  cmake --build build -j --target bench_e22_mu > build.build.log 2>&1 || {
    tail -50 build.build.log; return 1; }
  echo "==== [mu-smoke] run (12 packets per point) ===="
  local tmp
  tmp="$(mktemp -d)"
  MIMONET_BENCH_PACKETS=12 MIMONET_BENCH_JSON_DIR="$tmp" \
    ./build/bench/bench_e22_mu || { rm -rf "$tmp"; return 1; }
  echo "==== [mu-smoke] validate BENCH_mu.json ===="
  python3 - "$tmp/BENCH_mu.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    d = json.load(f)
for key in ("bench", "packets_per_point", "mcs", "snr_db", "doppler_norm",
            "downlink", "uplink"):
    assert key in d, f"missing key: {key}"
assert d["bench"] == "mu"
dl = d["downlink"]
assert isinstance(dl, list) and len(dl) == 9, "want 3 users x 3 staleness"
for p in dl:
    for key in ("users", "stale_symbols", "sum_throughput_mbps", "per",
                "sinr_db"):
        assert key in p, f"missing downlink key: {key}"
    assert p["users"] in (1, 2, 4)
    assert p["stale_symbols"] in (0, 4, 16)
    assert 0.0 <= p["per"] <= 1.0
fresh = {p["users"]: p for p in dl if p["stale_symbols"] == 0}
assert fresh[2]["sum_throughput_mbps"] > fresh[1]["sum_throughput_mbps"], \
    "2-user fresh-CSI sum throughput below single-link"
ul = d["uplink"]
assert isinstance(ul, list) and len(ul) == 3, "want 3 uplink points"
for p in ul:
    for key in ("users", "sum_throughput_mbps", "per", "sinr_db"):
        assert key in p, f"missing uplink key: {key}"
    assert p["sum_throughput_mbps"] > 0, "non-positive uplink throughput"
print("BENCH_mu.json schema OK")
EOF
  local rc=$?
  if [ "$rc" -ne 0 ]; then rm -rf "$tmp"; return "$rc"; fi
  echo "==== [mu-smoke] diff vs committed baseline ===="
  python3 scripts/bench_diff.py "$tmp/BENCH_mu.json" \
    --threshold "${MIMONET_MU_SMOKE_THRESHOLD:-0.4}"
  rc=$?
  rm -rf "$tmp"
  return "$rc"
}

# HARQ/adaptation smoke: a full-count run of bench_e23_harq — unlike the
# perf smokes this bench is a deterministic link simulation, not a
# wall-clock timing, so the full default sweep runs in about a second and
# reruns are bit-identical. The binary itself asserts the two load-bearing
# shapes (chase combining delivers at the pinned cliff SNR where standalone
# retries cannot; the evidence controller out-earns the blind failure-count
# baseline under pulsed interference) and exits nonzero if either fails.
# Then a schema check on BENCH_harq.json and the regression diff — >20%
# goodput loss at the cliff or in the campaign fails the job.
run_harq_smoke() {
  echo "==== [harq-smoke] build ===="
  cmake -B build -S . > build.configure.log 2>&1 || {
    cat build.configure.log; return 1; }
  cmake --build build -j --target bench_e23_harq > build.build.log 2>&1 || {
    tail -50 build.build.log; return 1; }
  echo "==== [harq-smoke] run (full deterministic sweep) ===="
  local tmp
  tmp="$(mktemp -d)"
  MIMONET_BENCH_JSON_DIR="$tmp" \
    ./build/bench/bench_e23_harq || { rm -rf "$tmp"; return 1; }
  echo "==== [harq-smoke] validate BENCH_harq.json ===="
  python3 - "$tmp/BENCH_harq.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    d = json.load(f)
for key in ("bench", "msdus_per_point", "campaign_msdus", "payload_bytes",
            "mcs", "cliff_snr_db", "max_retries", "shape_ok", "points",
            "interference"):
    assert key in d, f"missing key: {key}"
assert d["bench"] == "harq"
assert d["shape_ok"] is True, "bench shape assertions failed"
pts = d["points"]
assert isinstance(pts, list) and len(pts) == 18, "want 6 SNRs x 3 policies"
policies = {"standalone", "chase", "chase_evidence"}
for p in pts:
    for key in ("snr_db", "policy", "delivered", "lost", "goodput_mbps",
                "avg_attempts", "harq_combined_ok", "mcs_fallbacks",
                "interference_holds", "final_mcs"):
        assert key in p, f"missing point key: {key}"
    assert p["policy"] in policies
cliff = {p["policy"]: p for p in pts if p["snr_db"] == d["cliff_snr_db"]}
assert cliff["chase"]["delivered"] > cliff["standalone"]["delivered"], \
    "chase combining no better than standalone at the cliff"
assert cliff["chase"]["harq_combined_ok"] > 0, \
    "no combined decodes at the cliff"
camp = {p["policy"]: p for p in d["interference"]}
assert set(camp) == policies, "want all 3 campaign policies"
assert camp["chase_evidence"]["goodput_mbps"] >= \
    camp["standalone"]["goodput_mbps"], \
    "evidence policy below the failure-count baseline under interference"
assert camp["chase_evidence"]["interference_holds"] > 0, \
    "evidence policy logged no interference holds"
print("BENCH_harq.json schema OK")
EOF
  local rc=$?
  if [ "$rc" -ne 0 ]; then rm -rf "$tmp"; return "$rc"; fi
  echo "==== [harq-smoke] diff vs committed baseline ===="
  python3 scripts/bench_diff.py "$tmp/BENCH_harq.json"
  rc=$?
  rm -rf "$tmp"
  return "$rc"
}

for cfg in "${configs[@]}"; do
  case "$cfg" in
    plain)
      run_config plain build ;;
    asan)
      # halt_on_error keeps UBSan findings fatal even where
      # -fno-sanitize-recover is not honored by the toolchain.
      UBSAN_OPTIONS="print_stacktrace=1" \
      run_config asan+ubsan build-asan -DMIMONET_ASAN=ON -DMIMONET_UBSAN=ON ;;
    tsan)
      run_config tsan build-tsan -DMIMONET_TSAN=ON ;;
    bench-smoke)
      run_bench_smoke ;;
    farm-smoke)
      run_farm_smoke ;;
    scan-smoke)
      run_scan_smoke ;;
    decode-smoke)
      run_decode_smoke ;;
    mu-smoke)
      run_mu_smoke ;;
    harq-smoke)
      run_harq_smoke ;;
    *)
      echo "unknown config: $cfg (want plain|asan|tsan|bench-smoke|farm-smoke|scan-smoke|decode-smoke|mu-smoke|harq-smoke)" >&2
      exit 2 ;;
  esac
done

echo "==== all requested configurations clean ===="
