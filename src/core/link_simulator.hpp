// Monte-Carlo link-level harness: Transmitter -> MimoChannel -> Receiver,
// with BER/PER/throughput accounting. Every experiment bench builds on this.
//
// The engine is a deterministic parallel Monte-Carlo simulator: packets are
// identified by their global index, every random draw for packet p derives
// from (LinkConfig::seed, p), and partial results are folded together in
// packet order on the calling thread — so LinkResult aggregates are
// bit-identical for any n_threads, including n_threads = 1.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "channel/mimo_channel.hpp"
#include "core/phy_config.hpp"
#include "dsp/stats.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "metrics/counters.hpp"
#include "metrics/rx_error.hpp"

namespace mimonet::core {

/// One simulated link.
struct LinkConfig {
  PhyConfig phy{};
  channel::ChannelConfig channel{};
  std::size_t psdu_payload_bytes = 1000;  ///< payload inside the MAC frame
  std::uint64_t seed = 1;

  class Builder;
  /// Start a fluent builder: LinkConfig::make().mcs(8).snr_db(20).build().
  [[nodiscard]] static Builder make();
};

/// Fluent construction of a LinkConfig. mcs() picks the antenna setup the
/// MCS implies (nss x nss) the way make_link_config does; every other
/// setter overrides one knob. build() (or implicit conversion) assembles.
class LinkConfig::Builder {
 public:
  Builder& mcs(unsigned m) { mcs_ = m; return *this; }
  Builder& snr_db(double db) { snr_db_ = db; return *this; }
  Builder& seed(std::uint64_t s) { seed_ = s; return *this; }
  /// TX antennas / spatial streams; must match the MCS's stream count.
  /// Defaults to the MCS's nss.
  Builder& nss(std::size_t n) { nss_ = n; return *this; }
  /// RX antennas; defaults to the stream count (square array).
  Builder& nrx(std::size_t n) { nrx_ = n; return *this; }
  Builder& payload_bytes(std::size_t n) { payload_bytes_ = n; return *this; }
  Builder& fading(bool on = true,
                  channel::DelayProfile p = channel::DelayProfile::kFlat) {
    fading_ = on;
    profile_ = p;
    return *this;
  }
  Builder& equalizer(eq::EqualizerType t) { equalizer_ = t; return *this; }
  Builder& cfo_norm(double c) { cfo_norm_ = c; return *this; }
  Builder& doppler_norm(double d) { doppler_norm_ = d; return *this; }
  Builder& stbc(bool on = true) { stbc_ = on; return *this; }
  Builder& fec(bool on) { fec_enabled_ = on; return *this; }

  [[nodiscard]] LinkConfig build() const;
  operator LinkConfig() const { return build(); }  // NOLINT(google-explicit-constructor)

 private:
  unsigned mcs_ = 0;
  double snr_db_ = 30.0;
  std::uint64_t seed_ = 1;
  std::size_t nss_ = 0;  // 0 = from MCS
  std::size_t nrx_ = 0;  // 0 = nss
  std::size_t payload_bytes_ = 1000;
  bool fading_ = false;
  channel::DelayProfile profile_ = channel::DelayProfile::kFlat;
  std::optional<eq::EqualizerType> equalizer_;
  double cfo_norm_ = 0.0;
  double doppler_norm_ = 0.0;
  bool stbc_ = false;
  bool fec_enabled_ = true;
};

/// Aggregated results of a batch of packets. All fields are mergeable, so
/// partial results (from worker threads, sweep points, or separate runs)
/// combine losslessly.
struct LinkResult {
  metrics::BerCounter ber;        ///< over PSDU bits of packets that decoded
  metrics::PerCounter per;        ///< FCS failures + undetected packets
  metrics::ThroughputMeter throughput;
  /// Structured classification of every packet's receive outcome (kOk for
  /// clean decodes, kNoSync for undetected, kFcsFail/kTruncated/... for the
  /// failure stages) — the taxonomy behind the scalar counters above.
  metrics::RxErrorCounter rx_errors;
  std::size_t undetected = 0;     ///< sync never found the packet
  dsp::RunningStats snr_est_db;   ///< receiver's L-LTF SNR estimates
  dsp::RunningStats pilot_snr_db; ///< receiver's pilot-EVM SNR estimates
  dsp::RunningStats timing_err;   ///< packet_start error in samples
  dsp::RunningStats cfo_err;      ///< CFO estimate error, cycles/sample
  /// Post-equalization SINR per spatial stream (dB), fed from
  /// RxPacket::stream_sinr_db of every packet that reached the linear
  /// equalizer; unused streams stay at count() == 0.
  std::array<dsp::RunningStats, 4> stream_sinr_db{};
  /// ARQ/HARQ outcomes (filled by the MAC links via
  /// SelectiveRepeatLink::link_result(); zero for plain PHY Monte-Carlo
  /// runs). attempts_hist[k] counts frames finished after k transmissions
  /// (k = 0 unused, the last bucket aggregates >= 8).
  std::array<std::size_t, 9> attempts_hist{};
  std::size_t harq_combined_ok = 0;  ///< deliveries that used combined LLRs

  /// Fold another result in. Counter fields are exact sums; RunningStats
  /// fields use the parallel moment combination.
  void merge(const LinkResult& other);

  /// Column headers matching summary_row(), for bench tables.
  [[nodiscard]] static std::vector<std::string> summary_headers();
  /// One formatted table row: packets, PER, BER, goodput, mean SNR
  /// estimate, mean transmissions per finished frame, combined-decode
  /// successes. Never emits NaN/Inf, even for an empty result.
  [[nodiscard]] std::vector<std::string> summary_row() const;
};

/// Everything known about one simulated packet, delivered to observers.
struct PacketOutcome {
  std::size_t index = 0;       ///< global packet index within the run
  bool detected = false;       ///< false: sync never found the packet
  RxPacket rx;                 ///< valid only when detected
  std::vector<std::uint8_t> sent_psdu;  ///< what the transmitter sent
  double airtime_us = 0.0;
  std::size_t truth_packet_start = 0;   ///< channel ground truth
  double truth_cfo_norm = 0.0;
};

/// Per-packet callback contract. on_packet() is invoked on the thread that
/// called run(), in packet-index order, for every simulated packet
/// (detected or not) — regardless of how many worker threads simulate.
class PacketObserver {
 public:
  virtual ~PacketObserver() = default;
  virtual void on_packet(const PacketOutcome& outcome) = 0;
};

/// How to run a Monte-Carlo batch.
struct RunOptions {
  std::size_t n_packets = 0;   ///< packets to simulate (the cap when no
                               ///< early stop target is set)
  std::size_t n_threads = 1;   ///< worker threads; 0 = hardware concurrency
  /// Hard cap when early stopping is active (target_per_events > 0);
  /// 0 falls back to n_packets.
  std::size_t max_packets = 0;
  /// When > 0: stop as soon as this many PER error events (FCS failures or
  /// undetected packets) have been observed — the standard link-simulator
  /// confidence trick, so low-PER points don't burn packets and high-PER
  /// points don't starve. The stop decision is taken in packet order, so it
  /// is deterministic across thread counts.
  std::size_t target_per_events = 0;

  class Builder;
  /// Fluent builder, the session-config convention (DESIGN.md "API
  /// conventions"): RunOptions::make().n_packets(500).n_threads(0).build().
  [[nodiscard]] static Builder make();
};

class RunOptions::Builder {
 public:
  Builder& n_packets(std::size_t n) { opt_.n_packets = n; return *this; }
  Builder& n_threads(std::size_t n) { opt_.n_threads = n; return *this; }
  Builder& max_packets(std::size_t n) { opt_.max_packets = n; return *this; }
  Builder& target_per_events(std::size_t n) {
    opt_.target_per_events = n;
    return *this;
  }

  [[nodiscard]] RunOptions build() const { return opt_; }
  operator RunOptions() const { return opt_; }  // NOLINT(google-explicit-constructor)

 private:
  RunOptions opt_;
};

/// Legacy observer form, kept as a thin adapter: called only for detected
/// packets, with the RxPacket and the sent PSDU.
using LegacyObserver =
    std::function<void(const RxPacket&, const std::vector<std::uint8_t>& sent_psdu)>;

/// Ties the full chain together and runs seeded Monte-Carlo batches.
class LinkSimulator {
 public:
  explicit LinkSimulator(LinkConfig cfg);

  /// Run a batch under `opt`; every random draw for packet p depends only
  /// on (cfg.seed, p), so results are bit-identical for any thread count.
  [[nodiscard]] LinkResult run(const RunOptions& opt,
                               PacketObserver* observer = nullptr);

  /// Convenience: run exactly `n_packets` single-threaded.
  [[nodiscard]] LinkResult run(std::size_t n_packets) {
    return run(RunOptions{.n_packets = n_packets});
  }

  /// Back-compat adapter for the old callable observer form.
  [[nodiscard]] LinkResult run(std::size_t n_packets, const LegacyObserver& observer);

  [[nodiscard]] const LinkConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Transmitter& transmitter() const noexcept { return tx_; }
  [[nodiscard]] const Receiver& receiver() const noexcept { return rx_; }
  [[nodiscard]] channel::MimoChannel& channel() noexcept { return chan_; }

 private:
  LinkConfig cfg_;
  Transmitter tx_;
  channel::MimoChannel chan_;
  Receiver rx_;
};

/// Convenience: a LinkConfig with sane defaults for the given MCS/SNR and
/// antenna setup matching the MCS's stream count.
[[nodiscard]] LinkConfig make_link_config(unsigned mcs, double snr_db,
                                          std::size_t nrx = 0 /* = nss */);

}  // namespace mimonet::core
