// Synchronization: Van de Beek (SISO + MIMO), STF packet detection, fine
// timing, and the composed frame synchronizer.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "channel/impairments.hpp"
#include "channel/mimo_channel.hpp"
#include "core/transmitter.hpp"
#include "dsp/rng.hpp"
#include "ofdm/symbol.hpp"
#include "sync/fine_sync.hpp"
#include "sync/frame_sync.hpp"
#include "sync/packet_detector.hpp"
#include "sync/van_de_beek.hpp"
#include "wifi/preamble.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

// A run of `n_symbols` random OFDM symbols (with CP), starting at `offset`
// noise-only samples, at the given SNR; returns (signal, noise_var).
std::vector<cf32> ofdm_burst(std::size_t n_symbols, std::size_t offset,
                             double snr_db, double cfo_norm, unsigned seed) {
  const ofdm::SymbolModulator mod(ofdm::CarrierPlan::kHt);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<cf32> burst;
  const float gain = wifi::tone_gain(56);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    std::vector<cf32> data(52);
    for (auto& v : data) {
      v = cf32(coin(rng) != 0 ? 1.0F : -1.0F, 0.0F);
    }
    const std::array<cf32, 4> pilots{cf32{1, 0}, cf32{1, 0}, cf32{1, 0},
                                     cf32{-1, 0}};
    const std::size_t base = burst.size();
    mod.modulate(data, pilots, burst);
    for (std::size_t i = base; i < burst.size(); ++i) burst[i] *= gain;
  }
  if (cfo_norm != 0.0) channel::apply_cfo(burst, cfo_norm);
  const double nv = dsp::from_db(-snr_db);
  auto out = channel::pad_with_noise(burst, offset, 100, nv, seed + 1);
  dsp::ComplexGaussian noise(seed + 2, nv);
  noise.add_to(std::span<cf32>(out).subspan(offset, burst.size()));
  return out;
}

TEST(VanDeBeek, FindsSymbolTimingCleanly) {
  const auto rx = ofdm_burst(4, 50, 30.0, 0.0, 1);
  sync::VdbConfig cfg;
  cfg.n_symbols = 3;
  const sync::VanDeBeekEstimator vdb(cfg);
  const auto est = vdb.estimate(std::span<const cf32>(rx).first(50 + 300));
  // Peak should be at the first CP start (offset 50), mod 80 ambiguity aside.
  EXPECT_NEAR(static_cast<double>(est.timing), 50.0, 2.0);
}

TEST(VanDeBeek, EstimatesFractionalCfo) {
  const double cfo = 0.5 / 64.0 * 0.6;  // 60% of the unambiguous range
  const auto rx = ofdm_burst(6, 20, 35.0, cfo, 2);
  sync::VdbConfig cfg;
  cfg.n_symbols = 4;
  const sync::VanDeBeekEstimator vdb(cfg);
  const auto est = vdb.estimate(std::span<const cf32>(rx).first(20 + 60 + vdb.min_span()));
  EXPECT_NEAR(est.cfo_norm, cfo, 5e-4);
}

TEST(VanDeBeek, MimoCombiningReducesTimingVariance) {
  // At low SNR, combining two antennas should reduce timing error variance.
  sync::VdbConfig cfg;
  cfg.n_symbols = 2;
  const sync::VanDeBeekEstimator vdb(cfg);
  constexpr std::size_t kOffset = 40;
  constexpr int kTrials = 60;

  double var_siso = 0.0;
  double var_mimo = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const auto a = ofdm_burst(3, kOffset, 2.0, 0.0, 100 + 3 * t);
    auto b = ofdm_burst(3, kOffset, 2.0, 0.0, 100 + 3 * t);  // same symbols
    // Decorrelate antenna b's noise (different pad seed via re-noise).
    dsp::ComplexGaussian extra(7000 + t, dsp::from_db(-2.0));
    // (b already has noise; adding more makes b worse but independent-ish.)
    const auto ea = vdb.estimate(a);
    const std::span<const cf32> both[] = {std::span<const cf32>(a),
                                          std::span<const cf32>(b)};
    const auto eb = vdb.estimate_mimo(both);
    const double da = static_cast<double>(ea.timing) - kOffset;
    const double db = static_cast<double>(eb.timing) - kOffset;
    var_siso += da * da;
    var_mimo += db * db;
  }
  EXPECT_LE(var_mimo, var_siso + 1e-9);
}

TEST(VanDeBeek, Validation) {
  EXPECT_THROW(sync::VanDeBeekEstimator({.fft_len = 0}), std::invalid_argument);
  EXPECT_THROW(sync::VanDeBeekEstimator({.rho = 1.5}), std::invalid_argument);
  const sync::VanDeBeekEstimator vdb({});
  std::vector<cf32> tiny(10);
  EXPECT_THROW((void)vdb.estimate(tiny), std::invalid_argument);
}

TEST(PacketDetector, FindsStfBurst) {
  const auto stf = wifi::make_lstf(0, 1);
  const double nv = dsp::from_db(-15.0);
  auto rx = channel::pad_with_noise(stf, 500, 500, nv, 3);
  dsp::ComplexGaussian noise(4, nv);
  noise.add_to(std::span<cf32>(rx).subspan(500, stf.size()));

  const sync::PacketDetector det(sync::DetectorConfig{});
  const auto d = det.detect(rx);
  ASSERT_TRUE(d.has_value());
  // The plateau detector is a *coarse* trigger: it fires as the correlation
  // windows slide into the burst, so a few tens of samples of early bias is
  // expected (fine timing is the job of sync::FineSynchronizer).
  EXPECT_NEAR(static_cast<double>(d->start), 500.0, 40.0);
  EXPECT_GT(d->peak_metric, 0.5F);
}

TEST(PacketDetector, SilenceGivesNoDetection) {
  std::vector<cf32> rx(5000);
  dsp::ComplexGaussian noise(5, 1.0);
  noise.fill(rx);
  const sync::PacketDetector det(sync::DetectorConfig{});
  EXPECT_FALSE(det.detect(rx).has_value());
}

TEST(PacketDetector, EstimatesCoarseCfo) {
  auto stf = wifi::make_lstf(0, 1);
  // Use several STFs back to back for a long plateau.
  std::vector<cf32> sig;
  for (int i = 0; i < 2; ++i) sig.insert(sig.end(), stf.begin(), stf.end());
  const double cfo = 3e-3;
  channel::apply_cfo(sig, cfo);
  auto rx = channel::pad_with_noise(sig, 300, 300, dsp::from_db(-25.0), 6);
  const sync::PacketDetector det(sync::DetectorConfig{});
  const auto d = det.detect(rx);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(d->cfo_norm, cfo, 2e-4);
}

TEST(PacketDetector, Validation) {
  EXPECT_THROW(sync::PacketDetector({.lag = 0}), std::invalid_argument);
  EXPECT_THROW(sync::PacketDetector({.threshold = 1.5F}), std::invalid_argument);
}

TEST(FineSync, LocatesLltfExactly) {
  std::vector<cf32> sig;
  const auto stf = wifi::make_lstf(0, 1);
  const auto ltf = wifi::make_lltf(0, 1);
  sig.insert(sig.end(), stf.begin(), stf.end());
  sig.insert(sig.end(), ltf.begin(), ltf.end());
  auto rx = channel::pad_with_noise(sig, 0, 200, dsp::from_db(-30.0), 7);

  const sync::FineSynchronizer fine;
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  const auto res = fine.locate(spans);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->lltf_start, stf.size());
  EXPECT_GT(res->peak, 0.8);
}

TEST(FineSync, CfoFromLtfRepetitions) {
  auto ltf = wifi::make_lltf(0, 1);
  const double cfo = 1.2e-3;
  channel::apply_cfo(ltf, cfo);
  const sync::FineSynchronizer fine;
  const std::span<const cf32> spans[] = {std::span<const cf32>(ltf)};
  EXPECT_NEAR(fine.estimate_cfo(spans, 32), cfo, 1e-4);
}

class FrameSyncModes : public ::testing::TestWithParam<sync::TimingMode> {};

TEST_P(FrameSyncModes, SynchronizesRealPpdu) {
  core::PhyConfig phy;
  phy.mcs = 0;
  const core::Transmitter tx(phy);
  const auto psdu = std::vector<std::uint8_t>(64, 0x5A);
  const auto streams = tx.transmit(psdu);

  channel::ChannelConfig ccfg;
  ccfg.snr_db = 20.0;
  ccfg.cfo_norm = 8e-4;
  ccfg.timing_pad = 600;
  ccfg.tail_pad = 200;
  channel::MimoChannel chan(ccfg);
  const auto rx = chan.transmit(streams);

  sync::FrameSyncConfig scfg;
  scfg.mode = GetParam();
  const sync::FrameSynchronizer fs(scfg);
  const auto res = fs.synchronize(rx);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(static_cast<double>(res->packet_start), 600.0, 6.0);
  // The CP-ML (Van de Beek) CFO estimate correlates only 16-sample guard
  // windows, so its variance is a few times the LTF method's.
  const double cfo_tol =
      (GetParam() == sync::TimingMode::kVanDeBeekMimo) ? 4e-4 : 1e-4;
  EXPECT_NEAR(res->cfo_norm, 8e-4, cfo_tol);
}

INSTANTIATE_TEST_SUITE_P(Modes, FrameSyncModes,
                         ::testing::Values(sync::TimingMode::kLtfCrossCorr,
                                           sync::TimingMode::kVanDeBeekMimo));

TEST(FrameSync, NoPacketInNoise) {
  std::vector<std::vector<cf32>> rx(1, std::vector<cf32>(8000));
  dsp::ComplexGaussian noise(8, 0.5);
  noise.fill(rx[0]);
  const sync::FrameSynchronizer fs(sync::FrameSyncConfig{});
  EXPECT_FALSE(fs.synchronize(rx).has_value());
}

TEST(FrameSync, RejectsExcessiveSlack) {
  sync::FrameSyncConfig cfg;
  cfg.vdb_slack = 60;
  EXPECT_THROW(sync::FrameSynchronizer{cfg}, std::invalid_argument);
}

// ---- Span-arithmetic boundary regressions (ISSUE 2): every guard that
// precedes a std::size_t subtraction, checked with inputs exactly at the
// boundary and one below it. ----

TEST(VanDeBeek, SpanExactlyAtMinSpanWorks) {
  sync::VdbConfig cfg;
  cfg.n_symbols = 3;
  const sync::VanDeBeekEstimator vdb(cfg);
  const auto rx = ofdm_burst(4, 0, 30.0, 0.0, 21);
  ASSERT_GE(rx.size(), vdb.min_span());
  // len == min_span(): exactly one candidate position; len - min_span() + 1
  // must evaluate to 1, not wrap.
  const auto est =
      vdb.estimate(std::span<const cf32>(rx).first(vdb.min_span()));
  EXPECT_EQ(est.trace.size(), 1U);
  EXPECT_EQ(est.timing, 0U);
  EXPECT_TRUE(std::isfinite(est.metric));
  EXPECT_TRUE(std::isfinite(est.cfo_norm));
}

TEST(VanDeBeek, SpanOneBelowMinSpanThrows) {
  sync::VdbConfig cfg;
  cfg.n_symbols = 3;
  const sync::VanDeBeekEstimator vdb(cfg);
  const std::vector<cf32> rx(vdb.min_span() - 1);
  EXPECT_THROW((void)vdb.estimate(rx), std::invalid_argument);
}

TEST(VanDeBeek, AllZeroSpanGivesFiniteEstimate) {
  sync::VdbConfig cfg;
  cfg.n_symbols = 2;
  const sync::VanDeBeekEstimator vdb(cfg);
  const std::vector<cf32> rx(vdb.min_span() + 37, cf32{0.0F, 0.0F});
  const auto est = vdb.estimate(rx);
  EXPECT_TRUE(std::isfinite(est.metric));
  EXPECT_TRUE(std::isfinite(est.cfo_norm));
  EXPECT_LT(est.timing, rx.size());
}

TEST(PacketDetector, SpanShorterThanOneWindowIsNoDetect) {
  const sync::PacketDetector det(sync::DetectorConfig{});
  const auto cfg = sync::DetectorConfig{};
  // One below the lag + window minimum: must return nullopt, not wrap the
  // sliding-sum arithmetic.
  std::vector<cf32> rx(cfg.lag + cfg.window - 1, cf32{1.0F, 0.0F});
  EXPECT_FALSE(det.detect(rx).has_value());
  // Exactly at the minimum: one metric position, defined result.
  rx.assign(cfg.lag + cfg.window, cf32{1.0F, 0.0F});
  const auto d = det.detect(rx);
  if (d) {  // plateau length permitting, either outcome must be sane
    EXPECT_TRUE(std::isfinite(d->peak_metric));
    EXPECT_TRUE(std::isfinite(d->cfo_norm));
  }
}

TEST(PacketDetector, AllZeroSpanIsNoDetect) {
  const sync::PacketDetector det(sync::DetectorConfig{});
  const std::vector<cf32> rx(4096, cf32{0.0F, 0.0F});
  EXPECT_FALSE(det.detect(rx).has_value());
}

TEST(FineSync, SpanAtAndBelowMinimumLength) {
  const sync::FineSynchronizer fine;
  // Minimum locate() span is kGuard + 2 * kPeriod = 160 samples.
  std::vector<cf32> below(159, cf32{0.1F, 0.0F});
  const std::span<const cf32> sb[] = {std::span<const cf32>(below)};
  EXPECT_FALSE(fine.locate(sb).has_value());

  const auto lltf = wifi::make_lltf(0, 1);
  std::vector<cf32> at(lltf.begin(), lltf.begin() + 160);
  const std::span<const cf32> sa[] = {std::span<const cf32>(at)};
  const auto res = fine.locate(sa);  // either outcome, but defined
  if (res) {
    EXPECT_TRUE(std::isfinite(res->peak));
    EXPECT_TRUE(std::isfinite(res->cfo_norm));
    EXPECT_LT(res->lltf_start, at.size());
  }
}

TEST(FrameSync, AllZeroCaptureIsNoDetect) {
  const std::vector<std::vector<cf32>> rx(2, std::vector<cf32>(4000));
  for (const auto mode :
       {sync::TimingMode::kLtfCrossCorr, sync::TimingMode::kVanDeBeekMimo}) {
    sync::FrameSyncConfig cfg;
    cfg.mode = mode;
    const sync::FrameSynchronizer fs(cfg);
    EXPECT_FALSE(fs.synchronize(rx).has_value());
  }
}

}  // namespace
