#!/usr/bin/env bash
# Runs the experiment suite and collects machine-readable results at the
# repo root as BENCH_<id>.json (one file per harness, same object as the
# BENCH_JSON stdout line).
#
#   scripts/bench.sh                          # every bench_e* harness
#   scripts/bench.sh bench_e17_hotpath        # any subset, by target name
#
# Environment:
#   MIMONET_BENCH_BUILD_DIR  build tree to use (default: build)
#   MIMONET_BENCH_THREADS    Monte-Carlo worker threads (default: hardware)
#   MIMONET_BENCH_PACKETS    timed packets for bench_e17_hotpath
#
# For publication-grade perf numbers use a host-tuned tree:
#   cmake -B build-native -S . -DCMAKE_BUILD_TYPE=Release -DMIMONET_NATIVE=ON
#   MIMONET_BENCH_BUILD_DIR=build-native scripts/bench.sh bench_e17_hotpath
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${MIMONET_BENCH_BUILD_DIR:-build}"

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
  for src in bench/bench_e*.cpp; do
    targets+=("$(basename "$src" .cpp)")
  done
fi

cmake -B "$build_dir" -S . > /dev/null
cmake --build "$build_dir" -j --target "${targets[@]}" > /dev/null

export MIMONET_BENCH_JSON_DIR="$PWD"
status=0
for t in "${targets[@]}"; do
  echo "==== $t ===="
  if ! "$build_dir/bench/$t"; then
    echo "bench: $t exited non-zero" >&2
    status=1
  fi
done

echo
echo "==== $(ls BENCH_*.json 2>/dev/null | wc -l) BENCH_*.json files at repo root ===="
exit "$status"
