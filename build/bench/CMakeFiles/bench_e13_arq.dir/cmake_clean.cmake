file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_arq.dir/bench_e13_arq.cpp.o"
  "CMakeFiles/bench_e13_arq.dir/bench_e13_arq.cpp.o.d"
  "bench_e13_arq"
  "bench_e13_arq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_arq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
