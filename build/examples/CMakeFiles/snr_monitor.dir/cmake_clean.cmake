file(REMOVE_RECURSE
  "CMakeFiles/snr_monitor.dir/snr_monitor.cpp.o"
  "CMakeFiles/snr_monitor.dir/snr_monitor.cpp.o.d"
  "snr_monitor"
  "snr_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snr_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
