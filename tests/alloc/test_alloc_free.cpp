// Allocation-count regression test for the hot path.
//
// A global operator new hook counts heap allocations while armed. After one
// warm-up pass through Receiver::receive (which sizes every workspace buffer
// and populates the process-wide plan/interleaver/constellation caches), a
// steady-state pass over the same capture must perform ZERO allocations.
// This is the contract that keeps the Monte-Carlo engine's per-packet cost
// flat: all scratch lives in TxWorkspace/RxWorkspace and is reused.
//
// Kept in its own executable so the hook cannot distort the main unit suite.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "channel/mimo_channel.hpp"
#include "channel/multi_user_channel.hpp"
#include "core/mu_receiver.hpp"
#include "core/receive_session.hpp"
#include "core/receiver.hpp"
#include "core/receiver_farm.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "eq/precoder.hpp"
#include "wifi/psdu.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_allocs{0};

struct AllocGuard {
  AllocGuard() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocGuard() { g_armed.store(false, std::memory_order_relaxed); }
  [[nodiscard]] static std::size_t count() {
    return g_allocs.load(std::memory_order_relaxed);
  }
};

void* counted_alloc(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace mimonet;

struct Scenario {
  unsigned mcs;
  std::size_t nrx;
  eq::EqualizerType eq_type;
  const char* name;
  bool batched = true;  ///< exercise the batched symbol-plane pipeline
};

std::vector<std::vector<dsp::cf32>> make_capture(const core::Transmitter& tx,
                                                 std::size_t nss,
                                                 std::size_t nrx) {
  const auto psdu =
      wifi::build_psdu(wifi::MacHeader{}, std::vector<std::uint8_t>(300, 0x5A));
  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nrx;
  ccfg.snr_db = 30.0;
  ccfg.timing_pad = 200;
  ccfg.tail_pad = 80;
  ccfg.seed = 99;
  channel::MimoChannel chan(ccfg);
  return chan.transmit(tx.transmit(psdu));
}

void expect_zero_steady_state(const Scenario& sc) {
  SCOPED_TRACE(sc.name);
  core::PhyConfig phy;
  phy.mcs = sc.mcs;
  phy.equalizer = sc.eq_type;
  phy.batched_decode = sc.batched;
  const core::Transmitter tx(phy);
  const auto nss = phy.mcs_info().nss;
  const core::Receiver rx(phy, sc.nrx);
  const auto capture = make_capture(tx, nss, sc.nrx);
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  const std::span<const std::span<const dsp::cf32>> cap(spans);

  core::RxWorkspace ws;
  // Warm-up: size every workspace buffer and populate process-wide caches.
  ASSERT_TRUE(rx.receive(cap, ws));
  ASSERT_TRUE(ws.packet.fcs_ok);
  const auto reference = ws.packet.psdu;

  {
    const AllocGuard guard;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(rx.receive(cap, ws));
    }
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state Receiver::receive allocated";
  }
  EXPECT_EQ(ws.packet.psdu, reference);
}

TEST(AllocFree, SisoBcc) {
  expect_zero_steady_state({7, 1, eq::EqualizerType::kMmse, "1x1 MCS7 MMSE"});
  expect_zero_steady_state({0, 1, eq::EqualizerType::kZeroForcing,
                            "1x1 MCS0 ZF"});
}

TEST(AllocFree, MimoBcc) {
  expect_zero_steady_state({15, 2, eq::EqualizerType::kMmse, "2x2 MCS15 MMSE"});
  expect_zero_steady_state({8, 2, eq::EqualizerType::kZeroForcing,
                            "2x2 MCS8 ZF"});
}

TEST(AllocFree, MimoMlDetector) {
  expect_zero_steady_state({11, 2, eq::EqualizerType::kMaxLikelihood,
                            "2x2 MCS11 ML"});
}

// The reference per-symbol path must stay allocation-free too: the batched
// pipeline's slabs are additive, not a replacement for the per-symbol
// scratch.
TEST(AllocFree, PerSymbolReferencePath) {
  expect_zero_steady_state({15, 2, eq::EqualizerType::kMmse,
                            "2x2 MCS15 MMSE per-symbol", /*batched=*/false});
  expect_zero_steady_state({7, 1, eq::EqualizerType::kZeroForcing,
                            "1x1 MCS7 ZF per-symbol", /*batched=*/false});
}

// The two-pass decimated scan must keep the allocation-free steady state:
// its coarse/full-rate chunk scratch lives in the workspace's DetectScratch
// and is re-sized (capacity kept) per chunk, never re-allocated once warm.
TEST(AllocFree, TwoPassScanSteadyState) {
  core::PhyConfig phy;
  const core::Transmitter tx(phy);
  const auto capture = make_capture(tx, 1, 1);
  const auto scfg = core::StreamReceiverConfig::make().scan_decimation(8).build();
  const core::StreamReceiver srx(phy, 1, scfg);
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  core::RxWorkspace ws;
  core::StreamStats warm;
  const auto on_event = [](const core::StreamEvent&) {};
  for (int i = 0; i < 2; ++i) srx.scan(spans, ws, warm, on_event);
  ASSERT_EQ(warm.delivered, 2U);

  {
    const AllocGuard guard;
    core::StreamStats stats;
    for (int i = 0; i < 4; ++i) srx.scan(spans, ws, stats, on_event);
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state two-pass StreamReceiver::scan allocated";
    EXPECT_EQ(stats.delivered, 4U);
  }
}

// The farm's contract: after the pool's workspaces, deques and record
// buffers are warm, a sharded scan and a base-station run over the same
// shapes perform zero heap allocations across every thread (the hook is
// global, so worker-thread allocations count too).
TEST(AllocFree, FarmSteadyStateShardedScan) {
  core::PhyConfig phy;
  const core::Transmitter tx(phy);
  const auto capture = make_capture(tx, 1, 1);
  const auto cfg = core::ReceiveSessionConfig::make()
                       .workers(2)
                       .shards(3)
                       .seam(capture[0].size())
                       .build();
  core::ReceiverFarm farm(phy, 1, cfg);
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());

  core::StreamStats warm;
  std::size_t events = 0;
  const auto on_event = [&events](const core::StreamEvent&) { ++events; };
  // Two warm-up scans: the first sizes worker workspaces and shard buffers,
  // the second confirms the shapes are stable before arming the hook.
  for (int i = 0; i < 2; ++i) farm.scan(spans, warm, on_event);
  ASSERT_EQ(warm.delivered, 2U);
  ASSERT_EQ(events, 2U);

  {
    const AllocGuard guard;
    core::StreamStats stats;
    for (int i = 0; i < 4; ++i) farm.scan(spans, stats, on_event);
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state ReceiverFarm::scan allocated";
    EXPECT_EQ(stats.delivered, 4U);
  }
}

TEST(AllocFree, FarmSteadyStateBaseStationRun) {
  core::PhyConfig phy;
  const core::Transmitter tx(phy);
  const auto capture = make_capture(tx, 1, 1);
  core::ReceiverFarm farm(phy, 1,
                          core::ReceiveSessionConfig::make().workers(2));
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  const core::StreamJob jobs[] = {
      {0, std::span<const std::span<const dsp::cf32>>(spans)},
      {1, std::span<const std::span<const dsp::cf32>>(spans)},
      {0, std::span<const std::span<const dsp::cf32>>(spans)},
  };
  std::vector<core::StreamStats> per_stream(2);
  for (int i = 0; i < 2; ++i) farm.run(jobs, per_stream);
  ASSERT_EQ(per_stream[1].delivered, 2U);

  {
    const AllocGuard guard;
    for (int i = 0; i < 4; ++i) farm.run(jobs, per_stream);
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state ReceiverFarm::run allocated";
  }
  EXPECT_EQ(per_stream[1].delivered, 6U);
}

// The MU downlink mixer shares the single-user contract: once the per-user
// PPDU scratch and the mixed chains are sized, a warm transmit_mu_into with
// a same-shape precoder performs zero heap allocations.
TEST(AllocFree, MuDownlinkTransmitSteadyState) {
  core::PhyConfig phy;
  phy.mcs = 3;
  const core::Transmitter tx(phy);
  const std::array<std::array<dsp::cf32, 4>, 2> rows = {{
      {{{1.0F, 0.2F}, {0.3F, -0.4F}, {}, {}}},
      {{{-0.2F, 0.6F}, {0.9F, 0.1F}, {}, {}}},
  }};
  const auto w = eq::Precoder::zero_forcing_rows(rows, 2);
  const std::vector<std::uint8_t> psdu_a(300, 0xA5);
  const std::vector<std::uint8_t> psdu_b(300, 0x3C);
  const std::array<std::span<const std::uint8_t>, 2> psdus = {
      std::span<const std::uint8_t>(psdu_a),
      std::span<const std::uint8_t>(psdu_b)};
  core::MuTxWorkspace ws;
  tx.transmit_mu_into(psdus, w, ws);
  ASSERT_EQ(ws.chains.size(), 2U);
  const auto reference = ws.chains;

  {
    const AllocGuard guard;
    for (int i = 0; i < 4; ++i) tx.transmit_mu_into(psdus, w, ws);
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state Transmitter::transmit_mu_into allocated";
  }
  EXPECT_EQ(ws.chains, reference);
}

// Uplink MU: both halves of the virtual-stream path must be warm-clean —
// the per-user virtual transmit and the base station's joint detector.
TEST(AllocFree, MuUplinkReceiveSteadyState) {
  constexpr std::size_t kUsers = 2;
  core::PhyConfig phy;
  const core::Transmitter tx(phy);
  const auto psdu =
      wifi::build_psdu(wifi::MacHeader{}, std::vector<std::uint8_t>(200, 0x5A));

  std::array<core::TxWorkspace, kUsers> utws;
  for (std::size_t u = 0; u < kUsers; ++u) {
    tx.transmit_virtual_into(psdu, u, kUsers, utws[u]);
  }
  {
    const AllocGuard guard;
    for (int i = 0; i < 4; ++i) {
      for (std::size_t u = 0; u < kUsers; ++u) {
        tx.transmit_virtual_into(psdu, u, kUsers, utws[u]);
      }
    }
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state Transmitter::transmit_virtual_into allocated";
  }

  channel::MuChannelConfig mcfg;
  mcfg.n_users = kUsers;
  mcfg.direction = channel::MuDirection::kUplink;
  mcfg.user.fading = true;
  mcfg.user.snr_db = 35.0;
  mcfg.user.timing_pad = 200;
  mcfg.user.tail_pad = 80;
  mcfg.user.seed = 77;
  channel::MultiUserChannel chan(mcfg);
  std::vector<std::vector<std::vector<dsp::cf32>>> per_user(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) {
    per_user[u].push_back(utws[u].chains[0]);
  }
  const auto capture = chan.transmit_uplink(per_user);
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  const std::span<const std::span<const dsp::cf32>> cap(spans);

  const core::MuUplinkReceiver murx(phy, kUsers, kUsers);
  core::MuRxWorkspace mws;
  ASSERT_TRUE(murx.receive(cap, psdu.size(), mws));
  ASSERT_TRUE(mws.packet.users[0].fcs_ok);
  ASSERT_TRUE(mws.packet.users[1].fcs_ok);

  {
    const AllocGuard guard;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(murx.receive(cap, psdu.size(), mws));
    }
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state MuUplinkReceiver::receive allocated";
  }
  EXPECT_EQ(mws.packet.users[0].psdu, psdu);
  EXPECT_EQ(mws.packet.users[1].psdu, psdu);
}

// HarqBuffer must be allocation-free once its slots are warm: store() keeps
// each slot's LLR capacity across overwrite, LRU eviction and release, so a
// retransmission-heavy link never allocates per frame.
TEST(AllocFree, HarqBufferSteadyState) {
  core::HarqBuffer buf(4);
  std::vector<float> llrs(2048, 0.5F);
  // Warm-up: size every slot's vector once.
  for (std::uint16_t seq = 0; seq < 8; ++seq) buf.store(seq, llrs);

  {
    const AllocGuard guard;
    for (std::uint16_t round = 0; round < 8; ++round) {
      for (std::uint16_t seq = 0; seq < 8; ++seq) {
        buf.store(seq, llrs);             // overwrite + LRU eviction churn
        ASSERT_NE(buf.find(seq), nullptr);
      }
      buf.release(static_cast<std::uint16_t>(round % 8));
    }
    EXPECT_EQ(AllocGuard::count(), 0U) << "steady-state HarqBuffer allocated";
  }
}

// The HARQ combining decode mode must keep receive()'s allocation-free
// steady state: summing a prior into ws.merged and exporting the combined
// stream reuse warm capacity (the combining path pins the accumulate
// pipeline, so the warm-up pass below sizes exactly the buffers the
// steady-state passes touch).
TEST(AllocFree, HarqCombiningReceiveSteadyState) {
  core::PhyConfig phy;
  phy.mcs = 7;
  const core::Transmitter tx(phy);
  const core::Receiver rx(phy, 1);
  const auto capture = make_capture(tx, 1, 1);
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  const std::span<const std::span<const dsp::cf32>> cap(spans);

  core::RxWorkspace ws;
  core::HarqDecode warmup;
  warmup.combined = &ws.harq_combined;
  ASSERT_TRUE(rx.receive(cap, ws, warmup));
  ASSERT_TRUE(ws.packet.fcs_ok);
  const auto reference = ws.packet.psdu;
  std::vector<float> prior = ws.harq_combined;
  ASSERT_FALSE(prior.empty());
  ws.harq.store(1, prior);  // warm one retention slot too

  {
    const AllocGuard guard;
    for (int i = 0; i < 4; ++i) {
      core::HarqDecode harq;
      harq.prior = *ws.harq.find(1);
      harq.combined = &ws.harq_combined;
      ASSERT_TRUE(rx.receive(cap, ws, harq));
      ws.harq.store(1, ws.harq_combined);
    }
    EXPECT_EQ(AllocGuard::count(), 0U)
        << "steady-state HARQ-combining receive allocated";
  }
  EXPECT_EQ(ws.packet.psdu, reference);
}

}  // namespace
