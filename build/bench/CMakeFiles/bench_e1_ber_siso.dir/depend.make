# Empty dependencies file for bench_e1_ber_siso.
# This may be replaced when dependencies are built.
