#include "core/mu_link_simulator.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "chanest/ls_estimator.hpp"
#include "core/bounded_queue.hpp"
#include "core/link_internal.hpp"
#include "core/mu_receiver.hpp"
#include "core/workspace.hpp"
#include "dsp/fft_cache.hpp"
#include "dsp/rng.hpp"
#include "eq/precoder.hpp"
#include "ofdm/subcarriers.hpp"
#include "wifi/bits.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"

namespace mimonet::core {

void MuLinkResult::merge(const MuLinkResult& other) {
  total.merge(other.total);
  if (per_user.size() < other.per_user.size()) {
    per_user.resize(other.per_user.size());
  }
  for (std::size_t u = 0; u < other.per_user.size(); ++u) {
    per_user[u].merge(other.per_user[u]);
  }
}

namespace {

using detail::account_packet;
using detail::kGolden;
using detail::packet_seed;

channel::MuChannelConfig mu_channel_config(const MuLinkConfig& cfg) {
  channel::MuChannelConfig mc;
  mc.n_users = cfg.n_users;
  mc.n_bs_antennas = cfg.resolved_bs_antennas();
  mc.user = detail::seeded_channel(cfg.user);
  mc.direction = cfg.direction;
  if (cfg.csi_stale_symbols > 0) {
    mc.user.faults.csi_stale(cfg.csi_stale_symbols);
  }
  return mc;
}

/// One packet's contribution: the per-user mergeable partials, folded in
/// packet order on the calling thread exactly like the single-user engine.
struct MuPacketWork {
  std::vector<LinkResult> per_user;
};

/// Per-user MAC frame for packet p: user 0's frame is byte-identical to the
/// single-user engine's (same header, same payload stream), users 1.. vary
/// the destination address and the payload seed.
std::vector<std::uint8_t> build_user_psdu(const MuLinkConfig& cfg,
                                          std::uint64_t pkt_seed,
                                          std::size_t p, std::size_t u) {
  wifi::MacHeader hdr;
  hdr.addr1 = {0x02, 0x11, 0x22, 0x33, 0x44,
               static_cast<std::uint8_t>(0x55 + u)};
  hdr.addr2 = {0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  hdr.addr3 = hdr.addr1;
  hdr.sequence_control = static_cast<std::uint16_t>((p & 0xFFFU) << 4U);

  dsp::BitSource payload_src(pkt_seed * 0x2545F4914F6CDD1DULL + 7 +
                             kGolden * u);
  const auto payload = payload_src.bytes(cfg.user.psdu_payload_bytes);
  return wifi::build_psdu(hdr, payload);
}

/// Genie CSI feedback: run the base station's HT-LTF block (one chain per
/// BS antenna) through a user's channel noiselessly and LS-estimate the
/// flat 1 x n_bs row back out. The per-stream CSD ramp is compensated and
/// the occupied bins averaged, so under the flat profile the row equals the
/// channel taps exactly — staleness (advance_csi) is the only error source
/// the precoder ever sees.
class CsiSounder {
 public:
  explicit CsiSounder(std::size_t n_bs)
      : n_bs_(n_bs),
        n_ltf_(wifi::num_ht_ltfs(n_bs)),
        ls_(1, n_bs),
        map_(ofdm::CarrierPlan::kHt) {
    chains_.reserve(n_bs);
    for (std::size_t s = 0; s < n_bs; ++s) {
      chains_.push_back(wifi::make_htltfs(s, n_bs));
    }
    grids_.assign(1, std::vector<std::vector<cf32>>(
                         n_ltf_, std::vector<cf32>(ofdm::kFftSize)));
  }

  [[nodiscard]] const std::vector<std::vector<cf32>>& chains() const noexcept {
    return chains_;
  }

  [[nodiscard]] std::array<cf32, 4> estimate_row(
      const std::vector<std::vector<cf32>>& rx) {
    const auto& plan = fft_cache_.plan(ofdm::kFftSize);
    for (std::size_t n = 0; n < n_ltf_; ++n) {
      plan.forward(std::span<const cf32>(rx[0]).subspan(
                       n * ofdm::kSymLen + ofdm::kCpLen, ofdm::kFftSize),
                   grids_[0][n]);
    }
    ls_.estimate_into(grids_, est_);

    std::array<cf32, 4> row{};
    for (std::size_t s = 0; s < n_bs_; ++s) {
      const int csd = wifi::ht_csd_samples(s, n_bs_);
      dsp::cf64 acc{0.0, 0.0};
      std::size_t count = 0;
      const auto add_bin = [&](std::size_t b) {
        // Undo the transmit-side cyclic shift exp(-j 2 pi b csd / 64)
        // (ofdm::cyclic_shift_grid's convention, raw FFT bin index).
        const double theta = dsp::two_pi_d * static_cast<double>(b) *
                             static_cast<double>(csd) / 64.0;
        acc += dsp::cf64(est_.h[0][s][b]) * dsp::phasor_d(theta);
        ++count;
      };
      for (const std::size_t b : map_.data_bins()) add_bin(b);
      for (const std::size_t b : map_.pilot_bins()) add_bin(b);
      acc /= static_cast<double>(count);
      row[s] = cf32(static_cast<float>(acc.real()),
                    static_cast<float>(acc.imag()));
    }
    return row;
  }

 private:
  std::size_t n_bs_;
  std::size_t n_ltf_;
  chanest::LsChannelEstimator ls_;
  ofdm::SubcarrierMap map_;
  std::vector<std::vector<cf32>> chains_;  // [bs_antenna][t]
  std::vector<std::vector<std::vector<cf32>>> grids_;  // [1][ltf][bin]
  chanest::MimoChannelEstimate est_;
  dsp::FftPlanCache fft_cache_;
};

/// Worker-owned downlink engine: sound -> age -> zero-force -> mix ->
/// per-user air -> per-user single-link receive. One instance per thread.
class DownlinkEngine {
 public:
  explicit DownlinkEngine(const MuLinkConfig& cfg)
      : cfg_(cfg),
        n_users_(cfg.n_users),
        n_bs_(cfg.resolved_bs_antennas()),
        tx_(cfg.user.phy),
        chan_(mu_channel_config(cfg)),
        rx_(cfg.user.phy, 1),
        sounder_(n_bs_) {}

  [[nodiscard]] MuPacketWork simulate(std::size_t p) {
    const std::uint64_t pkt_seed = packet_seed(cfg_.user.seed, p);
    chan_.reseed(cfg_.user.channel.seed * kGolden + pkt_seed);

    psdus_.clear();
    psdu_spans_.clear();
    for (std::size_t u = 0; u < n_users_; ++u) {
      psdus_.push_back(build_user_psdu(cfg_, pkt_seed, p, u));
    }
    for (const auto& psdu : psdus_) psdu_spans_.emplace_back(psdu);

    // CSI lifecycle: the sounding waveform pins each user's snapshot, then
    // advance_csi ages the air by the configured staleness — the precoder
    // below works from the snapshot, the data transmit crosses the aged
    // channel.
    rows_.resize(n_users_);
    for (std::size_t u = 0; u < n_users_; ++u) {
      const auto sounding_rx = chan_.sound_user(u, sounder_.chains());
      rows_[u] = sounder_.estimate_row(sounding_rx);
      chan_.advance_csi(u);
    }
    const eq::Precoder w = [&] {
      try {
        return eq::Precoder::zero_forcing_rows(rows_, n_bs_);
      } catch (const std::exception&) {
        // Degenerate draw (measure-zero under Rayleigh fading): fall back
        // to a pass-through so the run stays deterministic instead of dying.
        return eq::Precoder::pass_through(n_bs_, n_users_);
      }
    }();

    tx_.transmit_mu_into(std::span<const std::span<const std::uint8_t>>(psdu_spans_),
                         w, mtw_);
    const double airtime = tx_.layout(psdus_[0].size()).airtime_us();

    MuPacketWork work;
    work.per_user.resize(n_users_);
    for (std::size_t u = 0; u < n_users_; ++u) {
      const auto capture = chan_.transmit_downlink(u, mtw_.chains);
      rws_.capture_spans.assign(capture.begin(), capture.end());
      const bool detected = rx_.receive(
          std::span<const std::span<const cf32>>(rws_.capture_spans), rws_);
      account_packet(work.per_user[u], rws_, detected, psdus_[u],
                     cfg_.user.psdu_payload_bytes, airtime,
                     chan_.user_truth(u));
    }
    return work;
  }

 private:
  const MuLinkConfig cfg_;
  std::size_t n_users_;
  std::size_t n_bs_;
  Transmitter tx_;
  channel::MultiUserChannel chan_;
  Receiver rx_;
  CsiSounder sounder_;
  MuTxWorkspace mtw_;
  RxWorkspace rws_;
  std::vector<std::vector<std::uint8_t>> psdus_;
  std::vector<std::span<const std::uint8_t>> psdu_spans_;
  std::vector<std::array<cf32, 4>> rows_;
};

/// Worker-owned uplink engine: per-user virtual-stream PPDUs -> superposed
/// air -> joint detection. One instance per thread.
class UplinkEngine {
 public:
  explicit UplinkEngine(const MuLinkConfig& cfg)
      : cfg_(cfg),
        n_users_(cfg.n_users),
        tx_(cfg.user.phy),
        chan_(mu_channel_config(cfg)),
        murx_(cfg.user.phy, cfg.n_users, cfg.resolved_bs_antennas()),
        utws_(cfg.n_users),
        chains_(cfg.n_users) {}

  [[nodiscard]] MuPacketWork simulate(std::size_t p) {
    const std::uint64_t pkt_seed = packet_seed(cfg_.user.seed, p);
    chan_.reseed(cfg_.user.channel.seed * kGolden + pkt_seed);

    psdus_.clear();
    for (std::size_t u = 0; u < n_users_; ++u) {
      psdus_.push_back(build_user_psdu(cfg_, pkt_seed, p, u));
      tx_.transmit_virtual_into(psdus_[u], u, n_users_, utws_[u]);
      chains_[u].resize(1);
      chains_[u][0] = utws_[u].chains[0];
    }
    const auto capture = chan_.transmit_uplink(chains_);
    mws_.rx.capture_spans.assign(capture.begin(), capture.end());
    const bool detected = murx_.receive(
        std::span<const std::span<const cf32>>(mws_.rx.capture_spans),
        psdus_[0].size(), mws_);
    const auto& truth = chan_.bs_truth();

    // The MU frame flies num_ht_ltfs(U) training symbols, so its airtime is
    // the single-link layout's with the space-time stream count raised.
    FrameLayout fl = tx_.layout(psdus_[0].size());
    fl.nss = n_users_;
    const double airtime = fl.airtime_us();

    MuPacketWork work;
    work.per_user.resize(n_users_);
    for (std::size_t u = 0; u < n_users_; ++u) {
      account_user(work.per_user[u], detected, u, truth, airtime,
                   psdus_[u]);
    }
    return work;
  }

 private:
  void account_user(LinkResult& res, bool detected, std::size_t u,
                    const channel::ChannelTruth& truth, double airtime,
                    std::span<const std::uint8_t> sent) const {
    const std::size_t payload_bytes = cfg_.user.psdu_payload_bytes;
    if (!detected) {
      ++res.undetected;
      res.per.add(false);
      res.throughput.add_packet(0, airtime);
      res.rx_errors.add(metrics::RxError::kNoSync);
      return;
    }
    const MuRxPacket& pkt = mws_.packet;
    const MuUserPacket& up = pkt.users[u];
    res.rx_errors.add(up.fcs_ok ? metrics::RxError::kOk
                                : metrics::RxError::kFcsFail);
    res.per.add(up.fcs_ok);
    res.throughput.add_packet(up.fcs_ok ? payload_bytes : 0, airtime);
    if (up.psdu.size() == sent.size()) {
      const auto sent_bits = wifi::bytes_to_bits(sent);
      const auto got_bits = wifi::bytes_to_bits(up.psdu);
      res.ber.add(sent_bits, got_bits);
    } else {
      res.ber.add_counts(sent.size() * 8, sent.size() * 8);
    }
    res.snr_est_db.add(pkt.snr.snr_db);
    // BS-level sync diagnostics land in every user's partial (it is the
    // timing/CFO error their decode experienced), keeping the invariant
    // that total is exactly the fold of per_user.
    res.timing_err.add(static_cast<double>(pkt.sync.packet_start) -
                       static_cast<double>(truth.packet_start));
    res.cfo_err.add(pkt.sync.cfo_norm - truth.cfo_norm);
    res.stream_sinr_db[0].add(up.sinr_db);
  }

  const MuLinkConfig cfg_;
  std::size_t n_users_;
  Transmitter tx_;
  channel::MultiUserChannel chan_;
  MuUplinkReceiver murx_;
  std::vector<TxWorkspace> utws_;
  std::vector<std::vector<std::vector<cf32>>> chains_;  // [u][1][t]
  MuRxWorkspace mws_;
  std::vector<std::vector<std::uint8_t>> psdus_;
};

/// The shared Monte-Carlo driver: the same packet-index schedule, bounded
/// queues and in-order fold as LinkSimulator::run, over either engine.
template <class Engine>
MuLinkResult run_engine(const MuLinkConfig& cfg, const MuRunOptions& opt) {
  MuLinkResult res;
  res.per_user.resize(cfg.n_users);
  const std::size_t bound = opt.n_packets;
  if (bound == 0) return res;

  std::size_t n_threads =
      opt.n_threads != 0
          ? opt.n_threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  n_threads = std::min(n_threads, bound);

  const auto fold = [&res](const MuPacketWork& work) {
    for (std::size_t u = 0; u < work.per_user.size(); ++u) {
      res.per_user[u].merge(work.per_user[u]);
      res.total.merge(work.per_user[u]);
    }
  };

  if (n_threads <= 1) {
    Engine engine(cfg);
    for (std::size_t p = 0; p < bound; ++p) fold(engine.simulate(p));
    return res;
  }

  constexpr std::size_t kQueueDepth = 4;
  std::vector<std::unique_ptr<BoundedQueue<MuPacketWork>>> queues;
  queues.reserve(n_threads);
  for (std::size_t w = 0; w < n_threads; ++w) {
    queues.push_back(std::make_unique<BoundedQueue<MuPacketWork>>(kQueueDepth));
  }

  std::atomic<bool> stop{false};
  std::mutex err_mutex;
  std::exception_ptr worker_error;

  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (std::size_t w = 0; w < n_threads; ++w) {
    workers.emplace_back([&, w] {
      try {
        Engine engine(cfg);
        for (std::size_t p = w; p < bound; p += n_threads) {
          if (stop.load(std::memory_order_relaxed)) break;
          if (!queues[w]->push(engine.simulate(p))) break;
        }
      } catch (...) {
        const std::lock_guard lk(err_mutex);
        if (!worker_error) worker_error = std::current_exception();
      }
      queues[w]->close();
    });
  }

  bool worker_died = false;
  for (std::size_t p = 0; p < bound; ++p) {
    auto work = queues[p % n_threads]->pop();
    if (!work) {  // producer exited without delivering: it threw
      worker_died = true;
      break;
    }
    fold(*work);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& q : queues) q->stop();
  for (auto& t : workers) t.join();
  if (worker_died && worker_error) std::rethrow_exception(worker_error);
  return res;
}

}  // namespace

MuLinkSimulator::MuLinkSimulator(MuLinkConfig cfg) : cfg_(cfg) {
  if (cfg_.n_users == 0 || cfg_.n_users > 4) {
    throw std::invalid_argument("MuLinkSimulator: n_users must be 1..4");
  }
  if (cfg_.resolved_bs_antennas() < cfg_.n_users ||
      cfg_.resolved_bs_antennas() > 4) {
    throw std::invalid_argument(
        "MuLinkSimulator: need n_users <= n_bs_antennas <= 4");
  }
  // A one-user downlink delegates to the single-user engine, which handles
  // any MCS; genuinely multi-user runs (and the trigger-based uplink, whose
  // joint detector validates itself) need the 1-stream template.
  const bool delegated = cfg_.n_users == 1 &&
                         cfg_.direction == channel::MuDirection::kDownlink;
  const auto info = cfg_.user.phy.mcs_info();
  if (!delegated && (info.nss != 1 || cfg_.user.phy.stbc)) {
    throw std::invalid_argument(
        "MuLinkSimulator: users run a 1-stream MCS without STBC");
  }
  if (cfg_.n_users > 1 &&
      cfg_.direction == channel::MuDirection::kDownlink &&
      cfg_.user.channel.profile != channel::DelayProfile::kFlat) {
    throw std::invalid_argument(
        "MuLinkSimulator: downlink precoding needs the flat profile (the "
        "CSI feedback row is a single tap per antenna)");
  }
}

MuLinkResult MuLinkSimulator::run(const MuRunOptions& opt) {
  if (cfg_.n_users == 1 &&
      cfg_.direction == channel::MuDirection::kDownlink) {
    // A one-user downlink is the single-user link: delegate to the SU
    // engine verbatim (same per-packet path, same fold order), which is
    // what makes the N_users == 1 pin a structural bit-identity.
    LinkSimulator su(cfg_.user);
    RunOptions su_opt;
    su_opt.n_packets = opt.n_packets;
    su_opt.n_threads = opt.n_threads;
    MuLinkResult res;
    res.per_user.push_back(su.run(su_opt));
    res.total = res.per_user[0];
    return res;
  }
  if (cfg_.direction == channel::MuDirection::kDownlink) {
    return run_engine<DownlinkEngine>(cfg_, opt);
  }
  return run_engine<UplinkEngine>(cfg_, opt);
}

MuLinkConfig make_mu_link_config(unsigned mcs, double snr_db,
                                 std::size_t n_users,
                                 channel::MuDirection direction,
                                 double doppler_norm) {
  MuLinkConfig cfg;
  cfg.user = make_link_config(mcs, snr_db, /*nrx=*/1);
  cfg.user.channel.ntx = 1;  // per-user template; the MU channel reshapes
  cfg.user.channel.fading = true;
  cfg.user.channel.profile = channel::DelayProfile::kFlat;
  cfg.user.channel.doppler_norm = doppler_norm;
  cfg.n_users = n_users;
  cfg.direction = direction;
  return cfg;
}

}  // namespace mimonet::core
