// Shared machinery for the deterministic stress harness: every adversarial
// draw comes from the same dsp::splitmix64 finalizer the Monte-Carlo engine
// uses for per-packet seeds, so a failing case reproduces from its (suite,
// case) seed alone — no global RNG state, no ordering sensitivity.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace mimonet::stress {

using dsp::cf32;

/// Counter-mode stream over the splitmix64 finalizer. Successive draws are
/// splitmix64(seed), splitmix64(seed + 1), ... — stateless apart from the
/// counter, so any draw can be reproduced in isolation.
class SeedStream {
 public:
  explicit constexpr SeedStream(std::uint64_t seed) noexcept : seed_(seed) {}

  constexpr std::uint64_t next_u64() noexcept {
    return dsp::splitmix64(seed_ + counter_++);
  }

  /// Uniform double in [0, 1).
  double next_unit() noexcept {
    return static_cast<double>(next_u64() >> 11U) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(next_u64() % n);
  }

  /// Uniform complex sample in [-1, 1]^2.
  cf32 sample() noexcept {
    return cf32(static_cast<float>(uniform(-1.0, 1.0)),
                static_cast<float>(uniform(-1.0, 1.0)));
  }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

// ---- Adversarial signal generators ----

[[nodiscard]] inline std::vector<cf32> all_zero(std::size_t n) {
  return std::vector<cf32>(n, cf32{0.0F, 0.0F});
}

/// Constant (DC-only) signal: zero bandwidth, autocorrelation metric 1.
[[nodiscard]] inline std::vector<cf32> dc_only(std::size_t n,
                                               float amplitude = 1.0F) {
  return std::vector<cf32>(n, cf32{amplitude, 0.0F});
}

/// Uniform complex noise-like signal.
[[nodiscard]] inline std::vector<cf32> random_signal(std::size_t n,
                                                     std::uint64_t seed) {
  SeedStream s(seed);
  std::vector<cf32> out(n);
  for (auto& v : out) v = s.sample();
  return out;
}

/// Saturating front end: every sample pinned to one of the four full-scale
/// rails (what a railed ADC emits).
[[nodiscard]] inline std::vector<cf32> saturating(std::size_t n,
                                                  std::uint64_t seed,
                                                  float full_scale = 4.0F) {
  SeedStream s(seed);
  std::vector<cf32> out(n);
  for (auto& v : out) {
    const auto bits = s.next_u64();
    v = cf32((bits & 1U) != 0 ? full_scale : -full_scale,
             (bits & 2U) != 0 ? full_scale : -full_scale);
  }
  return out;
}

/// Overwrite `count` positions with a mix of NaN, +/-Inf and huge values.
inline void inject_non_finite(std::span<cf32> x, std::uint64_t seed,
                              std::size_t count = 8) {
  if (x.empty()) return;
  SeedStream s(seed);
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const float poison[] = {kNan, kInf, -kInf, 1e38F, -1e38F};
  for (std::size_t i = 0; i < count; ++i) {
    auto& v = x[s.index(x.size())];
    v = cf32(poison[s.index(5)], poison[s.index(5)]);
  }
}

[[nodiscard]] inline bool is_finite(cf32 v) noexcept {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

[[nodiscard]] inline bool all_finite(std::span<const cf32> x) noexcept {
  for (const auto& v : x) {
    if (!is_finite(v)) return false;
  }
  return true;
}

[[nodiscard]] inline bool all_finite(std::span<const float> x) noexcept {
  for (const float v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace mimonet::stress
