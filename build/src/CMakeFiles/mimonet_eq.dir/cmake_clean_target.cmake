file(REMOVE_RECURSE
  "libmimonet_eq.a"
)
