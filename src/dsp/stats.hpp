// Streaming statistics used by the measurement and estimation layers.
#pragma once

#include <cstddef>
#include <vector>

namespace mimonet::dsp {

/// Welford-style running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Fold another accumulator in (Chan et al. parallel combination).
  /// merge()ing partials of a split stream matches the single-pass moments
  /// up to floating-point rounding; counts and min/max match exactly.
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Root mean square of the raw samples.
  [[nodiscard]] double rms() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  /// Fold another histogram in; throws if the bin layouts differ.
  void merge(const Histogram& other);
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] double bin_center(std::size_t i) const noexcept;
  /// Fraction of samples in bin i.
  [[nodiscard]] double fraction(std::size_t i) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mimonet::dsp
