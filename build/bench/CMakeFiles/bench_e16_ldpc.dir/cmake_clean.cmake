file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_ldpc.dir/bench_e16_ldpc.cpp.o"
  "CMakeFiles/bench_e16_ldpc.dir/bench_e16_ldpc.cpp.o.d"
  "bench_e16_ldpc"
  "bench_e16_ldpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_ldpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
