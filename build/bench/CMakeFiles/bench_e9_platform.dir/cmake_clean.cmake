file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_platform.dir/bench_e9_platform.cpp.o"
  "CMakeFiles/bench_e9_platform.dir/bench_e9_platform.cpp.o.d"
  "bench_e9_platform"
  "bench_e9_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
