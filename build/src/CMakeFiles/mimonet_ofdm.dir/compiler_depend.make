# Empty compiler generated dependencies file for mimonet_ofdm.
# This may be replaced when dependencies are built.
