file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_mobility.dir/bench_e15_mobility.cpp.o"
  "CMakeFiles/bench_e15_mobility.dir/bench_e15_mobility.cpp.o.d"
  "bench_e15_mobility"
  "bench_e15_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
