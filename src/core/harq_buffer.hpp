// HARQ chase-combining soft-state retention: a small, bounded, capacity-
// reusing store of per-frame payload LLRs keyed by 12-bit sequence number.
//
// The receiver already paid for the soft information of every failed
// attempt; throwing it away and decoding each retransmission standalone
// wastes exactly the evidence that makes retries succeed at the SNR cliff.
// A HarqBuffer keeps the post-merge (pre-depuncture / pre-LDPC) LLR stream
// of each outstanding frame so the next attempt's LLRs can be summed with
// it before FEC decoding (chase combining: the retransmission is an
// identical copy, so LLR addition is the ML combining rule).
//
// Allocation discipline matches the rest of the sample plane (DESIGN.md
// "The soft-combining plane"): a fixed slot array, each slot's LLR vector
// resized but never released, LRU eviction when every slot is live. Once
// every slot has been warmed to the link's LLR stream length, store() /
// find() / release() perform no heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mimonet::core {

class HarqBuffer {
 public:
  /// @param depth retained frames (slots). Should be >= the ARQ window so
  ///        every outstanding frame can keep its soft state; when a link
  ///        overflows it anyway, the least-recently-touched entry is evicted
  ///        (that frame's next attempt decodes standalone — degraded, never
  ///        wrong).
  explicit HarqBuffer(std::size_t depth = 8) : slots_(depth == 0 ? 1 : depth) {}

  [[nodiscard]] std::size_t depth() const noexcept { return slots_.size(); }

  /// Live entries.
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& s : slots_) n += s.used ? 1 : 0;
    return n;
  }

  /// The retained combined LLRs for `seq`, or nullptr when none are held.
  /// Touches the entry (LRU freshness).
  [[nodiscard]] const std::vector<float>* find(std::uint16_t seq) noexcept {
    for (auto& s : slots_) {
      if (s.used && s.seq == seq) {
        s.stamp = ++clock_;
        return &s.llrs;
      }
    }
    return nullptr;
  }

  /// Attempts accumulated into the entry for `seq` (0 when absent).
  [[nodiscard]] unsigned attempts(std::uint16_t seq) const noexcept {
    for (const auto& s : slots_) {
      if (s.used && s.seq == seq) return s.attempts;
    }
    return 0;
  }

  /// Retain `llrs` as the combined soft state for `seq`, overwriting any
  /// previous entry for the same seq or evicting the LRU slot when full.
  /// Steady-state allocation-free: the slot's vector keeps its capacity.
  void store(std::uint16_t seq, std::span<const float> llrs) {
    Slot* slot = nullptr;
    for (auto& s : slots_) {
      if (s.used && s.seq == seq) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      for (auto& s : slots_) {
        if (!s.used) {
          slot = &s;
          break;
        }
      }
    }
    if (slot == nullptr) {  // evict least-recently-touched
      slot = &slots_.front();
      for (auto& s : slots_) {
        if (s.stamp < slot->stamp) slot = &s;
      }
      slot->attempts = 0;
    }
    if (!slot->used || slot->seq != seq) slot->attempts = 0;
    slot->used = true;
    slot->seq = seq;
    ++slot->attempts;
    slot->stamp = ++clock_;
    slot->llrs.assign(llrs.begin(), llrs.end());
  }

  /// Drop the entry for `seq` (frame delivered or abandoned). The slot's
  /// LLR storage keeps its capacity for reuse.
  void release(std::uint16_t seq) noexcept {
    for (auto& s : slots_) {
      if (s.used && s.seq == seq) {
        s.used = false;
        s.attempts = 0;
        return;
      }
    }
  }

  /// Drop every entry (e.g. on an MCS change, which invalidates the LLR
  /// stream geometry of all retained frames). Capacity is kept.
  void clear() noexcept {
    for (auto& s : slots_) {
      s.used = false;
      s.attempts = 0;
    }
  }

 private:
  struct Slot {
    bool used = false;
    std::uint16_t seq = 0;
    unsigned attempts = 0;       ///< attempts folded into `llrs`
    std::uint64_t stamp = 0;     ///< LRU freshness
    std::vector<float> llrs;     ///< combined post-merge LLR stream
  };

  std::vector<Slot> slots_;
  std::uint64_t clock_ = 0;
};

}  // namespace mimonet::core
