// L-SIG (legacy SIGNAL) and HT-SIG field encoding/decoding.
//
// L-SIG carries a rate tag and a 12-bit length with even parity; HT-SIG
// carries the MCS, the 16-bit HT length, flags, and an 8-bit CRC. Both are
// BPSK rate-1/2 on the 48-carrier legacy plan; HT-SIG is rotated 90 degrees
// (QBPSK) so receivers can detect the HT format.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::wifi {

using dsp::cf32;

/// Legacy SIGNAL field contents.
struct LSig {
  std::uint8_t rate_bits = 0b1011;  // 6 Mb/s tag; HT frames always use it
  std::uint16_t length = 0;         // 12-bit spoofed legacy length

  friend bool operator==(const LSig&, const LSig&) = default;
};

/// HT-SIG field contents (the subset meaningful to this PHY).
struct HtSig {
  std::uint8_t mcs = 0;        // 7 bits
  bool cbw40 = false;          // always false here (20 MHz only)
  std::uint16_t length = 0;    // PSDU length in bytes (16 bits)
  bool smoothing = true;
  bool not_sounding = true;
  bool aggregation = false;
  std::uint8_t stbc = 0;       // 2 bits, 0 = none
  bool fec_coding = false;     // false = BCC
  bool short_gi = false;
  std::uint8_t n_ess = 0;      // extension LTFs, 2 bits

  friend bool operator==(const HtSig&, const HtSig&) = default;
};

/// Serialize L-SIG to its 24 bits (RATE, reserved, LENGTH, parity, 6 tail).
[[nodiscard]] std::vector<std::uint8_t> encode_lsig(const LSig& sig);

/// Parse 24 L-SIG bits; nullopt when the parity check fails.
[[nodiscard]] std::optional<LSig> decode_lsig(std::span<const std::uint8_t> bits);

/// Serialize HT-SIG to its 48 bits (two 24-bit parts; CRC-8 over the first
/// 34 bits, then 6 tail zeros).
[[nodiscard]] std::vector<std::uint8_t> encode_htsig(const HtSig& sig);

/// Parse 48 HT-SIG bits; nullopt when the CRC check fails.
[[nodiscard]] std::optional<HtSig> decode_htsig(std::span<const std::uint8_t> bits);

/// Convolutionally encode (rate 1/2, zero start state, tail embedded in the
/// bits), interleave and BPSK-map a SIG field into data-carrier symbols.
/// `bits.size()` must be a multiple of 24; each 24 bits yields one legacy
/// OFDM symbol's 48 carriers. `qbpsk` rotates the constellation 90 degrees
/// (HT-SIG format detection).
[[nodiscard]] std::vector<cf32> map_sig_field(std::span<const std::uint8_t> bits,
                                              bool qbpsk);

/// Inverse of map_sig_field for soft decoding: equalized data carriers (a
/// multiple of 48) -> deinterleaved coded-bit LLRs ready for the Viterbi
/// decoder (terminated trellis). `noise_var` scales the LLRs.
[[nodiscard]] std::vector<float> demap_sig_field(std::span<const cf32> carriers,
                                                 float noise_var, bool qbpsk);

/// demap_sig_field into caller storage. `scratch_llrs` holds the
/// pre-deinterleave LLRs; `out` receives the result (both resized, capacity
/// kept).
void demap_sig_field_into(std::span<const cf32> carriers, float noise_var, bool qbpsk,
                          std::vector<float>& scratch_llrs, std::vector<float>& out);

}  // namespace mimonet::wifi
