
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/bits.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/bits.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/bits.cpp.o.d"
  "/root/repo/src/wifi/interleaver.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/interleaver.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/interleaver.cpp.o.d"
  "/root/repo/src/wifi/mcs.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/mcs.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/mcs.cpp.o.d"
  "/root/repo/src/wifi/preamble.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/preamble.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/preamble.cpp.o.d"
  "/root/repo/src/wifi/psdu.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/psdu.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/psdu.cpp.o.d"
  "/root/repo/src/wifi/signal_field.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/signal_field.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/signal_field.cpp.o.d"
  "/root/repo/src/wifi/stream_parser.cpp" "src/CMakeFiles/mimonet_wifi.dir/wifi/stream_parser.cpp.o" "gcc" "src/CMakeFiles/mimonet_wifi.dir/wifi/stream_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mimonet_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_mod.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_ofdm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
