// Small dense complex matrices (up to 4x4 in practice) for MIMO equalization.
// Double-precision internally: 2x2 inversions at low noise variance are
// sensitive to cancellation.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::eq {

using dsp::cf32;
using dsp::cf64;

/// Row-major complex matrix with inline storage (no heap): the equalizer
/// builds and tears down several of these per subcarrier, so they must be
/// stack-only. Dimensions are capped at kMaxDim x kMaxDim (4 antennas is
/// the architectural limit of this PHY).
class CMatrix {
 public:
  static constexpr std::size_t kMaxDim = 4;

  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    if (rows > kMaxDim || cols > kMaxDim) {
      throw std::invalid_argument("CMatrix: dimensions exceed kMaxDim");
    }
    data_.fill(cf64{0.0, 0.0});
  }

  [[nodiscard]] static CMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] cf64& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const cf64& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Conjugate transpose.
  [[nodiscard]] CMatrix hermitian() const;

  [[nodiscard]] CMatrix operator*(const CMatrix& rhs) const;
  [[nodiscard]] CMatrix operator+(const CMatrix& rhs) const;
  CMatrix& add_diagonal(cf64 value);

  /// Matrix-vector product (allocates the result; prefer apply_into in loops).
  [[nodiscard]] std::vector<cf64> apply(std::span<const cf64> x) const;

  /// Matrix-vector product into caller storage: y must have rows() entries.
  void apply_into(std::span<const cf64> x, std::span<cf64> y) const;

  /// Gauss-Jordan inverse with partial pivoting.
  /// @throws std::runtime_error when singular (pivot below 1e-30).
  [[nodiscard]] CMatrix inverse() const;

  /// Frobenius norm squared.
  [[nodiscard]] double frob_sqr() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::array<cf64, kMaxDim * kMaxDim> data_{};
};

/// Build a CMatrix from per-subcarrier channel estimates h[rx][tx].
[[nodiscard]] CMatrix from_channel(std::span<const std::vector<cf32>> h_rows);

}  // namespace mimonet::eq
