// Rate-1/2, constraint-length-7 convolutional code with generator polynomials
// g0 = 133 (octal), g1 = 171 (octal) — the 802.11 BCC mother code — plus the
// standard puncturing patterns for rates 2/3, 3/4 and 5/6.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mimonet::fec {

/// Supported BCC coding rates.
enum class CodeRate : std::uint8_t { kR1_2, kR2_3, kR3_4, kR5_6 };

/// Numerator/denominator of a rate.
struct RateFraction {
  unsigned num;
  unsigned den;
};

[[nodiscard]] RateFraction rate_fraction(CodeRate r) noexcept;
[[nodiscard]] const char* rate_name(CodeRate r) noexcept;

/// Number of coded bits produced from `info_bits` information bits at rate
/// `r` (info_bits must be a multiple of the puncturing period numerator).
[[nodiscard]] std::size_t coded_length(std::size_t info_bits, CodeRate r);

inline constexpr unsigned kConstraintLength = 7;
inline constexpr unsigned kNumStates = 1U << (kConstraintLength - 1);  // 64

// Generators g0 = 133 octal (1 + D^2 + D^3 + D^5 + D^6) and g1 = 171 octal
// (1 + D + D^2 + D^3 + D^6). The shift register here keeps the *newest* bit
// at bit 0, so the masks are the bit-reversed octal constants (0x6D / 0x4F,
// the same values GNU Radio's 802.11 implementation uses).
inline constexpr std::uint32_t kPolyG0 = 0x6D;
inline constexpr std::uint32_t kPolyG1 = 0x4F;

/// Encode at rate 1/2. The caller is responsible for appending the 6 zero
/// tail bits if a terminated trellis is wanted (the 802.11n PPDU builder
/// does). Output is interleaved (A0 B0 A1 B1 ...), one bit per byte.
[[nodiscard]] std::vector<std::uint8_t> conv_encode(std::span<const std::uint8_t> bits);

/// conv_encode into caller storage (resized, capacity kept).
void conv_encode_into(std::span<const std::uint8_t> bits, std::vector<std::uint8_t>& out);

/// Puncture a rate-1/2 coded stream to the target rate. Identity for kR1_2.
[[nodiscard]] std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded,
                                                 CodeRate rate);

/// puncture into caller storage (resized, capacity kept).
void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   std::vector<std::uint8_t>& out);

/// Inverse of puncture() for soft values: re-inserts zero-LLR erasures so the
/// Viterbi decoder sees a full rate-1/2 stream. LLR convention: positive
/// means bit 0 more likely.
[[nodiscard]] std::vector<float> depuncture(std::span<const float> llrs, CodeRate rate);

/// depuncture into caller storage (resized, capacity kept).
void depuncture_into(std::span<const float> llrs, CodeRate rate, std::vector<float>& out);

/// The puncturing keep-mask for a rate: 1 = bit transmitted, 0 = punctured.
/// Pattern repeats every mask.size() rate-1/2 output bits.
[[nodiscard]] std::span<const std::uint8_t> puncture_mask(CodeRate rate) noexcept;

/// Stateful depuncture for chunked LLR streams: feeding the punctured stream
/// through consume() in arbitrary chunks appends exactly the depuncture_into()
/// output across the concatenation — each input LLR is preceded by the zero
/// erasures of the punctured mask positions before it, and trailing punctured
/// positions after the last input are not regenerated (one-shot semantics).
/// The batched decode path feeds each per-chunk merged stream straight into
/// the streaming Viterbi consumer through one of these.
class StreamingDepuncturer {
 public:
  explicit StreamingDepuncturer(CodeRate rate = CodeRate::kR1_2) { reset(rate); }

  /// Restart the mask phase for a new stream.
  void reset(CodeRate rate) noexcept {
    mask_ = puncture_mask(rate);
    pos_ = 0;
  }

  /// Depuncture `in` into `out` (resized, capacity kept across calls).
  void consume(std::span<const float> in, std::vector<float>& out);

 private:
  std::span<const std::uint8_t> mask_;
  std::size_t pos_ = 0;  // current position in the repeating mask
};

}  // namespace mimonet::fec
