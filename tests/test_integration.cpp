// Cross-module integration properties: determinism, monotonicity, and
// whole-system invariants that no single module test can see.
#include <gtest/gtest.h>

#include "core/link_simulator.hpp"
#include "core/phy_blocks.hpp"
#include "flowgraph/blocks.hpp"
#include "flowgraph/graph.hpp"
#include "wifi/psdu.hpp"

namespace {

using namespace mimonet;

TEST(Integration, SameSeedReproducesBitExactResults) {
  // The entire experiment suite leans on this: a LinkConfig fully
  // determines the outcome.
  auto make = [] {
    auto cfg = core::make_link_config(11, 12.0);
    cfg.channel.fading = true;
    cfg.channel.cfo_norm = 3e-4;
    cfg.seed = 1234;
    return cfg;
  };
  auto a = core::LinkSimulator(make()).run(10);
  auto b = core::LinkSimulator(make()).run(10);
  EXPECT_EQ(a.per.failures(), b.per.failures());
  EXPECT_EQ(a.ber.errors(), b.ber.errors());
  EXPECT_EQ(a.undetected, b.undetected);
  EXPECT_DOUBLE_EQ(a.snr_est_db.mean(), b.snr_est_db.mean());
}

TEST(Integration, DifferentSeedsDiffer) {
  auto cfg = core::make_link_config(11, 12.0);
  cfg.channel.fading = true;
  cfg.seed = 1;
  const auto a = core::LinkSimulator(cfg).run(10);
  cfg.seed = 2;
  const auto b = core::LinkSimulator(cfg).run(10);
  // Fading draws differ, so at least the SNR estimates must differ.
  EXPECT_NE(a.snr_est_db.mean(), b.snr_est_db.mean());
}

TEST(Integration, PerIsMonotoneInSnrCoarsely) {
  // Allow one inversion from Monte-Carlo noise, but the trend must hold.
  std::vector<double> per;
  for (const double snr : {2.0, 6.0, 10.0, 14.0}) {
    auto cfg = core::make_link_config(3, snr);
    cfg.psdu_payload_bytes = 400;
    cfg.seed = 31;
    per.push_back(core::LinkSimulator(cfg).run(15).per.per());
  }
  EXPECT_GE(per.front(), per.back());
  EXPECT_EQ(per.back(), 0.0);
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < per.size(); ++i) {
    if (per[i] > per[i - 1] + 1e-9) ++inversions;
  }
  EXPECT_LE(inversions, 1U);
}

TEST(Integration, AirtimeScalesInverselyWithMcs) {
  core::PhyConfig lo;
  lo.mcs = 0;
  core::PhyConfig hi;
  hi.mcs = 7;
  const core::Transmitter tx_lo(lo);
  const core::Transmitter tx_hi(hi);
  const double t_lo = tx_lo.layout(1500).airtime_us();
  const double t_hi = tx_hi.layout(1500).airtime_us();
  EXPECT_GT(t_lo, 5.0 * t_hi);  // 6.5 vs 65 Mb/s, preamble amortized
}

TEST(Integration, NStsHelper) {
  core::PhyConfig cfg;
  cfg.mcs = 3;
  EXPECT_EQ(cfg.n_sts(), 1U);
  cfg.stbc = true;
  EXPECT_EQ(cfg.n_sts(), 2U);
  cfg.stbc = false;
  cfg.mcs = 20;
  EXPECT_EQ(cfg.n_sts(), 3U);
}

TEST(Integration, ReceiverBlockSurvivesStreamEndingMidPacket) {
  // The flowgraph receiver must flush cleanly when the stream stops inside
  // a packet (e.g. the capture was cut short).
  core::PhyConfig phy;
  phy.mcs = 0;
  const core::Transmitter tx(phy);
  const auto psdu = wifi::build_psdu(wifi::MacHeader{},
                                     std::vector<std::uint8_t>(800, 1));
  auto streams = tx.transmit(psdu);
  streams[0].resize(streams[0].size() / 2);  // cut mid-data-field
  streams[0].insert(streams[0].begin(), 500, dsp::cf32{0.0F, 0.0F});

  auto src = std::make_shared<flowgraph::VectorSource<dsp::cf32>>(streams[0]);
  auto rx = std::make_shared<core::ReceiverBlock>(phy, 1);
  flowgraph::Graph g;
  g.add(src);
  g.add(rx);
  g.connect<dsp::cf32>(*src, 0, *rx, 0);
  EXPECT_NO_THROW(flowgraph::run_single_threaded(g));
  for (const auto& pkt : rx->packets()) {
    EXPECT_FALSE(pkt.fcs_ok);
  }
}

TEST(Integration, ResidualCfoReportedByTrackerMatchesInjectedError) {
  // Inject a CFO slightly beyond what coarse+fine estimation nails; the
  // pilot tracker's slope must report the leftover with the right sign.
  auto cfg = core::make_link_config(1, 28.0);
  cfg.psdu_payload_bytes = 1500;
  cfg.channel.cfo_norm = 9e-4;
  cfg.seed = 77;
  core::LinkSimulator sim(cfg);
  dsp::RunningStats resid;
  (void)sim.run(6, [&](const core::RxPacket& pkt, const auto&) {
    // total estimate = sync estimate + residual seen by the tracker.
    resid.add(pkt.sync.cfo_norm + pkt.residual_cfo_norm);
  });
  ASSERT_GT(resid.count(), 0U);
  EXPECT_NEAR(resid.mean(), 9e-4, 5e-5);
}

TEST(Integration, EveryMcsLayoutIsSelfConsistent) {
  for (unsigned mcs = 0; mcs <= wifi::kMaxMcs; ++mcs) {
    core::PhyConfig cfg;
    cfg.mcs = mcs;
    const core::Transmitter tx(cfg);
    const core::FrameLayout fl = tx.layout(1000);
    EXPECT_EQ(fl.nss, wifi::mcs_info(mcs).nss);
    EXPECT_GT(fl.n_data_symbols, 0U);
    EXPECT_EQ(fl.total_samples(),
              fl.data_offset() + fl.n_data_symbols * ofdm::kSymLen);
    // Data bits must fit: symbols * Ndbps >= service + psdu + tail.
    EXPECT_GE(fl.n_data_symbols * wifi::mcs_info(mcs).data_bits_per_symbol(),
              core::kServiceBits + 8000 + core::kTailBits);
  }
}

TEST(Integration, LinkSimulatorCountsUndetectedSeparately) {
  auto cfg = core::make_link_config(0, -15.0);  // buried in noise
  cfg.psdu_payload_bytes = 100;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(4);
  EXPECT_EQ(res.undetected, 4U);
  EXPECT_EQ(res.per.failures(), 4U);
  EXPECT_EQ(res.ber.bits(), 0U);  // nothing decoded, nothing compared
}

}  // namespace
