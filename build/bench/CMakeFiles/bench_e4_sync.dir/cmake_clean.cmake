file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_sync.dir/bench_e4_sync.cpp.o"
  "CMakeFiles/bench_e4_sync.dir/bench_e4_sync.cpp.o.d"
  "bench_e4_sync"
  "bench_e4_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
