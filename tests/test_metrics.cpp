// Measurement layer: BER/PER counters, EVM, throughput, confidence bounds.
#include <gtest/gtest.h>

#include "metrics/counters.hpp"

namespace {

using namespace mimonet::metrics;
using mimonet::dsp::cf32;

TEST(Wilson, ContainsTrueProportion) {
  const auto iv = wilson_interval(50, 100);
  EXPECT_LT(iv.lo, 0.5);
  EXPECT_GT(iv.hi, 0.5);
  EXPECT_GT(iv.lo, 0.38);
  EXPECT_LT(iv.hi, 0.62);
}

TEST(Wilson, ZeroTrialsGivesFullRange) {
  const auto iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(Wilson, ZeroSuccessesStillAboveZeroUpper) {
  const auto iv = wilson_interval(0, 1000);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_GT(iv.hi, 0.0);
  EXPECT_LT(iv.hi, 0.01);
}

TEST(BerCounter, CountsMismatches) {
  BerCounter ber;
  const std::vector<std::uint8_t> a{0, 1, 1, 0, 1};
  const std::vector<std::uint8_t> b{0, 1, 0, 0, 0};
  ber.add(a, b);
  EXPECT_EQ(ber.bits(), 5U);
  EXPECT_EQ(ber.errors(), 2U);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.4);
}

TEST(BerCounter, SizeMismatchThrows) {
  BerCounter ber;
  EXPECT_THROW(ber.add(std::vector<std::uint8_t>(3), std::vector<std::uint8_t>(4)),
               std::invalid_argument);
}

TEST(BerCounter, AddCountsAndReset) {
  BerCounter ber;
  ber.add_counts(3, 1000);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.003);
  ber.reset();
  EXPECT_EQ(ber.bits(), 0U);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.0);
}

TEST(PerCounter, TracksFailures) {
  PerCounter per;
  per.add(true);
  per.add(false);
  per.add(true);
  per.add(true);
  EXPECT_EQ(per.packets(), 4U);
  EXPECT_EQ(per.failures(), 1U);
  EXPECT_DOUBLE_EQ(per.per(), 0.25);
}

TEST(EvmMeter, KnownError) {
  EvmMeter evm;
  evm.add(cf32{1.1F, 0.0F}, cf32{1.0F, 0.0F});
  evm.add(cf32{0.9F, 0.0F}, cf32{1.0F, 0.0F});
  EXPECT_NEAR(evm.evm_rms(), 0.1, 1e-6);
  EXPECT_NEAR(evm.evm_db(), -20.0, 0.01);
}

TEST(EvmMeter, EmptyIsSafe) {
  EvmMeter evm;
  EXPECT_EQ(evm.evm_rms(), 0.0);
  EXPECT_EQ(evm.count(), 0U);
}

TEST(ThroughputMeter, GoodputAccounting) {
  ThroughputMeter tm;
  tm.add_packet(1000, 400.0);  // 8000 bits in 400 us = 20 Mb/s
  EXPECT_NEAR(tm.goodput_mbps(), 20.0, 1e-9);
  tm.add_packet(0, 400.0);  // lost packet halves goodput
  EXPECT_NEAR(tm.goodput_mbps(), 10.0, 1e-9);
  EXPECT_NEAR(tm.airtime_us(), 800.0, 1e-9);
}

}  // namespace
