
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_sync.cpp" "bench/CMakeFiles/bench_e4_sync.dir/bench_e4_sync.cpp.o" "gcc" "bench/CMakeFiles/bench_e4_sync.dir/bench_e4_sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mimonet_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_chanest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_ofdm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_eq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_mod.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_flowgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
