// E10 — Equalizer ablation under spatial correlation (Fig. reconstruction):
// how ZF / MMSE / ML degrade as the antennas become correlated and the
// channel matrix ill-conditioned.
//
// Expected shape: on i.i.d. channels the three are close; as correlation
// grows, ZF collapses first (noise enhancement ~ 1/sigma_min^2), MMSE
// degrades gracefully, ML holds out longest. The post-equalization SINR
// table shows the same story analytically.
#include <cstdio>

#include "bench_util.hpp"
#include "channel/fading.hpp"
#include "core/link_simulator.hpp"
#include "dsp/stats.hpp"

using namespace mimonet;

namespace {

double run_per(double rho, eq::EqualizerType type, double snr,
               std::size_t packets, std::uint64_t seed) {
  auto cfg = core::make_link_config(11, snr);  // 16-QAM 1/2, 2 streams
  cfg.psdu_payload_bytes = 400;
  cfg.phy.equalizer = type;
  cfg.channel.fading = true;
  cfg.channel.rho_tx = rho;
  cfg.channel.rho_rx = rho;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  return sim.run(packets).per.per();
}

}  // namespace

int main() {
  bench::heading("E10", "Equalizer ablation vs antenna correlation (Fig.)");
  constexpr std::size_t kPackets = 30;
  constexpr double kSnr = 24.0;
  bench::note("MCS 11 (16-QAM 1/2, 2x2), %zu packets per cell, %.0f dB SNR",
              kPackets, kSnr);

  std::printf("\n  PER vs correlation coefficient rho (both link ends)\n");
  const bench::Table table({"rho", "ZF", "MMSE", "ML"}, 10);
  std::string pts = "[";
  bool first = true;
  for (const double rho : {0.0, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    std::vector<std::string> cells{bench::fix(rho, 2)};
    for (const auto type :
         {eq::EqualizerType::kZeroForcing, eq::EqualizerType::kMmse,
          eq::EqualizerType::kMaxLikelihood}) {
      const double per = run_per(rho, type, kSnr, kPackets,
                                 100 + static_cast<std::uint64_t>(rho * 100));
      cells.push_back(bench::fix(per, 2));
      char obj[160];
      std::snprintf(obj, sizeof obj,
                    "%s{\"rho\": %g, \"eq\": \"%s\", \"per\": %.6g}",
                    first ? "" : ", ", rho,
                    std::string(eq::equalizer_name(type)).c_str(), per);
      pts += obj;
      first = false;
    }
    table.row(cells);
  }

  std::printf("\n  Analytic mean post-equalization SINR (dB) over 500 channels\n");
  const bench::Table t2({"rho", "ZF", "MMSE", "MF bound"}, 10);
  for (const double rho : {0.0, 0.5, 0.85, 0.95}) {
    channel::FadingGenerator gen(2, 2, channel::DelayProfile::kFlat, 55, rho, rho);
    dsp::RunningStats zf;
    dsp::RunningStats mmse;
    dsp::RunningStats mf;
    const auto nv = static_cast<float>(dsp::from_db(-kSnr));
    for (int t = 0; t < 500; ++t) {
      const auto re = gen.next();
      eq::CMatrix h(2, 2);
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t s = 0; s < 2; ++s) h(r, s) = dsp::cf64(re.taps[r][s][0]);
      }
      try {
        const auto a = eq::post_eq_sinr_db(h, nv, eq::EqualizerType::kZeroForcing);
        const auto b = eq::post_eq_sinr_db(h, nv, eq::EqualizerType::kMmse);
        const auto c = eq::post_eq_sinr_db(h, nv, eq::EqualizerType::kMaxLikelihood);
        zf.add(a[0]);
        mmse.add(b[0]);
        mf.add(c[0]);
      } catch (const std::runtime_error&) {
        // singular draw; skip
      }
    }
    t2.row({bench::fix(rho, 2), bench::fix(zf.mean(), 1), bench::fix(mmse.mean(), 1),
            bench::fix(mf.mean(), 1)});
  }
  bench::note("expected: ZF PER rises steeply past rho ~0.7; ML stays lowest;");
  bench::note("SINR gap ZF->MMSE widens with rho");

  bench::JsonReport report("e10_equalizers");
  report.field("packets_per_point", kPackets)
      .field("snr_db", kSnr)
      .raw("points", pts + "]")
      .emit();
  return 0;
}
