#include "metrics/stream_stats.hpp"

namespace mimonet::metrics {

void StreamStats::merge(const StreamStats& other) noexcept {
  frames += other.frames;
  delivered += other.delivered;
  resync_events += other.resync_events;
  budget_exhaustions += other.budget_exhaustions;
  samples_scanned += other.samples_scanned;
  errors.merge(other.errors);
  for (std::size_t s = 0; s < stream_sinr_db.size(); ++s) {
    stream_sinr_db[s].merge(other.stream_sinr_db[s]);
  }
}

void StreamStats::reset() noexcept {
  frames = 0;
  delivered = 0;
  resync_events = 0;
  budget_exhaustions = 0;
  samples_scanned = 0;
  errors.reset();
  for (auto& s : stream_sinr_db) s.reset();
}

}  // namespace mimonet::metrics
