#include "dsp/correlator.hpp"

#include <cmath>
#include <stdexcept>

namespace mimonet::dsp {

MovingSum::MovingSum(std::size_t window) : buf_(window, cf64{0.0, 0.0}) {
  if (window == 0) throw std::invalid_argument("MovingSum: zero window");
}

cf64 MovingSum::push(cf64 x) noexcept {
  sum_ += x - buf_[head_];
  buf_[head_] = x;
  head_ = (head_ + 1) % buf_.size();
  return sum_;
}

void MovingSum::reset() noexcept {
  for (auto& v : buf_) v = cf64{0.0, 0.0};
  sum_ = cf64{0.0, 0.0};
  head_ = 0;
}

MovingSumReal::MovingSumReal(std::size_t window) : buf_(window, 0.0) {
  if (window == 0) throw std::invalid_argument("MovingSumReal: zero window");
}

double MovingSumReal::push(double x) noexcept {
  sum_ += x - buf_[head_];
  buf_[head_] = x;
  head_ = (head_ + 1) % buf_.size();
  return sum_;
}

void MovingSumReal::reset() noexcept {
  for (auto& v : buf_) v = 0.0;
  sum_ = 0.0;
  head_ = 0;
}

void lag_autocorrelate_into(std::span<const cf32> x, std::size_t lag,
                            std::size_t window, AutocorrResult& res) {
  if (lag == 0 || window == 0) {
    throw std::invalid_argument("lag_autocorrelate: lag and window must be > 0");
  }
  if (x.size() < lag + window) {
    res.corr.clear();
    res.power.clear();
    res.metric.clear();
    return;
  }

  const std::size_t n_out = x.size() - lag - window + 1;
  res.corr.resize(n_out);
  res.power.resize(n_out);
  res.metric.resize(n_out);

  // Sliding sums updated as sum += entering - leaving, the exact MovingSum
  // ring-buffer recurrence; the leaving term is recomputed from x instead of
  // stored, which yields the same bits (same operands, same ops).
  const auto prod = [&](std::size_t k) {
    return cf64(x[k]) * std::conj(cf64(x[k + lag]));
  };
  const auto lead = [&](std::size_t k) { return static_cast<double>(mag_sqr(x[k])); };
  const auto lagp = [&](std::size_t k) {
    return static_cast<double>(mag_sqr(x[k + lag]));
  };

  cf64 corr_sum{0.0, 0.0};
  double pow_lead = 0.0;
  double pow_lag = 0.0;
  for (std::size_t k = 0; k < window; ++k) {
    corr_sum += prod(k) - cf64{0.0, 0.0};
    pow_lead += lead(k) - 0.0;
    pow_lag += lagp(k) - 0.0;
  }
  for (std::size_t n = 0;; ++n) {
    const cf64 c = corr_sum;
    const double pp = pow_lead * pow_lag;
    res.corr[n] = cf32(static_cast<float>(c.real()), static_cast<float>(c.imag()));
    res.power[n] = static_cast<float>(std::sqrt(std::max(pp, 0.0)));
    res.metric[n] = (pp > 0.0) ? static_cast<float>(mag_sqr(c) / pp) : 0.0F;
    if (n + 1 >= n_out) break;
    const std::size_t k = n + window;  // next sample entering the window
    corr_sum += prod(k) - prod(n);
    pow_lead += lead(k) - lead(n);
    pow_lag += lagp(k) - lagp(n);
  }
}

AutocorrResult lag_autocorrelate(std::span<const cf32> x, std::size_t lag,
                                 std::size_t window) {
  AutocorrResult res;
  lag_autocorrelate_into(x, lag, window, res);
  return res;
}

}  // namespace mimonet::dsp
