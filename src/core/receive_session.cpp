#include "core/receive_session.hpp"

#include <thread>
#include <utility>

#include "core/mu_receiver.hpp"
#include "core/receiver_farm.hpp"
#include "core/workspace.hpp"

namespace mimonet::core {

ReceiveSessionConfig::Builder ReceiveSessionConfig::make() { return {}; }

std::size_t ReceiveSessionConfig::resolved_workers() const {
  if (workers != 0) return workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

std::size_t ReceiveSessionConfig::resolved_seam(const PhyConfig& phy) const {
  if (seam_samples != 0) return seam_samples;
  // Upper bound on any frame's sample extent: the widest HT preamble (4
  // space-time streams) combined with the largest data-symbol count any
  // supported coding takes for max_frame_bytes — MCS 0 carries the fewest
  // bits per symbol, and STBC's even-symbol rounding can add one more.
  FrameLayout fl;
  fl.nss = 4;
  fl.n_data_symbols = data_symbol_count(wifi::mcs_info(0), max_frame_bytes,
                                        phy.fec_enabled, /*stbc=*/true,
                                        phy.fec_type);
  // Plus a re-alignment margin: a shard scan entering mid-packet burns a
  // few resync hops (and possibly one bounded rewind) inside its lead-in
  // before locking onto the first candidate it owns.
  return fl.total_samples() + 8 * resync_advance + 256;
}

ReceiveSession::ReceiveSession(PhyConfig phy, std::size_t nrx,
                               ReceiveSessionConfig cfg)
    : cfg_(cfg),
      engine_(std::move(phy), nrx, cfg.scan_config()),
      nrx_(nrx),
      ws_(std::make_unique<RxWorkspace>()) {}

ReceiveSession::~ReceiveSession() = default;

ReceiverFarm& ReceiveSession::farm() {
  if (!farm_) {
    farm_ = std::make_unique<ReceiverFarm>(engine_.config(), nrx_, cfg_);
  }
  return *farm_;
}

bool ReceiveSession::receive_one(
    std::span<const std::span<const cf32>> capture) {
  const bool got = engine_.receiver().receive(capture, *ws_);
  const RxPacket& pkt = ws_->packet;
  stats_.samples_scanned += capture.empty() ? 0 : capture[0].size();
  stats_.errors.add(pkt.error);
  if (pkt.htsig_ok) ++stats_.frames;
  if (got) ++stats_.delivered;
  return got;
}

bool ReceiveSession::receive_one(
    const std::vector<std::vector<cf32>>& capture) {
  std::vector<std::span<const cf32>> spans(capture.begin(), capture.end());
  return receive_one(std::span<const std::span<const cf32>>(spans));
}

const RxPacket& ReceiveSession::packet() const noexcept { return ws_->packet; }

bool ReceiveSession::receive_mu_one(
    std::span<const std::span<const cf32>> capture, std::size_t n_users,
    std::size_t psdu_bytes) {
  if (!mu_rx_ || mu_rx_->n_users() != n_users) {
    mu_rx_ = std::make_unique<MuUplinkReceiver>(engine_.config(), n_users, nrx_);
    if (!mu_ws_) mu_ws_ = std::make_unique<MuRxWorkspace>();
  }
  if (mu_stats_.size() < n_users) mu_stats_.resize(n_users);

  const bool got = mu_rx_->receive(capture, psdu_bytes, *mu_ws_);
  const std::size_t samples = capture.empty() ? 0 : capture[0].size();
  stats_.samples_scanned += samples;

  for (std::size_t u = 0; u < n_users; ++u) {
    StreamStats& st = mu_stats_[u];
    st.samples_scanned += samples;
    if (!got) {
      st.errors.add(metrics::RxError::kNoSync);
      stats_.errors.add(metrics::RxError::kNoSync);
      continue;
    }
    const MuUserPacket& up = mu_ws_->packet.users[u];
    ++st.frames;
    ++stats_.frames;
    const auto err =
        up.fcs_ok ? metrics::RxError::kOk : metrics::RxError::kFcsFail;
    st.errors.add(err);
    stats_.errors.add(err);
    if (up.fcs_ok) {
      ++st.delivered;
      ++stats_.delivered;
    }
    st.stream_sinr_db[0].add(up.sinr_db);
    stats_.stream_sinr_db[u].add(up.sinr_db);
  }
  return got;
}

const MuRxPacket& ReceiveSession::mu_packet() const { return mu_ws_->packet; }

void ReceiveSession::scan(std::span<const std::span<const cf32>> capture,
                          const EventFn& on_event) {
  // max_packets caps the *global* frame count, which has no per-shard
  // meaning — such scans stay on the calling thread regardless of workers.
  if (cfg_.resolved_workers() > 1 && cfg_.max_packets == 0) {
    farm().scan(capture, stats_, on_event);
  } else {
    engine_.scan(capture, *ws_, stats_, on_event);
  }
}

std::vector<StreamRecord> ReceiveSession::receive_all(
    const std::vector<std::vector<cf32>>& capture) {
  std::vector<StreamRecord> out;
  std::vector<std::span<const cf32>> spans(capture.begin(), capture.end());
  scan(std::span<const std::span<const cf32>>(spans),
       [&out](const StreamEvent& ev) {
         StreamRecord rec;
         rec.offset = ev.offset;
         rec.error = ev.error;
         if (ev.packet != nullptr) {
           rec.has_packet = true;
           rec.packet = *ev.packet;
         }
         out.push_back(std::move(rec));
       });
  return out;
}

void ReceiveSession::run_streams(std::span<const StreamJob> jobs,
                                 std::span<StreamStats> per_stream) {
  ReceiverFarm& f = farm();
  f.run(jobs, per_stream);
  stats_.merge(f.last_run_stats());
}

}  // namespace mimonet::core
