file(REMOVE_RECURSE
  "libmimonet_core.a"
)
