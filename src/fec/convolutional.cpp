#include "fec/convolutional.hpp"

#include <array>
#include <bit>
#include <stdexcept>

namespace mimonet::fec {

namespace {

// Keep-masks over rate-1/2 output bits [A1 B1 A2 B2 ...], per 802.11-2016
// clause 17.3.5.7 (figure 17-9).
constexpr std::array<std::uint8_t, 2> kMask12{1, 1};
constexpr std::array<std::uint8_t, 4> kMask23{1, 1, 1, 0};
constexpr std::array<std::uint8_t, 6> kMask34{1, 1, 1, 0, 0, 1};
constexpr std::array<std::uint8_t, 10> kMask56{1, 1, 1, 0, 0, 1, 1, 0, 0, 1};

[[nodiscard]] std::uint8_t parity(std::uint32_t x) noexcept {
  return static_cast<std::uint8_t>(std::popcount(x) & 1);
}

}  // namespace

RateFraction rate_fraction(CodeRate r) noexcept {
  switch (r) {
    case CodeRate::kR1_2: return {1, 2};
    case CodeRate::kR2_3: return {2, 3};
    case CodeRate::kR3_4: return {3, 4};
    case CodeRate::kR5_6: return {5, 6};
  }
  return {1, 2};
}

const char* rate_name(CodeRate r) noexcept {
  switch (r) {
    case CodeRate::kR1_2: return "1/2";
    case CodeRate::kR2_3: return "2/3";
    case CodeRate::kR3_4: return "3/4";
    case CodeRate::kR5_6: return "5/6";
  }
  return "?";
}

std::size_t coded_length(std::size_t info_bits, CodeRate r) {
  const auto [num, den] = rate_fraction(r);
  if (info_bits % num != 0) {
    throw std::invalid_argument("coded_length: info bits not a multiple of rate numerator");
  }
  return info_bits / num * den;
}

void conv_encode_into(std::span<const std::uint8_t> bits, std::vector<std::uint8_t>& out) {
  out.resize(bits.size() * 2);
  std::uint32_t shreg = 0;  // bit 0 = newest input bit
  std::size_t o = 0;
  for (const std::uint8_t b : bits) {
    shreg = ((shreg << 1U) | (b & 1U)) & 0x7FU;
    out[o++] = parity(shreg & kPolyG0);
    out[o++] = parity(shreg & kPolyG1);
  }
}

std::vector<std::uint8_t> conv_encode(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  conv_encode_into(bits, out);
  return out;
}

std::span<const std::uint8_t> puncture_mask(CodeRate rate) noexcept {
  switch (rate) {
    case CodeRate::kR1_2: return kMask12;
    case CodeRate::kR2_3: return kMask23;
    case CodeRate::kR3_4: return kMask34;
    case CodeRate::kR5_6: return kMask56;
  }
  return kMask12;
}

void puncture_into(std::span<const std::uint8_t> coded, CodeRate rate,
                   std::vector<std::uint8_t>& out) {
  const auto mask = puncture_mask(rate);
  out.clear();
  out.reserve(coded.size());
  std::size_t i = 0;
  while (i < coded.size()) {
    for (std::size_t mi = 0; mi < mask.size() && i < coded.size(); ++mi, ++i) {
      if (mask[mi] != 0) out.push_back(coded[i]);
    }
  }
}

std::vector<std::uint8_t> puncture(std::span<const std::uint8_t> coded, CodeRate rate) {
  std::vector<std::uint8_t> out;
  puncture_into(coded, rate, out);
  return out;
}

void depuncture_into(std::span<const float> llrs, CodeRate rate, std::vector<float>& out) {
  const auto mask = puncture_mask(rate);
  // Output covers every mask position up to and including the one that
  // consumes the last input LLR; trailing punctured positions are not
  // regenerated (the caller pads to an even count if needed).
  std::size_t keeps_per_period = 0;
  for (const auto m : mask) keeps_per_period += (m != 0) ? 1 : 0;
  std::size_t full_periods = llrs.size() / keeps_per_period;
  std::size_t rem = llrs.size() % keeps_per_period;
  if (rem == 0 && full_periods > 0) {
    // The output ends at the position consuming the last LLR, so the final
    // period is truncated after its last keep position (matters for the 2/3
    // mask, whose trailing position is punctured).
    --full_periods;
    rem = keeps_per_period;
  }
  std::size_t tail = 0;
  if (rem != 0) {
    std::size_t seen = 0;
    while (seen < rem) {
      if (mask[tail] != 0) ++seen;
      ++tail;
    }
  }
  out.resize(full_periods * mask.size() + tail);

  std::size_t o = 0;
  std::size_t in_idx = 0;
  while (o < out.size()) {
    for (std::size_t mi = 0; mi < mask.size() && o < out.size(); ++mi, ++o) {
      out[o] = (mask[mi] != 0) ? llrs[in_idx++] : 0.0F;
    }
  }
}

std::vector<float> depuncture(std::span<const float> llrs, CodeRate rate) {
  std::vector<float> out;
  depuncture_into(llrs, rate, out);
  return out;
}

void StreamingDepuncturer::consume(std::span<const float> in, std::vector<float>& out) {
  out.clear();
  for (const float v : in) {
    while (mask_[pos_] == 0) {
      out.push_back(0.0F);
      pos_ = (pos_ + 1) % mask_.size();
    }
    out.push_back(v);
    pos_ = (pos_ + 1) % mask_.size();
  }
}

}  // namespace mimonet::fec
