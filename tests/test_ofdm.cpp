// OFDM layer: subcarrier maps, pilots, symbol modulation round trips,
// cyclic shifts.
#include <gtest/gtest.h>

#include <random>

#include "dsp/vector_ops.hpp"
#include "ofdm/pilots.hpp"
#include "ofdm/subcarriers.hpp"
#include "ofdm/symbol.hpp"

namespace {

using namespace mimonet::ofdm;
using mimonet::dsp::cf32;

TEST(SubcarrierMap, LegacyCounts) {
  const SubcarrierMap m(CarrierPlan::kLegacy);
  EXPECT_EQ(m.num_data(), 48U);
  EXPECT_EQ(m.num_pilots(), 4U);
  EXPECT_EQ(m.num_occupied(), 52U);
}

TEST(SubcarrierMap, HtCounts) {
  const SubcarrierMap m(CarrierPlan::kHt);
  EXPECT_EQ(m.num_data(), 52U);
  EXPECT_EQ(m.num_occupied(), 56U);
}

TEST(SubcarrierMap, DcAndPilotsExcludedFromData) {
  const SubcarrierMap m(CarrierPlan::kHt);
  for (const int k : m.data_logical()) {
    EXPECT_NE(k, 0);
    for (const int p : kPilotCarriers) EXPECT_NE(k, p);
  }
}

TEST(SubcarrierMap, LogicalToBinWraps) {
  EXPECT_EQ(SubcarrierMap::logical_to_bin(0), 0U);
  EXPECT_EQ(SubcarrierMap::logical_to_bin(1), 1U);
  EXPECT_EQ(SubcarrierMap::logical_to_bin(-1), 63U);
  EXPECT_EQ(SubcarrierMap::logical_to_bin(-26), 38U);
  EXPECT_EQ(SubcarrierMap::logical_to_bin(26), 26U);
}

TEST(SubcarrierMap, DataBinsAscendByLogicalIndex) {
  const SubcarrierMap m(CarrierPlan::kHt);
  const auto& logical = m.data_logical();
  for (std::size_t i = 1; i < logical.size(); ++i) {
    EXPECT_LT(logical[i - 1], logical[i]);
  }
}

TEST(Pilots, PolarityIs127Periodic) {
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(pilot_polarity(i), pilot_polarity(i + 127));
  }
}

TEST(Pilots, PolarityFirstValueIsPositive) {
  // p_0 = +1 per 802.11 (first scrambler output bit with all-ones seed is 0).
  EXPECT_EQ(pilot_polarity(0), 1.0F);
}

TEST(Pilots, PatternsAreOrthogonalAcrossStreams) {
  // The 2-stream pilot patterns must be orthogonal over the 4 tones so the
  // receiver can separate per-stream pilot contributions.
  const auto p0 = pilot_pattern(2, 0);
  const auto p1 = pilot_pattern(2, 1);
  float dot = 0.0F;
  for (std::size_t i = 0; i < 4; ++i) dot += p0[i] * p1[i];
  EXPECT_FLOAT_EQ(dot, 0.0F);
}

TEST(Pilots, InvalidStreamIndexThrows) {
  EXPECT_THROW(pilot_pattern(2, 2), std::invalid_argument);
  EXPECT_THROW(pilot_pattern(5, 0), std::invalid_argument);
}

TEST(Pilots, HtDataPilotsRotateAcrossSymbols) {
  // The pattern slides one tone per symbol: tone p of symbol n equals tone
  // (p+1) of symbol n-1 up to the polarity factor.
  const auto s0 = ht_data_pilots(2, 0, 0);
  const auto s1 = ht_data_pilots(2, 0, 1);
  const float pol0 = pilot_polarity(3);
  const float pol1 = pilot_polarity(4);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_FLOAT_EQ(s1[p].real() / pol1, s0[p + 1].real() / pol0);
  }
}

TEST(Pilots, LegacyValuesFollowPolarity) {
  const auto v = legacy_pilot_values(0);
  EXPECT_FLOAT_EQ(v[0].real(), 1.0F);
  EXPECT_FLOAT_EQ(v[3].real(), -1.0F);
}

class SymbolRoundTrip : public ::testing::TestWithParam<CarrierPlan> {};

TEST_P(SymbolRoundTrip, ModulateDemodulateRecoversCarriers) {
  const CarrierPlan plan = GetParam();
  const SymbolModulator mod(plan);
  const SymbolDemodulator demod(plan);

  std::mt19937 rng(5);
  std::uniform_real_distribution<float> d(-1.0F, 1.0F);
  std::vector<cf32> data(mod.map().num_data());
  for (auto& v : data) v = cf32(d(rng), d(rng));
  const std::array<cf32, 4> pilots{cf32{1, 0}, cf32{1, 0}, cf32{1, 0}, cf32{-1, 0}};

  std::vector<cf32> time;
  mod.modulate(data, pilots, time);
  ASSERT_EQ(time.size(), kSymLen);

  const auto sym = demod.demodulate(time);
  ASSERT_EQ(sym.data.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(sym.data[i] - data[i]), 0.0F, 1e-4F) << "carrier " << i;
  }
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_NEAR(std::abs(sym.pilots[p] - pilots[p]), 0.0F, 1e-4F);
  }
}

TEST_P(SymbolRoundTrip, CyclicPrefixIsCopyOfTail) {
  const CarrierPlan plan = GetParam();
  const SymbolModulator mod(plan);
  std::vector<cf32> data(mod.map().num_data(), cf32{0.5F, -0.5F});
  const std::array<cf32, 4> pilots{cf32{1, 0}, cf32{1, 0}, cf32{1, 0}, cf32{-1, 0}};
  std::vector<cf32> time;
  mod.modulate(data, pilots, time);
  for (std::size_t i = 0; i < kCpLen; ++i) {
    EXPECT_NEAR(std::abs(time[i] - time[kFftSize + i]), 0.0F, 1e-5F);
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, SymbolRoundTrip,
                         ::testing::Values(CarrierPlan::kLegacy, CarrierPlan::kHt));

TEST(SymbolModulator, WrongCarrierCountThrows) {
  const SymbolModulator mod(CarrierPlan::kHt);
  std::vector<cf32> bad(48);
  const std::array<cf32, 4> pilots{};
  std::vector<cf32> out;
  EXPECT_THROW(mod.modulate(bad, pilots, out), std::invalid_argument);
}

TEST(SymbolDemodulator, WrongLengthThrows) {
  const SymbolDemodulator demod(CarrierPlan::kHt);
  std::vector<cf32> bad(79);
  EXPECT_THROW(demod.demodulate(bad), std::invalid_argument);
}

TEST(CyclicShiftGrid, EquivalentToTimeRotation) {
  // IFFT(shifted grid) == circular rotation of IFFT(grid).
  std::mt19937 rng(17);
  std::uniform_real_distribution<float> d(-1.0F, 1.0F);
  std::vector<cf32> grid(kFftSize);
  for (auto& v : grid) v = cf32(d(rng), d(rng));

  const mimonet::dsp::FftPlan plan(kFftSize);
  std::vector<cf32> time_ref(kFftSize);
  plan.inverse(grid, time_ref);

  auto shifted = grid;
  const int cs = -4;
  cyclic_shift_grid(shifted, cs);
  std::vector<cf32> time_shifted(kFftSize);
  plan.inverse(shifted, time_shifted);

  // x_cs[n] = x[(n - cs) mod 64]
  for (std::size_t n = 0; n < kFftSize; ++n) {
    const std::size_t src = (n + kFftSize - static_cast<std::size_t>(
                                                 (cs % 64 + 64) % 64)) %
                            kFftSize;
    EXPECT_NEAR(std::abs(time_shifted[n] - time_ref[src]), 0.0F, 1e-4F) << n;
  }
}

TEST(CyclicShiftGrid, ZeroShiftIsIdentity) {
  std::vector<cf32> grid(kFftSize, cf32{1.0F, 2.0F});
  const auto ref = grid;
  cyclic_shift_grid(grid, 0);
  EXPECT_EQ(grid.size(), ref.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i], ref[i]);
  }
}

}  // namespace
