// E19 — receiver farm: saturation table, aggregate packets/sec vs workers.
//
// Two shapes, both over core::ReceiverFarm's persistent worker pool:
//   sharded       one long multi-packet capture split across N workers with
//                 overlap-save seams (results bit-identical to the
//                 single-threaded scan — asserted here, not assumed)
//   base_station  many independent per-user streams multiplexed over the
//                 pool via the fair work-stealing deques
//
// Wall-clock scaling tracks the machine: on a 1-CPU container every worker
// count measures the same core and the speedup column sits near 1.0; on a
// multicore runner the 4-worker rows show the pool's parallel headroom. The
// table reports whatever the hardware gave, plus hardware_concurrency, so
// readers can judge the speedup column against the cores that produced it.
//
// MIMONET_BENCH_PACKETS overrides the per-capture packet count and
// MIMONET_BENCH_STREAMS the base-station stream count (check.sh's
// farm-smoke step uses small values). Results merge into BENCH_stream.json
// under the "farm" key, alongside E18's single-thread scan cases.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "channel/mimo_channel.hpp"
#include "core/receive_session.hpp"
#include "core/receiver_farm.hpp"
#include "core/stream_receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;
using dsp::cf32;

namespace {

constexpr std::size_t kPayloadBytes = 500;
constexpr std::size_t kGapLen = 500;

struct Stream {
  core::PhyConfig phy;
  std::vector<std::vector<cf32>> capture;
  std::size_t n_packets = 0;
  std::size_t frame_len = 0;
};

Stream make_stream(unsigned mcs, std::size_t n_packets, std::uint64_t seed) {
  Stream s;
  s.phy.mcs = mcs;
  s.n_packets = n_packets;
  const core::Transmitter tx(s.phy);
  const std::size_t nss = tx.num_streams();

  std::vector<std::uint8_t> payload(kPayloadBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 17 + seed);
  }
  const auto psdu = wifi::build_psdu(wifi::MacHeader{}, payload);
  const auto streams = tx.transmit(psdu);
  s.frame_len = streams[0].size();

  std::vector<std::vector<cf32>> concat(nss);
  for (std::size_t p = 0; p < n_packets; ++p) {
    for (std::size_t c = 0; c < nss; ++c) {
      concat[c].insert(concat[c].end(), streams[c].begin(), streams[c].end());
      if (p + 1 < n_packets) concat[c].resize(concat[c].size() + kGapLen);
    }
  }

  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = 30.0;
  ccfg.timing_pad = 200;
  ccfg.tail_pad = 120;
  ccfg.seed = 0xE190 + seed;
  channel::MimoChannel chan(ccfg);
  s.capture = chan.transmit(concat);
  return s;
}

std::vector<std::span<const cf32>> as_spans(
    const std::vector<std::vector<cf32>>& capture) {
  return {capture.begin(), capture.end()};
}

core::ReceiveSessionConfig farm_cfg(const Stream& s, std::size_t workers) {
  return core::ReceiveSessionConfig::make()
      .workers(workers)
      .seam(s.frame_len + 2048)
      .build();
}

struct Measurement {
  double packets_per_sec = 0.0;
  double speedup = 1.0;
  std::size_t delivered = 0;
  bool exact = true;
};

/// Sharded scan of one long capture, timed over `passes`, checked
/// bit-identical (delivered/frames/resyncs/samples) against the
/// single-thread baseline.
Measurement run_sharded(const Stream& s, std::size_t workers,
                        std::size_t passes, double base_pps) {
  core::ReceiverFarm farm(s.phy, s.capture.size(), farm_cfg(s, workers));
  const auto spans = as_spans(s.capture);

  core::StreamStats base;
  {
    const core::StreamReceiver srx(s.phy, s.capture.size());
    core::RxWorkspace ws;
    srx.scan(spans, ws, base, [](const core::StreamEvent&) {});
  }

  core::StreamStats warm;
  farm.scan(spans, warm, [](const core::StreamEvent&) {});

  core::StreamStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < passes; ++i) {
    farm.scan(spans, stats, [](const core::StreamEvent&) {});
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  Measurement m;
  m.delivered = stats.delivered / passes;
  m.packets_per_sec = static_cast<double>(stats.delivered) / secs;
  m.speedup = base_pps > 0.0 ? m.packets_per_sec / base_pps : 1.0;
  m.exact = stats.delivered == passes * base.delivered &&
            stats.frames == passes * base.frames &&
            stats.resync_events == passes * base.resync_events &&
            stats.samples_scanned == passes * base.samples_scanned;
  return m;
}

/// Base-station run over `streams` independent captures, timed per pass.
Measurement run_base_station(const std::vector<Stream>& users,
                             std::size_t workers, std::size_t passes,
                             double base_pps) {
  core::ReceiverFarm farm(users[0].phy, users[0].capture.size(),
                          farm_cfg(users[0], workers));
  std::vector<std::vector<std::span<const cf32>>> spans;
  spans.reserve(users.size());
  for (const auto& u : users) spans.push_back(as_spans(u.capture));
  std::vector<core::StreamJob> jobs;
  jobs.reserve(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    jobs.push_back(core::StreamJob{
        u, std::span<const std::span<const cf32>>(spans[u])});
  }
  std::vector<core::StreamStats> per_stream(users.size());
  farm.run(jobs, per_stream);  // warm pass

  for (auto& st : per_stream) st.reset();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < passes; ++i) farm.run(jobs, per_stream);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  std::size_t delivered = 0;
  std::size_t expected = 0;
  for (std::size_t u = 0; u < users.size(); ++u) {
    delivered += per_stream[u].delivered;
    expected += passes * users[u].n_packets;
  }
  Measurement m;
  m.delivered = delivered / passes;
  m.packets_per_sec = static_cast<double>(delivered) / secs;
  m.speedup = base_pps > 0.0 ? m.packets_per_sec / base_pps : 1.0;
  m.exact = delivered == expected;
  return m;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

}  // namespace

int main() {
  bench::heading("E19", "Receiver farm: saturation vs worker count");

  const std::size_t n_packets = env_size("MIMONET_BENCH_PACKETS", 24);
  const std::size_t n_streams = env_size("MIMONET_BENCH_STREAMS", 8);
  constexpr std::size_t kPasses = 2;
  const std::vector<std::size_t> worker_counts{1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();

  bench::note("%zu packets/capture, %zu streams, %zu-byte payload, "
              "hardware_concurrency=%u, %zu timed passes",
              n_packets, n_streams, kPayloadBytes, hw, kPasses);

  const bench::Table table(
      {"mode", "workers", "pkt/s", "speedup", "delivered"}, 14);

  bool ok = true;
  std::string shard_json = "[";
  std::string bs_json = "[";

  // Sharded: one long capture (all streams' packets worth of samples).
  const Stream longcap = make_stream(7, n_packets, 1);
  double shard_base = 0.0;
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    const std::size_t w = worker_counts[i];
    const auto m = run_sharded(longcap, w, kPasses, shard_base);
    if (w == 1) shard_base = m.packets_per_sec;
    ok = ok && m.exact && m.delivered == longcap.n_packets;
    table.row({"sharded", std::to_string(w), bench::fix(m.packets_per_sec, 1),
               bench::fix(w == 1 ? 1.0 : m.speedup, 2),
               std::to_string(m.delivered) + "/" +
                   std::to_string(longcap.n_packets)});
    if (i != 0) shard_json += ", ";
    shard_json += "{\"workers\": " + std::to_string(w) +
                  ", \"packets_per_sec\": " + bench::fix(m.packets_per_sec, 3) +
                  ", \"speedup_vs_1\": " +
                  bench::fix(w == 1 ? 1.0 : m.speedup, 4) +
                  ", \"bit_identical\": " + (m.exact ? "true" : "false") + "}";
  }
  shard_json += "]";

  // Base station: n_streams independent users, a few packets each.
  std::vector<Stream> users;
  const std::size_t per_user =
      std::max<std::size_t>(2, n_packets / n_streams + 1);
  for (std::size_t u = 0; u < n_streams; ++u) {
    users.push_back(make_stream(7, per_user, 10 + u));
  }
  double bs_base = 0.0;
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    const std::size_t w = worker_counts[i];
    const auto m = run_base_station(users, w, kPasses, bs_base);
    if (w == 1) bs_base = m.packets_per_sec;
    ok = ok && m.exact;
    table.row({"base_station", std::to_string(w),
               bench::fix(m.packets_per_sec, 1),
               bench::fix(w == 1 ? 1.0 : m.speedup, 2),
               std::to_string(m.delivered) + "/" +
                   std::to_string(n_streams * per_user)});
    if (i != 0) bs_json += ", ";
    bs_json += "{\"workers\": " + std::to_string(w) +
               ", \"streams\": " + std::to_string(n_streams) +
               ", \"packets_per_sec\": " + bench::fix(m.packets_per_sec, 3) +
               ", \"speedup_vs_1\": " +
               bench::fix(w == 1 ? 1.0 : m.speedup, 4) +
               ", \"all_delivered\": " + (m.exact ? "true" : "false") + "}";
  }
  bs_json += "]";

  bench::JsonReport report("stream");
  const std::string farm_obj =
      "{\"hardware_concurrency\": " + std::to_string(hw) +
      ", \"packets_per_capture\": " + std::to_string(n_packets) +
      ", \"streams\": " + std::to_string(n_streams) +
      ", \"sharded\": " + shard_json +
      ", \"base_station\": " + bs_json +
      ", \"all_exact\": " + (ok ? "true" : "false") + "}";
  report.raw("farm", farm_obj);
  report.emit_merged();  // preserve E18's scan cases in BENCH_stream.json
  return ok ? 0 : 1;
}
