// Multi-user Monte-Carlo harness: the MU counterpart of LinkSimulator.
//
//  - Downlink: sound every user's channel, age the air by the configured
//    CSI staleness, zero-force precode, mix the user PPDUs at the base
//    station, then run each user's capture through an unmodified 1x1
//    Receiver (the effective precoded channel is just another channel to
//    estimate).
//  - Uplink: every user transmits its PPDU as virtual space-time stream u
//    of U (see Transmitter::transmit_virtual_into); the superposition at
//    the BS antennas goes through MuUplinkReceiver's joint detection.
//
// The engine keeps LinkSimulator's determinism contract: every random draw
// for packet p derives from (cfg.user.seed, p) via the same splitmix64
// discipline, partial results merge in packet order on the calling thread,
// so MuLinkResult aggregates are bit-identical for any n_threads. With
// n_users == 1 on the downlink the engine delegates to the single-user
// per-packet path verbatim — the "MU collapses to SU" pin is a structural
// identity, not a tolerance.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/multi_user_channel.hpp"
#include "core/link_simulator.hpp"

namespace mimonet::core {

/// One simulated multi-user link. `user` is the per-user template: its phy
/// must be a 1-stream MCS without STBC (every user runs the same one — the
/// triggered-MU simplification), its channel block seeds the per-user
/// channels, its seed/psdu_payload_bytes drive the packet schedule.
struct MuLinkConfig {
  LinkConfig user{};
  std::size_t n_users = 1;
  /// Base-station antennas; 0 = n_users (square downlink precoder / square
  /// uplink joint detection).
  std::size_t n_bs_antennas = 0;
  channel::MuDirection direction = channel::MuDirection::kDownlink;
  /// Downlink CSI-feedback staleness in OFDM-symbol blocks (the
  /// FaultKind::kCsiStale campaign knob): the precoder for each packet is
  /// computed from a channel snapshot this many symbol blocks older than
  /// the channel the data crosses. 0 = genie-fresh CSI.
  std::size_t csi_stale_symbols = 0;

  [[nodiscard]] std::size_t resolved_bs_antennas() const noexcept {
    return n_bs_antennas != 0 ? n_bs_antennas : n_users;
  }
};

/// Mergeable MU batch result: one LinkResult per user plus their fold.
/// total is exactly the in-order merge of the per-user partials, so sum
/// throughput, aggregate PER and pooled SINR stats read off it directly.
struct MuLinkResult {
  LinkResult total;
  std::vector<LinkResult> per_user;

  void merge(const MuLinkResult& other);
};

/// How to run an MU batch. (The SU early-stop knobs don't carry over: MU
/// sweeps are throughput-shaped, not tail-PER-shaped.)
struct MuRunOptions {
  std::size_t n_packets = 0;
  std::size_t n_threads = 1;  ///< 0 = hardware concurrency
};

class MuLinkSimulator {
 public:
  explicit MuLinkSimulator(MuLinkConfig cfg);

  /// Run a batch; bit-identical for any n_threads.
  [[nodiscard]] MuLinkResult run(const MuRunOptions& opt);

  [[nodiscard]] const MuLinkConfig& config() const noexcept { return cfg_; }

 private:
  MuLinkConfig cfg_;
};

/// Convenience: an MuLinkConfig whose user template matches
/// make_link_config(mcs, snr_db) with per-user Rayleigh fading (flat —
/// the precoder's channel model) at the given normalized Doppler.
[[nodiscard]] MuLinkConfig make_mu_link_config(
    unsigned mcs, double snr_db, std::size_t n_users,
    channel::MuDirection direction = channel::MuDirection::kDownlink,
    double doppler_norm = 0.0);

}  // namespace mimonet::core
