#include "fec/ldpc.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace mimonet::fec {

namespace {

constexpr unsigned kInfoColumnWeight = 3;
constexpr float kMinSumScale = 0.75F;  // normalized min-sum correction

/// y = P^s x on a z-bit block: y[i] = x[(i + s) % z].
void rotate_xor(std::span<const std::uint8_t> x, int s, std::span<std::uint8_t> y) {
  const auto z = x.size();
  for (std::size_t i = 0; i < z; ++i) {
    y[i] ^= x[(i + static_cast<std::size_t>(s)) % z];
  }
}

}  // namespace

LdpcCode::LdpcCode(std::size_t z) : z_(z) {
  if (z < 4) throw std::invalid_argument("LdpcCode: z must be >= 4");
  base_.assign(12, std::vector<int>(24, -1));

  // Parity part: h column (col 12) + dual-diagonal T (cols 13..23).
  base_[0][12] = 1;
  base_[5][12] = 0;
  base_[11][12] = 1;
  for (int j = 0; j < 11; ++j) {
    base_[j][13 + j] = 0;
    base_[j + 1][13 + j] = 0;
  }

  // Information part: weight-3 columns with pseudorandom rows/shifts and
  // greedy 4-cycle avoidance. Fixed seed -> every LdpcCode(z) is the same
  // code, reproducible across runs and machines.
  std::mt19937 rng(0x11ACU + static_cast<unsigned>(z));
  std::uniform_int_distribution<int> shift_dist(0, static_cast<int>(z) - 1);
  std::uniform_int_distribution<int> row_dist(0, 11);

  const auto makes_4cycle = [&](int col, const std::vector<int>& rows,
                                const std::vector<int>& shifts) {
    // Against every earlier column (including parity): a 4-cycle exists if
    // two columns share two rows r1, r2 with equal shift differences mod z.
    for (int other = 0; other < 24; ++other) {
      if (other == col) continue;
      for (std::size_t a = 0; a < rows.size(); ++a) {
        for (std::size_t b = a + 1; b < rows.size(); ++b) {
          const int sa_other = base_[static_cast<std::size_t>(rows[a])]
                                    [static_cast<std::size_t>(other)];
          const int sb_other = base_[static_cast<std::size_t>(rows[b])]
                                    [static_cast<std::size_t>(other)];
          if (sa_other < 0 || sb_other < 0) continue;
          const int d_new =
              ((shifts[a] - shifts[b]) % static_cast<int>(z_) + static_cast<int>(z_)) %
              static_cast<int>(z_);
          const int d_old =
              ((sa_other - sb_other) % static_cast<int>(z_) + static_cast<int>(z_)) %
              static_cast<int>(z_);
          if (d_new == d_old) return true;
        }
      }
    }
    return false;
  };

  for (int col = 0; col < 12; ++col) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      std::vector<int> rows;
      while (rows.size() < kInfoColumnWeight) {
        const int r = row_dist(rng);
        if (std::find(rows.begin(), rows.end(), r) == rows.end()) rows.push_back(r);
      }
      std::vector<int> shifts(rows.size());
      for (auto& s : shifts) s = shift_dist(rng);
      if (attempt < 199 && makes_4cycle(col, rows, shifts)) continue;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        base_[static_cast<std::size_t>(rows[i])][static_cast<std::size_t>(col)] =
            shifts[i];
      }
      break;
    }
  }

  build_graph();
}

void LdpcCode::build_graph() {
  const std::size_t n_checks = 12 * z_;
  const std::size_t n_vars = 24 * z_;
  edges_.clear();
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 24; ++c) {
      const int s = base_[r][c];
      if (s < 0) continue;
      for (std::size_t i = 0; i < z_; ++i) {
        edges_.push_back(Edge{
            static_cast<std::uint32_t>(c * z_ + (i + static_cast<std::size_t>(s)) % z_),
            static_cast<std::uint32_t>(r * z_ + i)});
      }
    }
  }

  // CSR adjacency for both node types.
  check_edge_off_.assign(n_checks + 1, 0);
  var_edge_off_.assign(n_vars + 1, 0);
  for (const auto& e : edges_) {
    ++check_edge_off_[e.check + 1];
    ++var_edge_off_[e.variable + 1];
  }
  for (std::size_t i = 1; i <= n_checks; ++i) check_edge_off_[i] += check_edge_off_[i - 1];
  for (std::size_t i = 1; i <= n_vars; ++i) var_edge_off_[i] += var_edge_off_[i - 1];

  check_edges_.resize(edges_.size());
  var_edges_.resize(edges_.size());
  std::vector<std::uint32_t> cpos(check_edge_off_.begin(), check_edge_off_.end() - 1);
  std::vector<std::uint32_t> vpos(var_edge_off_.begin(), var_edge_off_.end() - 1);
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    check_edges_[cpos[edges_[e].check]++] = e;
    var_edges_[vpos[edges_[e].variable]++] = e;
  }
}

std::vector<std::uint8_t> LdpcCode::encode(std::span<const std::uint8_t> info) const {
  if (info.size() != k()) throw std::invalid_argument("LdpcCode::encode: need k bits");

  // lambda_i = A_i x  (per base row, a z-bit block).
  std::vector<std::vector<std::uint8_t>> lambda(12, std::vector<std::uint8_t>(z_, 0));
  for (std::size_t r = 0; r < 12; ++r) {
    for (std::size_t c = 0; c < 12; ++c) {
      const int s = base_[r][c];
      if (s < 0) continue;
      rotate_xor(info.subspan(c * z_, z_), s, lambda[r]);
    }
  }

  // p0 = sum_i lambda_i (the T part cancels and the h column sums to I).
  std::vector<std::uint8_t> p0(z_, 0);
  for (const auto& l : lambda) {
    for (std::size_t i = 0; i < z_; ++i) p0[i] ^= l[i];
  }

  // Back-substitution through the dual diagonal:
  // p_{j+1} = p_j + lambda_j + h_j p0, with p_0meaning the first T block.
  std::vector<std::vector<std::uint8_t>> p(12, std::vector<std::uint8_t>(z_, 0));
  p[0] = p0;
  std::vector<std::uint8_t> acc(z_, 0);
  for (std::size_t j = 0; j + 1 < 12; ++j) {
    std::fill(acc.begin(), acc.end(), 0);
    for (std::size_t i = 0; i < z_; ++i) acc[i] = lambda[j][i];
    if (base_[j][12] >= 0) rotate_xor(p0, base_[j][12], acc);
    if (j > 0) {
      for (std::size_t i = 0; i < z_; ++i) acc[i] ^= p[j][i];
    }
    p[j + 1] = acc;
  }

  std::vector<std::uint8_t> codeword(n());
  std::copy(info.begin(), info.end(), codeword.begin());
  for (std::size_t j = 0; j < 12; ++j) {
    std::copy(p[j].begin(), p[j].end(), codeword.begin() + static_cast<long>((12 + j) * z_));
  }
  return codeword;
}

bool LdpcCode::check(std::span<const std::uint8_t> codeword) const {
  if (codeword.size() != n()) return false;
  const std::size_t n_checks = 12 * z_;
  for (std::size_t c = 0; c < n_checks; ++c) {
    std::uint8_t parity = 0;
    for (std::uint32_t idx = check_edge_off_[c]; idx < check_edge_off_[c + 1]; ++idx) {
      parity ^= codeword[edges_[check_edges_[idx]].variable] & 1U;
    }
    if (parity != 0) return false;
  }
  return true;
}

std::vector<std::uint8_t> LdpcCode::decode(std::span<const float> llrs,
                                           unsigned max_iterations,
                                           bool* converged) const {
  if (llrs.size() != n()) throw std::invalid_argument("LdpcCode::decode: need n LLRs");
  const std::size_t n_vars = n();
  const std::size_t n_checks = 12 * z_;

  std::vector<float> r_msg(edges_.size(), 0.0F);  // check -> variable
  std::vector<float> total(n_vars);
  std::vector<std::uint8_t> hard(n_vars);
  if (converged != nullptr) *converged = false;

  for (unsigned iter = 0; iter < max_iterations; ++iter) {
    // Variable totals (a-posteriori LLRs).
    for (std::size_t v = 0; v < n_vars; ++v) {
      float t = llrs[v];
      for (std::uint32_t idx = var_edge_off_[v]; idx < var_edge_off_[v + 1]; ++idx) {
        t += r_msg[var_edges_[idx]];
      }
      total[v] = t;
      hard[v] = (t < 0.0F) ? 1 : 0;
    }
    if (check(hard)) {
      if (converged != nullptr) *converged = true;
      break;
    }

    // Check-node update (normalized min-sum) on Q = total - R.
    for (std::size_t c = 0; c < n_checks; ++c) {
      float min1 = 1e30F;
      float min2 = 1e30F;
      std::uint32_t min_edge = 0;
      int sign = 1;
      for (std::uint32_t idx = check_edge_off_[c]; idx < check_edge_off_[c + 1]; ++idx) {
        const std::uint32_t e = check_edges_[idx];
        const float q = total[edges_[e].variable] - r_msg[e];
        const float mag = std::abs(q);
        if (q < 0.0F) sign = -sign;
        if (mag < min1) {
          min2 = min1;
          min1 = mag;
          min_edge = e;
        } else if (mag < min2) {
          min2 = mag;
        }
      }
      for (std::uint32_t idx = check_edge_off_[c]; idx < check_edge_off_[c + 1]; ++idx) {
        const std::uint32_t e = check_edges_[idx];
        const float q = total[edges_[e].variable] - r_msg[e];
        const float mag = (e == min_edge) ? min2 : min1;
        const int s = ((q < 0.0F) ? -sign : sign);
        r_msg[e] = kMinSumScale * static_cast<float>(s) * mag;
      }
    }
  }

  // Final totals and hard decision.
  for (std::size_t v = 0; v < n_vars; ++v) {
    float t = llrs[v];
    for (std::uint32_t idx = var_edge_off_[v]; idx < var_edge_off_[v + 1]; ++idx) {
      t += r_msg[var_edges_[idx]];
    }
    hard[v] = (t < 0.0F) ? 1 : 0;
  }
  if (converged != nullptr && check(hard)) *converged = true;
  return hard;
}

}  // namespace mimonet::fec
