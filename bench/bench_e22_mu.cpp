// E22 — Multi-user MIMO: sum throughput vs user count and CSI staleness.
//
// Downlink: a base station with U antennas zero-force-precodes U
// single-stream user PPDUs from sounded CSI; each user decodes with an
// unmodified 1x1 receiver. Sweeps U in {1, 2, 4} against CSI-feedback
// staleness in {0, 4, 16} OFDM-symbol blocks under Gauss-Markov channel
// aging — the precoder's snapshot decorrelates from the air, residual
// inter-user interference grows, and the sum throughput falls. The uplink
// joint-detection dual is reported alongside (staleness does not apply:
// the BS estimates the joint channel from the frame's own HT-LTFs).
//
// Asserted shape (downlink):
//  - fresh-CSI zero forcing at 2 users keeps per-user throughput at >= 80%
//    of the single-link baseline (the MU gain is real, not bookkeeping);
//  - for every U > 1, sum throughput degrades monotonically with staleness.
//
// MIMONET_BENCH_PACKETS overrides the per-point packet count (check.sh's
// bench-smoke step uses a small value); results are bit-identical for any
// MIMONET_BENCH_THREADS.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "core/mu_link_simulator.hpp"

using namespace mimonet;

namespace {

// QPSK 1/2: the square channel inversion pays a heavy-tailed power penalty
// (1/||H^-1||_F^2), so the MU operating point needs a modulation with
// headroom — 16-QAM at the same SNR drowns in deep-fade PER even for the
// single-user baseline.
constexpr unsigned kMcs = 1;
constexpr double kSnrDb = 35.0;
// Gauss-Markov aging: tap correlation decays by exp(-2*pi*fD/fs * 80) per
// OFDM symbol. 2e-6 keeps the ~12-symbol packet nearly coherent (fresh ZF
// stays clean) while 16 blocks of CSI staleness adds decisive precoder
// leakage — inter-user interference the 1x1 receivers cannot cancel.
constexpr double kDoppler = 2e-6;
constexpr std::size_t kPayload = 120;

struct Point {
  std::size_t users;
  std::size_t stale;
  double sum_tp;   ///< sum over users of per-user goodput, Mbit/s
  double per;      ///< aggregate packet error rate
  double sinr_db;  ///< mean post-eq SINR across users
};

Point run_point(std::size_t users, std::size_t stale,
                channel::MuDirection dir, std::size_t packets,
                std::size_t threads) {
  auto cfg = core::make_mu_link_config(kMcs, kSnrDb, users, dir, kDoppler);
  cfg.user.psdu_payload_bytes = kPayload;
  // Same seed across staleness points: the per-packet fading realizations
  // come from a stream the aging draws don't touch, so each staleness level
  // sees the same channel sequence and the comparison is paired.
  cfg.user.seed = 2200 + users;
  cfg.csi_stale_symbols = stale;
  core::MuLinkSimulator sim(cfg);
  core::MuRunOptions opt;
  opt.n_packets = packets;
  opt.n_threads = threads;
  const auto res = sim.run(opt);

  Point pt{users, stale, 0.0, res.total.per.per(), 0.0};
  for (const auto& u : res.per_user) pt.sum_tp += u.throughput.goodput_mbps();
  const auto& sinr = res.total.stream_sinr_db[0];
  if (sinr.count() > 0) pt.sinr_db = sinr.mean();
  return pt;
}

}  // namespace

int main() {
  bench::heading("E22", "Multi-user MIMO: sum throughput vs users and CSI age");

  std::size_t n_packets = 40;
  if (const char* env = std::getenv("MIMONET_BENCH_PACKETS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) n_packets = static_cast<std::size_t>(v);
  }
  const std::size_t threads = bench::threads();
  bench::note("MCS %u, %.0f dB, flat Rayleigh, fD/fs = %.0e, %zu-byte PSDUs,",
              kMcs, kSnrDb, kDoppler, kPayload);
  bench::note("%zu packets per point", n_packets);

  const std::size_t user_counts[] = {1, 2, 4};
  const std::size_t stale_syms[] = {0, 4, 16};

  std::printf("\n  Downlink (ZF precoding from sounded CSI)\n");
  Point dl[3][3];
  {
    const bench::Table table(
        {"users", "stale", "sum Mb/s", "PER", "SINR dB"}, 12);
    for (std::size_t ui = 0; ui < 3; ++ui) {
      for (std::size_t si = 0; si < 3; ++si) {
        dl[ui][si] = run_point(user_counts[ui], stale_syms[si],
                               channel::MuDirection::kDownlink, n_packets,
                               threads);
        const Point& p = dl[ui][si];
        table.row({std::to_string(p.users), std::to_string(p.stale),
                   bench::fix(p.sum_tp, 2), bench::fix(p.per, 2),
                   bench::fix(p.sinr_db, 1)});
      }
    }
  }

  std::printf("\n  Uplink (joint detection, staleness n/a)\n");
  Point ul[3];
  {
    const bench::Table table({"users", "sum Mb/s", "PER", "SINR dB"}, 12);
    for (std::size_t ui = 0; ui < 3; ++ui) {
      ul[ui] = run_point(user_counts[ui], 0, channel::MuDirection::kUplink,
                         n_packets, threads);
      table.row({std::to_string(ul[ui].users), bench::fix(ul[ui].sum_tp, 2),
                 bench::fix(ul[ui].per, 2), bench::fix(ul[ui].sinr_db, 1)});
    }
  }

  bench::note("expected: fresh-CSI sum throughput grows ~linearly with U;");
  bench::note("staleness leaks inter-user interference and the sum falls");

  std::string pts = "[";
  for (std::size_t ui = 0; ui < 3; ++ui) {
    for (std::size_t si = 0; si < 3; ++si) {
      const Point& p = dl[ui][si];
      char obj[192];
      std::snprintf(obj, sizeof obj,
                    "%s{\"users\": %zu, \"stale_symbols\": %zu, "
                    "\"sum_throughput_mbps\": %.6g, \"per\": %.6g, "
                    "\"sinr_db\": %.6g}",
                    (ui == 0 && si == 0) ? "" : ", ", p.users, p.stale,
                    p.sum_tp, p.per, p.sinr_db);
      pts += obj;
    }
  }
  pts += "]";
  std::string upts = "[";
  for (std::size_t ui = 0; ui < 3; ++ui) {
    char obj[160];
    std::snprintf(obj, sizeof obj,
                  "%s{\"users\": %zu, \"sum_throughput_mbps\": %.6g, "
                  "\"per\": %.6g, \"sinr_db\": %.6g}",
                  ui == 0 ? "" : ", ", ul[ui].users, ul[ui].sum_tp,
                  ul[ui].per, ul[ui].sinr_db);
    upts += obj;
  }
  upts += "]";

  bench::JsonReport report("mu");
  report.field("packets_per_point", n_packets)
      .field("mcs", kMcs)
      .field("snr_db", kSnrDb)
      .field("doppler_norm", kDoppler)
      .raw("downlink", pts)
      .raw("uplink", upts)
      .emit();

  // Shape assertions — the acceptance bars for the MU refactor.
  const double single = dl[0][0].sum_tp;
  const double per_user_2 = dl[1][0].sum_tp / 2.0;
  if (per_user_2 < 0.8 * single) {
    std::fprintf(stderr,
                 "E22: fresh-CSI 2-user per-user throughput %.2f Mb/s is "
                 "below 80%% of the single-link %.2f Mb/s\n",
                 per_user_2, single);
    return 1;
  }
  for (std::size_t ui = 1; ui < 3; ++ui) {
    for (std::size_t si = 1; si < 3; ++si) {
      if (dl[ui][si].sum_tp > dl[ui][si - 1].sum_tp) {
        std::fprintf(stderr,
                     "E22: sum throughput did not degrade with staleness at "
                     "U=%zu: stale=%zu gives %.2f Mb/s > stale=%zu's %.2f\n",
                     user_counts[ui], stale_syms[si], dl[ui][si].sum_tp,
                     stale_syms[si - 1], dl[ui][si - 1].sum_tp);
        return 1;
      }
    }
  }
  return 0;
}
