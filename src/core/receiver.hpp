// The MIMONet receiver: synchronization, channel estimation, MIMO
// equalization, phase tracking, demapping, FEC decoding and PSDU recovery —
// plus the per-packet diagnostics (SNR estimate, sync state) the paper's
// evaluation relies on.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "chanest/ls_estimator.hpp"
#include "chanest/snr_estimator.hpp"
#include "core/phy_config.hpp"
#include "dsp/sample_grid.hpp"
#include "dsp/types.hpp"
#include "fec/viterbi.hpp"
#include "metrics/rx_error.hpp"
#include "ofdm/symbol.hpp"
#include "sync/frame_sync.hpp"
#include "wifi/signal_field.hpp"

namespace mimonet::core {

using dsp::cf32;

struct RxWorkspace;  // core/workspace.hpp

/// OFDM symbols per chunk of the batched symbol-plane decode pipeline: large
/// enough to amortize per-stage dispatch and fill the SIMD kernels, small
/// enough that the chunk slabs stay cache-resident and bounded (keeping
/// RxWorkspace allocation-free regardless of payload length).
inline constexpr std::size_t kDecodeBatchSymbols = 32;

/// Everything the receiver learned about one packet.
struct RxPacket {
  bool lsig_ok = false;
  bool htsig_ok = false;
  bool fcs_ok = false;
  /// Structured classification of how far decoding got (kOk on a clean
  /// frame). Set on every receive() path, including the false-returning
  /// ones — after a failed receive(capture, ws), ws.packet.error says why
  /// (kNoSync, kFalseSync for a rejected sync candidate — whose position is
  /// left in sync.packet_start — or kTruncated), which is what the
  /// streaming scan loop keys its resync policy on.
  metrics::RxError error = metrics::RxError::kNoSync;
  wifi::LSig lsig;
  wifi::HtSig htsig;
  /// Decoded PSDU bytes (present whenever HT-SIG decoded, even if the FCS
  /// check failed — BER experiments compare it against the sent PSDU).
  std::vector<std::uint8_t> psdu;

  // Diagnostics.
  sync::FrameSyncResult sync;
  chanest::SnrEstimate snr;              ///< L-LTF based estimate
  chanest::SnrEstimate pilot_snr;        ///< pilot-EVM based estimate
  chanest::MimoChannelEstimate channel;  ///< post-smoothing HT estimate
  double residual_cfo_norm = 0.0;        ///< from the pilot phase slope
  /// Mean post-equalization SINR per spatial stream (dB): the prepared
  /// equalizer's per-bin CSI (1/noise_var at unit signal gain) averaged in
  /// the linear domain over the data bins. Filled on the linear-equalizer
  /// paths (ZF/MMSE, batched or per-symbol); n_stream_sinr == 0 when the
  /// packet never reached equalization or used ML detection / STBC.
  std::array<double, 4> stream_sinr_db{};
  std::size_t n_stream_sinr = 0;
};

/// HARQ chase-combining decode mode (see core/harq_buffer.hpp and DESIGN.md
/// "The soft-combining plane"). Passed to the receive() overload below:
///   - `prior` carries the combined post-merge LLR stream retained from
///     earlier attempts of the same frame. When non-empty and its length
///     matches this attempt's merged stream, the two are summed element-wise
///     before depuncture/Viterbi (BCC) or LDPC decoding — chase combining.
///     A length mismatch (e.g. the retransmission changed MCS) is ignored
///     and the attempt decodes standalone.
///   - `combined` (when non-null) receives this attempt's post-merge LLR
///     stream *after* any prior was summed in — what a HARQ link stores
///     back into its HarqBuffer. It is cleared whenever decoding failed
///     before the FEC stage (no soft state worth retaining).
/// A default HarqDecode{} (empty prior, null combined) is attempt-1
/// semantics and bit-identical to the plain receive() path.
struct HarqDecode {
  std::span<const float> prior{};
  std::vector<float>* combined = nullptr;

  [[nodiscard]] bool active() const noexcept {
    return !prior.empty() || combined != nullptr;
  }
};

/// Stateless-per-packet receiver; construct once per configuration.
class Receiver {
 public:
  /// @param cfg  must agree with the transmitter on fec_enabled and the
  ///        scrambler handling; everything else is negotiated in-band
  ///        (MCS and length come from HT-SIG).
  /// @param nrx  number of RX antennas the captures will carry.
  Receiver(PhyConfig cfg, std::size_t nrx);

  /// As above with an explicit front-end scan policy: the default ScanMode
  /// is the exhaustive full-rate scan; decimation > 1 enables the two-pass
  /// decimated scan (see sync::ScanMode). The streaming layers surface
  /// these knobs through StreamReceiverConfig.
  Receiver(PhyConfig cfg, std::size_t nrx, const sync::ScanMode& scan);

  [[nodiscard]] const PhyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t num_antennas() const noexcept { return nrx_; }

  /// THE receive entry point: detect and decode the first packet in a
  /// multi-antenna capture (one span per antenna; the spans may window any
  /// region of a longer capture, and ws.packet.sync.packet_start is
  /// relative to the window). All scratch — and the result, ws.packet —
  /// lives in `ws`, so a warm call performs no heap allocation. Returns
  /// true when a sync candidate was found and carried through the decode
  /// pipeline — including frames that then failed HT-SIG, truncation, or
  /// the FCS; false only when nothing synced. Delivery is ws.packet.fcs_ok,
  /// and ws.packet.error classifies the outcome either way. Everything
  /// above this — StreamReceiver's scan
  /// loop, the farm, ReceiveSession — is a wrapper over this call. (The
  /// PR 6 vector-overload shims completed their one-release deprecation
  /// window and are gone; ReceiveSession::receive_one covers the
  /// convenience cases.)
  [[nodiscard]] bool receive(std::span<const std::span<const cf32>> capture,
                             RxWorkspace& ws) const;

  /// receive() in HARQ soft-combining mode: sums `harq.prior` into the
  /// post-merge LLR stream before FEC decoding and (when requested) exports
  /// the combined stream for retention. With a default HarqDecode the result
  /// is bit-identical to the plain overload.
  [[nodiscard]] bool receive(std::span<const std::span<const cf32>> capture,
                             RxWorkspace& ws, const HarqDecode& harq) const;

 private:
  /// Maximal-ratio combine one legacy symbol across antennas and soft-decode
  /// its SIG bits into `out` (48 deinterleaved LLRs per symbol).
  void decode_sig_llrs(const dsp::SampleGrid& grids,  // [rx][bin]
                       const std::vector<std::vector<cf32>>& h_legacy,
                       float noise_var, bool qbpsk, RxWorkspace& ws,
                       std::vector<float>& out) const;

  PhyConfig cfg_;
  std::size_t nrx_;
  sync::FrameSynchronizer synchronizer_;
  ofdm::SymbolDemodulator legacy_demod_;
  ofdm::SymbolDemodulator ht_demod_;
  fec::ViterbiDecoder viterbi_;
};

/// Total samples (preamble + data) of the frame a decoded HT-SIG announces,
/// computed with the same geometry the receiver's data decode used — what a
/// streaming scanner must advance by to skip the frame. nullopt when
/// pkt.htsig_ok is false (the frame extent is unknown).
[[nodiscard]] std::optional<std::size_t> decoded_frame_samples(
    const RxPacket& pkt, const PhyConfig& cfg);

}  // namespace mimonet::core
