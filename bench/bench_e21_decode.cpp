// E21 — batched symbol-plane decode: e2e decode throughput and per-stage
// kernel breakdown.
//
// Times the receive path alone (pre-generated captures, no TX/channel in the
// loop) for the batched pipeline vs the reference per-symbol path, asserting
// packet-record identity between the two on every iteration. Then times each
// batched stage kernel standalone — batch FFT, equalizer apply_run, SIMD
// soft demap, SIMD deinterleave, streaming Viterbi ACS — on 2x2 MCS15-class
// shapes, normalized to Msamp/s-equivalent (80 time-domain samples per OFDM
// symbol) so the stage numbers compare directly against the e2e figure and
// the front-end scan's real-time bar.
//
// Merges a "decode" table into BENCH_hotpath.json (preserving E17's e2e
// cases). MIMONET_BENCH_PACKETS overrides the timed receive count;
// MIMONET_DECODE_KERNEL_MSPS overrides the per-kernel throughput bar.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel/mimo_channel.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "eq/equalizer.hpp"
#include "eq/matrix.hpp"
#include "fec/convolutional.hpp"
#include "fec/viterbi.hpp"
#include "mod/constellation.hpp"
#include "ofdm/symbol.hpp"
#include "wifi/interleaver.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;
using dsp::cf32;

namespace {

constexpr std::size_t kPayloadBytes = 1000;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct DecodeCase {
  const char* name;
  unsigned mcs;
  double baseline_samples_per_sec;  // pre-refactor E17 e2e (decode-dominated)
};

struct DecodeMeasurement {
  double batched_samples_per_sec = 0.0;
  double per_symbol_samples_per_sec = 0.0;
  bool records_identical = true;
  std::size_t decode_failures = 0;
  std::size_t capture_samples = 0;
};

bool packets_equal(const core::RxPacket& a, const core::RxPacket& b) {
  return a.lsig_ok == b.lsig_ok && a.htsig_ok == b.htsig_ok &&
         a.fcs_ok == b.fcs_ok && a.psdu == b.psdu &&
         a.snr.snr_db == b.snr.snr_db &&
         a.pilot_snr.snr_db == b.pilot_snr.snr_db &&
         a.residual_cfo_norm == b.residual_cfo_norm;
}

DecodeMeasurement run_decode_case(unsigned mcs, std::size_t n_receives) {
  core::PhyConfig phy;
  phy.mcs = mcs;
  core::PhyConfig phy_ref = phy;
  phy_ref.batched_decode = false;

  const core::Transmitter tx(phy);
  const auto nss = phy.mcs_info().nss;
  const auto psdu = wifi::build_psdu(
      wifi::MacHeader{}, std::vector<std::uint8_t>(kPayloadBytes, 0xA5));
  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = 30.0;
  ccfg.timing_pad = 300;
  ccfg.tail_pad = 100;
  ccfg.seed = 17;
  channel::MimoChannel chan(ccfg);
  const auto capture = chan.transmit(tx.transmit(psdu));
  const std::vector<std::span<const cf32>> spans(capture.begin(),
                                                 capture.end());

  const core::Receiver rx_batched(phy, nss);
  const core::Receiver rx_ref(phy_ref, nss);
  core::RxWorkspace ws_batched;
  core::RxWorkspace ws_ref;

  DecodeMeasurement m;
  m.capture_samples = capture[0].size();

  // Warm-up both paths and pin record identity before timing.
  for (int i = 0; i < 2; ++i) {
    const bool got_b = rx_batched.receive(spans, ws_batched);
    const bool got_r = rx_ref.receive(spans, ws_ref);
    if (!got_b || !ws_batched.packet.fcs_ok) ++m.decode_failures;
    if (got_b != got_r ||
        !packets_equal(ws_batched.packet, ws_ref.packet)) {
      m.records_identical = false;
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_receives; ++i) {
    if (!rx_batched.receive(spans, ws_batched)) ++m.decode_failures;
  }
  const double batched_secs = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_receives; ++i) {
    if (!rx_ref.receive(spans, ws_ref)) ++m.decode_failures;
  }
  const double ref_secs = seconds_since(t0);

  if (!packets_equal(ws_batched.packet, ws_ref.packet)) {
    m.records_identical = false;
  }
  const double total = static_cast<double>(n_receives * m.capture_samples);
  m.batched_samples_per_sec = total / batched_secs;
  m.per_symbol_samples_per_sec = total / ref_secs;
  return m;
}

// ---------------------------------------------------------------------------
// Per-stage kernel timings, 2x2 MCS15-class shapes, one decode chunk per
// call (kDecodeBatchSymbols OFDM symbols), normalized to Msamp/s-equivalent.

constexpr std::size_t kChunk = core::kDecodeBatchSymbols;
constexpr std::size_t kBins = 52;        // HT-20 data carriers
constexpr std::size_t kNss = 2;          // MCS15 streams
constexpr unsigned kBps = 6;             // 64-QAM
constexpr std::size_t kInfoBitsPerSym = 520;  // MCS15 data bits per symbol

/// Run `body` (one chunk of work per call) until ~40 ms elapsed; returns
/// OFDM-symbol-equivalents per second * 80 = Msamp/s-equivalent.
template <typename F>
double time_kernel_msamp(F&& body) {
  // Warm-up.
  body();
  body();
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t calls = 0;
  double secs = 0.0;
  do {
    body();
    ++calls;
    secs = seconds_since(t0);
  } while (secs < 0.04);
  const double syms_per_sec =
      static_cast<double>(calls * kChunk) / secs;
  return syms_per_sec * static_cast<double>(ofdm::kSymLen) / 1e6;
}

double bench_fft_stage() {
  const ofdm::SymbolDemodulator demod(ofdm::CarrierPlan::kHt);
  dsp::ComplexGaussian g(1, 1.0);
  std::vector<cf32> samples(kChunk * ofdm::kSymLen);
  g.fill(samples);
  std::vector<cf32> grids(kChunk * ofdm::kFftSize);
  // One chunk = the FFTs of both RX antennas (nrx = 2 for the 2x2 case).
  return time_kernel_msamp([&] {
    demod.demodulate_grids_into(samples, kChunk, grids);
    demod.demodulate_grids_into(samples, kChunk, grids);
  });
}

double bench_fft_stage_scalar() {
  dsp::force_scalar_fft(true);
  const double msamp = bench_fft_stage();
  dsp::force_scalar_fft(false);
  return msamp;
}

double bench_eq_stage() {
  const eq::LinearEqualizer lin(eq::EqualizerType::kMmse);
  dsp::ComplexGaussian g(2, 1.0);
  std::vector<eq::EqCoeffs> coeffs(kBins);
  for (auto& c : coeffs) {
    eq::CMatrix h(kNss, kNss);
    for (std::size_t r = 0; r < kNss; ++r) {
      for (std::size_t t = 0; t < kNss; ++t) h(r, t) = dsp::cf64(g.sample());
    }
    lin.prepare(h, 0.01F, c);
  }
  std::vector<cf32> y_batch(kChunk * kNss);
  g.fill(y_batch);
  std::vector<cf32> symbols(kChunk * kNss);
  std::vector<float> noise_vars(kChunk * kNss);
  // One chunk = apply_run across every data carrier.
  return time_kernel_msamp([&] {
    for (std::size_t b = 0; b < kBins; ++b) {
      eq::LinearEqualizer::apply_run(coeffs[b], y_batch, kChunk, symbols,
                                     noise_vars);
    }
  });
}

double bench_demap_stage() {
  const auto& c = mod::constellation_for(mod::Modulation::kQam64);
  dsp::ComplexGaussian g(3, 1.0);
  std::vector<cf32> symbols(kChunk * kBins);
  g.fill(symbols);
  std::vector<float> noise_vars(symbols.size(), 0.01F);
  std::vector<float> llrs(symbols.size() * kBps);
  // One chunk = both spatial streams' demaps.
  return time_kernel_msamp([&] {
    for (std::size_t s = 0; s < kNss; ++s) {
      c.demap_soft_run(symbols, noise_vars, llrs);
    }
  });
}

double bench_deint_stage() {
  const auto& il = wifi::cached_interleaver(kBps, 0, kNss);
  dsp::ComplexGaussian g(4, 1.0);
  std::vector<float> llrs(kChunk * kBins * kBps);
  for (std::size_t i = 0; i < llrs.size(); ++i) {
    llrs[i] = g.sample().real();
  }
  std::vector<float> out(llrs.size());
  return time_kernel_msamp([&] {
    for (std::size_t s = 0; s < kNss; ++s) {
      il.deinterleave_into(llrs, std::span<float>(out));
    }
  });
}

double bench_viterbi_stage() {
  const fec::ViterbiDecoder dec;
  dsp::ComplexGaussian g(5, 1.0);
  // One chunk's worth of depunctured LLRs at MCS15: 2 LLRs per info bit.
  std::vector<float> llrs(kChunk * kInfoBitsPerSym * 2);
  for (auto& v : llrs) v = 4.0F * g.sample().real();
  fec::ViterbiDecoder::StreamState st;
  fec::ViterbiDecoder::Scratch scratch;
  return time_kernel_msamp([&] {
    dec.stream_begin(st, scratch, llrs.size() / 2);
    dec.stream_consume(st, scratch, llrs);
  });
}

}  // namespace

int main() {
  bench::heading("E21", "Batched symbol-plane decode: e2e + stage breakdown");

  std::size_t n_receives = 64;
  if (const char* env = std::getenv("MIMONET_BENCH_PACKETS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) n_receives = static_cast<std::size_t>(v);
  }
  double kernel_bar = 20.0;
  if (const char* env = std::getenv("MIMONET_DECODE_KERNEL_MSPS")) {
    const double v = std::strtod(env, nullptr);
    if (v > 0.0) kernel_bar = v;
  }
  bench::note("%zu timed receives per case, %zu-byte payload, 30 dB AWGN, "
              "decode only (no TX/channel in the loop)",
              n_receives, kPayloadBytes);
  bench::note("chunk = %zu OFDM symbols; demap SIMD %s, deinterleave SIMD %s",
              kChunk, mod::detail::demap_simd_active() ? "on" : "off",
              wifi::detail::deinterleave_simd_active() ? "on" : "off");

  // Pre-refactor E17 e2e numbers (commit 22a1573): the chain then was
  // decode-dominated, so they are the reference the >=4x target reads
  // against.
  const std::vector<DecodeCase> cases{
      {"1x1_mcs7", 7, 5.43e5},
      {"2x2_mcs15", 15, 3.47e5},
  };

  const bench::Table table({"case", "batched Msamp/s", "per-sym Msamp/s",
                            "batch/per-sym", "vs 22a1573", "identical"},
                           16);

  std::string cases_json = "[";
  bool all_identical = true;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const auto m = run_decode_case(c.mcs, n_receives);
    all_identical = all_identical && m.records_identical;
    failures += m.decode_failures;
    const double ratio =
        m.batched_samples_per_sec / m.per_symbol_samples_per_sec;
    const double vs_base =
        m.batched_samples_per_sec / c.baseline_samples_per_sec;
    table.row({c.name, bench::fix(m.batched_samples_per_sec / 1e6, 3),
               bench::fix(m.per_symbol_samples_per_sec / 1e6, 3),
               bench::fix(ratio, 2) + "x", bench::fix(vs_base, 2) + "x",
               m.records_identical ? "yes" : "NO"});

    bench::JsonReport cj(c.name);
    cj.field("mcs", c.mcs);
    cj.field("capture_samples", m.capture_samples);
    cj.field("batched_samples_per_sec", m.batched_samples_per_sec);
    cj.field("per_symbol_samples_per_sec", m.per_symbol_samples_per_sec);
    cj.field("batched_over_per_symbol", ratio);
    cj.field("baseline_samples_per_sec", c.baseline_samples_per_sec);
    cj.field("speedup_vs_baseline", vs_base);
    cj.field("records_identical", m.records_identical);
    cj.field("decode_failures", m.decode_failures);
    if (i != 0) cases_json += ", ";
    cases_json += cj.to_json();
  }
  cases_json += "]";

  std::printf("\n  per-stage kernels (2x2 MCS15 shapes, Msamp/s-equivalent; "
              "batched-kernel bar %.1f on eq/demap/deint):\n", kernel_bar);
  const double fft = bench_fft_stage();
  const double fft_scalar = bench_fft_stage_scalar();
  const double eq = bench_eq_stage();
  const double demap = bench_demap_stage();
  const double deint = bench_deint_stage();
  const double viterbi = bench_viterbi_stage();
  const bench::Table stage_table({"stage", "Msamp/s-equiv"}, 16);
  stage_table.row({"fft", bench::fix(fft, 1)});
  stage_table.row({"fft(scalar)", bench::fix(fft_scalar, 1)});
  stage_table.row({"eq", bench::fix(eq, 1)});
  stage_table.row({"demap", bench::fix(demap, 1)});
  stage_table.row({"deint", bench::fix(deint, 1)});
  stage_table.row({"viterbi", bench::fix(viterbi, 1)});
  // The bar applies to the batched SIMD kernels this refactor introduced
  // (eq apply_run, soft demap, deinterleave). The FFT plan loop and the
  // scalar Viterbi ACS are reported for the breakdown but not gated — their
  // budget shows up in the e2e cases above, which gate against the baseline.
  const bool kernels_ok =
      eq >= kernel_bar && demap >= kernel_bar && deint >= kernel_bar;
  // The AVX2 butterfly must actually beat the pinned scalar fallback
  // wherever the dispatcher selects it; elsewhere both runs are the same
  // scalar kernel and only rough parity is asserted (timing noise).
  const bool fft_avx2 = dsp::fft_kernel_is_avx2();
  const bool fft_win_ok =
      fft_avx2 ? fft >= 1.1 * fft_scalar : fft >= 0.7 * fft_scalar;

  bench::JsonReport stages("stages");
  stages.field("fft_msamp_s", fft);
  stages.field("fft_scalar_msamp_s", fft_scalar);
  stages.field("fft_avx2", fft_avx2);
  stages.field("eq_msamp_s", eq);
  stages.field("demap_msamp_s", demap);
  stages.field("deint_msamp_s", deint);
  stages.field("viterbi_msamp_s", viterbi);

  bench::JsonReport dtable("decode");
  dtable.field("timed_receives", n_receives);
  dtable.field("payload_bytes", kPayloadBytes);
  dtable.field("chunk_symbols", kChunk);
  dtable.field("demap_simd", mod::detail::demap_simd_active());
  dtable.field("deint_simd", wifi::detail::deinterleave_simd_active());
  dtable.raw("cases", cases_json);
  dtable.raw("stages", stages.to_json());
  dtable.field("kernel_bar_msamp_s", kernel_bar);
  dtable.field("kernels_meet_bar", kernels_ok);
  dtable.field("all_records_identical", all_identical);

  // Merge into BENCH_hotpath.json next to E17's e2e cases.
  bench::JsonReport report("hotpath");
  report.raw("decode", dtable.to_json());
  report.emit_merged();

  if (!all_identical) {
    std::fprintf(stderr,
                 "E21: batched decode diverged from the per-symbol path\n");
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "E21: %zu decode failures\n", failures);
    return 1;
  }
  if (!kernels_ok) {
    std::fprintf(stderr,
                 "E21: a batched kernel (eq/demap/deint) is below %.1f "
                 "Msamp/s-equiv\n",
                 kernel_bar);
    return 1;
  }
  if (!fft_win_ok) {
    std::fprintf(stderr,
                 "E21: FFT dispatch kernel (%s) did not beat the scalar "
                 "fallback: %.1f vs %.1f Msamp/s-equiv\n",
                 fft_avx2 ? "avx2" : "scalar", fft, fft_scalar);
    return 1;
  }
  return 0;
}
