#include "mac/arq.hpp"

#include <stdexcept>

namespace mimonet::mac {

namespace {

ArqConfig normalize(ArqConfig cfg) {
  // ACKs default to the most robust rate on a single stream.
  if (cfg.ack_phy.mcs == cfg.data_phy.mcs) cfg.ack_phy.mcs = 0;
  cfg.ack_phy.fec_enabled = true;
  return cfg;
}

}  // namespace

StopAndWaitLink::StopAndWaitLink(ArqConfig cfg)
    : cfg_(normalize(std::move(cfg))),
      data_tx_(cfg_.data_phy),
      data_rx_(cfg_.data_phy, cfg_.forward.nrx),
      ack_tx_(cfg_.ack_phy),
      ack_rx_(cfg_.ack_phy, cfg_.reverse.nrx),
      forward_(cfg_.forward),
      reverse_(cfg_.reverse) {
  if (cfg_.forward.ntx != data_tx_.num_streams()) {
    throw std::invalid_argument("StopAndWaitLink: forward ntx != data TX chains");
  }
  if (cfg_.reverse.ntx != ack_tx_.num_streams()) {
    throw std::invalid_argument("StopAndWaitLink: reverse ntx != ACK TX chains");
  }
}

std::optional<wifi::ParsedPsdu> StopAndWaitLink::phy_exchange(
    const core::Transmitter& tx, channel::MimoChannel& chan,
    const core::Receiver& rx, const wifi::MacHeader& hdr,
    std::span<const std::uint8_t> payload, double& airtime_us) {
  const auto psdu = wifi::build_psdu(hdr, payload);
  const auto streams = tx.transmit(psdu);
  airtime_us += tx.layout(psdu.size()).airtime_us();
  const auto capture = chan.transmit(streams);
  const auto pkt = rx.receive(capture);
  if (!pkt || !pkt->fcs_ok) return std::nullopt;
  return wifi::parse_psdu(pkt->psdu);
}

DeliveryReport StopAndWaitLink::send(std::span<const std::uint8_t> msdu) {
  DeliveryReport report;
  ++stats_.msdus;

  wifi::MacHeader data_hdr;
  data_hdr.frame_control = 0x0008;  // data
  data_hdr.sequence_control = static_cast<std::uint16_t>(seq_ << 4U);

  wifi::MacHeader ack_hdr;
  ack_hdr.frame_control = kAckFrameControl;

  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    ++report.transmissions;
    if (attempt > 0) ++stats_.retransmissions;

    const auto delivered = phy_exchange(data_tx_, forward_, data_rx_, data_hdr,
                                        msdu, report.airtime_us);
    bool ack_due = false;
    if (delivered) {
      const std::uint16_t rx_seq = delivered->header.sequence_control >> 4U;
      if (peer_last_seq_ && *peer_last_seq_ == rx_seq) {
        // Retransmission of a frame the peer already has (its ACK was
        // lost): de-duplicate but still acknowledge.
        report.duplicate_at_peer = true;
        ++stats_.duplicates;
      } else {
        peer_last_seq_ = rx_seq;
        peer_rx_log_.emplace_back(delivered->payload);
      }
      ack_due = true;
    }

    if (ack_due) {
      ack_hdr.sequence_control = data_hdr.sequence_control;
      const auto ack = phy_exchange(ack_tx_, reverse_, ack_rx_, ack_hdr, {},
                                    report.airtime_us);
      if (ack && ack->header.frame_control == kAckFrameControl &&
          ack->header.sequence_control == data_hdr.sequence_control) {
        report.delivered = true;
        break;
      }
    }
  }

  seq_ = static_cast<std::uint16_t>((seq_ + 1) & 0x0FFF);
  stats_.airtime_us += report.airtime_us;
  if (report.delivered) {
    ++stats_.delivered;
    stats_.delivered_bits += static_cast<double>(msdu.size()) * 8.0;
  }
  return report;
}

}  // namespace mimonet::mac
