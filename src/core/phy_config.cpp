#include "core/phy_config.hpp"

#include "wifi/preamble.hpp"

namespace mimonet::core {

std::size_t FrameLayout::n_ht_ltfs() const { return wifi::num_ht_ltfs(nss); }

std::size_t FrameLayout::lltf_offset() const noexcept { return wifi::kLstfLen; }

std::size_t FrameLayout::lsig_offset() const noexcept {
  return lltf_offset() + wifi::kLltfLen;
}

std::size_t FrameLayout::htsig_offset() const noexcept {
  return lsig_offset() + wifi::kLsigLen;
}

std::size_t FrameLayout::htstf_offset() const noexcept {
  return htsig_offset() + wifi::kHtSigLen;
}

std::size_t FrameLayout::htltf_offset() const noexcept {
  return htstf_offset() + wifi::kHtStfLen;
}

std::size_t FrameLayout::data_offset() const {
  return htltf_offset() + n_ht_ltfs() * wifi::kHtLtfLen;
}

std::size_t FrameLayout::total_samples() const {
  return data_offset() + n_data_symbols * ofdm::kSymLen;
}

double FrameLayout::airtime_us() const {
  return static_cast<double>(total_samples()) / 20.0;  // 20 Msps
}

std::size_t ldpc_codeword_count(std::size_t psdu_bytes) {
  const std::size_t payload_bits = kServiceBits + 8 * psdu_bytes;
  return (payload_bits + kLdpcK - 1) / kLdpcK;
}

std::size_t data_symbol_count(const wifi::McsInfo& mcs, std::size_t psdu_bytes,
                              bool fec_enabled, bool stbc, FecType fec_type) {
  std::size_t n = 0;
  if (fec_enabled && fec_type == FecType::kLdpc) {
    const std::size_t coded_bits = ldpc_codeword_count(psdu_bytes) * kLdpcN;
    const std::size_t per_symbol = mcs.coded_bits_per_symbol();
    n = (coded_bits + per_symbol - 1) / per_symbol;
  } else {
    const std::size_t payload_bits = kServiceBits + 8 * psdu_bytes + kTailBits;
    const std::size_t per_symbol =
        fec_enabled ? mcs.data_bits_per_symbol() : mcs.coded_bits_per_symbol();
    n = (payload_bits + per_symbol - 1) / per_symbol;
  }
  if (stbc && n % 2 != 0) ++n;
  return n;
}

}  // namespace mimonet::core
