#include "flowgraph/graph.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace mimonet::flowgraph {

void Graph::add(std::shared_ptr<Block> block) {
  if (block == nullptr) throw std::invalid_argument("Graph::add: null block");
  blocks_.push_back(std::move(block));
}

void Graph::validate() const {
  if (blocks_.empty()) throw std::logic_error("Graph: no blocks");
  for (const auto& b : blocks_) {
    if (!b->fully_connected()) {
      throw std::logic_error("Graph: block '" + b->name() + "' has unbound ports");
    }
  }
}

void run_single_threaded(Graph& graph) {
  graph.validate();
  const auto& blocks = graph.blocks();
  std::vector<bool> finished(blocks.size(), false);

  while (true) {
    bool progress = false;
    bool all_done = true;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (finished[i]) continue;
      const WorkStatus st = blocks[i]->work();
      if (st == WorkStatus::kDone) {
        blocks[i]->finish_outputs();
        finished[i] = true;
        progress = true;
      } else if (st == WorkStatus::kProgress) {
        progress = true;
        all_done = false;
      } else {
        all_done = false;
      }
    }
    if (all_done) {
      bool really_done = true;
      for (const bool f : finished) really_done = really_done && f;
      if (really_done) return;
    }
    if (!progress) {
      bool really_done = true;
      for (const bool f : finished) really_done = really_done && f;
      if (really_done) return;
      throw std::runtime_error("run_single_threaded: graph stalled (deadlock)");
    }
  }
}

void run_threaded(Graph& graph) {
  graph.validate();
  std::vector<std::jthread> threads;
  threads.reserve(graph.blocks().size());
  for (const auto& block : graph.blocks()) {
    threads.emplace_back([block] {
      unsigned idle_spins = 0;
      while (true) {
        const WorkStatus st = block->work();
        if (st == WorkStatus::kDone) {
          block->finish_outputs();
          return;
        }
        if (st == WorkStatus::kProgress) {
          idle_spins = 0;
          continue;
        }
        // Idle: back off progressively to avoid burning a core.
        ++idle_spins;
        if (idle_spins < 64) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }
  // jthreads join on destruction.
}

}  // namespace mimonet::flowgraph
