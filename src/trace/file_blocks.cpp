#include "trace/file_blocks.hpp"

namespace mimonet::trace {

using flowgraph::WorkStatus;

IqFileSource::IqFileSource(const std::filesystem::path& path)
    : Block("iq_file_source"), capture_(read_iq(path)) {
  add_output<cf32>();
}

WorkStatus IqFileSource::work() {
  auto& o = out<cf32>(0);
  bool progress = false;
  while (pos_ < capture_.samples.size()) {
    const std::size_t n = o.write(
        std::span<const cf32>(capture_.samples).subspan(pos_));
    if (n == 0) return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
    pos_ += n;
    progress = true;
  }
  return WorkStatus::kDone;
}

IqFileSink::IqFileSink(std::filesystem::path path, std::uint32_t sample_rate_hz)
    : Block("iq_file_sink"), path_(std::move(path)), sample_rate_hz_(sample_rate_hz) {
  add_input<cf32>();
}

WorkStatus IqFileSink::work() {
  auto& i = in<cf32>(0);
  bool progress = false;
  std::vector<cf32> chunk(4096);
  while (true) {
    const std::size_t n = i.peek(chunk);
    if (n == 0) break;
    data_.insert(data_.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
    i.consume(n);
    progress = true;
  }
  if (all_inputs_done()) {
    if (!written_) {
      write_iq(path_, data_, sample_rate_hz_);
      written_ = true;
    }
    return WorkStatus::kDone;
  }
  return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
}

}  // namespace mimonet::trace
