// Vector primitive correctness: reductions, mixing, correlation.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet::dsp;

TEST(VectorOps, EnergyAndMeanPower) {
  std::vector<cf32> v{{3, 4}, {0, 0}, {1, 0}};
  EXPECT_DOUBLE_EQ(energy(v), 25.0 + 0.0 + 1.0);
  EXPECT_DOUBLE_EQ(mean_power(v), 26.0 / 3.0);
  EXPECT_DOUBLE_EQ(mean_power(std::span<const cf32>{}), 0.0);
}

TEST(VectorOps, ScaleMultipliesInPlace) {
  std::vector<cf32> v{{1, 2}, {-3, 0}};
  scale(v, 2.0F);
  EXPECT_FLOAT_EQ(v[0].real(), 2.0F);
  EXPECT_FLOAT_EQ(v[0].imag(), 4.0F);
  EXPECT_FLOAT_EQ(v[1].real(), -6.0F);
}

TEST(VectorOps, MultiplyConjComputesCorrectly) {
  std::vector<cf32> a{{1, 1}};
  std::vector<cf32> b{{0, 1}};
  std::vector<cf32> out(1);
  multiply_conj(a, b, out);
  // (1+j) * conj(j) = (1+j) * (-j) = 1 - j
  EXPECT_FLOAT_EQ(out[0].real(), 1.0F);
  EXPECT_FLOAT_EQ(out[0].imag(), -1.0F);
}

TEST(VectorOps, MultiplyConjRejectsMismatch) {
  std::vector<cf32> a(2);
  std::vector<cf32> b(3);
  std::vector<cf32> out(2);
  EXPECT_THROW(multiply_conj(a, b, out), std::invalid_argument);
}

TEST(VectorOps, DotConjOfSelfIsEnergy) {
  std::vector<cf32> a{{1, 2}, {3, -1}};
  const cf64 d = dot_conj(a, a);
  EXPECT_NEAR(d.real(), energy(a), 1e-9);
  EXPECT_NEAR(d.imag(), 0.0, 1e-9);
}

TEST(VectorOps, MixAppliesExpectedRotation) {
  // Constant signal mixed with phase increment pi/2 -> 1, j, -1, -j.
  std::vector<cf32> v(4, cf32{1.0F, 0.0F});
  mix(v, 0.0, pi_d / 2.0);
  EXPECT_NEAR(v[0].real(), 1.0F, 1e-6F);
  EXPECT_NEAR(v[1].imag(), 1.0F, 1e-6F);
  EXPECT_NEAR(v[2].real(), -1.0F, 1e-6F);
  EXPECT_NEAR(v[3].imag(), -1.0F, 1e-6F);
}

TEST(VectorOps, MixPhaseContinuesAcrossChunks) {
  std::vector<cf32> whole(100, cf32{1.0F, 0.0F});
  auto part1 = std::vector<cf32>(whole.begin(), whole.begin() + 37);
  auto part2 = std::vector<cf32>(whole.begin() + 37, whole.end());
  const double inc = 0.123;
  mix(whole, 0.0, inc);
  const double mid = mix(part1, 0.0, inc);
  mix(part2, mid, inc);
  for (std::size_t i = 0; i < 37; ++i) {
    EXPECT_NEAR(std::abs(whole[i] - part1[i]), 0.0F, 1e-5F);
  }
  for (std::size_t i = 0; i < part2.size(); ++i) {
    EXPECT_NEAR(std::abs(whole[37 + i] - part2[i]), 0.0F, 1e-5F);
  }
}

TEST(VectorOps, MixReturnsWrappedPhase) {
  std::vector<cf32> v(1000, cf32{1.0F, 0.0F});
  const double phase = mix(v, 0.0, 1.0);  // would accumulate to 1000 rad
  EXPECT_LE(phase, pi_d + 1e-9);
  EXPECT_GE(phase, -pi_d - 1e-9);
}

TEST(VectorOps, CrossCorrelatePeaksAtEmbeddedReference) {
  std::vector<cf32> ref{{1, 0}, {-1, 0}, {1, 0}, {1, 0}};
  std::vector<cf32> x(20, cf32{0.0F, 0.0F});
  for (std::size_t i = 0; i < ref.size(); ++i) x[7 + i] = ref[i];
  const auto c = cross_correlate(x, ref);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < c.size(); ++i) {
    if (std::abs(c[i]) > std::abs(c[peak])) peak = i;
  }
  EXPECT_EQ(peak, 7U);
  EXPECT_NEAR(std::abs(c[7]), 4.0F, 1e-5F);
}

TEST(VectorOps, CrossCorrelateRejectsBadSizes) {
  std::vector<cf32> x(3);
  std::vector<cf32> ref(5);
  EXPECT_THROW(cross_correlate(x, ref), std::invalid_argument);
  EXPECT_THROW(cross_correlate(x, std::span<const cf32>{}), std::invalid_argument);
}

TEST(VectorOps, RmsError) {
  std::vector<cf32> a{{1, 0}, {0, 0}};
  std::vector<cf32> b{{0, 0}, {0, 0}};
  EXPECT_NEAR(rms_error(a, b), std::sqrt(0.5), 1e-9);
  EXPECT_THROW((void)rms_error(a, std::vector<cf32>(3)), std::invalid_argument);
}

}  // namespace
