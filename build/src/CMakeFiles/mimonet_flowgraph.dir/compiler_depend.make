# Empty compiler generated dependencies file for mimonet_flowgraph.
# This may be replaced when dependencies are built.
