// Channel estimation, phase tracking, SNR estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "channel/impairments.hpp"
#include "chanest/ls_estimator.hpp"
#include "chanest/phase_tracker.hpp"
#include "chanest/snr_estimator.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "dsp/stats.hpp"
#include "ofdm/pilots.hpp"
#include "wifi/preamble.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;
using dsp::cf64;

// Demodulate the HT-LTF field transmitted by `nss` streams through a flat
// channel h[rx][ss] (complex gains), returning grids [rx][ltf][bin].
std::vector<std::vector<std::vector<cf32>>> ltf_grids_through_flat(
    const std::vector<std::vector<cf32>>& h, std::size_t nss, double noise_var,
    unsigned seed) {
  const std::size_t nrx = h.size();
  const std::size_t n_ltf = wifi::num_ht_ltfs(nss);
  // Per-stream LTF time samples.
  std::vector<std::vector<cf32>> tx(nss);
  for (std::size_t s = 0; s < nss; ++s) tx[s] = wifi::make_htltfs(s, nss);

  dsp::ComplexGaussian noise(seed, noise_var);
  const dsp::FftPlan fft(64);
  std::vector<std::vector<std::vector<cf32>>> grids(
      nrx, std::vector<std::vector<cf32>>(n_ltf, std::vector<cf32>(64)));
  for (std::size_t r = 0; r < nrx; ++r) {
    std::vector<cf32> rx(tx[0].size(), cf32{0.0F, 0.0F});
    for (std::size_t s = 0; s < nss; ++s) {
      for (std::size_t i = 0; i < rx.size(); ++i) rx[i] += h[r][s] * tx[s][i];
    }
    noise.add_to(rx);
    for (std::size_t n = 0; n < n_ltf; ++n) {
      fft.forward(std::span<const cf32>(rx).subspan(n * 80 + 16, 64),
                  grids[r][n]);
    }
  }
  return grids;
}

TEST(LsEstimator, RecoversFlatMimoChannel) {
  // 2x2 flat channel with arbitrary gains; estimate must match the
  // *effective* channel = gain x CSD phase ramp per stream.
  const std::vector<std::vector<cf32>> h{{cf32{0.8F, 0.3F}, cf32{-0.5F, 0.6F}},
                                         {cf32{0.2F, -0.9F}, cf32{1.1F, 0.0F}}};
  const auto grids = ltf_grids_through_flat(h, 2, 0.0, 1);
  const chanest::LsChannelEstimator ls(2, 2);
  const auto est = ls.estimate(grids);

  const float gain = wifi::tone_gain(56);
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(k);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t s = 0; s < 2; ++s) {
        const int csd = wifi::ht_csd_samples(s, 2);
        const double theta = -dsp::two_pi_d * static_cast<double>(bin) * csd / 64.0;
        const cf64 expected = cf64(h[r][s]) * static_cast<double>(gain) *
                              dsp::phasor_d(theta);
        EXPECT_NEAR(std::abs(cf64(est.h[r][s][bin]) - expected), 0.0, 1e-3)
            << "rx " << r << " ss " << s << " k " << k;
      }
    }
  }
}

TEST(LsEstimator, SisoEstimateMatchesGain) {
  const std::vector<std::vector<cf32>> h{{cf32{0.5F, -0.5F}}};
  const auto grids = ltf_grids_through_flat(h, 1, 0.0, 2);
  const chanest::LsChannelEstimator ls(1, 1);
  const auto est = ls.estimate(grids);
  const float gain = wifi::tone_gain(56);
  const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(7);
  EXPECT_NEAR(est.h[0][0][bin].real(), 0.5F * gain, 1e-3F);
  EXPECT_NEAR(est.h[0][0][bin].imag(), -0.5F * gain, 1e-3F);
}

TEST(LsEstimator, DimensionValidation) {
  const chanest::LsChannelEstimator ls(2, 2);
  EXPECT_THROW((void)ls.estimate({}), std::invalid_argument);
  EXPECT_THROW(chanest::LsChannelEstimator(0, 1), std::invalid_argument);
}

TEST(LsEstimator, SmoothingReducesNoiseMse) {
  const std::vector<std::vector<cf32>> h{{cf32{1.0F, 0.0F}}};
  const chanest::LsChannelEstimator ls(1, 1);

  // Reference: noiseless estimate.
  const auto clean = ls.estimate(ltf_grids_through_flat(h, 1, 0.0, 3));

  std::vector<std::size_t> bins;
  for (int k = -28; k <= 28; ++k) {
    if (k != 0) bins.push_back(ofdm::SubcarrierMap::logical_to_bin(k));
  }

  double mse_raw = 0.0;
  double mse_smooth = 0.0;
  for (unsigned trial = 0; trial < 10; ++trial) {
    auto noisy = ls.estimate(ltf_grids_through_flat(h, 1, 0.05, 10 + trial));
    mse_raw += noisy.mse_against(clean.h, bins);
    chanest::smooth_frequency(noisy, bins);
    mse_smooth += noisy.mse_against(clean.h, bins);
  }
  // Flat channel: smoothing averages noise without bias -> lower MSE.
  EXPECT_LT(mse_smooth, mse_raw * 0.7);
}

TEST(LegacyEstimate, RecoversCombinedChannel) {
  // Single antenna, single stream: estimate from two noiseless L-LTF reps.
  const auto ltf = wifi::make_lltf(0, 1);
  const dsp::FftPlan fft(64);
  std::vector<std::vector<std::vector<cf32>>> grids(
      1, std::vector<std::vector<cf32>>(2, std::vector<cf32>(64)));
  const cf32 gain{0.3F, 0.7F};
  std::vector<cf32> rx(ltf.size());
  for (std::size_t i = 0; i < rx.size(); ++i) rx[i] = ltf[i] * gain;
  fft.forward(std::span<const cf32>(rx).subspan(32, 64), grids[0][0]);
  fft.forward(std::span<const cf32>(rx).subspan(96, 64), grids[0][1]);

  const auto h = chanest::LsChannelEstimator::estimate_legacy(grids);
  const float tone = wifi::tone_gain(52);
  const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(-7);
  EXPECT_NEAR(std::abs(cf64(h[0][bin]) - cf64(gain) * static_cast<double>(tone)),
              0.0, 1e-3);
}

TEST(PhaseTracker, EstimatesKnownCpe) {
  // Build a channel estimate of all ones, then rotate pilots by a known
  // angle: the CPE estimate must recover it.
  chanest::MimoChannelEstimate est;
  est.nrx = 1;
  est.nss = 1;
  est.h.assign(1, std::vector<std::vector<cf32>>(1, std::vector<cf32>(64, cf32{1, 0})));
  chanest::PilotPhaseTracker tracker(est);

  const double cpe = 0.4;
  std::vector<std::array<cf32, 4>> rx_pilots(1);
  const auto pv = ofdm::ht_data_pilots(1, 0, 5);
  for (std::size_t p = 0; p < 4; ++p) {
    const cf64 rotated = cf64(pv[p]) * dsp::phasor_d(cpe);
    rx_pilots[0][p] = cf32(static_cast<float>(rotated.real()),
                           static_cast<float>(rotated.imag()));
  }
  EXPECT_NEAR(tracker.estimate_cpe(rx_pilots, 5), cpe, 1e-5);
}

TEST(PhaseTracker, TracksLinearSlopeAndUnwraps) {
  chanest::MimoChannelEstimate est;
  est.nrx = 1;
  est.nss = 1;
  est.h.assign(1, std::vector<std::vector<cf32>>(1, std::vector<cf32>(64, cf32{1, 0})));
  chanest::PilotPhaseTracker tracker(est);

  const double slope = 0.9;  // radians/symbol — wraps after ~7 symbols
  double max_err = 0.0;
  for (std::size_t n = 0; n < 40; ++n) {
    const double true_phase = slope * static_cast<double>(n);
    // Raw measurement is wrapped into (-pi, pi].
    double wrapped = std::remainder(true_phase, dsp::two_pi_d);
    const double tracked = tracker.track(wrapped);
    if (n > 5) {
      max_err = std::max(max_err, std::abs(tracked - true_phase));
    }
  }
  EXPECT_LT(max_err, 0.2);
  EXPECT_NEAR(tracker.residual_cfo_norm(), slope / (dsp::two_pi_d * 80.0), 1e-3);
}

TEST(SnrFromLltf, AccurateAcrossRange) {
  for (const double snr_db : {0.0, 10.0, 20.0, 30.0}) {
    const auto ltf = wifi::make_lltf(0, 1);
    const double nv = dsp::from_db(-snr_db);
    dsp::RunningStats est_stats;
    for (unsigned trial = 0; trial < 20; ++trial) {
      std::vector<cf32> rx(ltf.begin() + 32, ltf.begin() + 160);
      dsp::ComplexGaussian noise(100 * trial + 5, nv);
      noise.add_to(rx);
      const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
      est_stats.add(chanest::snr_from_lltf(spans).snr_db);
    }
    EXPECT_NEAR(est_stats.mean(), snr_db, 1.0) << "SNR " << snr_db;
  }
}

TEST(SnrFromLltf, PerBinValuesPopulated) {
  const auto ltf = wifi::make_lltf(0, 1);
  std::vector<cf32> rx(ltf.begin() + 32, ltf.begin() + 160);
  dsp::ComplexGaussian noise(77, 0.01);
  noise.add_to(rx);
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  const auto est = chanest::snr_from_lltf(spans);
  ASSERT_EQ(est.per_bin_db.size(), 64U);
  ASSERT_EQ(est.per_bin_valid.size(), 64U);
  // Occupied bins carry estimates; DC is explicitly invalid (NaN), not a
  // silent 0 dB.
  EXPECT_TRUE(est.bin_valid(ofdm::SubcarrierMap::logical_to_bin(7)));
  EXPECT_NE(est.per_bin_db[ofdm::SubcarrierMap::logical_to_bin(7)], 0.0);
  EXPECT_FALSE(est.bin_valid(0));
  EXPECT_TRUE(std::isnan(est.per_bin_db[0]));
}

// Regression (ISSUE 2): an all-zero LLTF must produce a finite, clamped
// wideband estimate and saturated (not 0 dB) occupied bins — previously the
// raw ratio overflowed toward +inf dB.
TEST(SnrFromLltf, AllZeroInputSaturatesFinite) {
  const std::vector<cf32> rx(128, cf32{0.0F, 0.0F});
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  const auto est = chanest::snr_from_lltf(spans);
  EXPECT_TRUE(std::isfinite(est.snr_db));
  EXPECT_LE(std::abs(est.snr_db), chanest::SnrEstimate::kPerBinCeilingDb);
  for (std::size_t b = 0; b < est.per_bin_db.size(); ++b) {
    if (!est.bin_valid(b)) continue;
    EXPECT_TRUE(std::isfinite(est.per_bin_db[b])) << "bin " << b;
    EXPECT_LE(std::abs(est.per_bin_db[b]), chanest::SnrEstimate::kPerBinCeilingDb);
  }
}

// Regression (ISSUE 2): a noiseless LLTF (both periods identical) has zero
// error energy in every bin; that must report the documented ceiling, not
// an unbounded or silent value.
TEST(SnrFromLltf, NoiselessInputReportsCeiling) {
  const auto ltf = wifi::make_lltf(0, 1);
  const std::vector<cf32> rx(ltf.begin() + 32, ltf.begin() + 160);
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  const auto est = chanest::snr_from_lltf(spans);
  EXPECT_DOUBLE_EQ(est.snr_db, chanest::SnrEstimate::kPerBinCeilingDb);
  const auto bin = ofdm::SubcarrierMap::logical_to_bin(7);
  ASSERT_TRUE(est.bin_valid(bin));
  EXPECT_DOUBLE_EQ(est.per_bin_db[bin], chanest::SnrEstimate::kPerBinCeilingDb);
}

TEST(SnrFromLltf, TooShortThrows) {
  std::vector<cf32> rx(100);
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  EXPECT_THROW((void)chanest::snr_from_lltf(spans), std::invalid_argument);
}

TEST(EvmSnrEstimator, MatchesConstructedSnr) {
  chanest::EvmSnrEstimator evm;
  dsp::ComplexGaussian noise(9, 0.01);  // 20 dB below unit signal
  std::mt19937 rng(10);
  std::uniform_int_distribution<int> coin(0, 1);
  for (int i = 0; i < 20000; ++i) {
    const cf32 ref(coin(rng) != 0 ? 1.0F : -1.0F, 0.0F);
    evm.add(ref + noise.sample(), ref);
  }
  const auto est = evm.estimate();
  EXPECT_NEAR(est.snr_db, 20.0, 0.5);
}

TEST(EvmSnrEstimator, PerBinTracksDifferentSnrs) {
  chanest::EvmSnrEstimator evm;
  dsp::ComplexGaussian strong(11, 0.1);
  dsp::ComplexGaussian weak(12, 0.001);
  for (int i = 0; i < 5000; ++i) {
    evm.add(5, cf32{1, 0} + strong.sample(), cf32{1, 0});   // 10 dB
    evm.add(9, cf32{1, 0} + weak.sample(), cf32{1, 0});     // 30 dB
  }
  const auto est = evm.estimate();
  EXPECT_NEAR(est.per_bin_db[5], 10.0, 1.0);
  EXPECT_NEAR(est.per_bin_db[9], 30.0, 1.0);
  EXPECT_TRUE(est.bin_valid(5));
  EXPECT_TRUE(est.bin_valid(9));
  // Unobserved bins are explicitly invalid, not a fake 0 dB.
  EXPECT_FALSE(est.bin_valid(20));
  EXPECT_TRUE(std::isnan(est.per_bin_db[20]));
}

// Regression (ISSUE 2): a bin observed without any error energy used to
// silently report 0 dB — indistinguishable from a genuinely 0 dB bin. It
// must now report the documented +60 dB ceiling.
TEST(EvmSnrEstimator, ZeroErrorBinReportsCeilingNotZero) {
  chanest::EvmSnrEstimator evm;
  for (int i = 0; i < 4; ++i) {
    evm.add(3, cf32{1.0F, 0.0F}, cf32{1.0F, 0.0F});  // exact: zero EVM
  }
  const auto est = evm.estimate();
  ASSERT_TRUE(est.bin_valid(3));
  EXPECT_DOUBLE_EQ(est.per_bin_db[3], chanest::SnrEstimate::kPerBinCeilingDb);
}

// Regression (ISSUE 2): one sample is not enough for a per-bin estimate;
// the bin must be flagged invalid (NaN) rather than reported as 0 dB.
TEST(EvmSnrEstimator, SingleSampleBinIsInvalid) {
  chanest::EvmSnrEstimator evm;
  evm.add(7, cf32{1.0F, 0.1F}, cf32{1.0F, 0.0F});
  const auto est = evm.estimate();
  EXPECT_FALSE(est.bin_valid(7));
  EXPECT_TRUE(std::isnan(est.per_bin_db[7]));
  EXPECT_TRUE(std::isfinite(est.snr_db));  // wideband still defined
}

// Regression (ISSUE 2): estimate() on an empty estimator returns defined
// zeros (never NaN/Inf), and the per-bin vectors stay empty.
TEST(EvmSnrEstimator, EmptyEstimatorIsDefined) {
  const chanest::EvmSnrEstimator evm;
  const auto est = evm.estimate();
  EXPECT_EQ(est.snr_db, 0.0);
  EXPECT_EQ(est.signal_power, 0.0);
  EXPECT_EQ(est.noise_variance, 0.0);
  EXPECT_TRUE(est.per_bin_db.empty());
  EXPECT_FALSE(est.bin_valid(0));
}

TEST(EvmSnrEstimator, ResetClears) {
  chanest::EvmSnrEstimator evm;
  evm.add(cf32{1, 0}, cf32{0.5F, 0});
  EXPECT_EQ(evm.count(), 1U);
  evm.reset();
  EXPECT_EQ(evm.count(), 0U);
  EXPECT_EQ(evm.estimate().snr_db, 0.0);
}

}  // namespace
