// Synchronization: Van de Beek (SISO + MIMO), STF packet detection, fine
// timing, and the composed frame synchronizer.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "channel/impairments.hpp"
#include "channel/mimo_channel.hpp"
#include "core/transmitter.hpp"
#include "dsp/rng.hpp"
#include "ofdm/symbol.hpp"
#include "sync/fine_sync.hpp"
#include "sync/frame_sync.hpp"
#include "sync/packet_detector.hpp"
#include "sync/van_de_beek.hpp"
#include "wifi/preamble.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

// A run of `n_symbols` random OFDM symbols (with CP), starting at `offset`
// noise-only samples, at the given SNR; returns (signal, noise_var).
std::vector<cf32> ofdm_burst(std::size_t n_symbols, std::size_t offset,
                             double snr_db, double cfo_norm, unsigned seed) {
  const ofdm::SymbolModulator mod(ofdm::CarrierPlan::kHt);
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<cf32> burst;
  const float gain = wifi::tone_gain(56);
  for (std::size_t s = 0; s < n_symbols; ++s) {
    std::vector<cf32> data(52);
    for (auto& v : data) {
      v = cf32(coin(rng) != 0 ? 1.0F : -1.0F, 0.0F);
    }
    const std::array<cf32, 4> pilots{cf32{1, 0}, cf32{1, 0}, cf32{1, 0},
                                     cf32{-1, 0}};
    const std::size_t base = burst.size();
    mod.modulate(data, pilots, burst);
    for (std::size_t i = base; i < burst.size(); ++i) burst[i] *= gain;
  }
  if (cfo_norm != 0.0) channel::apply_cfo(burst, cfo_norm);
  const double nv = dsp::from_db(-snr_db);
  auto out = channel::pad_with_noise(burst, offset, 100, nv, seed + 1);
  dsp::ComplexGaussian noise(seed + 2, nv);
  noise.add_to(std::span<cf32>(out).subspan(offset, burst.size()));
  return out;
}

TEST(VanDeBeek, FindsSymbolTimingCleanly) {
  const auto rx = ofdm_burst(4, 50, 30.0, 0.0, 1);
  sync::VdbConfig cfg;
  cfg.n_symbols = 3;
  const sync::VanDeBeekEstimator vdb(cfg);
  const auto est = vdb.estimate(std::span<const cf32>(rx).first(50 + 300));
  // Peak should be at the first CP start (offset 50), mod 80 ambiguity aside.
  EXPECT_NEAR(static_cast<double>(est.timing), 50.0, 2.0);
}

TEST(VanDeBeek, EstimatesFractionalCfo) {
  const double cfo = 0.5 / 64.0 * 0.6;  // 60% of the unambiguous range
  const auto rx = ofdm_burst(6, 20, 35.0, cfo, 2);
  sync::VdbConfig cfg;
  cfg.n_symbols = 4;
  const sync::VanDeBeekEstimator vdb(cfg);
  const auto est = vdb.estimate(std::span<const cf32>(rx).first(20 + 60 + vdb.min_span()));
  EXPECT_NEAR(est.cfo_norm, cfo, 5e-4);
}

TEST(VanDeBeek, MimoCombiningReducesTimingVariance) {
  // At low SNR, combining two antennas should reduce timing error variance.
  sync::VdbConfig cfg;
  cfg.n_symbols = 2;
  const sync::VanDeBeekEstimator vdb(cfg);
  constexpr std::size_t kOffset = 40;
  constexpr int kTrials = 60;

  double var_siso = 0.0;
  double var_mimo = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const auto a = ofdm_burst(3, kOffset, 2.0, 0.0, 100 + 3 * t);
    auto b = ofdm_burst(3, kOffset, 2.0, 0.0, 100 + 3 * t);  // same symbols
    // Decorrelate antenna b's noise (different pad seed via re-noise).
    dsp::ComplexGaussian extra(7000 + t, dsp::from_db(-2.0));
    // (b already has noise; adding more makes b worse but independent-ish.)
    const auto ea = vdb.estimate(a);
    const std::span<const cf32> both[] = {std::span<const cf32>(a),
                                          std::span<const cf32>(b)};
    const auto eb = vdb.estimate_mimo(both);
    const double da = static_cast<double>(ea.timing) - kOffset;
    const double db = static_cast<double>(eb.timing) - kOffset;
    var_siso += da * da;
    var_mimo += db * db;
  }
  EXPECT_LE(var_mimo, var_siso + 1e-9);
}

TEST(VanDeBeek, Validation) {
  EXPECT_THROW(sync::VanDeBeekEstimator({.fft_len = 0}), std::invalid_argument);
  EXPECT_THROW(sync::VanDeBeekEstimator({.rho = 1.5}), std::invalid_argument);
  const sync::VanDeBeekEstimator vdb({});
  std::vector<cf32> tiny(10);
  EXPECT_THROW((void)vdb.estimate(tiny), std::invalid_argument);
}

TEST(PacketDetector, FindsStfBurst) {
  const auto stf = wifi::make_lstf(0, 1);
  const double nv = dsp::from_db(-15.0);
  auto rx = channel::pad_with_noise(stf, 500, 500, nv, 3);
  dsp::ComplexGaussian noise(4, nv);
  noise.add_to(std::span<cf32>(rx).subspan(500, stf.size()));

  const sync::PacketDetector det(sync::DetectorConfig{});
  const auto d = det.detect(rx);
  ASSERT_TRUE(d.has_value());
  // The plateau detector is a *coarse* trigger: it fires as the correlation
  // windows slide into the burst, so a few tens of samples of early bias is
  // expected (fine timing is the job of sync::FineSynchronizer).
  EXPECT_NEAR(static_cast<double>(d->start), 500.0, 40.0);
  EXPECT_GT(d->peak_metric, 0.5F);
}

TEST(PacketDetector, SilenceGivesNoDetection) {
  std::vector<cf32> rx(5000);
  dsp::ComplexGaussian noise(5, 1.0);
  noise.fill(rx);
  const sync::PacketDetector det(sync::DetectorConfig{});
  EXPECT_FALSE(det.detect(rx).has_value());
}

TEST(PacketDetector, EstimatesCoarseCfo) {
  auto stf = wifi::make_lstf(0, 1);
  // Use several STFs back to back for a long plateau.
  std::vector<cf32> sig;
  for (int i = 0; i < 2; ++i) sig.insert(sig.end(), stf.begin(), stf.end());
  const double cfo = 3e-3;
  channel::apply_cfo(sig, cfo);
  auto rx = channel::pad_with_noise(sig, 300, 300, dsp::from_db(-25.0), 6);
  const sync::PacketDetector det(sync::DetectorConfig{});
  const auto d = det.detect(rx);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(d->cfo_norm, cfo, 2e-4);
}

TEST(PacketDetector, Validation) {
  EXPECT_THROW(sync::PacketDetector({.lag = 0}), std::invalid_argument);
  EXPECT_THROW(sync::PacketDetector({.threshold = 1.5F}), std::invalid_argument);
}

TEST(FineSync, LocatesLltfExactly) {
  std::vector<cf32> sig;
  const auto stf = wifi::make_lstf(0, 1);
  const auto ltf = wifi::make_lltf(0, 1);
  sig.insert(sig.end(), stf.begin(), stf.end());
  sig.insert(sig.end(), ltf.begin(), ltf.end());
  auto rx = channel::pad_with_noise(sig, 0, 200, dsp::from_db(-30.0), 7);

  const sync::FineSynchronizer fine;
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  const auto res = fine.locate(spans);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->lltf_start, stf.size());
  EXPECT_GT(res->peak, 0.8);
}

TEST(FineSync, CfoFromLtfRepetitions) {
  auto ltf = wifi::make_lltf(0, 1);
  const double cfo = 1.2e-3;
  channel::apply_cfo(ltf, cfo);
  const sync::FineSynchronizer fine;
  const std::span<const cf32> spans[] = {std::span<const cf32>(ltf)};
  EXPECT_NEAR(fine.estimate_cfo(spans, 32), cfo, 1e-4);
}

class FrameSyncModes : public ::testing::TestWithParam<sync::TimingMode> {};

TEST_P(FrameSyncModes, SynchronizesRealPpdu) {
  core::PhyConfig phy;
  phy.mcs = 0;
  const core::Transmitter tx(phy);
  const auto psdu = std::vector<std::uint8_t>(64, 0x5A);
  const auto streams = tx.transmit(psdu);

  channel::ChannelConfig ccfg;
  ccfg.snr_db = 20.0;
  ccfg.cfo_norm = 8e-4;
  ccfg.timing_pad = 600;
  ccfg.tail_pad = 200;
  channel::MimoChannel chan(ccfg);
  const auto rx = chan.transmit(streams);

  sync::FrameSyncConfig scfg;
  scfg.mode = GetParam();
  const sync::FrameSynchronizer fs(scfg);
  const auto res = fs.synchronize(rx);
  ASSERT_TRUE(res.has_value());
  EXPECT_NEAR(static_cast<double>(res->packet_start), 600.0, 6.0);
  // The CP-ML (Van de Beek) CFO estimate correlates only 16-sample guard
  // windows, so its variance is a few times the LTF method's.
  const double cfo_tol =
      (GetParam() == sync::TimingMode::kVanDeBeekMimo) ? 4e-4 : 1e-4;
  EXPECT_NEAR(res->cfo_norm, 8e-4, cfo_tol);
}

INSTANTIATE_TEST_SUITE_P(Modes, FrameSyncModes,
                         ::testing::Values(sync::TimingMode::kLtfCrossCorr,
                                           sync::TimingMode::kVanDeBeekMimo));

TEST(FrameSync, NoPacketInNoise) {
  std::vector<std::vector<cf32>> rx(1, std::vector<cf32>(8000));
  dsp::ComplexGaussian noise(8, 0.5);
  noise.fill(rx[0]);
  const sync::FrameSynchronizer fs(sync::FrameSyncConfig{});
  EXPECT_FALSE(fs.synchronize(rx).has_value());
}

TEST(FrameSync, RejectsExcessiveSlack) {
  sync::FrameSyncConfig cfg;
  cfg.vdb_slack = 60;
  EXPECT_THROW(sync::FrameSynchronizer{cfg}, std::invalid_argument);
}

// ---- Span-arithmetic boundary regressions (ISSUE 2): every guard that
// precedes a std::size_t subtraction, checked with inputs exactly at the
// boundary and one below it. ----

TEST(VanDeBeek, SpanExactlyAtMinSpanWorks) {
  sync::VdbConfig cfg;
  cfg.n_symbols = 3;
  const sync::VanDeBeekEstimator vdb(cfg);
  const auto rx = ofdm_burst(4, 0, 30.0, 0.0, 21);
  ASSERT_GE(rx.size(), vdb.min_span());
  // len == min_span(): exactly one candidate position; len - min_span() + 1
  // must evaluate to 1, not wrap.
  const auto est =
      vdb.estimate(std::span<const cf32>(rx).first(vdb.min_span()));
  EXPECT_EQ(est.trace.size(), 1U);
  EXPECT_EQ(est.timing, 0U);
  EXPECT_TRUE(std::isfinite(est.metric));
  EXPECT_TRUE(std::isfinite(est.cfo_norm));
}

TEST(VanDeBeek, SpanOneBelowMinSpanThrows) {
  sync::VdbConfig cfg;
  cfg.n_symbols = 3;
  const sync::VanDeBeekEstimator vdb(cfg);
  const std::vector<cf32> rx(vdb.min_span() - 1);
  EXPECT_THROW((void)vdb.estimate(rx), std::invalid_argument);
}

TEST(VanDeBeek, AllZeroSpanGivesFiniteEstimate) {
  sync::VdbConfig cfg;
  cfg.n_symbols = 2;
  const sync::VanDeBeekEstimator vdb(cfg);
  const std::vector<cf32> rx(vdb.min_span() + 37, cf32{0.0F, 0.0F});
  const auto est = vdb.estimate(rx);
  EXPECT_TRUE(std::isfinite(est.metric));
  EXPECT_TRUE(std::isfinite(est.cfo_norm));
  EXPECT_LT(est.timing, rx.size());
}

TEST(PacketDetector, SpanShorterThanOneWindowIsNoDetect) {
  const sync::PacketDetector det(sync::DetectorConfig{});
  const auto cfg = sync::DetectorConfig{};
  // One below the lag + window minimum: must return nullopt, not wrap the
  // sliding-sum arithmetic.
  std::vector<cf32> rx(cfg.lag + cfg.window - 1, cf32{1.0F, 0.0F});
  EXPECT_FALSE(det.detect(rx).has_value());
  // Exactly at the minimum: one metric position, defined result.
  rx.assign(cfg.lag + cfg.window, cf32{1.0F, 0.0F});
  const auto d = det.detect(rx);
  if (d) {  // plateau length permitting, either outcome must be sane
    EXPECT_TRUE(std::isfinite(d->peak_metric));
    EXPECT_TRUE(std::isfinite(d->cfo_norm));
  }
}

TEST(PacketDetector, AllZeroSpanIsNoDetect) {
  const sync::PacketDetector det(sync::DetectorConfig{});
  const std::vector<cf32> rx(4096, cf32{0.0F, 0.0F});
  EXPECT_FALSE(det.detect(rx).has_value());
}

TEST(FineSync, SpanAtAndBelowMinimumLength) {
  const sync::FineSynchronizer fine;
  // Minimum locate() span is kGuard + 2 * kPeriod = 160 samples.
  std::vector<cf32> below(159, cf32{0.1F, 0.0F});
  const std::span<const cf32> sb[] = {std::span<const cf32>(below)};
  EXPECT_FALSE(fine.locate(sb).has_value());

  const auto lltf = wifi::make_lltf(0, 1);
  std::vector<cf32> at(lltf.begin(), lltf.begin() + 160);
  const std::span<const cf32> sa[] = {std::span<const cf32>(at)};
  const auto res = fine.locate(sa);  // either outcome, but defined
  if (res) {
    EXPECT_TRUE(std::isfinite(res->peak));
    EXPECT_TRUE(std::isfinite(res->cfo_norm));
    EXPECT_LT(res->lltf_start, at.size());
  }
}

// ---- Multi-antenna metric normalization (ISSUE 7 headline bugfix). The
// old combine summed per-antenna sqrt(P_lead*P_lag) and squared the sum;
// when antennas see different lead/lag power ratios that denominator is
// strictly smaller than (sum P_lead)*(sum P_lag) (AM-GM), inflating the
// metric past the Cauchy-Schwarz bound and firing where it should not. ----

// Two antennas observing the same 32-periodic pseudo-noise, with opposite
// 10 dB amplitude steps at the lag boundary. The span is sized so every
// correlation position has its lead window entirely in the pre-step region
// and its lag window entirely in the post-step region: per antenna the
// windows are perfectly correlated, but the correct combined metric is
// 4*eps/(1+eps)^2 ~= 0.33 (eps = 0.1) while the old formula evaluates to
// exactly 1.0 — the two sides of the detection threshold.
TEST(PacketDetector, MimoNormalizationRejectsImbalancedGainStep) {
  sync::DetectorConfig cfg;
  cfg.lag = 32;
  cfg.window = 16;
  cfg.threshold = 0.45F;
  cfg.min_plateau = 4;
  const sync::PacketDetector det(cfg);

  constexpr std::size_t kLen = 64;  // every position straddles the step
  constexpr float kLow = 0.316228F;  // -10 dB amplitude
  std::mt19937 rng(97);
  std::uniform_real_distribution<float> dist(-1.0F, 1.0F);
  std::vector<cf32> base(cfg.lag);
  for (auto& v : base) v = cf32(dist(rng), dist(rng));

  std::vector<cf32> x1(kLen);
  std::vector<cf32> x2(kLen);
  for (std::size_t k = 0; k < kLen; ++k) {
    const float g1 = (k < cfg.lag) ? 1.0F : kLow;
    const float g2 = (k < cfg.lag) ? kLow : 1.0F;
    x1[k] = g1 * base[k % cfg.lag];
    x2[k] = g2 * base[k % cfg.lag];
  }
  const std::span<const cf32> spans[] = {std::span<const cf32>(x1),
                                         std::span<const cf32>(x2)};

  // Fixed normalization: nothing crosses the threshold, no detection.
  EXPECT_FALSE(det.detect_mimo(spans).has_value());

  // Regression oracle: recompute both formulas from the exposed per-antenna
  // power sums and show the old one would have fired on every position —
  // i.e. this test fails against the pre-fix metric.
  const auto r1 = dsp::lag_autocorrelate(x1, cfg.lag, cfg.window);
  const auto r2 = dsp::lag_autocorrelate(x2, cfg.lag, cfg.window);
  ASSERT_GE(r1.metric.size(), cfg.min_plateau);
  for (std::size_t i = 0; i < r1.metric.size(); ++i) {
    const dsp::cf64 c = dsp::cf64(r1.corr[i]) + dsp::cf64(r2.corr[i]);
    const double old_denom =
        std::sqrt(static_cast<double>(r1.pow_lead[i]) * r1.pow_lag[i]) +
        std::sqrt(static_cast<double>(r2.pow_lead[i]) * r2.pow_lag[i]);
    const double old_metric = dsp::mag_sqr(c) / (old_denom * old_denom);
    const double new_denom =
        (static_cast<double>(r1.pow_lead[i]) + r2.pow_lead[i]) *
        (static_cast<double>(r1.pow_lag[i]) + r2.pow_lag[i]);
    const double new_metric = dsp::mag_sqr(c) / new_denom;
    EXPECT_GT(old_metric, cfg.threshold) << "position " << i;
    EXPECT_NEAR(old_metric, 1.0, 1e-3) << "position " << i;
    EXPECT_LT(new_metric, cfg.threshold) << "position " << i;
    EXPECT_NEAR(new_metric, 4.0 * 0.1 / (1.1 * 1.1), 1e-3) << "position " << i;
  }
}

// Flat (position-independent) antenna gain imbalance leaves each antenna's
// lead/lag ratio intact, so the fix must not cost detection of a real
// packet heard 10 dB weaker on one antenna.
TEST(PacketDetector, MimoStillDetectsUnderFlatGainImbalance) {
  const auto stf = wifi::make_lstf(0, 1);
  const double nv = dsp::from_db(-15.0);
  auto a1 = channel::pad_with_noise(stf, 500, 500, nv, 31);
  dsp::ComplexGaussian n1(32, nv);
  n1.add_to(std::span<cf32>(a1).subspan(500, stf.size()));
  // Antenna 2: same burst 10 dB down, independent noise at the same floor.
  std::vector<cf32> weak(stf.begin(), stf.end());
  for (auto& v : weak) v *= 0.316228F;
  auto a2 = channel::pad_with_noise(weak, 500, 500, nv, 33);
  dsp::ComplexGaussian n2(34, nv);
  n2.add_to(std::span<cf32>(a2).subspan(500, stf.size()));

  const sync::PacketDetector det(sync::DetectorConfig{});
  const std::span<const cf32> spans[] = {std::span<const cf32>(a1),
                                         std::span<const cf32>(a2)};
  const auto d = det.detect_mimo(spans);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(static_cast<double>(d->start), 500.0, 40.0);
}

// A plateau still above threshold at the last correlation position must
// report (deferred-report scanner flushes at end of data).
TEST(PacketDetector, PlateauReachingEndOfDataStillReports) {
  const sync::DetectorConfig cfg{};
  std::vector<cf32> rx(1200);
  dsp::ComplexGaussian noise(35, dsp::from_db(-20.0));
  noise.fill(rx);
  // 16-periodic signal from sample 600 through the very end: the metric
  // never drops below threshold again, so only an end-of-data flush can
  // report the run.
  for (std::size_t i = 600; i < rx.size(); ++i) {
    rx[i] += dsp::phasor(2.0F * dsp::pi_f * static_cast<float>(i % 16) / 16.0F);
  }
  const sync::PacketDetector det(cfg);
  const auto d = det.detect(rx);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(static_cast<double>(d->start), 600.0, 40.0);
}

// ---- Two-pass decimated scan (ISSUE 7 tentpole, detector level). ----

TEST(PacketDetector, ScanModeValidation) {
  sync::ScanMode scan;
  scan.decimation = 5;  // does not divide lag 16
  EXPECT_THROW(sync::PacketDetector(sync::DetectorConfig{}, scan),
               std::invalid_argument);
  scan.decimation = 0;
  EXPECT_THROW(sync::PacketDetector(sync::DetectorConfig{}, scan),
               std::invalid_argument);
  scan.decimation = 4;
  scan.coarse_threshold_scale = 1.5F;
  EXPECT_THROW(sync::PacketDetector(sync::DetectorConfig{}, scan),
               std::invalid_argument);
  scan.coarse_threshold_scale = 0.6F;
  scan.coarse_min_run = 0;
  EXPECT_THROW(sync::PacketDetector(sync::DetectorConfig{}, scan),
               std::invalid_argument);
}

TEST(PacketDetector, TwoPassMatchesExhaustiveOnStfBurst) {
  const auto stf = wifi::make_lstf(0, 1);
  std::vector<cf32> sig;
  for (int i = 0; i < 2; ++i) sig.insert(sig.end(), stf.begin(), stf.end());
  const double cfo = 2e-3;
  channel::apply_cfo(sig, cfo);
  auto rx = channel::pad_with_noise(sig, 3000, 2000, dsp::from_db(-20.0), 36);

  const sync::PacketDetector exhaustive(sync::DetectorConfig{});
  const auto ref = exhaustive.detect(rx);
  ASSERT_TRUE(ref.has_value());

  for (const std::size_t d : {2U, 4U, 8U}) {
    sync::ScanMode scan;
    scan.decimation = d;
    const sync::PacketDetector twopass(sync::DetectorConfig{}, scan);
    const auto det = twopass.detect(rx);
    ASSERT_TRUE(det.has_value()) << "decimation " << d;
    // The candidate-region full sweep warms its sliding sums at the region
    // edge instead of the span start, so per-position float rounding can
    // differ by ulps; the detection itself must agree.
    EXPECT_EQ(det->start, ref->start) << "decimation " << d;
    EXPECT_NEAR(det->cfo_norm, ref->cfo_norm, 1e-6) << "decimation " << d;
    EXPECT_NEAR(det->peak_metric, ref->peak_metric, 1e-4F) << "decimation " << d;
  }
}

TEST(PacketDetector, TwoPassQuietSpanHasNoDetection) {
  std::vector<cf32> rx(100000);
  dsp::ComplexGaussian noise(37, 1.0);
  noise.fill(rx);
  sync::ScanMode scan;
  scan.decimation = 8;
  const sync::PacketDetector det(sync::DetectorConfig{}, scan);
  EXPECT_FALSE(det.detect(rx).has_value());
}

TEST(PacketDetector, ScanCoarseFlagsBurstRegions) {
  const auto stf = wifi::make_lstf(0, 1);
  std::vector<cf32> rx(20000);
  dsp::ComplexGaussian noise(38, dsp::from_db(-20.0));
  noise.fill(rx);
  const std::size_t starts[] = {4000, 12000};
  for (const auto s : starts) {
    for (std::size_t i = 0; i < stf.size(); ++i) rx[s + i] += stf[i];
  }

  sync::ScanMode scan;
  scan.decimation = 8;
  const sync::PacketDetector det(sync::DetectorConfig{}, scan);
  sync::DetectScratch scratch;
  std::vector<sync::CoarseRegion> regions;
  const std::span<const cf32> spans[] = {std::span<const cf32>(rx)};
  const std::size_t n_pos = det.scan_coarse(spans, scratch, regions);
  EXPECT_GT(n_pos, 0U);
  // The coarse pass is a recall gate: noise may open spurious regions
  // (bounded full-rate work), but every burst MUST be covered by one.
  for (const auto s : starts) {
    bool covered = false;
    for (const auto& r : regions) {
      covered = covered || (r.begin < s + stf.size() && r.end > s);
    }
    EXPECT_TRUE(covered) << "burst at " << s << " not flagged";
  }
}

TEST(FrameSync, AllZeroCaptureIsNoDetect) {
  const std::vector<std::vector<cf32>> rx(2, std::vector<cf32>(4000));
  for (const auto mode :
       {sync::TimingMode::kLtfCrossCorr, sync::TimingMode::kVanDeBeekMimo}) {
    sync::FrameSyncConfig cfg;
    cfg.mode = mode;
    const sync::FrameSynchronizer fs(cfg);
    EXPECT_FALSE(fs.synchronize(rx).has_value());
  }
}

}  // namespace
