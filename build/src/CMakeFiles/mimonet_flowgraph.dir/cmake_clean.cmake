file(REMOVE_RECURSE
  "CMakeFiles/mimonet_flowgraph.dir/flowgraph/block.cpp.o"
  "CMakeFiles/mimonet_flowgraph.dir/flowgraph/block.cpp.o.d"
  "CMakeFiles/mimonet_flowgraph.dir/flowgraph/blocks.cpp.o"
  "CMakeFiles/mimonet_flowgraph.dir/flowgraph/blocks.cpp.o.d"
  "CMakeFiles/mimonet_flowgraph.dir/flowgraph/graph.cpp.o"
  "CMakeFiles/mimonet_flowgraph.dir/flowgraph/graph.cpp.o.d"
  "libmimonet_flowgraph.a"
  "libmimonet_flowgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_flowgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
