// PSDU framing: a compact 802.11-style MAC header, payload, and the CRC-32
// FCS — the paper's "packet construction" with FEC concatenated around it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mimonet::wifi {

using MacAddress = std::array<std::uint8_t, 6>;

/// Minimal data-frame MAC header (24 bytes on the wire, little-endian
/// multi-byte fields, as in 802.11).
struct MacHeader {
  std::uint16_t frame_control = 0x0008;  // data frame
  std::uint16_t duration = 0;
  MacAddress addr1{};  // receiver
  MacAddress addr2{};  // transmitter
  MacAddress addr3{};  // BSSID
  std::uint16_t sequence_control = 0;

  friend bool operator==(const MacHeader&, const MacHeader&) = default;
};

inline constexpr std::size_t kMacHeaderLen = 24;
inline constexpr std::size_t kFcsLen = 4;

/// Maximum PSDU length representable in HT-SIG (and accepted by the PHY).
inline constexpr std::size_t kMaxPsduLen = 65535;

/// Serialize header + payload + FCS into a PSDU byte vector.
[[nodiscard]] std::vector<std::uint8_t> build_psdu(const MacHeader& header,
                                                   std::span<const std::uint8_t> payload);

/// A successfully FCS-validated PSDU.
struct ParsedPsdu {
  MacHeader header;
  std::vector<std::uint8_t> payload;
};

/// Validate the FCS and split the PSDU; nullopt on corruption or truncation.
[[nodiscard]] std::optional<ParsedPsdu> parse_psdu(std::span<const std::uint8_t> psdu);

/// FCS check only (no parsing) — the PER counter's fast path.
[[nodiscard]] bool psdu_fcs_ok(std::span<const std::uint8_t> psdu) noexcept;

}  // namespace mimonet::wifi
