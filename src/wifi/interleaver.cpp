#include "wifi/interleaver.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "wifi/mcs.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define MIMONET_DEINT_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mimonet::wifi {

namespace {
constexpr std::size_t kNcol = 13;  // 20 MHz
constexpr std::size_t kNrot = 11;  // 20 MHz base rotation (in subcarriers)

bool g_force_scalar_deint = false;

#ifdef MIMONET_DEINT_X86_DISPATCH
// Gathered permutation copy, 8 outputs per iteration. A deinterleave is a
// pure data movement, so the gather is trivially bit-identical to the
// scalar indexed copy.
__attribute__((target("avx2"))) void deinterleave_block_avx2(
    const float* in, const std::int32_t* perm, std::size_t n, float* out) {
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(perm + k));
    _mm256_storeu_ps(out + k, _mm256_i32gather_ps(in, idx, 4));
  }
  for (; k < n; ++k) out[k] = in[perm[k]];
}

[[nodiscard]] bool have_avx2_deint() noexcept {
  return __builtin_cpu_supports("avx2");
}
#endif  // MIMONET_DEINT_X86_DISPATCH
}  // namespace

namespace detail {
void force_scalar_deinterleave(bool force) noexcept { g_force_scalar_deint = force; }
bool deinterleave_simd_active() noexcept {
#ifdef MIMONET_DEINT_X86_DISPATCH
  return have_avx2_deint() && !g_force_scalar_deint;
#else
  return false;
#endif
}
}  // namespace detail

Interleaver::Interleaver(unsigned n_bpscs, std::size_t iss, std::size_t nss) {
  if (n_bpscs != 1 && n_bpscs != 2 && n_bpscs != 4 && n_bpscs != 6) {
    throw std::invalid_argument("Interleaver: n_bpscs must be 1, 2, 4 or 6");
  }
  if (iss >= nss || nss > 4) {
    throw std::invalid_argument("Interleaver: need iss < nss <= 4");
  }
  const std::size_t n_cbpss = kHtDataCarriers * n_bpscs;
  const std::size_t n_row = 4 * n_bpscs;
  const std::size_t s = std::max<std::size_t>(n_bpscs / 2, 1);

  perm_.resize(n_cbpss);
  for (std::size_t k = 0; k < n_cbpss; ++k) {
    // First permutation: write row-wise, read column-wise.
    const std::size_t i = n_row * (k % kNcol) + k / kNcol;
    // Second permutation: rotate bits within each group of s to spread
    // adjacent coded bits over constellation bit positions.
    const std::size_t j =
        s * (i / s) + (i + n_cbpss - (kNcol * i) / n_cbpss) % s;
    // Third permutation: per-stream frequency rotation (identity for iss 0).
    const std::size_t rot =
        (((iss * 2) % 3) + 3 * (iss / 3)) * kNrot * n_bpscs;
    const std::size_t r = (j + n_cbpss - (rot % n_cbpss)) % n_cbpss;
    perm_[k] = r;
  }
  perm32_.resize(n_cbpss);
  for (std::size_t k = 0; k < n_cbpss; ++k) {
    perm32_[k] = static_cast<std::int32_t>(perm_[k]);
  }
}

void Interleaver::interleave_into(std::span<const std::uint8_t> bits,
                                  std::vector<std::uint8_t>& out) const {
  if (bits.size() % perm_.size() != 0) {
    throw std::invalid_argument("Interleaver: input not a multiple of block size");
  }
  out.resize(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += perm_.size()) {
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      out[base + perm_[k]] = bits[base + k];
    }
  }
}

std::vector<std::uint8_t> Interleaver::interleave(
    std::span<const std::uint8_t> bits) const {
  std::vector<std::uint8_t> out;
  interleave_into(bits, out);
  return out;
}

std::vector<std::uint8_t> Interleaver::deinterleave(
    std::span<const std::uint8_t> bits) const {
  if (bits.size() % perm_.size() != 0) {
    throw std::invalid_argument("Interleaver: input not a multiple of block size");
  }
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += perm_.size()) {
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      out[base + k] = bits[base + perm_[k]];
    }
  }
  return out;
}

void Interleaver::deinterleave_into(std::span<const float> llrs,
                                    std::vector<float>& out) const {
  out.resize(llrs.size());
  deinterleave_into(llrs, std::span<float>(out));
}

void Interleaver::deinterleave_into(std::span<const float> llrs,
                                    std::span<float> out) const {
  if (llrs.size() % perm_.size() != 0) {
    throw std::invalid_argument("Interleaver: input not a multiple of block size");
  }
  if (out.size() != llrs.size()) {
    throw std::invalid_argument("Interleaver: output span size mismatch");
  }
#ifdef MIMONET_DEINT_X86_DISPATCH
  static const bool use_avx2 = have_avx2_deint();
  if (use_avx2 && !g_force_scalar_deint) {
    for (std::size_t base = 0; base < llrs.size(); base += perm_.size()) {
      deinterleave_block_avx2(llrs.data() + base, perm32_.data(), perm_.size(),
                              out.data() + base);
    }
    return;
  }
#endif
  for (std::size_t base = 0; base < llrs.size(); base += perm_.size()) {
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      out[base + k] = llrs[base + perm_[k]];
    }
  }
}

std::vector<float> Interleaver::deinterleave(std::span<const float> llrs) const {
  std::vector<float> out;
  deinterleave_into(llrs, out);
  return out;
}

LegacyInterleaver::LegacyInterleaver(unsigned n_bpsc) {
  if (n_bpsc != 1 && n_bpsc != 2 && n_bpsc != 4 && n_bpsc != 6) {
    throw std::invalid_argument("LegacyInterleaver: n_bpsc must be 1, 2, 4 or 6");
  }
  const std::size_t n_cbps = kLegacyDataCarriers * n_bpsc;
  const std::size_t s = std::max<std::size_t>(n_bpsc / 2, 1);
  perm_.resize(n_cbps);
  for (std::size_t k = 0; k < n_cbps; ++k) {
    const std::size_t i = (n_cbps / 16) * (k % 16) + k / 16;
    const std::size_t j = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
    perm_[k] = j;
  }
}

std::vector<std::uint8_t> LegacyInterleaver::interleave(
    std::span<const std::uint8_t> bits) const {
  if (bits.size() % perm_.size() != 0) {
    throw std::invalid_argument("LegacyInterleaver: bad input size");
  }
  std::vector<std::uint8_t> out(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += perm_.size()) {
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      out[base + perm_[k]] = bits[base + k];
    }
  }
  return out;
}

void LegacyInterleaver::interleave_into(std::span<const std::uint8_t> bits,
                                        std::vector<std::uint8_t>& out) const {
  if (bits.size() % perm_.size() != 0) {
    throw std::invalid_argument("LegacyInterleaver: bad input size");
  }
  out.resize(bits.size());
  for (std::size_t base = 0; base < bits.size(); base += perm_.size()) {
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      out[base + perm_[k]] = bits[base + k];
    }
  }
}

void LegacyInterleaver::deinterleave_into(std::span<const float> llrs,
                                          std::vector<float>& out) const {
  if (llrs.size() % perm_.size() != 0) {
    throw std::invalid_argument("LegacyInterleaver: bad input size");
  }
  out.resize(llrs.size());
  for (std::size_t base = 0; base < llrs.size(); base += perm_.size()) {
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      out[base + k] = llrs[base + perm_[k]];
    }
  }
}

std::vector<float> LegacyInterleaver::deinterleave(std::span<const float> llrs) const {
  std::vector<float> out;
  deinterleave_into(llrs, out);
  return out;
}

const Interleaver& cached_interleaver(unsigned n_bpscs, std::size_t iss,
                                      std::size_t nss) {
  struct Key {
    unsigned n_bpscs;
    std::size_t iss;
    std::size_t nss;
  };
  static std::mutex mu;
  static std::vector<std::pair<Key, std::unique_ptr<Interleaver>>> cache;
  const std::scoped_lock lock(mu);
  for (const auto& [key, ptr] : cache) {
    if (key.n_bpscs == n_bpscs && key.iss == iss && key.nss == nss) return *ptr;
  }
  cache.emplace_back(Key{n_bpscs, iss, nss},
                     std::make_unique<Interleaver>(n_bpscs, iss, nss));
  return *cache.back().second;
}

const LegacyInterleaver& cached_legacy_interleaver(unsigned n_bpsc) {
  static std::mutex mu;
  static std::vector<std::pair<unsigned, std::unique_ptr<LegacyInterleaver>>> cache;
  const std::scoped_lock lock(mu);
  for (const auto& [key, ptr] : cache) {
    if (key == n_bpsc) return *ptr;
  }
  cache.emplace_back(n_bpsc, std::make_unique<LegacyInterleaver>(n_bpsc));
  return *cache.back().second;
}

}  // namespace mimonet::wifi
