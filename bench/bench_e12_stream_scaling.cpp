// E12 — Spatial-multiplexing scaling (Table reconstruction): goodput and
// PER as the stream count grows 1 -> 4 on square antenna arrays.
//
// The headline claim of the paper ("significant increasing of the
// throughput without the extension of the bandwidth") extrapolated to 4
// streams. Expected shape: goodput scales ~linearly with nss at high SNR;
// the SNR needed for a target PER grows with nss (stream separation gets
// harder); extra RX antennas (nrx > nss) buy some of it back.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

core::LinkResult run_cell(unsigned mcs, double snr, std::size_t nrx,
                          std::size_t packets, std::uint64_t seed) {
  auto cfg = core::LinkConfig::make()
                 .mcs(mcs)
                 .snr_db(snr)
                 .nrx(nrx)
                 .fading(true)
                 .payload_bytes(1500)
                 .seed(seed)
                 .build();
  core::LinkSimulator sim(cfg);
  return sim.run(
      core::RunOptions{.n_packets = packets, .n_threads = bench::threads()});
}

}  // namespace

int main() {
  bench::heading("E12", "Stream-count scaling, QPSK 1/2 family (Table)");
  constexpr std::size_t kPackets = 25;
  bench::note("MCS 1/9/17/25 (QPSK 1/2 x nss), square nss x nss Rayleigh,");
  bench::note("%zu 1500-byte packets per cell", kPackets);

  const unsigned family[] = {1, 9, 17, 25};

  // One merged aggregate per stream count over the whole SNR sweep.
  core::LinkResult totals[4];

  std::printf("\n  Goodput (Mb/s) and PER vs SNR\n");
  const bench::Table t1({"SNR dB", "1 str", "2 str", "3 str", "4 str"}, 10);
  std::vector<std::vector<std::string>> per_rows;
  std::string pts = "[";
  bool first = true;
  for (double snr = 10.0; snr <= 35.0; snr += 5.0) {
    std::vector<std::string> goodput_cells{bench::fix(snr, 0)};
    std::vector<std::string> per_cells{bench::fix(snr, 0)};
    for (std::size_t i = 0; i < 4; ++i) {
      const auto res = run_cell(family[i], snr, 0, kPackets, 120 + family[i]);
      goodput_cells.push_back(bench::fix(res.throughput.goodput_mbps(), 1));
      per_cells.push_back(bench::fix(res.per.per(), 2));
      totals[i].merge(res);
      char obj[192];
      std::snprintf(obj, sizeof obj,
                    "%s{\"snr_db\": %g, \"nss\": %zu, \"goodput_mbps\": %.6g, "
                    "\"per\": %.6g}",
                    first ? "" : ", ", snr, i + 1,
                    res.throughput.goodput_mbps(), res.per.per());
      pts += obj;
      first = false;
    }
    t1.row(goodput_cells);
    per_rows.push_back(std::move(per_cells));
  }

  std::printf("\n  PER vs SNR\n");
  const bench::Table t2({"SNR dB", "1 str", "2 str", "3 str", "4 str"}, 10);
  for (const auto& row : per_rows) t2.row(row);

  std::printf("\n  sweep aggregate per stream count (merged over all SNRs)\n");
  std::vector<std::string> sum_headers{"streams"};
  for (const auto& h : core::LinkResult::summary_headers()) sum_headers.push_back(h);
  const bench::Table ts(sum_headers, 11);
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::string> cells{std::to_string(i + 1)};
    for (auto& c : totals[i].summary_row()) cells.push_back(std::move(c));
    ts.row(cells);
  }

  std::printf("\n  Receive diversity: 2-stream PER with nrx = 2 vs 3 vs 4\n");
  const bench::Table t3({"SNR dB", "2x2", "2x3", "2x4"}, 10);
  for (double snr = 8.0; snr <= 20.0; snr += 3.0) {
    std::vector<std::string> cells{bench::fix(snr, 0)};
    for (const std::size_t nrx : {2U, 3U, 4U}) {
      const auto res = run_cell(9, snr, nrx, kPackets, 320 + nrx);
      cells.push_back(bench::fix(res.per.per(), 2));
    }
    t3.row(cells);
  }
  bench::note("expected: ~nss x goodput at 35 dB; PER curves shift right with");
  bench::note("nss; each extra RX antenna shifts the 2-stream curve left");

  bench::JsonReport report("e12_stream_scaling");
  report.field("packets_per_point", kPackets)
      .field("payload_bytes", std::size_t{1500})
      .raw("points", pts + "]")
      .emit();
  return 0;
}
