file(REMOVE_RECURSE
  "CMakeFiles/mimonet_mod.dir/mod/constellation.cpp.o"
  "CMakeFiles/mimonet_mod.dir/mod/constellation.cpp.o.d"
  "libmimonet_mod.a"
  "libmimonet_mod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
