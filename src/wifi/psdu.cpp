#include "wifi/psdu.hpp"

#include <stdexcept>

#include "fec/crc.hpp"

namespace mimonet::wifi {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  out.push_back(static_cast<std::uint8_t>(v >> 8U));
}

[[nodiscard]] std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t off) {
  return static_cast<std::uint16_t>(in[off] | (in[off + 1] << 8U));
}

}  // namespace

std::vector<std::uint8_t> build_psdu(const MacHeader& header,
                                     std::span<const std::uint8_t> payload) {
  if (kMacHeaderLen + payload.size() + kFcsLen > kMaxPsduLen) {
    throw std::invalid_argument("build_psdu: payload too large");
  }
  std::vector<std::uint8_t> psdu;
  psdu.reserve(kMacHeaderLen + payload.size() + kFcsLen);
  put_u16(psdu, header.frame_control);
  put_u16(psdu, header.duration);
  psdu.insert(psdu.end(), header.addr1.begin(), header.addr1.end());
  psdu.insert(psdu.end(), header.addr2.begin(), header.addr2.end());
  psdu.insert(psdu.end(), header.addr3.begin(), header.addr3.end());
  put_u16(psdu, header.sequence_control);
  psdu.insert(psdu.end(), payload.begin(), payload.end());

  const std::uint32_t fcs = fec::crc32(psdu);
  for (unsigned i = 0; i < 4; ++i) {
    psdu.push_back(static_cast<std::uint8_t>((fcs >> (8 * i)) & 0xFFU));
  }
  return psdu;
}

bool psdu_fcs_ok(std::span<const std::uint8_t> psdu) noexcept {
  if (psdu.size() < kMacHeaderLen + kFcsLen) return false;
  const auto body = psdu.first(psdu.size() - kFcsLen);
  const std::uint32_t expected = fec::crc32(body);
  std::uint32_t got = 0;
  for (unsigned i = 0; i < 4; ++i) {
    got |= static_cast<std::uint32_t>(psdu[psdu.size() - 4 + i]) << (8 * i);
  }
  return got == expected;
}

std::optional<ParsedPsdu> parse_psdu(std::span<const std::uint8_t> psdu) {
  if (!psdu_fcs_ok(psdu)) return std::nullopt;
  ParsedPsdu out;
  out.header.frame_control = get_u16(psdu, 0);
  out.header.duration = get_u16(psdu, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    out.header.addr1[i] = psdu[4 + i];
    out.header.addr2[i] = psdu[10 + i];
    out.header.addr3[i] = psdu[16 + i];
  }
  out.header.sequence_control = get_u16(psdu, 22);
  out.payload.assign(psdu.begin() + kMacHeaderLen, psdu.end() - kFcsLen);
  return out;
}

}  // namespace mimonet::wifi
