#include "core/stream_receiver.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/workspace.hpp"

namespace mimonet::core {

StreamReceiverConfig::Builder StreamReceiverConfig::make() { return {}; }

StreamReceiver::StreamReceiver(PhyConfig cfg, std::size_t nrx,
                               StreamReceiverConfig scfg)
    : scfg_(scfg), rx_(std::move(cfg), nrx, scfg.scan_mode()), nrx_(nrx) {
  if (scfg_.min_advance == 0) {
    throw std::invalid_argument("StreamReceiver: min_advance must be >= 1");
  }
  if (scfg_.resync_advance == 0) {
    throw std::invalid_argument("StreamReceiver: resync_advance must be >= 1");
  }
  // scan_decimation / coarse knobs are validated by the PacketDetector the
  // Receiver ctor just built from scan_mode().
}

std::vector<StreamRecord> StreamReceiver::receive_all(
    const std::vector<std::vector<cf32>>& capture) const {
  RxWorkspace ws;
  StreamStats stats;
  std::vector<StreamRecord> out;
  std::vector<std::span<const cf32>> spans(capture.begin(), capture.end());
  scan(spans, ws, stats, [&out](const StreamEvent& ev) {
    StreamRecord rec;
    rec.offset = ev.offset;
    rec.error = ev.error;
    if (ev.packet != nullptr) {
      rec.has_packet = true;
      rec.packet = *ev.packet;
    }
    out.push_back(std::move(rec));
  });
  return out;
}

void StreamReceiver::scan(std::span<const std::span<const cf32>> capture,
                          RxWorkspace& ws, StreamStats& stats,
                          const EventFn& on_event) const {
  scan_window(capture, ws, stats, on_event, ScanWindow{}, HarqDecode{});
}

void StreamReceiver::scan(std::span<const std::span<const cf32>> capture,
                          RxWorkspace& ws, StreamStats& stats,
                          const EventFn& on_event, const HarqDecode& harq) const {
  scan_window(capture, ws, stats, on_event, ScanWindow{}, harq);
}

void StreamReceiver::scan_window(std::span<const std::span<const cf32>> capture,
                                 RxWorkspace& ws, StreamStats& stats,
                                 const EventFn& on_event,
                                 const ScanWindow& window) const {
  scan_window(capture, ws, stats, on_event, window, HarqDecode{});
}

void StreamReceiver::scan_window(std::span<const std::span<const cf32>> capture,
                                 RxWorkspace& ws, StreamStats& stats,
                                 const EventFn& on_event, const ScanWindow& window,
                                 const HarqDecode& harq) const {
  if (capture.size() != nrx_) {
    throw std::invalid_argument("StreamReceiver::scan: antenna count mismatch");
  }
  const std::size_t len = capture[0].size();
  for (const auto& s : capture) {
    if (s.size() != len) {
      throw std::invalid_argument("StreamReceiver::scan: ragged capture");
    }
  }
  const std::size_t vis_end = std::min(window.visible_end, len);
  const std::size_t stop = std::min(window.stop, vis_end);
  if (window.count_samples) {
    stats.samples_scanned += vis_end - std::min(window.begin, vis_end);
  }
  if (window.begin >= stop) return;

  const auto owned = [&](std::size_t offset) {
    return offset >= window.own_begin && offset < window.own_end;
  };

  // The scan window lives on the stack (Receiver caps nrx at 4), so the
  // loop stays allocation-free regardless of how `capture` was staged.
  std::array<std::span<const cf32>, 4> view{};
  std::size_t pos = window.begin;
  std::size_t failed_candidates = 0;  // owned failures since the last frame
  std::size_t frames_this_scan = 0;
  // Rewind targets must strictly increase across the scan, so backward
  // hops (below) cannot loop: at most `len` rewinds ever happen. They are
  // additionally floored at the window start — a windowed scan never backs
  // into samples it was not given to own or align on.
  std::size_t rewind_barrier = window.begin;

  // The soft-combining state belongs to the first synced candidate (the
  // harq overloads are documented single-frame-capture helpers). Once that
  // candidate consumed it, later iterations — in particular the final
  // no-sync pass over the trailing idle air — must run plain, or their
  // entry reset would wipe the combined stream the caller is about to
  // retain.
  HarqDecode active = harq;
  while (pos < stop) {
    for (std::size_t a = 0; a < nrx_; ++a) {
      view[a] = capture[a].subspan(pos, vis_end - pos);
    }
    const bool got = rx_.receive(
        std::span<const std::span<const cf32>>(view.data(), nrx_), ws, active);
    if (got) active = HarqDecode{};
    const RxPacket& pkt = ws.packet;
    const metrics::RxError err = pkt.error;

    if (!got && err == metrics::RxError::kNoSync) {
      // Nothing detectable in the remainder — the normal end of a scan, so
      // the trailing idle air is not counted as an error.
      break;
    }

    // Every other classification comes with a synchronized candidate.
    const std::size_t frame_start = pos + pkt.sync.packet_start;
    const bool ours = owned(frame_start);
    if (ours) {
      stats.errors.add(err);
      on_event(StreamEvent{frame_start, err, &pkt});
    }

    if (err == metrics::RxError::kTruncated) {
      // The frame provably extends past the end of the visible window
      // (either its preamble or its HT-SIG-announced extent), so no later
      // packet can complete either: this window's scan is done. Against the
      // true capture end this is the genuine truncation classification; in
      // a farm shard the seam is sized so an owned frame never hits it.
      if (ours && pkt.htsig_ok) ++stats.frames;
      break;
    }

    std::size_t next;
    if (pkt.htsig_ok) {
      // A consumed frame (kOk / kLsigFail / kFcsFail): skip its announced
      // extent. mcs_info succeeded during decode, so the geometry is known.
      if (ours) {
        ++stats.frames;
        ++frames_this_scan;
        if (pkt.fcs_ok) ++stats.delivered;
        for (std::size_t s = 0; s < pkt.n_stream_sinr; ++s) {
          stats.stream_sinr_db[s].add(pkt.stream_sinr_db[s]);
        }
      }
      failed_candidates = 0;
      next = frame_start + *decoded_frame_samples(pkt, rx_.config());
      if (scfg_.max_packets != 0 && frames_this_scan >= scfg_.max_packets) break;
    } else {
      // Failed candidate (kFalseSync / kHtsigFail / kUnsupportedMcs): hop
      // past its start and rescan.
      if (ours) {
        ++stats.resync_events;
        ++failed_candidates;
      }
      // When fine sync reports that the candidate's L-LTF implies a packet
      // starting *before* this window, a previous resync hop overshot a real
      // packet's L-STF: rewind onto the implied start instead of hopping
      // forward over the rest of the packet. The barrier keeps rewind
      // targets strictly increasing, so this cannot loop.
      bool rewound = false;
      const std::size_t deficit =
          !got ? ws.sync.rejected_start_deficit : std::size_t{0};
      if (deficit != 0 && pos >= deficit && pos - deficit >= rewind_barrier) {
        next = pos - deficit;
        rewind_barrier = next + 1;
        rewound = true;
      } else {
        next = frame_start + scfg_.resync_advance;
      }
      if (scfg_.candidate_budget != 0 &&
          failed_candidates > scfg_.candidate_budget) {
        // Watchdog: a pathological capture keeps producing candidates that
        // never decode. Report the exhaustion and abandon the capture
        // rather than grinding through it one resync hop at a time.
        stats.errors.add(metrics::RxError::kBudgetExceeded);
        ++stats.budget_exhaustions;
        on_event(StreamEvent{next, metrics::RxError::kBudgetExceeded, nullptr});
        break;
      }
      if (rewound) {
        pos = next;
        continue;
      }
    }
    // Monotonic-advance floor: termination in at most len / min_advance
    // iterations no matter what the candidates looked like.
    pos = std::max(next, pos + scfg_.min_advance);
  }
}

}  // namespace mimonet::core
