// Flowgraph adapters for the MIMONet PHY: transmitter, streaming MIMO
// channel, and receiver as dataflow blocks — the shape the paper's system
// takes inside GNU Radio.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/mimo_channel.hpp"
#include "core/phy_config.hpp"
#include "dsp/fir.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "flowgraph/block.hpp"

namespace mimonet::core {

/// Source block: modulates a queue of PSDUs into nss continuous sample
/// streams with idle gaps between packets; tags each packet start.
class TransmitterBlock final : public flowgraph::Block {
 public:
  TransmitterBlock(PhyConfig cfg, std::vector<std::vector<std::uint8_t>> psdus,
                   std::size_t idle_gap_samples = 500);

  flowgraph::WorkStatus work() override;

  [[nodiscard]] std::size_t num_streams() const noexcept { return tx_.num_streams(); }

 private:
  void prepare_next();

  Transmitter tx_;
  std::vector<std::vector<std::uint8_t>> psdus_;
  std::size_t idle_gap_;
  std::size_t next_psdu_ = 0;
  std::vector<std::vector<cf32>> pending_;  // per stream
  std::size_t pending_pos_ = 0;
  bool exhausted_ = false;
};

/// Streaming MIMO channel block: ntx inputs -> nrx outputs, with a fixed
/// fading realization, continuous-phase CFO and AWGN.
class MimoChannelBlock final : public flowgraph::Block {
 public:
  explicit MimoChannelBlock(channel::ChannelConfig cfg);

  flowgraph::WorkStatus work() override;

  [[nodiscard]] const channel::ChannelRealization& realization() const noexcept {
    return realization_;
  }

 private:
  channel::ChannelConfig cfg_;
  channel::ChannelRealization realization_;
  std::vector<std::vector<dsp::FirFilter>> firs_;  // [rx][tx]
  dsp::ComplexGaussian noise_;
  double cfo_phase_ = 0.0;
};

/// Sink block: accumulates nrx streams and runs packet reception on a
/// sliding window; decoded packets pile up in packets().
class ReceiverBlock final : public flowgraph::Block {
 public:
  ReceiverBlock(PhyConfig cfg, std::size_t nrx,
                std::size_t attempt_window = 1U << 15U);

  flowgraph::WorkStatus work() override;

  [[nodiscard]] const std::vector<RxPacket>& packets() const noexcept {
    return packets_;
  }

 private:
  /// Try to decode from the head of the window; returns samples to drop.
  std::size_t attempt_decode(bool flush);

  Receiver rx_;
  std::size_t nrx_;
  std::size_t attempt_window_;
  std::vector<std::vector<cf32>> window_;  // per antenna
  std::vector<RxPacket> packets_;
};

}  // namespace mimonet::core
