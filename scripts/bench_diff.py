#!/usr/bin/env python3
"""Front-end scan throughput regression gate.

Compares the "scan" table of a freshly emitted BENCH_stream.json against the
committed baseline at the repo root and fails (exit 1) when any per-case scan
throughput figure regressed by more than the threshold (default 20%).

Only the scan-stage figures are gated — the decimated coarse pass and the
full-rate correlation kernel, which are what ISSUE 7's real-time budget is
about. The end-to-end figures are decode-dominated (covered by the E17
hot-path bench and its own baseline) and are reported but not gated.

Usage:
    scripts/bench_diff.py NEW.json [--baseline BENCH_stream.json]
                          [--threshold 0.20]

Exit codes: 0 ok / nothing to compare against, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys

GATED_KEYS = ("coarse_msamp_s", "full_kernel_msamp_s")
REPORTED_KEYS = ("e2e_exhaustive_msamp_s", "e2e_twopass_msamp_s")


def scan_cases(path):
    """Return {case_name: case_dict} from BENCH_stream.json's scan table."""
    with open(path) as f:
        doc = json.load(f)
    scan = doc.get("scan")
    if scan is None:
        return None
    return {c["bench"]: c for c in scan.get("cases", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", help="freshly emitted BENCH_stream.json")
    ap.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_stream.json"),
        help="committed baseline (default: repo-root BENCH_stream.json)")
    ap.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("MIMONET_SCAN_DIFF_THRESHOLD", "0.20")),
        help="allowed fractional regression (default 0.20 = 20%%)")
    args = ap.parse_args()

    try:
        new = scan_cases(args.new)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_diff: cannot read {args.new}: {e}", file=sys.stderr)
        return 2
    if new is None:
        print(f"bench_diff: {args.new} has no scan table", file=sys.stderr)
        return 2

    if not os.path.exists(args.baseline):
        print(f"bench_diff: no baseline at {args.baseline}; nothing to gate")
        return 0
    try:
        base = scan_cases(args.baseline)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_diff: cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2
    if base is None:
        print(f"bench_diff: baseline {args.baseline} has no scan table; "
              "nothing to gate")
        return 0

    failures = []
    for name, base_case in sorted(base.items()):
        new_case = new.get(name)
        if new_case is None:
            failures.append(f"{name}: case missing from new results")
            continue
        if not new_case.get("records_identical", False):
            failures.append(f"{name}: two-pass records diverged from the "
                            "exhaustive scan")
        for key in GATED_KEYS:
            b, n = base_case.get(key), new_case.get(key)
            if b is None or n is None or b <= 0:
                continue
            ratio = n / b
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSION"
                failures.append(
                    f"{name}.{key}: {n:.1f} vs baseline {b:.1f} Msamp/s "
                    f"({(1.0 - ratio) * 100.0:.1f}% slower, "
                    f"threshold {args.threshold * 100.0:.0f}%)")
            print(f"  {name:.<28s} {key:.<28s} {n:10.1f} / {b:10.1f} "
                  f"Msamp/s  {status}")
        for key in REPORTED_KEYS:
            b, n = base_case.get(key), new_case.get(key)
            if b is None or n is None or b <= 0:
                continue
            print(f"  {name:.<28s} {key:.<28s} {n:10.2f} / {b:10.2f} "
                  f"Msamp/s  (not gated)")

    if failures:
        print("bench_diff: scan throughput regressed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_diff: scan throughput within "
          f"{args.threshold * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
