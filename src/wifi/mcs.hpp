// 802.11n Modulation and Coding Scheme table, MCS 0-31 (1-4 spatial
// streams, 20 MHz, 800 ns GI, equal modulation), plus derived per-symbol
// bit counts.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "fec/convolutional.hpp"
#include "mod/constellation.hpp"

namespace mimonet::wifi {

inline constexpr std::size_t kHtDataCarriers = 52;   // 20 MHz HT
inline constexpr std::size_t kLegacyDataCarriers = 48;
inline constexpr double kSymbolDurationUs = 4.0;     // 3.2 us + 0.8 us GI

/// One row of the MCS table.
struct McsInfo {
  std::uint8_t index;          // MCS 0..31
  mod::Modulation modulation;  // per-stream constellation
  fec::CodeRate rate;          // BCC coding rate
  std::size_t nss;             // spatial streams (1..4)

  /// Coded bits per subcarrier per stream (N_BPSCS).
  [[nodiscard]] unsigned bits_per_subcarrier() const noexcept {
    return mod::bits_per_symbol(modulation);
  }
  /// Coded bits per OFDM symbol across all streams (N_CBPS).
  [[nodiscard]] std::size_t coded_bits_per_symbol() const noexcept {
    return kHtDataCarriers * bits_per_subcarrier() * nss;
  }
  /// Data bits per OFDM symbol (N_DBPS).
  [[nodiscard]] std::size_t data_bits_per_symbol() const noexcept {
    const auto [num, den] = fec::rate_fraction(rate);
    return coded_bits_per_symbol() * num / den;
  }
  /// PHY data rate in Mb/s.
  [[nodiscard]] double data_rate_mbps() const noexcept {
    return static_cast<double>(data_bits_per_symbol()) / kSymbolDurationUs;
  }
};

/// Look up MCS 0..31 (MCS 8k..8k+7 use k+1 spatial streams with the same
/// modulation/rate ladder). @throws std::invalid_argument outside that range.
[[nodiscard]] McsInfo mcs_info(unsigned mcs_index);

inline constexpr unsigned kMaxMcs = 31;

}  // namespace mimonet::wifi
