// 802.11n framing components: MCS table, interleavers, stream parser,
// bit/byte helpers, PSDU framing.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "wifi/bits.hpp"
#include "wifi/interleaver.hpp"
#include "wifi/mcs.hpp"
#include "wifi/psdu.hpp"
#include "wifi/stream_parser.hpp"

namespace {

using namespace mimonet::wifi;

std::vector<std::uint8_t> random_bits(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng() & 1U);
  return bits;
}

// ----------------------------------------------------------------- MCS

TEST(Mcs, DataRatesMatchStandardTable) {
  // 20 MHz, 800 ns GI rates from IEEE 802.11n Table 20-30/20-31.
  const double expected[16] = {6.5, 13.0, 19.5, 26.0, 39.0,  52.0,  58.5,  65.0,
                               13.0, 26.0, 39.0, 52.0, 78.0, 104.0, 117.0, 130.0};
  for (unsigned i = 0; i <= 15; ++i) {
    EXPECT_NEAR(mcs_info(i).data_rate_mbps(), expected[i], 1e-9) << "MCS " << i;
  }
}

TEST(Mcs, StreamCounts) {
  for (unsigned i = 0; i <= 7; ++i) EXPECT_EQ(mcs_info(i).nss, 1U);
  for (unsigned i = 8; i <= 15; ++i) EXPECT_EQ(mcs_info(i).nss, 2U);
  for (unsigned i = 16; i <= 23; ++i) EXPECT_EQ(mcs_info(i).nss, 3U);
  for (unsigned i = 24; i <= 31; ++i) EXPECT_EQ(mcs_info(i).nss, 4U);
}

TEST(Mcs, FourStreamTopRate) {
  EXPECT_NEAR(mcs_info(31).data_rate_mbps(), 260.0, 1e-9);  // 4 x 65 Mb/s
  EXPECT_NEAR(mcs_info(23).data_rate_mbps(), 195.0, 1e-9);  // 3 x 65 Mb/s
}

TEST(Mcs, CodedAndDataBitsPerSymbol) {
  const auto m0 = mcs_info(0);  // BPSK 1/2, 1 ss
  EXPECT_EQ(m0.coded_bits_per_symbol(), 52U);
  EXPECT_EQ(m0.data_bits_per_symbol(), 26U);
  const auto m15 = mcs_info(15);  // 64-QAM 5/6, 2 ss
  EXPECT_EQ(m15.coded_bits_per_symbol(), 624U);
  EXPECT_EQ(m15.data_bits_per_symbol(), 520U);
}

TEST(Mcs, OutOfRangeThrows) { EXPECT_THROW(mcs_info(32), std::invalid_argument); }

// ------------------------------------------------------------ interleaver

class InterleaverParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(InterleaverParam, PermutationIsBijective) {
  const auto [nbpsc, nss] = GetParam();
  for (std::size_t iss = 0; iss < nss; ++iss) {
    const Interleaver il(nbpsc, iss, nss);
    std::vector<bool> seen(il.block_size(), false);
    for (const auto p : il.permutation()) {
      ASSERT_LT(p, il.block_size());
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
}

TEST_P(InterleaverParam, RoundTripOverMultipleBlocks) {
  const auto [nbpsc, nss] = GetParam();
  const Interleaver il(nbpsc, 0, nss);
  const auto bits = random_bits(il.block_size() * 3, nbpsc * 10 + 1);
  const auto interleaved = il.interleave(bits);
  EXPECT_NE(interleaved, bits);
  EXPECT_EQ(il.deinterleave(interleaved), bits);
}

TEST_P(InterleaverParam, SoftDeinterleaveMatchesHard) {
  const auto [nbpsc, nss] = GetParam();
  const Interleaver il(nbpsc, 0, nss);
  const auto bits = random_bits(il.block_size(), nbpsc * 10 + 2);
  const auto interleaved = il.interleave(bits);
  std::vector<float> llrs(interleaved.size());
  for (std::size_t i = 0; i < llrs.size(); ++i) {
    llrs[i] = interleaved[i] != 0 ? -1.0F : 1.0F;
  }
  const auto soft = il.deinterleave(llrs);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(soft[i] < 0.0F, bits[i] != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, InterleaverParam,
                         ::testing::Combine(::testing::Values(1U, 2U, 4U, 6U),
                                            ::testing::Values(1U, 2U)));

TEST(Interleaver, StreamsGetDifferentRotations) {
  const Interleaver a(2, 0, 2);
  const Interleaver b(2, 1, 2);
  EXPECT_NE(a.permutation(), b.permutation());
}

TEST(Interleaver, AdjacentBitsLandOnDistantCarriers) {
  // The point of interleaving: adjacent coded bits must not map to the same
  // or adjacent subcarriers.
  const Interleaver il(1, 0, 1);  // BPSK: bit index == carrier index
  const auto& perm = il.permutation();
  for (std::size_t k = 0; k + 1 < perm.size(); ++k) {
    const auto dist = (perm[k] > perm[k + 1]) ? perm[k] - perm[k + 1]
                                              : perm[k + 1] - perm[k];
    EXPECT_GT(dist, 1U) << "bits " << k << "," << k + 1;
  }
}

TEST(Interleaver, BadInputsThrow) {
  EXPECT_THROW(Interleaver(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(Interleaver(2, 2, 2), std::invalid_argument);
  const Interleaver il(2, 0, 1);
  EXPECT_THROW(il.interleave(random_bits(il.block_size() + 1, 3)),
               std::invalid_argument);
}

TEST(LegacyInterleaver, RoundTrip) {
  const LegacyInterleaver il(1);
  EXPECT_EQ(il.block_size(), 48U);
  const auto bits = random_bits(48, 7);
  const auto inter = il.interleave(bits);
  std::vector<float> llrs(48);
  for (std::size_t i = 0; i < 48; ++i) llrs[i] = inter[i] != 0 ? -1.0F : 1.0F;
  const auto back = il.deinterleave(llrs);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(back[i] < 0.0F, bits[i] != 0);
  }
}

// ---------------------------------------------------------- stream parser

class ParserParam
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(ParserParam, ParseMergeRoundTrip) {
  const auto [nbpsc, nss] = GetParam();
  const StreamParser p(nbpsc, nss);
  const std::size_t total = p.nss() * p.group_size() * 20;
  const auto bits = random_bits(total, 55);
  const auto streams = p.parse(bits);
  ASSERT_EQ(streams.size(), nss);
  for (const auto& s : streams) EXPECT_EQ(s.size(), total / nss);
  EXPECT_EQ(p.merge_bits(streams), bits);
}

TEST_P(ParserParam, SoftMergeMatches) {
  const auto [nbpsc, nss] = GetParam();
  const StreamParser p(nbpsc, nss);
  const std::size_t total = p.nss() * p.group_size() * 8;
  const auto bits = random_bits(total, 56);
  const auto streams = p.parse(bits);
  std::vector<std::vector<float>> soft(streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (const auto b : streams[s]) soft[s].push_back(b != 0 ? -1.0F : 1.0F);
  }
  const auto merged = p.merge(soft);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(merged[i] < 0.0F, bits[i] != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParserParam,
                         ::testing::Combine(::testing::Values(1U, 2U, 4U, 6U),
                                            ::testing::Values(1U, 2U, 3U)));

TEST(StreamParser, GroupSizeFollowsModulation) {
  EXPECT_EQ(StreamParser(1, 2).group_size(), 1U);
  EXPECT_EQ(StreamParser(2, 2).group_size(), 1U);
  EXPECT_EQ(StreamParser(4, 2).group_size(), 2U);
  EXPECT_EQ(StreamParser(6, 2).group_size(), 3U);
}

TEST(StreamParser, RoundRobinOrderIsCorrect) {
  const StreamParser p(4, 2);  // s = 2
  std::vector<std::uint8_t> bits(8);
  std::iota(bits.begin(), bits.end(), 0);  // 0..7 as "bit" markers
  const auto streams = p.parse(bits);
  EXPECT_EQ(streams[0], (std::vector<std::uint8_t>{0, 1, 4, 5}));
  EXPECT_EQ(streams[1], (std::vector<std::uint8_t>{2, 3, 6, 7}));
}

// ------------------------------------------------------------- bits/psdu

TEST(Bits, BytesToBitsLsbFirst) {
  const std::vector<std::uint8_t> bytes{0x01, 0x80};
  const auto bits = bytes_to_bits(bytes);
  ASSERT_EQ(bits.size(), 16U);
  EXPECT_EQ(bits[0], 1);
  for (std::size_t i = 1; i < 15; ++i) EXPECT_EQ(bits[i], 0);
  EXPECT_EQ(bits[15], 1);
}

TEST(Bits, RoundTrip) {
  std::mt19937 rng(8);
  std::vector<std::uint8_t> bytes(257);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(Bits, NonMultipleOf8Throws) {
  EXPECT_THROW(bits_to_bytes(std::vector<std::uint8_t>(9)), std::invalid_argument);
}

TEST(Bits, HammingDistance) {
  const std::vector<std::uint8_t> a{0, 1, 1, 0};
  const std::vector<std::uint8_t> b{1, 1, 0, 0};
  EXPECT_EQ(hamming_distance(a, b), 2U);
  EXPECT_THROW(hamming_distance(a, std::vector<std::uint8_t>(3)),
               std::invalid_argument);
}

TEST(Psdu, BuildParseRoundTrip) {
  MacHeader hdr;
  hdr.addr1 = {1, 2, 3, 4, 5, 6};
  hdr.addr2 = {7, 8, 9, 10, 11, 12};
  hdr.sequence_control = 0x1230;
  const std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF};
  const auto psdu = build_psdu(hdr, payload);
  EXPECT_EQ(psdu.size(), kMacHeaderLen + payload.size() + kFcsLen);

  const auto parsed = parse_psdu(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header, hdr);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Psdu, FcsDetectsCorruption) {
  const auto psdu = build_psdu(MacHeader{}, std::vector<std::uint8_t>(100, 0xAB));
  EXPECT_TRUE(psdu_fcs_ok(psdu));
  for (const std::size_t pos : {0U, 10U, 50U, 120U, 127U}) {
    auto bad = psdu;
    bad[pos] ^= 0x04;
    EXPECT_FALSE(psdu_fcs_ok(bad)) << "byte " << pos;
    EXPECT_FALSE(parse_psdu(bad).has_value());
  }
}

TEST(Psdu, TruncatedIsRejected) {
  EXPECT_FALSE(psdu_fcs_ok(std::vector<std::uint8_t>(10)));
}

TEST(Psdu, EmptyPayloadWorks) {
  const auto psdu = build_psdu(MacHeader{}, {});
  EXPECT_TRUE(psdu_fcs_ok(psdu));
  EXPECT_EQ(parse_psdu(psdu)->payload.size(), 0U);
}

}  // namespace
