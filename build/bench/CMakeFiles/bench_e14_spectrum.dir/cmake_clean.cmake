file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_spectrum.dir/bench_e14_spectrum.cpp.o"
  "CMakeFiles/bench_e14_spectrum.dir/bench_e14_spectrum.cpp.o.d"
  "bench_e14_spectrum"
  "bench_e14_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
