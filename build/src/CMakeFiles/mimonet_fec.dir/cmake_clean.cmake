file(REMOVE_RECURSE
  "CMakeFiles/mimonet_fec.dir/fec/convolutional.cpp.o"
  "CMakeFiles/mimonet_fec.dir/fec/convolutional.cpp.o.d"
  "CMakeFiles/mimonet_fec.dir/fec/crc.cpp.o"
  "CMakeFiles/mimonet_fec.dir/fec/crc.cpp.o.d"
  "CMakeFiles/mimonet_fec.dir/fec/ldpc.cpp.o"
  "CMakeFiles/mimonet_fec.dir/fec/ldpc.cpp.o.d"
  "CMakeFiles/mimonet_fec.dir/fec/scrambler.cpp.o"
  "CMakeFiles/mimonet_fec.dir/fec/scrambler.cpp.o.d"
  "CMakeFiles/mimonet_fec.dir/fec/viterbi.cpp.o"
  "CMakeFiles/mimonet_fec.dir/fec/viterbi.cpp.o.d"
  "libmimonet_fec.a"
  "libmimonet_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
