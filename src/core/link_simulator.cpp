#include "core/link_simulator.hpp"

#include <cmath>

#include "wifi/bits.hpp"
#include "wifi/psdu.hpp"

namespace mimonet::core {

namespace {

/// Fold the link-level seed into the channel's, so varying LinkConfig::seed
/// varies fading/noise draws too (channel.seed can still be pinned
/// explicitly relative to it for common-random-number comparisons).
channel::ChannelConfig seeded_channel(const LinkConfig& cfg) {
  auto ch = cfg.channel;
  ch.seed = ch.seed * 0x9E3779B97F4A7C15ULL + cfg.seed;
  return ch;
}

}  // namespace

LinkSimulator::LinkSimulator(LinkConfig cfg)
    : cfg_(cfg),
      tx_(cfg.phy),
      chan_(seeded_channel(cfg)),
      rx_(cfg.phy, cfg.channel.nrx),
      payload_src_(cfg.seed * 0x2545F4914F6CDD1DULL + 7) {}

LinkResult LinkSimulator::run(
    std::size_t n_packets,
    const std::function<void(const RxPacket&, const std::vector<std::uint8_t>&)>&
        observer) {
  LinkResult res;

  wifi::MacHeader hdr;
  hdr.addr1 = {0x02, 0x11, 0x22, 0x33, 0x44, 0x55};
  hdr.addr2 = {0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  hdr.addr3 = hdr.addr1;

  for (std::size_t p = 0; p < n_packets; ++p) {
    hdr.sequence_control = static_cast<std::uint16_t>(p << 4U);
    const auto payload = payload_src_.bytes(cfg_.psdu_payload_bytes);
    const auto psdu = wifi::build_psdu(hdr, payload);

    const auto tx_streams = tx_.transmit(psdu);
    const auto capture = chan_.transmit(tx_streams);
    const auto& truth = chan_.truth();

    const auto rx_pkt = rx_.receive(capture);
    const double airtime = tx_.layout(psdu.size()).airtime_us();

    if (!rx_pkt) {
      ++res.undetected;
      res.per.add(false);
      res.throughput.add_packet(0, airtime);
      continue;
    }

    const bool ok = rx_pkt->fcs_ok;
    res.per.add(ok);
    res.throughput.add_packet(ok ? payload.size() : 0, airtime);

    if (rx_pkt->htsig_ok && rx_pkt->psdu.size() == psdu.size()) {
      const auto sent_bits = wifi::bytes_to_bits(psdu);
      const auto got_bits = wifi::bytes_to_bits(rx_pkt->psdu);
      res.ber.add(sent_bits, got_bits);
    } else if (rx_pkt->htsig_ok) {
      // Length corrupted: count every PSDU bit as errored.
      res.ber.add_counts(psdu.size() * 8, psdu.size() * 8);
    }

    res.snr_est_db.add(rx_pkt->snr.snr_db);
    if (rx_pkt->pilot_snr.noise_variance > 0.0) {
      res.pilot_snr_db.add(rx_pkt->pilot_snr.snr_db);
    }
    res.timing_err.add(static_cast<double>(rx_pkt->sync.packet_start) -
                       static_cast<double>(truth.packet_start));
    res.cfo_err.add(rx_pkt->sync.cfo_norm - truth.cfo_norm);

    if (observer) observer(*rx_pkt, psdu);
  }
  return res;
}

LinkConfig make_link_config(unsigned mcs, double snr_db, std::size_t nrx) {
  LinkConfig cfg;
  cfg.phy.mcs = mcs;
  const auto info = wifi::mcs_info(mcs);
  cfg.channel.ntx = info.nss;
  cfg.channel.nrx = (nrx == 0) ? info.nss : nrx;
  cfg.channel.snr_db = snr_db;
  cfg.channel.timing_pad = 400;
  cfg.channel.tail_pad = 100;
  return cfg;
}

}  // namespace mimonet::core
