// E8 — FEC-concatenation ablation (Table reconstruction): the paper adds
// "concatenation of Forward Error Correction (FEC) in the packet
// construction"; this measures what that buys.
//
// Expected shape: without FEC, PER ~ 1-(1-BER_raw)^n_bits is near 1 for any
// raw BER above ~1e-5, so the coded chain wins by many dB of effective SNR;
// the coding gain is visible as the horizontal gap between columns.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

struct Outcome {
  double per = 0.0;
  double ber = 0.0;
};

Outcome run_point(double snr, bool fec, fec::CodeRate, unsigned mcs,
                  std::size_t packets, std::uint64_t seed) {
  auto cfg = core::make_link_config(mcs, snr);
  cfg.psdu_payload_bytes = 500;
  cfg.phy.fec_enabled = fec;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(packets);
  return {res.per.per(), res.ber.ber()};
}

}  // namespace

int main() {
  bench::heading("E8", "FEC concatenation ablation (Table reconstruction)");
  constexpr std::size_t kPackets = 40;
  bench::note("%zu 500-byte QPSK packets per point, 1x1 AWGN", kPackets);

  std::printf("\n  QPSK, rate 1/2 when coded (MCS 1) vs uncoded QPSK\n");
  const bench::Table table({"SNR dB", "PER coded", "PER raw", "BER coded",
                            "BER raw"},
                           12);
  std::string pts = "[";
  bool first = true;
  for (double snr = 0.0; snr <= 16.0; snr += 2.0) {
    const auto coded = run_point(snr, true, fec::CodeRate::kR1_2, 1, kPackets,
                                 80 + static_cast<std::uint64_t>(snr));
    const auto raw = run_point(snr, false, fec::CodeRate::kR1_2, 1, kPackets,
                               80 + static_cast<std::uint64_t>(snr));
    table.row({bench::fix(snr, 0), bench::fix(coded.per, 2), bench::fix(raw.per, 2),
               coded.ber > 0 ? bench::sci(coded.ber) : std::string("-"),
               raw.ber > 0 ? bench::sci(raw.ber) : std::string("-")});
    char obj[224];
    std::snprintf(obj, sizeof obj,
                  "%s{\"snr_db\": %g, \"per_coded\": %.6g, \"per_raw\": %.6g, "
                  "\"ber_coded\": %.6g, \"ber_raw\": %.6g}",
                  first ? "" : ", ", snr, coded.per, raw.per, coded.ber, raw.ber);
    pts += obj;
    first = false;
  }

  std::printf("\n  Coding-rate sweep at fixed SNR (64-QAM family, 14 dB)\n");
  const bench::Table t2({"MCS", "rate", "PER", "BER"}, 12);
  for (const unsigned mcs : {5U, 6U, 7U}) {
    const auto info = wifi::mcs_info(mcs);
    const auto out = run_point(14.0, true, info.rate, mcs, kPackets, 480 + mcs);
    t2.row({std::to_string(mcs), fec::rate_name(info.rate), bench::fix(out.per, 2),
            out.ber > 0 ? bench::sci(out.ber) : std::string("-")});
  }
  bench::note("expected: coded PER cliff sits several dB left of uncoded;");
  bench::note("at fixed SNR, higher puncturing rate -> higher PER");

  bench::JsonReport report("e8_fec_ablation");
  report.field("packets_per_point", kPackets)
      .field("payload_bytes", std::size_t{500})
      .raw("points", pts + "]")
      .emit();
  return 0;
}
