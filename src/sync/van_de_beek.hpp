// The Van de Beek ML timing/CFO estimator extended to MIMO — the paper's
// novel synchronization algorithm.
//
// Van de Beek, Sandell, Borjesson, "ML Estimation of Time and Frequency
// Offset in OFDM Systems" (1997) exploits the cyclic prefix: over a window
// of CP length L, gamma(m) = sum r(k) conj(r(k+N)) peaks where the CP
// repeats, and the argument of gamma at the peak reveals the fractional
// CFO. The MIMO extension sums the sufficient statistics across RX antennas
// (all antennas share the sampling clock and LO, so timing and CFO are
// common) and optionally accumulates across consecutive OFDM symbols.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::sync {

using dsp::cf32;

struct VdbConfig {
  std::size_t fft_len = 64;
  std::size_t cp_len = 16;
  /// Number of consecutive OFDM symbols whose CP statistics are accumulated
  /// (spaced fft_len + cp_len samples apart). More symbols sharpen the peak.
  std::size_t n_symbols = 1;
  /// SNR-dependent weight rho = snr / (snr + 1) in the ML metric
  /// |gamma| - rho * Phi. 0.5 is a robust default when SNR is unknown.
  double rho = 0.5;
};

struct VdbEstimate {
  /// Estimated symbol-start offset, relative to the start of the span
  /// handed to estimate(). Points at the first CP sample.
  std::size_t timing = 0;
  /// Estimated CFO in cycles/sample (fractional part only: the CP method is
  /// unambiguous within +/- 0.5 subcarrier spacings, i.e. +/- 1/(2*fft_len)).
  double cfo_norm = 0.0;
  /// Value of the ML metric at the peak (for detection thresholds).
  double metric = 0.0;
  /// The full metric trace Lambda(m), for the sync experiment's plots.
  std::vector<double> trace;
};

/// CP-based ML estimator over one or more RX antennas.
class VanDeBeekEstimator {
 public:
  explicit VanDeBeekEstimator(VdbConfig cfg);

  [[nodiscard]] const VdbConfig& config() const noexcept { return cfg_; }

  /// SISO estimate over a search span.
  [[nodiscard]] VdbEstimate estimate(std::span<const cf32> rx) const;

  /// MIMO estimate: the statistics gamma and Phi are summed across all
  /// antennas before the metric/argmax. All spans must have equal length.
  [[nodiscard]] VdbEstimate estimate_mimo(
      std::span<const std::span<const cf32>> rx_antennas) const;

  /// Minimum span length required for a single metric evaluation.
  [[nodiscard]] std::size_t min_span() const noexcept;

 private:
  VdbConfig cfg_;
};

}  // namespace mimonet::sync
