#include "dsp/correlator.hpp"

#include <cmath>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define MIMONET_AUTOCORR_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mimonet::dsp {

MovingSum::MovingSum(std::size_t window) : buf_(window, cf64{0.0, 0.0}) {
  if (window == 0) throw std::invalid_argument("MovingSum: zero window");
}

cf64 MovingSum::push(cf64 x) noexcept {
  sum_ += x - buf_[head_];
  buf_[head_] = x;
  head_ = (head_ + 1) % buf_.size();
  return sum_;
}

void MovingSum::reset() noexcept {
  for (auto& v : buf_) v = cf64{0.0, 0.0};
  sum_ = cf64{0.0, 0.0};
  head_ = 0;
}

MovingSumReal::MovingSumReal(std::size_t window) : buf_(window, 0.0) {
  if (window == 0) throw std::invalid_argument("MovingSumReal: zero window");
}

double MovingSumReal::push(double x) noexcept {
  sum_ += x - buf_[head_];
  buf_[head_] = x;
  head_ = (head_ + 1) % buf_.size();
  return sum_;
}

void MovingSumReal::reset() noexcept {
  for (auto& v : buf_) v = 0.0;
  sum_ = 0.0;
  head_ = 0;
}

namespace {

bool g_force_scalar = false;

// Scalar product fill, the dispatch fallback and the reference the AVX2
// kernel must match bit for bit: the conj product uses the naive complex
// formula with one rounding per multiply and per add, and the magnitude is
// computed in float (like mag_sqr) before widening. fp-contract is pinned
// off so a native build cannot fuse the multiply-adds into FMAs the vector
// kernel does not use.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("-ffp-contract=off")))
#endif
void products_scalar(const cf32* x, std::size_t lag, std::size_t n_prod,
                     std::size_t n_mag, double* re, double* im, double* mag) {
  for (std::size_t i = 0; i < n_prod; ++i) {
    const double ar = static_cast<double>(x[i].real());
    const double ai = static_cast<double>(x[i].imag());
    const double br = static_cast<double>(x[i + lag].real());
    const double bi = static_cast<double>(x[i + lag].imag());
    re[i] = ar * br + ai * bi;  // x_i * conj(x_{i+lag})
    im[i] = ai * br - ar * bi;
  }
  for (std::size_t i = 0; i < n_mag; ++i) {
    const float m = x[i].real() * x[i].real() + x[i].imag() * x[i].imag();
    mag[i] = static_cast<double>(m);
  }
}

#ifdef MIMONET_AUTOCORR_X86_DISPATCH
// AVX2 product fill, 4 complex samples per iteration. Bit-identical to
// products_scalar: the same float squares/adds for the magnitudes and the
// same double multiplies/adds for the conj products, no FMA contraction
// (intrinsics emit the separate mul/add the scalar reference pins).
__attribute__((target("avx2"))) void products_avx2(
    const cf32* x, std::size_t lag, std::size_t n_prod, std::size_t n_mag,
    double* re, double* im, double* mag) {
  const float* xf = reinterpret_cast<const float*>(x);
  const __m256i deinterleave = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);

  std::size_t i = 0;
  for (; i + 4 <= n_prod; i += 4) {
    // [r0 i0 r1 i1 r2 i2 r3 i3] -> [r0 r1 r2 r3 | i0 i1 i2 i3]
    const __m256 a =
        _mm256_permutevar8x32_ps(_mm256_loadu_ps(xf + 2 * i), deinterleave);
    const __m256 b = _mm256_permutevar8x32_ps(
        _mm256_loadu_ps(xf + 2 * (i + lag)), deinterleave);
    const __m256d ar = _mm256_cvtps_pd(_mm256_castps256_ps128(a));
    const __m256d ai = _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1));
    const __m256d br = _mm256_cvtps_pd(_mm256_castps256_ps128(b));
    const __m256d bi = _mm256_cvtps_pd(_mm256_extractf128_ps(b, 1));
    _mm256_storeu_pd(re + i, _mm256_add_pd(_mm256_mul_pd(ar, br),
                                           _mm256_mul_pd(ai, bi)));
    _mm256_storeu_pd(im + i, _mm256_sub_pd(_mm256_mul_pd(ai, br),
                                           _mm256_mul_pd(ar, bi)));
  }
  for (; i < n_prod; ++i) {
    const double ar = static_cast<double>(x[i].real());
    const double ai = static_cast<double>(x[i].imag());
    const double br = static_cast<double>(x[i + lag].real());
    const double bi = static_cast<double>(x[i + lag].imag());
    const double pr = ar * br;
    const double qi = ai * bi;
    re[i] = pr + qi;
    const double pi2 = ai * br;
    const double qr = ar * bi;
    im[i] = pi2 - qr;
  }

  i = 0;
  for (; i + 4 <= n_mag; i += 4) {
    const __m256 v =
        _mm256_permutevar8x32_ps(_mm256_loadu_ps(xf + 2 * i), deinterleave);
    const __m128 r = _mm256_castps256_ps128(v);
    const __m128 im4 = _mm256_extractf128_ps(v, 1);
    // |x|^2 in float (one mul per part, one add), exactly mag_sqr's ops.
    const __m128 m = _mm_add_ps(_mm_mul_ps(r, r), _mm_mul_ps(im4, im4));
    _mm256_storeu_pd(mag + i, _mm256_cvtps_pd(m));
  }
  for (; i < n_mag; ++i) {
    const float rr = x[i].real() * x[i].real();
    const float ii = x[i].imag() * x[i].imag();
    mag[i] = static_cast<double>(rr + ii);
  }
}

[[nodiscard]] bool have_avx2() noexcept {
  return __builtin_cpu_supports("avx2");
}
#endif  // MIMONET_AUTOCORR_X86_DISPATCH

void fill_products(const cf32* x, std::size_t lag, std::size_t n_prod,
                   std::size_t n_mag, AutocorrResult::Scratch& s) {
  s.prod_re.resize(n_prod);
  s.prod_im.resize(n_prod);
  s.mag.resize(n_mag);
#ifdef MIMONET_AUTOCORR_X86_DISPATCH
  static const bool use_avx2 = have_avx2();
  if (use_avx2 && !g_force_scalar) {
    products_avx2(x, lag, n_prod, n_mag, s.prod_re.data(), s.prod_im.data(),
                  s.mag.data());
    return;
  }
#endif
  products_scalar(x, lag, n_prod, n_mag, s.prod_re.data(), s.prod_im.data(),
                  s.mag.data());
}

/// Shared sweep core over a contiguous sample array. `scale` maps output
/// slots back to positions of the caller's original signal (1 for the
/// full-rate sweep, the stride for decimated sweeps) — it only sizes the
/// result vectors, the arithmetic is identical.
void autocorr_core(const cf32* x, std::size_t len, std::size_t lag,
                   std::size_t window, AutocorrResult& res) {
  const std::size_t n_out = len - lag - window + 1;
  res.corr.resize(n_out);
  res.pow_lead.resize(n_out);
  res.pow_lag.resize(n_out);
  res.metric.resize(n_out);

  // Element-wise conj products and magnitudes first (vectorizable), then
  // the sequential sliding sums: sum += entering - leaving, the exact
  // MovingSum ring-buffer recurrence, which yields the same bits as
  // recomputing each term (same operands, same ops).
  const std::size_t n_prod = n_out + window - 1;
  fill_products(x, lag, n_prod, len, res.scratch);
  const double* pre = res.scratch.prod_re.data();
  const double* pim = res.scratch.prod_im.data();
  const double* mag = res.scratch.mag.data();

  cf64 corr_sum{0.0, 0.0};
  double pow_lead = 0.0;
  double pow_lag = 0.0;
  for (std::size_t k = 0; k < window; ++k) {
    corr_sum += cf64{pre[k], pim[k]} - cf64{0.0, 0.0};
    pow_lead += mag[k] - 0.0;
    pow_lag += mag[k + lag] - 0.0;
  }
  for (std::size_t n = 0;; ++n) {
    const cf64 c = corr_sum;
    const double pp = pow_lead * pow_lag;
    res.corr[n] = cf32(static_cast<float>(c.real()), static_cast<float>(c.imag()));
    res.pow_lead[n] = static_cast<float>(pow_lead);
    res.pow_lag[n] = static_cast<float>(pow_lag);
    res.metric[n] = (pp > 0.0) ? static_cast<float>(mag_sqr(c) / pp) : 0.0F;
    if (n + 1 >= n_out) break;
    const std::size_t k = n + window;  // next sample entering the window
    corr_sum += cf64{pre[k], pim[k]} - cf64{pre[n], pim[n]};
    pow_lead += mag[k] - mag[n];
    pow_lag += mag[k + lag] - mag[n + lag];
  }
}

void clear_result(AutocorrResult& res) {
  res.corr.clear();
  res.pow_lead.clear();
  res.pow_lag.clear();
  res.metric.clear();
}

}  // namespace

namespace detail {
void force_scalar_autocorr(bool force) noexcept { g_force_scalar = force; }
bool autocorr_simd_active() noexcept {
#ifdef MIMONET_AUTOCORR_X86_DISPATCH
  return have_avx2() && !g_force_scalar;
#else
  return false;
#endif
}
}  // namespace detail

void lag_autocorrelate_into(std::span<const cf32> x, std::size_t lag,
                            std::size_t window, AutocorrResult& res) {
  if (lag == 0 || window == 0) {
    throw std::invalid_argument("lag_autocorrelate: lag and window must be > 0");
  }
  if (x.size() < lag + window) {
    clear_result(res);
    return;
  }
  autocorr_core(x.data(), x.size(), lag, window, res);
}

void lag_autocorrelate_strided_into(std::span<const cf32> x, std::size_t lag,
                                    std::size_t window, std::size_t stride,
                                    AutocorrResult& res) {
  if (stride == 0) {
    throw std::invalid_argument("lag_autocorrelate_strided: zero stride");
  }
  if (lag == 0 || window == 0) {
    throw std::invalid_argument("lag_autocorrelate: lag and window must be > 0");
  }
  if (lag % stride != 0 || window % stride != 0) {
    throw std::invalid_argument(
        "lag_autocorrelate_strided: lag and window must be multiples of stride");
  }
  if (stride == 1) {
    lag_autocorrelate_into(x, lag, window, res);
    return;
  }
  if (x.size() < lag + window) {
    clear_result(res);
    return;
  }
  // Pack every stride-th sample, then sweep the packed sequence at the
  // decimated lag/window — position i of the result is position i*stride of
  // x, and the decimated sequence still correlates at the same absolute lag.
  auto& y = res.scratch.packed;
  const std::size_t n_y = (x.size() + stride - 1) / stride;
  y.resize(n_y);
  for (std::size_t i = 0; i < n_y; ++i) y[i] = x[i * stride];
  const std::size_t lag_d = lag / stride;
  const std::size_t win_d = window / stride;
  if (n_y < lag_d + win_d) {
    clear_result(res);
    return;
  }
  autocorr_core(y.data(), n_y, lag_d, win_d, res);
}

AutocorrResult lag_autocorrelate(std::span<const cf32> x, std::size_t lag,
                                 std::size_t window) {
  AutocorrResult res;
  lag_autocorrelate_into(x, lag, window, res);
  return res;
}

}  // namespace mimonet::dsp
