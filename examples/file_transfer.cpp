// Reliable file transfer over the MIMO link: chunks a payload into MSDUs
// and pushes them through the stop-and-wait ARQ MAC over a fading 2x2
// channel — the paper's platform doing actual network-level work.
#include <cstdio>
#include <numeric>
#include <vector>

#include "fec/crc.hpp"
#include "mac/arq.hpp"

int main() {
  using namespace mimonet;

  // A 40 kB pseudo-file.
  std::vector<std::uint8_t> file(40 * 1024);
  std::iota(file.begin(), file.end(), 0);
  const std::uint32_t file_crc = fec::crc32(file);

  mac::ArqConfig cfg;
  cfg.data_phy.mcs = 12;  // 16-QAM 3/4 x 2 streams = 78 Mb/s PHY
  cfg.ack_phy.mcs = 0;
  cfg.forward.ntx = 2;
  cfg.forward.nrx = 2;
  cfg.forward.fading = true;
  cfg.forward.snr_db = 18.0;  // marginal for MCS 12: retries will happen
  cfg.forward.timing_pad = 300;
  cfg.forward.tail_pad = 80;
  cfg.forward.seed = 11;
  cfg.reverse = cfg.forward;
  cfg.reverse.ntx = 1;  // ACKs ride a single robust stream
  cfg.reverse.nrx = 2;  // with receive diversity at the station
  cfg.reverse.seed = 12;
  cfg.reverse.snr_db = 25.0;
  mac::StopAndWaitLink link(cfg);

  constexpr std::size_t kChunk = 1400;
  std::size_t sent_chunks = 0;
  std::size_t lost_chunks = 0;
  for (std::size_t off = 0; off < file.size(); off += kChunk) {
    const std::size_t n = std::min(kChunk, file.size() - off);
    const auto rep = link.send(std::span(file).subspan(off, n));
    ++sent_chunks;
    if (!rep.delivered) ++lost_chunks;
    if (sent_chunks % 8 == 0 || off + n == file.size()) {
      std::printf("  %5zu/%zu bytes | tries so far: %zu data TX, %zu retx\n",
                  off + n, file.size(), link.stats().msdus,
                  link.stats().retransmissions);
    }
  }

  // Reassemble at the peer and verify integrity end to end.
  std::vector<std::uint8_t> reassembled;
  for (const auto& chunk : link.received()) {
    reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
  }
  const bool intact = reassembled.size() == file.size() &&
                      fec::crc32(reassembled) == file_crc;

  const auto& st = link.stats();
  std::printf("\ntransfer %s: %zu chunks, %zu lost, %zu retransmissions\n",
              intact ? "OK" : "CORRUPTED", sent_chunks, lost_chunks,
              st.retransmissions);
  std::printf("MAC goodput %.1f Mb/s over %.1f ms of air time (PHY rate %.0f)\n",
              st.goodput_mbps(), st.airtime_us / 1000.0,
              wifi::mcs_info(cfg.data_phy.mcs).data_rate_mbps());
  return intact ? 0 : 1;
}
