# Empty dependencies file for bench_e2_ber_mimo.
# This may be replaced when dependencies are built.
