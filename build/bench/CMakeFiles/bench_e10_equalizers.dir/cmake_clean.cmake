file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_equalizers.dir/bench_e10_equalizers.cpp.o"
  "CMakeFiles/bench_e10_equalizers.dir/bench_e10_equalizers.cpp.o.d"
  "bench_e10_equalizers"
  "bench_e10_equalizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_equalizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
