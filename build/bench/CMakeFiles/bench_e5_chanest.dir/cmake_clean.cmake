file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_chanest.dir/bench_e5_chanest.cpp.o"
  "CMakeFiles/bench_e5_chanest.dir/bench_e5_chanest.cpp.o.d"
  "bench_e5_chanest"
  "bench_e5_chanest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_chanest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
