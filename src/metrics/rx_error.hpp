// Structured receive-failure taxonomy. Every packet attempt — from the
// one-shot Receiver to the streaming scan loop — classifies how far decoding
// got instead of silently returning nullopt, so fault-injection campaigns
// can assert that the *right* stage failed and long-running links can
// account for where their packets go.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mimonet::metrics {

/// Why a packet attempt did not produce a clean frame (or kOk when it did).
/// Classification precedence, checked upstream-first except that a frame
/// delivered despite an L-SIG failure reports kLsigFail (the furthest-
/// upstream anomaly) rather than kOk:
///   kNoSync          no detection candidate anywhere in the searched region
///   kTruncated       the capture ends inside the frame (preamble or the
///                    HT-SIG-announced data field)
///   kFalseSync       a sync candidate fired but fine synchronization
///                    rejected it or neither SIG field decoded — the plateau
///                    was noise or an interferer, not a packet
///   kHtsigFail       L-SIG decoded but the HT-SIG CRC failed
///   kUnsupportedMcs  HT-SIG decoded but announces a mode we don't implement
///   kFcsFail         the data field decoded but the FCS check failed
///   kLsigFail        everything else succeeded but L-SIG did not decode
///   kBudgetExceeded  the streaming watchdog gave up on a pathological
///                    region (only StreamReceiver emits this)
enum class RxError : std::uint8_t {
  kOk = 0,
  kNoSync,
  kFalseSync,
  kLsigFail,
  kHtsigFail,
  kUnsupportedMcs,
  kFcsFail,
  kTruncated,
  kBudgetExceeded,
};

inline constexpr std::size_t kRxErrorCount =
    static_cast<std::size_t>(RxError::kBudgetExceeded) + 1;

/// Short stable name for tables and JSON ("ok", "no_sync", ...).
[[nodiscard]] const char* rx_error_name(RxError e) noexcept;

/// Per-category attempt counter. Mergeable (pure integer sums), so partial
/// results from Monte-Carlo workers, sweep points or separate stream scans
/// fold together losslessly.
class RxErrorCounter {
 public:
  void add(RxError e) noexcept {
    ++counts_[static_cast<std::size_t>(e) < kRxErrorCount
                  ? static_cast<std::size_t>(e)
                  : 0];
  }
  void merge(const RxErrorCounter& other) noexcept {
    for (std::size_t i = 0; i < kRxErrorCount; ++i) counts_[i] += other.counts_[i];
  }

  [[nodiscard]] std::size_t count(RxError e) const noexcept {
    return counts_[static_cast<std::size_t>(e)];
  }
  /// All attempts, every category including kOk.
  [[nodiscard]] std::size_t total() const noexcept;
  /// Attempts in any non-kOk category.
  [[nodiscard]] std::size_t errors() const noexcept { return total() - count(RxError::kOk); }

  void reset() noexcept { *this = RxErrorCounter{}; }

 private:
  std::array<std::size_t, kRxErrorCount> counts_{};
};

}  // namespace mimonet::metrics
