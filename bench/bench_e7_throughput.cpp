// E7 — Goodput per MCS (Table reconstruction): the spatial-multiplexing
// headline — two streams double throughput without extra bandwidth.
//
// Expected shape: at high SNR, goodput approaches the PHY rate minus
// preamble overhead, and MCS 8-15 deliver ~2x their MCS 0-7 counterparts;
// at moderate SNR the fastest MCS collapses first (PER dominates).
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

core::LinkResult run_cell(unsigned mcs, double snr, std::size_t packets,
                          std::uint64_t seed) {
  auto cfg = core::LinkConfig::make()
                 .mcs(mcs)
                 .snr_db(snr)
                 .payload_bytes(1500)
                 .seed(seed)
                 .build();
  core::LinkSimulator sim(cfg);
  return sim.run(
      core::RunOptions{.n_packets = packets, .n_threads = bench::threads()});
}

}  // namespace

int main() {
  bench::heading("E7", "Goodput per MCS, 1500-byte payloads (Table reconstruction)");
  constexpr std::size_t kPackets = 20;
  bench::note("%zu packets per cell, AWGN; goodput = delivered bits / air time",
              kPackets);

  std::string pts = "[";
  bool first = true;
  for (const double snr : {30.0, 18.0, 10.0}) {
    std::printf("\n  SNR %.0f dB\n", snr);
    std::vector<std::string> headers{"MCS", "PHY Mb/s", "nss"};
    for (const auto& h : core::LinkResult::summary_headers()) headers.push_back(h);
    const bench::Table table(headers, 11);
    // Distinct seed family per SNR point so cells stay independent draws.
    const std::uint64_t seed_base = snr == 30.0 ? 70 : (snr == 18.0 ? 170 : 270);
    for (unsigned mcs = 0; mcs <= 15; ++mcs) {
      const auto info = wifi::mcs_info(mcs);
      const auto res = run_cell(mcs, snr, kPackets, seed_base + mcs);
      std::vector<std::string> cells{std::to_string(mcs),
                                     bench::fix(info.data_rate_mbps(), 1),
                                     std::to_string(info.nss)};
      for (auto& c : res.summary_row()) cells.push_back(std::move(c));
      table.row(cells);
      char obj[224];
      std::snprintf(obj, sizeof obj,
                    "%s{\"snr_db\": %g, \"mcs\": %u, \"nss\": %u, "
                    "\"phy_mbps\": %.4g, \"goodput_mbps\": %.4g, \"per\": %.4g}",
                    first ? "" : ", ", snr, mcs, info.nss,
                    info.data_rate_mbps(), res.throughput.goodput_mbps(),
                    res.per.per());
      pts += obj;
      first = false;
    }
  }
  bench::note("expected: MCS k+8 goodput ~= 2x MCS k at 30 dB (spatial multiplexing");
  bench::note("doubles rate in the same 20 MHz); high MCS collapse first as SNR drops");

  bench::JsonReport report("e7_throughput");
  report.field("packets_per_point", kPackets)
      .field("payload_bytes", std::size_t{1500})
      .raw("points", pts + "]")
      .emit();
  return 0;
}
