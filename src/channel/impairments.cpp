#include "channel/impairments.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/rng.hpp"
#include "dsp/vector_ops.hpp"

namespace mimonet::channel {

double apply_cfo(std::span<cf32> x, double cfo_norm, double phase0) noexcept {
  return dsp::mix(x, phase0, dsp::two_pi_d * cfo_norm);
}

std::vector<cf32> apply_sfo(std::span<const cf32> x, double sfo_ppm) {
  const double step = 1.0 + sfo_ppm * 1e-6;
  // A non-positive step would pin `pos` forever (infinite loop) and a
  // non-finite one would make the size_t cast below undefined.
  if (!(step > 0.0) || !std::isfinite(step)) {
    throw std::invalid_argument("apply_sfo: sfo_ppm must stay above -1e6");
  }
  std::vector<cf32> out;
  out.reserve(x.size());
  double pos = 0.0;
  while (true) {
    const auto i = static_cast<std::size_t>(pos);
    if (i + 1 >= x.size()) break;
    const float frac = static_cast<float>(pos - static_cast<double>(i));
    out.push_back(x[i] * (1.0F - frac) + x[i + 1] * frac);
    pos += step;
  }
  return out;
}

void quantize(std::span<cf32> x, unsigned bits, float full_scale) noexcept {
  if (bits == 0 || bits > 24) return;
  const float levels = static_cast<float>(1U << (bits - 1));  // per polarity
  const float lsb = full_scale / levels;
  const auto q = [&](float v) {
    const float clipped = std::clamp(v, -full_scale, full_scale - lsb);
    return std::round(clipped / lsb) * lsb;
  };
  for (auto& v : x) v = cf32(q(v.real()), q(v.imag()));
}

void apply_clipping(std::span<cf32> x, float clip_level) noexcept {
  if (!(clip_level > 0.0F)) return;
  const float limit_sqr = clip_level * clip_level;
  for (auto& v : x) {
    const float p = dsp::mag_sqr(v);
    if (!std::isfinite(p)) {
      // A saturating front end cannot emit NaN/Inf: pin the sample to full
      // scale (phase is unrecoverable, so use the positive real rail).
      v = cf32{clip_level, 0.0F};
    } else if (p > limit_sqr) {
      v *= clip_level / std::sqrt(p);
    }
  }
}

void apply_burst_erasure(std::span<cf32> x, std::size_t start,
                         std::size_t len) noexcept {
  if (start >= x.size()) return;
  const std::size_t n = std::min(len, x.size() - start);
  std::fill_n(x.begin() + static_cast<std::ptrdiff_t>(start), n, cf32{0.0F, 0.0F});
}

std::vector<cf32> pad_with_noise(std::span<const cf32> x, std::size_t count,
                                 std::size_t tail, double noise_var,
                                 std::uint64_t seed) {
  std::vector<cf32> out(count + x.size() + tail);
  dsp::ComplexGaussian noise(seed, noise_var);
  noise.fill(std::span(out).first(count));
  std::copy(x.begin(), x.end(), out.begin() + static_cast<std::ptrdiff_t>(count));
  noise.fill(std::span(out).last(tail));
  return out;
}

}  // namespace mimonet::channel
