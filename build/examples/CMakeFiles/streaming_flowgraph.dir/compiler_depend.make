# Empty compiler generated dependencies file for streaming_flowgraph.
# This may be replaced when dependencies are built.
