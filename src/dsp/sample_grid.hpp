// Contiguous sample containers for the allocation-free sample plane.
//
// The receive/transmit chains used to pass std::vector<std::vector<cf32>>
// grids by value between stages; every stage boundary was an allocation.
// SampleGrid (2-D) and IqTensor (3-D, [stream][symbol][bin]) keep one flat
// buffer and hand out std::span row views instead. resize() only touches the
// heap when capacity grows, so a workspace-owned grid reaches a steady state
// after the first packet and never allocates again.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// 2-D grid of IQ samples: `rows` independent lanes (antennas, streams, or
/// OFDM symbols) of `cols` samples each, in one flat buffer.
class SampleGrid {
 public:
  SampleGrid() = default;
  SampleGrid(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  /// Reshape. Existing contents are unspecified afterwards; capacity is
  /// kept, so steady-state reshaping never allocates.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void fill(cf32 v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::span<cf32> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const cf32> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] cf32& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] cf32 operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] cf32* data() noexcept { return data_.data(); }
  [[nodiscard]] const cf32* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cf32> data_;
};

/// 3-D IQ tensor with [stream][symbol][bin] indexing — the canonical shape
/// of an OFDM frequency-domain burst (or any streams x symbols x bins
/// stack). One flat buffer; row() hands out the innermost lane as a span.
class IqTensor {
 public:
  IqTensor() = default;
  IqTensor(std::size_t streams, std::size_t symbols, std::size_t bins) {
    resize(streams, symbols, bins);
  }

  /// Reshape; contents unspecified, capacity kept.
  void resize(std::size_t streams, std::size_t symbols, std::size_t bins) {
    streams_ = streams;
    symbols_ = symbols;
    bins_ = bins;
    data_.resize(streams * symbols * bins);
  }

  void fill(cf32 v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] std::size_t streams() const noexcept { return streams_; }
  [[nodiscard]] std::size_t symbols() const noexcept { return symbols_; }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_; }

  [[nodiscard]] std::span<cf32> row(std::size_t stream, std::size_t symbol) noexcept {
    return {data_.data() + (stream * symbols_ + symbol) * bins_, bins_};
  }
  [[nodiscard]] std::span<const cf32> row(std::size_t stream,
                                          std::size_t symbol) const noexcept {
    return {data_.data() + (stream * symbols_ + symbol) * bins_, bins_};
  }

  [[nodiscard]] cf32& operator()(std::size_t stream, std::size_t symbol,
                                 std::size_t bin) noexcept {
    return data_[(stream * symbols_ + symbol) * bins_ + bin];
  }
  [[nodiscard]] cf32 operator()(std::size_t stream, std::size_t symbol,
                                std::size_t bin) const noexcept {
    return data_[(stream * symbols_ + symbol) * bins_ + bin];
  }

  [[nodiscard]] cf32* data() noexcept { return data_.data(); }
  [[nodiscard]] const cf32* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return streams_ * symbols_ * bins_; }

 private:
  std::size_t streams_ = 0;
  std::size_t symbols_ = 0;
  std::size_t bins_ = 0;
  std::vector<cf32> data_;
};

}  // namespace mimonet::dsp
