# Empty compiler generated dependencies file for mimonet_mod.
# This may be replaced when dependencies are built.
