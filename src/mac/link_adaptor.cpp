#include "mac/link_adaptor.hpp"

#include <algorithm>
#include <stdexcept>

namespace mimonet::mac {

double mcs_required_sinr_db(unsigned mcs) noexcept {
  // BPSK 1/2, QPSK 1/2, QPSK 3/4, 16-QAM 1/2, 16-QAM 3/4, 64-QAM 2/3,
  // 64-QAM 3/4, 64-QAM 5/6 — the canonical 802.11n-style ladder.
  constexpr double kTable[8] = {5.0, 8.0, 10.5, 13.5, 17.0, 21.0, 22.5, 24.0};
  return kTable[mcs % 8U];
}

const char* failure_evidence_name(FailureEvidence e) noexcept {
  switch (e) {
    case FailureEvidence::kNone: return "none";
    case FailureEvidence::kChannel: return "channel";
    case FailureEvidence::kInterference: return "interference";
  }
  return "?";
}

LinkAdaptor::LinkAdaptor(LinkAdaptorConfig cfg, unsigned initial_mcs,
                         unsigned min_mcs, unsigned max_mcs)
    : cfg_(cfg), current_mcs_(initial_mcs), min_mcs_(min_mcs),
      max_mcs_(max_mcs) {
  if (min_mcs_ > initial_mcs || initial_mcs > max_mcs_) {
    throw std::invalid_argument(
        "LinkAdaptor: need min_mcs <= initial_mcs <= max_mcs");
  }
  if (cfg_.interference_backoff < 1.0 || cfg_.max_backoff_scale < 1.0) {
    throw std::invalid_argument(
        "LinkAdaptor: backoff factors must be >= 1");
  }
}

FailureEvidence LinkAdaptor::classify(const LinkObservation& obs,
                                      double required_sinr_db,
                                      double margin_db) noexcept {
  if (obs.delivered) return FailureEvidence::kNone;
  if (obs.error == metrics::RxError::kFalseSync) {
    return FailureEvidence::kInterference;
  }
  if (obs.have_snr && obs.snr_db >= required_sinr_db + margin_db) {
    return FailureEvidence::kInterference;
  }
  return FailureEvidence::kChannel;
}

LinkDecision LinkAdaptor::observe(const LinkObservation& obs) {
  return cfg_.policy == AdaptPolicy::kEvidence ? observe_evidence(obs)
                                               : observe_failure_count(obs);
}

LinkDecision LinkAdaptor::observe_failure_count(const LinkObservation& obs) {
  // Faithful port of the legacy SelectiveRepeatLink streak heuristic, so
  // the baseline policy's decisions (and stats) are unchanged.
  LinkDecision d;
  if (obs.delivered) {
    consecutive_fail_ = 0;
    if (cfg_.recover_after == 0 || current_mcs_ >= max_mcs_) return d;
    if (++consecutive_ok_ < cfg_.recover_after) return d;
    consecutive_ok_ = 0;
    ++current_mcs_;
    ++recoveries_;
    d.mcs_step = +1;
    return d;
  }
  consecutive_ok_ = 0;
  if (cfg_.fallback_after == 0) return d;
  if (++consecutive_fail_ < cfg_.fallback_after) return d;
  consecutive_fail_ = 0;
  if (current_mcs_ > min_mcs_) {
    --current_mcs_;
    ++fallbacks_;
    d.mcs_step = -1;
  }
  return d;
}

LinkDecision LinkAdaptor::observe_evidence(const LinkObservation& obs) {
  LinkDecision d;
  if (obs.delivered) {
    channel_fails_ = 0;
    // A clean delivery is evidence any burst has passed: relax the stretch.
    backoff_scale_ = std::max(1.0, backoff_scale_ / cfg_.interference_backoff);
    // Step up only on demonstrated headroom over the *next* rate's
    // requirement — not on streak length alone.
    if (cfg_.up_after != 0 && current_mcs_ < max_mcs_) {
      const double need =
          mcs_required_sinr_db(current_mcs_ + 1) + cfg_.up_margin_db;
      const double evidence = obs.have_stream_sinr ? obs.min_stream_sinr_db
                              : obs.have_snr       ? obs.snr_db
                                                   : need - 1.0;
      if (evidence >= need) {
        if (++headroom_ok_ >= cfg_.up_after) {
          headroom_ok_ = 0;
          ++current_mcs_;
          ++recoveries_;
          d.mcs_step = +1;
        }
      } else {
        headroom_ok_ = 0;
      }
    } else {
      headroom_ok_ = 0;
    }
    d.backoff_scale = backoff_scale_;
    return d;
  }

  headroom_ok_ = 0;
  switch (classify(obs, mcs_required_sinr_db(current_mcs_),
                   cfg_.low_snr_margin_db)) {
    case FailureEvidence::kInterference:
      // The channel supports the rate; dropping MCS would only donate
      // goodput while the burst passes. Hold, stretch the retry pacing.
      ++interference_holds_;
      channel_fails_ = 0;
      backoff_scale_ = std::min(cfg_.max_backoff_scale,
                                backoff_scale_ * cfg_.interference_backoff);
      break;
    case FailureEvidence::kChannel:
      if (cfg_.down_after != 0 && ++channel_fails_ >= cfg_.down_after) {
        channel_fails_ = 0;
        if (current_mcs_ > min_mcs_) {
          --current_mcs_;
          ++fallbacks_;
          d.mcs_step = -1;
        }
      }
      break;
    case FailureEvidence::kNone:
      break;
  }
  d.backoff_scale = backoff_scale_;
  return d;
}

}  // namespace mimonet::mac
