file(REMOVE_RECURSE
  "CMakeFiles/mimonet_wifi.dir/wifi/bits.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/bits.cpp.o.d"
  "CMakeFiles/mimonet_wifi.dir/wifi/interleaver.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/interleaver.cpp.o.d"
  "CMakeFiles/mimonet_wifi.dir/wifi/mcs.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/mcs.cpp.o.d"
  "CMakeFiles/mimonet_wifi.dir/wifi/preamble.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/preamble.cpp.o.d"
  "CMakeFiles/mimonet_wifi.dir/wifi/psdu.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/psdu.cpp.o.d"
  "CMakeFiles/mimonet_wifi.dir/wifi/signal_field.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/signal_field.cpp.o.d"
  "CMakeFiles/mimonet_wifi.dir/wifi/stream_parser.cpp.o"
  "CMakeFiles/mimonet_wifi.dir/wifi/stream_parser.cpp.o.d"
  "libmimonet_wifi.a"
  "libmimonet_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
