// Quickstart: send one spatially-multiplexed packet over a simulated 2x2
// channel and print what the receiver recovered.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/link_simulator.hpp"
#include "core/workspace.hpp"
#include "wifi/psdu.hpp"

int main() {
  using namespace mimonet;

  // MCS 8 = BPSK 1/2 over two spatial streams; 20 dB SNR, flat channel,
  // with ~2 kHz-per-sample worth of CFO at 20 Msps.
  const core::LinkConfig cfg = core::LinkConfig::make()
                                   .mcs(8)
                                   .snr_db(20.0)
                                   .cfo_norm(1e-4)
                                   .payload_bytes(256)
                                   .build();

  core::Transmitter tx(cfg.phy);
  channel::MimoChannel air(cfg.channel);
  core::Receiver rx(cfg.phy, cfg.channel.nrx);

  const std::string message =
      "MIMONet quickstart: two data streams, two antennas, one packet.";
  wifi::MacHeader hdr;
  hdr.addr1 = {0x02, 0x11, 0x22, 0x33, 0x44, 0x55};
  hdr.addr2 = {0x02, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  const auto psdu = wifi::build_psdu(
      hdr, std::span(reinterpret_cast<const std::uint8_t*>(message.data()),
                     message.size()));

  const auto streams = tx.transmit(psdu);
  std::printf("TX: %zu streams x %zu samples (MCS %u, %.1f Mb/s)\n", streams.size(),
              streams[0].size(), cfg.phy.mcs, cfg.phy.mcs_info().data_rate_mbps());

  const auto capture = air.transmit(streams);
  // The canonical receive entry point: spans over the capture plus a reusable
  // workspace; the decoded packet lands in ws.packet.
  core::RxWorkspace ws;
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  if (!rx.receive(spans, ws)) {
    std::printf("RX: no packet detected\n");
    return 1;
  }
  const core::RxPacket& pkt = ws.packet;

  std::printf("RX: packet at sample %zu (true %zu), CFO est %.2e (true %.2e)\n",
              pkt.sync.packet_start, air.truth().packet_start, pkt.sync.cfo_norm,
              air.truth().cfo_norm);
  std::printf("RX: L-SIG %s, HT-SIG %s (MCS %u, %u bytes), FCS %s\n",
              pkt.lsig_ok ? "ok" : "BAD", pkt.htsig_ok ? "ok" : "BAD",
              pkt.htsig.mcs, pkt.htsig.length, pkt.fcs_ok ? "ok" : "BAD");
  std::printf("RX: SNR estimate %.1f dB (LTF), %.1f dB (pilots); true %.1f dB\n",
              pkt.snr.snr_db, pkt.pilot_snr.snr_db, cfg.channel.snr_db);

  if (pkt.fcs_ok) {
    const auto parsed = wifi::parse_psdu(pkt.psdu);
    std::printf("RX: payload: \"%.*s\"\n", static_cast<int>(parsed->payload.size()),
                reinterpret_cast<const char*>(parsed->payload.data()));
  }
  return pkt.fcs_ok ? 0 : 1;
}
