#include "core/stream_receiver.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "core/workspace.hpp"

namespace mimonet::core {

void StreamStats::merge(const StreamStats& other) noexcept {
  frames += other.frames;
  delivered += other.delivered;
  resync_events += other.resync_events;
  budget_exhaustions += other.budget_exhaustions;
  samples_scanned += other.samples_scanned;
  errors.merge(other.errors);
}

StreamReceiver::StreamReceiver(PhyConfig cfg, std::size_t nrx,
                               StreamReceiverConfig scfg)
    : scfg_(scfg), rx_(std::move(cfg), nrx), nrx_(nrx) {
  if (scfg_.min_advance == 0) {
    throw std::invalid_argument("StreamReceiver: min_advance must be >= 1");
  }
  if (scfg_.resync_advance == 0) {
    throw std::invalid_argument("StreamReceiver: resync_advance must be >= 1");
  }
}

std::vector<StreamRecord> StreamReceiver::receive_all(
    const std::vector<std::vector<cf32>>& capture) const {
  RxWorkspace ws;
  StreamStats stats;
  std::vector<StreamRecord> out;
  std::vector<std::span<const cf32>> spans(capture.begin(), capture.end());
  scan(spans, ws, stats, [&out](const StreamEvent& ev) {
    StreamRecord rec;
    rec.offset = ev.offset;
    rec.error = ev.error;
    if (ev.packet != nullptr) {
      rec.has_packet = true;
      rec.packet = *ev.packet;
    }
    out.push_back(std::move(rec));
  });
  return out;
}

void StreamReceiver::scan(std::span<const std::span<const cf32>> capture,
                          RxWorkspace& ws, StreamStats& stats,
                          const EventFn& on_event) const {
  if (capture.size() != nrx_) {
    throw std::invalid_argument("StreamReceiver::scan: antenna count mismatch");
  }
  const std::size_t len = capture[0].size();
  for (const auto& s : capture) {
    if (s.size() != len) {
      throw std::invalid_argument("StreamReceiver::scan: ragged capture");
    }
  }
  stats.samples_scanned += len;

  // The scan window lives on the stack (Receiver caps nrx at 4), so the
  // loop stays allocation-free regardless of how `capture` was staged.
  std::array<std::span<const cf32>, 4> window{};
  std::size_t pos = 0;
  std::size_t failed_candidates = 0;  // since the last consumed frame
  std::size_t frames_this_scan = 0;
  // Rewind targets must strictly increase across the scan, so backward
  // hops (below) cannot loop: at most `len` rewinds ever happen.
  std::size_t rewind_barrier = 0;

  while (pos < len) {
    for (std::size_t a = 0; a < nrx_; ++a) window[a] = capture[a].subspan(pos);
    const bool got = rx_.receive(
        std::span<const std::span<const cf32>>(window.data(), nrx_), ws);
    const RxPacket& pkt = ws.packet;
    const metrics::RxError err = pkt.error;

    if (!got && err == metrics::RxError::kNoSync) {
      // Nothing detectable in the remainder — the normal end of a scan, so
      // the trailing idle air is not counted as an error.
      break;
    }

    // Every other classification comes with a synchronized candidate.
    const std::size_t frame_start = pos + pkt.sync.packet_start;
    stats.errors.add(err);
    on_event(StreamEvent{frame_start, err, &pkt});

    if (err == metrics::RxError::kTruncated) {
      // The frame provably extends past the end of the capture (either its
      // preamble or its HT-SIG-announced extent), so no later packet can
      // complete either: the scan is done.
      if (pkt.htsig_ok) ++stats.frames;
      break;
    }

    std::size_t next;
    if (pkt.htsig_ok) {
      // A consumed frame (kOk / kLsigFail / kFcsFail): skip its announced
      // extent. mcs_info succeeded during decode, so the geometry is known.
      ++stats.frames;
      ++frames_this_scan;
      if (pkt.fcs_ok) ++stats.delivered;
      failed_candidates = 0;
      next = frame_start + *decoded_frame_samples(pkt, rx_.config());
      if (scfg_.max_packets != 0 && frames_this_scan >= scfg_.max_packets) break;
    } else {
      // Failed candidate (kFalseSync / kHtsigFail / kUnsupportedMcs): hop
      // past its start and rescan.
      ++stats.resync_events;
      ++failed_candidates;
      // When fine sync reports that the candidate's L-LTF implies a packet
      // starting *before* this window, a previous resync hop overshot a real
      // packet's L-STF: rewind onto the implied start instead of hopping
      // forward over the rest of the packet. The barrier keeps rewind
      // targets strictly increasing, so this cannot loop.
      bool rewound = false;
      const std::size_t deficit =
          !got ? ws.sync.rejected_start_deficit : std::size_t{0};
      if (deficit != 0 && pos >= deficit && pos - deficit >= rewind_barrier) {
        next = pos - deficit;
        rewind_barrier = next + 1;
        rewound = true;
      } else {
        next = frame_start + scfg_.resync_advance;
      }
      if (scfg_.max_failed_candidates != 0 &&
          failed_candidates > scfg_.max_failed_candidates) {
        // Watchdog: a pathological capture keeps producing candidates that
        // never decode. Report the exhaustion and abandon the capture
        // rather than grinding through it one resync hop at a time.
        stats.errors.add(metrics::RxError::kBudgetExceeded);
        ++stats.budget_exhaustions;
        on_event(StreamEvent{next, metrics::RxError::kBudgetExceeded, nullptr});
        break;
      }
      if (rewound) {
        pos = next;
        continue;
      }
    }
    // Monotonic-advance floor: termination in at most len / min_advance
    // iterations no matter what the candidates looked like.
    pos = std::max(next, pos + scfg_.min_advance);
  }
}

}  // namespace mimonet::core
