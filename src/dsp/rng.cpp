#include "dsp/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace mimonet::dsp {

ComplexGaussian::ComplexGaussian(std::uint64_t seed, double variance) : rng_(seed) {
  set_variance(variance);
}

void ComplexGaussian::set_variance(double variance) {
  if (variance < 0.0) throw std::invalid_argument("ComplexGaussian: negative variance");
  variance_ = variance;
  // Each real dimension carries half the complex variance.
  const float sigma = static_cast<float>(std::sqrt(variance / 2.0));
  dist_ = std::normal_distribution<float>(0.0F, sigma);
}

cf32 ComplexGaussian::sample() { return {dist_(rng_), dist_(rng_)}; }

void ComplexGaussian::fill(std::span<cf32> out) {
  for (auto& v : out) v = sample();
}

void ComplexGaussian::add_to(std::span<cf32> inout) {
  for (auto& v : inout) v += sample();
}

std::vector<std::uint8_t> BitSource::bits(std::size_t count) {
  std::vector<std::uint8_t> out(count);
  std::uint64_t pool = 0;
  int avail = 0;
  for (auto& b : out) {
    if (avail == 0) {
      pool = rng_();
      avail = 64;
    }
    b = static_cast<std::uint8_t>(pool & 1U);
    pool >>= 1U;
    --avail;
  }
  return out;
}

std::vector<std::uint8_t> BitSource::bytes(std::size_t count) {
  std::vector<std::uint8_t> out(count);
  std::uint64_t pool = 0;
  int avail = 0;
  for (auto& b : out) {
    if (avail == 0) {
      pool = rng_();
      avail = 8;
    }
    b = static_cast<std::uint8_t>(pool & 0xFFU);
    pool >>= 8U;
    --avail;
  }
  return out;
}

}  // namespace mimonet::dsp
