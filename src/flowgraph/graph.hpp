// Graph assembly and schedulers: connect blocks with typed ring buffers and
// run them to completion, single-threaded or thread-per-block.
#pragma once

#include <memory>
#include <vector>

#include "flowgraph/block.hpp"

namespace mimonet::flowgraph {

inline constexpr std::size_t kDefaultBufferCapacity = 1 << 16;

/// Owns blocks and edges; validates connectivity before running.
class Graph {
 public:
  /// Register a block; the graph shares ownership.
  void add(std::shared_ptr<Block> block);

  /// Connect src's output port to dst's input port with a RingBuffer<T>.
  template <typename T>
  void connect(Block& src, std::size_t out_port, Block& dst, std::size_t in_port,
               std::size_t capacity = kDefaultBufferCapacity) {
    auto buf = std::make_shared<RingBuffer<T>>(capacity);
    src.bind_output(out_port, buf);
    dst.bind_input(in_port, buf);
  }

  /// @throws std::logic_error when any registered block has unbound ports.
  void validate() const;

  [[nodiscard]] const std::vector<std::shared_ptr<Block>>& blocks() const noexcept {
    return blocks_;
  }

 private:
  std::vector<std::shared_ptr<Block>> blocks_;
};

/// Round-robin single-threaded scheduler. Runs until every block reported
/// kDone. @throws std::runtime_error on deadlock (a full pass with no
/// progress while blocks remain unfinished).
void run_single_threaded(Graph& graph);

/// One OS thread per block; each spins on work() with backoff until kDone.
void run_threaded(Graph& graph);

}  // namespace mimonet::flowgraph
