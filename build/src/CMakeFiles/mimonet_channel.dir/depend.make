# Empty dependencies file for mimonet_channel.
# This may be replaced when dependencies are built.
