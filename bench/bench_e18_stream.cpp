// E18 — streaming receive path: packets/sec over long multi-packet captures.
//
// Times core::StreamReceiver scanning a capture of many back-to-back PPDUs
// (idle gaps between them), clean and with a FaultPlan interferer burst in
// every other gap, so the figure covers both the steady-state decode rate
// and the resync overhead the fault campaign exercises. Single scan thread;
// the workspace is reused across passes so the loop runs allocation-free.
//
// MIMONET_BENCH_PACKETS overrides the per-capture packet count (check.sh's
// bench-smoke step uses a small value).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel/fault_plan.hpp"
#include "channel/mimo_channel.hpp"
#include "core/stream_receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;
using dsp::cf32;

namespace {

constexpr std::size_t kPayloadBytes = 700;
constexpr std::size_t kGapLen = 600;

struct Stream {
  core::PhyConfig phy;
  std::vector<std::vector<cf32>> capture;
  std::size_t n_packets = 0;
};

/// `n_packets` PPDUs with idle gaps through a clean flat channel; when
/// `faulted`, a CW interferer burst lands in every other gap.
Stream make_stream(unsigned mcs, std::size_t n_packets, bool faulted) {
  Stream s;
  s.phy.mcs = mcs;
  s.n_packets = n_packets;
  const core::Transmitter tx(s.phy);
  const std::size_t nss = tx.num_streams();
  constexpr std::size_t kPad = 200;

  std::vector<std::uint8_t> payload(kPayloadBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto psdu = wifi::build_psdu(wifi::MacHeader{}, payload);
  const auto streams = tx.transmit(psdu);

  channel::FaultPlan plan;
  std::vector<std::vector<cf32>> concat(nss);
  for (std::size_t p = 0; p < n_packets; ++p) {
    if (faulted && p + 1 < n_packets && p % 2 == 0) {
      // A CW tone autocorrelates like an STF plateau, so each burst costs
      // the scanner rejected candidates before it resyncs onto the next
      // packet — the interesting overhead to measure.
      plan.tone_burst(kPad + concat[0].size() + streams[0].size() + 150, 240,
                      3.0, 0.07);
    }
    for (std::size_t c = 0; c < nss; ++c) {
      concat[c].insert(concat[c].end(), streams[c].begin(), streams[c].end());
      if (p + 1 < n_packets) concat[c].resize(concat[c].size() + kGapLen);
    }
  }

  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = 30.0;
  ccfg.timing_pad = kPad;
  ccfg.tail_pad = 100;
  ccfg.seed = 0xE18;
  ccfg.faults = plan;
  channel::MimoChannel chan(ccfg);
  s.capture = chan.transmit(concat);
  return s;
}

struct Measurement {
  double packets_per_sec = 0.0;
  double samples_per_sec = 0.0;
  std::size_t delivered = 0;
  std::size_t resync_events = 0;
};

Measurement run_case(const Stream& s, std::size_t passes) {
  const core::StreamReceiver srx(s.phy, s.capture.size());
  core::RxWorkspace ws;
  std::vector<std::span<const cf32>> spans(s.capture.begin(), s.capture.end());

  // Warm pass: allocator pools, FFT plans, branch predictors.
  core::StreamStats warm;
  srx.scan(spans, ws, warm, [](const core::StreamEvent&) {});

  core::StreamStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < passes; ++i) {
    srx.scan(spans, ws, stats, [](const core::StreamEvent&) {});
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();

  Measurement m;
  m.delivered = stats.delivered / passes;
  m.resync_events = stats.resync_events / passes;
  m.packets_per_sec = static_cast<double>(stats.delivered) / secs;
  m.samples_per_sec = static_cast<double>(stats.samples_scanned) / secs;
  return m;
}

struct Case {
  const char* name;
  unsigned mcs;
  bool faulted;
};

}  // namespace

int main() {
  bench::heading("E18", "Streaming receive path: scan packets/sec");

  std::size_t n_packets = 32;
  if (const char* env = std::getenv("MIMONET_BENCH_PACKETS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) n_packets = static_cast<std::size_t>(v);
  }
  constexpr std::size_t kPasses = 3;
  bench::note("%zu packets per capture, %zu-byte payload, %zu-sample gaps, "
              "30 dB AWGN, %zu timed scan passes",
              n_packets, kPayloadBytes, kGapLen, kPasses);

  const std::vector<Case> cases{
      {"1x1_mcs7_clean", 7, false},
      {"1x1_mcs7_faulted_gaps", 7, true},
      {"2x2_mcs15_clean", 15, false},
  };

  const bench::Table table(
      {"case", "pkt/s", "Msamp/s", "delivered", "resyncs"}, 22);

  bench::JsonReport report("stream");
  report.field("packets_per_capture", n_packets);
  report.field("payload_bytes", kPayloadBytes);
  report.field("gap_samples", kGapLen);
  report.field("snr_db", 30.0);
  report.field("scan_passes", kPasses);

  std::string cases_json = "[";
  bool all_delivered = true;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const Stream s = make_stream(c.mcs, n_packets, c.faulted);
    const auto m = run_case(s, kPasses);
    // Gap faults must not cost packets: the scanner resyncs past them.
    all_delivered = all_delivered && (m.delivered == s.n_packets);
    table.row({c.name, bench::fix(m.packets_per_sec, 1),
               bench::fix(m.samples_per_sec / 1e6, 3),
               std::to_string(m.delivered) + "/" + std::to_string(s.n_packets),
               std::to_string(m.resync_events)});

    bench::JsonReport cj(c.name);
    cj.field("mcs", c.mcs);
    cj.field("faulted_gaps", c.faulted);
    cj.field("packets_per_sec", m.packets_per_sec);
    cj.field("samples_per_sec", m.samples_per_sec);
    cj.field("delivered_per_pass", m.delivered);
    cj.field("resync_events_per_pass", m.resync_events);
    if (i != 0) cases_json += ", ";
    cases_json += cj.to_json();
  }
  cases_json += "]";
  report.raw("cases", cases_json);
  report.field("all_packets_delivered", all_delivered);
  report.emit_merged();  // preserve E19's "farm" table if already present
  return all_delivered ? 0 : 1;
}
