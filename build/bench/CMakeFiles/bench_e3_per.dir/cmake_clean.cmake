file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_per.dir/bench_e3_per.cpp.o"
  "CMakeFiles/bench_e3_per.dir/bench_e3_per.cpp.o.d"
  "bench_e3_per"
  "bench_e3_per.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_per.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
