// Link-quality bookkeeping: BER, PER, EVM and throughput counters with
// confidence intervals — the measurement layer the paper's evaluation
// ("bit error rate (BER) and packet error rate (PER) computations") uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dsp/types.hpp"

namespace mimonet::metrics {

/// Binomial proportion confidence interval (Wilson score, 95%).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] Interval wilson_interval(std::size_t successes, std::size_t trials);

/// Bit-error-rate accumulator.
class BerCounter {
 public:
  /// Compare two equal-length bit vectors.
  void add(std::span<const std::uint8_t> reference, std::span<const std::uint8_t> received);
  /// Pre-counted errors.
  void add_counts(std::size_t errors, std::size_t bits) noexcept;
  /// Fold another counter in (exact: pure integer sums).
  void merge(const BerCounter& other) noexcept { add_counts(other.errors_, other.bits_); }

  [[nodiscard]] std::size_t bits() const noexcept { return bits_; }
  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] double ber() const noexcept;
  [[nodiscard]] Interval confidence() const { return wilson_interval(errors_, bits_); }
  void reset() noexcept { *this = BerCounter{}; }

 private:
  std::size_t bits_ = 0;
  std::size_t errors_ = 0;
};

/// Packet-error-rate accumulator.
class PerCounter {
 public:
  void add(bool packet_ok) noexcept;
  /// Fold another counter in (exact: pure integer sums).
  void merge(const PerCounter& other) noexcept {
    packets_ += other.packets_;
    failures_ += other.failures_;
  }

  [[nodiscard]] std::size_t packets() const noexcept { return packets_; }
  [[nodiscard]] std::size_t failures() const noexcept { return failures_; }
  [[nodiscard]] double per() const noexcept;
  [[nodiscard]] Interval confidence() const { return wilson_interval(failures_, packets_); }
  void reset() noexcept { *this = PerCounter{}; }

 private:
  std::size_t packets_ = 0;
  std::size_t failures_ = 0;
};

/// Error-vector-magnitude accumulator over equalized constellation points.
class EvmMeter {
 public:
  void add(dsp::cf32 observed, dsp::cf32 reference) noexcept;
  /// Fold another meter in (error/reference energy sums).
  void merge(const EvmMeter& other) noexcept {
    err_ += other.err_;
    ref_ += other.ref_;
    n_ += other.n_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// RMS EVM as a fraction of RMS reference magnitude.
  [[nodiscard]] double evm_rms() const noexcept;
  [[nodiscard]] double evm_db() const noexcept;
  void reset() noexcept { *this = EvmMeter{}; }

 private:
  double err_ = 0.0;
  double ref_ = 0.0;
  std::size_t n_ = 0;
};

/// Goodput accounting: delivered payload bits over elapsed air time.
class ThroughputMeter {
 public:
  /// @param payload_bytes bytes delivered (0 for a lost packet)
  /// @param airtime_us    time the PPDU occupied the channel
  void add_packet(std::size_t payload_bytes, double airtime_us) noexcept;
  /// Fold another meter in (delivered-bit and airtime sums).
  void merge(const ThroughputMeter& other) noexcept {
    delivered_bits_ += other.delivered_bits_;
    airtime_us_ += other.airtime_us_;
  }

  [[nodiscard]] double goodput_mbps() const noexcept;
  [[nodiscard]] double airtime_us() const noexcept { return airtime_us_; }
  void reset() noexcept { *this = ThroughputMeter{}; }

 private:
  double delivered_bits_ = 0.0;
  double airtime_us_ = 0.0;
};

}  // namespace mimonet::metrics
