file(REMOVE_RECURSE
  "CMakeFiles/mimonet_channel.dir/channel/fading.cpp.o"
  "CMakeFiles/mimonet_channel.dir/channel/fading.cpp.o.d"
  "CMakeFiles/mimonet_channel.dir/channel/impairments.cpp.o"
  "CMakeFiles/mimonet_channel.dir/channel/impairments.cpp.o.d"
  "CMakeFiles/mimonet_channel.dir/channel/mimo_channel.cpp.o"
  "CMakeFiles/mimonet_channel.dir/channel/mimo_channel.cpp.o.d"
  "libmimonet_channel.a"
  "libmimonet_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
