// IQ capture files and the file source/sink blocks, including a full
// record-and-replay of a PPDU through the receiver.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "channel/mimo_channel.hpp"
#include "flowgraph/blocks.hpp"
#include "receive_util.hpp"
#include "flowgraph/graph.hpp"
#include "trace/file_blocks.hpp"
#include "trace/iq_file.hpp"
#include "wifi/psdu.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("mimonet_trace_test_" + std::to_string(::getpid()) + ".miq");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(TraceTest, WriteReadRoundTrip) {
  std::vector<cf32> samples(1234);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = cf32(static_cast<float>(i), -static_cast<float>(i) / 2.0F);
  }
  trace::write_iq(path_, samples, 20'000'000);
  const auto cap = trace::read_iq(path_);
  EXPECT_EQ(cap.sample_rate_hz, 20'000'000U);
  ASSERT_EQ(cap.samples.size(), samples.size());
  EXPECT_EQ(cap.samples[1000], samples[1000]);
}

TEST_F(TraceTest, EmptyCaptureWorks) {
  trace::write_iq(path_, {}, 1'000'000);
  const auto cap = trace::read_iq(path_);
  EXPECT_TRUE(cap.samples.empty());
  EXPECT_EQ(cap.sample_rate_hz, 1'000'000U);
}

TEST_F(TraceTest, BadMagicRejected) {
  std::FILE* f = std::fopen(path_.string().c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "not an iq file";
  std::fwrite(junk, 1, sizeof junk, f);
  std::fclose(f);
  EXPECT_THROW((void)trace::read_iq(path_), std::runtime_error);
}

TEST_F(TraceTest, MissingFileThrows) {
  EXPECT_THROW((void)trace::read_iq("/nonexistent/nowhere.miq"), std::runtime_error);
  EXPECT_THROW(trace::write_iq("/nonexistent/nowhere.miq", {}), std::runtime_error);
}

TEST_F(TraceTest, FileBlocksRoundTripThroughGraph) {
  std::vector<cf32> samples(5000);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = cf32(std::sin(0.01F * i), std::cos(0.02F * i));
  }
  // Stage 1: stream into a file sink.
  {
    auto src = std::make_shared<flowgraph::VectorSource<cf32>>(samples);
    auto snk = std::make_shared<trace::IqFileSink>(path_);
    flowgraph::Graph g;
    g.add(src);
    g.add(snk);
    g.connect<cf32>(*src, 0, *snk, 0, 512);
    flowgraph::run_single_threaded(g);
  }
  // Stage 2: replay from the file.
  auto src = std::make_shared<trace::IqFileSource>(path_);
  auto snk = std::make_shared<flowgraph::VectorSink<cf32>>();
  flowgraph::Graph g;
  g.add(src);
  g.add(snk);
  g.connect<cf32>(*src, 0, *snk, 0, 512);
  flowgraph::run_single_threaded(g);
  ASSERT_EQ(snk->data().size(), samples.size());
  EXPECT_EQ(snk->data()[4321], samples[4321]);
}

TEST_F(TraceTest, RecordedPpduReplaysAndDecodes) {
  // Record a real over-the-"air" capture to disk, then decode the replay —
  // the debugging workflow the trace module exists for.
  core::PhyConfig phy;
  phy.mcs = 4;
  const core::Transmitter tx(phy);
  const auto psdu =
      wifi::build_psdu(wifi::MacHeader{}, std::vector<std::uint8_t>(200, 0x5C));

  channel::ChannelConfig ccfg;
  ccfg.snr_db = 25.0;
  ccfg.cfo_norm = 2e-4;
  ccfg.timing_pad = 400;
  ccfg.tail_pad = 100;
  channel::MimoChannel chan(ccfg);
  const auto capture = chan.transmit(tx.transmit(psdu));

  trace::write_iq(path_, capture[0]);
  const auto replay = trace::read_iq(path_);

  core::Receiver rx(phy, 1);
  const auto pkt = testutil::receive_once(rx, {replay.samples});
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->fcs_ok);
  EXPECT_EQ(pkt->psdu, psdu);
}

}  // namespace
