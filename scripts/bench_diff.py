#!/usr/bin/env python3
"""Bench throughput regression gate.

Compares a freshly emitted bench JSON against the committed baseline at the
repo root and fails (exit 1) when any gated per-case throughput figure
regressed by more than the threshold (default 20%).

Two bench families are understood, auto-detected from the top-level "bench"
key of the new results:

  stream  (BENCH_stream.json)  — gates the "scan" table's decimated coarse
      pass and full-rate correlation kernel, ISSUE 7's real-time budget.
      End-to-end figures are decode-dominated and reported but not gated.

  hotpath (BENCH_hotpath.json) — gates the E17 e2e samples/sec cases and the
      E21 "decode" table's batched decode-only samples/sec, plus the
      batched-vs-per-symbol record-identity flags. Stage kernel figures are
      informational (the bench binary itself asserts the kernel bar).

  mu      (BENCH_mu.json) — gates the E22 multi-user sum-throughput figures:
      fresh-CSI downlink points (stale_symbols == 0) and every uplink point.
      Stale-CSI rows are the impairment sweep — small-sample PER noise
      dominates them, so they are reported but not gated (the bench binary
      itself asserts their monotonic degradation).

  harq    (BENCH_harq.json) — gates the E23 goodput figures at the pinned
      chase-combining cliff SNR (per policy) and every interference-campaign
      policy row, ISSUE 10's acceptance shape. Off-cliff sweep points are
      reported but not gated; the bench binary itself asserts the two
      load-bearing shapes (chase delivers at the cliff, evidence out-earns
      the blind baseline) and records them as "shape_ok".

Usage:
    scripts/bench_diff.py NEW.json [--baseline BASELINE.json]
                          [--threshold 0.20]

Exit codes: 0 ok / nothing to compare against, 1 regression, 2 bad input.
"""

import argparse
import json
import os
import sys

SCAN_GATED_KEYS = ("coarse_msamp_s", "full_kernel_msamp_s")
SCAN_REPORTED_KEYS = ("e2e_exhaustive_msamp_s", "e2e_twopass_msamp_s")

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def cases_by_name(table):
    return {c["bench"]: c for c in table.get("cases", [])}


def gate_ratio(failures, name, key, base_case, new_case, threshold,
               unit="Msamp/s"):
    """Print one gated figure and record a failure if it regressed."""
    b, n = base_case.get(key), new_case.get(key)
    if b is None or n is None or b <= 0:
        return
    ratio = n / b
    status = "ok"
    if ratio < 1.0 - threshold:
        status = "REGRESSION"
        failures.append(
            f"{name}.{key}: {n:.3g} vs baseline {b:.3g} {unit} "
            f"({(1.0 - ratio) * 100.0:.1f}% slower, "
            f"threshold {threshold * 100.0:.0f}%)")
    print(f"  {name:.<28s} {key:.<28s} {n:12.4g} / {b:12.4g} "
          f"{unit}  {status}")


def diff_scan(new_doc, base_doc, threshold):
    """Gate BENCH_stream.json's scan table. Returns (failures, gated_any)."""
    new_scan = new_doc.get("scan")
    base_scan = base_doc.get("scan")
    if new_scan is None:
        print("bench_diff: new results have no scan table", file=sys.stderr)
        return None, False
    if base_scan is None:
        print("bench_diff: baseline has no scan table; nothing to gate")
        return [], False
    new, base = cases_by_name(new_scan), cases_by_name(base_scan)

    failures = []
    for name, base_case in sorted(base.items()):
        new_case = new.get(name)
        if new_case is None:
            failures.append(f"{name}: case missing from new results")
            continue
        if not new_case.get("records_identical", False):
            failures.append(f"{name}: two-pass records diverged from the "
                            "exhaustive scan")
        for key in SCAN_GATED_KEYS:
            gate_ratio(failures, name, key, base_case, new_case, threshold)
        for key in SCAN_REPORTED_KEYS:
            b, n = base_case.get(key), new_case.get(key)
            if b is None or n is None or b <= 0:
                continue
            print(f"  {name:.<28s} {key:.<28s} {n:12.4g} / {b:12.4g} "
                  f"Msamp/s  (not gated)")
    return failures, True


def diff_hotpath(new_doc, base_doc, threshold):
    """Gate BENCH_hotpath.json: E17 e2e cases + E21 decode table."""
    failures = []
    gated_any = False

    # E17 e2e cases: samples/sec through the full receive chain. A file
    # emitted by E21 alone has no e2e table — skip it rather than flag every
    # baseline case as missing (each smoke gates only what its bench ran).
    if "cases" in new_doc:
        new, base = cases_by_name(new_doc), cases_by_name(base_doc)
        for name, base_case in sorted(base.items()):
            new_case = new.get(name)
            if new_case is None:
                failures.append(f"{name}: e2e case missing from new results")
                continue
            gated_any = True
            gate_ratio(failures, name, "samples_per_sec", base_case, new_case,
                       threshold, unit="samp/s")
        if not new_doc.get("all_packets_decoded", True):
            failures.append("e2e: not all packets decoded")

    # E21 decode table: batched decode-only throughput + record identity.
    new_dec = new_doc.get("decode")
    base_dec = base_doc.get("decode")
    if new_dec is not None:
        if not new_dec.get("all_records_identical", False):
            failures.append("decode: batched records diverged from the "
                            "per-symbol path")
        new_cases = cases_by_name(new_dec)
        base_cases = cases_by_name(base_dec) if base_dec is not None else {}
        for name, new_case in sorted(new_cases.items()):
            if not new_case.get("records_identical", False):
                failures.append(f"decode.{name}: batched record diverged "
                                "from the per-symbol path")
            base_case = base_cases.get(name)
            if base_case is None:
                continue
            gated_any = True
            gate_ratio(failures, f"decode.{name}", "batched_samples_per_sec",
                       base_case, new_case, threshold, unit="samp/s")
    return failures, gated_any


def diff_mu(new_doc, base_doc, threshold):
    """Gate BENCH_mu.json: fresh-CSI downlink + uplink sum throughput."""
    failures = []
    gated_any = False

    def points_by_key(doc, table):
        out = {}
        for p in doc.get(table, []):
            out[(p["users"], p.get("stale_symbols", 0))] = p
        return out

    for table in ("downlink", "uplink"):
        new, base = points_by_key(new_doc, table), points_by_key(base_doc, table)
        for key, base_pt in sorted(base.items()):
            users, stale = key
            new_pt = new.get(key)
            name = f"{table}.u{users}.stale{stale}"
            if new_pt is None:
                failures.append(f"{name}: point missing from new results")
                continue
            if table == "downlink" and stale != 0:
                # Stale rows are the impairment sweep: small-sample PER noise
                # dominates, and the bench binary itself asserts their
                # monotonic degradation. Report, don't gate.
                b = base_pt.get("sum_throughput_mbps")
                n = new_pt.get("sum_throughput_mbps")
                if b is not None and n is not None and b > 0:
                    print(f"  {name:.<28s} {'sum_throughput_mbps':.<28s} "
                          f"{n:12.4g} / {b:12.4g} Mb/s  (not gated)")
                continue
            gated_any = True
            gate_ratio(failures, name, "sum_throughput_mbps", base_pt, new_pt,
                       threshold, unit="Mb/s")
    return failures, gated_any


def diff_harq(new_doc, base_doc, threshold):
    """Gate BENCH_harq.json: cliff-SNR sweep goodput + campaign goodput."""
    failures = []
    gated_any = False

    if not new_doc.get("shape_ok", False):
        failures.append("harq: bench shape assertions failed (shape_ok false)")

    cliff = base_doc.get("cliff_snr_db")

    def points_by_key(doc):
        return {(p.get("snr_db"), p["policy"]): p
                for p in doc.get("points", [])}

    new, base = points_by_key(new_doc), points_by_key(base_doc)
    for key, base_pt in sorted(base.items(), key=str):
        snr, policy = key
        new_pt = new.get(key)
        name = f"snr{snr:g}.{policy}"
        if new_pt is None:
            failures.append(f"{name}: point missing from new results")
            continue
        if snr == cliff:
            # The acceptance point: chase must keep delivering (and earning)
            # where standalone retries cannot. gate_ratio skips baselines at
            # zero goodput (standalone below the cliff has nothing to gate).
            gated_any = True
            gate_ratio(failures, name, "goodput_mbps", base_pt, new_pt,
                       threshold, unit="Mb/s")
        else:
            b, n = base_pt.get("goodput_mbps"), new_pt.get("goodput_mbps")
            if b is not None and n is not None and b > 0:
                print(f"  {name:.<28s} {'goodput_mbps':.<28s} "
                      f"{n:12.4g} / {b:12.4g} Mb/s  (not gated)")

    new_camp = {p["policy"]: p for p in new_doc.get("interference", [])}
    base_camp = {p["policy"]: p for p in base_doc.get("interference", [])}
    for policy, base_pt in sorted(base_camp.items()):
        new_pt = new_camp.get(policy)
        name = f"interference.{policy}"
        if new_pt is None:
            failures.append(f"{name}: row missing from new results")
            continue
        gated_any = True
        gate_ratio(failures, name, "goodput_mbps", base_pt, new_pt,
                   threshold, unit="Mb/s")
    return failures, gated_any


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("new", help="freshly emitted bench JSON")
    ap.add_argument(
        "--baseline", default=None,
        help="committed baseline (default: repo-root file matching the "
        "new results' bench family)")
    ap.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("MIMONET_SCAN_DIFF_THRESHOLD", "0.20")),
        help="allowed fractional regression (default 0.20 = 20%%)")
    args = ap.parse_args()

    try:
        new_doc = load_doc(args.new)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {args.new}: {e}", file=sys.stderr)
        return 2

    family = new_doc.get("bench")
    if family == "hotpath":
        default_baseline = os.path.join(REPO_ROOT, "BENCH_hotpath.json")
        diff = diff_hotpath
    elif family == "stream":
        default_baseline = os.path.join(REPO_ROOT, "BENCH_stream.json")
        diff = diff_scan
    elif family == "mu":
        default_baseline = os.path.join(REPO_ROOT, "BENCH_mu.json")
        diff = diff_mu
    elif family == "harq":
        default_baseline = os.path.join(REPO_ROOT, "BENCH_harq.json")
        diff = diff_harq
    else:
        print(f"bench_diff: unknown bench family {family!r} in {args.new}",
              file=sys.stderr)
        return 2
    baseline = args.baseline or default_baseline

    if not os.path.exists(baseline):
        print(f"bench_diff: no baseline at {baseline}; nothing to gate")
        return 0
    try:
        base_doc = load_doc(baseline)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read baseline {baseline}: {e}",
              file=sys.stderr)
        return 2

    failures, gated_any = diff(new_doc, base_doc, args.threshold)
    if failures is None:
        return 2
    if failures:
        print(f"bench_diff: {family} throughput regressed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if gated_any:
        print(f"bench_diff: {family} throughput within "
              f"{args.threshold * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
