#include "eq/equalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mimonet::eq {

std::string_view equalizer_name(EqualizerType t) noexcept {
  switch (t) {
    case EqualizerType::kZeroForcing: return "ZF";
    case EqualizerType::kMmse: return "MMSE";
    case EqualizerType::kMaxLikelihood: return "ML";
  }
  return "?";
}

LinearEqualizer::LinearEqualizer(EqualizerType type) : type_(type) {
  if (type == EqualizerType::kMaxLikelihood) {
    throw std::invalid_argument("LinearEqualizer: use MlDetector for ML");
  }
}

void LinearEqualizer::prepare(const CMatrix& h, float noise_var, EqCoeffs& out) const {
  const std::size_t nss = h.cols();
  const std::size_t nrx = h.rows();
  out.nss = nss;
  out.nrx = nrx;
  out.mmse = (type_ == EqualizerType::kMmse);
  out.erased = false;

  const CMatrix hh = h.hermitian();
  CMatrix a = hh * h;  // nss x nss Gram matrix
  if (type_ == EqualizerType::kMmse) {
    a.add_diagonal(cf64{static_cast<double>(noise_var), 0.0});
  }
  // A rank-deficient channel (e.g. an erased LTF region estimating H = 0)
  // makes the Gram matrix singular. That is a property of the input, not a
  // programming error: report the carrier as an erasure — zero symbols with
  // effectively infinite noise — so the LLRs it produces carry no weight
  // and the receiver chain keeps going instead of unwinding mid-packet.
  CMatrix a_inv(nss, nss);
  try {
    a_inv = a.inverse();
  } catch (const std::runtime_error&) {
    out.erased = true;
    return;
  }
  out.w = a_inv * hh;  // nss x nrx

  bool nv_finite = true;
  if (type_ == EqualizerType::kZeroForcing) {
    // Unbiased; noise enhancement is nv * diag((H^H H)^-1).
    for (std::size_t i = 0; i < nss; ++i) {
      out.noise_vars[i] =
          std::max(static_cast<float>(noise_var * a_inv(i, i).real()), 1e-12F);
      nv_finite = nv_finite && std::isfinite(out.noise_vars[i]);
    }
  } else {
    // MMSE: bias-correct by the diagonal of G = W H, and account for
    // residual inter-stream interference plus filtered noise.
    const CMatrix g = out.w * h;  // nss x nss
    const CMatrix wwh = out.w * out.w.hermitian();
    for (std::size_t i = 0; i < nss; ++i) {
      const cf64 gii = g(i, i);
      const double gain_sqr = dsp::mag_sqr(gii);
      double interference = 0.0;
      for (std::size_t j = 0; j < nss; ++j) {
        if (j != i) interference += dsp::mag_sqr(g(i, j));
      }
      const double noise = static_cast<double>(noise_var) * wwh(i, i).real();
      out.g_diag[i] = gii;
      out.gain_sqr[i] = gain_sqr;
      out.noise_vars[i] = std::max(
          static_cast<float>((interference + noise) / std::max(gain_sqr, 1e-30)),
          1e-12F);
      nv_finite = nv_finite && std::isfinite(out.noise_vars[i]);
    }
  }
  // Non-finite CSI erases the carrier no matter what symbols arrive.
  if (!nv_finite) out.erased = true;
}

void LinearEqualizer::apply(const EqCoeffs& coeffs, std::span<const cf32> y,
                            std::span<cf32> symbols, std::span<float> noise_vars) {
  const std::size_t nss = coeffs.nss;
  if (symbols.size() != nss || noise_vars.size() != nss) {
    throw std::invalid_argument("LinearEqualizer::apply: wrong output span size");
  }
  const auto erase = [&] {
    for (std::size_t i = 0; i < nss; ++i) {
      symbols[i] = cf32{0.0F, 0.0F};
      noise_vars[i] = kErasedNoiseVar;
    }
  };
  if (coeffs.erased) {
    erase();
    return;
  }
  const std::size_t nrx = coeffs.nrx;
  if (y.size() != nrx) throw std::invalid_argument("equalize: y size != nrx");

  std::array<cf64, CMatrix::kMaxDim> y64;
  std::array<cf64, CMatrix::kMaxDim> x_raw;
  for (std::size_t r = 0; r < nrx; ++r) y64[r] = cf64(y[r]);
  coeffs.w.apply_into(std::span(y64).first(nrx), std::span(x_raw).first(nss));

  bool finite = true;
  for (std::size_t i = 0; i < nss; ++i) {
    const cf64 corrected =
        coeffs.mmse && (coeffs.gain_sqr[i] > 1e-30) ? x_raw[i] / coeffs.g_diag[i]
                                                    : x_raw[i];
    symbols[i] = cf32(static_cast<float>(corrected.real()),
                      static_cast<float>(corrected.imag()));
    noise_vars[i] = coeffs.noise_vars[i];
    finite = finite && std::isfinite(symbols[i].real()) &&
             std::isfinite(symbols[i].imag());
  }
  if (!finite) erase();
}

void LinearEqualizer::apply_run(const EqCoeffs& coeffs, std::span<const cf32> y_batch,
                                std::size_t n, std::span<cf32> symbols,
                                std::span<float> noise_vars) {
  const std::size_t nss = coeffs.nss;
  const std::size_t nrx = coeffs.nrx;
  if (y_batch.size() != n * nrx || symbols.size() != n * nss ||
      noise_vars.size() != n * nss) {
    throw std::invalid_argument("LinearEqualizer::apply_run: slab size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    apply(coeffs, y_batch.subspan(i * nrx, nrx), symbols.subspan(i * nss, nss),
          noise_vars.subspan(i * nss, nss));
  }
}

EqualizedCarrier LinearEqualizer::equalize(const CMatrix& h, std::span<const cf32> y,
                                           float noise_var) const {
  const std::size_t nrx = h.rows();
  if (y.size() != nrx) throw std::invalid_argument("equalize: y size != nrx");
  EqCoeffs coeffs;
  prepare(h, noise_var, coeffs);
  EqualizedCarrier out;
  out.symbols.resize(coeffs.nss);
  out.noise_vars.resize(coeffs.nss);
  apply(coeffs, y, out.symbols, out.noise_vars);
  return out;
}

MlDetector::MlDetector(const mod::Constellation& constellation, std::size_t nss)
    : constellation_(constellation), nss_(nss) {
  if (nss == 0 || nss > 2) {
    throw std::invalid_argument("MlDetector: exhaustive search supports nss 1..2");
  }
}

void MlDetector::demap(const CMatrix& h, std::span<const cf32> y, float noise_var,
                       std::span<float> llr_out) const {
  const unsigned bps = constellation_.bits_per_symbol();
  const std::size_t total_bits = nss_ * bps;
  if (llr_out.size() != total_bits) {
    throw std::invalid_argument("MlDetector::demap: wrong LLR span size");
  }
  const std::size_t nrx = h.rows();
  if (h.cols() != nss_ || y.size() != nrx) {
    throw std::invalid_argument("MlDetector::demap: dimension mismatch");
  }

  const auto& points = constellation_.points();
  const std::size_t m = points.size();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // nss <= 2 and bps <= 6, so the hypothesis minima fit on the stack.
  std::array<double, 12> min0;
  std::array<double, 12> min1;
  min0.fill(kInf);
  min1.fill(kInf);

  // Enumerate all nss-tuples of constellation labels.
  std::array<std::size_t, 2> labels{0, 0};
  const std::size_t n_hyp = (nss_ == 1) ? m : m * m;
  for (std::size_t hyp = 0; hyp < n_hyp; ++hyp) {
    labels[0] = hyp % m;
    if (nss_ == 2) labels[1] = hyp / m;

    // d = |y - H s|^2
    double d = 0.0;
    for (std::size_t r = 0; r < nrx; ++r) {
      cf64 pred{0.0, 0.0};
      for (std::size_t t = 0; t < nss_; ++t) {
        pred += h(r, t) * cf64(points[labels[t]]);
      }
      d += dsp::mag_sqr(cf64(y[r]) - pred);
    }

    for (std::size_t t = 0; t < nss_; ++t) {
      for (unsigned b = 0; b < bps; ++b) {
        const bool bit = ((labels[t] >> (bps - 1 - b)) & 1U) != 0;
        auto& slot = bit ? min1[t * bps + b] : min0[t * bps + b];
        if (d < slot) slot = d;
      }
    }
  }

  const double inv_nv = 1.0 / std::max(static_cast<double>(noise_var), 1e-12);
  for (std::size_t i = 0; i < total_bits; ++i) {
    const double llr = (min1[i] - min0[i]) * inv_nv;
    // Same erasure convention as Constellation::demap_soft: a non-finite
    // hypothesis distance (NaN/Inf input) must not emit NaN LLRs.
    llr_out[i] = std::isfinite(llr) ? static_cast<float>(llr) : 0.0F;
  }
}

std::vector<double> post_eq_sinr_db(const CMatrix& h, float noise_var,
                                    EqualizerType type) {
  const std::size_t nss = h.cols();
  const double nv = std::max(static_cast<double>(noise_var), 1e-30);
  const CMatrix gram = h.hermitian() * h;
  std::vector<double> sinr(nss);

  switch (type) {
    case EqualizerType::kZeroForcing: {
      try {
        const CMatrix inv = gram.inverse();
        for (std::size_t i = 0; i < nss; ++i) {
          sinr[i] = 1.0 / (nv * inv(i, i).real());
        }
      } catch (const std::runtime_error&) {
        // Rank-deficient channel: ZF cannot separate the streams at all;
        // report the floor instead of propagating the failure.
        std::fill(sinr.begin(), sinr.end(), 0.0);
      }
      break;
    }
    case EqualizerType::kMmse: {
      // SINR_i = 1 / [(I + H^H H / nv)^{-1}]_ii - 1.
      CMatrix b(nss, nss);
      for (std::size_t r = 0; r < nss; ++r) {
        for (std::size_t c = 0; c < nss; ++c) b(r, c) = gram(r, c) / nv;
      }
      b.add_diagonal(cf64{1.0, 0.0});
      try {
        const CMatrix inv = b.inverse();
        for (std::size_t i = 0; i < nss; ++i) {
          sinr[i] = 1.0 / inv(i, i).real() - 1.0;
        }
      } catch (const std::runtime_error&) {
        // I + H^H H / nv is singular only for a non-finite H: floor it.
        std::fill(sinr.begin(), sinr.end(), 0.0);
      }
      break;
    }
    case EqualizerType::kMaxLikelihood: {
      // Matched-filter bound (interference-free) — an upper bound for ML.
      for (std::size_t i = 0; i < nss; ++i) {
        sinr[i] = gram(i, i).real() / nv;
      }
      break;
    }
  }
  for (auto& s : sinr) {
    if (!std::isfinite(s)) s = 0.0;  // non-finite H/nv: report the floor
    s = dsp::to_db(std::max(s, 1e-12));
  }
  return sinr;
}

}  // namespace mimonet::eq
