#include "core/transmitter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "eq/alamouti.hpp"
#include "fec/ldpc.hpp"
#include "fec/scrambler.hpp"
#include "fec/viterbi.hpp"
#include "ofdm/pilots.hpp"
#include "wifi/bits.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"

namespace mimonet::core {

Transmitter::Transmitter(PhyConfig cfg)
    : cfg_(cfg),
      mcs_(cfg.mcs_info()),
      nss_(mcs_.nss),
      nsts_(cfg.n_sts()),
      constellation_(mcs_.modulation),
      parser_(mcs_.bits_per_subcarrier(), nss_),
      ht_mod_(ofdm::CarrierPlan::kHt) {
  if (cfg.stbc && nss_ != 1) {
    throw std::invalid_argument("Transmitter: STBC requires a 1-stream MCS (0-7)");
  }
  for (std::size_t iss = 0; iss < nss_; ++iss) {
    interleavers_.emplace_back(mcs_.bits_per_subcarrier(), iss, nss_);
  }
}

FrameLayout Transmitter::layout(std::size_t psdu_bytes) const {
  FrameLayout fl;
  fl.nss = nsts_;
  fl.n_data_symbols = data_symbol_count(mcs_, psdu_bytes, cfg_.fec_enabled,
                                        cfg_.stbc, cfg_.fec_type);
  return fl;
}

std::vector<std::uint8_t> Transmitter::encode_data_bits(
    std::span<const std::uint8_t> psdu) const {
  const FrameLayout fl = layout(psdu.size());

  if (cfg_.fec_enabled && cfg_.fec_type == FecType::kLdpc) {
    // LDPC packs whole codewords: SERVICE + PSDU + zero pad to a multiple
    // of k, scrambled, then one encode per codeword; zero filler bits top
    // up the last OFDM symbol.
    const std::size_t n_cw = ldpc_codeword_count(psdu.size());
    std::vector<std::uint8_t> bits(kServiceBits, 0);
    const auto psdu_bits = wifi::bytes_to_bits(psdu);
    bits.insert(bits.end(), psdu_bits.begin(), psdu_bits.end());
    bits.resize(n_cw * kLdpcK, 0);
    fec::scramble_in_place(bits, cfg_.scrambler_seed);

    static const fec::LdpcCode code;
    std::vector<std::uint8_t> coded;
    coded.reserve(fl.n_data_symbols * mcs_.coded_bits_per_symbol());
    for (std::size_t cw = 0; cw < n_cw; ++cw) {
      const auto word =
          code.encode(std::span(bits).subspan(cw * kLdpcK, kLdpcK));
      coded.insert(coded.end(), word.begin(), word.end());
    }
    coded.resize(fl.n_data_symbols * mcs_.coded_bits_per_symbol(), 0);
    return coded;
  }

  const std::size_t n_info =
      fl.n_data_symbols *
      (cfg_.fec_enabled ? mcs_.data_bits_per_symbol() : mcs_.coded_bits_per_symbol());

  // SERVICE (16 zero bits: 7 for scrambler init recovery + 9 reserved),
  // PSDU bits, tail, pad — all scrambled; the tail is then re-zeroed so the
  // BCC trellis terminates.
  std::vector<std::uint8_t> bits(kServiceBits, 0);
  const auto psdu_bits = wifi::bytes_to_bits(psdu);
  bits.insert(bits.end(), psdu_bits.begin(), psdu_bits.end());
  const std::size_t tail_pos = bits.size();
  bits.resize(n_info, 0);  // tail + pad

  fec::scramble_in_place(bits, cfg_.scrambler_seed);
  if (cfg_.fec_enabled) {
    for (std::size_t i = 0; i < kTailBits && tail_pos + i < bits.size(); ++i) {
      bits[tail_pos + i] = 0;
    }
    const auto coded = fec::conv_encode(bits);
    return fec::puncture(coded, mcs_.rate);
  }
  return bits;
}

void Transmitter::modulate_stream(std::span<const std::uint8_t> stream_bits,
                                  std::size_t iss, std::vector<cf32>& out) const {
  const auto interleaved = interleavers_[iss].interleave(stream_bits);
  const auto symbols = constellation_.map_all(interleaved);
  const std::size_t per_sym = wifi::kHtDataCarriers;
  const std::size_t n_sym = symbols.size() / per_sym;
  const float gain = wifi::tone_gain(ht_mod_.map().num_occupied());

  const int csd = wifi::ht_csd_samples(iss, nss_);
  for (std::size_t n = 0; n < n_sym; ++n) {
    const auto pilots = ofdm::ht_data_pilots(nss_, iss, n);
    const std::size_t base = out.size();
    ht_mod_.modulate(std::span(symbols).subspan(n * per_sym, per_sym),
                     std::span<const cf32, 4>(pilots), out, csd);
    for (std::size_t i = base; i < out.size(); ++i) out[i] *= gain;
  }
}

void Transmitter::modulate_stbc(std::span<const std::uint8_t> stream_bits,
                                std::vector<cf32>& chain0,
                                std::vector<cf32>& chain1) const {
  const auto interleaved = interleavers_[0].interleave(stream_bits);
  const auto symbols = constellation_.map_all(interleaved);
  const std::size_t per_sym = wifi::kHtDataCarriers;
  const std::size_t n_sym = symbols.size() / per_sym;
  if (n_sym % 2 != 0) {
    throw std::logic_error("modulate_stbc: symbol count must be even");
  }
  const float gain = wifi::tone_gain(ht_mod_.map().num_occupied());
  const int csd0 = wifi::ht_csd_samples(0, 2);
  const int csd1 = wifi::ht_csd_samples(1, 2);

  std::vector<cf32> sts1_data(per_sym);
  std::vector<cf32> sts2_data(per_sym);
  for (std::size_t m = 0; m < n_sym; m += 2) {
    // First symbol of the pair.
    for (std::size_t pass = 0; pass < 2; ++pass) {
      const std::size_t n = m + pass;
      for (std::size_t i = 0; i < per_sym; ++i) {
        const cf32 d1 = symbols[m * per_sym + i];
        const cf32 d2 = symbols[(m + 1) * per_sym + i];
        const auto mapped = eq::alamouti_map(d1, d2);
        sts1_data[i] = (pass == 0) ? mapped.sts1_first : mapped.sts1_second;
        sts2_data[i] = (pass == 0) ? mapped.sts2_first : mapped.sts2_second;
      }
      const auto p0 = ofdm::ht_data_pilots(2, 0, n);
      const auto p1 = ofdm::ht_data_pilots(2, 1, n);
      const std::size_t b0 = chain0.size();
      ht_mod_.modulate(sts1_data, std::span<const cf32, 4>(p0), chain0, csd0);
      for (std::size_t i = b0; i < chain0.size(); ++i) chain0[i] *= gain;
      const std::size_t b1 = chain1.size();
      ht_mod_.modulate(sts2_data, std::span<const cf32, 4>(p1), chain1, csd1);
      for (std::size_t i = b1; i < chain1.size(); ++i) chain1[i] *= gain;
    }
  }
}

void Transmitter::append_legacy_symbol(std::span<const cf32> carriers48,
                                       std::size_t polarity_index, int csd,
                                       std::vector<cf32>& out) const {
  if (carriers48.size() != wifi::kLegacyDataCarriers) {
    throw std::invalid_argument("append_legacy_symbol: need 48 carriers");
  }
  static const ofdm::SubcarrierMap legacy_map(ofdm::CarrierPlan::kLegacy);
  std::vector<cf32> grid(ofdm::kFftSize, cf32{0.0F, 0.0F});
  for (std::size_t i = 0; i < carriers48.size(); ++i) {
    grid[legacy_map.data_bins()[i]] = carriers48[i];
  }
  const auto pilots = ofdm::legacy_pilot_values(polarity_index);
  for (std::size_t p = 0; p < 4; ++p) {
    grid[legacy_map.pilot_bins()[p]] = pilots[p];
  }
  wifi::apply_cyclic_shift(grid, csd);

  static const dsp::FftPlan plan(ofdm::kFftSize);
  const std::size_t base = out.size();
  ofdm::SymbolModulator::modulate_grid(plan, grid, ofdm::kCpLen, out);
  const float gain = wifi::tone_gain(52);
  for (std::size_t i = base; i < out.size(); ++i) out[i] *= gain;
}

std::vector<std::vector<cf32>> Transmitter::transmit(
    std::span<const std::uint8_t> psdu) const {
  if (psdu.size() > wifi::kMaxPsduLen) {
    throw std::invalid_argument("Transmitter: PSDU too large");
  }
  const FrameLayout fl = layout(psdu.size());

  // SIG field contents.
  wifi::LSig lsig;
  // Spoofed legacy length so 11a devices defer for the whole PPDU
  // (802.11n eq. 20-11 shape): LENGTH = ceil((TXTIME - 20us) / 4us) * 3 - 3.
  const double txtime_us = fl.airtime_us();
  const auto spoof =
      static_cast<long>(std::ceil((txtime_us - 20.0) / 4.0)) * 3 - 3;
  lsig.length = static_cast<std::uint16_t>(std::clamp<long>(spoof, 0, 0xFFF));
  const auto lsig_bits = wifi::encode_lsig(lsig);
  const auto lsig_carriers = wifi::map_sig_field(lsig_bits, /*qbpsk=*/false);

  wifi::HtSig htsig;
  htsig.mcs = static_cast<std::uint8_t>(cfg_.mcs);
  htsig.length = static_cast<std::uint16_t>(psdu.size());
  htsig.fec_coding = cfg_.fec_enabled && cfg_.fec_type == FecType::kLdpc;
  htsig.stbc = cfg_.stbc ? 1 : 0;  // N_STS - N_SS
  const auto htsig_bits = wifi::encode_htsig(htsig);
  const auto htsig_carriers = wifi::map_sig_field(htsig_bits, /*qbpsk=*/true);

  // Data bits -> per-stream coded bits.
  const auto coded = encode_data_bits(psdu);
  const auto streams = parser_.parse(coded);

  std::vector<std::vector<cf32>> out(nsts_);
  for (std::size_t sts = 0; sts < nsts_; ++sts) {
    auto& chain = out[sts];
    chain.reserve(fl.total_samples());

    // Legacy preamble (per-chain CSD).
    const auto lstf = wifi::make_lstf(sts, nsts_);
    chain.insert(chain.end(), lstf.begin(), lstf.end());
    const auto lltf = wifi::make_lltf(sts, nsts_);
    chain.insert(chain.end(), lltf.begin(), lltf.end());

    // L-SIG (polarity index 0) and HT-SIG (indices 1, 2), legacy CSD.
    const int csd = wifi::legacy_csd_samples(sts, nsts_);
    append_legacy_symbol(lsig_carriers, 0, csd, chain);
    append_legacy_symbol(std::span(htsig_carriers).first(48), 1, csd, chain);
    append_legacy_symbol(std::span(htsig_carriers).subspan(48, 48), 2, csd, chain);

    // HT preamble (per space-time-stream HT CSD + P matrix).
    const auto htstf = wifi::make_htstf(sts, nsts_);
    chain.insert(chain.end(), htstf.begin(), htstf.end());
    const auto htltfs = wifi::make_htltfs(sts, nsts_);
    chain.insert(chain.end(), htltfs.begin(), htltfs.end());
  }

  // HT data symbols.
  if (cfg_.stbc) {
    modulate_stbc(streams[0], out[0], out[1]);
  } else {
    for (std::size_t iss = 0; iss < nss_; ++iss) {
      modulate_stream(streams[iss], iss, out[iss]);
    }
  }

  // Keep total radiated power constant across stream counts.
  const float norm = 1.0F / std::sqrt(static_cast<float>(nsts_));
  for (auto& chain : out) {
    for (auto& v : chain) v *= norm;
  }
  return out;
}

}  // namespace mimonet::core
