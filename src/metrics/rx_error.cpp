#include "metrics/rx_error.hpp"

namespace mimonet::metrics {

const char* rx_error_name(RxError e) noexcept {
  switch (e) {
    case RxError::kOk: return "ok";
    case RxError::kNoSync: return "no_sync";
    case RxError::kFalseSync: return "false_sync";
    case RxError::kLsigFail: return "lsig_fail";
    case RxError::kHtsigFail: return "htsig_fail";
    case RxError::kUnsupportedMcs: return "unsupported_mcs";
    case RxError::kFcsFail: return "fcs_fail";
    case RxError::kTruncated: return "truncated";
    case RxError::kBudgetExceeded: return "budget_exceeded";
  }
  return "unknown";
}

std::size_t RxErrorCounter::total() const noexcept {
  std::size_t n = 0;
  for (const std::size_t c : counts_) n += c;
  return n;
}

}  // namespace mimonet::metrics
