# Empty dependencies file for mimonet_sync.
# This may be replaced when dependencies are built.
