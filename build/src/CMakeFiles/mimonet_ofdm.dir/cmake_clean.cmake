file(REMOVE_RECURSE
  "CMakeFiles/mimonet_ofdm.dir/ofdm/pilots.cpp.o"
  "CMakeFiles/mimonet_ofdm.dir/ofdm/pilots.cpp.o.d"
  "CMakeFiles/mimonet_ofdm.dir/ofdm/subcarriers.cpp.o"
  "CMakeFiles/mimonet_ofdm.dir/ofdm/subcarriers.cpp.o.d"
  "CMakeFiles/mimonet_ofdm.dir/ofdm/symbol.cpp.o"
  "CMakeFiles/mimonet_ofdm.dir/ofdm/symbol.cpp.o.d"
  "libmimonet_ofdm.a"
  "libmimonet_ofdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimonet_ofdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
