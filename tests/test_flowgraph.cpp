// Dataflow runtime: buffers, tags, blocks, schedulers.
#include <gtest/gtest.h>

#include <numeric>

#include "dsp/vector_ops.hpp"
#include "flowgraph/blocks.hpp"
#include "flowgraph/graph.hpp"

namespace {

using namespace mimonet::flowgraph;
using mimonet::dsp::cf32;

TEST(RingBuffer, WriteReadRoundTrip) {
  RingBuffer<int> rb(8);
  const std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(rb.write(in), 5U);
  EXPECT_EQ(rb.readable(), 5U);
  std::vector<int> out(3);
  EXPECT_EQ(rb.peek(out), 3U);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  rb.consume(3);
  EXPECT_EQ(rb.readable(), 2U);
  EXPECT_EQ(rb.read_offset(), 3U);
}

TEST(RingBuffer, RespectsCapacity) {
  RingBuffer<int> rb(4);
  std::vector<int> in(10, 7);
  EXPECT_EQ(rb.write(in), 4U);
  EXPECT_EQ(rb.writable(), 0U);
  rb.consume(2);
  EXPECT_EQ(rb.write(in), 2U);
}

TEST(RingBuffer, WrapAroundPreservesOrder) {
  RingBuffer<int> rb(4);
  std::vector<int> chunk{1, 2, 3};
  rb.write(chunk);
  rb.consume(2);
  rb.write(std::vector<int>{4, 5, 6});
  std::vector<int> out(4);
  EXPECT_EQ(rb.peek(out), 4U);
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5, 6}));
}

TEST(RingBuffer, TagsFollowOffsets) {
  RingBuffer<int> rb(16);
  rb.write(std::vector<int>(5, 0));
  Tag tag;
  tag.offset = 3;
  tag.key = "mark";
  rb.add_tag(tag);
  auto tags = rb.tags_in_next(5);
  ASSERT_EQ(tags.size(), 1U);
  EXPECT_EQ(tags[0].key, "mark");
  rb.consume(4);  // passes the tag
  EXPECT_TRUE(rb.tags_in_next(10).empty());
}

TEST(RingBuffer, DoneSemantics) {
  RingBuffer<int> rb(4);
  rb.write(std::vector<int>{1});
  rb.mark_done();
  EXPECT_TRUE(rb.writer_done());
  EXPECT_FALSE(rb.done());  // one item still unread
  rb.consume(1);
  EXPECT_TRUE(rb.done());
}

TEST(Graph, SourceToSinkDeliversEverything) {
  std::vector<cf32> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = cf32(static_cast<float>(i), 0.0F);
  }
  auto src = std::make_shared<VectorSource<cf32>>(data);
  auto snk = std::make_shared<VectorSink<cf32>>();
  Graph g;
  g.add(src);
  g.add(snk);
  g.connect<cf32>(*src, 0, *snk, 0, 256);  // small buffer forces many passes
  run_single_threaded(g);
  ASSERT_EQ(snk->data().size(), data.size());
  EXPECT_LT(mimonet::dsp::rms_error(snk->data(), data), 1e-9);
}

TEST(Graph, RepeatedSourceEmitsMultipleCopies) {
  auto src = std::make_shared<VectorSource<int>>(std::vector<int>{1, 2, 3}, 4);
  auto snk = std::make_shared<VectorSink<int>>();
  Graph g;
  g.add(src);
  g.add(snk);
  g.connect<int>(*src, 0, *snk, 0);
  run_single_threaded(g);
  EXPECT_EQ(snk->data().size(), 12U);
  EXPECT_EQ(snk->data()[3], 1);
}

TEST(Graph, HeadTruncatesStream) {
  auto src = std::make_shared<VectorSource<int>>(std::vector<int>(100, 9));
  auto head = std::make_shared<Head<int>>(37);
  auto snk = std::make_shared<VectorSink<int>>();
  Graph g;
  g.add(src);
  g.add(head);
  g.add(snk);
  g.connect<int>(*src, 0, *head, 0);
  g.connect<int>(*head, 0, *snk, 0);
  run_single_threaded(g);
  EXPECT_EQ(snk->data().size(), 37U);
}

TEST(Graph, GainBlockScales) {
  auto src = std::make_shared<VectorSource<cf32>>(
      std::vector<cf32>(50, cf32{1.0F, -1.0F}));
  auto gain = make_gain_block(2.5F);
  auto snk = std::make_shared<VectorSink<cf32>>();
  Graph g;
  g.add(src);
  g.add(gain);
  g.add(snk);
  g.connect<cf32>(*src, 0, *gain, 0);
  g.connect<cf32>(*gain, 0, *snk, 0);
  run_single_threaded(g);
  ASSERT_EQ(snk->data().size(), 50U);
  EXPECT_FLOAT_EQ(snk->data()[10].real(), 2.5F);
  EXPECT_FLOAT_EQ(snk->data()[10].imag(), -2.5F);
}

TEST(Graph, AwgnBlockAddsExpectedPower) {
  auto src = std::make_shared<VectorSource<cf32>>(
      std::vector<cf32>(100000, cf32{0.0F, 0.0F}));
  auto awgn = make_awgn_block(0.25, 42);
  auto snk = std::make_shared<VectorSink<cf32>>();
  Graph g;
  g.add(src);
  g.add(awgn);
  g.add(snk);
  g.connect<cf32>(*src, 0, *awgn, 0);
  g.connect<cf32>(*awgn, 0, *snk, 0);
  run_single_threaded(g);
  EXPECT_NEAR(mimonet::dsp::mean_power(snk->data()), 0.25, 0.01);
}

TEST(Graph, TypeMismatchIsRejectedAtConnect) {
  auto src = std::make_shared<VectorSource<int>>(std::vector<int>{1});
  auto snk = std::make_shared<VectorSink<cf32>>();
  Graph g;
  g.add(src);
  g.add(snk);
  EXPECT_THROW(g.connect<int>(*src, 0, *snk, 0), std::invalid_argument);
}

TEST(Graph, UnboundPortFailsValidation) {
  auto src = std::make_shared<VectorSource<int>>(std::vector<int>{1});
  Graph g;
  g.add(src);
  EXPECT_THROW(g.validate(), std::logic_error);
  EXPECT_THROW(run_single_threaded(g), std::logic_error);
}

TEST(Graph, DoubleConnectRejected) {
  auto src = std::make_shared<VectorSource<int>>(std::vector<int>{1});
  auto a = std::make_shared<VectorSink<int>>();
  auto b = std::make_shared<VectorSink<int>>();
  Graph g;
  g.add(src);
  g.add(a);
  g.add(b);
  g.connect<int>(*src, 0, *a, 0);
  EXPECT_THROW(g.connect<int>(*src, 0, *b, 0), std::logic_error);
}

TEST(Graph, ThreadedSchedulerMatchesSingleThreaded) {
  std::vector<cf32> data(50000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = cf32(static_cast<float>(i % 97), static_cast<float>(i % 31));
  }
  auto run_with = [&](bool threaded) {
    auto src = std::make_shared<VectorSource<cf32>>(data);
    auto gain = make_gain_block(0.5F);
    auto snk = std::make_shared<VectorSink<cf32>>();
    Graph g;
    g.add(src);
    g.add(gain);
    g.add(snk);
    g.connect<cf32>(*src, 0, *gain, 0, 1024);
    g.connect<cf32>(*gain, 0, *snk, 0, 1024);
    if (threaded) {
      run_threaded(g);
    } else {
      run_single_threaded(g);
    }
    return snk->data();
  };
  const auto a = run_with(false);
  const auto b = run_with(true);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(mimonet::dsp::rms_error(a, b), 1e-9);
}

TEST(Block, PortIntrospection) {
  auto head = std::make_shared<Head<int>>(1);
  EXPECT_EQ(head->num_inputs(), 1U);
  EXPECT_EQ(head->num_outputs(), 1U);
  EXPECT_EQ(head->input_type(0), std::type_index(typeid(int)));
  EXPECT_EQ(head->name(), "head");
}

}  // namespace
