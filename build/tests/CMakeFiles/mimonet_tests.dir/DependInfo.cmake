
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chanest.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_chanest.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_chanest.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_core_loopback.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_core_loopback.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_core_loopback.cpp.o.d"
  "/root/repo/tests/test_core_stbc.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_core_stbc.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_core_stbc.cpp.o.d"
  "/root/repo/tests/test_doppler.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_doppler.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_doppler.cpp.o.d"
  "/root/repo/tests/test_dsp_fft.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_fft.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_fft.cpp.o.d"
  "/root/repo/tests/test_dsp_fir_correlator.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_fir_correlator.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_fir_correlator.cpp.o.d"
  "/root/repo/tests/test_dsp_rng_stats.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_rng_stats.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_rng_stats.cpp.o.d"
  "/root/repo/tests/test_dsp_spectrum.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_spectrum.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_spectrum.cpp.o.d"
  "/root/repo/tests/test_dsp_vector_ops.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_vector_ops.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_dsp_vector_ops.cpp.o.d"
  "/root/repo/tests/test_eq.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_eq.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_eq.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_fec.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_fec.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_fec.cpp.o.d"
  "/root/repo/tests/test_fec_ldpc.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_fec_ldpc.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_fec_ldpc.cpp.o.d"
  "/root/repo/tests/test_flowgraph.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_flowgraph.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_flowgraph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_mac.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_mac.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_mac.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mod_constellation.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_mod_constellation.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_mod_constellation.cpp.o.d"
  "/root/repo/tests/test_ofdm.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_ofdm.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_ofdm.cpp.o.d"
  "/root/repo/tests/test_phy_blocks.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_phy_blocks.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_phy_blocks.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_sync.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_wifi_framing.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_wifi_framing.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_wifi_framing.cpp.o.d"
  "/root/repo/tests/test_wifi_preamble.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_wifi_preamble.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_wifi_preamble.cpp.o.d"
  "/root/repo/tests/test_wifi_signal_fields.cpp" "tests/CMakeFiles/mimonet_tests.dir/test_wifi_signal_fields.cpp.o" "gcc" "tests/CMakeFiles/mimonet_tests.dir/test_wifi_signal_fields.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mimonet_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_chanest.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_ofdm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_eq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_mod.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_flowgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
