// FEC layer: scrambler, convolutional code, puncturing, Viterbi, CRCs.
#include <gtest/gtest.h>

#include <random>

#include "dsp/lfsr.hpp"
#include "fec/convolutional.hpp"
#include "fec/crc.hpp"
#include "fec/scrambler.hpp"
#include "fec/viterbi.hpp"

namespace {

using namespace mimonet::fec;

std::vector<std::uint8_t> random_bits(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng() & 1U);
  return bits;
}

// ------------------------------------------------------------- scrambler

TEST(Scrambler, IsItsOwnInverse) {
  auto bits = random_bits(500, 1);
  const auto original = bits;
  scramble_in_place(bits, 0x5D);
  EXPECT_NE(bits, original);  // actually changed something
  scramble_in_place(bits, 0x5D);
  EXPECT_EQ(bits, original);
}

TEST(Scrambler, ZeroSeedRejected) {
  std::vector<std::uint8_t> bits(8, 0);
  EXPECT_THROW(scramble_in_place(bits, 0), std::invalid_argument);
  EXPECT_THROW(scramble_in_place(bits, 0x80), std::invalid_argument);  // 7-bit zero
}

TEST(Scrambler, SequenceHasPeriod127) {
  const auto seq = scrambler_sequence(0x7F, 254);
  for (std::size_t i = 0; i < 127; ++i) {
    EXPECT_EQ(seq[i], seq[i + 127]) << "position " << i;
  }
}

TEST(Scrambler, SequenceIsBalanced) {
  const auto seq = scrambler_sequence(0x7F, 127);
  std::size_t ones = 0;
  for (const auto b : seq) ones += b;
  // Maximal-length sequence of a degree-7 LFSR: 64 ones, 63 zeros.
  EXPECT_EQ(ones, 64U);
}

TEST(Scrambler, DifferentSeedsGiveShiftedSequences) {
  const auto a = scrambler_sequence(0x01, 64);
  const auto b = scrambler_sequence(0x55, 64);
  EXPECT_NE(a, b);
}

TEST(Scrambler, AllSeedsGeneratePeriod127) {
  // Every non-zero state lies on the same maximal cycle.
  for (std::uint32_t seed = 1; seed < 128; ++seed) {
    auto lfsr = mimonet::dsp::make_dot11_scrambler_lfsr(seed);
    const std::uint32_t start = lfsr.state();
    std::size_t period = 0;
    do {
      lfsr.next();
      ++period;
    } while (lfsr.state() != start && period < 200);
    EXPECT_EQ(period, 127U) << "seed " << seed;
  }
}

// ---------------------------------------------------- convolutional code

TEST(ConvEncode, ImpulseGivesGeneratorPolynomials) {
  // A single 1 followed by zeros reproduces the taps of g0/g1 over time.
  std::vector<std::uint8_t> impulse(7, 0);
  impulse[0] = 1;
  const auto coded = conv_encode(impulse);
  ASSERT_EQ(coded.size(), 14U);
  // g0 = 133 octal = 1011011 (MSB..LSB over shift register)
  const std::uint8_t g0_bits[7] = {1, 0, 1, 1, 0, 1, 1};
  const std::uint8_t g1_bits[7] = {1, 1, 1, 1, 0, 0, 1};  // 171 octal
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(coded[2 * i], g0_bits[i]) << "g0 step " << i;
    EXPECT_EQ(coded[2 * i + 1], g1_bits[i]) << "g1 step " << i;
  }
}

TEST(ConvEncode, RateIsOneHalf) {
  const auto coded = conv_encode(random_bits(100, 2));
  EXPECT_EQ(coded.size(), 200U);
}

TEST(Puncture, LengthsMatchRates) {
  const auto coded = conv_encode(random_bits(120, 3));  // 240 coded bits
  EXPECT_EQ(puncture(coded, CodeRate::kR1_2).size(), 240U);
  EXPECT_EQ(puncture(coded, CodeRate::kR2_3).size(), 180U);
  EXPECT_EQ(puncture(coded, CodeRate::kR3_4).size(), 160U);
  EXPECT_EQ(puncture(coded, CodeRate::kR5_6).size(), 144U);
}

TEST(Puncture, DepunctureRestoresPositions) {
  std::vector<std::uint8_t> coded(24);
  for (std::size_t i = 0; i < coded.size(); ++i) coded[i] = i % 2;
  const auto punctured = puncture(coded, CodeRate::kR3_4);
  std::vector<float> llrs(punctured.size());
  for (std::size_t i = 0; i < punctured.size(); ++i) {
    llrs[i] = punctured[i] != 0 ? -1.0F : 1.0F;
  }
  const auto restored = depuncture(llrs, CodeRate::kR3_4);
  const auto mask = puncture_mask(CodeRate::kR3_4);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    if (mask[i % mask.size()] != 0) {
      EXPECT_EQ(restored[i], coded[i] != 0 ? -1.0F : 1.0F);
      ++kept;
    } else {
      EXPECT_EQ(restored[i], 0.0F);  // erasure
    }
  }
  EXPECT_EQ(kept, punctured.size());
}

TEST(CodedLength, MatchesRateFractions) {
  EXPECT_EQ(coded_length(100, CodeRate::kR1_2), 200U);
  EXPECT_EQ(coded_length(100, CodeRate::kR2_3), 150U);
  EXPECT_EQ(coded_length(99, CodeRate::kR3_4), 132U);
  EXPECT_EQ(coded_length(100, CodeRate::kR5_6), 120U);
  EXPECT_THROW(coded_length(101, CodeRate::kR2_3), std::invalid_argument);
}

// ------------------------------------------------------------- Viterbi

class ViterbiRoundTrip
    : public ::testing::TestWithParam<std::tuple<CodeRate, std::size_t>> {};

TEST_P(ViterbiRoundTrip, NoiselessDecodingIsExact) {
  const auto [rate, n_bits] = GetParam();
  const ViterbiDecoder dec;
  const auto bits = random_bits(n_bits, static_cast<unsigned>(n_bits));
  const auto coded = encode_with_tail(bits, rate);
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] != 0 ? -4.0F : 4.0F;
  }
  const auto decoded = decode_with_tail(llrs, rate, dec);
  ASSERT_EQ(decoded.size(), bits.size());
  EXPECT_EQ(decoded, bits);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndLengths, ViterbiRoundTrip,
    ::testing::Combine(::testing::Values(CodeRate::kR1_2, CodeRate::kR2_3,
                                         CodeRate::kR3_4, CodeRate::kR5_6),
                       ::testing::Values(10, 48, 100, 720, 1000)));

TEST(Viterbi, CorrectsIsolatedHardErrors) {
  const ViterbiDecoder dec;
  const auto bits = random_bits(200, 9);
  auto coded = encode_with_tail(bits, CodeRate::kR1_2);
  // Flip well-separated bits (within free distance 10 correction power).
  for (const std::size_t pos : {5U, 60U, 120U, 200U, 300U}) coded[pos] ^= 1U;
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] != 0 ? -1.0F : 1.0F;
  }
  const auto decoded = decode_with_tail(llrs, CodeRate::kR1_2, dec);
  EXPECT_EQ(decoded, bits);
}

TEST(Viterbi, SoftBeatsHardUnderNoise) {
  const ViterbiDecoder dec;
  std::mt19937 rng(77);
  std::normal_distribution<float> noise(0.0F, 0.8F);
  std::size_t soft_errors = 0;
  std::size_t hard_errors = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto bits = random_bits(300, 100 + trial);
    const auto coded = encode_with_tail(bits, CodeRate::kR1_2);
    std::vector<float> soft(coded.size());
    std::vector<std::uint8_t> hard(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const float x = (coded[i] != 0 ? -1.0F : 1.0F) + noise(rng);
      soft[i] = x;
      hard[i] = x < 0.0F ? 1 : 0;
    }
    const auto d_soft = decode_with_tail(soft, CodeRate::kR1_2, dec);
    auto d_hard = dec.decode_hard(hard, true);
    d_hard.resize(d_hard.size() - 6);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      soft_errors += d_soft[i] != bits[i];
      hard_errors += d_hard[i] != bits[i];
    }
  }
  EXPECT_LE(soft_errors, hard_errors);
}

TEST(Viterbi, OddLlrCountThrows) {
  const ViterbiDecoder dec;
  std::vector<float> llrs(3);
  EXPECT_THROW(dec.decode_soft(llrs), std::invalid_argument);
}

TEST(Viterbi, UnterminatedDecodingWorks) {
  const ViterbiDecoder dec;
  const auto bits = random_bits(100, 13);
  const auto coded = conv_encode(bits);  // no tail
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] != 0 ? -1.0F : 1.0F;
  }
  const auto decoded = dec.decode_soft(llrs, /*terminated=*/false);
  ASSERT_EQ(decoded.size(), bits.size());
  // All but possibly the last few (traceback depth) bits must match.
  for (std::size_t i = 0; i + 8 < bits.size(); ++i) {
    EXPECT_EQ(decoded[i], bits[i]) << "bit " << i;
  }
}

// ------------------------------------------------------------------ CRC

TEST(Crc32, KnownCheckValue) {
  const std::string s = "123456789";
  const auto crc = crc32(std::span(reinterpret_cast<const std::uint8_t*>(s.data()),
                                   s.size()));
  EXPECT_EQ(crc, 0xCBF43926U);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(crc32({}), 0x00000000U); }

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = random_bits(256, 21);  // values 0/1 are fine as bytes
  const auto before = crc32(data);
  data[100] ^= 1U;
  EXPECT_NE(crc32(data), before);
}

TEST(Crc8Bits, DeterministicAndSensitive) {
  auto bits = random_bits(34, 31);
  const auto a = crc8_bits(bits);
  EXPECT_EQ(crc8_bits(bits), a);
  bits[17] ^= 1U;
  EXPECT_NE(crc8_bits(bits), a);
}

}  // namespace
