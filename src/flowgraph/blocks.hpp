// Reusable stream blocks: sources, sinks, head, gain, AWGN and a generic
// function-apply block — the utility layer a GNU Radio user expects.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "flowgraph/block.hpp"

namespace mimonet::flowgraph {

/// Emits a fixed vector (optionally repeated `repeat` times), then finishes.
template <typename T>
class VectorSource final : public Block {
 public:
  explicit VectorSource(std::vector<T> data, std::size_t repeat = 1)
      : Block("vector_source"), data_(std::move(data)), repeat_(repeat) {
    add_output<T>();
  }

  WorkStatus work() override {
    if (done_count_ >= repeat_ || data_.empty()) return WorkStatus::kDone;
    auto& o = this->template out<T>(0);
    bool progress = false;
    while (done_count_ < repeat_) {
      const std::size_t n = o.write(
          std::span<const T>(data_).subspan(pos_, data_.size() - pos_));
      pos_ += n;
      progress = progress || n > 0;
      if (pos_ < data_.size()) {
        return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
      }
      pos_ = 0;
      ++done_count_;
    }
    return WorkStatus::kDone;
  }

 private:
  std::vector<T> data_;
  std::size_t repeat_;
  std::size_t pos_ = 0;
  std::size_t done_count_ = 0;
};

/// Collects everything into a vector.
template <typename T>
class VectorSink final : public Block {
 public:
  VectorSink() : Block("vector_sink") { add_input<T>(); }

  WorkStatus work() override {
    auto& i = this->template in<T>(0);
    std::vector<T> chunk(4096);
    bool progress = false;
    while (true) {
      const std::size_t n = i.peek(chunk);
      if (n == 0) break;
      data_.insert(data_.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
      i.consume(n);
      progress = true;
    }
    if (all_inputs_done()) return WorkStatus::kDone;
    return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
  }

  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

 private:
  std::vector<T> data_;
};

/// Passes the first `count` items, then finishes (GNU Radio's head block).
template <typename T>
class Head final : public Block {
 public:
  explicit Head(std::size_t count) : Block("head"), remaining_(count) {
    add_input<T>();
    add_output<T>();
  }

  WorkStatus work() override {
    auto& i = this->template in<T>(0);
    auto& o = this->template out<T>(0);
    bool progress = false;
    while (remaining_ > 0) {
      std::vector<T> chunk(std::min<std::size_t>({4096, remaining_, o.writable()}));
      if (chunk.empty()) break;
      const std::size_t n = i.peek(chunk);
      if (n == 0) break;
      const std::size_t w = o.write(std::span<const T>(chunk.data(), n));
      i.consume(w);
      remaining_ -= w;
      progress = progress || w > 0;
      if (w < n) break;
    }
    if (remaining_ == 0 || all_inputs_done()) return WorkStatus::kDone;
    return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
  }

 private:
  std::size_t remaining_;
};

/// Applies a chunk-wise function in place: void(std::span<T>).
template <typename T>
class Apply final : public Block {
 public:
  Apply(std::string name, std::function<void(std::span<T>)> fn)
      : Block(std::move(name)), fn_(std::move(fn)) {
    add_input<T>();
    add_output<T>();
  }

  WorkStatus work() override {
    auto& i = this->template in<T>(0);
    auto& o = this->template out<T>(0);
    bool progress = false;
    while (true) {
      std::vector<T> chunk(std::min<std::size_t>({4096, i.readable(), o.writable()}));
      if (chunk.empty()) break;
      const std::size_t n = i.peek(chunk);
      if (n == 0) break;
      fn_(std::span<T>(chunk.data(), n));
      const std::size_t w = o.write(std::span<const T>(chunk.data(), n));
      i.consume(w);
      progress = progress || w > 0;
      if (w < n) break;
    }
    if (all_inputs_done()) return WorkStatus::kDone;
    return progress ? WorkStatus::kProgress : WorkStatus::kIdle;
  }

 private:
  std::function<void(std::span<T>)> fn_;
};

/// Multiplies a complex stream by a constant gain.
[[nodiscard]] std::shared_ptr<Apply<dsp::cf32>> make_gain_block(float gain);

/// Adds CN(0, noise_var) noise to a complex stream.
[[nodiscard]] std::shared_ptr<Block> make_awgn_block(double noise_var,
                                                     std::uint64_t seed);

}  // namespace mimonet::flowgraph
