file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_snrest.dir/bench_e6_snrest.cpp.o"
  "CMakeFiles/bench_e6_snrest.dir/bench_e6_snrest.cpp.o.d"
  "bench_e6_snrest"
  "bench_e6_snrest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_snrest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
