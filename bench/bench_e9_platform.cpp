// E9 — SDR platform performance (Table reconstruction): per-stage and
// full-chain processing rates of the software implementation, the numbers
// that decide whether the GNU-Radio-style pipeline keeps up with 20 Msps.
//
// Uses google-benchmark. Rates are reported as items/second counters:
// samples/s for stream stages, packets/s for the full chains.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "channel/mimo_channel.hpp"
#include "core/receiver.hpp"
#include "core/workspace.hpp"
#include "core/transmitter.hpp"
#include "dsp/fft.hpp"
#include "dsp/rng.hpp"
#include "eq/equalizer.hpp"
#include "fec/viterbi.hpp"
#include "mod/constellation.hpp"
#include "sync/packet_detector.hpp"
#include "wifi/interleaver.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;

namespace {

void BM_Fft64(benchmark::State& state) {
  const dsp::FftPlan plan(64);
  std::vector<dsp::cf32> buf(64, dsp::cf32{1.0F, -0.5F});
  for (auto _ : state) {
    plan.forward(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_Fft64);

void BM_ViterbiDecode(benchmark::State& state) {
  const fec::ViterbiDecoder dec;
  std::mt19937 rng(1);
  std::vector<std::uint8_t> bits(1000);
  for (auto& b : bits) b = rng() & 1U;
  const auto coded = fec::encode_with_tail(bits, fec::CodeRate::kR1_2);
  std::vector<float> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i) {
    llrs[i] = coded[i] != 0 ? -1.0F : 1.0F;
  }
  for (auto _ : state) {
    auto out = fec::decode_with_tail(llrs, fec::CodeRate::kR1_2, dec);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * bits.size());  // info bits/s
}
BENCHMARK(BM_ViterbiDecode);

void BM_MmseEqualize2x2(benchmark::State& state) {
  eq::CMatrix h(2, 2);
  h(0, 0) = {1.0, 0.1};
  h(0, 1) = {0.3, -0.2};
  h(1, 0) = {-0.1, 0.4};
  h(1, 1) = {0.9, 0.0};
  const eq::LinearEqualizer eq_(eq::EqualizerType::kMmse);
  const std::vector<dsp::cf32> y{{0.5F, 0.2F}, {-0.1F, 0.7F}};
  for (auto _ : state) {
    auto out = eq_.equalize(h, y, 0.01F);
    benchmark::DoNotOptimize(out.symbols.data());
  }
  state.SetItemsProcessed(state.iterations());  // subcarriers/s
}
BENCHMARK(BM_MmseEqualize2x2);

void BM_MlDetect2x2Qam16(benchmark::State& state) {
  const mod::Constellation c(mod::Modulation::kQam16);
  const eq::MlDetector det(c, 2);
  eq::CMatrix h(2, 2);
  h(0, 0) = {1.0, 0.1};
  h(0, 1) = {0.3, -0.2};
  h(1, 0) = {-0.1, 0.4};
  h(1, 1) = {0.9, 0.0};
  const std::vector<dsp::cf32> y{{0.5F, 0.2F}, {-0.1F, 0.7F}};
  std::vector<float> llrs(8);
  for (auto _ : state) {
    det.demap(h, y, 0.01F, llrs);
    benchmark::DoNotOptimize(llrs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MlDetect2x2Qam16);

void BM_Interleave(benchmark::State& state) {
  const wifi::Interleaver il(6, 0, 2);  // 64-QAM block
  std::mt19937 rng(2);
  std::vector<std::uint8_t> bits(il.block_size() * 16);
  for (auto& b : bits) b = rng() & 1U;
  for (auto _ : state) {
    auto out = il.interleave(bits);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * bits.size());
}
BENCHMARK(BM_Interleave);

void BM_PacketDetector(benchmark::State& state) {
  dsp::ComplexGaussian noise(3, 1.0);
  std::vector<dsp::cf32> capture(1 << 15);
  noise.fill(capture);
  const sync::PacketDetector det(sync::DetectorConfig{});
  for (auto _ : state) {
    auto d = det.detect(capture);
    benchmark::DoNotOptimize(&d);
  }
  state.SetItemsProcessed(state.iterations() * capture.size());  // samples/s
}
BENCHMARK(BM_PacketDetector);

void BM_TxChain(benchmark::State& state) {
  core::PhyConfig phy;
  phy.mcs = static_cast<unsigned>(state.range(0));
  const core::Transmitter tx(phy);
  const auto psdu = wifi::build_psdu(wifi::MacHeader{},
                                     std::vector<std::uint8_t>(1500, 0xA5));
  std::size_t samples = 0;
  for (auto _ : state) {
    auto streams = tx.transmit(psdu);
    samples = streams[0].size();
    benchmark::DoNotOptimize(streams.data());
  }
  state.SetItemsProcessed(state.iterations() * samples);  // samples/s per chain
  state.counters["mbit/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 1500 * 8 / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TxChain)->Arg(0)->Arg(7)->Arg(15);

void BM_RxChain(benchmark::State& state) {
  core::PhyConfig phy;
  phy.mcs = static_cast<unsigned>(state.range(0));
  const core::Transmitter tx(phy);
  const auto nss = phy.mcs_info().nss;
  channel::ChannelConfig ccfg;
  ccfg.ntx = nss;
  ccfg.nrx = nss;
  ccfg.snr_db = 25.0;
  ccfg.timing_pad = 300;
  ccfg.tail_pad = 100;
  channel::MimoChannel chan(ccfg);
  core::Receiver rx(phy, nss);
  const auto psdu = wifi::build_psdu(wifi::MacHeader{},
                                     std::vector<std::uint8_t>(1500, 0xA5));
  const auto capture = chan.transmit(tx.transmit(psdu));
  const std::vector<std::span<const dsp::cf32>> spans(capture.begin(),
                                                      capture.end());
  core::RxWorkspace ws;
  for (auto _ : state) {
    const bool got = rx.receive(spans, ws);
    benchmark::DoNotOptimize(&got);
    benchmark::DoNotOptimize(&ws.packet);
  }
  state.SetItemsProcessed(state.iterations() * capture[0].size());  // samples/s
  state.counters["mbit/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 1500 * 8 / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RxChain)->Arg(0)->Arg(7)->Arg(15);

// Console output as usual, plus one JSON point per benchmark run so the
// suite-level BENCH_*.json collection covers the platform numbers too.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      double ips = -1.0;
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        ips = it->second.value;
      }
      char obj[256];
      std::snprintf(obj, sizeof obj,
                    "%s{\"name\": \"%s\", \"items_per_second\": %.6g, "
                    "\"real_time_ns\": %.6g}",
                    first_ ? "" : ", ", run.benchmark_name().c_str(), ips,
                    run.GetAdjustedRealTime());
      points += obj;
      first_ = false;
    }
  }
  std::string points = "[";

 private:
  bool first_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollector collector;
  benchmark::RunSpecifiedBenchmarks(&collector);
  bench::JsonReport report("e9_platform");
  report.raw("points", collector.points + "]").emit();
  return 0;
}
