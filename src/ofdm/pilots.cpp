#include "ofdm/pilots.hpp"

#include <stdexcept>

#include "fec/scrambler.hpp"

namespace mimonet::ofdm {

namespace {

// The polarity sequence is 127-periodic; precompute one period. Sequence
// bit 0 -> +1, bit 1 -> -1.
const std::array<float, 127>& polarity_table() {
  static const std::array<float, 127> table = [] {
    std::array<float, 127> t{};
    const auto seq = fec::scrambler_sequence(0x7F, 127);
    for (std::size_t i = 0; i < 127; ++i) t[i] = (seq[i] != 0) ? -1.0F : 1.0F;
    return t;
  }();
  return table;
}

}  // namespace

float pilot_polarity(std::size_t symbol_index) noexcept {
  return polarity_table()[symbol_index % 127];
}

std::array<float, 4> pilot_pattern(std::size_t nss, std::size_t iss) {
  if (iss >= nss) throw std::invalid_argument("pilot_pattern: iss >= nss");
  switch (nss) {
    case 1:
      return {1.0F, 1.0F, 1.0F, -1.0F};  // legacy/HT single stream
    case 2:
      // 802.11n Table 20-19, N_STS = 2, 20 MHz.
      return (iss == 0) ? std::array<float, 4>{1.0F, 1.0F, -1.0F, -1.0F}
                        : std::array<float, 4>{1.0F, -1.0F, -1.0F, 1.0F};
    case 3:
      switch (iss) {
        case 0: return {1.0F, 1.0F, -1.0F, -1.0F};
        case 1: return {1.0F, -1.0F, 1.0F, -1.0F};
        default: return {-1.0F, 1.0F, 1.0F, -1.0F};
      }
    case 4:
      switch (iss) {
        case 0: return {1.0F, 1.0F, 1.0F, -1.0F};
        case 1: return {1.0F, 1.0F, -1.0F, 1.0F};
        case 2: return {1.0F, -1.0F, 1.0F, 1.0F};
        default: return {-1.0F, 1.0F, 1.0F, 1.0F};
      }
    default:
      throw std::invalid_argument("pilot_pattern: nss must be 1..4");
  }
}

std::array<cf32, 4> pilot_values(std::size_t nss, std::size_t iss,
                                 std::size_t symbol_index) {
  const auto pattern = pilot_pattern(nss, iss);
  const float pol = pilot_polarity(symbol_index);
  std::array<cf32, 4> out{};
  for (std::size_t p = 0; p < 4; ++p) {
    // The per-stream pattern rotates across the 4 pilot tones each symbol.
    out[p] = cf32(pol * pattern[(p + symbol_index) % 4], 0.0F);
  }
  return out;
}

std::array<cf32, 4> legacy_pilot_values(std::size_t symbol_index) {
  const float pol = pilot_polarity(symbol_index);
  return {cf32(pol, 0.0F), cf32(pol, 0.0F), cf32(pol, 0.0F), cf32(-pol, 0.0F)};
}

std::array<cf32, 4> ht_data_pilots(std::size_t nss, std::size_t iss,
                                   std::size_t data_symbol_index) {
  const auto pattern = pilot_pattern(nss, iss);
  const float pol = pilot_polarity(3 + data_symbol_index);
  std::array<cf32, 4> out{};
  for (std::size_t p = 0; p < 4; ++p) {
    out[p] = cf32(pol * pattern[(p + data_symbol_index) % 4], 0.0F);
  }
  return out;
}

}  // namespace mimonet::ofdm
