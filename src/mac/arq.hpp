// A compact stop-and-wait ARQ MAC over the MIMONet PHY: data frames one
// way, ACK frames the other, retransmission on timeout — the network-level
// layer the paper's "MIMONet SDR platform for network-level exploitation of
// MIMO technology" motivates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/mimo_channel.hpp"
#include "core/phy_config.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "wifi/psdu.hpp"

namespace mimonet::mac {

struct ArqConfig {
  core::PhyConfig data_phy{};   ///< PHY used for data frames
  core::PhyConfig ack_phy{};    ///< PHY for ACKs (defaults to MCS 0: robust)
  channel::ChannelConfig forward{};  ///< station -> peer
  channel::ChannelConfig reverse{};  ///< peer -> station (ACK path)
  unsigned max_retries = 7;     ///< retransmissions before giving up
  std::uint64_t seed = 1;
};

/// Outcome of one MSDU delivery attempt.
struct DeliveryReport {
  bool delivered = false;       ///< an ACK eventually came back
  bool duplicate_at_peer = false;  ///< peer saw the frame more than once
  unsigned transmissions = 0;   ///< 1 = first try succeeded
  double airtime_us = 0.0;      ///< data + ACK air time spent, all tries
};

/// Aggregate MAC statistics.
struct ArqStats {
  std::size_t msdus = 0;
  std::size_t delivered = 0;
  std::size_t retransmissions = 0;
  std::size_t duplicates = 0;   ///< frames the peer had to de-duplicate
  double airtime_us = 0.0;
  double delivered_bits = 0.0;

  [[nodiscard]] double goodput_mbps() const noexcept {
    return airtime_us > 0.0 ? delivered_bits / airtime_us : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return msdus > 0 ? 1.0 - static_cast<double>(delivered) /
                                 static_cast<double>(msdus)
                     : 0.0;
  }
};

/// Simulates a bidirectional stop-and-wait link between one station and one
/// peer, including the ACK channel. Sequence numbers de-duplicate data
/// frames whose ACK was lost.
class StopAndWaitLink {
 public:
  explicit StopAndWaitLink(ArqConfig cfg);

  /// Deliver one MSDU (payload bytes); updates stats().
  DeliveryReport send(std::span<const std::uint8_t> msdu);

  /// Payloads the peer accepted, in order, de-duplicated.
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& received() const noexcept {
    return peer_rx_log_;
  }

  [[nodiscard]] const ArqStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArqConfig& config() const noexcept { return cfg_; }

 private:
  /// One PHY exchange in a direction; returns the decoded PSDU on success.
  [[nodiscard]] std::optional<wifi::ParsedPsdu> phy_exchange(
      const core::Transmitter& tx, channel::MimoChannel& chan,
      const core::Receiver& rx, const wifi::MacHeader& hdr,
      std::span<const std::uint8_t> payload, double& airtime_us);

  ArqConfig cfg_;
  core::Transmitter data_tx_;
  core::Receiver data_rx_;
  core::Transmitter ack_tx_;
  core::Receiver ack_rx_;
  channel::MimoChannel forward_;
  channel::MimoChannel reverse_;
  std::uint16_t seq_ = 0;
  std::optional<std::uint16_t> peer_last_seq_;
  std::vector<std::vector<std::uint8_t>> peer_rx_log_;
  ArqStats stats_;
};

/// ACK frame_control marker (control frame subtype ACK, simplified).
inline constexpr std::uint16_t kAckFrameControl = 0x00D4;

}  // namespace mimonet::mac
