#include "core/receiver_farm.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/workspace.hpp"

namespace mimonet::core {

void ReceiverFarm::RecordBuffer::push(const StreamEvent& ev) {
  if (used == recs.size()) recs.emplace_back();
  StreamRecord& r = recs[used++];
  r.offset = ev.offset;
  r.error = ev.error;
  r.has_packet = ev.packet != nullptr;
  if (r.has_packet) {
    // Copy-assignment reuses the record's vector capacities, so a warm
    // buffer records a packet without touching the heap.
    r.packet = *ev.packet;
  }
}

ReceiverFarm::ReceiverFarm(PhyConfig phy, std::size_t nrx,
                           ReceiveSessionConfig cfg)
    : cfg_(cfg),
      engine_(phy, nrx, cfg.scan_config()),
      nrx_(nrx),
      seam_(cfg.resolved_seam(phy)) {
  const std::size_t n = cfg_.resolved_workers();
  workers_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->ws = std::make_unique<RxWorkspace>();
  }
  // Spawn only after every Worker exists: a thief walks the whole vector.
  for (std::size_t w = 0; w < n; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

ReceiverFarm::~ReceiverFarm() {
  {
    std::lock_guard<std::mutex> lk(pool_m_);
    stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

bool ReceiverFarm::pop_own(std::size_t w, std::size_t& idx) {
  Worker& wk = *workers_[w];
  std::lock_guard<std::mutex> lk(wk.m);
  if (wk.head >= wk.q.size()) return false;
  idx = wk.q[wk.head++];
  return true;
}

bool ReceiverFarm::steal(std::size_t w, std::size_t& idx) {
  const std::size_t n = workers_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Worker& victim = *workers_[(w + hop) % n];
    std::lock_guard<std::mutex> lk(victim.m);
    if (victim.head < victim.q.size()) {
      idx = victim.q.back();
      victim.q.pop_back();
      return true;
    }
  }
  return false;
}

void ReceiverFarm::execute(std::size_t w, std::size_t idx) {
  Worker& wk = *workers_[w];
  if (mode_ == Mode::kShards) {
    RecordBuffer& rb = shard_records_[idx];
    engine_.scan_window(
        capture_, *wk.ws, shard_stats_[idx],
        [&rb](const StreamEvent& ev) { rb.push(ev); }, shard_windows_[idx]);
  } else {
    const StreamJob& job = jobs_[idx];
    wk.scratch.reset();
    if (stream_event_ != nullptr && *stream_event_) {
      const StreamEventFn& fn = *stream_event_;
      const std::size_t stream = job.stream;
      engine_.scan(job.capture, *wk.ws, wk.scratch,
                   [&fn, stream](const StreamEvent& ev) { fn(stream, ev); });
    } else {
      engine_.scan(job.capture, *wk.ws, wk.scratch, [](const StreamEvent&) {});
    }
    std::lock_guard<std::mutex> lk(merge_m_);
    per_stream_[job.stream].merge(wk.scratch);
    run_total_.merge(wk.scratch);
  }
}

void ReceiverFarm::worker_loop(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(pool_m_);
      pool_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    std::size_t idx = 0;
    while (pop_own(w, idx) || steal(w, idx)) {
      try {
        execute(w, idx);
      } catch (...) {
        std::lock_guard<std::mutex> lk(pool_m_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lk(pool_m_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ReceiverFarm::dispatch(std::size_t n_jobs) {
  // Arm the completion counter BEFORE staging: a worker still draining the
  // tail of the previous epoch may legally pop and run freshly staged jobs,
  // and its decrement must land on an already-armed counter.
  {
    std::lock_guard<std::mutex> lk(pool_m_);
    remaining_ = n_jobs;
    first_error_ = nullptr;
  }
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->m);
    w->q.clear();  // keeps capacity: staging is allocation-free once warm
    w->head = 0;
  }
  for (std::size_t i = 0; i < n_jobs; ++i) {
    Worker& wk = *workers_[i % workers_.size()];
    std::lock_guard<std::mutex> lk(wk.m);
    wk.q.push_back(i);
  }
  {
    std::lock_guard<std::mutex> lk(pool_m_);
    ++epoch_;
  }
  pool_cv_.notify_all();
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(pool_m_);
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
    err = first_error_;
    first_error_ = nullptr;
  }
  mode_ = Mode::kIdle;
  if (err) std::rethrow_exception(err);
}

void ReceiverFarm::scan(std::span<const std::span<const cf32>> capture,
                        StreamStats& stats,
                        const StreamReceiver::EventFn& on_event) {
  if (capture.size() != nrx_) {
    throw std::invalid_argument("ReceiverFarm::scan: antenna count mismatch");
  }
  const std::size_t len = capture[0].size();
  for (const auto& s : capture) {
    if (s.size() != len) {
      throw std::invalid_argument("ReceiverFarm::scan: ragged capture");
    }
  }
  if (cfg_.max_packets != 0) {
    throw std::invalid_argument(
        "ReceiverFarm::scan: max_packets has no per-shard meaning; use a "
        "single-worker session");
  }

  const std::size_t n_shards = cfg_.resolved_shards();
  shard_windows_.clear();
  for (std::size_t i = 0; i < n_shards; ++i) {
    const std::size_t own_begin = len * i / n_shards;
    const std::size_t own_end = len * (i + 1) / n_shards;
    if (own_begin == own_end) continue;  // degenerate shard of a tiny capture
    ScanWindow win;
    win.own_begin = own_begin;
    win.own_end = own_end;
    win.begin = own_begin > seam_ ? own_begin - seam_ : 0;
    win.stop = own_end;
    win.visible_end = std::min(len, own_end + seam_);
    win.count_samples = false;  // counted once at merge, not per window
    shard_windows_.push_back(win);
  }
  const std::size_t n_win = shard_windows_.size();
  if (shard_stats_.size() < n_win) shard_stats_.resize(n_win);
  if (shard_records_.size() < n_win) shard_records_.resize(n_win);
  for (std::size_t j = 0; j < n_win; ++j) {
    shard_stats_[j].reset();
    shard_records_[j].clear();
  }

  stats.samples_scanned += len;
  if (n_win == 0) return;

  capture_ = capture;
  mode_ = Mode::kShards;
  dispatch(n_win);

  // Merge in shard order: ownership partitions [0, len) in ascending
  // ranges, so concatenating per-shard events reproduces stream order.
  for (std::size_t j = 0; j < n_win; ++j) {
    stats.merge(shard_stats_[j]);
    RecordBuffer& rb = shard_records_[j];
    for (std::size_t k = 0; k < rb.used; ++k) {
      const StreamRecord& r = rb.recs[k];
      on_event(
          StreamEvent{r.offset, r.error, r.has_packet ? &r.packet : nullptr});
    }
  }
}

void ReceiverFarm::run(std::span<const StreamJob> jobs,
                       std::span<StreamStats> per_stream,
                       const StreamEventFn& on_event) {
  for (const StreamJob& job : jobs) {
    if (job.stream >= per_stream.size()) {
      throw std::out_of_range("ReceiverFarm::run: stream index out of range");
    }
    if (job.capture.size() != nrx_) {
      throw std::invalid_argument(
          "ReceiverFarm::run: job antenna count mismatch");
    }
  }
  run_total_.reset();
  if (jobs.empty()) return;
  jobs_ = jobs;
  per_stream_ = per_stream;
  stream_event_ = &on_event;
  mode_ = Mode::kStreams;
  dispatch(jobs.size());
  stream_event_ = nullptr;
}

}  // namespace mimonet::core
