#include "dsp/fft.hpp"
#include "dsp/fft_cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#define MIMONET_FFT_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace mimonet::dsp {

namespace {

bool g_force_scalar_fft = false;

// Scalar butterfly stage, the dispatch fallback and the reference the AVX2
// kernel must match bit for bit: the complex multiply is spelled out with
// one rounding per float multiply and add, and fp-contract is pinned off so
// a native build cannot fuse multiply-adds into FMAs the vector kernel does
// not use. One call runs every butterfly of one stage (fixed `half`).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("-ffp-contract=off")))
#endif
void butterflies_scalar(cf32* data, std::size_t n, std::size_t half,
                        const cf32* tw) {
  for (std::size_t start = 0; start < n; start += 2 * half) {
    cf32* lo = data + start;
    cf32* hi = lo + half;
    for (std::size_t k = 0; k < half; ++k) {
      const float wr = tw[k].real();
      const float wi = tw[k].imag();
      const float br = hi[k].real();
      const float bi = hi[k].imag();
      const float xr = br * wr - bi * wi;
      const float xi = bi * wr + br * wi;
      const float ar = lo[k].real();
      const float ai = lo[k].imag();
      lo[k] = cf32(ar + xr, ai + xi);
      hi[k] = cf32(ar - xr, ai - xi);
    }
  }
}

#ifdef MIMONET_FFT_X86_DISPATCH
// AVX2 butterfly stage, 4 complex lanes per iteration on the interleaved
// re/im layout. Bit-identical to butterflies_scalar: _mm256_addsub_ps
// subtracts in the even (real) lanes and adds in the odd (imag) lanes, so
// each lane computes exactly br*wr - bi*wi / bi*wr + br*wi with the same
// two multiplies and one add/sub, no FMA contraction. Requires half >= 4;
// `half` is a power of two, so the lane loop has no remainder.
__attribute__((target("avx2"))) void butterflies_avx2(cf32* data,
                                                      std::size_t n,
                                                      std::size_t half,
                                                      const cf32* tw) {
  float* f = reinterpret_cast<float*>(data);
  const float* twf = reinterpret_cast<const float*>(tw);
  for (std::size_t start = 0; start < n; start += 2 * half) {
    float* lo = f + 2 * start;
    float* hi = lo + 2 * half;
    for (std::size_t k = 0; k + 4 <= half; k += 4) {
      const __m256 w = _mm256_loadu_ps(twf + 2 * k);
      const __m256 b = _mm256_loadu_ps(hi + 2 * k);
      const __m256 a = _mm256_loadu_ps(lo + 2 * k);
      // [br*wr, bi*wr, ...] and [bi*wi, br*wi, ...] -> addsub gives
      // [br*wr - bi*wi, bi*wr + br*wi, ...] = b * w per lane pair.
      const __m256 t1 = _mm256_mul_ps(b, _mm256_moveldup_ps(w));
      const __m256 t2 = _mm256_mul_ps(_mm256_permute_ps(b, 0xB1),
                                      _mm256_movehdup_ps(w));
      const __m256 bw = _mm256_addsub_ps(t1, t2);
      _mm256_storeu_ps(lo + 2 * k, _mm256_add_ps(a, bw));
      _mm256_storeu_ps(hi + 2 * k, _mm256_sub_ps(a, bw));
    }
  }
}

bool have_avx2() noexcept {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}
#endif

}  // namespace

void force_scalar_fft(bool on) noexcept { g_force_scalar_fft = on; }

bool fft_kernel_is_avx2() noexcept {
#ifdef MIMONET_FFT_X86_DISPATCH
  return have_avx2() && !g_force_scalar_fft;
#else
  return false;
#endif
}

FftPlan::FftPlan(std::size_t size) : size_(size) {
  if (size < 2 || !std::has_single_bit(size)) {
    throw std::invalid_argument("FftPlan: size must be a power of two >= 2");
  }
  log2_size_ = static_cast<std::size_t>(std::countr_zero(size));

  bitrev_.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < log2_size_; ++b) {
      rev = (rev << 1U) | ((i >> b) & 1U);
    }
    bitrev_[i] = rev;
  }

  // Stage tables: the stage of length len = 2*half needs w_k = e^{-j2πk/len}
  // for k in [0, half), stored contiguously at offset half-1 (offsets 0, 1,
  // 3, 7, ... for half = 1, 2, 4, 8, ...).
  stage_tw_fwd_.resize(size - 1);
  stage_tw_inv_.resize(size - 1);
  for (std::size_t half = 1; half < size; half <<= 1U) {
    const std::size_t len = 2 * half;
    for (std::size_t k = 0; k < half; ++k) {
      const double theta = -two_pi_d * static_cast<double>(k) / static_cast<double>(len);
      const cf64 w = phasor_d(theta);
      stage_tw_fwd_[half - 1 + k] =
          cf32(static_cast<float>(w.real()), static_cast<float>(w.imag()));
      stage_tw_inv_[half - 1 + k] = std::conj(stage_tw_fwd_[half - 1 + k]);
    }
  }
}

void FftPlan::transform(std::span<const cf32> in, std::span<cf32> out, bool invert) const {
  if (in.size() != size_ || out.size() != size_) {
    throw std::invalid_argument("FftPlan: buffer size mismatch");
  }
  transform_one(in.data(), out.data(), invert);
}

void FftPlan::transform_one(const cf32* in, cf32* out, bool invert) const noexcept {
  // Bit-reversal copy. Aliasing in==out is handled by swapping pairs.
  if (in == out) {
    for (std::size_t i = 0; i < size_; ++i) {
      const std::size_t j = bitrev_[i];
      if (i < j) std::swap(out[i], out[j]);
    }
  } else {
    for (std::size_t i = 0; i < size_; ++i) out[bitrev_[i]] = in[i];
  }

  const cf32* stage_tw = (invert ? stage_tw_inv_ : stage_tw_fwd_).data();
#ifdef MIMONET_FFT_X86_DISPATCH
  const bool use_avx2 = have_avx2() && !g_force_scalar_fft;
#else
  constexpr bool use_avx2 = false;
#endif
  for (std::size_t half = 1; half < size_; half <<= 1U) {
    const cf32* tw = stage_tw + (half - 1);
#ifdef MIMONET_FFT_X86_DISPATCH
    if (use_avx2 && half >= 4) {
      butterflies_avx2(out, size_, half, tw);
      continue;
    }
#else
    (void)use_avx2;
#endif
    butterflies_scalar(out, size_, half, tw);
  }

  if (invert) {
    const float inv_n = 1.0F / static_cast<float>(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] *= inv_n;
  }
}

void FftPlan::forward(std::span<const cf32> in, std::span<cf32> out) const {
  transform(in, out, /*invert=*/false);
}

void FftPlan::forward_batch(std::span<const cf32> in, std::span<cf32> out) const {
  if (in.size() != out.size() || in.size() % size_ != 0) {
    throw std::invalid_argument("FftPlan::forward_batch: slab size mismatch");
  }
  const std::size_t n = in.size() / size_;
  for (std::size_t i = 0; i < n; ++i) {
    transform_one(in.data() + i * size_, out.data() + i * size_, /*invert=*/false);
  }
}

void FftPlan::forward_batch_strided(std::span<const cf32> in, std::size_t n,
                                    std::size_t in_stride, std::size_t window_offset,
                                    std::span<cf32> out) const {
  if (n == 0) return;
  if (in.size() < (n - 1) * in_stride + window_offset + size_ ||
      out.size() != n * size_) {
    throw std::invalid_argument("FftPlan::forward_batch_strided: size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    transform_one(in.data() + i * in_stride + window_offset,
                  out.data() + i * size_, /*invert=*/false);
  }
}

void FftPlan::inverse(std::span<const cf32> in, std::span<cf32> out) const {
  transform(in, out, /*invert=*/true);
}

std::vector<cf32> fft(std::span<const cf32> in) {
  std::vector<cf32> out(in.size());
  shared_fft_plan(in.size()).forward(in, out);
  return out;
}

std::vector<cf32> ifft(std::span<const cf32> in) {
  std::vector<cf32> out(in.size());
  shared_fft_plan(in.size()).inverse(in, out);
  return out;
}

void fftshift(std::span<cf32> buf) {
  const std::size_t half = buf.size() / 2;
  for (std::size_t i = 0; i < half; ++i) std::swap(buf[i], buf[i + half]);
}

}  // namespace mimonet::dsp
