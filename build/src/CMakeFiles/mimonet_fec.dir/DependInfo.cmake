
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/convolutional.cpp" "src/CMakeFiles/mimonet_fec.dir/fec/convolutional.cpp.o" "gcc" "src/CMakeFiles/mimonet_fec.dir/fec/convolutional.cpp.o.d"
  "/root/repo/src/fec/crc.cpp" "src/CMakeFiles/mimonet_fec.dir/fec/crc.cpp.o" "gcc" "src/CMakeFiles/mimonet_fec.dir/fec/crc.cpp.o.d"
  "/root/repo/src/fec/ldpc.cpp" "src/CMakeFiles/mimonet_fec.dir/fec/ldpc.cpp.o" "gcc" "src/CMakeFiles/mimonet_fec.dir/fec/ldpc.cpp.o.d"
  "/root/repo/src/fec/scrambler.cpp" "src/CMakeFiles/mimonet_fec.dir/fec/scrambler.cpp.o" "gcc" "src/CMakeFiles/mimonet_fec.dir/fec/scrambler.cpp.o.d"
  "/root/repo/src/fec/viterbi.cpp" "src/CMakeFiles/mimonet_fec.dir/fec/viterbi.cpp.o" "gcc" "src/CMakeFiles/mimonet_fec.dir/fec/viterbi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mimonet_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
