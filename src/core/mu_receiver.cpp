#include "core/mu_receiver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "chanest/ls_estimator.hpp"
#include "chanest/phase_tracker.hpp"
#include "chanest/snr_estimator.hpp"
#include "channel/impairments.hpp"
#include "dsp/fft.hpp"
#include "eq/equalizer.hpp"
#include "fec/scrambler.hpp"
#include "mod/constellation.hpp"
#include "ofdm/pilots.hpp"
#include "wifi/bits.hpp"
#include "wifi/interleaver.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"

namespace mimonet::core {

namespace {

/// Recover the TX scrambler seed from the 7 descrambler-sync bits (same
/// trick as the single-link receiver — each user scrambles independently,
/// so the recovery runs per stream).
std::uint32_t recover_scrambler_seed(std::span<const std::uint8_t> first7) {
  std::array<std::uint8_t, 7> seq{};
  for (std::uint32_t seed = 1; seed < 128; ++seed) {
    fec::scrambler_sequence_into(seed, seq);
    bool match = true;
    for (std::size_t i = 0; i < 7; ++i) {
      if (seq[i] != (first7[i] & 1U)) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
  return fec::kDefaultScramblerSeed;
}

void reset_mu_packet(MuRxPacket& pkt, std::size_t n_users) {
  pkt.detected = false;
  pkt.sync = {};
  pkt.snr.snr_db = 0.0;
  pkt.snr.signal_power = 0.0;
  pkt.snr.noise_variance = 0.0;
  pkt.snr.per_bin_db.clear();
  pkt.snr.per_bin_valid.clear();
  pkt.users.resize(n_users);
  for (auto& u : pkt.users) {
    u.fcs_ok = false;
    u.psdu.clear();
    u.sinr_db = 0.0;
  }
}

}  // namespace

MuUplinkReceiver::MuUplinkReceiver(PhyConfig cfg, std::size_t n_users,
                                   std::size_t nrx)
    : cfg_(cfg),
      n_users_(n_users),
      nrx_(nrx),
      mcs_(cfg.mcs_info()),
      synchronizer_(sync::FrameSyncConfig{.mode = cfg.timing_mode}),
      ht_demod_(ofdm::CarrierPlan::kHt) {
  if (n_users == 0 || n_users > 4) {
    throw std::invalid_argument("MuUplinkReceiver: n_users must be 1..4");
  }
  if (nrx < n_users || nrx > 4) {
    throw std::invalid_argument(
        "MuUplinkReceiver: need n_users <= nrx <= 4 (joint detection)");
  }
  if (mcs_.nss != 1 || cfg.stbc) {
    throw std::invalid_argument(
        "MuUplinkReceiver: users transmit a 1-stream MCS without STBC");
  }
  if (cfg.fec_enabled && cfg.fec_type == FecType::kLdpc) {
    throw std::invalid_argument("MuUplinkReceiver: BCC uplink only");
  }
}

bool MuUplinkReceiver::receive(std::span<const std::span<const cf32>> capture,
                               std::size_t psdu_bytes, MuRxWorkspace& mws) const {
  if (capture.size() != nrx_) {
    throw std::invalid_argument("MuUplinkReceiver: capture antenna count mismatch");
  }
  RxWorkspace& ws = mws.rx;
  MuRxPacket& pkt = mws.packet;
  reset_mu_packet(pkt, n_users_);

  // ---- Sync on the superposed legacy preamble: each user's L-STF/L-LTF is
  // the standard chain-u-of-U field, so the superposition keeps the
  // periodicity the detector and the LTF cross-correlator key on. ----
  const auto sync_res = synchronizer_.synchronize(capture, ws.sync);
  if (!sync_res) return false;
  pkt.sync = *sync_res;

  // Trigger-announced frame geometry: U space-time streams, every user's
  // data field the same symbol count as a 1x1 PPDU of this PSDU size.
  FrameLayout fl;
  fl.nss = n_users_;
  fl.n_data_symbols = data_symbol_count(mcs_, psdu_bytes, cfg_.fec_enabled,
                                        /*stbc=*/false, cfg_.fec_type);

  const std::size_t start = sync_res->packet_start;
  const std::size_t avail = capture[0].size() - start;
  if (avail < fl.total_samples()) return false;  // truncated capture

  // CFO-corrected, packet-aligned copy (one shared oscillator assumption:
  // the triggered uplink uses the BS reference, so one correction serves
  // every user's stream).
  ws.rx.resize(nrx_);
  for (std::size_t a = 0; a < nrx_; ++a) {
    const auto tail = capture[a].subspan(start);
    ws.rx[a].assign(tail.begin(), tail.end());
    channel::apply_cfo(ws.rx[a], -sync_res->cfo_norm);
  }

  const dsp::FftPlan& fft64 = ws.fft_cache.plan(ofdm::kFftSize);

  // ---- L-LTF noise estimate: the two repetitions of the superposition
  // differ only by noise, exactly as in the single-user case. ----
  const std::size_t lltf_payload = fl.lltf_offset() + 32;
  ws.spans.clear();
  for (const auto& a : ws.rx) {
    ws.spans.emplace_back(std::span<const cf32>(a).subspan(lltf_payload, 128));
  }
  chanest::snr_from_lltf_into(ws.spans, pkt.snr);
  const auto nv_bin =
      static_cast<float>(64.0 * std::max(pkt.snr.noise_variance, 1e-12));

  // ---- Joint HT-LTF channel estimation: the stacked nrx x U problem. ----
  const std::size_t n_ltf = fl.n_ht_ltfs();
  ws.ltf_grids.resize(nrx_, n_ltf, ofdm::kFftSize);
  for (std::size_t a = 0; a < nrx_; ++a) {
    for (std::size_t n = 0; n < n_ltf; ++n) {
      fft64.forward(std::span<const cf32>(ws.rx[a]).subspan(
                        fl.htltf_offset() + n * wifi::kHtLtfLen + ofdm::kCpLen, 64),
                    ws.ltf_grids.row(a, n));
    }
  }
  const chanest::LsChannelEstimator ls(nrx_, n_users_);
  chanest::MimoChannelEstimate& est = ws.packet.channel;
  ls.estimate_into(ws.ltf_grids, est);

  // ---- Per-bin equalizer (the "tall MIMO" inversion). ML joint detection
  // over U users is out of scope; the ML configuration falls back to MMSE
  // like the single-link receiver does above 2 streams. ----
  eq::LinearEqualizer lin_eq(cfg_.equalizer == eq::EqualizerType::kMaxLikelihood
                                 ? eq::EqualizerType::kMmse
                                 : cfg_.equalizer);
  const auto& data_bins = ht_demod_.map().data_bins();
  const auto& pilot_bins = ht_demod_.map().pilot_bins();
  ws.h_at.resize(ofdm::kFftSize);
  ws.coeffs.resize(ofdm::kFftSize);
  for (const std::size_t b : data_bins) {
    est.at_bin_into(b, ws.h_at[b]);
    lin_eq.prepare(ws.h_at[b], nv_bin, ws.coeffs[b]);
  }
  for (std::size_t u = 0; u < n_users_; ++u) {
    double acc = 0.0;
    std::size_t cnt = 0;
    for (const std::size_t b : data_bins) {
      const float nv = ws.coeffs[b].noise_vars[u];
      if (nv > 0.0F && nv < eq::kErasedNoiseVar) {
        acc += 1.0 / static_cast<double>(nv);
        ++cnt;
      }
    }
    pkt.users[u].sinr_db =
        cnt > 0 ? 10.0 * std::log10(acc / static_cast<double>(cnt)) : 0.0;
  }

  // ---- Data symbols: per-symbol FFT, pilot CPE tracking over the joint
  // pilot pattern (stream u flies ht_data_pilots(U, u, n), which is what
  // the tracker models for an est with nss == U), then per-bin equalize and
  // per-stream demap. ----
  const mod::Constellation& constellation = mod::constellation_for(mcs_.modulation);
  const unsigned bps = constellation.bits_per_symbol();
  chanest::PilotPhaseTracker tracker(est);

  ws.stream_llrs.resize(n_users_);
  for (auto& v : ws.stream_llrs) {
    v.clear();
    v.reserve(fl.n_data_symbols * wifi::kHtDataCarriers * bps);
  }
  ws.data_grid.resize(nrx_, ofdm::kFftSize);
  ws.y.resize(nrx_);
  ws.llr_buf.resize(bps);
  ws.rx_pilots.resize(nrx_);

  std::array<cf32, eq::CMatrix::kMaxDim> eq_syms{};
  std::array<float, eq::CMatrix::kMaxDim> eq_nvars{};
  for (std::size_t n = 0; n < fl.n_data_symbols; ++n) {
    const std::size_t off = fl.data_offset() + n * ofdm::kSymLen;
    for (std::size_t a = 0; a < nrx_; ++a) {
      fft64.forward(
          std::span<const cf32>(ws.rx[a]).subspan(off + ofdm::kCpLen, 64),
          ws.data_grid.row(a));
    }
    cf32 derotate{1.0F, 0.0F};
    if (cfg_.phase_tracking) {
      for (std::size_t a = 0; a < nrx_; ++a) {
        for (std::size_t p = 0; p < 4; ++p) {
          ws.rx_pilots[a][p] = ws.data_grid(a, pilot_bins[p]);
        }
      }
      const double raw = tracker.estimate_cpe(ws.rx_pilots, n);
      const double theta = tracker.track(raw);
      derotate = dsp::phasor(static_cast<float>(-theta));
    }

    for (const std::size_t bin : data_bins) {
      for (std::size_t a = 0; a < nrx_; ++a) {
        ws.y[a] = ws.data_grid(a, bin) * derotate;
      }
      eq::LinearEqualizer::apply(ws.coeffs[bin], ws.y,
                                 std::span<cf32>(eq_syms).first(n_users_),
                                 std::span<float>(eq_nvars).first(n_users_));
      for (std::size_t u = 0; u < n_users_; ++u) {
        constellation.demap_soft(eq_syms[u], eq_nvars[u],
                                 std::span<float>(ws.llr_buf).first(bps));
        for (unsigned b = 0; b < bps; ++b) {
          ws.stream_llrs[u].push_back(ws.llr_buf[b]);
        }
      }
    }
  }

  // ---- Per-user FEC: each stream is its own codeword — deinterleave with
  // the stream's geometry, then depuncture / Viterbi / descramble / FCS
  // independently. No stream merge: that is the single-link path's job. ----
  const std::size_t n_info_bits =
      fl.n_data_symbols * mcs_.data_bits_per_symbol();
  const std::size_t psdu_bits = 8 * psdu_bytes;
  pkt.detected = true;

  for (std::size_t u = 0; u < n_users_; ++u) {
    const wifi::Interleaver& il =
        wifi::cached_interleaver(mcs_.bits_per_subcarrier(), u, n_users_);
    ws.deinterleaved.resize(n_users_);
    il.deinterleave_into(ws.stream_llrs[u], ws.deinterleaved[u]);

    if (cfg_.fec_enabled) {
      fec::depuncture_into(ws.deinterleaved[u], mcs_.rate, ws.depunctured);
      ws.depunctured.resize(2 * n_info_bits, 0.0F);
      viterbi_.decode_soft_into(ws.depunctured, /*terminated=*/false,
                                ws.scrambled, ws.viterbi);
    } else {
      ws.scrambled.resize(ws.deinterleaved[u].size());
      for (std::size_t i = 0; i < ws.deinterleaved[u].size(); ++i) {
        ws.scrambled[i] = (ws.deinterleaved[u][i] < 0.0F) ? 1 : 0;
      }
    }
    if (ws.scrambled.size() < kServiceBits + psdu_bits) continue;

    const std::uint32_t seed =
        recover_scrambler_seed(std::span(ws.scrambled).first(7));
    fec::scramble_in_place(ws.scrambled, seed);
    wifi::bits_to_bytes_into(
        std::span<const std::uint8_t>(ws.scrambled).subspan(kServiceBits, psdu_bits),
        pkt.users[u].psdu);
    pkt.users[u].fcs_ok = wifi::psdu_fcs_ok(pkt.users[u].psdu);
  }
  return true;
}

}  // namespace mimonet::core
