// ARQ MACs over the MIMONet PHY: a stop-and-wait link (data frames one way,
// ACK frames the other, retransmission on timeout) and a selective-repeat
// window ARQ with exponential-backoff retransmission pacing and automatic
// MCS fallback — the network-level layer the paper's "MIMONet SDR platform
// for network-level exploitation of MIMO technology" motivates.
//
// Time is simulated: each link keeps a microsecond clock advanced by frame
// airtime and retransmission waits, and an externally scheduled fade
// (FadeSegment list) scales the channel as a function of that clock. That
// gives backoff something real to trade against: a fixed-interval
// retransmission policy burns every retry inside a long fade, while
// exponential backoff stretches the retry window past it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "channel/mimo_channel.hpp"
#include "core/link_simulator.hpp"
#include "core/phy_config.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "core/workspace.hpp"
#include "mac/link_adaptor.hpp"
#include "wifi/psdu.hpp"

namespace mimonet::mac {

/// Retransmission pacing. Enabled (the default) = exponential backoff with
/// deterministic jitter; disabled = the legacy fixed interval
/// (initial_timeout_us between every retry).
struct BackoffConfig {
  bool enabled = true;
  double initial_timeout_us = 50.0;  ///< wait before the first retransmission
  double multiplier = 2.0;           ///< growth per retry
  double max_backoff_us = 20000.0;   ///< cap on a single wait
  /// Deterministic +/- fractional jitter on each wait (decorrelates
  /// stations that collided; here it mostly exercises the code path).
  double jitter_frac = 0.1;
};

/// The wait before retransmission number `retry + 1` (retry is 0-based).
/// Pure function of its arguments: `key` seeds the jitter draw, so a fixed
/// (seed, frame, retry) triple always waits the same time.
[[nodiscard]] double backoff_delay_us(const BackoffConfig& cfg, unsigned retry,
                                      std::uint64_t key) noexcept;

/// One scheduled fade: while now_us is in [start_us, end_us) the channel's
/// power scale becomes `power_scale` (later segments override earlier ones
/// where they overlap). Outside every segment the nominal scale applies.
struct FadeSegment {
  double start_us = 0.0;
  double end_us = 0.0;
  double power_scale = 1.0;
};

/// The power scale in effect at `t_us` under `fades` (nominal otherwise).
[[nodiscard]] double fade_scale_at(std::span<const FadeSegment> fades,
                                   double t_us, double nominal) noexcept;

/// One scheduled wideband interference burst: while a frame's airtime
/// overlaps [start_us, end_us), CN(0, variance) noise is added to the
/// overlapping stretch of its capture (independent per antenna,
/// deterministic in the link seed and the frame's clock). Unlike a fade —
/// which scales the whole channel — a burst corrupts frames on an otherwise
/// healthy channel, which is exactly the case the evidence-driven adaptor
/// must not answer with an MCS fallback.
struct InterferenceSegment {
  double start_us = 0.0;
  double end_us = 0.0;
  double variance = 1.0;  ///< total complex noise variance of the burst
};

struct ArqConfig {
  core::PhyConfig data_phy{};   ///< PHY used for data frames
  core::PhyConfig ack_phy{};    ///< PHY for ACKs (defaults to MCS 0: robust)
  channel::ChannelConfig forward{};  ///< station -> peer
  channel::ChannelConfig reverse{};  ///< peer -> station (ACK path)
  unsigned max_retries = 7;     ///< retransmissions before giving up
  BackoffConfig backoff{};      ///< retransmission pacing policy
  /// Scheduled fades, applied to both directions as a function of the
  /// link's simulated clock (a physical obstruction shadows both paths).
  std::vector<FadeSegment> fades{};
  /// Scheduled interference bursts, applied to any frame (data or ACK)
  /// whose airtime overlaps a segment.
  std::vector<InterferenceSegment> interference{};
  std::uint64_t seed = 1;
};

/// Outcome of one MSDU delivery attempt.
struct DeliveryReport {
  bool delivered = false;       ///< an ACK eventually came back
  bool duplicate_at_peer = false;  ///< peer saw the frame more than once
  unsigned transmissions = 0;   ///< 1 = first try succeeded
  double airtime_us = 0.0;      ///< data + ACK air time spent, all tries
  double wait_us = 0.0;         ///< time spent waiting between retries
};

/// Aggregate MAC statistics.
struct ArqStats {
  std::size_t msdus = 0;
  std::size_t delivered = 0;
  std::size_t retransmissions = 0;
  std::size_t duplicates = 0;   ///< frames the peer had to de-duplicate
  double airtime_us = 0.0;
  double wait_us = 0.0;         ///< backoff/timeout waits (not airtime)
  double delivered_bits = 0.0;

  [[nodiscard]] double goodput_mbps() const noexcept {
    return airtime_us > 0.0 ? delivered_bits / airtime_us : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return msdus > 0 ? 1.0 - static_cast<double>(delivered) /
                                 static_cast<double>(msdus)
                     : 0.0;
  }
};

/// Simulates a bidirectional stop-and-wait link between one station and one
/// peer, including the ACK channel. Sequence numbers de-duplicate data
/// frames whose ACK was lost.
class StopAndWaitLink {
 public:
  explicit StopAndWaitLink(ArqConfig cfg);

  /// Deliver one MSDU (payload bytes); updates stats().
  DeliveryReport send(std::span<const std::uint8_t> msdu);

  /// Payloads the peer accepted, in order, de-duplicated.
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& received() const noexcept {
    return peer_rx_log_;
  }

  [[nodiscard]] const ArqStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ArqConfig& config() const noexcept { return cfg_; }
  /// Simulated clock: total airtime plus retransmission waits so far.
  [[nodiscard]] double now_us() const noexcept { return clock_us_; }

 private:
  /// One PHY exchange in a direction; returns the decoded PSDU on success.
  /// Applies the fade schedule at the current clock (against `nominal_scale`,
  /// that direction's configured power scale) and advances the clock by the
  /// frame's airtime.
  [[nodiscard]] std::optional<wifi::ParsedPsdu> phy_exchange(
      const core::Transmitter& tx, channel::MimoChannel& chan,
      const core::Receiver& rx, const wifi::MacHeader& hdr,
      std::span<const std::uint8_t> payload, double nominal_scale,
      double& airtime_us);

  ArqConfig cfg_;
  core::Transmitter data_tx_;
  core::Receiver data_rx_;
  core::Transmitter ack_tx_;
  core::Receiver ack_rx_;
  channel::MimoChannel forward_;
  channel::MimoChannel reverse_;
  core::RxWorkspace rx_ws_;  ///< warm workspace shared by both directions
  std::uint16_t seq_ = 0;
  std::optional<std::uint16_t> peer_last_seq_;
  std::vector<std::vector<std::uint8_t>> peer_rx_log_;
  ArqStats stats_;
  double clock_us_ = 0.0;
};

/// ACK frame_control marker (control frame subtype ACK, simplified).
inline constexpr std::uint16_t kAckFrameControl = 0x00D4;

/// Signed distance from `expected12` to `seq12` on the 12-bit sequence ring,
/// sign-extended into [-2048, 2047]: negative = the frame is behind the
/// expectation (duplicate / already released), positive = ahead
/// (out-of-order arrival). Exact as long as true distances stay within half
/// the ring — guaranteed by the window < 2048 bound — including across the
/// 4095 -> 0 wrap.
[[nodiscard]] constexpr int seq12_delta(std::uint16_t seq12,
                                        std::uint16_t expected12) noexcept {
  const auto diff12 = static_cast<std::uint16_t>((seq12 - expected12) & 0x0FFFU);
  return (diff12 & 0x0800U) != 0 ? static_cast<int>(diff12) - 4096
                                 : static_cast<int>(diff12);
}

/// Selective-repeat window ARQ configuration.
struct SrConfig {
  ArqConfig arq{};          ///< PHYs, channels, retry/backoff/fade policy
  std::size_t window = 4;   ///< outstanding frames (must be < 2048)
  /// MCS fallback: after this many consecutive failed data exchanges, step
  /// the data MCS down one rate within its spatial-stream group. 0 = never.
  /// (kFailureCount policy; copied over adapt.fallback_after.)
  unsigned fallback_after = 3;
  /// Recovery: after this many consecutive successful data exchanges below
  /// the configured MCS, step one rate back up. 0 = never recover.
  /// (kFailureCount policy; copied over adapt.recover_after.)
  unsigned recover_after = 8;
  /// Floor for fallback; -1 = the lowest rate of the configured MCS's
  /// spatial-stream group (nss never changes — antenna counts are fixed).
  int min_mcs = -1;
  /// HARQ chase combining: retain failed data attempts' post-merge LLRs in
  /// the workspace HarqBuffer and sum them into each retransmission's
  /// decode (see core::HarqDecode). Off = every attempt decodes standalone.
  bool harq = false;
  /// Adaptation controller (see mac/link_adaptor.hpp). adapt.policy selects
  /// the legacy failure-count baseline (default) or the evidence-driven
  /// controller; the legacy fallback_after / recover_after knobs above
  /// override the copies inside `adapt` so existing configs keep working.
  LinkAdaptorConfig adapt{};
  /// Absolute index of the first queued frame (seq = abs & 0xFFF). Lets a
  /// test start a link just below the 12-bit wrap (e.g. 4090) so a short
  /// run crosses 4095 -> 0 without queueing 4096 frames.
  std::size_t first_frame_index = 0;
};

/// Aggregate selective-repeat statistics.
struct SrStats {
  std::size_t msdus = 0;
  std::size_t delivered = 0;
  std::size_t lost = 0;            ///< abandoned after max_retries
  std::size_t retransmissions = 0;
  std::size_t duplicates = 0;
  std::size_t mcs_fallbacks = 0;   ///< downward MCS steps taken
  std::size_t mcs_recoveries = 0;  ///< upward steps after the channel improved
  std::size_t interference_holds = 0;  ///< evidence policy: bursts ridden out
  std::size_t harq_combined_ok = 0;    ///< deliveries decoded with prior LLRs
  /// attempts_hist[k] = frames finished (ACKed or abandoned) after k
  /// transmissions; the last bucket aggregates >= 8.
  std::array<std::size_t, 9> attempts_hist{};
  double airtime_us = 0.0;
  double wait_us = 0.0;
  double delivered_bits = 0.0;

  [[nodiscard]] double goodput_mbps() const noexcept {
    return airtime_us > 0.0 ? delivered_bits / airtime_us : 0.0;
  }
  [[nodiscard]] double loss_rate() const noexcept {
    return msdus > 0 ? static_cast<double>(lost) / static_cast<double>(msdus)
                     : 0.0;
  }
};

/// Selective-repeat window ARQ with per-frame retransmission state,
/// exponential-backoff pacing, in-order de-duplicated delivery at the peer,
/// and automatic MCS fallback after consecutive delivery failures (stepping
/// back up when the channel improves). Queue MSDUs, then run() to drain.
class SelectiveRepeatLink {
 public:
  explicit SelectiveRepeatLink(SrConfig cfg);

  /// Enqueue one MSDU for delivery.
  void queue(std::span<const std::uint8_t> msdu);

  /// Drive the link until every queued frame is ACKed or abandoned.
  const SrStats& run();

  /// Payloads the peer released, in order, de-duplicated. In-order release
  /// skips abandoned frames (a higher layer's loss, reported in stats().lost).
  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& received() const noexcept {
    return peer_rx_log_;
  }

  [[nodiscard]] const SrStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SrConfig& config() const noexcept { return cfg_; }
  /// The data MCS currently in use (differs from the configured one while
  /// fallback is active).
  [[nodiscard]] unsigned current_mcs() const noexcept { return current_mcs_; }
  [[nodiscard]] double now_us() const noexcept { return clock_us_; }
  /// The adaptation controller (policy per cfg.adapt), for inspecting its
  /// evidence stats (interference_holds, ...).
  [[nodiscard]] const LinkAdaptor& adaptor() const noexcept { return *adaptor_; }

  /// The link's outcome in the uniform Monte-Carlo result shape, so benches
  /// and the stress campaign report MAC runs alongside PHY sweeps: PER over
  /// MSDUs (lost = error), goodput over airtime, the per-frame attempts
  /// histogram and combined-decode successes.
  [[nodiscard]] core::LinkResult link_result() const;

 private:
  struct Slot {
    std::vector<std::uint8_t> msdu;
    std::size_t abs = 0;       ///< absolute frame index (seq = abs & 0xFFF)
    unsigned attempts = 0;
    double next_tx_us = 0.0;
    bool acked = false;
    bool abandoned = false;
  };

  [[nodiscard]] std::optional<wifi::ParsedPsdu> phy_exchange(
      const core::Transmitter& tx, channel::MimoChannel& chan,
      const core::Receiver& rx, const wifi::MacHeader& hdr,
      std::span<const std::uint8_t> payload, double nominal_scale,
      double& airtime_us, const core::HarqDecode& harq = {});
  void transmit_slot(Slot& slot);
  void peer_accept(const wifi::ParsedPsdu& frame);
  void release_in_order();
  /// Feed the data exchange's outcome (rx_ws_.packet) to the adaptor and
  /// apply its MCS / backoff decision.
  void adapt_on_data_outcome(bool delivered);
  void set_mcs(unsigned mcs);

  SrConfig cfg_;
  unsigned current_mcs_;
  unsigned min_mcs_;
  std::optional<core::Transmitter> data_tx_;  ///< rebuilt on MCS change
  core::Receiver data_rx_;                    ///< self-configures from HT-SIG
  core::Transmitter ack_tx_;
  core::Receiver ack_rx_;
  channel::MimoChannel forward_;
  channel::MimoChannel reverse_;
  core::RxWorkspace rx_ws_;  ///< warm workspace shared by both directions
  std::optional<LinkAdaptor> adaptor_;  ///< never empty after construction
  double clock_us_ = 0.0;
  double backoff_scale_ = 1.0;  ///< adaptor's stretch on retry waits

  std::vector<Slot> frames_;
  std::size_t base_ = 0;  ///< first not-yet-finished frame

  // Peer-side state.
  std::size_t peer_next_abs_ = 0;                      ///< next in-order release
  std::map<std::size_t, std::vector<std::uint8_t>> peer_reorder_;
  std::vector<std::size_t> abandoned_abs_;             ///< skipped by release
  std::vector<std::vector<std::uint8_t>> peer_rx_log_;

  SrStats stats_;
};

}  // namespace mimonet::mac
