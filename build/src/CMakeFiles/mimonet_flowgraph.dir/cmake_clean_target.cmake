file(REMOVE_RECURSE
  "libmimonet_flowgraph.a"
)
