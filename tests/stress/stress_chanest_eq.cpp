// Stress: channel estimation, SNR estimation and equalization against
// degenerate grids — all-zero LTFs (rank-zero channels), saturating and
// NaN/Inf-poisoned observations, zero and huge noise variances. Contract:
// no throw escapes, outputs are finite or follow the documented erasure /
// validity-mask conventions.
#include <gtest/gtest.h>

#include <cmath>

#include "chanest/ls_estimator.hpp"
#include "chanest/snr_estimator.hpp"
#include "eq/equalizer.hpp"
#include "mod/constellation.hpp"
#include "stress_util.hpp"
#include "wifi/preamble.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;
using stress::SeedStream;

constexpr std::uint64_t kSuiteSeed = 0x5717C45EED0002ULL;

std::vector<std::vector<cf32>> lltf_payload_set(std::uint64_t case_seed) {
  std::vector<std::vector<cf32>> set;
  set.push_back(stress::all_zero(128));
  set.push_back(stress::dc_only(128));
  set.push_back(stress::random_signal(128, case_seed));
  set.push_back(stress::saturating(128, case_seed + 1));
  auto poisoned = stress::random_signal(128, case_seed + 2);
  stress::inject_non_finite(poisoned, case_seed + 3);
  set.push_back(std::move(poisoned));
  return set;
}

void expect_sane(const chanest::SnrEstimate& est) {
  EXPECT_TRUE(std::isfinite(est.snr_db));
  EXPECT_LE(std::abs(est.snr_db), chanest::SnrEstimate::kPerBinCeilingDb);
  ASSERT_EQ(est.per_bin_db.size(), est.per_bin_valid.size());
  for (std::size_t b = 0; b < est.per_bin_db.size(); ++b) {
    if (est.bin_valid(b)) {
      EXPECT_TRUE(std::isfinite(est.per_bin_db[b]));
      EXPECT_LE(std::abs(est.per_bin_db[b]),
                chanest::SnrEstimate::kPerBinCeilingDb);
    } else {
      EXPECT_TRUE(std::isnan(est.per_bin_db[b]));
    }
  }
}

TEST(StressChanest, SnrFromLltfSurvivesAdversarialPayloads) {
  std::uint64_t c = 0;
  for (const auto& x : lltf_payload_set(kSuiteSeed + 16 * c++)) {
    const std::span<const cf32> spans[] = {std::span<const cf32>(x),
                                           std::span<const cf32>(x)};
    expect_sane(chanest::snr_from_lltf(spans));
  }
}

TEST(StressChanest, EvmEstimatorSurvivesAdversarialPairs) {
  SeedStream s(kSuiteSeed + 100);
  chanest::EvmSnrEstimator evm;
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  const cf32 poison[] = {{kNan, 0.0F}, {kInf, -kInf}, {1e38F, 1e38F},
                         {0.0F, 0.0F}};
  for (int i = 0; i < 500; ++i) {
    const auto obs = (i % 7 == 0) ? poison[s.index(4)] : s.sample();
    const auto ref = (i % 11 == 0) ? cf32{0.0F, 0.0F} : s.sample();
    evm.add(s.index(64), obs, ref);
    evm.add(obs, ref);
  }
  expect_sane(evm.estimate());
}

TEST(StressChanest, LsEstimatorSurvivesDegenerateGrids) {
  for (const std::size_t nss : {std::size_t{1}, std::size_t{2}}) {
    const std::size_t nrx = 2;
    const std::size_t n_ltf = wifi::num_ht_ltfs(nss);
    const chanest::LsChannelEstimator ls(nrx, nss);
    std::uint64_t c = 0;
    for (const int shape : {0, 1, 2}) {
      SeedStream s(kSuiteSeed + 200 + 16 * c++);
      std::vector<std::vector<std::vector<cf32>>> grids(
          nrx, std::vector<std::vector<cf32>>(n_ltf, std::vector<cf32>(64)));
      for (auto& rx : grids) {
        for (auto& sym : rx) {
          for (auto& bin : sym) {
            bin = (shape == 0) ? cf32{0.0F, 0.0F}
                               : (shape == 1) ? cf32{4.0F, -4.0F} : s.sample();
          }
        }
      }
      const auto est = ls.estimate(grids);
      ASSERT_EQ(est.h.size(), nrx);
      for (const auto& rx : est.h) {
        ASSERT_EQ(rx.size(), nss);
        for (const auto& ss : rx) {
          EXPECT_TRUE(stress::all_finite(ss));
        }
      }
      // Smoothing over a degenerate estimate must stay defined too.
      auto smoothed = est;
      const auto bins = ofdm::SubcarrierMap(ofdm::CarrierPlan::kHt).data_bins();
      chanest::smooth_frequency(smoothed, bins);
      for (const auto& rx : smoothed.h) {
        for (const auto& ss : rx) EXPECT_TRUE(stress::all_finite(ss));
      }
    }
  }
}

TEST(StressEq, LinearEqualizersSurviveDegenerateChannels) {
  SeedStream s(kSuiteSeed + 300);
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  for (const auto type :
       {eq::EqualizerType::kZeroForcing, eq::EqualizerType::kMmse}) {
    const eq::LinearEqualizer lin(type);
    for (int shape = 0; shape < 4; ++shape) {
      eq::CMatrix h(2, 2);
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t cc = 0; cc < 2; ++cc) {
          switch (shape) {
            case 0: h(r, cc) = dsp::cf64{0.0, 0.0}; break;            // rank 0
            case 1: h(r, cc) = dsp::cf64{1.0, 0.0}; break;            // rank 1
            case 2: h(r, cc) = dsp::cf64{kNan, kNan}; break;          // poisoned
            default: h(r, cc) = dsp::cf64(s.sample()); break;         // generic
          }
        }
      }
      const cf32 ys[] = {{0.0F, 0.0F}, {kNan, 1.0F}, {1e38F, -1e38F},
                         s.sample()};
      for (const auto y0 : ys) {
        const cf32 y[] = {y0, s.sample()};
        for (const float nv : {0.0F, 1e-30F, 0.01F, 1e38F}) {
          const auto out = lin.equalize(h, y, nv);
          ASSERT_EQ(out.symbols.size(), 2U);
          ASSERT_EQ(out.noise_vars.size(), 2U);
          for (std::size_t i = 0; i < 2; ++i) {
            EXPECT_TRUE(stress::is_finite(out.symbols[i]));
            EXPECT_TRUE(std::isfinite(out.noise_vars[i]));
            EXPECT_GT(out.noise_vars[i], 0.0F);
          }
        }
      }
      for (const float nv : {0.0F, 0.01F, 1e38F}) {
        for (const double sdb : eq::post_eq_sinr_db(h, nv, type)) {
          EXPECT_TRUE(std::isfinite(sdb));
        }
      }
    }
  }
}

TEST(StressEq, MlDetectorSurvivesDegenerateChannels) {
  SeedStream s(kSuiteSeed + 400);
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  const mod::Constellation qpsk(mod::Modulation::kQpsk);
  const eq::MlDetector ml(qpsk, 2);
  std::vector<float> llrs(2 * qpsk.bits_per_symbol());
  for (int shape = 0; shape < 3; ++shape) {
    eq::CMatrix h(2, 2);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t cc = 0; cc < 2; ++cc) {
        h(r, cc) = (shape == 0) ? dsp::cf64{0.0, 0.0}
                                : (shape == 1) ? dsp::cf64{kNan, 0.0}
                                               : dsp::cf64(s.sample());
      }
    }
    const cf32 y[] = {{kNan, kNan}, {1e38F, 1e38F}};
    ml.demap(h, y, 0.0F, llrs);
    EXPECT_TRUE(stress::all_finite(llrs));
  }
}

}  // namespace
