// Welch PSD and PAPR statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/rng.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet::dsp;

TEST(WelchPsd, SingleToneAppearsAtRightFrequency) {
  // Tone at +fs/8 -> bin nfft/2 + nfft/8 in DC-centered output.
  constexpr std::size_t kN = 4096;
  constexpr std::size_t kNfft = 128;
  std::vector<cf32> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = phasor(two_pi_f * 0.125F * static_cast<float>(i));
  }
  const auto psd = welch_psd_db(x, kNfft);
  ASSERT_EQ(psd.size(), kNfft);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < psd.size(); ++i) {
    if (psd[i] > psd[peak]) peak = i;
  }
  EXPECT_EQ(peak, kNfft / 2 + kNfft / 8);
}

TEST(WelchPsd, WhiteNoiseIsFlat) {
  ComplexGaussian g(5, 1.0);
  std::vector<cf32> x(1 << 16);
  g.fill(x);
  const auto psd = welch_psd_db(x, 64);
  double lo = 1e9;
  double hi = -1e9;
  for (const auto v : psd) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi - lo, 3.0);  // flat within 3 dB over many averages
}

TEST(WelchPsd, ShortInputThrows) {
  std::vector<cf32> x(10);
  EXPECT_THROW((void)welch_psd_db(x, 64), std::invalid_argument);
}

TEST(Papr, ConstantEnvelopeIsZeroDb) {
  std::vector<cf32> x(1000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = phasor(0.1F * static_cast<float>(i));
  }
  EXPECT_NEAR(papr_db(x), 0.0, 0.01);
}

TEST(Papr, SinglePeakDominates) {
  std::vector<cf32> x(100, cf32{1.0F, 0.0F});
  x[50] = cf32{10.0F, 0.0F};
  // avg power = (99 + 100)/100 = 1.99, peak = 100 -> ~17 dB.
  EXPECT_NEAR(papr_db(x), 10.0 * std::log10(100.0 / 1.99), 0.01);
}

TEST(PaprCcdf, MonotoneInProbability) {
  ComplexGaussian g(6, 1.0);
  std::vector<cf32> x(50000);
  g.fill(x);
  const double probs[] = {1e-1, 1e-2, 1e-3};
  const auto ccdf = papr_ccdf_db(x, probs);
  ASSERT_EQ(ccdf.size(), 3U);
  EXPECT_LT(ccdf[0], ccdf[1]);
  EXPECT_LT(ccdf[1], ccdf[2]);
  // Complex Gaussian: P(|x|^2/avg > t) = e^{-t}; at 1e-2, t = ln(100) = 4.6
  // -> 6.6 dB.
  EXPECT_NEAR(ccdf[1], 10.0 * std::log10(std::log(100.0)), 0.5);
}

TEST(PaprCcdf, Validation) {
  std::vector<cf32> x(10, cf32{1.0F, 0.0F});
  const double bad[] = {1.5};
  EXPECT_THROW((void)papr_ccdf_db(x, bad), std::invalid_argument);
  EXPECT_THROW((void)papr_ccdf_db({}, std::span<const double>{}),
               std::invalid_argument);
}

}  // namespace
