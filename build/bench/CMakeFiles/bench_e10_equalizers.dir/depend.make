# Empty dependencies file for bench_e10_equalizers.
# This may be replaced when dependencies are built.
