// Downlink multi-user precoding: zero-forcing (channel-inversion) weights
// computed from the per-user CSI feedback rows, normalized to unit total
// transmit power. The dual of the uplink joint detector — where the base
// station inverts the stacked channel after the air, the precoder inverts
// it before, so each single-antenna user sees (ideally) only its own
// stream through an effective scalar channel.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "dsp/types.hpp"
#include "eq/matrix.hpp"

namespace mimonet::eq {

using dsp::cf32;

/// Zero-forcing precoder W (n_tx x n_users): W = H^H (H H^H)^{-1} scaled so
/// ||W||_F = 1, where H (n_users x n_tx) stacks one flat channel row per
/// user. With that normalization the base station radiates unit total power
/// when each user PPDU has unit mean sample power, matching the single-user
/// transmitter's power convention. For the square case (n_users == n_tx,
/// the shipped MU configurations) this reduces to the normalized channel
/// inversion H^{-1} / ||H^{-1}||_F.
class Precoder {
 public:
  /// Identity pass-through for n streams (W = I / sqrt(n)): what a
  /// precoding-disabled downlink uses, and the exact single-user weight
  /// when n == 1 (W = [1]).
  [[nodiscard]] static Precoder identity(std::size_t n);

  /// Rectangular pass-through (n_tx x n_users, W(u, u) = 1 / sqrt(n_users),
  /// extra antennas silent): the shape-preserving fallback when zero
  /// forcing is impossible (degenerate channel draw).
  [[nodiscard]] static Precoder pass_through(std::size_t n_tx,
                                             std::size_t n_users);

  /// Build from the stacked channel matrix H (n_users x n_tx).
  /// @throws std::runtime_error when H H^H is singular (a user row is zero
  ///         or two users are colinear beyond double precision).
  [[nodiscard]] static Precoder zero_forcing(const CMatrix& h);

  /// Build from per-user flat CSI rows: rows[u][a] is user u's estimated
  /// channel from BS antenna a (entries beyond n_tx ignored).
  [[nodiscard]] static Precoder zero_forcing_rows(
      std::span<const std::array<cf32, 4>> rows, std::size_t n_tx);

  [[nodiscard]] std::size_t n_tx() const noexcept { return w_.rows(); }
  [[nodiscard]] std::size_t n_users() const noexcept { return w_.cols(); }

  /// Weight of user u's stream at BS antenna a.
  [[nodiscard]] cf32 weight(std::size_t a, std::size_t u) const noexcept {
    const auto v = w_(a, u);
    return {static_cast<float>(v.real()), static_cast<float>(v.imag())};
  }

  [[nodiscard]] const CMatrix& matrix() const noexcept { return w_; }

  /// Effective channel row a user with flat channel `h_row` (1 x n_tx)
  /// experiences through this precoder: out[u] = sum_a h_row[a] * W(a, u).
  /// Diagnostic for leakage / staleness tests — out[u != self] is the
  /// residual inter-user interference gain.
  void effective_row(std::span<const cf32> h_row, std::span<cf32> out) const;

 private:
  explicit Precoder(CMatrix w) : w_(std::move(w)) {}
  CMatrix w_;
};

/// Stack per-user flat CSI rows into the n_users x n_tx channel matrix the
/// precoder (and tests) consume.
[[nodiscard]] CMatrix stack_user_rows(std::span<const std::array<cf32, 4>> rows,
                                      std::size_t n_tx);

}  // namespace mimonet::eq
