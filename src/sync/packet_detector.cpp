#include "sync/packet_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/correlator.hpp"

namespace mimonet::sync {

PacketDetector::PacketDetector(DetectorConfig cfg) : cfg_(cfg) {
  if (cfg.lag == 0 || cfg.window == 0 || cfg.min_plateau == 0) {
    throw std::invalid_argument("PacketDetector: zero dimension");
  }
  if (cfg.threshold <= 0.0F || cfg.threshold >= 1.0F) {
    throw std::invalid_argument("PacketDetector: threshold must be in (0, 1)");
  }
}

std::optional<Detection> PacketDetector::detect(std::span<const cf32> rx) const {
  const std::span<const cf32> one[] = {rx};
  return detect_mimo(one);
}

std::optional<Detection> PacketDetector::detect_mimo(
    std::span<const std::span<const cf32>> rx_antennas) const {
  std::vector<dsp::AutocorrResult> scratch;
  return detect_mimo(rx_antennas, scratch);
}

std::optional<Detection> PacketDetector::detect_mimo(
    std::span<const std::span<const cf32>> rx_antennas,
    std::vector<dsp::AutocorrResult>& scratch) const {
  if (rx_antennas.empty()) throw std::invalid_argument("detect_mimo: no antennas");
  const std::size_t len = rx_antennas[0].size();
  for (const auto& a : rx_antennas) {
    if (a.size() != len) throw std::invalid_argument("detect_mimo: ragged spans");
  }
  if (len < cfg_.lag + cfg_.window) return std::nullopt;

  // Per-antenna sliding sums, combined coherently (correlations add in
  // phase because all antennas see the same CFO-induced rotation).
  scratch.resize(rx_antennas.size());
  auto& per_ant = scratch;
  for (std::size_t a = 0; a < rx_antennas.size(); ++a) {
    dsp::lag_autocorrelate_into(rx_antennas[a], cfg_.lag, cfg_.window, per_ant[a]);
  }
  const std::size_t n_pos = per_ant[0].metric.size();

  std::size_t run = 0;
  std::size_t run_start = 0;
  float peak = 0.0F;
  dsp::cf64 peak_corr{0.0, 0.0};

  for (std::size_t i = 0; i < n_pos; ++i) {
    dsp::cf64 corr{0.0, 0.0};
    double power = 0.0;
    for (const auto& ant : per_ant) {
      corr += dsp::cf64(ant.corr[i]);
      power += static_cast<double>(ant.power[i]);
    }
    const float metric =
        (power > 0.0) ? static_cast<float>(dsp::mag_sqr(corr) / (power * power)) : 0.0F;

    if (metric >= cfg_.threshold) {
      if (run == 0) run_start = i;
      ++run;
      if (metric > peak) {
        peak = metric;
        peak_corr = corr;
      }
      if (run >= cfg_.min_plateau) {
        // Keep scanning the plateau to refine the peak CFO, then report.
        std::size_t j = i + 1;
        for (; j < n_pos; ++j) {
          dsp::cf64 c2{0.0, 0.0};
          double p2 = 0.0;
          for (const auto& ant : per_ant) {
            c2 += dsp::cf64(ant.corr[j]);
            p2 += static_cast<double>(ant.power[j]);
          }
          const float m2 =
              (p2 > 0.0) ? static_cast<float>(dsp::mag_sqr(c2) / (p2 * p2)) : 0.0F;
          if (m2 < cfg_.threshold) break;
          if (m2 > peak) {
            peak = m2;
            peak_corr = c2;
          }
        }
        Detection det;
        det.start = run_start;
        det.peak_metric = peak;
        // angle(corr) = -2*pi*cfo*lag  =>  cfo = -angle/(2*pi*lag).
        det.cfo_norm =
            -std::arg(peak_corr) / (dsp::two_pi_d * static_cast<double>(cfg_.lag));
        return det;
      }
    } else {
      run = 0;
      peak = 0.0F;
      peak_corr = dsp::cf64{0.0, 0.0};
    }
  }
  return std::nullopt;
}

}  // namespace mimonet::sync
