#include "sync/frame_sync.hpp"

#include <algorithm>
#include <stdexcept>

#include "channel/impairments.hpp"
#include "wifi/preamble.hpp"

namespace mimonet::sync {

namespace {
// Field offsets within the packet (samples from L-STF start).
constexpr std::size_t kLltfOffset = wifi::kLstfLen;                   // 160
constexpr std::size_t kLsigOffset = kLltfOffset + wifi::kLltfLen;     // 320
}  // namespace

FrameSynchronizer::FrameSynchronizer(FrameSyncConfig cfg)
    : cfg_(cfg), detector_(cfg.detector, cfg.scan) {
  if (cfg.vdb_slack >= 40) {
    throw std::invalid_argument(
        "FrameSynchronizer: vdb_slack must be < 40 (mod-80 timing ambiguity)");
  }
}

std::optional<FrameSyncResult> FrameSynchronizer::synchronize(
    const std::vector<std::vector<cf32>>& rx) const {
  SyncScratch scratch;
  return synchronize(rx, scratch);
}

std::optional<FrameSyncResult> FrameSynchronizer::synchronize(
    const std::vector<std::vector<cf32>>& rx, SyncScratch& scratch) const {
  scratch.capture_spans.assign(rx.begin(), rx.end());
  return synchronize(scratch.capture_spans, scratch);
}

std::optional<FrameSyncResult> FrameSynchronizer::synchronize(
    std::span<const std::span<const cf32>> rx, SyncScratch& scratch) const {
  if (rx.empty()) throw std::invalid_argument("synchronize: no antennas");
  const std::size_t len = rx[0].size();
  for (const auto& a : rx) {
    if (a.size() != len) throw std::invalid_argument("synchronize: ragged captures");
  }
  scratch.rejected_candidate.reset();
  scratch.rejected_truncated = false;
  scratch.rejected_start_deficit = 0;

  const auto det = detector_.detect_mimo(rx, scratch.detect);
  if (!det) return std::nullopt;

  // Work on a coarse-CFO-corrected copy of the region from the detection
  // point through the SIG fields (plus slack).
  const std::size_t region_len =
      kLsigOffset + 3 * 80 + cfg_.vdb_slack + 80 + 64;  // through HT-SIG2 + margin
  if (det->start + region_len > len) {
    scratch.rejected_candidate = det->start;
    scratch.rejected_truncated = true;
    return std::nullopt;
  }

  auto& corrected = scratch.corrected;
  corrected.resize(rx.size());
  for (std::size_t a = 0; a < rx.size(); ++a) {
    corrected[a].assign(rx[a].begin() + static_cast<std::ptrdiff_t>(det->start),
                        rx[a].begin() + static_cast<std::ptrdiff_t>(det->start + region_len));
    channel::apply_cfo(corrected[a], -det->cfo_norm);
  }
  auto& cspans = scratch.spans;
  cspans.assign(corrected.begin(), corrected.end());

  FrameSyncResult res;
  res.coarse_cfo_norm = det->cfo_norm;
  res.detect_metric = det->peak_metric;

  if (cfg_.mode == TimingMode::kLtfCrossCorr) {
    const auto fine = fine_.locate(cspans, scratch.xcorr);
    if (!fine) {
      scratch.rejected_candidate = det->start;  // plateau without an L-LTF
      return std::nullopt;
    }
    if (det->start + fine->lltf_start < kLltfOffset) {
      scratch.rejected_candidate = det->start;
      scratch.rejected_start_deficit =
          kLltfOffset - (det->start + fine->lltf_start);
      return std::nullopt;
    }
    res.packet_start = det->start + fine->lltf_start - kLltfOffset;
    res.cfo_norm = det->cfo_norm + fine->cfo_norm;
    return res;
  }

  // Van de Beek over the three consecutive 80-sample SIG symbols
  // (L-SIG, HT-SIG1, HT-SIG2). The coarse detector places `det->start`
  // near the true L-STF start, so L-SIG is expected near kLsigOffset
  // within the corrected region; search +/- vdb_slack around it.
  VdbConfig vcfg;
  vcfg.n_symbols = 3;
  vcfg.rho = cfg_.vdb_rho;
  const VanDeBeekEstimator vdb(vcfg);

  const std::size_t search_from =
      (kLsigOffset > cfg_.vdb_slack) ? kLsigOffset - cfg_.vdb_slack : 0;
  const std::size_t span_len = 2 * cfg_.vdb_slack + vdb.min_span();
  if (search_from + span_len > region_len) {
    scratch.rejected_candidate = det->start;
    return std::nullopt;
  }

  cspans.clear();
  for (const auto& c : corrected) {
    cspans.emplace_back(std::span<const cf32>(c).subspan(search_from, span_len));
  }
  const auto est = vdb.estimate_mimo(cspans);

  const std::size_t lsig_pos = det->start + search_from + est.timing;
  if (lsig_pos < kLsigOffset) {
    scratch.rejected_candidate = det->start;
    return std::nullopt;
  }
  res.packet_start = lsig_pos - kLsigOffset;
  res.cfo_norm = det->cfo_norm + est.cfo_norm;
  return res;
}

}  // namespace mimonet::sync
