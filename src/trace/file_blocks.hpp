// Flowgraph blocks bridging streams and IQ capture files (GNU Radio's
// file_source / file_sink equivalents).
#pragma once

#include <filesystem>

#include "flowgraph/block.hpp"
#include "trace/iq_file.hpp"

namespace mimonet::trace {

/// Streams a MIQ1 file's samples once, then finishes.
class IqFileSource final : public flowgraph::Block {
 public:
  explicit IqFileSource(const std::filesystem::path& path);

  flowgraph::WorkStatus work() override;

  [[nodiscard]] std::uint32_t sample_rate_hz() const noexcept {
    return capture_.sample_rate_hz;
  }

 private:
  IqCapture capture_;
  std::size_t pos_ = 0;
};

/// Accumulates a stream and writes it as a MIQ1 file when the stream ends.
class IqFileSink final : public flowgraph::Block {
 public:
  IqFileSink(std::filesystem::path path,
             std::uint32_t sample_rate_hz = kDefaultSampleRate);

  flowgraph::WorkStatus work() override;

  /// Samples seen so far (also available after the run).
  [[nodiscard]] const std::vector<cf32>& samples() const noexcept { return data_; }

 private:
  std::filesystem::path path_;
  std::uint32_t sample_rate_hz_;
  std::vector<cf32> data_;
  bool written_ = false;
};

}  // namespace mimonet::trace
