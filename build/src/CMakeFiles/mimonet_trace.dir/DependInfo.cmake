
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/file_blocks.cpp" "src/CMakeFiles/mimonet_trace.dir/trace/file_blocks.cpp.o" "gcc" "src/CMakeFiles/mimonet_trace.dir/trace/file_blocks.cpp.o.d"
  "/root/repo/src/trace/iq_file.cpp" "src/CMakeFiles/mimonet_trace.dir/trace/iq_file.cpp.o" "gcc" "src/CMakeFiles/mimonet_trace.dir/trace/iq_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mimonet_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_flowgraph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
