// Sliding-window correlators: the workhorses of preamble detection.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// Streaming moving sum over a fixed window (complex), O(1) per sample.
class MovingSum {
 public:
  explicit MovingSum(std::size_t window);

  cf64 push(cf64 x) noexcept;
  [[nodiscard]] cf64 value() const noexcept { return sum_; }
  [[nodiscard]] std::size_t window() const noexcept { return buf_.size(); }
  void reset() noexcept;

 private:
  std::vector<cf64> buf_;
  std::size_t head_ = 0;
  cf64 sum_{0.0, 0.0};
};

/// Real-valued moving sum (for power normalization).
class MovingSumReal {
 public:
  explicit MovingSumReal(std::size_t window);

  double push(double x) noexcept;
  [[nodiscard]] double value() const noexcept { return sum_; }
  void reset() noexcept;

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;
  double sum_ = 0.0;
};

/// Result of a lag autocorrelation sweep.
struct AutocorrResult {
  /// c_n = sum over window of x_{n+k} * conj(x_{n+k+lag})
  std::vector<cf32> corr;
  /// p_n = geometric-mean window power: sqrt(p_lead * p_lag), where p_lead
  /// sums |x_{n+k}|^2 and p_lag sums |x_{n+k+lag}|^2. Normalizing by both
  /// windows keeps the metric bounded at burst edges, where one window is
  /// signal and the other is noise.
  std::vector<float> power;
  /// m_n = |c_n|^2 / (p_lead * p_lag), in [0, 1] by Cauchy-Schwarz.
  std::vector<float> metric;
};

/// Lag-`lag` autocorrelation of x over a sliding window of `window` samples.
/// Output length is len(x) - lag - window + 1 (empty if x is too short).
[[nodiscard]] AutocorrResult lag_autocorrelate(std::span<const cf32> x, std::size_t lag,
                                               std::size_t window);

/// Same sweep writing into caller-owned storage: `out`'s vectors are resized
/// (capacity kept), so a workspace-owned result never allocates in steady
/// state. Bit-identical to lag_autocorrelate().
void lag_autocorrelate_into(std::span<const cf32> x, std::size_t lag,
                            std::size_t window, AutocorrResult& out);

}  // namespace mimonet::dsp
