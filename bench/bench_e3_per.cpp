// E3 — PER vs SNR for 1000-byte PSDUs, SISO AWGN and 2x2 Rayleigh.
//
// Reproduces the paper's "packet error rate (PER) computation": the PER
// waterfall is steeper than BER and shifted right (one bad bit kills the
// FCS). Expected shape: AWGN curves fall off a cliff within ~3 dB; fading
// curves slope gently (deep fades dominate).
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

double run_per(unsigned mcs, double snr, bool fading, std::size_t packets,
               std::uint64_t seed) {
  auto cfg = core::make_link_config(mcs, snr);
  cfg.psdu_payload_bytes = 1000;
  cfg.channel.fading = fading;
  cfg.seed = seed;
  core::LinkSimulator sim(cfg);
  return sim.run(packets).per.per();
}

}  // namespace

int main() {
  bench::heading("E3", "PER vs SNR, 1000-byte packets (Fig. reconstruction)");
  constexpr std::size_t kPackets = 40;
  bench::note("%zu packets per point; PER includes undetected packets", kPackets);

  std::printf("\n  SISO (1x1) AWGN\n");
  {
    const bench::Table table({"SNR dB", "MCS0", "MCS3", "MCS5", "MCS7"}, 10);
    for (double snr = 0.0; snr <= 27.0; snr += 3.0) {
      std::vector<std::string> cells{bench::fix(snr, 0)};
      for (const unsigned mcs : {0U, 3U, 5U, 7U}) {
        cells.push_back(bench::fix(
            run_per(mcs, snr, false, kPackets, 300 + mcs),
            2));
      }
      table.row(cells);
    }
  }

  std::printf("\n  2x2 spatial multiplexing, flat Rayleigh\n");
  {
    const bench::Table table({"SNR dB", "MCS8", "MCS11", "MCS13", "MCS15"}, 10);
    for (double snr = 6.0; snr <= 33.0; snr += 3.0) {
      std::vector<std::string> cells{bench::fix(snr, 0)};
      for (const unsigned mcs : {8U, 11U, 13U, 15U}) {
        cells.push_back(bench::fix(
            run_per(mcs, snr, true, kPackets, 500 + mcs),
            2));
      }
      table.row(cells);
    }
  }
  bench::note("AWGN: cliff within ~3 dB; Rayleigh: gentle slope from fades");
  return 0;
}
