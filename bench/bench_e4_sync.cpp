// E4 — Synchronization accuracy: the paper's MIMO-extended Van de Beek
// estimator vs the STF-autocorrelation baseline and L-LTF cross-correlation.
//
// Metrics per SNR: timing error statistics (samples) and CFO RMSE
// (cycles/sample), on real 2x2 PPDUs with random CFO. Also contrasts
// single-antenna vs two-antenna Van de Beek (the "MIMO extension" claim:
// combining antennas sharpens the ML metric at low SNR).
#include <cstdio>
#include <random>

#include "bench_util.hpp"
#include "channel/mimo_channel.hpp"
#include "core/transmitter.hpp"
#include "dsp/stats.hpp"
#include "sync/frame_sync.hpp"
#include "wifi/psdu.hpp"

using namespace mimonet;

namespace {

struct SyncStats {
  dsp::RunningStats timing;
  dsp::RunningStats cfo;
  std::size_t missed = 0;
};

void observe(SyncStats& st, const std::optional<sync::FrameSyncResult>& res,
             std::size_t true_start, double true_cfo) {
  if (!res) {
    ++st.missed;
    return;
  }
  st.timing.add(static_cast<double>(res->packet_start) -
                static_cast<double>(true_start));
  st.cfo.add(res->cfo_norm - true_cfo);
}

std::string timing_cell(const SyncStats& st) {
  if (st.timing.count() == 0) return "x";
  return bench::fix(st.timing.mean(), 1) + "/" + bench::fix(st.timing.stddev(), 1);
}

std::string cfo_cell(const SyncStats& st) {
  if (st.cfo.count() == 0) return "x";
  return bench::sci(st.cfo.rms());
}

}  // namespace

int main() {
  bench::heading("E4", "Sync accuracy: MIMO Van de Beek vs baselines (Fig.)");
  constexpr std::size_t kTrials = 40;
  bench::note("%zu 2x2 packets per SNR, random CFO in [-1e-3, 1e-3] cycles/sample",
              kTrials);
  bench::note("timing cells: mean/stddev of packet-start error in samples");

  core::PhyConfig phy;
  phy.mcs = 8;
  const core::Transmitter tx(phy);
  const auto psdu = wifi::build_psdu(wifi::MacHeader{},
                                     std::vector<std::uint8_t>(400, 0x3C));

  sync::FrameSyncConfig xcorr_cfg;
  xcorr_cfg.mode = sync::TimingMode::kLtfCrossCorr;
  sync::FrameSyncConfig vdb_cfg;
  vdb_cfg.mode = sync::TimingMode::kVanDeBeekMimo;
  const sync::FrameSynchronizer fs_xcorr(xcorr_cfg);
  const sync::FrameSynchronizer fs_vdb(vdb_cfg);

  std::printf("\n  Timing error (mean/stddev samples) and miss count\n");
  const bench::Table t1({"SNR dB", "xcorr", "VdB-MIMO", "VdB-1ant", "missed"}, 12);
  std::vector<std::string> cfo_rows;

  const bench::Table* cfo_table = nullptr;
  (void)cfo_table;
  struct Row {
    double snr;
    SyncStats xc, vdb2, vdb1;
  };
  std::vector<Row> rows;

  for (double snr = -2.0; snr <= 18.0; snr += 4.0) {
    Row row;
    row.snr = snr;
    std::mt19937_64 rng(42 + static_cast<std::uint64_t>(snr * 10));
    std::uniform_real_distribution<double> cfo_dist(-1e-3, 1e-3);

    for (std::size_t t = 0; t < kTrials; ++t) {
      channel::ChannelConfig ccfg;
      ccfg.ntx = 2;
      ccfg.nrx = 2;
      ccfg.snr_db = snr;
      ccfg.cfo_norm = cfo_dist(rng);
      ccfg.timing_pad = 800;
      ccfg.tail_pad = 200;
      ccfg.seed = rng();
      channel::MimoChannel chan(ccfg);
      const auto capture = chan.transmit(tx.transmit(psdu));
      const auto& truth = chan.truth();

      observe(row.xc, fs_xcorr.synchronize(capture), truth.packet_start,
              truth.cfo_norm);
      observe(row.vdb2, fs_vdb.synchronize(capture), truth.packet_start,
              truth.cfo_norm);
      const std::vector<std::vector<dsp::cf32>> one_ant{capture[0]};
      observe(row.vdb1, fs_vdb.synchronize(one_ant), truth.packet_start,
              truth.cfo_norm);
    }
    t1.row({bench::fix(row.snr, 0), timing_cell(row.xc), timing_cell(row.vdb2),
            timing_cell(row.vdb1),
            std::to_string(row.xc.missed) + "/" + std::to_string(row.vdb2.missed) +
                "/" + std::to_string(row.vdb1.missed)});
    rows.push_back(std::move(row));
  }

  std::printf("\n  CFO estimate RMSE (cycles/sample)\n");
  const bench::Table t2({"SNR dB", "xcorr", "VdB-MIMO", "VdB-1ant"}, 12);
  for (const auto& row : rows) {
    t2.row({bench::fix(row.snr, 0), cfo_cell(row.xc), cfo_cell(row.vdb2),
            cfo_cell(row.vdb1)});
  }
  bench::note("expected: VdB-MIMO timing stddev <= VdB-1ant, gap widest at low SNR");

  std::string pts = "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto stat = [](const SyncStats& st) {
      char buf[192];
      std::snprintf(buf, sizeof buf,
                    "{\"timing_stddev\": %.6g, \"cfo_rmse\": %.6g, \"missed\": %zu}",
                    st.timing.count() > 0 ? st.timing.stddev() : -1.0,
                    st.cfo.count() > 0 ? st.cfo.rms() : -1.0, st.missed);
      return std::string(buf);
    };
    char head[64];
    std::snprintf(head, sizeof head, "%s{\"snr_db\": %g, ", i == 0 ? "" : ", ",
                  row.snr);
    pts += std::string(head) + "\"xcorr\": " + stat(row.xc) +
           ", \"vdb_mimo\": " + stat(row.vdb2) +
           ", \"vdb_1ant\": " + stat(row.vdb1) + "}";
  }
  bench::JsonReport report("e4_sync");
  report.field("trials_per_point", kTrials).raw("points", pts + "]").emit();
  return 0;
}
