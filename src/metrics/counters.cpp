#include "metrics/counters.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mimonet::metrics {

Interval wilson_interval(std::size_t successes, std::size_t trials) {
  // Zero trials carries no information: the degenerate full interval, not
  // the NaN a naive 0/0 would produce downstream in bench tables.
  if (trials == 0) return {0.0, 1.0};
  // successes > trials would push p past 1 and the half-width under a
  // negative square root (NaN); clamp to the boundary instead.
  successes = std::min(successes, trials);
  constexpr double z = 1.96;  // 95%
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

void BerCounter::add(std::span<const std::uint8_t> reference,
                     std::span<const std::uint8_t> received) {
  if (reference.size() != received.size()) {
    throw std::invalid_argument("BerCounter: size mismatch");
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if ((reference[i] & 1U) != (received[i] & 1U)) ++errors_;
  }
  bits_ += reference.size();
}

void BerCounter::add_counts(std::size_t errors, std::size_t bits) noexcept {
  errors_ += errors;
  bits_ += bits;
}

double BerCounter::ber() const noexcept {
  return (bits_ > 0) ? static_cast<double>(errors_) / static_cast<double>(bits_) : 0.0;
}

void PerCounter::add(bool packet_ok) noexcept {
  ++packets_;
  if (!packet_ok) ++failures_;
}

double PerCounter::per() const noexcept {
  return (packets_ > 0) ? static_cast<double>(failures_) / static_cast<double>(packets_)
                        : 0.0;
}

void EvmMeter::add(dsp::cf32 observed, dsp::cf32 reference) noexcept {
  err_ += static_cast<double>(dsp::mag_sqr(observed - reference));
  ref_ += static_cast<double>(dsp::mag_sqr(reference));
  ++n_;
}

double EvmMeter::evm_rms() const noexcept {
  if (n_ == 0 || ref_ <= 0.0) return 0.0;
  return std::sqrt(err_ / ref_);
}

double EvmMeter::evm_db() const noexcept {
  const double evm = evm_rms();
  return (evm > 0.0) ? 20.0 * std::log10(evm) : -120.0;
}

void ThroughputMeter::add_packet(std::size_t payload_bytes, double airtime_us) noexcept {
  delivered_bits_ += static_cast<double>(payload_bytes) * 8.0;
  airtime_us_ += airtime_us;
}

double ThroughputMeter::goodput_mbps() const noexcept {
  // Zero (or never-accumulated) airtime must yield a defined 0.0, not the
  // NaN/Inf that would otherwise leak into LinkResult::summary_row tables.
  return (airtime_us_ > 0.0) ? delivered_bits_ / airtime_us_ : 0.0;
}

}  // namespace mimonet::metrics
