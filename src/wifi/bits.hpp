// Byte <-> bit conversions in 802.11 transmission order (LSB of each byte
// first on the air).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mimonet::wifi {

/// Expand bytes to bits, LSB first, one bit per output byte (values 0/1).
[[nodiscard]] std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Pack bits (LSB first) back into bytes. bits.size() must be a multiple of 8.
[[nodiscard]] std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits);

/// bytes_to_bits into caller storage (resized, capacity kept).
void bytes_to_bits_into(std::span<const std::uint8_t> bytes,
                        std::vector<std::uint8_t>& out);

/// bits_to_bytes into caller storage (resized, capacity kept).
void bits_to_bytes_into(std::span<const std::uint8_t> bits,
                        std::vector<std::uint8_t>& out);

/// Count positions where two equal-length bit vectors differ.
[[nodiscard]] std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                           std::span<const std::uint8_t> b);

}  // namespace mimonet::wifi
