// Element-wise and reduction primitives on complex sample vectors.
#pragma once

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// Sum of |x_i|^2.
[[nodiscard]] double energy(std::span<const cf32> x) noexcept;

/// Mean of |x_i|^2 (0 for an empty span).
[[nodiscard]] double mean_power(std::span<const cf32> x) noexcept;

/// In-place scale by a real gain.
void scale(std::span<cf32> x, float gain) noexcept;

/// out_i = a_i * conj(b_i). All spans must have equal length.
void multiply_conj(std::span<const cf32> a, std::span<const cf32> b, std::span<cf32> out);

/// Inner product sum_i a_i * conj(b_i) over min(len(a), len(b)).
[[nodiscard]] cf64 dot_conj(std::span<const cf32> a, std::span<const cf32> b) noexcept;

/// In-place frequency shift: x_n *= e^{j*(phase0 + n*phase_inc)}.
/// Returns the phase that the *next* sample would get, wrapped to (-pi, pi],
/// so callers can chain shifts across buffer boundaries.
double mix(std::span<cf32> x, double phase0, double phase_inc) noexcept;

/// Full linear cross-correlation of `x` against `ref` (length len(x)-len(ref)+1),
/// out_k = sum_n x_{k+n} * conj(ref_n). Requires len(x) >= len(ref).
[[nodiscard]] std::vector<cf32> cross_correlate(std::span<const cf32> x,
                                                std::span<const cf32> ref);

/// Same correlation into caller-owned storage (resized, capacity kept).
void cross_correlate_into(std::span<const cf32> x, std::span<const cf32> ref,
                          std::vector<cf32>& out);

/// Root-mean-square error between two equal-length vectors.
[[nodiscard]] double rms_error(std::span<const cf32> a, std::span<const cf32> b);

}  // namespace mimonet::dsp
