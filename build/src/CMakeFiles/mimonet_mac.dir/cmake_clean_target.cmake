file(REMOVE_RECURSE
  "libmimonet_mac.a"
)
