#include "chanest/ls_estimator.hpp"

#include <array>
#include <stdexcept>

#include "wifi/preamble.hpp"

namespace mimonet::chanest {

void MimoChannelEstimate::resize_zeroed(std::size_t nrx_in, std::size_t nss_in) {
  nrx = nrx_in;
  nss = nss_in;
  h.resize(nrx);
  for (auto& per_rx : h) {
    per_rx.resize(nss);
    for (auto& per_ss : per_rx) per_ss.assign(ofdm::kFftSize, cf32{0.0F, 0.0F});
  }
}

eq::CMatrix MimoChannelEstimate::at_bin(std::size_t bin) const {
  eq::CMatrix m(nrx, nss);
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t s = 0; s < nss; ++s) {
      m(r, s) = dsp::cf64(h[r][s][bin]);
    }
  }
  return m;
}

void MimoChannelEstimate::at_bin_into(std::size_t bin, eq::CMatrix& m) const {
  m = eq::CMatrix(nrx, nss);
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t s = 0; s < nss; ++s) {
      m(r, s) = dsp::cf64(h[r][s][bin]);
    }
  }
}

double MimoChannelEstimate::mse_against(
    const std::vector<std::vector<std::vector<cf32>>>& reference,
    const std::vector<std::size_t>& bins) const {
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t r = 0; r < nrx; ++r) {
    for (std::size_t s = 0; s < nss; ++s) {
      for (const std::size_t b : bins) {
        acc += static_cast<double>(dsp::mag_sqr(h[r][s][b] - reference[r][s][b]));
        ++count;
      }
    }
  }
  return (count > 0) ? acc / static_cast<double>(count) : 0.0;
}

LsChannelEstimator::LsChannelEstimator(std::size_t nrx, std::size_t nss)
    : nrx_(nrx), nss_(nss) {
  if (nrx == 0 || nss == 0 || nss > 4) {
    throw std::invalid_argument("LsChannelEstimator: bad dimensions");
  }
}

void LsChannelEstimator::estimate_into(
    const std::vector<std::vector<std::vector<cf32>>>& ltf_grids,
    MimoChannelEstimate& est) const {
  const std::size_t n_ltf = wifi::num_ht_ltfs(nss_);
  if (ltf_grids.size() != nrx_) {
    throw std::invalid_argument("LsChannelEstimator: wrong antenna count");
  }
  for (const auto& per_rx : ltf_grids) {
    if (per_rx.size() != n_ltf) {
      throw std::invalid_argument("LsChannelEstimator: wrong LTF symbol count");
    }
    for (const auto& grid : per_rx) {
      if (grid.size() != ofdm::kFftSize) {
        throw std::invalid_argument("LsChannelEstimator: grid must be 64 bins");
      }
    }
  }

  const auto seq = wifi::htltf_sequence();  // logical -28..28
  est.resize_zeroed(nrx_, nss_);

  for (int k = -28; k <= 28; ++k) {
    const float ltf_val = seq[static_cast<std::size_t>(k + 28)];
    if (ltf_val == 0.0F) continue;  // DC
    const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(k);
    for (std::size_t r = 0; r < nrx_; ++r) {
      for (std::size_t s = 0; s < nss_; ++s) {
        dsp::cf64 acc{0.0, 0.0};
        for (std::size_t n = 0; n < n_ltf; ++n) {
          acc += dsp::cf64(ltf_grids[r][n][bin]) *
                 static_cast<double>(wifi::p_matrix(s, n));
        }
        acc /= static_cast<double>(n_ltf) * static_cast<double>(ltf_val);
        est.h[r][s][bin] =
            cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
      }
    }
  }
}

void LsChannelEstimator::estimate_into(const dsp::IqTensor& ltf_grids,
                                       MimoChannelEstimate& est) const {
  const std::size_t n_ltf = wifi::num_ht_ltfs(nss_);
  if (ltf_grids.streams() != nrx_ || ltf_grids.symbols() != n_ltf ||
      ltf_grids.bins() != ofdm::kFftSize) {
    throw std::invalid_argument("LsChannelEstimator: bad tensor shape");
  }

  const auto seq = wifi::htltf_sequence();  // logical -28..28
  est.resize_zeroed(nrx_, nss_);

  for (int k = -28; k <= 28; ++k) {
    const float ltf_val = seq[static_cast<std::size_t>(k + 28)];
    if (ltf_val == 0.0F) continue;  // DC
    const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(k);
    for (std::size_t r = 0; r < nrx_; ++r) {
      for (std::size_t s = 0; s < nss_; ++s) {
        dsp::cf64 acc{0.0, 0.0};
        for (std::size_t n = 0; n < n_ltf; ++n) {
          acc += dsp::cf64(ltf_grids(r, n, bin)) *
                 static_cast<double>(wifi::p_matrix(s, n));
        }
        acc /= static_cast<double>(n_ltf) * static_cast<double>(ltf_val);
        est.h[r][s][bin] =
            cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
      }
    }
  }
}

MimoChannelEstimate LsChannelEstimator::estimate(
    const std::vector<std::vector<std::vector<cf32>>>& ltf_grids) const {
  MimoChannelEstimate est;
  estimate_into(ltf_grids, est);
  return est;
}

void LsChannelEstimator::estimate_legacy_into(
    const std::vector<std::vector<std::vector<cf32>>>& grids,
    std::vector<std::vector<cf32>>& h) {
  const auto seq = wifi::lltf_sequence();  // logical -26..26
  h.resize(grids.size());
  for (auto& row : h) row.assign(ofdm::kFftSize, cf32{0.0F, 0.0F});
  for (std::size_t r = 0; r < grids.size(); ++r) {
    if (grids[r].size() != 2) {
      throw std::invalid_argument("estimate_legacy: need exactly 2 LTF periods");
    }
    for (int k = -26; k <= 26; ++k) {
      const float val = seq[static_cast<std::size_t>(k + 26)];
      if (val == 0.0F) continue;
      const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(k);
      const dsp::cf64 avg =
          (dsp::cf64(grids[r][0][bin]) + dsp::cf64(grids[r][1][bin])) /
          (2.0 * static_cast<double>(val));
      h[r][bin] = cf32(static_cast<float>(avg.real()), static_cast<float>(avg.imag()));
    }
  }
}

void LsChannelEstimator::estimate_legacy_into(const dsp::IqTensor& grids,
                                              std::vector<std::vector<cf32>>& h) {
  if (grids.symbols() != 2 || grids.bins() != ofdm::kFftSize) {
    throw std::invalid_argument("estimate_legacy: need [rx][2][64] tensor");
  }
  const auto seq = wifi::lltf_sequence();  // logical -26..26
  h.resize(grids.streams());
  for (auto& row : h) row.assign(ofdm::kFftSize, cf32{0.0F, 0.0F});
  for (std::size_t r = 0; r < grids.streams(); ++r) {
    for (int k = -26; k <= 26; ++k) {
      const float val = seq[static_cast<std::size_t>(k + 26)];
      if (val == 0.0F) continue;
      const std::size_t bin = ofdm::SubcarrierMap::logical_to_bin(k);
      const dsp::cf64 avg =
          (dsp::cf64(grids(r, 0, bin)) + dsp::cf64(grids(r, 1, bin))) /
          (2.0 * static_cast<double>(val));
      h[r][bin] = cf32(static_cast<float>(avg.real()), static_cast<float>(avg.imag()));
    }
  }
}

std::vector<std::vector<cf32>> LsChannelEstimator::estimate_legacy(
    const std::vector<std::vector<std::vector<cf32>>>& grids) {
  std::vector<std::vector<cf32>> h;
  estimate_legacy_into(grids, h);
  return h;
}

void smooth_frequency(MimoChannelEstimate& est, const std::vector<std::size_t>& bins,
                      std::span<const int> csd_per_stream) {
  if (bins.size() < 3) return;
  for (std::size_t r = 0; r < est.nrx; ++r) {
    for (std::size_t s = 0; s < est.nss; ++s) {
      auto& h = est.h[r][s];
      const int csd = (s < csd_per_stream.size()) ? csd_per_stream[s] : 0;

      // Remove the known CSD phase ramp so the underlying channel is
      // smooth across bins, average, then restore the ramp.
      const auto ramp = [&](std::size_t bin) {
        const double theta = -dsp::two_pi_d * static_cast<double>(bin) *
                             static_cast<double>(csd) /
                             static_cast<double>(ofdm::kFftSize);
        return dsp::phasor_d(theta);
      };
      const auto deramped = [&](std::size_t bin) {
        return dsp::cf64(h[bin]) * std::conj(ramp(bin));
      };

      std::array<cf32, ofdm::kFftSize> smoothed;  // bins.size() <= 64 always
      for (std::size_t i = 0; i < bins.size(); ++i) {
        const dsp::cf64 prev = deramped(bins[(i == 0) ? 0 : i - 1]);
        const dsp::cf64 cur = deramped(bins[i]);
        const dsp::cf64 next = deramped(bins[(i + 1 == bins.size()) ? i : i + 1]);
        const dsp::cf64 avg = (0.25 * prev + 0.5 * cur + 0.25 * next) * ramp(bins[i]);
        smoothed[i] = cf32(static_cast<float>(avg.real()),
                           static_cast<float>(avg.imag()));
      }
      for (std::size_t i = 0; i < bins.size(); ++i) h[bins[i]] = smoothed[i];
    }
  }
}

}  // namespace mimonet::chanest
