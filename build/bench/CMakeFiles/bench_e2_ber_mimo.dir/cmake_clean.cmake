file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_ber_mimo.dir/bench_e2_ber_mimo.cpp.o"
  "CMakeFiles/bench_e2_ber_mimo.dir/bench_e2_ber_mimo.cpp.o.d"
  "bench_e2_ber_mimo"
  "bench_e2_ber_mimo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_ber_mimo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
