// E13 — MAC-level ARQ (Table reconstruction): what stop-and-wait
// retransmission buys at the network level, the layer the paper's MIMONet
// platform targets ("network-level exploitation of MIMO technology").
//
// Expected shape: raw PHY loss grows as SNR drops; ARQ holds residual loss
// near zero down to several dB below the PHY cliff, paying with goodput
// (retransmission airtime); once even retries can't get through, loss
// returns and goodput collapses.
#include <cstdio>

#include "bench_util.hpp"
#include "mac/arq.hpp"

using namespace mimonet;

namespace {

struct Row {
  double per_raw;      // single-shot PHY loss
  double loss_arq;     // residual loss with retries
  double goodput_arq;  // Mb/s including retry + ACK airtime
  double retx_per_msdu;
};

Row run_point(double snr, unsigned max_retries, std::size_t msdus,
              std::uint64_t seed) {
  mac::ArqConfig cfg;
  cfg.data_phy.mcs = 11;  // 16-QAM 1/2, 2 streams
  cfg.ack_phy.mcs = 0;
  cfg.forward.ntx = 2;
  cfg.forward.nrx = 2;
  cfg.forward.fading = true;
  cfg.forward.snr_db = snr;
  cfg.forward.timing_pad = 300;
  cfg.forward.tail_pad = 80;
  cfg.forward.seed = seed;
  cfg.reverse.snr_db = snr;
  cfg.reverse.fading = true;
  cfg.reverse.timing_pad = 300;
  cfg.reverse.tail_pad = 80;
  cfg.reverse.seed = seed + 1;
  cfg.max_retries = max_retries;

  mac::StopAndWaitLink link(cfg);
  std::size_t first_try_fail = 0;
  for (std::size_t i = 0; i < msdus; ++i) {
    const auto rep = link.send(std::vector<std::uint8_t>(1000, 0x42));
    if (rep.transmissions > 1 || !rep.delivered) ++first_try_fail;
  }
  const auto& st = link.stats();
  return Row{
      .per_raw = static_cast<double>(first_try_fail) / static_cast<double>(msdus),
      .loss_arq = st.loss_rate(),
      .goodput_arq = st.goodput_mbps(),
      .retx_per_msdu =
          static_cast<double>(st.retransmissions) / static_cast<double>(msdus),
  };
}

}  // namespace

int main() {
  bench::heading("E13", "Stop-and-wait ARQ over 2x2 fading (Table)");
  constexpr std::size_t kMsdus = 25;
  bench::note("MCS 11 data + MCS 0 ACKs, %zu 1000-byte MSDUs per point,", kMsdus);
  bench::note("7 retries; 'raw loss' counts first-attempt failures");

  const bench::Table table(
      {"SNR dB", "raw loss", "ARQ loss", "goodput", "retx/MSDU"}, 12);
  std::string pts = "[";
  bool first = true;
  for (double snr = 6.0; snr <= 24.0; snr += 3.0) {
    const auto row = run_point(snr, 7, kMsdus, 130);
    table.row({bench::fix(snr, 0), bench::fix(row.per_raw, 2),
               bench::fix(row.loss_arq, 2), bench::fix(row.goodput_arq, 1),
               bench::fix(row.retx_per_msdu, 2)});
    char obj[224];
    std::snprintf(obj, sizeof obj,
                  "%s{\"snr_db\": %g, \"raw_loss\": %.6g, \"arq_loss\": %.6g, "
                  "\"goodput_mbps\": %.6g, \"retx_per_msdu\": %.6g}",
                  first ? "" : ", ", snr, row.per_raw, row.loss_arq,
                  row.goodput_arq, row.retx_per_msdu);
    pts += obj;
    first = false;
  }
  bench::note("expected: ARQ loss ~0 while raw loss climbs; goodput degrades");
  bench::note("gracefully with retx/MSDU before collapsing");

  bench::JsonReport report("e13_arq");
  report.field("msdus_per_point", kMsdus)
      .field("max_retries", 7)
      .raw("points", pts + "]")
      .emit();
  return 0;
}
