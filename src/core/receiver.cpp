#include "core/receiver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <stdexcept>

#include "channel/impairments.hpp"
#include "chanest/phase_tracker.hpp"
#include "dsp/fft.hpp"
#include "eq/alamouti.hpp"
#include "eq/equalizer.hpp"
#include "fec/ldpc.hpp"
#include "fec/scrambler.hpp"
#include "mod/constellation.hpp"
#include "ofdm/pilots.hpp"
#include "wifi/bits.hpp"
#include "wifi/interleaver.hpp"
#include "wifi/mcs.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"
#include "wifi/stream_parser.hpp"

namespace mimonet::core {

namespace {

/// All occupied HT bins (data + pilots) sorted by logical index, for
/// frequency smoothing.
std::vector<std::size_t> occupied_ht_bins() {
  std::vector<std::size_t> bins;
  for (int k = -28; k <= 28; ++k) {
    if (k == 0) continue;
    bins.push_back(ofdm::SubcarrierMap::logical_to_bin(k));
  }
  return bins;
}

/// Recover the TX scrambler seed from the 7 descrambler-sync bits at the
/// head of the SERVICE field (which the transmitter sends as zeros, so the
/// received bits equal the scrambler sequence itself).
std::uint32_t recover_scrambler_seed(std::span<const std::uint8_t> first7) {
  for (std::uint32_t seed = 1; seed < 128; ++seed) {
    const auto seq = fec::scrambler_sequence(seed, 7);
    bool match = true;
    for (std::size_t i = 0; i < 7; ++i) {
      if (seq[i] != (first7[i] & 1U)) {
        match = false;
        break;
      }
    }
    if (match) return seed;
  }
  return fec::kDefaultScramblerSeed;  // undecodable; any seed will fail FCS
}

}  // namespace

Receiver::Receiver(PhyConfig cfg, std::size_t nrx)
    : cfg_(cfg),
      nrx_(nrx),
      synchronizer_(sync::FrameSyncConfig{.mode = cfg.timing_mode}),
      legacy_demod_(ofdm::CarrierPlan::kLegacy),
      ht_demod_(ofdm::CarrierPlan::kHt) {
  if (nrx == 0 || nrx > 4) throw std::invalid_argument("Receiver: nrx must be 1..4");
}

std::vector<float> Receiver::decode_sig_llrs(
    const std::vector<std::vector<cf32>>& grids,
    const std::vector<std::vector<cf32>>& h_legacy, float noise_var,
    bool qbpsk) const {
  const auto& data_bins = legacy_demod_.map().data_bins();
  std::vector<cf32> mrc(data_bins.size());
  for (std::size_t i = 0; i < data_bins.size(); ++i) {
    const std::size_t bin = data_bins[i];
    dsp::cf64 num{0.0, 0.0};
    for (std::size_t r = 0; r < nrx_; ++r) {
      num += dsp::cf64(grids[r][bin]) * std::conj(dsp::cf64(h_legacy[r][bin]));
    }
    // Unnormalized MRC: llr = -4 * axis(num) / nv is exact because the MRC
    // gain cancels between numerator and effective noise variance.
    mrc[i] = cf32(static_cast<float>(num.real()), static_cast<float>(num.imag()));
  }
  return wifi::demap_sig_field(mrc, noise_var, qbpsk);
}

std::optional<RxPacket> Receiver::receive(
    const std::vector<std::vector<cf32>>& capture) const {
  if (capture.size() != nrx_) {
    throw std::invalid_argument("Receiver: capture antenna count mismatch");
  }
  const auto sync_res = synchronizer_.synchronize(capture);
  if (!sync_res) return std::nullopt;

  RxPacket pkt;
  pkt.sync = *sync_res;

  // CFO-corrected, packet-aligned copy.
  const std::size_t start = sync_res->packet_start;
  const std::size_t avail = capture[0].size() - start;
  FrameLayout probe;  // nss=1 layout: offsets through HT-STF are nss-free
  if (avail < probe.htltf_offset() + wifi::kHtLtfLen) return std::nullopt;

  std::vector<std::vector<cf32>> rx(nrx_);
  for (std::size_t a = 0; a < nrx_; ++a) {
    rx[a].assign(capture[a].begin() + static_cast<std::ptrdiff_t>(start),
                 capture[a].end());
    channel::apply_cfo(rx[a], -sync_res->cfo_norm);
  }

  const dsp::FftPlan fft64(ofdm::kFftSize);

  // ---- L-LTF: legacy channel estimate + SNR estimate. ----
  const std::size_t lltf_payload = probe.lltf_offset() + 32;
  std::vector<std::vector<std::vector<cf32>>> lltf_grids(
      nrx_, std::vector<std::vector<cf32>>(2, std::vector<cf32>(ofdm::kFftSize)));
  for (std::size_t a = 0; a < nrx_; ++a) {
    for (std::size_t rep = 0; rep < 2; ++rep) {
      fft64.forward(std::span<const cf32>(rx[a]).subspan(lltf_payload + rep * 64, 64),
                    lltf_grids[a][rep]);
    }
  }
  const auto h_legacy = chanest::LsChannelEstimator::estimate_legacy(lltf_grids);

  std::vector<std::span<const cf32>> lltf_spans;
  lltf_spans.reserve(nrx_);
  for (const auto& a : rx) {
    lltf_spans.emplace_back(std::span<const cf32>(a).subspan(lltf_payload, 128));
  }
  pkt.snr = chanest::snr_from_lltf(lltf_spans);
  const auto nv_bin = static_cast<float>(
      64.0 * std::max(pkt.snr.noise_variance, 1e-12));

  // ---- L-SIG. ----
  std::vector<std::vector<cf32>> sig_grid(nrx_, std::vector<cf32>(ofdm::kFftSize));
  const auto demod_symbol_grids = [&](std::size_t offset) {
    for (std::size_t a = 0; a < nrx_; ++a) {
      fft64.forward(
          std::span<const cf32>(rx[a]).subspan(offset + ofdm::kCpLen, ofdm::kFftSize),
          sig_grid[a]);
    }
  };

  demod_symbol_grids(probe.lsig_offset());
  const auto lsig_llrs = decode_sig_llrs(sig_grid, h_legacy, nv_bin, /*qbpsk=*/false);
  const auto lsig_bits = viterbi_.decode_soft(lsig_llrs, /*terminated=*/true);
  if (const auto lsig = wifi::decode_lsig(lsig_bits)) {
    pkt.lsig = *lsig;
    pkt.lsig_ok = true;
  }

  // ---- HT-SIG (two symbols, one coded block). ----
  std::vector<float> htsig_llrs;
  for (std::size_t s = 0; s < 2; ++s) {
    demod_symbol_grids(probe.htsig_offset() + s * ofdm::kSymLen);
    const auto llrs = decode_sig_llrs(sig_grid, h_legacy, nv_bin, /*qbpsk=*/true);
    htsig_llrs.insert(htsig_llrs.end(), llrs.begin(), llrs.end());
  }
  const auto htsig_bits = viterbi_.decode_soft(htsig_llrs, /*terminated=*/true);
  const auto htsig = wifi::decode_htsig(htsig_bits);
  if (!htsig) return pkt;
  pkt.htsig = *htsig;
  pkt.htsig_ok = true;

  // ---- Frame geometry from HT-SIG. ----
  wifi::McsInfo mcs;
  try {
    mcs = wifi::mcs_info(pkt.htsig.mcs);
  } catch (const std::invalid_argument&) {
    pkt.htsig_ok = false;  // CRC passed but the MCS is outside our support
    return pkt;
  }
  const bool stbc = pkt.htsig.stbc != 0;
  if (stbc && (pkt.htsig.stbc != 1 || mcs.nss != 1)) {
    pkt.htsig_ok = false;  // only the 1-stream / 2-STS Alamouti mode exists
    return pkt;
  }
  const std::size_t nsts = stbc ? 2 : mcs.nss;
  // The FEC family is announced in HT-SIG, so the receiver self-configures.
  const FecType fec_type = pkt.htsig.fec_coding ? FecType::kLdpc : FecType::kBcc;
  FrameLayout fl;
  fl.nss = nsts;
  fl.n_data_symbols = data_symbol_count(mcs, pkt.htsig.length, cfg_.fec_enabled,
                                        stbc, fec_type);
  if (avail < fl.total_samples()) return pkt;  // truncated capture

  // ---- HT-LTF channel estimation. ----
  const std::size_t n_ltf = fl.n_ht_ltfs();
  std::vector<std::vector<std::vector<cf32>>> ltf_grids(
      nrx_, std::vector<std::vector<cf32>>(n_ltf, std::vector<cf32>(ofdm::kFftSize)));
  for (std::size_t a = 0; a < nrx_; ++a) {
    for (std::size_t n = 0; n < n_ltf; ++n) {
      fft64.forward(std::span<const cf32>(rx[a]).subspan(
                        fl.htltf_offset() + n * wifi::kHtLtfLen + ofdm::kCpLen, 64),
                    ltf_grids[a][n]);
    }
  }
  const chanest::LsChannelEstimator ls(nrx_, nsts);
  auto est = ls.estimate(ltf_grids);
  if (cfg_.smoothing) {
    static const auto bins = occupied_ht_bins();
    std::vector<int> csd(nsts);
    for (std::size_t s = 0; s < nsts; ++s) {
      csd[s] = wifi::ht_csd_samples(s, nsts);
    }
    chanest::smooth_frequency(est, bins, csd);
  }

  // ---- Data symbols. ----
  const mod::Constellation constellation(mcs.modulation);
  const unsigned bps = constellation.bits_per_symbol();
  const auto& data_bins = ht_demod_.map().data_bins();
  const auto& pilot_bins = ht_demod_.map().pilot_bins();

  chanest::PilotPhaseTracker tracker(est);
  chanest::EvmSnrEstimator pilot_evm;

  std::unique_ptr<eq::LinearEqualizer> lin_eq;
  std::unique_ptr<eq::MlDetector> ml_det;
  if (!stbc) {
    if (cfg_.equalizer == eq::EqualizerType::kMaxLikelihood && mcs.nss <= 2) {
      ml_det = std::make_unique<eq::MlDetector>(constellation, mcs.nss);
    } else {
      lin_eq = std::make_unique<eq::LinearEqualizer>(
          cfg_.equalizer == eq::EqualizerType::kMaxLikelihood
              ? eq::EqualizerType::kMmse
              : cfg_.equalizer);
    }
  }

  // Pre-fetch channel matrices for the data bins.
  std::vector<eq::CMatrix> h_at(ofdm::kFftSize);
  for (const std::size_t b : data_bins) h_at[b] = est.at_bin(b);

  std::vector<std::vector<float>> stream_llrs(mcs.nss);
  for (auto& v : stream_llrs) {
    v.reserve(fl.n_data_symbols * wifi::kHtDataCarriers * bps);
  }

  std::vector<std::vector<cf32>> grids(nrx_, std::vector<cf32>(ofdm::kFftSize));
  std::vector<cf32> y(nrx_);
  std::vector<float> llr_buf(mcs.nss * bps);

  // Demodulate data symbol `n` into `out_grids`, run pilot CPE tracking and
  // pilot-EVM accounting, and return the derotation phasor to apply.
  const auto demod_data_symbol = [&](std::size_t n,
                                     std::vector<std::vector<cf32>>& out_grids) {
    const std::size_t off = fl.data_offset() + n * ofdm::kSymLen;
    for (std::size_t a = 0; a < nrx_; ++a) {
      fft64.forward(std::span<const cf32>(rx[a]).subspan(off + ofdm::kCpLen, 64),
                    out_grids[a]);
    }
    cf32 derotate{1.0F, 0.0F};
    std::vector<std::array<cf32, 4>> rx_pilots(nrx_);
    for (std::size_t a = 0; a < nrx_; ++a) {
      for (std::size_t p = 0; p < 4; ++p) {
        rx_pilots[a][p] = out_grids[a][pilot_bins[p]];
      }
    }
    if (cfg_.phase_tracking) {
      const double raw = tracker.estimate_cpe(rx_pilots, n);
      const double theta = tracker.track(raw);
      derotate = dsp::phasor(static_cast<float>(-theta));
    }
    // Pilot EVM (after derotation) feeds the fine-grained SNR estimate.
    for (std::size_t a = 0; a < nrx_; ++a) {
      for (std::size_t p = 0; p < 4; ++p) {
        dsp::cf64 expected{0.0, 0.0};
        for (std::size_t s = 0; s < nsts; ++s) {
          const auto pv = ofdm::ht_data_pilots(nsts, s, n);
          expected += dsp::cf64(est.h[a][s][pilot_bins[p]]) * dsp::cf64(pv[p]);
        }
        pilot_evm.add(pilot_bins[p], rx_pilots[a][p] * derotate,
                      cf32(static_cast<float>(expected.real()),
                           static_cast<float>(expected.imag())));
      }
    }
    return derotate;
  };

  // Decision-directed LMS channel update for one subcarrier: slice the
  // equalized symbols, form the reconstruction error per antenna, and nudge
  // H toward explaining the observation. Counters intra-packet fading.
  const bool dd_tracking = cfg_.decision_tracking && !stbc && lin_eq != nullptr;
  std::vector<dsp::cf64> sliced(mcs.nss);
  const auto dd_update = [&](std::size_t bin, std::span<const cf32> y_obs,
                             const eq::EqualizedCarrier& eqd) {
    auto& h = h_at[bin];
    for (std::size_t s = 0; s < mcs.nss; ++s) {
      sliced[s] =
          dsp::cf64(constellation.points()[constellation.hard_decision(eqd.symbols[s])]);
    }
    const double mu = static_cast<double>(cfg_.decision_tracking_mu) /
                      static_cast<double>(mcs.nss);
    for (std::size_t a = 0; a < nrx_; ++a) {
      dsp::cf64 pred{0.0, 0.0};
      for (std::size_t s = 0; s < mcs.nss; ++s) pred += h(a, s) * sliced[s];
      const dsp::cf64 err = dsp::cf64(y_obs[a]) - pred;
      for (std::size_t s = 0; s < mcs.nss; ++s) {
        // Unit-energy constellations: |x|^2 ~ 1, so no normalizer needed.
        h(a, s) += mu * err * std::conj(sliced[s]);
      }
    }
  };

  if (!stbc) {
    for (std::size_t n = 0; n < fl.n_data_symbols; ++n) {
      const cf32 derotate = demod_data_symbol(n, grids);
      for (const std::size_t bin : data_bins) {
        for (std::size_t a = 0; a < nrx_; ++a) y[a] = grids[a][bin] * derotate;

        if (ml_det) {
          ml_det->demap(h_at[bin], y, nv_bin, llr_buf);
          for (std::size_t s = 0; s < mcs.nss; ++s) {
            for (unsigned b = 0; b < bps; ++b) {
              stream_llrs[s].push_back(llr_buf[s * bps + b]);
            }
          }
        } else {
          const auto eqd = lin_eq->equalize(h_at[bin], y, nv_bin);
          for (std::size_t s = 0; s < mcs.nss; ++s) {
            constellation.demap_soft(eqd.symbols[s], eqd.noise_vars[s],
                                     std::span<float>(llr_buf).first(bps));
            for (unsigned b = 0; b < bps; ++b) stream_llrs[s].push_back(llr_buf[b]);
          }
          if (dd_tracking) dd_update(bin, y, eqd);
        }
      }
    }
  } else {
    // Alamouti: decode pairwise. LLRs of the pair's first symbol must land
    // before the second's to match the transmitter's bit order.
    std::vector<std::vector<cf32>> grids2(nrx_, std::vector<cf32>(ofdm::kFftSize));
    std::vector<cf32> y2(nrx_);
    std::vector<float> llrs_first(data_bins.size() * bps);
    std::vector<float> llrs_second(data_bins.size() * bps);
    for (std::size_t n = 0; n + 1 < fl.n_data_symbols + 1; n += 2) {
      const cf32 derot1 = demod_data_symbol(n, grids);
      const cf32 derot2 = demod_data_symbol(n + 1, grids2);
      for (std::size_t i = 0; i < data_bins.size(); ++i) {
        const std::size_t bin = data_bins[i];
        for (std::size_t a = 0; a < nrx_; ++a) {
          y[a] = grids[a][bin] * derot1;
          y2[a] = grids2[a][bin] * derot2;
        }
        const auto dec = eq::alamouti_combine(h_at[bin], y, y2, nv_bin);
        constellation.demap_soft(
            dec.d1, dec.noise_var,
            std::span<float>(llrs_first).subspan(i * bps, bps));
        constellation.demap_soft(
            dec.d2, dec.noise_var,
            std::span<float>(llrs_second).subspan(i * bps, bps));
      }
      stream_llrs[0].insert(stream_llrs[0].end(), llrs_first.begin(),
                            llrs_first.end());
      stream_llrs[0].insert(stream_llrs[0].end(), llrs_second.begin(),
                            llrs_second.end());
    }
  }

  pkt.pilot_snr = pilot_evm.estimate();
  pkt.residual_cfo_norm = tracker.residual_cfo_norm();
  pkt.channel = std::move(est);

  // ---- Deinterleave per stream, merge, FEC-decode, descramble. ----
  const wifi::StreamParser parser(mcs.bits_per_subcarrier(), mcs.nss);
  std::vector<std::vector<float>> deinterleaved(mcs.nss);
  for (std::size_t s = 0; s < mcs.nss; ++s) {
    const wifi::Interleaver il(mcs.bits_per_subcarrier(), s, mcs.nss);
    deinterleaved[s] = il.deinterleave(stream_llrs[s]);
  }
  const auto merged = parser.merge(deinterleaved);

  std::vector<std::uint8_t> scrambled;
  if (cfg_.fec_enabled && fec_type == FecType::kLdpc) {
    static const fec::LdpcCode code;
    const std::size_t n_cw = ldpc_codeword_count(pkt.htsig.length);
    if (merged.size() < n_cw * kLdpcN) return pkt;
    scrambled.reserve(n_cw * kLdpcK);
    for (std::size_t cw = 0; cw < n_cw; ++cw) {
      const auto word = code.decode(
          std::span<const float>(merged).subspan(cw * kLdpcN, kLdpcN));
      scrambled.insert(scrambled.end(), word.begin(),
                       word.begin() + static_cast<long>(kLdpcK));
    }
  } else if (cfg_.fec_enabled) {
    const std::size_t n_info = fl.n_data_symbols * mcs.data_bits_per_symbol();
    auto full = fec::depuncture(merged, mcs.rate);
    full.resize(2 * n_info, 0.0F);
    scrambled = viterbi_.decode_soft(full, /*terminated=*/false);
  } else {
    scrambled.resize(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      scrambled[i] = (merged[i] < 0.0F) ? 1 : 0;
    }
  }

  const std::size_t psdu_bits = 8 * static_cast<std::size_t>(pkt.htsig.length);
  if (scrambled.size() < kServiceBits + psdu_bits) return pkt;

  const std::uint32_t seed =
      recover_scrambler_seed(std::span(scrambled).first(7));
  fec::scramble_in_place(scrambled, seed);

  pkt.psdu = wifi::bits_to_bytes(
      std::span(scrambled).subspan(kServiceBits, psdu_bits));
  pkt.fcs_ok = wifi::psdu_fcs_ok(pkt.psdu);
  return pkt;
}

}  // namespace mimonet::core
