// Least-squares MIMO channel estimation from the HT-LTF symbols, using the
// orthogonal P-matrix despreading, plus optional frequency smoothing.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/sample_grid.hpp"
#include "dsp/types.hpp"
#include "eq/matrix.hpp"
#include "ofdm/subcarriers.hpp"

namespace mimonet::chanest {

using dsp::cf32;

/// Per-subcarrier MIMO channel estimate. h[rx][ss][bin] spans all 64 FFT
/// bins; only occupied bins carry meaningful values.
struct MimoChannelEstimate {
  std::size_t nrx = 0;
  std::size_t nss = 0;
  std::vector<std::vector<std::vector<cf32>>> h;

  /// Resize to nrx x nss x 64 zeroed bins, reusing existing nested storage
  /// (no temporaries, so a warm workspace stays allocation-free).
  void resize_zeroed(std::size_t nrx_in, std::size_t nss_in);

  /// Channel matrix (nrx x nss) at one FFT bin, for the equalizer.
  [[nodiscard]] eq::CMatrix at_bin(std::size_t bin) const;

  /// at_bin without the return-value copy.
  void at_bin_into(std::size_t bin, eq::CMatrix& m) const;

  /// Mean squared error against a reference channel over the given bins.
  [[nodiscard]] double mse_against(
      const std::vector<std::vector<std::vector<cf32>>>& reference,
      const std::vector<std::size_t>& bins) const;
};

/// LS estimator: given the FFT grids of the received HT-LTF symbols, invert
/// the known LTF sequence and the P-matrix spreading.
class LsChannelEstimator {
 public:
  LsChannelEstimator(std::size_t nrx, std::size_t nss);

  /// @param ltf_grids [rx][ltf_symbol][bin]: 64-bin FFTs of each received
  ///        HT-LTF symbol (CP stripped). ltf_symbol count must equal
  ///        wifi::num_ht_ltfs(nss).
  [[nodiscard]] MimoChannelEstimate estimate(
      const std::vector<std::vector<std::vector<cf32>>>& ltf_grids) const;

  /// estimate into caller storage (nested vectors reused, capacity kept).
  void estimate_into(const std::vector<std::vector<std::vector<cf32>>>& ltf_grids,
                     MimoChannelEstimate& est) const;

  /// estimate from a contiguous [rx][ltf_symbol][bin] tensor (the hot path:
  /// the receiver FFTs HT-LTF symbols straight into tensor rows).
  void estimate_into(const dsp::IqTensor& ltf_grids, MimoChannelEstimate& est) const;

  /// Legacy (combined) channel estimate per RX antenna from the two L-LTF
  /// periods: grids[rx][rep][bin] with rep in {0, 1}. Returns h[rx][bin].
  /// This combined response includes the CSD of all TX chains and is what
  /// the L-SIG/HT-SIG decoder equalizes with.
  [[nodiscard]] static std::vector<std::vector<cf32>> estimate_legacy(
      const std::vector<std::vector<std::vector<cf32>>>& grids);

  /// estimate_legacy into caller storage (rows reused, capacity kept).
  static void estimate_legacy_into(
      const std::vector<std::vector<std::vector<cf32>>>& grids,
      std::vector<std::vector<cf32>>& h);

  /// estimate_legacy from a contiguous [rx][rep][bin] tensor.
  static void estimate_legacy_into(const dsp::IqTensor& grids,
                                   std::vector<std::vector<cf32>>& h);

 private:
  std::size_t nrx_;
  std::size_t nss_;
};

/// 3-tap frequency smoothing across adjacent occupied subcarriers (reduces
/// estimation noise at the cost of bias under long delay spread). Operates
/// in place on the given bins, which must be sorted by logical index.
///
/// `csd_per_stream` (one entry per spatial stream, samples) lets the
/// smoother compensate the known cyclic-shift-diversity phase ramp before
/// averaging: without it, a CSD of -8 samples rotates the channel 45
/// degrees per bin and the smoother would systematically attenuate that
/// stream's estimate. Pass empty to skip compensation (no-CSD channels).
void smooth_frequency(MimoChannelEstimate& est, const std::vector<std::size_t>& bins,
                      std::span<const int> csd_per_stream = {});

}  // namespace mimonet::chanest
