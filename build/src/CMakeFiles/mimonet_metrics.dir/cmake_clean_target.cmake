file(REMOVE_RECURSE
  "libmimonet_metrics.a"
)
