file(REMOVE_RECURSE
  "libmimonet_dsp.a"
)
