// Fine timing via L-LTF cross-correlation and fine CFO from the two LTF
// repetitions, combined across RX antennas.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::sync {

using dsp::cf32;

struct FineSyncResult {
  /// Index (into the searched span) of the first sample of the L-LTF field
  /// (i.e. the start of its 32-sample guard interval).
  std::size_t lltf_start = 0;
  /// Fine CFO in cycles/sample from the lag-64 LTF autocorrelation
  /// (unambiguous to +/- 156.25 kHz at 20 Msps).
  double cfo_norm = 0.0;
  /// Normalized peak correlation in [0, 1]; low values mean the LTF was not
  /// really there.
  double peak = 0.0;
};

/// Locates the L-LTF by cross-correlating against the known 64-sample LTF
/// period and exploiting its two back-to-back repetitions.
class FineSynchronizer {
 public:
  FineSynchronizer();

  /// Search `rx_antennas` (equal-length spans) for the L-LTF. The span
  /// should start at (or shortly before) the coarse packet-start estimate
  /// and cover at least lstf + lltf samples.
  [[nodiscard]] std::optional<FineSyncResult> locate(
      std::span<const std::span<const cf32>> rx_antennas) const;

  /// locate with caller-provided per-antenna cross-correlation scratch
  /// (resized, capacity kept).
  [[nodiscard]] std::optional<FineSyncResult> locate(
      std::span<const std::span<const cf32>> rx_antennas,
      std::vector<std::vector<cf32>>& xcorr_scratch) const;

  /// Estimate the residual CFO from the two 64-sample LTF periods starting
  /// at `ltf_payload_start` (= lltf_start + 32). Spans must reach 128
  /// samples past that offset.
  [[nodiscard]] double estimate_cfo(
      std::span<const std::span<const cf32>> rx_antennas,
      std::size_t ltf_payload_start) const;

 private:
  std::vector<cf32> reference_;  // one 64-sample LTF period, no CSD
};

}  // namespace mimonet::sync
