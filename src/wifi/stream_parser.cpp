#include "wifi/stream_parser.hpp"

#include <algorithm>
#include <stdexcept>

namespace mimonet::wifi {

StreamParser::StreamParser(unsigned n_bpscs, std::size_t nss)
    : nss_(nss), s_(std::max<std::size_t>(n_bpscs / 2, 1)) {
  if (nss == 0 || nss > 4) throw std::invalid_argument("StreamParser: nss must be 1..4");
}

std::vector<std::vector<std::uint8_t>> StreamParser::parse(
    std::span<const std::uint8_t> coded) const {
  if (coded.size() % (nss_ * s_) != 0) {
    throw std::invalid_argument("StreamParser::parse: length not a multiple of nss*s");
  }
  std::vector<std::vector<std::uint8_t>> out(nss_);
  const std::size_t per_stream = coded.size() / nss_;
  for (auto& v : out) v.reserve(per_stream);

  std::size_t idx = 0;
  while (idx < coded.size()) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out[ss].push_back(coded[idx++]);
      }
    }
  }
  return out;
}

std::vector<float> StreamParser::merge(
    std::span<const std::vector<float>> streams) const {
  if (streams.size() != nss_) {
    throw std::invalid_argument("StreamParser::merge: wrong stream count");
  }
  const std::size_t per_stream = streams[0].size();
  for (const auto& st : streams) {
    if (st.size() != per_stream || per_stream % s_ != 0) {
      throw std::invalid_argument("StreamParser::merge: ragged or misaligned streams");
    }
  }
  std::vector<float> out;
  out.reserve(per_stream * nss_);
  for (std::size_t g = 0; g < per_stream / s_; ++g) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out.push_back(streams[ss][g * s_ + b]);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> StreamParser::merge_bits(
    std::span<const std::vector<std::uint8_t>> streams) const {
  if (streams.size() != nss_) {
    throw std::invalid_argument("StreamParser::merge_bits: wrong stream count");
  }
  const std::size_t per_stream = streams[0].size();
  for (const auto& st : streams) {
    if (st.size() != per_stream || per_stream % s_ != 0) {
      throw std::invalid_argument("StreamParser::merge_bits: ragged or misaligned streams");
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(per_stream * nss_);
  for (std::size_t g = 0; g < per_stream / s_; ++g) {
    for (std::size_t ss = 0; ss < nss_; ++ss) {
      for (std::size_t b = 0; b < s_; ++b) {
        out.push_back(streams[ss][g * s_ + b]);
      }
    }
  }
  return out;
}

}  // namespace mimonet::wifi
