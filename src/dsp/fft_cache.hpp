// Size-keyed FftPlan caches.
//
// An FftPlan's construction (bit-reversal + twiddle tables) costs far more
// than the transform it performs at OFDM sizes, so no stage should ever
// build one per call. Two flavors:
//
//  - FftPlanCache: lock-free, owned by a workspace (one per Monte-Carlo
//    worker). Use this inside the hot path.
//  - shared_fft_plan(): process-wide, mutex-guarded. Backs the one-shot
//    dsp::fft()/ifft() conveniences and legacy value-returning APIs that
//    have no workspace to borrow from.
//
// Plans are immutable once built and never evicted, so references returned
// by either cache stay valid for the cache's lifetime (the process, for
// shared_fft_plan).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "dsp/fft.hpp"

namespace mimonet::dsp {

/// Unsynchronized plan cache for single-owner (per-worker) use.
class FftPlanCache {
 public:
  /// Plan for `size`, built on first request. The reference stays valid for
  /// the cache's lifetime.
  const FftPlan& plan(std::size_t size) {
    for (const auto& p : plans_) {
      if (p->size() == size) return *p;
    }
    plans_.push_back(std::make_unique<FftPlan>(size));
    return *plans_.back();
  }

 private:
  std::vector<std::unique_ptr<FftPlan>> plans_;
};

/// Process-wide plan cache; thread-safe, never evicts.
[[nodiscard]] const FftPlan& shared_fft_plan(std::size_t size);

}  // namespace mimonet::dsp
