// Random sources and streaming statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dsp/rng.hpp"
#include "dsp/stats.hpp"
#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet::dsp;

TEST(ComplexGaussian, VarianceMatchesRequest) {
  ComplexGaussian g(123, 2.5);
  std::vector<cf32> v(200000);
  g.fill(v);
  EXPECT_NEAR(mean_power(v), 2.5, 0.05);
}

TEST(ComplexGaussian, ZeroVarianceGivesZeros) {
  ComplexGaussian g(1, 0.0);
  std::vector<cf32> v(16);
  g.fill(v);
  for (const auto& x : v) EXPECT_EQ(std::abs(x), 0.0F);
}

TEST(ComplexGaussian, NegativeVarianceThrows) {
  EXPECT_THROW(ComplexGaussian(1, -1.0), std::invalid_argument);
}

TEST(ComplexGaussian, SeedsAreReproducible) {
  ComplexGaussian a(7, 1.0);
  ComplexGaussian b(7, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.sample(), b.sample());
}

TEST(ComplexGaussian, AddToAddsNoise) {
  ComplexGaussian g(5, 1.0);
  std::vector<cf32> v(100000, cf32{1.0F, 0.0F});
  g.add_to(v);
  // Mean should remain ~1, power ~ 1 + 1.
  EXPECT_NEAR(mean_power(v), 2.0, 0.05);
}

TEST(BitSource, BitsAreBalancedAndBinary) {
  BitSource src(99);
  const auto bits = src.bits(100000);
  std::size_t ones = 0;
  for (const auto b : bits) {
    ASSERT_LE(b, 1);
    ones += b;
  }
  EXPECT_NEAR(static_cast<double>(ones) / bits.size(), 0.5, 0.01);
}

TEST(BitSource, BytesCoverRange) {
  BitSource src(3);
  const auto bytes = src.bytes(100000);
  std::vector<std::size_t> hist(256, 0);
  for (const auto b : bytes) ++hist[b];
  for (const auto h : hist) EXPECT_GT(h, 0U);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, RmsOfConstant) {
  RunningStats s;
  for (int i = 0; i < 5; ++i) s.add(-3.0);
  EXPECT_NEAR(s.rms(), 3.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 0.0, 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.rms(), 0.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5U);
  EXPECT_EQ(h.counts()[0], 2U);
  EXPECT_EQ(h.counts()[9], 2U);
  EXPECT_EQ(h.counts()[5], 1U);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_NEAR(h.fraction(5), 0.2, 1e-12);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(RunningStats, MergeMatchesSinglePassOnSplitStream) {
  // Fill one accumulator with the whole stream, two with its halves; the
  // merged pair must reproduce the single-pass moments.
  RunningStats whole;
  RunningStats lo;
  RunningStats hi;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(0.7 * i) * (1.0 + 0.1 * i);
    whole.add(x);
    (i < 23 ? lo : hi).add(x);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), whole.count());
  EXPECT_EQ(lo.min(), whole.min());
  EXPECT_EQ(lo.max(), whole.max());
  EXPECT_NEAR(lo.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(lo.variance(), whole.variance(), 1e-12);
  EXPECT_NEAR(lo.rms(), whole.rms(), 1e-12);
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2U);
  EXPECT_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2U);
  EXPECT_EQ(b.mean(), mean);
  EXPECT_EQ(b.min(), 1.0);
  EXPECT_EQ(b.max(), 3.0);
}

TEST(Histogram, MergeSumsBinsAndRejectsMismatch) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  Histogram whole(0.0, 10.0, 10);
  for (int i = 0; i < 30; ++i) {
    const double x = (i * 37) % 100 / 10.0;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), whole.total());
  EXPECT_EQ(a.counts(), whole.counts());
  Histogram other_bins(0.0, 10.0, 5);
  Histogram other_range(0.0, 5.0, 10);
  EXPECT_THROW(a.merge(other_bins), std::invalid_argument);
  EXPECT_THROW(a.merge(other_range), std::invalid_argument);
}

// Regression (ISSUE 2): NaN used to reach an undefined float->long cast in
// Histogram::add; it is now dropped, while +/-inf lands in the edge bins
// like any other out-of-range sample.
TEST(Histogram, NonFiniteSamplesAreHandled) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0U);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e308);
  h.add(-1e308);
  EXPECT_EQ(h.total(), 4U);
  EXPECT_EQ(h.counts().front(), 2U);
  EXPECT_EQ(h.counts().back(), 2U);
}

}  // namespace
