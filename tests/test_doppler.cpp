// Time-varying (Doppler) fading: statistics of the tap evolution and its
// end-to-end effect on the receiver.
#include <gtest/gtest.h>

#include "channel/mimo_channel.hpp"
#include "core/link_simulator.hpp"
#include "dsp/vector_ops.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

channel::ChannelConfig doppler_config(double doppler, std::uint64_t seed) {
  channel::ChannelConfig cfg;
  cfg.fading = true;
  cfg.doppler_norm = doppler;
  cfg.snr_db = 60.0;  // effectively noiseless: isolate the fading process
  cfg.seed = seed;
  return cfg;
}

TEST(Doppler, NegativeDopplerRejected) {
  channel::ChannelConfig cfg;
  cfg.doppler_norm = -1.0;
  EXPECT_THROW(channel::MimoChannel{cfg}, std::invalid_argument);
}

TEST(Doppler, ZeroDopplerMatchesStaticPath) {
  // doppler_norm = 0 must reproduce the static-fading result bit for bit
  // (it routes through the original FIR path).
  auto cfg = doppler_config(0.0, 3);
  channel::MimoChannel a(cfg);
  channel::MimoChannel b(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(500, cf32{1.0F, 0.0F}));
  const auto ya = a.transmit(tx);
  const auto yb = b.transmit(tx);
  EXPECT_LT(dsp::rms_error(ya[0], yb[0]), 1e-9);
}

TEST(Doppler, ChannelDecorrelatesAcrossThePacket) {
  // With strong Doppler, the effective gain at the end of a long constant
  // input differs from the start; with none, it is constant.
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(8000, cf32{1.0F, 0.0F}));

  auto run = [&](double doppler) {
    auto cfg = doppler_config(doppler, 7);
    channel::MimoChannel chan(cfg);
    const auto y = chan.transmit(tx);
    const auto head = std::span<const cf32>(y[0]).subspan(10, 64);
    const auto tail = std::span<const cf32>(y[0]).subspan(7800, 64);
    // Compare mean complex gain of head vs tail (input is constant 1).
    dsp::cf64 g1{0, 0};
    dsp::cf64 g2{0, 0};
    for (const auto v : head) g1 += dsp::cf64(v);
    for (const auto v : tail) g2 += dsp::cf64(v);
    return std::abs(g1 / 64.0 - g2 / 64.0);
  };

  const double drift_static = run(0.0);
  const double drift_fast = run(5e-5);
  EXPECT_LT(drift_static, 1e-3);
  EXPECT_GT(drift_fast, 10.0 * drift_static);
}

TEST(Doppler, PowerStaysStationary) {
  // The AR(1) evolution must preserve average channel power: long-run
  // output power through a unit-power input stays ~1.
  auto cfg = doppler_config(1e-4, 11);
  channel::MimoChannel chan(cfg);
  std::vector<std::vector<cf32>> tx(1, std::vector<cf32>(60000, cf32{1.0F, 0.0F}));
  const auto y = chan.transmit(tx);
  EXPECT_NEAR(dsp::mean_power(std::span<const cf32>(y[0]).subspan(100, 59000)),
              1.0, 0.35);  // one realization: generous tolerance
}

TEST(Doppler, SlowFadingStillDecodes) {
  auto cfg = core::make_link_config(3, 30.0);
  cfg.channel.fading = true;
  cfg.channel.doppler_norm = 1e-6;  // pedestrian-ish
  cfg.psdu_payload_bytes = 800;
  cfg.seed = 5;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(5);
  EXPECT_LE(res.per.failures(), 1U);
}

TEST(Doppler, DecisionTrackingExtendsDopplerRange) {
  // With LMS decision-directed channel updates the receiver follows the
  // fading across the packet; at a Doppler that defeats the static LTF
  // estimate, DD tracking must lose no more packets (typically far fewer).
  auto base = core::make_link_config(4, 30.0);
  base.psdu_payload_bytes = 1500;
  base.channel.fading = true;
  base.channel.doppler_norm = 1e-5;
  base.seed = 3;
  auto with_dd = base;
  with_dd.phy.decision_tracking = true;

  const auto r_off = core::LinkSimulator(base).run(15);
  const auto r_on = core::LinkSimulator(with_dd).run(15);
  EXPECT_LT(r_on.per.failures(), r_off.per.failures());
}

TEST(Doppler, DecisionTrackingHarmlessOnStaticChannel) {
  auto cfg = core::make_link_config(7, 30.0);
  cfg.phy.decision_tracking = true;
  cfg.psdu_payload_bytes = 1000;
  core::LinkSimulator sim(cfg);
  const auto res = sim.run(4);
  EXPECT_EQ(res.per.failures(), 0U);
  EXPECT_EQ(res.ber.errors(), 0U);
}

TEST(Doppler, FastFadingHurtsLongPacketsMore) {
  // Channel aging: the LTF estimate goes stale by the end of a long packet.
  auto short_pkt = core::make_link_config(7, 35.0);
  short_pkt.channel.fading = true;
  short_pkt.channel.doppler_norm = 4e-5;
  short_pkt.psdu_payload_bytes = 100;
  short_pkt.seed = 8;
  auto long_pkt = short_pkt;
  long_pkt.psdu_payload_bytes = 3000;

  const auto r_short = core::LinkSimulator(short_pkt).run(15);
  const auto r_long = core::LinkSimulator(long_pkt).run(15);
  EXPECT_LE(r_short.per.failures(), r_long.per.failures());
  EXPECT_GT(r_long.per.failures(), 0U);
}

}  // namespace
