#include "eq/precoder.hpp"

#include <cmath>
#include <stdexcept>

namespace mimonet::eq {

CMatrix stack_user_rows(std::span<const std::array<cf32, 4>> rows,
                        std::size_t n_tx) {
  if (rows.empty() || n_tx == 0 || n_tx > CMatrix::kMaxDim ||
      rows.size() > CMatrix::kMaxDim) {
    throw std::invalid_argument("stack_user_rows: bad dimensions");
  }
  CMatrix h(rows.size(), n_tx);
  for (std::size_t u = 0; u < rows.size(); ++u) {
    for (std::size_t a = 0; a < n_tx; ++a) {
      h(u, a) = dsp::cf64(rows[u][a]);
    }
  }
  return h;
}

Precoder Precoder::identity(std::size_t n) {
  if (n == 0 || n > CMatrix::kMaxDim) {
    throw std::invalid_argument("Precoder::identity: bad stream count");
  }
  CMatrix w = CMatrix::identity(n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::size_t a = 0; a < n; ++a) w(a, a) *= scale;
  return Precoder(std::move(w));
}

Precoder Precoder::pass_through(std::size_t n_tx, std::size_t n_users) {
  if (n_users == 0 || n_users > n_tx || n_tx > CMatrix::kMaxDim) {
    throw std::invalid_argument("Precoder::pass_through: bad dimensions");
  }
  CMatrix w(n_tx, n_users);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n_users));
  for (std::size_t u = 0; u < n_users; ++u) w(u, u) = scale;
  return Precoder(std::move(w));
}

Precoder Precoder::zero_forcing(const CMatrix& h) {
  if (h.rows() == 0 || h.cols() == 0 || h.rows() > h.cols()) {
    throw std::invalid_argument(
        "Precoder::zero_forcing: need n_users <= n_tx, both nonzero");
  }
  // W = H^H (H H^H)^{-1}: the right pseudo-inverse, exact inversion when
  // square. The Gram matrix H H^H is n_users x n_users, so the inverse cost
  // is bounded by the user count, not the antenna count.
  const CMatrix hh = h.hermitian();
  const CMatrix gram = h * hh;
  CMatrix w = hh * gram.inverse();

  const double frob = std::sqrt(w.frob_sqr());
  if (!(frob > 0.0) || !std::isfinite(frob)) {
    throw std::runtime_error("Precoder::zero_forcing: degenerate weights");
  }
  const double scale = 1.0 / frob;
  for (std::size_t a = 0; a < w.rows(); ++a) {
    for (std::size_t u = 0; u < w.cols(); ++u) w(a, u) *= scale;
  }
  return Precoder(std::move(w));
}

Precoder Precoder::zero_forcing_rows(std::span<const std::array<cf32, 4>> rows,
                                     std::size_t n_tx) {
  return zero_forcing(stack_user_rows(rows, n_tx));
}

void Precoder::effective_row(std::span<const cf32> h_row,
                             std::span<cf32> out) const {
  if (h_row.size() < n_tx() || out.size() < n_users()) {
    throw std::invalid_argument("Precoder::effective_row: bad spans");
  }
  for (std::size_t u = 0; u < n_users(); ++u) {
    dsp::cf64 acc{0.0, 0.0};
    for (std::size_t a = 0; a < n_tx(); ++a) {
      acc += dsp::cf64(h_row[a]) * w_(a, u);
    }
    out[u] = cf32(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
}

}  // namespace mimonet::eq
