// Measurement layer: BER/PER counters, EVM, throughput, confidence bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <string_view>

#include "metrics/counters.hpp"
#include "metrics/rx_error.hpp"

namespace {

using namespace mimonet::metrics;
using mimonet::dsp::cf32;

TEST(Wilson, ContainsTrueProportion) {
  const auto iv = wilson_interval(50, 100);
  EXPECT_LT(iv.lo, 0.5);
  EXPECT_GT(iv.hi, 0.5);
  EXPECT_GT(iv.lo, 0.38);
  EXPECT_LT(iv.hi, 0.62);
}

TEST(Wilson, ZeroTrialsGivesFullRange) {
  const auto iv = wilson_interval(0, 0);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_EQ(iv.hi, 1.0);
}

TEST(Wilson, ZeroSuccessesStillAboveZeroUpper) {
  const auto iv = wilson_interval(0, 1000);
  EXPECT_EQ(iv.lo, 0.0);
  EXPECT_GT(iv.hi, 0.0);
  EXPECT_LT(iv.hi, 0.01);
}

TEST(BerCounter, CountsMismatches) {
  BerCounter ber;
  const std::vector<std::uint8_t> a{0, 1, 1, 0, 1};
  const std::vector<std::uint8_t> b{0, 1, 0, 0, 0};
  ber.add(a, b);
  EXPECT_EQ(ber.bits(), 5U);
  EXPECT_EQ(ber.errors(), 2U);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.4);
}

TEST(BerCounter, SizeMismatchThrows) {
  BerCounter ber;
  EXPECT_THROW(ber.add(std::vector<std::uint8_t>(3), std::vector<std::uint8_t>(4)),
               std::invalid_argument);
}

TEST(BerCounter, AddCountsAndReset) {
  BerCounter ber;
  ber.add_counts(3, 1000);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.003);
  ber.reset();
  EXPECT_EQ(ber.bits(), 0U);
  EXPECT_DOUBLE_EQ(ber.ber(), 0.0);
}

TEST(PerCounter, TracksFailures) {
  PerCounter per;
  per.add(true);
  per.add(false);
  per.add(true);
  per.add(true);
  EXPECT_EQ(per.packets(), 4U);
  EXPECT_EQ(per.failures(), 1U);
  EXPECT_DOUBLE_EQ(per.per(), 0.25);
}

TEST(EvmMeter, KnownError) {
  EvmMeter evm;
  evm.add(cf32{1.1F, 0.0F}, cf32{1.0F, 0.0F});
  evm.add(cf32{0.9F, 0.0F}, cf32{1.0F, 0.0F});
  EXPECT_NEAR(evm.evm_rms(), 0.1, 1e-6);
  EXPECT_NEAR(evm.evm_db(), -20.0, 0.01);
}

TEST(EvmMeter, EmptyIsSafe) {
  EvmMeter evm;
  EXPECT_EQ(evm.evm_rms(), 0.0);
  EXPECT_EQ(evm.count(), 0U);
}

TEST(ThroughputMeter, GoodputAccounting) {
  ThroughputMeter tm;
  tm.add_packet(1000, 400.0);  // 8000 bits in 400 us = 20 Mb/s
  EXPECT_NEAR(tm.goodput_mbps(), 20.0, 1e-9);
  tm.add_packet(0, 400.0);  // lost packet halves goodput
  EXPECT_NEAR(tm.goodput_mbps(), 10.0, 1e-9);
  EXPECT_NEAR(tm.airtime_us(), 800.0, 1e-9);
}

TEST(BerCounter, MergeEqualsSinglePassOnSplitStream) {
  BerCounter whole;
  BerCounter a;
  BerCounter b;
  whole.add_counts(3, 1000);
  whole.add_counts(7, 500);
  a.add_counts(3, 1000);
  b.add_counts(7, 500);
  a.merge(b);
  EXPECT_EQ(a.bits(), whole.bits());
  EXPECT_EQ(a.errors(), whole.errors());
  EXPECT_DOUBLE_EQ(a.ber(), whole.ber());
}

TEST(PerCounter, MergeEqualsSinglePassOnSplitStream) {
  PerCounter whole;
  PerCounter a;
  PerCounter b;
  const bool stream[] = {true, false, true, true, false, true, false};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    whole.add(stream[i]);
    (i < 4 ? a : b).add(stream[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.packets(), whole.packets());
  EXPECT_EQ(a.failures(), whole.failures());
  EXPECT_DOUBLE_EQ(a.per(), whole.per());
}

TEST(EvmMeter, MergeEqualsSinglePassOnSplitStream) {
  EvmMeter whole;
  EvmMeter a;
  EvmMeter b;
  for (int i = 0; i < 10; ++i) {
    const cf32 obs{1.0F + 0.01F * static_cast<float>(i), 0.1F};
    const cf32 ref{1.0F, 0.0F};
    whole.add(obs, ref);
    (i % 2 == 0 ? a : b).add(obs, ref);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.evm_rms(), whole.evm_rms());
}

TEST(ThroughputMeter, MergeEqualsSinglePassOnSplitStream) {
  ThroughputMeter whole;
  ThroughputMeter a;
  ThroughputMeter b;
  whole.add_packet(1000, 400.0);
  whole.add_packet(500, 300.0);
  whole.add_packet(0, 200.0);
  a.add_packet(1000, 400.0);
  b.add_packet(500, 300.0);
  b.add_packet(0, 200.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.goodput_mbps(), whole.goodput_mbps());
  EXPECT_DOUBLE_EQ(a.airtime_us(), whole.airtime_us());
}

// ---- Degenerate-input regressions (ISSUE 2): every metric API must give
// defined, finite values for empty and zero-denominator inputs. ----

TEST(ThroughputMeter, ZeroAirtimeGoodputIsZeroNotNan) {
  ThroughputMeter t;
  EXPECT_EQ(t.goodput_mbps(), 0.0);      // never accumulated
  t.add_packet(1000, 0.0);               // delivered bits but zero airtime
  EXPECT_TRUE(std::isfinite(t.goodput_mbps()));
  EXPECT_EQ(t.goodput_mbps(), 0.0);
}

TEST(Wilson, SuccessesAboveTrialsClampsToBoundary) {
  const auto iv = wilson_interval(7, 3);  // corrupt counters upstream
  EXPECT_TRUE(std::isfinite(iv.lo));
  EXPECT_TRUE(std::isfinite(iv.hi));
  EXPECT_GE(iv.lo, 0.0);
  EXPECT_LE(iv.hi, 1.0);
  EXPECT_LE(iv.lo, iv.hi);
}

TEST(Counters, MergeOfTwoEmptyCountersStaysDefined) {
  BerCounter ber;
  ber.merge(BerCounter{});
  EXPECT_EQ(ber.bits(), 0U);
  EXPECT_EQ(ber.ber(), 0.0);
  const auto ber_iv = ber.confidence();
  EXPECT_EQ(ber_iv.lo, 0.0);
  EXPECT_EQ(ber_iv.hi, 1.0);

  PerCounter per;
  per.merge(PerCounter{});
  EXPECT_EQ(per.packets(), 0U);
  EXPECT_EQ(per.per(), 0.0);

  EvmMeter evm;
  evm.merge(EvmMeter{});
  EXPECT_EQ(evm.count(), 0U);
  EXPECT_EQ(evm.evm_rms(), 0.0);
  EXPECT_TRUE(std::isfinite(evm.evm_db()));

  ThroughputMeter tput;
  tput.merge(ThroughputMeter{});
  EXPECT_EQ(tput.goodput_mbps(), 0.0);
}

TEST(EvmMeter, EmptyAndZeroReferenceAreDefined) {
  EvmMeter evm;
  EXPECT_EQ(evm.evm_rms(), 0.0);
  EXPECT_TRUE(std::isfinite(evm.evm_db()));
  evm.add(cf32{1.0F, 0.0F}, cf32{0.0F, 0.0F});  // zero reference energy
  EXPECT_TRUE(std::isfinite(evm.evm_rms()));
  EXPECT_TRUE(std::isfinite(evm.evm_db()));
}

TEST(RxErrorCounter, CountsAndClassifiesEveryCategory) {
  RxErrorCounter c;
  EXPECT_EQ(c.total(), 0U);
  EXPECT_EQ(c.errors(), 0U);

  c.add(RxError::kOk);
  c.add(RxError::kOk);
  c.add(RxError::kFcsFail);
  c.add(RxError::kFalseSync);
  c.add(RxError::kBudgetExceeded);
  EXPECT_EQ(c.total(), 5U);
  EXPECT_EQ(c.errors(), 3U);
  EXPECT_EQ(c.count(RxError::kOk), 2U);
  EXPECT_EQ(c.count(RxError::kFcsFail), 1U);
  EXPECT_EQ(c.count(RxError::kNoSync), 0U);

  c.reset();
  EXPECT_EQ(c.total(), 0U);
}

TEST(RxErrorCounter, MergeIsALosslessSum) {
  RxErrorCounter a, b;
  a.add(RxError::kOk);
  a.add(RxError::kHtsigFail);
  b.add(RxError::kHtsigFail);
  b.add(RxError::kTruncated);
  b.merge(a);
  EXPECT_EQ(b.total(), 4U);
  EXPECT_EQ(b.count(RxError::kHtsigFail), 2U);
  EXPECT_EQ(b.count(RxError::kOk), 1U);
  EXPECT_EQ(b.count(RxError::kTruncated), 1U);
  // Merging an empty counter changes nothing.
  b.merge(RxErrorCounter{});
  EXPECT_EQ(b.total(), 4U);
}

TEST(RxErrorCounter, MergeEqualsSinglePassOnSplitStream) {
  // The Monte-Carlo workers' contract, same as the other counters: feeding
  // two workers halves of an attempt stream and merging equals one counter
  // fed the whole stream — for every category at once.
  const RxError stream[] = {
      RxError::kOk,        RxError::kFcsFail,   RxError::kNoSync,
      RxError::kOk,        RxError::kFalseSync, RxError::kFcsFail,
      RxError::kTruncated, RxError::kOk,        RxError::kHtsigFail,
      RxError::kBudgetExceeded};
  RxErrorCounter whole, lo, hi;
  std::size_t i = 0;
  for (const auto e : stream) {
    whole.add(e);
    (i++ < 5 ? lo : hi).add(e);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.total(), whole.total());
  EXPECT_EQ(lo.errors(), whole.errors());
  for (std::size_t k = 0; k < kRxErrorCount; ++k) {
    EXPECT_EQ(lo.count(static_cast<RxError>(k)),
              whole.count(static_cast<RxError>(k)));
  }
}

TEST(RxErrorCounter, EveryCategoryHasAStableName) {
  for (std::size_t i = 0; i < kRxErrorCount; ++i) {
    const char* name = rx_error_name(static_cast<RxError>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string_view(name).size(), 0U);
  }
  EXPECT_EQ(std::string_view(rx_error_name(RxError::kOk)), "ok");
  EXPECT_EQ(std::string_view(rx_error_name(RxError::kFcsFail)), "fcs_fail");
}

}  // namespace
