
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/fine_sync.cpp" "src/CMakeFiles/mimonet_sync.dir/sync/fine_sync.cpp.o" "gcc" "src/CMakeFiles/mimonet_sync.dir/sync/fine_sync.cpp.o.d"
  "/root/repo/src/sync/frame_sync.cpp" "src/CMakeFiles/mimonet_sync.dir/sync/frame_sync.cpp.o" "gcc" "src/CMakeFiles/mimonet_sync.dir/sync/frame_sync.cpp.o.d"
  "/root/repo/src/sync/packet_detector.cpp" "src/CMakeFiles/mimonet_sync.dir/sync/packet_detector.cpp.o" "gcc" "src/CMakeFiles/mimonet_sync.dir/sync/packet_detector.cpp.o.d"
  "/root/repo/src/sync/van_de_beek.cpp" "src/CMakeFiles/mimonet_sync.dir/sync/van_de_beek.cpp.o" "gcc" "src/CMakeFiles/mimonet_sync.dir/sync/van_de_beek.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mimonet_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_ofdm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_mod.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mimonet_fec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
