// Shared output helpers for the experiment harnesses: aligned tables the
// way the paper's evaluation section reports rows.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace bench {

/// Worker threads for the Monte-Carlo engine: MIMONET_BENCH_THREADS wins,
/// else 0 (= let the engine use hardware concurrency). Results are
/// bit-identical for any value — this only changes wall-clock.
inline std::size_t threads() {
  if (const char* env = std::getenv("MIMONET_BENCH_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 0;
}

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

/// Fixed-width row printer: give it the header once, then rows of the same
/// column count.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 12)
      : n_cols_(headers.size()), width_(col_width) {
    for (const auto& h : headers) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < n_cols_; ++i) {
      for (int c = 0; c < width_; ++c) std::printf("-");
    }
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::size_t n_cols_;
  int width_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

inline std::string sci(double v) { return fmt("%.2e", v); }
inline std::string fix(double v, int digits = 2) {
  char f[8];
  std::snprintf(f, sizeof f, "%%.%df", digits);
  return fmt(f, v);
}

/// Machine-readable bench output. Each harness fills one JsonReport and
/// calls emit(), which prints a single `BENCH_JSON {...}` line on stdout and
/// writes the same object to BENCH_<id>.json — into $MIMONET_BENCH_JSON_DIR
/// when set (scripts/bench.sh points it at the repo root), else the cwd.
class JsonReport {
 public:
  explicit JsonReport(std::string id) : id_(std::move(id)) {
    field("bench", id_);
  }

  JsonReport& field(const std::string& key, const std::string& v) {
    return raw(key, "\"" + escape(v) + "\"");
  }
  JsonReport& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  JsonReport& field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonReport& field(const std::string& key, std::size_t v) {
    return raw(key, std::to_string(v));
  }
  JsonReport& field(const std::string& key, unsigned v) {
    return raw(key, std::to_string(v));
  }
  JsonReport& field(const std::string& key, int v) {
    return raw(key, std::to_string(v));
  }
  JsonReport& field(const std::string& key, bool v) {
    return raw(key, v ? "true" : "false");
  }
  /// Pre-encoded JSON value (nested object/array composed by the caller).
  JsonReport& raw(const std::string& key, const std::string& json_value) {
    kv_.emplace_back(key, json_value);
    return *this;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + escape(kv_[i].first) + "\": " + kv_[i].second;
    }
    out += "}";
    return out;
  }

  /// Print the BENCH_JSON line and write BENCH_<id>.json.
  void emit() const {
    const std::string json = to_json();
    std::printf("\nBENCH_JSON %s\n", json.c_str());
    std::string dir = ".";
    if (const char* env = std::getenv("MIMONET_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + id_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    }
  }

  /// Like emit(), but first folds in any top-level keys already present in
  /// BENCH_<id>.json that this report does not set itself — so two
  /// harnesses can share one report file (E18's scan cases and E19's "farm"
  /// table both live in BENCH_stream.json) without clobbering each other.
  void emit_merged() {
    std::string dir = ".";
    if (const char* env = std::getenv("MIMONET_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + id_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "r")) {
      std::string existing;
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        existing.append(buf, n);
      }
      std::fclose(f);
      for (auto& kv : parse_top_level(existing)) {
        bool have = false;
        for (const auto& mine : kv_) {
          if (mine.first == kv.first) {
            have = true;
            break;
          }
        }
        if (!have) kv_.emplace_back(std::move(kv));
      }
    }
    emit();
  }

  /// Split one JSON object into (key, raw-value-text) pairs, tracking
  /// string/brace/bracket nesting — just enough structure for emit_merged's
  /// key-level merge; values pass through verbatim.
  static std::vector<std::pair<std::string, std::string>> parse_top_level(
      const std::string& json) {
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t i = 0;
    const auto skip_ws = [&] {
      while (i < json.size() && (json[i] == ' ' || json[i] == '\t' ||
                                 json[i] == '\n' || json[i] == '\r')) {
        ++i;
      }
    };
    skip_ws();
    if (i >= json.size() || json[i] != '{') return out;
    ++i;
    while (true) {
      skip_ws();
      if (i >= json.size() || json[i] == '}') break;
      if (json[i] == ',') {
        ++i;
        continue;
      }
      if (json[i] != '"') break;  // malformed: stop rather than guess
      ++i;
      std::string key;
      while (i < json.size() && json[i] != '"') {
        if (json[i] == '\\' && i + 1 < json.size()) ++i;
        key += json[i++];
      }
      ++i;  // closing quote
      skip_ws();
      if (i >= json.size() || json[i] != ':') break;
      ++i;
      skip_ws();
      const std::size_t vstart = i;
      int depth = 0;
      bool in_str = false;
      while (i < json.size()) {
        const char c = json[i];
        if (in_str) {
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            in_str = false;
          }
        } else if (c == '"') {
          in_str = true;
        } else if (c == '{' || c == '[') {
          ++depth;
        } else if (c == '}' || c == ']') {
          if (depth == 0) break;
          --depth;
        } else if (c == ',' && depth == 0) {
          break;
        }
        ++i;
      }
      std::string value = json.substr(vstart, i - vstart);
      while (!value.empty() &&
             (value.back() == ' ' || value.back() == '\n' ||
              value.back() == '\t' || value.back() == '\r')) {
        value.pop_back();
      }
      out.emplace_back(std::move(key), std::move(value));
    }
    return out;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

 private:
  std::string id_;
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace bench
