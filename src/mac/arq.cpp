#include "mac/arq.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

#include "channel/fault_plan.hpp"
#include "dsp/rng.hpp"

namespace mimonet::mac {

namespace {

ArqConfig normalize(ArqConfig cfg) {
  // ACKs default to the most robust rate on a single stream.
  if (cfg.ack_phy.mcs == cfg.data_phy.mcs) cfg.ack_phy.mcs = 0;
  cfg.ack_phy.fec_enabled = true;
  return cfg;
}

/// Uniform double in [0, 1) from a mixed 64-bit key.
double unit_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(dsp::splitmix64(key) >> 11U) * 0x1.0p-53;
}

/// Add every scheduled burst overlapping the frame's airtime [t0, t1) to
/// the capture, mapping burst time onto the capture proportionally (the
/// capture — pad included — spans the frame's airtime). Deterministic: the
/// noise draw is keyed on the link seed, the frame's start clock and the
/// antenna, so a retransmission at a different clock sees fresh noise while
/// a replay of the same schedule reproduces bit-identically.
void apply_interference(std::span<const InterferenceSegment> bursts,
                        double t0_us, double t1_us, std::uint64_t seed,
                        std::vector<std::vector<dsp::cf32>>& capture) {
  if (bursts.empty() || capture.empty() || t1_us <= t0_us) return;
  const std::size_t len = capture.front().size();
  const double dur = t1_us - t0_us;
  for (const auto& b : bursts) {
    const double lo = std::max(b.start_us, t0_us);
    const double hi = std::min(b.end_us, t1_us);
    if (hi <= lo || b.variance <= 0.0) continue;
    const auto s0 = static_cast<std::size_t>((lo - t0_us) / dur *
                                             static_cast<double>(len));
    const auto s1 = static_cast<std::size_t>((hi - t0_us) / dur *
                                             static_cast<double>(len));
    if (s1 <= s0 || s0 >= len) continue;
    channel::FaultPlan plan;
    plan.noise_burst(s0, std::min(s1, len) - s0, b.variance);
    const auto t_key = static_cast<std::uint64_t>(t0_us * 16.0);
    for (std::size_t a = 0; a < capture.size(); ++a) {
      channel::apply_fault_plan(
          capture[a], plan,
          dsp::splitmix64(seed ^ (t_key * 0x9E3779B97F4A7C15ULL) ^ a));
    }
  }
}

}  // namespace

double backoff_delay_us(const BackoffConfig& cfg, unsigned retry,
                        std::uint64_t key) noexcept {
  double base = cfg.initial_timeout_us;
  for (unsigned i = 0; i < retry && base < cfg.max_backoff_us; ++i) {
    base *= cfg.multiplier;
  }
  base = std::min(base, cfg.max_backoff_us);
  if (cfg.jitter_frac > 0.0) {
    base *= 1.0 + cfg.jitter_frac * (2.0 * unit_uniform(key) - 1.0);
  }
  return base;
}

double fade_scale_at(std::span<const FadeSegment> fades, double t_us,
                     double nominal) noexcept {
  double scale = nominal;
  for (const auto& f : fades) {
    if (t_us >= f.start_us && t_us < f.end_us) scale = f.power_scale;
  }
  return scale;
}

StopAndWaitLink::StopAndWaitLink(ArqConfig cfg)
    : cfg_(normalize(std::move(cfg))),
      data_tx_(cfg_.data_phy),
      data_rx_(cfg_.data_phy, cfg_.forward.nrx),
      ack_tx_(cfg_.ack_phy),
      ack_rx_(cfg_.ack_phy, cfg_.reverse.nrx),
      forward_(cfg_.forward),
      reverse_(cfg_.reverse) {
  if (cfg_.forward.ntx != data_tx_.num_streams()) {
    throw std::invalid_argument("StopAndWaitLink: forward ntx != data TX chains");
  }
  if (cfg_.reverse.ntx != ack_tx_.num_streams()) {
    throw std::invalid_argument("StopAndWaitLink: reverse ntx != ACK TX chains");
  }
}

std::optional<wifi::ParsedPsdu> StopAndWaitLink::phy_exchange(
    const core::Transmitter& tx, channel::MimoChannel& chan,
    const core::Receiver& rx, const wifi::MacHeader& hdr,
    std::span<const std::uint8_t> payload, double nominal_scale,
    double& airtime_us) {
  chan.set_power_scale(fade_scale_at(cfg_.fades, clock_us_, nominal_scale));
  const auto psdu = wifi::build_psdu(hdr, payload);
  const auto streams = tx.transmit(psdu);
  const double t = tx.layout(psdu.size()).airtime_us();
  const double t0 = clock_us_;
  airtime_us += t;
  clock_us_ += t;
  auto capture = chan.transmit(streams);
  apply_interference(cfg_.interference, t0, t0 + t, cfg_.seed, capture);
  rx_ws_.capture_spans.assign(capture.begin(), capture.end());
  const bool got = rx.receive(
      std::span<const std::span<const dsp::cf32>>(rx_ws_.capture_spans),
      rx_ws_);
  if (!got || !rx_ws_.packet.fcs_ok) {
    return std::nullopt;
  }
  return wifi::parse_psdu(rx_ws_.packet.psdu);
}

DeliveryReport StopAndWaitLink::send(std::span<const std::uint8_t> msdu) {
  DeliveryReport report;
  ++stats_.msdus;

  wifi::MacHeader data_hdr;
  data_hdr.frame_control = 0x0008;  // data
  data_hdr.sequence_control = static_cast<std::uint16_t>(seq_ << 4U);

  wifi::MacHeader ack_hdr;
  ack_hdr.frame_control = kAckFrameControl;

  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    ++report.transmissions;
    if (attempt > 0) ++stats_.retransmissions;

    const auto delivered =
        phy_exchange(data_tx_, forward_, data_rx_, data_hdr, msdu,
                     cfg_.forward.power_scale, report.airtime_us);
    bool ack_due = false;
    if (delivered) {
      const std::uint16_t rx_seq = delivered->header.sequence_control >> 4U;
      if (peer_last_seq_ && *peer_last_seq_ == rx_seq) {
        // Retransmission of a frame the peer already has (its ACK was
        // lost): de-duplicate but still acknowledge.
        report.duplicate_at_peer = true;
        ++stats_.duplicates;
      } else {
        peer_last_seq_ = rx_seq;
        peer_rx_log_.emplace_back(delivered->payload);
      }
      ack_due = true;
    }

    if (ack_due) {
      ack_hdr.sequence_control = data_hdr.sequence_control;
      const auto ack =
          phy_exchange(ack_tx_, reverse_, ack_rx_, ack_hdr, {},
                       cfg_.reverse.power_scale, report.airtime_us);
      if (ack && ack->header.frame_control == kAckFrameControl &&
          ack->header.sequence_control == data_hdr.sequence_control) {
        report.delivered = true;
        break;
      }
    }

    // Wait out the retransmission timeout before the next try: exponential
    // with jitter under the backoff policy, the legacy fixed interval
    // otherwise. Time passing is what lets a scheduled fade end.
    if (attempt < cfg_.max_retries) {
      const std::uint64_t key = dsp::splitmix64(
          cfg_.seed ^ (static_cast<std::uint64_t>(seq_) << 20U) ^ attempt);
      const double d = cfg_.backoff.enabled
                           ? backoff_delay_us(cfg_.backoff, attempt, key)
                           : cfg_.backoff.initial_timeout_us;
      report.wait_us += d;
      clock_us_ += d;
    }
  }

  seq_ = static_cast<std::uint16_t>((seq_ + 1) & 0x0FFF);
  stats_.airtime_us += report.airtime_us;
  stats_.wait_us += report.wait_us;
  if (report.delivered) {
    ++stats_.delivered;
    stats_.delivered_bits += static_cast<double>(msdu.size()) * 8.0;
  }
  return report;
}

namespace {
SrConfig normalize_sr(SrConfig cfg) {
  cfg.arq = normalize(std::move(cfg.arq));
  return cfg;
}
}  // namespace

SelectiveRepeatLink::SelectiveRepeatLink(SrConfig cfg)
    : cfg_(normalize_sr(std::move(cfg))),
      current_mcs_(cfg_.arq.data_phy.mcs),
      min_mcs_(0),
      data_rx_(cfg_.arq.data_phy, cfg_.arq.forward.nrx),
      ack_tx_(cfg_.arq.ack_phy),
      ack_rx_(cfg_.arq.ack_phy, cfg_.arq.reverse.nrx),
      forward_(cfg_.arq.forward),
      reverse_(cfg_.arq.reverse) {
  if (cfg_.window == 0 || cfg_.window >= 2048) {
    throw std::invalid_argument("SelectiveRepeatLink: window must be 1..2047");
  }
  const unsigned group_floor = (current_mcs_ / 8U) * 8U;
  if (cfg_.min_mcs < 0) {
    min_mcs_ = group_floor;
  } else {
    min_mcs_ = static_cast<unsigned>(cfg_.min_mcs);
    if (min_mcs_ > current_mcs_ || min_mcs_ / 8U != current_mcs_ / 8U) {
      throw std::invalid_argument(
          "SelectiveRepeatLink: min_mcs must be in the configured MCS's "
          "spatial-stream group and <= it");
    }
  }
  data_tx_.emplace(cfg_.arq.data_phy);
  if (cfg_.arq.forward.ntx != data_tx_->num_streams()) {
    throw std::invalid_argument(
        "SelectiveRepeatLink: forward ntx != data TX chains");
  }
  if (cfg_.arq.reverse.ntx != ack_tx_.num_streams()) {
    throw std::invalid_argument(
        "SelectiveRepeatLink: reverse ntx != ACK TX chains");
  }
  // The legacy streak knobs stay authoritative for the failure-count
  // policy, so pre-adaptor configs behave identically.
  LinkAdaptorConfig acfg = cfg_.adapt;
  acfg.fallback_after = cfg_.fallback_after;
  acfg.recover_after = cfg_.recover_after;
  adaptor_.emplace(acfg, current_mcs_, min_mcs_, cfg_.arq.data_phy.mcs);
  peer_next_abs_ = cfg_.first_frame_index;
}

std::optional<wifi::ParsedPsdu> SelectiveRepeatLink::phy_exchange(
    const core::Transmitter& tx, channel::MimoChannel& chan,
    const core::Receiver& rx, const wifi::MacHeader& hdr,
    std::span<const std::uint8_t> payload, double nominal_scale,
    double& airtime_us, const core::HarqDecode& harq) {
  chan.set_power_scale(fade_scale_at(cfg_.arq.fades, clock_us_, nominal_scale));
  const auto psdu = wifi::build_psdu(hdr, payload);
  const auto streams = tx.transmit(psdu);
  const double t = tx.layout(psdu.size()).airtime_us();
  const double t0 = clock_us_;
  airtime_us += t;
  clock_us_ += t;
  auto capture = chan.transmit(streams);
  apply_interference(cfg_.arq.interference, t0, t0 + t, cfg_.arq.seed, capture);
  rx_ws_.capture_spans.assign(capture.begin(), capture.end());
  const bool got = rx.receive(
      std::span<const std::span<const dsp::cf32>>(rx_ws_.capture_spans),
      rx_ws_, harq);
  if (!got || !rx_ws_.packet.fcs_ok) {
    return std::nullopt;
  }
  return wifi::parse_psdu(rx_ws_.packet.psdu);
}

void SelectiveRepeatLink::queue(std::span<const std::uint8_t> msdu) {
  Slot slot;
  slot.msdu.assign(msdu.begin(), msdu.end());
  slot.abs = cfg_.first_frame_index + frames_.size();
  frames_.push_back(std::move(slot));
  ++stats_.msdus;
}

const SrStats& SelectiveRepeatLink::run() {
  while (base_ < frames_.size()) {
    // Slide the window base past finished frames.
    while (base_ < frames_.size() &&
           (frames_[base_].acked || frames_[base_].abandoned)) {
      ++base_;
    }
    if (base_ >= frames_.size()) break;

    // Earliest-due outstanding slot in the window (the base slot is always
    // outstanding here, so one exists).
    const std::size_t hi = std::min(base_ + cfg_.window, frames_.size());
    Slot* due = nullptr;
    for (std::size_t i = base_; i < hi; ++i) {
      Slot& s = frames_[i];
      if (s.acked || s.abandoned) continue;
      if (due == nullptr || s.next_tx_us < due->next_tx_us) due = &s;
    }
    if (due->next_tx_us > clock_us_) {
      stats_.wait_us += due->next_tx_us - clock_us_;
      clock_us_ = due->next_tx_us;
    }
    transmit_slot(*due);
  }
  return stats_;
}

void SelectiveRepeatLink::transmit_slot(Slot& slot) {
  if (slot.attempts > 0) ++stats_.retransmissions;

  wifi::MacHeader hdr;
  hdr.frame_control = 0x0008;  // data
  const auto seq12 = static_cast<std::uint16_t>(slot.abs & 0x0FFFU);
  hdr.sequence_control = static_cast<std::uint16_t>(seq12 << 4U);

  // HARQ decode mode: offer any retained prior soft state for this frame
  // and capture this attempt's combined stream for retention.
  core::HarqDecode harq;
  if (cfg_.harq) {
    if (const auto* prior = rx_ws_.harq.find(seq12)) {
      harq.prior = std::span<const float>(*prior);
    }
    harq.combined = &rx_ws_.harq_combined;
  }

  double airtime = 0.0;
  const auto delivered =
      phy_exchange(*data_tx_, forward_, data_rx_, hdr, slot.msdu,
                   cfg_.arq.forward.power_scale, airtime, harq);
  adapt_on_data_outcome(delivered.has_value());
  bool acked = false;
  if (delivered) {
    if (cfg_.harq) {
      if (!harq.prior.empty()) ++stats_.harq_combined_ok;
      rx_ws_.harq.release(seq12);
    }
    peer_accept(*delivered);
    wifi::MacHeader ack_hdr;
    ack_hdr.frame_control = kAckFrameControl;
    ack_hdr.sequence_control = hdr.sequence_control;
    const auto ack = phy_exchange(ack_tx_, reverse_, ack_rx_, ack_hdr, {},
                                  cfg_.arq.reverse.power_scale, airtime);
    acked = ack && ack->header.frame_control == kAckFrameControl &&
            ack->header.sequence_control == hdr.sequence_control;
  } else if (cfg_.harq && !rx_ws_.harq_combined.empty()) {
    // The attempt failed but produced soft state (reached the payload):
    // retain the combined LLRs so the next attempt decodes against them.
    rx_ws_.harq.store(seq12, rx_ws_.harq_combined);
  }
  stats_.airtime_us += airtime;
  ++slot.attempts;

  if (acked) {
    slot.acked = true;
    ++stats_.delivered;
    stats_.delivered_bits += static_cast<double>(slot.msdu.size()) * 8.0;
    ++stats_.attempts_hist[std::min<std::size_t>(slot.attempts, 8)];
  } else if (slot.attempts > cfg_.arq.max_retries) {
    slot.abandoned = true;
    ++stats_.lost;
    ++stats_.attempts_hist[std::min<std::size_t>(slot.attempts, 8)];
    if (cfg_.harq) rx_ws_.harq.release(seq12);
    // The peer will never see this frame: let in-order release skip it, as
    // a higher layer's reassembly timeout would.
    abandoned_abs_.push_back(slot.abs);
    release_in_order();
  } else {
    const std::uint64_t key =
        dsp::splitmix64(cfg_.arq.seed ^ (slot.abs * 0x9E3779B97F4A7C15ULL) ^
                        slot.attempts);
    const double d =
        cfg_.arq.backoff.enabled
            ? backoff_delay_us(cfg_.arq.backoff, slot.attempts - 1, key)
            : cfg_.arq.backoff.initial_timeout_us;
    // backoff_scale_ > 1 while the adaptor holds interference evidence:
    // stretch the retry past the burst instead of dropping the rate.
    slot.next_tx_us = clock_us_ + d * backoff_scale_;
  }
}

void SelectiveRepeatLink::peer_accept(const wifi::ParsedPsdu& frame) {
  const auto seq12 =
      static_cast<std::uint16_t>(frame.header.sequence_control >> 4U);
  const auto exp12 = static_cast<std::uint16_t>(peer_next_abs_ & 0x0FFFU);
  // Frames arrive at most a window behind (duplicates) or ahead
  // (out-of-order) of the expected index; seq12_delta sign-extends the
  // 12-bit ring distance, exact across the 4095 -> 0 wrap.
  const int delta = seq12_delta(seq12, exp12);
  const auto abs_idx =
      static_cast<long long>(peer_next_abs_) + static_cast<long long>(delta);
  if (abs_idx < static_cast<long long>(peer_next_abs_)) {
    // Already released (or skipped): a retransmission whose ACK was lost.
    ++stats_.duplicates;
    return;
  }
  const auto [it, inserted] =
      peer_reorder_.emplace(static_cast<std::size_t>(abs_idx), frame.payload);
  if (!inserted) {
    ++stats_.duplicates;
    return;
  }
  release_in_order();
}

void SelectiveRepeatLink::release_in_order() {
  while (true) {
    if (std::find(abandoned_abs_.begin(), abandoned_abs_.end(),
                  peer_next_abs_) != abandoned_abs_.end()) {
      ++peer_next_abs_;
      continue;
    }
    const auto it = peer_reorder_.find(peer_next_abs_);
    if (it == peer_reorder_.end()) break;
    peer_rx_log_.push_back(std::move(it->second));
    peer_reorder_.erase(it);
    ++peer_next_abs_;
  }
}

void SelectiveRepeatLink::adapt_on_data_outcome(bool delivered) {
  const core::RxPacket& pkt = rx_ws_.packet;
  LinkObservation obs;
  obs.delivered = delivered;
  obs.error = pkt.error;
  if (pkt.htsig_ok) {
    // Both estimates ran; take the best as the channel-quality evidence (a
    // mid-frame burst depresses the pilot EVM but not the L-LTF estimate).
    obs.snr_db = std::max(pkt.snr.snr_db, pkt.pilot_snr.snr_db);
    obs.have_snr = true;
  }
  if (pkt.n_stream_sinr > 0) {
    obs.min_stream_sinr_db = pkt.stream_sinr_db[0];
    for (std::size_t s = 1; s < pkt.n_stream_sinr; ++s) {
      obs.min_stream_sinr_db = std::min(obs.min_stream_sinr_db,
                                        pkt.stream_sinr_db[s]);
    }
    obs.have_stream_sinr = true;
  }
  const LinkDecision decision = adaptor_->observe(obs);
  backoff_scale_ = decision.backoff_scale;
  if (decision.mcs_step != 0) {
    set_mcs(adaptor_->current_mcs());
    if (decision.mcs_step < 0) {
      ++stats_.mcs_fallbacks;
    } else {
      ++stats_.mcs_recoveries;
    }
  }
  stats_.interference_holds = adaptor_->interference_holds();
}

void SelectiveRepeatLink::set_mcs(unsigned mcs) {
  // Same spatial-stream group, so the TX chain count is invariant and the
  // receiver (which reads MCS from HT-SIG in-band) needs no rebuild.
  current_mcs_ = mcs;
  core::PhyConfig phy = cfg_.arq.data_phy;
  phy.mcs = mcs;
  data_tx_.emplace(phy);
  // An MCS change alters the coded-stream geometry: every retained LLR
  // stream is now incompatible with the frames the new rate will send.
  rx_ws_.harq.clear();
}

core::LinkResult SelectiveRepeatLink::link_result() const {
  core::LinkResult r;
  for (std::size_t i = 0; i < stats_.delivered; ++i) r.per.add(/*packet_ok=*/true);
  for (std::size_t i = 0; i < stats_.lost; ++i) r.per.add(/*packet_ok=*/false);
  // One aggregate throughput sample: all delivered payload bits over the
  // link's total airtime (retries included), i.e. the MAC goodput.
  r.throughput.add_packet(
      static_cast<std::size_t>(stats_.delivered_bits / 8.0),
      stats_.airtime_us);
  r.attempts_hist = stats_.attempts_hist;
  r.harq_combined_ok = stats_.harq_combined_ok;
  return r;
}

}  // namespace mimonet::mac
