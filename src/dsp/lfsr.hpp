// Fibonacci linear-feedback shift register, the primitive behind the 802.11
// scrambler and the 802.11n pilot polarity sequence.
#pragma once

#include <cstdint>

namespace mimonet::dsp {

/// Fibonacci LFSR over GF(2) with an arbitrary tap mask.
///
/// The register is `degree` bits wide; `taps` is a bitmask where bit i set
/// means state bit i feeds the XOR (bit 0 = oldest / output bit convention:
/// the feedback is XOR of tapped bits, shifted in at the top; the output is
/// the feedback bit, matching the 802.11 scrambler definition x^7 + x^4 + 1
/// with taps = (1<<6)|(1<<3)).
class Lfsr {
 public:
  constexpr Lfsr(unsigned degree, std::uint32_t taps, std::uint32_t state) noexcept
      : degree_(degree), taps_(taps), state_(state & mask()) {}

  /// Advance one step and return the generated bit (0/1).
  constexpr std::uint8_t next() noexcept {
    std::uint32_t fb = 0;
    std::uint32_t tapped = state_ & taps_;
    while (tapped != 0) {
      fb ^= tapped & 1U;
      tapped >>= 1U;
    }
    state_ = ((state_ << 1U) | fb) & mask();
    return static_cast<std::uint8_t>(fb);
  }

  [[nodiscard]] constexpr std::uint32_t state() const noexcept { return state_; }
  constexpr void set_state(std::uint32_t s) noexcept { state_ = s & mask(); }

 private:
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return (1U << degree_) - 1U;
  }

  unsigned degree_;
  std::uint32_t taps_;
  std::uint32_t state_;
};

/// The 802.11 data scrambler sequence generator: x^7 + x^4 + 1.
[[nodiscard]] constexpr Lfsr make_dot11_scrambler_lfsr(std::uint32_t seed) noexcept {
  return Lfsr(7, (1U << 6U) | (1U << 3U), seed);
}

}  // namespace mimonet::dsp
