# Empty compiler generated dependencies file for bench_e11_stbc_vs_sm.
# This may be replaced when dependencies are built.
