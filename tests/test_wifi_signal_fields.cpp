// L-SIG / HT-SIG encode, decode, map, demap, and end-to-end through the
// Viterbi decoder.
#include <gtest/gtest.h>

#include "fec/viterbi.hpp"
#include "wifi/signal_field.hpp"

namespace {

using namespace mimonet::wifi;
using mimonet::dsp::cf32;

TEST(LSig, EncodeDecodeRoundTrip) {
  LSig sig;
  sig.rate_bits = 0b1011;
  sig.length = 1234;
  const auto bits = encode_lsig(sig);
  ASSERT_EQ(bits.size(), 24U);
  const auto back = decode_lsig(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sig);
}

TEST(LSig, ParityDetectsFlips) {
  const auto bits = encode_lsig(LSig{.rate_bits = 0b1011, .length = 100});
  for (std::size_t i = 0; i < 18; ++i) {
    auto bad = bits;
    bad[i] ^= 1U;
    EXPECT_FALSE(decode_lsig(bad).has_value()) << "bit " << i;
  }
}

TEST(LSig, NonzeroTailRejected) {
  auto bits = encode_lsig(LSig{});
  bits[20] = 1;
  EXPECT_FALSE(decode_lsig(bits).has_value());
}

TEST(LSig, OverlongLengthThrows) {
  EXPECT_THROW(encode_lsig(LSig{.rate_bits = 1, .length = 5000}),
               std::invalid_argument);
}

TEST(HtSig, EncodeDecodeRoundTrip) {
  HtSig sig;
  sig.mcs = 13;
  sig.length = 4095;
  sig.aggregation = true;
  sig.short_gi = false;
  const auto bits = encode_htsig(sig);
  ASSERT_EQ(bits.size(), 48U);
  const auto back = decode_htsig(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sig);
}

TEST(HtSig, CrcDetectsEveryProtectedBitFlip) {
  const auto bits = encode_htsig(HtSig{.mcs = 7, .length = 256});
  for (std::size_t i = 0; i < 42; ++i) {  // payload + CRC bits
    auto bad = bits;
    bad[i] ^= 1U;
    EXPECT_FALSE(decode_htsig(bad).has_value()) << "bit " << i;
  }
}

TEST(HtSig, WrongSizeRejected) {
  EXPECT_FALSE(decode_htsig(std::vector<std::uint8_t>(47)).has_value());
  EXPECT_FALSE(decode_lsig(std::vector<std::uint8_t>(25)).has_value());
}

TEST(SigField, MapProducesBpskOnExpectedAxis) {
  const auto bits = encode_lsig(LSig{.rate_bits = 0b1011, .length = 77});
  const auto bpsk = map_sig_field(bits, /*qbpsk=*/false);
  ASSERT_EQ(bpsk.size(), 48U);
  for (const auto s : bpsk) {
    EXPECT_EQ(s.imag(), 0.0F);
    EXPECT_NEAR(std::abs(s.real()), 1.0F, 1e-6F);
  }
  const auto qbpsk = map_sig_field(bits, /*qbpsk=*/true);
  for (const auto s : qbpsk) {
    EXPECT_EQ(s.real(), 0.0F);
    EXPECT_NEAR(std::abs(s.imag()), 1.0F, 1e-6F);
  }
}

TEST(SigField, CleanDemapDecodesThroughViterbi) {
  const mimonet::fec::ViterbiDecoder dec;
  LSig sig;
  sig.length = 2047;
  const auto bits = encode_lsig(sig);
  const auto carriers = map_sig_field(bits, false);
  const auto llrs = demap_sig_field(carriers, 0.1F, false);
  const auto decoded = dec.decode_soft(llrs, /*terminated=*/true);
  const auto back = decode_lsig(decoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sig);
}

TEST(SigField, HtSigDecodesAcrossTwoSymbols) {
  const mimonet::fec::ViterbiDecoder dec;
  HtSig sig;
  sig.mcs = 15;
  sig.length = 65535;
  const auto bits = encode_htsig(sig);
  const auto carriers = map_sig_field(bits, true);
  ASSERT_EQ(carriers.size(), 96U);
  const auto llrs = demap_sig_field(carriers, 0.2F, true);
  const auto decoded = dec.decode_soft(llrs, /*terminated=*/true);
  const auto back = decode_htsig(decoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, sig);
}

TEST(SigField, SurvivesModerateNoise) {
  const mimonet::fec::ViterbiDecoder dec;
  const auto bits = encode_lsig(LSig{.rate_bits = 0b1011, .length = 500});
  auto carriers = map_sig_field(bits, false);
  // Perturb every carrier by 0.4 in a deterministic pattern.
  for (std::size_t i = 0; i < carriers.size(); ++i) {
    carriers[i] += cf32((static_cast<int>(i % 3) - 1) * 0.4F,
                        (static_cast<int>(i % 5) - 2) * 0.2F);
  }
  const auto llrs = demap_sig_field(carriers, 0.5F, false);
  const auto decoded = dec.decode_soft(llrs, true);
  const auto back = decode_lsig(decoded);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->length, 500);
}

TEST(SigField, BadSizesThrow) {
  EXPECT_THROW(map_sig_field(std::vector<std::uint8_t>(23), false),
               std::invalid_argument);
  EXPECT_THROW(demap_sig_field(std::vector<cf32>(47), 0.1F, false),
               std::invalid_argument);
}

}  // namespace
