# Empty dependencies file for bench_e14_spectrum.
# This may be replaced when dependencies are built.
