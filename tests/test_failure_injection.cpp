// Failure injection: corrupt specific fields of a real PPDU and check the
// receiver degrades exactly as designed — no crashes, the right ok-flags
// drop, and downstream stages are skipped.
#include <gtest/gtest.h>

#include "channel/mimo_channel.hpp"
#include "core/receiver.hpp"
#include "core/transmitter.hpp"
#include "dsp/rng.hpp"
#include "receive_util.hpp"
#include "wifi/preamble.hpp"
#include "wifi/psdu.hpp"

namespace {

using namespace mimonet;
using dsp::cf32;

struct Scenario {
  core::PhyConfig phy;
  std::vector<std::uint8_t> psdu;
  std::vector<std::vector<cf32>> capture;
  core::FrameLayout layout;
  std::size_t start = 0;  // packet start within the capture
};

Scenario make_clean_capture(unsigned mcs = 0) {
  Scenario s;
  s.phy.mcs = mcs;
  const core::Transmitter tx(s.phy);
  s.psdu = wifi::build_psdu(wifi::MacHeader{}, std::vector<std::uint8_t>(120, 0x42));
  s.layout = tx.layout(s.psdu.size());

  channel::ChannelConfig ccfg;
  ccfg.ntx = s.layout.nss;
  ccfg.nrx = s.layout.nss;
  ccfg.snr_db = 30.0;
  ccfg.timing_pad = 400;
  ccfg.tail_pad = 150;
  channel::MimoChannel chan(ccfg);
  s.capture = chan.transmit(tx.transmit(s.psdu));
  s.start = chan.truth().packet_start;
  return s;
}

void obliterate(std::vector<cf32>& stream, std::size_t from, std::size_t len,
                std::uint64_t seed) {
  dsp::ComplexGaussian noise(seed, 4.0);  // loud garbage
  for (std::size_t i = from; i < std::min(from + len, stream.size()); ++i) {
    stream[i] = noise.sample();
  }
}

TEST(FailureInjection, CleanBaselineDecodes) {
  auto s = make_clean_capture();
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->lsig_ok);
  EXPECT_TRUE(pkt->htsig_ok);
  EXPECT_TRUE(pkt->fcs_ok);
}

TEST(FailureInjection, DestroyedStfIsNeverDetected) {
  auto s = make_clean_capture();
  obliterate(s.capture[0], s.start, wifi::kLstfLen, 1);
  core::Receiver rx(s.phy, 1);
  // Without the STF plateau the detector has nothing to trigger on (the
  // rest of the packet is not 16-periodic).
  const auto pkt = testutil::receive_once(rx, s.capture);
  if (pkt) {
    EXPECT_FALSE(pkt->fcs_ok);
  }
}

TEST(FailureInjection, DestroyedLsigFlagsButContinues) {
  auto s = make_clean_capture();
  obliterate(s.capture[0], s.start + s.layout.lsig_offset(), wifi::kLsigLen, 2);
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_FALSE(pkt->lsig_ok);      // parity or tail check must fail
  EXPECT_TRUE(pkt->htsig_ok);      // HT-SIG is independent
  EXPECT_TRUE(pkt->fcs_ok);        // payload unaffected
}

TEST(FailureInjection, DestroyedHtSigStopsDecoding) {
  auto s = make_clean_capture();
  obliterate(s.capture[0], s.start + s.layout.htsig_offset(), wifi::kHtSigLen, 3);
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_FALSE(pkt->htsig_ok);
  EXPECT_FALSE(pkt->fcs_ok);
  EXPECT_TRUE(pkt->psdu.empty());  // no data decode was attempted
}

TEST(FailureInjection, DestroyedHtLtfKillsPayloadNotSig) {
  auto s = make_clean_capture();
  obliterate(s.capture[0], s.start + s.layout.htltf_offset(), wifi::kHtLtfLen, 4);
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->htsig_ok);
  EXPECT_FALSE(pkt->fcs_ok);  // garbage channel estimate garbles the data
}

TEST(FailureInjection, SingleDataSymbolBurstIsCorrectedByFec) {
  // Wipe out 8 samples of one data symbol: the Viterbi decoder should eat
  // the resulting burst (interleaving spreads it across coded bits).
  auto s = make_clean_capture();
  obliterate(s.capture[0], s.start + s.layout.data_offset() + 30, 8, 5);
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->fcs_ok);
  EXPECT_EQ(pkt->psdu, s.psdu);
}

TEST(FailureInjection, WholeDataSymbolLossBreaksFcsOnly) {
  auto s = make_clean_capture();
  obliterate(s.capture[0], s.start + s.layout.data_offset(), ofdm::kSymLen, 6);
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->htsig_ok);
  EXPECT_FALSE(pkt->fcs_ok);
  EXPECT_EQ(pkt->psdu.size(), s.psdu.size());  // length still from HT-SIG
}

TEST(FailureInjection, RxErrorTaxonomyClassifiesEachStage) {
  // The structured taxonomy is what the evidence-driven link adaptor keys
  // on, so each injected failure must land in its designated category —
  // and the payload-corruption case must carry the "healthy preamble SNR"
  // signature that distinguishes interference from a fade.
  core::RxWorkspace ws;
  const auto receive_err = [&ws](const Scenario& s) {
    core::Receiver rx(s.phy, 1);
    ws.capture_spans.assign(s.capture.begin(), s.capture.end());
    (void)rx.receive(std::span<const std::span<const cf32>>(ws.capture_spans),
                     ws);
    return ws.packet.error;
  };

  // Clean frame: kOk.
  EXPECT_EQ(receive_err(make_clean_capture()), metrics::RxError::kOk);

  // Noise-only air: kNoSync (no candidate anywhere).
  {
    auto s = make_clean_capture();
    obliterate(s.capture[0], 0, s.capture[0].size(), 21);
    EXPECT_EQ(receive_err(s), metrics::RxError::kNoSync);
  }

  // Data field corrupted, preamble intact: kFcsFail — and the L-LTF SNR
  // estimate still reports the healthy channel, which is exactly the
  // evidence LinkAdaptor::classify uses to call it interference.
  {
    auto s = make_clean_capture();
    obliterate(s.capture[0], s.start + s.layout.data_offset(),
               s.capture[0].size(), 22);
    EXPECT_EQ(receive_err(s), metrics::RxError::kFcsFail);
    EXPECT_FALSE(ws.packet.fcs_ok);
    EXPECT_GT(ws.packet.snr.snr_db, 20.0);
  }

  // HT-SIG destroyed, L-SIG intact: kHtsigFail.
  {
    auto s = make_clean_capture();
    obliterate(s.capture[0], s.start + s.layout.htsig_offset(),
               wifi::kHtSigLen, 23);
    EXPECT_EQ(receive_err(s), metrics::RxError::kHtsigFail);
  }

  // Capture cut inside the announced data field: kTruncated.
  {
    auto s = make_clean_capture();
    s.capture[0].resize(s.start + s.layout.data_offset() + 10);
    EXPECT_EQ(receive_err(s), metrics::RxError::kTruncated);
  }
}

TEST(FailureInjection, OneDeadRxAntennaFailsCleanlyOnMimo) {
  // 2x2 packet, one RX chain goes silent (dead cable): detection and SIG
  // decode survive on the healthy antenna, but two streams cannot be
  // separated from one observation — data decode must fail cleanly (the
  // MMSE equalizer regularizes what would be a singular ZF inversion).
  //
  // Note the MCS choice: at MCS 8 (BPSK 1/2) losing stream 1 erases exactly
  // the g1 parity bits, and the mother code is still invertible from g0
  // alone, so that packet would legitimately decode! Rate 5/6 leaves no
  // such redundancy.
  auto s = make_clean_capture(15);
  std::fill(s.capture[1].begin(), s.capture[1].end(), cf32{0.0F, 0.0F});
  core::Receiver rx(s.phy, 2);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->htsig_ok);
  EXPECT_FALSE(pkt->fcs_ok);
}

TEST(FailureInjection, LostParityStreamIsRecoveredByInvertibleCode) {
  // The flip side: BPSK 1/2 across two streams puts all g0 bits on stream 0
  // and all g1 bits on stream 1; g0 alone is an invertible rate-1 encoder,
  // so a clean stream 0 suffices. Losing an entire antenna is survivable.
  auto s = make_clean_capture(8);
  std::fill(s.capture[1].begin(), s.capture[1].end(), cf32{0.0F, 0.0F});
  core::Receiver rx(s.phy, 2);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->fcs_ok);
  EXPECT_EQ(pkt->psdu, s.psdu);
}

TEST(FailureInjection, TruncatedRightAfterHtSigReportsGracefully) {
  auto s = make_clean_capture();
  for (auto& c : s.capture) {
    c.resize(s.start + s.layout.htstf_offset() + 20);
  }
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  if (pkt) {
    EXPECT_FALSE(pkt->fcs_ok);
    EXPECT_TRUE(pkt->psdu.empty());
  }
}

TEST(FailureInjection, BackToBackGarbageBeforePacketStillDecodes) {
  // A loud non-OFDM interferer burst before the packet must not derail
  // detection of the real packet.
  auto s = make_clean_capture();
  obliterate(s.capture[0], 50, 150, 8);
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_TRUE(pkt->fcs_ok);
}

TEST(FailureInjection, CwToneInterfererDegradesOnlyItsSubcarriers) {
  // Off-grid continuous-wave interferer near logical subcarrier +10. (An
  // exactly on-bin tone is 64-periodic and the LTF repetition method would
  // classify it as *signal*; a fractional-frequency tone decorrelates
  // between the LTF periods and registers as localized noise.)
  auto s = make_clean_capture();
  const double tone_freq = 10.43 / 64.0;
  for (std::size_t i = s.start; i < s.capture[0].size(); ++i) {
    s.capture[0][i] += 0.30F * dsp::phasor(static_cast<float>(
                                   dsp::two_pi_d * tone_freq *
                                   static_cast<double>(i - s.start)));
  }
  core::Receiver rx(s.phy, 1);
  const auto pkt = testutil::receive_once(rx, s.capture);
  ASSERT_TRUE(pkt.has_value());
  ASSERT_TRUE(pkt->htsig_ok);
  // The tone leaks mostly into bins 10 and 11; the harder-hit of the two
  // must sit clearly below a far-away bin.
  const auto hit = std::min(pkt->snr.per_bin_db[ofdm::SubcarrierMap::logical_to_bin(10)],
                            pkt->snr.per_bin_db[ofdm::SubcarrierMap::logical_to_bin(11)]);
  const auto clean = pkt->snr.per_bin_db[ofdm::SubcarrierMap::logical_to_bin(-10)];
  EXPECT_LT(hit, clean - 3.0);
}

}  // namespace
