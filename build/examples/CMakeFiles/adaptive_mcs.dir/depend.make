# Empty dependencies file for adaptive_mcs.
# This may be replaced when dependencies are built.
