#include "channel/multi_user_channel.hpp"

#include <stdexcept>

namespace mimonet::channel {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// Per-user sub-seed: distinct, seed-dependent streams per user so fading /
/// noise / Doppler draws never collide across users or with the BS front
/// end (which uses user index n_users below).
std::uint64_t user_seed(std::uint64_t base, std::size_t u) {
  return dsp::splitmix64(base + kGolden * (static_cast<std::uint64_t>(u) + 1));
}

ChannelConfig user_config(const MuChannelConfig& cfg, std::size_t n_bs,
                          std::size_t u) {
  ChannelConfig c = cfg.user;
  if (cfg.direction == MuDirection::kDownlink) {
    c.ntx = n_bs;
    c.nrx = 1;
  } else {
    c.ntx = 1;
    c.nrx = n_bs;
    // The shared BS front end owns pads / noise / ADC / faults on the
    // uplink; the per-user channel is propagation only. Zeroing the pads
    // here keeps the per-user truth records from claiming offsets the
    // superposed capture does not have.
    c.timing_pad = 0;
    c.tail_pad = 0;
  }
  c.seed = user_seed(cfg.user.seed, u);
  return c;
}

ChannelConfig frontend_config(const MuChannelConfig& cfg, std::size_t n_bs) {
  ChannelConfig c = cfg.user;
  c.ntx = n_bs;
  c.nrx = n_bs;
  c.fading = false;  // propagation happened per user; this is the RF front end
  c.doppler_norm = 0.0;
  c.cfo_norm = 0.0;
  c.sfo_ppm = 0.0;
  c.seed = user_seed(cfg.user.seed, cfg.n_users);  // one past the user range
  return c;
}

}  // namespace

MultiUserChannel::MultiUserChannel(MuChannelConfig cfg)
    : cfg_(cfg),
      n_bs_(cfg.n_bs_antennas != 0 ? cfg.n_bs_antennas : cfg.n_users),
      bs_frontend_(frontend_config(cfg, n_bs_)) {
  if (cfg.n_users == 0 || cfg.n_users > 4 || n_bs_ == 0 || n_bs_ > 4) {
    throw std::invalid_argument("MultiUserChannel: users and BS antennas must be 1..4");
  }
  if (cfg.n_users > n_bs_) {
    throw std::invalid_argument(
        "MultiUserChannel: need n_users <= n_bs_antennas (ZF dimensioning)");
  }
  if (cfg.n_users > 1 && !cfg.user.fading) {
    throw std::invalid_argument(
        "MultiUserChannel: multi-user separation needs fading channels");
  }
  if (cfg.user.sfo_ppm != 0.0) {
    // Per-user SFO desynchronizes the users' sample clocks, which breaks
    // both the time-domain downlink precoding and the triggered uplink
    // superposition. Model SFO on single-user links only.
    throw std::invalid_argument("MultiUserChannel: per-user SFO unsupported");
  }
  users_.reserve(cfg.n_users);
  for (std::size_t u = 0; u < cfg.n_users; ++u) {
    users_.emplace_back(user_config(cfg_, n_bs_, u));
  }
}

void MultiUserChannel::reseed(std::uint64_t seed) {
  for (std::size_t u = 0; u < users_.size(); ++u) {
    users_[u].reseed(user_seed(seed, u));
    users_[u].unfix_realization();
  }
  bs_frontend_.reseed(user_seed(seed, users_.size()));
}

void MultiUserChannel::set_user_fault_plan(std::size_t u, FaultPlan plan) {
  users_.at(u).set_fault_plan(std::move(plan));
}

std::size_t MultiUserChannel::stale_symbols(std::size_t u) const {
  return users_.at(u).config().faults.csi_stale_symbols();
}

std::vector<std::vector<cf32>> MultiUserChannel::sound_user(
    std::size_t u, const std::vector<std::vector<cf32>>& chains) {
  if (cfg_.direction != MuDirection::kDownlink) {
    throw std::logic_error("sound_user: downlink only");
  }
  auto& chan = users_.at(u);
  chan.draw_realization();  // draw and pin the sounding-time snapshot
  return chan.propagate(chains);
}

void MultiUserChannel::advance_csi(std::size_t u) {
  auto& chan = users_.at(u);
  const std::size_t stale = stale_symbols(u);
  // draw_realization() returns the realization sound_user() pinned (or pins
  // a fresh one when sounding was skipped, e.g. precoding disabled).
  auto aged = chan.aged_realization(chan.draw_realization(), stale);
  chan.fix_realization(std::move(aged));
}

std::vector<std::vector<cf32>> MultiUserChannel::transmit_downlink(
    std::size_t u, const std::vector<std::vector<cf32>>& chains) {
  if (cfg_.direction != MuDirection::kDownlink) {
    throw std::logic_error("transmit_downlink: wrong direction");
  }
  return users_.at(u).transmit(chains);
}

const ChannelTruth& MultiUserChannel::user_truth(std::size_t u) const {
  return users_.at(u).truth();
}

MimoChannel& MultiUserChannel::user_channel(std::size_t u) {
  return users_.at(u);
}

std::vector<std::vector<cf32>> MultiUserChannel::transmit_uplink(
    const std::vector<std::vector<std::vector<cf32>>>& per_user_chains) {
  if (cfg_.direction != MuDirection::kUplink) {
    throw std::logic_error("transmit_uplink: wrong direction");
  }
  if (per_user_chains.size() != users_.size()) {
    throw std::invalid_argument("transmit_uplink: wrong user count");
  }
  const std::size_t len = per_user_chains[0].at(0).size();
  for (const auto& chains : per_user_chains) {
    if (chains.size() != 1 || chains[0].size() != len) {
      throw std::invalid_argument(
          "transmit_uplink: each user sends one chain, all equal length "
          "(triggered uplink)");
    }
  }

  std::vector<std::vector<cf32>> acc;
  for (std::size_t u = 0; u < users_.size(); ++u) {
    auto rx = users_[u].propagate(per_user_chains[u]);
    if (u == 0) {
      acc = std::move(rx);
    } else {
      // Delay profiles are per-configuration, so every user's propagated
      // length matches and the superposition is sample-aligned.
      for (std::size_t a = 0; a < acc.size(); ++a) {
        for (std::size_t i = 0; i < acc[a].size(); ++i) acc[a][i] += rx[a][i];
      }
    }
  }
  return bs_frontend_.finalize(std::move(acc));
}

const ChannelTruth& MultiUserChannel::bs_truth() const {
  return bs_frontend_.truth();
}

}  // namespace mimonet::channel
