#include "fec/crc.hpp"

#include <array>

namespace mimonet::fec {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = ((c & 1U) != 0) ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t b : data) {
    crc = kCrc32Table[(crc ^ b) & 0xFFU] ^ (crc >> 8U);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::uint8_t crc8_bits(std::span<const std::uint8_t> bits) noexcept {
  std::uint8_t crc = 0xFF;
  for (const std::uint8_t bit : bits) {
    const std::uint8_t top = static_cast<std::uint8_t>((crc >> 7U) & 1U);
    crc = static_cast<std::uint8_t>(crc << 1U);
    if ((top ^ (bit & 1U)) != 0) crc ^= 0x07;
  }
  return static_cast<std::uint8_t>(crc ^ 0xFF);
}

}  // namespace mimonet::fec
