// Seeded random sources used throughout the simulator (noise, bits, fading).
//
// All randomness in MIMONet flows through these helpers so experiments are
// exactly reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::dsp {

/// splitmix64 finalizer: full-avalanche 64-bit mixing. This is the seed
/// derivation primitive shared by the Monte-Carlo engine (per-packet seeds)
/// and the stress harness (per-case adversarial draws): unique outputs per
/// distinct input, independent of call history.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27U)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31U);
}

/// Circularly-symmetric complex Gaussian source, CN(0, variance) where
/// `variance` is the *total* complex variance E[|x|^2].
class ComplexGaussian {
 public:
  explicit ComplexGaussian(std::uint64_t seed, double variance = 1.0);

  /// Change the variance without reseeding.
  void set_variance(double variance);
  [[nodiscard]] double variance() const noexcept { return variance_; }

  [[nodiscard]] cf32 sample();
  void fill(std::span<cf32> out);

  /// out_i += noise_i (AWGN injection without an intermediate buffer).
  void add_to(std::span<cf32> inout);

 private:
  std::mt19937_64 rng_;
  std::normal_distribution<float> dist_;  // per-dimension std dev
  double variance_ = 1.0;
};

/// Uniform random bit source.
class BitSource {
 public:
  explicit BitSource(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::vector<std::uint8_t> bits(std::size_t count);
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t count);

 private:
  std::mt19937_64 rng_;
};

}  // namespace mimonet::dsp
