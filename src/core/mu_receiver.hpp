// Multi-user uplink joint detection at the base station: U single-antenna
// users transmit simultaneously as virtual space-time streams 0..U-1 (see
// Transmitter::transmit_virtual_into); the BS stacks its antennas against
// the user streams as one tall MIMO problem — synchronize on the superposed
// legacy preamble, LS-estimate the nrx x U channel from the joint HT-LTFs,
// linearly equalize per subcarrier, then run each user's stream through its
// own deinterleave / depuncture / Viterbi / descramble / FCS chain (one
// codeword per user, unlike the single-link receiver's stream merge).
//
// The uplink is trigger-based: the BS announced MCS and PSDU length, so no
// SIG decoding happens — the superposed SIG symbols are flown for timing
// realism and skipped.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/phy_config.hpp"
#include "core/workspace.hpp"
#include "fec/viterbi.hpp"
#include "ofdm/symbol.hpp"
#include "sync/frame_sync.hpp"

namespace mimonet::core {

using dsp::cf32;

/// One user's share of a decoded uplink MU frame.
struct MuUserPacket {
  bool fcs_ok = false;
  std::vector<std::uint8_t> psdu;  ///< decoded bytes (valid when detected)
  double sinr_db = 0.0;            ///< post-eq SINR of this user's stream
};

/// Everything the BS learned about one uplink MU frame.
struct MuRxPacket {
  bool detected = false;  ///< sync found the superposed preamble
  sync::FrameSyncResult sync;
  chanest::SnrEstimate snr;  ///< L-LTF estimate over the superposition
  std::vector<MuUserPacket> users;
};

/// Receive-side arena for the MU uplink path: reuses the single-link
/// RxWorkspace buffers (sync scratch, FFT grids, equalizer coefficients,
/// FEC scratch) plus the per-user result. One per thread.
struct MuRxWorkspace {
  RxWorkspace rx;
  MuRxPacket packet;
};

/// Stateless-per-packet joint detector; construct once per configuration.
class MuUplinkReceiver {
 public:
  /// @param cfg      the per-user PHY (1-stream MCS, FEC settings) every
  ///                 user transmits with — trigger-announced.
  /// @param n_users  virtual streams superposed in the capture (1..4).
  /// @param nrx      BS antennas; needs nrx >= n_users for the inversion.
  MuUplinkReceiver(PhyConfig cfg, std::size_t n_users, std::size_t nrx);

  [[nodiscard]] const PhyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t n_users() const noexcept { return n_users_; }
  [[nodiscard]] std::size_t num_antennas() const noexcept { return nrx_; }

  /// Detect and jointly decode the MU frame in a multi-antenna capture.
  /// `psdu_bytes` is the trigger-announced per-user PSDU size (every user's
  /// frame geometry). Returns true when sync + channel estimation ran and
  /// ws.packet.users holds one entry per user (individual users may still
  /// fail FCS); false when the superposed preamble was never found or the
  /// capture is truncated. Warm calls perform no heap allocation.
  [[nodiscard]] bool receive(std::span<const std::span<const cf32>> capture,
                             std::size_t psdu_bytes, MuRxWorkspace& ws) const;

 private:
  PhyConfig cfg_;
  std::size_t n_users_;
  std::size_t nrx_;
  wifi::McsInfo mcs_;
  sync::FrameSynchronizer synchronizer_;
  ofdm::SymbolDemodulator ht_demod_;
  fec::ViterbiDecoder viterbi_;
};

}  // namespace mimonet::core
