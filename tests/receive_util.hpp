// One-shot receive convenience for tests: wraps the canonical span+workspace
// Receiver::receive entry point (the PR 6 vector-overload shims are gone).
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/receiver.hpp"
#include "core/workspace.hpp"

namespace mimonet::testutil {

/// Decode the first packet of a vector-of-vectors capture, returning the
/// packet whenever synchronization locked (the retired value-returning
/// overload's contract). Builds a fresh workspace per call — fine for tests;
/// hot paths keep a persistent RxWorkspace and call receive() directly.
inline std::optional<core::RxPacket> receive_once(
    const core::Receiver& rx,
    const std::vector<std::vector<dsp::cf32>>& capture) {
  core::RxWorkspace ws;
  std::vector<std::span<const dsp::cf32>> spans(capture.begin(), capture.end());
  if (!rx.receive(std::span<const std::span<const dsp::cf32>>(spans), ws)) {
    return std::nullopt;
  }
  return std::move(ws.packet);
}

}  // namespace mimonet::testutil
