// Front-end impairments the RF hardware would introduce: carrier frequency
// offset, sampling frequency offset, timing offset, and ADC quantization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace mimonet::channel {

using dsp::cf32;

/// Apply a carrier frequency offset of `cfo_norm` cycles/sample (i.e.
/// f_off / f_s) starting at phase `phase0`; returns the phase after the last
/// sample so multi-buffer streams stay continuous.
double apply_cfo(std::span<cf32> x, double cfo_norm, double phase0 = 0.0) noexcept;

/// Resample with a sampling frequency offset: output sample n is taken at
/// input position n * (1 + sfo_ppm * 1e-6) by linear interpolation. Output
/// is slightly shorter/longer than input accordingly.
[[nodiscard]] std::vector<cf32> apply_sfo(std::span<const cf32> x, double sfo_ppm);

/// Quantize to a `bits`-bit ADC with full-scale range [-full_scale,
/// +full_scale] per I/Q rail (values beyond clip).
void quantize(std::span<cf32> x, unsigned bits, float full_scale) noexcept;

/// Hard amplitude clipping: any sample with |x| > clip_level is scaled back
/// onto the circle of radius clip_level (saturating PA / ADC front end).
/// clip_level <= 0 is a no-op.
void apply_clipping(std::span<cf32> x, float clip_level) noexcept;

/// Burst erasure: zero the samples in [start, start + len), clamped to the
/// span — a blanked AGC window or a colliding interferer notch. Degenerate
/// by design: erasing the preamble or LTF region hands the receiver
/// exactly-zero inputs, the corner the stress harness drives.
void apply_burst_erasure(std::span<cf32> x, std::size_t start,
                         std::size_t len) noexcept;

/// Prepend `count` samples drawn from CN(0, noise_var) (idle-air noise before
/// the packet) and append `tail` more after it.
[[nodiscard]] std::vector<cf32> pad_with_noise(std::span<const cf32> x,
                                               std::size_t count, std::size_t tail,
                                               double noise_var, std::uint64_t seed);

}  // namespace mimonet::channel
