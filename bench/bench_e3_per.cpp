// E3 — PER vs SNR for 1000-byte PSDUs, SISO AWGN and 2x2 Rayleigh.
//
// Reproduces the paper's "packet error rate (PER) computation": the PER
// waterfall is steeper than BER and shifted right (one bad bit kills the
// FCS). Expected shape: AWGN curves fall off a cliff within ~3 dB; fading
// curves slope gently (deep fades dominate).
//
// Runs on the parallel Monte-Carlo engine with confidence-driven early
// stopping: each point stops once kTargetEvents PER failures are seen
// (capped at kMaxPackets), so high-PER points finish fast and low-PER
// points get more trials.
#include <cstdio>

#include "bench_util.hpp"
#include "core/link_simulator.hpp"

using namespace mimonet;

namespace {

constexpr std::size_t kPackets = 40;
constexpr std::size_t kMaxPackets = 60;
constexpr std::size_t kTargetEvents = 20;

std::string g_pts = "[";  // JSON points accumulated across both sweeps
bool g_first = true;

core::LinkResult run_point(unsigned mcs, double snr, bool fading,
                           std::uint64_t seed) {
  auto cfg = core::LinkConfig::make()
                 .mcs(mcs)
                 .snr_db(snr)
                 .fading(fading)
                 .payload_bytes(1000)
                 .seed(seed)
                 .build();
  core::LinkSimulator sim(cfg);
  return sim.run(core::RunOptions{.n_packets = kPackets,
                                  .n_threads = bench::threads(),
                                  .max_packets = kMaxPackets,
                                  .target_per_events = kTargetEvents});
}

void sweep(const char* title, double snr_lo, double snr_hi,
           const std::vector<unsigned>& mcs_list, bool fading,
           std::uint64_t seed_base) {
  std::printf("\n  %s\n", title);
  std::vector<std::string> headers{"SNR dB"};
  for (const unsigned mcs : mcs_list) headers.push_back("MCS" + std::to_string(mcs));
  const bench::Table table(headers, 10);

  // Per-MCS aggregate over the whole sweep, built with LinkResult::merge.
  std::vector<core::LinkResult> totals(mcs_list.size());
  for (double snr = snr_lo; snr <= snr_hi; snr += 3.0) {
    std::vector<std::string> cells{bench::fix(snr, 0)};
    for (std::size_t i = 0; i < mcs_list.size(); ++i) {
      const auto res = run_point(mcs_list[i], snr, fading, seed_base + mcs_list[i]);
      cells.push_back(bench::fix(res.per.per(), 2));
      totals[i].merge(res);
      char obj[192];
      std::snprintf(obj, sizeof obj,
                    "%s{\"snr_db\": %g, \"mcs\": %u, \"fading\": %s, "
                    "\"per\": %.6g, \"packets\": %zu}",
                    g_first ? "" : ", ", snr, mcs_list[i],
                    fading ? "true" : "false", res.per.per(), res.per.packets());
      g_pts += obj;
      g_first = false;
    }
    table.row(cells);
  }

  std::printf("\n  sweep aggregate per MCS (merged over all SNR points)\n");
  std::vector<std::string> sum_headers{"MCS"};
  for (const auto& h : core::LinkResult::summary_headers()) sum_headers.push_back(h);
  const bench::Table summary(sum_headers, 11);
  for (std::size_t i = 0; i < mcs_list.size(); ++i) {
    std::vector<std::string> cells{std::to_string(mcs_list[i])};
    for (auto& c : totals[i].summary_row()) cells.push_back(std::move(c));
    summary.row(cells);
  }
}

}  // namespace

int main() {
  bench::heading("E3", "PER vs SNR, 1000-byte packets (Fig. reconstruction)");
  bench::note("%zu packets per point, early-stop at %zu PER events, cap %zu",
              kPackets, kTargetEvents, kMaxPackets);

  sweep("SISO (1x1) AWGN", 0.0, 27.0, {0U, 3U, 5U, 7U}, false, 300);
  sweep("2x2 spatial multiplexing, flat Rayleigh", 6.0, 33.0, {8U, 11U, 13U, 15U},
        true, 500);

  bench::note("AWGN: cliff within ~3 dB; Rayleigh: gentle slope from fades");

  bench::JsonReport report("e3_per");
  report.field("packets_per_point", kPackets)
      .field("target_per_events", kTargetEvents)
      .raw("points", g_pts + "]")
      .emit();
  return 0;
}
