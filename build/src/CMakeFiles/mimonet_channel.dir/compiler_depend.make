# Empty compiler generated dependencies file for mimonet_channel.
# This may be replaced when dependencies are built.
