// Subcarrier allocation for 20 MHz 802.11 OFDM symbols.
//
// Legacy (11a) symbols use 52 occupied subcarriers: 48 data + 4 pilots at
// logical indices {-21, -7, 7, 21}. HT (11n) symbols use 56: 52 data + the
// same 4 pilot positions. Logical index 0 (DC) is always null.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace mimonet::ofdm {

inline constexpr std::size_t kFftSize = 64;
inline constexpr std::size_t kCpLen = 16;                     // 0.8 us at 20 MHz
inline constexpr std::size_t kSymLen = kFftSize + kCpLen;     // 80 samples
inline constexpr std::array<int, 4> kPilotCarriers{-21, -7, 7, 21};

enum class CarrierPlan { kLegacy, kHt };

/// Precomputed data/pilot subcarrier layout for one plan.
class SubcarrierMap {
 public:
  explicit SubcarrierMap(CarrierPlan plan);

  [[nodiscard]] CarrierPlan plan() const noexcept { return plan_; }
  /// Number of data subcarriers (48 legacy, 52 HT).
  [[nodiscard]] std::size_t num_data() const noexcept { return data_bins_.size(); }
  [[nodiscard]] std::size_t num_pilots() const noexcept { return pilot_bins_.size(); }
  /// Total occupied (data + pilot) subcarriers.
  [[nodiscard]] std::size_t num_occupied() const noexcept {
    return num_data() + num_pilots();
  }

  /// FFT bin indices (0..63) of data subcarriers, ordered by ascending
  /// logical index (-26..26 / -28..28).
  [[nodiscard]] const std::vector<std::size_t>& data_bins() const noexcept {
    return data_bins_;
  }
  [[nodiscard]] const std::vector<std::size_t>& pilot_bins() const noexcept {
    return pilot_bins_;
  }
  /// Logical indices corresponding to data_bins(), same order.
  [[nodiscard]] const std::vector<int>& data_logical() const noexcept {
    return data_logical_;
  }

  /// Logical subcarrier index (-32..31) -> FFT bin (0..63).
  [[nodiscard]] static std::size_t logical_to_bin(int k) noexcept {
    return static_cast<std::size_t>((k + static_cast<int>(kFftSize)) %
                                    static_cast<int>(kFftSize));
  }

 private:
  CarrierPlan plan_;
  std::vector<std::size_t> data_bins_;
  std::vector<std::size_t> pilot_bins_;
  std::vector<int> data_logical_;
};

}  // namespace mimonet::ofdm
