# Empty compiler generated dependencies file for mimonet_eq.
# This may be replaced when dependencies are built.
