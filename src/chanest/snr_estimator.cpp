#include "chanest/snr_estimator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/fft_cache.hpp"
#include "ofdm/subcarriers.hpp"
#include "wifi/preamble.hpp"

namespace mimonet::chanest {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// The documented per-bin convention: clamp into +/-kPerBinCeilingDb so
/// zero-error (or zero-signal) bins report a saturated, finite value.
double clamp_db(double db) noexcept {
  return std::clamp(db, -SnrEstimate::kPerBinCeilingDb,
                    SnrEstimate::kPerBinCeilingDb);
}

/// Erase non-finite samples (NaN/Inf leaking in from a poisoned capture)
/// so they cannot turn an entire accumulation — and with it the wideband
/// figure — into NaN.
cf32 erase_non_finite(cf32 v) noexcept {
  return (std::isfinite(v.real()) && std::isfinite(v.imag())) ? v
                                                              : cf32{0.0F, 0.0F};
}

}  // namespace

void snr_from_lltf_into(std::span<const std::span<const cf32>> lltf_payload,
                        SnrEstimate& out) {
  if (lltf_payload.empty()) throw std::invalid_argument("snr_from_lltf: no antennas");
  constexpr std::size_t kN = 64;

  double noise = 0.0;
  double total = 0.0;
  std::size_t n_samp = 0;

  // Per-subcarrier accumulation across antennas.
  std::array<double, kN> bin_noise{};
  std::array<double, kN> bin_sig{};
  const dsp::FftPlan& plan = dsp::shared_fft_plan(kN);

  for (const auto& ant : lltf_payload) {
    if (ant.size() < 2 * kN) {
      throw std::invalid_argument("snr_from_lltf: need 128 samples per antenna");
    }
    // Time-domain wideband estimate: d = x1 - x2 carries 2x the noise.
    for (std::size_t k = 0; k < kN; ++k) {
      const cf32 a = erase_non_finite(ant[k]);
      const cf32 b = erase_non_finite(ant[k + kN]);
      const dsp::cf64 d = dsp::cf64(a) - dsp::cf64(b);
      noise += 0.5 * dsp::mag_sqr(d);
      total += 0.5 * (dsp::mag_sqr(dsp::cf64(a)) + dsp::mag_sqr(dsp::cf64(b)));
      ++n_samp;
    }
    // Frequency-domain per-subcarrier estimate (on the erased copies: one
    // poisoned sample must not turn the whole spectrum into NaN).
    std::array<cf32, kN> x1;
    std::array<cf32, kN> x2;
    for (std::size_t k = 0; k < kN; ++k) {
      x1[k] = erase_non_finite(ant[k]);
      x2[k] = erase_non_finite(ant[k + kN]);
    }
    plan.forward(x1);
    plan.forward(x2);
    for (std::size_t b = 0; b < kN; ++b) {
      const cf32 d = x1[b] - x2[b];
      const cf32 avg = 0.5F * (x1[b] + x2[b]);
      bin_noise[b] += 0.5 * static_cast<double>(dsp::mag_sqr(d));
      bin_sig[b] += static_cast<double>(dsp::mag_sqr(avg));
    }
  }

  out.noise_variance = noise / static_cast<double>(n_samp);
  out.signal_power =
      std::max(total / static_cast<double>(n_samp) - out.noise_variance, 1e-12);
  // A zero-power or noiseless input drives the raw ratio to +/-inf dB;
  // the clamp keeps the wideband figure saturated but finite.
  out.snr_db =
      clamp_db(dsp::to_db(out.signal_power / std::max(out.noise_variance, 1e-30)));

  out.per_bin_db.assign(kN, kNan);
  out.per_bin_valid.assign(kN, 0);
  const auto seq = wifi::lltf_sequence();
  for (int k = -26; k <= 26; ++k) {
    if (seq[static_cast<std::size_t>(k + 26)] == 0.0F) continue;
    const std::size_t b = ofdm::SubcarrierMap::logical_to_bin(k);
    // The averaged bin keeps half the per-bin noise; subtract it from the
    // signal term before forming the ratio.
    const double nv = bin_noise[b];
    // Near-overflow (but finite) samples can still overflow inside the
    // single-precision FFT; a non-finite bin carries no estimate, so leave
    // it NaN + invalid rather than reporting a poisoned number.
    if (!std::isfinite(nv) || !std::isfinite(bin_sig[b])) continue;
    const double sig = std::max(bin_sig[b] - nv / 2.0, 1e-12);
    out.per_bin_db[b] = clamp_db(dsp::to_db(sig / std::max(nv, 1e-30)));
    out.per_bin_valid[b] = 1;
  }
}

SnrEstimate snr_from_lltf(std::span<const std::span<const cf32>> lltf_payload) {
  SnrEstimate out;
  snr_from_lltf_into(lltf_payload, out);
  return out;
}

EvmSnrEstimator::EvmSnrEstimator() : per_bin_(ofdm::kFftSize) {}

namespace {

/// True when the (observed, reference) pair contributes usable energy: a
/// non-finite observation is an erasure and must not poison the sums. The
/// energies are formed in double so near-overflow float samples (1e38)
/// stay finite.
bool pair_energies(cf32 observed, cf32 reference, double& err,
                   double& ref) noexcept {
  const dsp::cf64 o(observed);
  const dsp::cf64 r(reference);
  err = dsp::mag_sqr(o - r);
  ref = dsp::mag_sqr(r);
  return std::isfinite(err) && std::isfinite(ref);
}

}  // namespace

void EvmSnrEstimator::add(cf32 observed, cf32 reference) noexcept {
  double err = 0.0;
  double ref = 0.0;
  if (!pair_energies(observed, reference, err, ref)) return;
  total_.err += err;
  total_.ref += ref;
  ++total_.n;
  ++count_;
}

void EvmSnrEstimator::add(std::size_t bin, cf32 observed, cf32 reference) noexcept {
  double err = 0.0;
  double ref = 0.0;
  if (!pair_energies(observed, reference, err, ref)) return;
  add(observed, reference);
  if (bin < per_bin_.size()) {
    auto& acc = per_bin_[bin];
    acc.err += err;
    acc.ref += ref;
    ++acc.n;
  }
}

void EvmSnrEstimator::estimate_into(SnrEstimate& out) const {
  out.snr_db = 0.0;
  out.signal_power = 0.0;
  out.noise_variance = 0.0;
  out.per_bin_db.clear();
  out.per_bin_valid.clear();
  if (total_.n == 0) return;  // defined zeros; count() tells callers why
  out.noise_variance = total_.err / static_cast<double>(total_.n);
  out.signal_power = total_.ref / static_cast<double>(total_.n);
  out.snr_db = clamp_db(dsp::to_db(std::max(out.signal_power, 1e-12) /
                                   std::max(out.noise_variance, 1e-30)));

  out.per_bin_db.assign(per_bin_.size(), kNan);
  out.per_bin_valid.assign(per_bin_.size(), 0);
  for (std::size_t b = 0; b < per_bin_.size(); ++b) {
    const auto& acc = per_bin_[b];
    if (acc.n < 2) continue;  // too few samples: NaN + invalid, not a fake 0 dB
    // Zero error energy means the estimate saturates at the ceiling — it
    // must stay distinguishable from a genuinely 0 dB bin.
    const double ratio =
        std::max(acc.ref, 1e-30) / ((acc.err > 0.0) ? acc.err : 1e-30);
    out.per_bin_db[b] = clamp_db(dsp::to_db(ratio));
    out.per_bin_valid[b] = 1;
  }
}

SnrEstimate EvmSnrEstimator::estimate() const {
  SnrEstimate out;
  estimate_into(out);
  return out;
}

void EvmSnrEstimator::reset() noexcept {
  total_ = Acc{};
  std::fill(per_bin_.begin(), per_bin_.end(), Acc{});
  count_ = 0;
}

}  // namespace mimonet::chanest
