# Empty compiler generated dependencies file for mimonet_mac.
# This may be replaced when dependencies are built.
